package multitree

import (
	"fmt"
	"io"

	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/plancache"
)

// Trace is an in-memory recording of one simulated all-reduce: every
// typed event the engines emitted, plus the track metadata (link and node
// names) needed to export it. Obtain one with Schedule.SimulateTraced.
type Trace struct {
	meta obs.TraceMeta
	rec  obs.Recorder
}

// Events returns the number of recorded events.
func (t *Trace) Events() int { return len(t.rec.Events) }

// WriteChromeTrace exports the recording as Chrome-trace JSON: open the
// file in ui.perfetto.dev (or chrome://tracing) to see one timeline track
// per directed link and one per node's NI.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, t.meta, t.rec.Events)
}

// WriteLinkStats replays the recording through a metrics collector and
// writes the per-link time-binned utilization CSV (binCycles <= 0 writes
// per-link totals only).
func (t *Trace) WriteLinkStats(w io.Writer, binCycles float64) error {
	m := obs.NewMetrics(binCycles)
	for _, ev := range t.rec.Events {
		m.Emit(ev)
	}
	return m.WriteLinkCSV(w, t.meta.LinkNames)
}

// SimulateTraced runs the schedule like Simulate while recording every
// simulation event, and returns the recording alongside the result. Any
// Tracer/Metrics already set in opt still receive the events too.
func (s *Schedule) SimulateTraced(opt SimOptions) (SimResult, *Trace, error) {
	tr := &Trace{meta: network.TraceMetaFor(s.s, "")}
	opt.Tracer = obs.Tee(opt.Tracer, &tr.rec)
	res, err := s.Simulate(opt)
	if err != nil {
		return SimResult{}, nil, err
	}
	return res, tr, nil
}

// PlanProfile records where a schedule build spends its time: wall time
// and work counters per planner phase (tree growth, variant scoring,
// schedule lowering). Obtain one with NewPlanProfile, build through
// BuildScheduleProfiled, then export the breakdown. A profile may span
// several builds; phases accumulate.
type PlanProfile struct {
	p *obs.PlanProfile
}

// NewPlanProfile returns an empty planner profile.
func NewPlanProfile() *PlanProfile {
	return &PlanProfile{p: obs.NewPlanProfile()}
}

// TotalWallNanos is the wall time attributed to the planner across all
// profiled builds.
func (p *PlanProfile) TotalWallNanos() int64 { return p.p.TotalWallNanos() }

// WriteCSV emits the per-phase breakdown (wall time, share, work
// counters) as CSV — the same format the cmd tools write behind
// -planprofile.
func (p *PlanProfile) WriteCSV(w io.Writer) error { return p.p.WriteCSV(w) }

// Progress returns the planner's coarse position: the pipeline phases
// completed out of the announced total. Safe to poll from another
// goroutine while a profiled build runs.
func (p *PlanProfile) Progress() (completed, total int) { return p.p.PipelineProgress() }

// BuildScheduleProfiled is BuildSchedule reporting phase timings and
// work counters into the profile. The schedule built is byte-identical
// to the unprofiled one; a nil profile is exactly BuildSchedule.
func BuildScheduleProfiled(t *Topology, alg Algorithm, dataBytes int64, p *PlanProfile) (*Schedule, error) {
	return BuildScheduleOptions(t, alg, dataBytes, PlanOptions{Profile: p})
}

// PlanCache is an open content-addressed on-disk cache of built
// schedules: planning a large fabric costs minutes, loading its plan
// back costs milliseconds. Entries are validated against the live
// topology on load, so a stale or corrupt cache can never produce a
// wrong schedule — only a rebuild.
type PlanCache struct {
	c *plancache.Cache
}

// OpenPlanCache opens (creating if needed) a plan-cache directory.
// maxBytes <= 0 leaves the cache uncapped; otherwise least-recently-used
// entries are evicted to hold the cap.
func OpenPlanCache(dir string, maxBytes int64) (*PlanCache, error) {
	c, err := plancache.Open(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	return &PlanCache{c: c}, nil
}

// Dir returns the cache directory.
func (c *PlanCache) Dir() string { return c.c.Dir() }

// PlanCacheStats is a snapshot of a cache's traffic counters.
// SummaryLoads counts hits accepted on the entry's store-time validation
// summary + content hash; FullLoads counts hits that re-ran the complete
// schedule validation (legacy entries, or VerifyFull).
type PlanCacheStats struct {
	Hits         int64
	Misses       int64
	BytesRead    int64
	BytesWritten int64
	Evictions    int64
	SummaryLoads int64
	FullLoads    int64
}

// Stats returns the cache's traffic so far.
func (c *PlanCache) Stats() PlanCacheStats {
	s := c.c.Stats()
	return PlanCacheStats(s)
}

// SetVerifyFull makes every subsequent cache hit re-run the complete
// schedule validation pass instead of trusting the entry's store-time
// summary. Call before handing the cache to a build.
func (c *PlanCache) SetVerifyFull(v bool) { c.c.VerifyFull = v }

// PlanMemCache is an in-process LRU of decoded plans, the tier above
// PlanCache: a hit returns the already-materialized schedule and skips
// the disk read, decode, and verification entirely. Keyed by the same
// content address as the on-disk cache, so the two tiers compose.
// Schedules served from it are shared across builds — read-only by
// contract, which every simulator and exporter in this module honors.
type PlanMemCache struct {
	c *plancache.MemCache
}

// NewPlanMemCache returns a decoded-plan cache holding at most maxBytes
// of materialized schedules. maxBytes <= 0 disables it (every probe
// misses), so a handle can be threaded unconditionally.
func NewPlanMemCache(maxBytes int64) *PlanMemCache {
	return &PlanMemCache{c: plancache.NewMemCache(maxBytes)}
}

// PlanMemCacheStats is a snapshot of a decoded-plan cache's counters:
// traffic since creation plus the current resident size.
type PlanMemCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64
	Entries   int64
}

// Stats returns the cache's traffic and current contents.
func (c *PlanMemCache) Stats() PlanMemCacheStats {
	return PlanMemCacheStats(c.c.Stats())
}

// PlanOptions tunes how BuildScheduleOptions plans: none of its fields
// change the schedule built, only how fast it is produced and what is
// recorded along the way. The zero value is exactly BuildSchedule.
type PlanOptions struct {
	// Workers bounds planner parallelism for algorithms with a parallel
	// construction path (MultiTree's speculative tree growth); <= 1 means
	// sequential.
	Workers int

	// Cache, when non-nil, is probed before planning and updated after.
	Cache *PlanCache

	// MemCache, when non-nil, is the decoded-plan tier probed before
	// Cache; both tiers are updated after a build or disk load.
	MemCache *PlanMemCache

	// Profile, when non-nil, accumulates phase timings and work counters
	// (including cache lookups) across builds.
	Profile *PlanProfile
}

// BuildScheduleOptions is BuildSchedule with planner tuning: parallel
// construction, a plan cache, and profiling. The schedule built is
// byte-identical for every option combination.
func BuildScheduleOptions(t *Topology, alg Algorithm, dataBytes int64, opt PlanOptions) (*Schedule, error) {
	elems := int(dataBytes / collective.WordSize)
	if elems < 1 {
		return nil, fmt.Errorf("multitree: data size %d bytes is below one element", dataBytes)
	}
	aopts := algorithms.Options{Workers: opt.Workers}
	if opt.Profile != nil {
		aopts.Observer = opt.Profile.p
	}
	if opt.Cache != nil {
		aopts.Cache = opt.Cache.c
	}
	if opt.MemCache != nil {
		aopts.MemCache = opt.MemCache.c
	}
	s, err := algorithms.Build(t.t, string(alg), elems, aopts)
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}
