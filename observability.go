package multitree

import (
	"io"

	"multitree/internal/network"
	"multitree/internal/obs"
)

// Trace is an in-memory recording of one simulated all-reduce: every
// typed event the engines emitted, plus the track metadata (link and node
// names) needed to export it. Obtain one with Schedule.SimulateTraced.
type Trace struct {
	meta obs.TraceMeta
	rec  obs.Recorder
}

// Events returns the number of recorded events.
func (t *Trace) Events() int { return len(t.rec.Events) }

// WriteChromeTrace exports the recording as Chrome-trace JSON: open the
// file in ui.perfetto.dev (or chrome://tracing) to see one timeline track
// per directed link and one per node's NI.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, t.meta, t.rec.Events)
}

// WriteLinkStats replays the recording through a metrics collector and
// writes the per-link time-binned utilization CSV (binCycles <= 0 writes
// per-link totals only).
func (t *Trace) WriteLinkStats(w io.Writer, binCycles float64) error {
	m := obs.NewMetrics(binCycles)
	for _, ev := range t.rec.Events {
		m.Emit(ev)
	}
	return m.WriteLinkCSV(w, t.meta.LinkNames)
}

// SimulateTraced runs the schedule like Simulate while recording every
// simulation event, and returns the recording alongside the result. Any
// Tracer/Metrics already set in opt still receive the events too.
func (s *Schedule) SimulateTraced(opt SimOptions) (SimResult, *Trace, error) {
	tr := &Trace{meta: network.TraceMetaFor(s.s, "")}
	opt.Tracer = obs.Tee(opt.Tracer, &tr.rec)
	res, err := s.Simulate(opt)
	if err != nil {
		return SimResult{}, nil, err
	}
	return res, tr, nil
}
