#!/bin/sh
# Prints the EXPERIMENTS.md table points from the Fig. 9 CSVs.
for f in "$@"; do
  echo "== $f =="
  awk -F, '$3==32768 || $3==8388608 {printf "%-14s %-14s %8d %8.3f\n", $1, $2, $3, $5}' "$f"
done
