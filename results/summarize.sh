#!/bin/sh
# Prints the EXPERIMENTS.md table points from the Fig. 9 CSVs, or, with
# -linkutil, regenerates the link-utilization artifacts through the
# tracing/metrics path (internal/obs):
#
#   results/summarize.sh results/fig9a.csv     # table points
#   results/summarize.sh -linkutil             # linkutil-*.csv, steputil-*.csv
#
# The -linkutil mode runs a 1 MiB MultiTree all-reduce on the 4x4 Torus
# with the packet engine and writes per-link binned utilization plus the
# per-step utilization comparison (traced vs static schedule analysis;
# the two columns must match — see TestCrossEngineAgreement).
if [ "$1" = "-linkutil" ]; then
  dir=$(dirname "$0")
  go run ./cmd/allreduce-bench -algo multitree -topo torus-4x4 -size 1MiB \
    -bin 1000 \
    -linkstats "$dir/linkutil-torus4x4.csv" \
    -steputil "$dir/steputil-torus4x4.csv"
  exit $?
fi
for f in "$@"; do
  echo "== $f =="
  awk -F, '$3==32768 || $3==8388608 {printf "%-14s %-14s %8d %8.3f\n", $1, $2, $3, $5}' "$f"
done
