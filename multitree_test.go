package multitree_test

import (
	"testing"
	"testing/quick"

	multitree "multitree"
)

func TestTopologyConstructors(t *testing.T) {
	cases := []struct {
		topo  *multitree.Topology
		nodes int
	}{
		{multitree.NewTorus(4, 4), 16},
		{multitree.NewMesh(8, 8), 64},
		{multitree.NewFatTree(4, 4, 4), 16},
		{multitree.NewBiGraph(4, 4), 32},
	}
	for _, c := range cases {
		if c.topo.Nodes() != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.topo.Name(), c.topo.Nodes(), c.nodes)
		}
	}
}

func TestSupports(t *testing.T) {
	torus := multitree.NewTorus(4, 4)
	fattree := multitree.NewFatTree(4, 4, 4)
	if !torus.Supports(multitree.Ring2D) || fattree.Supports(multitree.Ring2D) {
		t.Error("2D-Ring support matrix wrong")
	}
	if !torus.Supports(multitree.HDRM) { // 16 nodes: power of two
		t.Error("HDRM should run on 16 nodes")
	}
	odd := multitree.NewMesh(3, 3)
	if odd.Supports(multitree.HDRM) {
		t.Error("HDRM accepted 9 nodes")
	}
	for _, alg := range []multitree.Algorithm{multitree.Ring, multitree.DBTree, multitree.MultiTree} {
		if !torus.Supports(alg) {
			t.Errorf("%s unsupported on torus", alg)
		}
	}
}

func TestBuildAndVerifyAllAlgorithms(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	for _, alg := range multitree.Algorithms() {
		if !topo.Supports(alg) {
			continue
		}
		s, err := multitree.BuildSchedule(topo, alg, 64<<10)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
		if s.Algorithm() != alg && !(alg == multitree.MultiTree) {
			t.Errorf("algorithm name mismatch: %s vs %s", s.Algorithm(), alg)
		}
	}
}

func TestBuildScheduleErrors(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	if _, err := multitree.BuildSchedule(topo, "gossip", 1024); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := multitree.BuildSchedule(topo, multitree.Ring, 2); err == nil {
		t.Error("sub-element data size accepted")
	}
	fattree := multitree.NewFatTree(4, 4, 4)
	if _, err := multitree.BuildSchedule(fattree, multitree.Ring2D, 1024); err == nil {
		t.Error("2d-ring on fat-tree accepted")
	}
}

// TestVerifyCapsLargeSchedules: Verify on a multi-MiB schedule must not
// materialize the full vectors.
func TestVerifyCapsLargeSchedules(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	s, err := multitree.BuildSchedule(topo, multitree.MultiTree, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateBothEngines(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	s, err := multitree.BuildSchedule(topo, multitree.MultiTree, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := s.Simulate(multitree.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	packet, err := s.Simulate(multitree.SimOptions{PacketLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []multitree.SimResult{fluid, packet} {
		if r.Cycles == 0 || r.BandwidthGBps <= 0 || r.WireBytes <= r.PayloadBytes {
			t.Errorf("implausible result %+v", r)
		}
	}
	rel := float64(fluid.Cycles) / float64(packet.Cycles)
	if rel < 0.85 || rel > 1.15 {
		t.Errorf("engines disagree: fluid %d vs packet %d cycles", fluid.Cycles, packet.Cycles)
	}
}

// TestSimulatorReuse: the reusable Simulator matches the one-shot
// Simulate on every run, for both engines.
func TestSimulatorReuse(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	s, err := multitree.BuildSchedule(topo, multitree.MultiTree, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []multitree.SimOptions{{}, {PacketLevel: true}, {MessageBased: true}} {
		oneShot, err := s.Simulate(opt)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := s.NewSimulator(opt)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			got, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got != oneShot {
				t.Fatalf("opt %+v run %d: Simulator returned %+v, one-shot Simulate %+v",
					opt, run, got, oneShot)
			}
		}
	}
}

// TestMultiTreeWinsProperty: on random torus shapes at bandwidth-bound
// sizes, MultiTree's bandwidth is at least Ring's.
func TestMultiTreeWinsProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		nx := 2 + 2*(int(a)%3) // 2, 4, 6
		ny := 2 + 2*(int(b)%3)
		topo := multitree.NewTorus(nx, ny)
		mt, err := multitree.BuildSchedule(topo, multitree.MultiTree, 2<<20)
		if err != nil {
			return false
		}
		rg, err := multitree.BuildSchedule(topo, multitree.Ring, 2<<20)
		if err != nil {
			return false
		}
		mtRes, err := mt.Simulate(multitree.SimOptions{})
		if err != nil {
			return false
		}
		rgRes, err := rg.Simulate(multitree.SimOptions{})
		if err != nil {
			return false
		}
		return mtRes.BandwidthGBps >= rgRes.BandwidthGBps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestModelsAndDescribe(t *testing.T) {
	names := multitree.Models()
	if len(names) != 7 {
		t.Fatalf("%d models, want 7", len(names))
	}
	info, err := multitree.DescribeModel("Transformer")
	if err != nil {
		t.Fatal(err)
	}
	if info.Params < 30e6 || info.GradientBytes != 4*info.Params {
		t.Errorf("Transformer info %+v", info)
	}
	if _, err := multitree.DescribeModel("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestSimulateTraining(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	r, err := multitree.SimulateTraining(topo, multitree.MultiTree, "GoogLeNet", multitree.TrainingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalCycles != r.ForwardCycles+r.BackwardCycles+r.CommCycles {
		t.Errorf("non-overlapped accounting: %+v", r)
	}
	o, err := multitree.SimulateTraining(topo, multitree.MultiTree, "GoogLeNet",
		multitree.TrainingOptions{Overlapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if o.TotalCycles > r.TotalCycles {
		t.Errorf("overlapped (%d) slower than sequential (%d)", o.TotalCycles, r.TotalCycles)
	}
	if o.OverlapCycles+o.ExposedCycles != o.CommCycles {
		t.Errorf("overlap accounting: %+v", o)
	}
	if f := o.CommFraction(); f < 0 || f > 1 {
		t.Errorf("CommFraction = %v", f)
	}
}

func TestCustomTopologyAPI(t *testing.T) {
	b := multitree.NewCustomTopology("star", 4, 1)
	hub := b.Switch(0)
	for n := 0; n < 4; n++ {
		b.Connect(n, hub)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := multitree.BuildSchedule(topo, multitree.MultiTree, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if !s.ContentionFree() {
		t.Error("star schedule contends")
	}
	// Disconnected custom topology errors.
	bad := multitree.NewCustomTopology("bad", 3, 0)
	bad.Connect(0, 1)
	if _, err := bad.Build(); err == nil {
		t.Error("disconnected topology built")
	}
}

func TestCustomLinkConfig(t *testing.T) {
	slow := multitree.NewTorusLinks(4, 4, multitree.LinkConfig{BandwidthGBps: 8, LatencyNs: 300})
	fast := multitree.NewTorus(4, 4)
	ss, err := multitree.BuildSchedule(slow, multitree.Ring, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := multitree.BuildSchedule(fast, multitree.Ring, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := ss.Simulate(multitree.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fs.Simulate(multitree.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.BandwidthGBps >= fr.BandwidthGBps {
		t.Errorf("half-bandwidth links not slower: %.2f vs %.2f", sr.BandwidthGBps, fr.BandwidthGBps)
	}
}
