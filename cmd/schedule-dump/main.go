// Command schedule-dump renders the worked examples of the paper's §III
// and §IV: the MultiTree construction walkthrough of Fig. 3 (per-step link
// allocation and the resulting reduce-scatter/all-gather trees), the ring
// and double-binary-tree schedules of Fig. 4, and the per-accelerator NI
// schedule tables of Fig. 5.
//
// Usage:
//
//	schedule-dump                    # Fig. 3 walkthrough on the 2x2 Mesh
//	schedule-dump -topo torus-4x4    # any topology
//	schedule-dump -tables            # include the Fig. 5 NI tables
//	schedule-dump -baselines         # include the Fig. 4 ring/dbtree views
package main

import (
	"flag"
	"fmt"
	"log"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/dbtree"
	"multitree/internal/ni"
	"multitree/internal/ring"
	"multitree/internal/topospec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedule-dump: ")
	var (
		topoStr   = flag.String("topo", "mesh-2x2", "topology spec")
		tables    = flag.Bool("tables", false, "print the Fig. 5 NI schedule tables")
		baselines = flag.Bool("baselines", false, "print the Fig. 4 ring and double-binary-tree schedules")
		util      = flag.Bool("util", false, "print per-step link-utilization charts for every algorithm")
	)
	flag.Parse()

	topo, err := topospec.Parse(*topoStr)
	if err != nil {
		log.Fatal(err)
	}
	trees, err := core.BuildTrees(topo, core.DefaultOptions(topo))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MultiTree construction on %s (%d nodes)\n", topo.Name(), topo.Nodes())
	fmt.Println("\nAll-gather schedule trees (Fig. 3e; edge label tN is the time step):")
	for _, tr := range trees {
		fmt.Println("  " + tr.String())
	}

	sched, err := collective.TreesToSchedule(core.Algorithm, topo, topo.Nodes()*4, trees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReduce-scatter schedule (Fig. 3d; reversed tree edges):")
	printPhase(sched, collective.Reduce)
	fmt.Println("\nAll-gather schedule:")
	printPhase(sched, collective.Gather)

	if *baselines {
		fmt.Println("\nRing all-gather phase (Fig. 4a):")
		printPhase(ring.Build(topo, topo.Nodes()*4), collective.Gather)
		ds, err := dbtree.Build(topo, topo.Nodes()*4, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nDouble-binary-tree broadcast (Fig. 4b; odd steps are tree 0, even steps tree 1):")
		printPhase(ds, collective.Gather)
	}

	if *util {
		fmt.Println()
		for _, alg := range []string{"ring", "multitree"} {
			var us *collective.Schedule
			if alg == "ring" {
				us = ring.Build(topo, topo.Nodes()*64)
			} else {
				us, err = collective.TreesToSchedule(core.Algorithm, topo, topo.Nodes()*64, trees)
				if err != nil {
					log.Fatal(err)
				}
			}
			fmt.Println(collective.UtilizationChart(us, 50))
		}
	}

	if *tables {
		nt, err := ni.Compile(trees, topo.Nodes())
		if err != nil {
			log.Fatal(err)
		}
		nt.Bind(topo.Nodes()*64, topo.Nodes())
		fmt.Println("\nAll-reduce schedule tables (Fig. 5):")
		for _, tab := range nt.PerNode {
			fmt.Println(tab.String())
		}
		fmt.Printf("hardware overhead: %d bits/entry, %d entries, %d bytes/table\n",
			ni.EntryBits(topo.Nodes()), 2*topo.Nodes(), ni.TableBytes(topo.Nodes()))
	}
}

// printPhase lists a schedule's transfers of one opcode grouped by step.
func printPhase(s *collective.Schedule, op collective.Op) {
	lines := map[int][]string{}
	minStep, maxStep := 1<<30, 0
	for i := range s.Transfers {
		tr := &s.Transfers[i]
		if tr.Op != op {
			continue
		}
		lines[tr.Step] = append(lines[tr.Step],
			fmt.Sprintf("n%d->n%d(f%d)", tr.Src, tr.Dst, tr.Flow))
		if tr.Step < minStep {
			minStep = tr.Step
		}
		if tr.Step > maxStep {
			maxStep = tr.Step
		}
	}
	for step := minStep; step <= maxStep; step++ {
		if len(lines[step]) == 0 {
			continue
		}
		fmt.Printf("  step %d:", step)
		for _, l := range lines[step] {
			fmt.Printf(" %s", l)
		}
		fmt.Println()
	}
}
