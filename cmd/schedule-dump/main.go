// Command schedule-dump renders the worked examples of the paper's §III
// and §IV: the MultiTree construction walkthrough of Fig. 3 (per-step link
// allocation and the resulting reduce-scatter/all-gather trees), the ring
// and double-binary-tree schedules of Fig. 4, and the per-accelerator NI
// schedule tables of Fig. 5.
//
// Usage:
//
//	schedule-dump                    # Fig. 3 walkthrough on the 2x2 Mesh
//	schedule-dump -topo torus-4x4    # any topology
//	schedule-dump -tables            # include the Fig. 5 NI tables
//	schedule-dump -baselines         # include the Fig. 4 ring/dbtree views
//
// Observability: -trace simulates the MultiTree schedule under tracing
// and also drives the Fig. 6 NI machine over the compiled tables, so the
// exported Chrome-trace JSON carries both the link timelines (cycle
// domain) and the NI table-walk instants (issue-round domain).
//
//	schedule-dump -topo torus-4x4 -trace trace.json -linkstats links.csv
//
// Export mode writes any registered algorithm's schedule as a versioned
// IR JSON file that allreduce-bench -schedule can run:
//
//	schedule-dump -topo torus-4x4 -algo multitree -size 1MiB -export mt.json
//
// With -faults the export re-plans on the degraded fabric, writing a
// schedule that routes around the failed hardware; a spec that
// disconnects the topology fails with a non-zero exit:
//
//	schedule-dump -topo torus-4x4 -algo multitree -faults link:3-7:down -export mt-deg.json
//
// The shared observability flags of allreduce-bench also apply here:
// -report writes the versioned run report, -planprofile the planner
// phase CSV, -progress live planner progress on stderr, and
// -cpuprofile/-memprofile the pprof profiles. So do the planner-scaling
// flags: -plan-workers N grows trees in parallel and -plan-shards N
// grows them in fabric shards (the schedule is byte-identical for every
// count of either), and -plan-cache DIR makes -export load a
// previously built schedule from the content-addressed cache instead of
// re-planning it. Warm loads scale too: -plan-workers also fans the
// binary-IR section decode across cores, -plan-mem-cache-mb N keeps
// decoded plans in process so repeats skip disk entirely, and
// -warm-loads N replays the load through the cache tiers to measure it.
//
//	schedule-dump -topo mesh-32x32 -algo multitree -plan-cache /tmp/plans -export mt.json
//	schedule-dump -topo mesh-64x64 -algo multitree -plan-cache /tmp/plans \
//	    -plan-workers 8 -plan-mem-cache-mb 4096 -warm-loads 2 -export mt.plan
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"multitree/internal/algorithms"
	_ "multitree/internal/algorithms/all"
	"multitree/internal/cliutil"
	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/dbtree"
	"multitree/internal/faults"
	"multitree/internal/network"
	"multitree/internal/ni"
	"multitree/internal/obs"
	"multitree/internal/ring"
	"multitree/internal/topology"
	"multitree/internal/topospec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedule-dump: ")
	var (
		topoStr   = flag.String("topo", "mesh-2x2", "topology spec ("+topospec.Usage()+")")
		tables    = flag.Bool("tables", false, "print the Fig. 5 NI schedule tables")
		baselines = flag.Bool("baselines", false, "print the Fig. 4 ring and double-binary-tree schedules")
		util      = flag.Bool("util", false, "print per-step link-utilization charts for every algorithm")

		traceOut  = flag.String("trace", "", "write a Chrome-trace JSON of the MultiTree schedule (links + NI machine)")
		linkstats = flag.String("linkstats", "", "write per-link binned utilization CSV of the MultiTree schedule")
		bin       = flag.Float64("bin", 100, "utilization histogram bin width in cycles for -linkstats")

		algo      = flag.String("algo", "multitree", "algorithm for -export ("+strings.Join(algorithms.Names(), ", ")+")")
		size      = flag.String("size", "1MiB", "all-reduce data size for -export")
		export    = flag.String("export", "", "write the -algo schedule as a versioned IR file and exit (.plan extension selects the compact binary IR; anything else the JSON interchange IR)")
		faultSpec = flag.String("faults", "", "fault spec for -export; re-plan on the degraded fabric (e.g. link:3-7:down,node:12:down)")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile   = flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
		reportPath   = flag.String("report", "", "write a structured run report (versioned JSON) to this file")
		planCSV      = flag.String("planprofile", "", "write the planner phase-profile CSV to this file")
		progressMode = flag.String("progress", "auto", "live planner progress on stderr: auto (terminals only), on, off")
		planCache    = flag.String("plan-cache", "", "content-addressed plan cache directory for -export: schedules load from it when present and are stored after a fresh build")
		planMemMB    = flag.Int64("plan-mem-cache-mb", 0, "in-process decoded-plan cache cap in MiB: repeated loads of one plan skip disk and decode entirely; <= 0 off")
		warmLoads    = flag.Int("warm-loads", 0, "after -export, re-load the plan this many more times through the cache tiers (exercises warm serving; counts land in the run report)")
		planWorkers  = flag.Int("plan-workers", 1, "parallel tree-growth workers for the MultiTree planner and section-decode workers for binary-IR plan loads; the schedule built is identical for every value")
		planShards   = flag.Int("plan-shards", 1, "sharded tree growth for the MultiTree planner (geometric root partition); the schedule built is byte-identical for every value")
		verifyPlan   = flag.Bool("verify-plan", false, "re-run the full schedule validation pass on plan-cache hits instead of trusting the stored validation summary")
	)
	flag.Parse()

	topo, err := topospec.Parse(*topoStr)
	if err != nil {
		log.Fatal(err)
	}

	mode := "walkthrough"
	if *export != "" {
		mode = "export"
	}
	run, err := cliutil.StartRun(cliutil.Config{
		Tool: "schedule-dump", Mode: mode,
		ReportPath: *reportPath, PlanCSVPath: *planCSV,
		ProgressMode: *progressMode,
		CPUProfile:   *cpuProfile, MemProfile: *memProfile,
		PlanCacheDir: *planCache, PlanMemCacheMB: *planMemMB,
		PlanWorkers: *planWorkers, PlanShards: *planShards, VerifyPlan: *verifyPlan,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *export != "" {
		exportSchedule(topo, *algo, *size, *export, *faultSpec, *warmLoads, run)
		if err := run.Finish(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *faultSpec != "" {
		log.Fatal("-faults only applies to -export mode; use allreduce-bench -faults to simulate mid-flight faults")
	}
	opts := core.DefaultOptions(topo)
	opts.Observer = run.PlanObserver()
	opts.Workers = *planWorkers
	trees, err := core.BuildTrees(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	run.SetTopology(topo, nil)

	fmt.Printf("MultiTree construction on %s (%d nodes)\n", topo.Name(), topo.Nodes())
	fmt.Println("\nAll-gather schedule trees (Fig. 3e; edge label tN is the time step):")
	for _, tr := range trees {
		fmt.Println("  " + tr.String())
	}

	sched, err := collective.TreesToScheduleParallel(core.Algorithm, topo, topo.Nodes()*4, trees, *planWorkers, run.PlanObserver())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReduce-scatter schedule (Fig. 3d; reversed tree edges):")
	printPhase(sched, collective.Reduce)
	fmt.Println("\nAll-gather schedule:")
	printPhase(sched, collective.Gather)

	if *baselines {
		fmt.Println("\nRing all-gather phase (Fig. 4a):")
		printPhase(ring.Build(topo, topo.Nodes()*4), collective.Gather)
		ds, err := dbtree.Build(topo, topo.Nodes()*4, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nDouble-binary-tree broadcast (Fig. 4b; odd steps are tree 0, even steps tree 1):")
		printPhase(ds, collective.Gather)
	}

	if *util {
		fmt.Println()
		for _, alg := range []string{"ring", "multitree"} {
			var us *collective.Schedule
			if alg == "ring" {
				us = ring.Build(topo, topo.Nodes()*64)
			} else {
				us, err = collective.TreesToSchedule(core.Algorithm, topo, topo.Nodes()*64, trees)
				if err != nil {
					log.Fatal(err)
				}
			}
			fmt.Println(collective.UtilizationChart(us, 50))
		}
	}

	if *traceOut != "" || *linkstats != "" {
		traceSchedule(topo, trees, *traceOut, *linkstats, *bin)
	}

	if *tables {
		nt, err := ni.CompileObserved(trees, topo.Nodes(), run.PlanObserver())
		if err != nil {
			log.Fatal(err)
		}
		nt.Bind(topo.Nodes()*64, topo.Nodes())
		fmt.Println("\nAll-reduce schedule tables (Fig. 5):")
		for _, tab := range nt.PerNode {
			fmt.Println(tab.String())
		}
		fmt.Printf("hardware overhead: %d bits/entry, %d entries, %d bytes/table\n",
			ni.EntryBits(topo.Nodes()), 2*topo.Nodes(), ni.TableBytes(topo.Nodes()))
	}
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}

// exportSchedule resolves the named algorithm through the registry,
// builds its schedule at the requested size, and writes the versioned IR
// file consumed by allreduce-bench -schedule. A non-empty fault spec
// degrades the topology first, so the exported schedule is the re-plan
// that routes around the failed hardware; a spec that disconnects the
// fabric is a fatal error.
func exportSchedule(topo *topology.Topology, algo, size, path, faultSpec string, warmLoads int, run *cliutil.Run) {
	if faultSpec != "" {
		plan, err := faults.ParseSpec(faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		deg, err := faults.Apply(topo, plan)
		if err != nil {
			log.Fatal(err)
		}
		topo = deg.Topo
	}
	spec, msg, err := algorithms.Resolve(algo)
	if err != nil {
		log.Fatal(err)
	}
	if msg {
		log.Fatalf("%q is a flow-control variant; export the base %q schedule instead", algo, spec.Name)
	}
	if !spec.Supports(topo) {
		log.Fatalf("algorithm %q does not support %s", spec.Name, topo.Name())
	}
	dataBytes, err := parseSize(size)
	if err != nil {
		log.Fatal(err)
	}
	elems := int(dataBytes / collective.WordSize)
	s, err := algorithms.Build(topo, spec.Name, elems, run.BuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	run.SetTopology(topo, s)
	run.NoteCacheKey(topo, spec.Name, elems, 0)
	run.Report.Algorithm = spec.Name
	run.Report.DataBytes = dataBytes
	run.Option("faults", faultSpec)
	run.Option("export", path)
	// A .plan destination writes the compact binary IR — the plan cache's
	// on-disk format, ~10x smaller and ~20x faster to decode than the
	// JSON interchange IR, and the practical choice for byte-identity
	// checks on thousand-node schedules whose JSON would run to
	// gigabytes. Any other extension keeps the JSON interchange IR that
	// allreduce-bench -schedule consumes.
	encode := collective.Export
	wrote := false
	if strings.HasSuffix(path, ".plan") {
		encode = collective.ExportBinary
		// With a plan cache attached, the entry for this build holds the
		// exact ExportBinary bytes (stored on a miss, validated on a
		// hit), so the export is a stream copy — skipping a second
		// encode+hash pass over what is ~631 MB at mesh-64x64. Any copy
		// failure falls back to encoding.
		if src, ok := run.CacheEntryPath(); ok {
			wrote = copyFile(path, src) == nil
		}
	}
	if !wrote {
		writeFile(path, func(w io.Writer) error {
			return encode(w, s)
		})
	}
	// -warm-loads replays the build through the cache tiers: the first
	// repeat decodes the on-disk entry (or hits the memory tier when
	// -plan-mem-cache-mb is set), later repeats should be pure memory
	// hits. The counters land in the run report and /metrics, making the
	// warm-serving profile of one plan measurable from the CLI.
	for i := 0; i < warmLoads; i++ {
		if _, err := algorithms.Build(topo, spec.Name, elems, run.BuildOptions()); err != nil {
			log.Fatal(err)
		}
	}
	// The machine-grepable export summary: entity counts plus how the
	// plan was validated ("fresh build", "memory" for a decoded-plan
	// cache hit, or a disk hit accepted on its stored summary vs. the
	// full re-validation pass).
	var deps int64
	for i := range s.Transfers {
		deps += int64(len(s.Transfers[i].Deps))
	}
	fmt.Printf("schedule %s on %s: %d transfers, %d flows, %d dep edges, %d steps, %d data bytes, validation=%s\n",
		s.Algorithm, topo.Name(), len(s.Transfers), len(s.Flows), deps, s.Steps, dataBytes, run.ValidationMode())
	hint := fmt.Sprintf(" (run with allreduce-bench -schedule %s)", path)
	if strings.HasSuffix(path, ".plan") {
		// The binary IR records the topology by fingerprint only, so it
		// cannot be replayed standalone the way the JSON interchange IR can.
		hint = " (binary IR: loadable onto a matching live topology only)"
	}
	log.Printf("wrote %s: %s on %s, %d transfers, %d bytes%s",
		path, s.Algorithm, topo.Name(), len(s.Transfers), dataBytes, hint)
}

// parseSize accepts plain byte counts and KiB/MiB/GiB suffixes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

// traceSchedule simulates the MultiTree schedule with the fluid engine
// under tracing, then replays the compiled Fig. 5 tables through the
// Fig. 6 NI machine with the same recorder, so the export shows both the
// network's link timelines and the NIs' table walks.
func traceSchedule(topo *topology.Topology, trees []*collective.Tree, traceOut, linkstats string, bin float64) {
	sched, err := collective.TreesToSchedule(core.Algorithm, topo, topo.Nodes()*64, trees)
	if err != nil {
		log.Fatal(err)
	}
	rec := &obs.Recorder{}
	cfg := network.DefaultConfig()
	cfg.Tracer = rec
	res, err := network.SimulateFluid(sched, cfg)
	if err != nil {
		log.Fatal(err)
	}
	nt, err := ni.Compile(trees, topo.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	m := ni.NewMachine(nt, topo.Nodes())
	m.Trace = rec
	rounds, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraced fluid simulation: %d cycles, NI machine: %d issue rounds, %d events\n",
		res.Cycles, rounds, len(rec.Events))
	meta := network.TraceMetaFor(sched, "")
	if traceOut != "" {
		writeFile(traceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, meta, rec.Events)
		})
		log.Printf("wrote %s (open in ui.perfetto.dev)", traceOut)
	}
	if linkstats != "" {
		writeFile(linkstats, func(w io.Writer) error {
			met := obs.NewMetrics(bin)
			for _, ev := range rec.Events {
				met.Emit(ev)
			}
			return met.WriteLinkCSV(w, meta.LinkNames)
		})
		log.Printf("wrote %s", linkstats)
	}
}

func copyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func writeFile(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// printPhase lists a schedule's transfers of one opcode grouped by step.
func printPhase(s *collective.Schedule, op collective.Op) {
	lines := map[int][]string{}
	minStep, maxStep := 1<<30, 0
	for i := range s.Transfers {
		tr := &s.Transfers[i]
		if tr.Op != op {
			continue
		}
		lines[tr.Step] = append(lines[tr.Step],
			fmt.Sprintf("n%d->n%d(f%d)", tr.Src, tr.Dst, tr.Flow))
		if tr.Step < minStep {
			minStep = tr.Step
		}
		if tr.Step > maxStep {
			maxStep = tr.Step
		}
	}
	for step := minStep; step <= maxStep; step++ {
		if len(lines[step]) == 0 {
			continue
		}
		fmt.Printf("  step %d:", step)
		for _, l := range lines[step] {
			fmt.Printf(" %s", l)
		}
		fmt.Println()
	}
}
