// Command train-sim regenerates the DNN training evaluation of Fig. 11:
// one data-parallel training iteration of each workload on an 8x8 Torus
// (by default), for every all-reduce algorithm, in the non-overlapped
// (Fig. 11a) and layer-wise overlapped (Fig. 11b) modes.
//
// Usage:
//
//	train-sim                  # Fig. 11a table
//	train-sim -overlap         # Fig. 11b table
//	train-sim -topo torus-4x4  # different system
//	train-sim -csv             # machine-readable output
//
// Observability: -trace / -linkstats export what the network did during
// one model's full-gradient all-reduce (the communication phase of a
// Fig. 11a iteration), using the fluid engine.
//
//	train-sim -model ResNet50 -algo multitree-msg -trace trace.json
//	train-sim -model BERT-Base -algo ring -linkstats links.csv
//
// The shared observability flags of allreduce-bench also apply here:
// -report writes the versioned run report, -progress live planner
// progress on stderr, and -cpuprofile/-memprofile the pprof profiles —
// as do the planner-scaling flags -plan-workers (parallel tree growth),
// -plan-shards (sharded tree growth) and -plan-cache (content-addressed
// on-disk schedule cache).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"multitree/internal/accel"
	"multitree/internal/algorithms"
	_ "multitree/internal/algorithms/all"
	"multitree/internal/cliutil"
	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/experiments"
	"multitree/internal/model"
	"multitree/internal/network"
	"multitree/internal/topology"
	"multitree/internal/topospec"
	"multitree/internal/training"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train-sim: ")
	var (
		overlap = flag.Bool("overlap", false, "layer-wise all-reduce overlapped with back-propagation (Fig. 11b)")
		topoStr = flag.String("topo", "torus-8x8", "topology spec")
		csv     = flag.Bool("csv", false, "CSV output instead of a table")
		layers  = flag.String("layers", "", "print the per-layer profile of one model (e.g. -layers ResNet50)")

		modelName = flag.String("model", "ResNet50", "model whose gradient all-reduce to trace")
		algo      = flag.String("algo", "multitree-msg", "algorithm for -trace/-linkstats ("+strings.Join(algorithms.Names(), ", ")+"; -msg variants allowed)")
		traceOut  = flag.String("trace", "", "write a Chrome-trace JSON (ui.perfetto.dev) of the model's gradient all-reduce")
		linkstats = flag.String("linkstats", "", "write per-link binned utilization CSV of the gradient all-reduce")
		bin       = flag.Float64("bin", 1000, "utilization histogram bin width in cycles for -linkstats")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile   = flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
		reportPath   = flag.String("report", "", "write a structured run report (versioned JSON) to this file")
		progressMode = flag.String("progress", "auto", "live planner progress on stderr: auto (terminals only), on, off")
		planCache    = flag.String("plan-cache", "", "content-addressed plan cache directory: gradient all-reduce schedules load from it when present and are stored after a fresh build")
		planMemMB    = flag.Int64("plan-mem-cache-mb", 0, "in-process decoded-plan cache cap in MiB: the per-layer builds that share one plan skip disk and decode; <= 0 off")
		planWorkers  = flag.Int("plan-workers", 1, "parallel tree-growth workers for the MultiTree planner and section-decode workers for binary-IR plan loads; the schedule built is identical for every value")
		planShards   = flag.Int("plan-shards", 1, "sharded tree growth for the MultiTree planner (geometric root partition); the schedule built is byte-identical for every value")
		verifyPlan   = flag.Bool("verify-plan", false, "re-run the full schedule validation pass on plan-cache hits instead of trusting the stored validation summary")
	)
	flag.Parse()

	topo, err := topospec.Parse(*topoStr)
	if err != nil {
		log.Fatal(err)
	}
	mode := "fig11"
	switch {
	case *layers != "":
		mode = "layers"
	case *traceOut != "" || *linkstats != "":
		mode = "trace"
	}
	run, err := cliutil.StartRun(cliutil.Config{
		Tool: "train-sim", Mode: mode,
		ReportPath:   *reportPath,
		ProgressMode: *progressMode,
		CPUProfile:   *cpuProfile, MemProfile: *memProfile,
		PlanCacheDir: *planCache, PlanMemCacheMB: *planMemMB,
		PlanWorkers: *planWorkers, PlanShards: *planShards, VerifyPlan: *verifyPlan,
	})
	if err != nil {
		log.Fatal(err)
	}
	run.SetTopology(topo, nil)
	finish := func() {
		if err := run.Finish(); err != nil {
			log.Fatal(err)
		}
	}
	if *layers != "" {
		printLayerProfile(topo, *layers, run)
		finish()
		return
	}
	if *traceOut != "" || *linkstats != "" {
		traceGradientAllReduce(topo, *modelName, *algo, *traceOut, *linkstats, *bin, run)
		finish()
		return
	}
	if *overlap {
		run.Option("overlap", "true")
	}
	defer finish()
	rows, err := experiments.Fig11(topo, *overlap)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Println("model,algorithm,compute_cycles,comm_cycles,exposed_cycles,overlap_cycles,total_cycles,normalized_total,allreduce_speedup_vs_ring")
		for _, r := range rows {
			fmt.Printf("%s,%s,%d,%d,%d,%d,%d,%.3f,%.2f\n",
				r.Model, r.Algorithm, r.Compute, r.Comm, r.Exposed, r.Overlap, r.Total,
				r.NormalizedTotal, r.AllReduceSpeedup)
		}
		return
	}
	label := "non-overlapped (Fig. 11a)"
	if *overlap {
		label = "overlapped, layer-wise all-reduce (Fig. 11b)"
	}
	fmt.Printf("Training-time breakdown on %s, batch 16/node, %s\n\n", topo.Name(), label)
	last := ""
	for _, r := range rows {
		if r.Model != last {
			fmt.Printf("%s\n", r.Model)
			last = r.Model
		}
		fmt.Printf("  %-13s compute %8.2f ms   comm %8.2f ms (exposed %8.2f)   total %8.2f ms   norm %5.2f   AR speedup %4.2fx\n",
			r.Algorithm,
			float64(r.Compute)/1e6, float64(r.Comm)/1e6, float64(r.Exposed)/1e6,
			float64(r.Total)/1e6, r.NormalizedTotal, r.AllReduceSpeedup)
	}
}

// traceGradientAllReduce simulates one model's full-gradient all-reduce
// with the fluid engine under tracing and writes the requested exports.
// This is the communication phase of a non-overlapped (Fig. 11a) training
// iteration; the fluid engine keeps multi-hundred-MiB gradients tractable.
func traceGradientAllReduce(topo *topology.Topology, modelName, algo, traceOut, linkstats string, bin float64, run *cliutil.Run) {
	net, err := model.ByName(modelName)
	if err != nil {
		log.Fatal(err)
	}
	spec, msg, err := algorithms.Resolve(algo)
	if err != nil {
		log.Fatal(err)
	}
	if !spec.Supports(topo) {
		log.Fatalf("algorithm %q does not support %s", spec.Name, topo.Name())
	}
	alg := experiments.AlgSpec{Name: algo, Msg: msg}
	tr, err := experiments.TraceAllReduceOpts(topo, alg, net.GradientBytes(), experiments.Fluid, bin, nil, run.BuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	p := tr.Point
	run.SetTopology(topo, tr.Sched)
	run.NoteCacheKey(topo, algo, int(net.GradientBytes()/collective.WordSize), 0)
	run.Report.Algorithm = algo
	run.Report.DataBytes = p.DataBytes
	run.Report.Engine = experiments.Fluid.String()
	run.Option("model", net.Name)
	run.ObserveSim(tr.Metrics)
	if run.Report.Sim != nil {
		run.Report.Sim.Engine = experiments.Fluid.String()
		run.Report.Sim.Cycles = p.Cycles
		run.Report.Sim.BandwidthGBps = p.BandwidthGBps
	}
	fmt.Printf("%s gradient all-reduce: %s on %s, %d bytes, %d cycles, %.2f GB/s, %d events\n",
		net.Name, p.Algorithm, p.Topology, p.DataBytes, p.Cycles, p.BandwidthGBps, len(tr.Events.Events))
	if traceOut != "" {
		writeFile(traceOut, tr.WriteChromeTrace)
		log.Printf("wrote %s (open in ui.perfetto.dev)", traceOut)
	}
	if linkstats != "" {
		writeFile(linkstats, func(w io.Writer) error {
			return tr.Metrics.WriteLinkCSV(w, tr.Meta.LinkNames)
		})
		log.Printf("wrote %s", linkstats)
	}
}

func writeFile(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// printLayerProfile dumps the per-layer compute/gradient/all-reduce
// breakdown of one model under MultiTree with message-based flow control
// — the raw material of the Fig. 11b overlap analysis.
func printLayerProfile(topo *topology.Topology, name string, run *cliutil.Run) {
	net, err := model.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions(topo)
	opts.Observer = run.PlanObserver()
	opts.Workers = run.BuildOptions().Workers
	opts.Shards = run.BuildOptions().Shards
	trees, err := core.BuildTrees(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	run.Option("model", net.Name)
	cfg := training.Config{
		Topo:         topo,
		Accel:        accel.Default(),
		BatchPerNode: 16,
		Net:          network.MessageConfig(),
		Build: func(tp *topology.Topology, elems int) (*collective.Schedule, error) {
			return collective.TreesToSchedule(core.Algorithm, tp, elems, trees)
		},
	}
	rows, err := cfg.Profile(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: per-layer profile (multitree-msg, batch 16/node)\n\n", net.Name, topo.Name())
	fmt.Printf("%-16s %-10s %12s %12s %12s %12s %12s\n",
		"layer", "kind", "params", "grad B", "fwd cyc", "bwd cyc", "allreduce")
	for _, r := range rows {
		fmt.Printf("%-16s %-10s %12d %12d %12d %12d %12d\n",
			r.Name, r.Kind, r.Params, r.GradientBytes,
			r.ForwardCycles, r.BackwardCycles, r.AllReduceCycles)
	}
}
