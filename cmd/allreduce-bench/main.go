// Command allreduce-bench regenerates the all-reduce evaluation data of
// the paper: the bandwidth sweeps of Fig. 9 (per-topology CSV), the
// weak-scaling study of Fig. 10, the algorithm comparison of Table I, and
// the head-flit overhead curve of Fig. 2.
//
// Usage:
//
//	allreduce-bench -fig 9a            # 4x4 and 8x8 Torus sweep
//	allreduce-bench -fig 9b            # 4x4 and 8x8 Mesh
//	allreduce-bench -fig 9c            # 16- and 64-node Fat-Tree
//	allreduce-bench -fig 9d            # 32- and 64-node BiGraph
//	allreduce-bench -fig 10            # weak scaling 16..256 nodes
//	allreduce-bench -fig 2             # head-flit overhead
//	allreduce-bench -table1            # measured Table I
//	allreduce-bench -fig 9a -max 64MiB # full-size sweep (slower)
//	allreduce-bench -fig 9a -engine fluid
//
// Output is CSV on stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"multitree/internal/experiments"
	"multitree/internal/topology"
	"multitree/internal/topospec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("allreduce-bench: ")
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 2, 9a, 9b, 9c, 9d, 10")
		table1   = flag.Bool("table1", false, "emit the measured Table I comparison")
		maxSz    = flag.String("max", "8MiB", "largest all-reduce size for Fig. 9 (the paper uses 64MiB)")
		engine   = flag.String("engine", "", "simulation engine: packet (default for Fig. 9) or fluid")
		topos    = flag.String("topos", "", "comma-separated topology overrides, e.g. torus-4x4,mesh-8x8")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations for Fig. 9 sweeps")
	)
	flag.Parse()

	switch {
	case *table1:
		runTable1(*topos)
	case *fig == "2":
		fmt.Println("payload_bytes,head_flit_overhead")
		for _, p := range experiments.Fig2() {
			fmt.Printf("%d,%.4f\n", p.PayloadBytes, p.Overhead)
		}
	case strings.HasPrefix(*fig, "9"):
		runFig9(*fig, *topos, *maxSz, *engine, *parallel)
	case *fig == "10":
		runFig10()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFig9(fig, topoOverride, maxSz, engineName string, parallel int) {
	specs := map[string][]string{
		"9a": {"torus-4x4", "torus-8x8"},
		"9b": {"mesh-4x4", "mesh-8x8"},
		"9c": {"fattree-16", "fattree-64"},
		"9d": {"bigraph-32", "bigraph-64"},
	}[fig]
	if specs == nil {
		log.Fatalf("unknown figure %q", fig)
	}
	if topoOverride != "" {
		specs = strings.Split(topoOverride, ",")
	}
	maxBytes, err := parseSize(maxSz)
	if err != nil {
		log.Fatal(err)
	}
	// The packet engine is the reference for Fig. 9: it captures the
	// congestion trees that make DBTree and Mesh 2D-Ring collapse at
	// large sizes (§VI-A); the fluid engine is faster but optimistic for
	// those two cases.
	engine := experiments.Packet
	if engineName == "fluid" {
		engine = experiments.Fluid
	}
	fmt.Println("topology,algorithm,data_bytes,cycles,bandwidth_gbps")
	for _, spec := range specs {
		topo, err := topospec.Parse(spec)
		if err != nil {
			log.Fatal(err)
		}
		points, err := experiments.Fig9Parallel(topo, experiments.Fig9Sizes(maxBytes), engine, parallel)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range points {
			fmt.Printf("%s,%s,%d,%d,%.3f\n", p.Topology, p.Algorithm, p.DataBytes, p.Cycles, p.BandwidthGBps)
		}
	}
}

func runFig10() {
	points, err := experiments.Fig10(topospec.TorusFor, []int{16, 32, 64, 128, 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes,algorithm,data_bytes,cycles,normalized_to_ring16")
	for _, p := range points {
		fmt.Printf("%d,%s,%d,%d,%.3f\n", p.Nodes, p.Algorithm, p.DataBytes, p.Cycles, p.Normalized)
	}
}

func runTable1(topoOverride string) {
	specs := []string{"torus-8x8", "mesh-8x8", "fattree-16", "bigraph-32"}
	if topoOverride != "" {
		specs = strings.Split(topoOverride, ",")
	}
	var topos []*topology.Topology
	for _, s := range specs {
		t, err := topospec.Parse(s)
		if err != nil {
			log.Fatal(err)
		}
		topos = append(topos, t)
	}
	rows, err := experiments.Table1(topos, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algorithm,topology,steps,bandwidth_overhead,max_link_overlap,max_hops,contention_free")
	for _, r := range rows {
		fmt.Printf("%s,%s,%d,%.2f,%d,%d,%v\n",
			r.Algorithm, r.Topology, r.Steps, r.BandwidthOverhead, r.MaxLinkOverlap, r.MaxHops,
			r.MaxLinkOverlap <= 1)
	}
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
