// Command allreduce-bench regenerates the all-reduce evaluation data of
// the paper: the bandwidth sweeps of Fig. 9 (per-topology CSV), the
// weak-scaling study of Fig. 10, the algorithm comparison of Table I, and
// the head-flit overhead curve of Fig. 2.
//
// Usage:
//
//	allreduce-bench -fig 9a            # 4x4 and 8x8 Torus sweep
//	allreduce-bench -fig 9b            # 4x4 and 8x8 Mesh
//	allreduce-bench -fig 9c            # 16- and 64-node Fat-Tree
//	allreduce-bench -fig 9d            # 32- and 64-node BiGraph
//	allreduce-bench -fig 10            # weak scaling 16..256 nodes
//	allreduce-bench -fig 2             # head-flit overhead
//	allreduce-bench -table1            # measured Table I
//	allreduce-bench -fig 9a -max 64MiB # full-size sweep (slower)
//	allreduce-bench -fig 9a -engine fluid
//	allreduce-bench -fig 9a -workers 1 # sequential sweep (default GOMAXPROCS)
//
// Fig. 9 sweeps run on a GOMAXPROCS-wide worker pool by default
// (simulations of different points are independent); -workers 1 restores
// the sequential path. In -json mode every point carries wall_ns, the
// host wall-clock nanoseconds spent building and simulating that point,
// so sweep runs double as simulator-throughput measurements.
//
// -cpuprofile and -memprofile attach runtime/pprof profiles to any mode
// (inspect with go tool pprof), so perf work measures instead of guessing:
//
//	allreduce-bench -fig 9a -engine fluid -cpuprofile cpu.out
//
// Every mode can emit a structured run report and a planner phase
// breakdown, and serve live Prometheus metrics while it works:
//
//	allreduce-bench -algo multitree -topo mesh-16x16 -report run.json
//	allreduce-bench -algo multitree -topo mesh-16x16 -planprofile phases.csv
//	allreduce-bench -fig 9a -metrics-addr :9464 -metrics-linger 30s
//	allreduce-bench -validate-report run.json
//
// -report writes the versioned multitree-runreport/v2 JSON (environment,
// topology fingerprint, planner phase wall times, engine counters,
// plan-vs-compile-vs-simulate wall split); -validate-report strictly
// re-decodes one and exits non-zero on any deviation. -progress prints
// live planner progress with an ETA on stderr, auto-detecting terminals
// so CI logs get plain line-buffered output.
//
// Planning large fabrics: -plan-workers N grows MultiTree's trees on N
// goroutines, -plan-shards N partitions growth across fabric shards
// (the schedule is byte-identical for every count of either), and
// -plan-cache DIR keeps built schedules in a content-addressed on-disk
// cache, so repeat runs load a validated plan in milliseconds instead of
// re-planning for minutes:
//
//	allreduce-bench -algo multitree -topo mesh-32x32 -engine fluid \
//	    -plan-cache ~/.cache/multitree-plans -plan-workers 4
//
// Single-run observability mode: -algo selects one algorithm on one
// topology and exports what the simulation did.
//
//	allreduce-bench -algo multitree -topo torus4x4 -trace trace.json
//	allreduce-bench -algo ring -topo torus-4x4 -linkstats links.csv -bin 500
//	allreduce-bench -algo multitree -topo mesh-8x8 -steputil steps.csv
//
// -trace writes Chrome-trace JSON (open in ui.perfetto.dev), -linkstats
// writes per-link time-binned utilization CSV, -steputil writes per-step
// link utilization from the trace next to the static schedule analysis.
//
// Imported-schedule mode: -schedule loads a versioned schedule IR file
// (written by schedule-dump -export) and runs it through both network
// engines, the float32 correctness interpreter, and — when the schedule
// is tree-structured — the Fig. 5 NI table compiler and Fig. 6 machine.
//
//	allreduce-bench -schedule multitree.json
//	allreduce-bench -schedule multitree.json -json
//
// Fault injection: -faults takes a spec of link/node faults
// (link:3-7@t=5000:down, link:0-1:bw=0.5, link:2-3:lat+100, node:12:down,
// comma-separated). In single-run and -schedule modes the faults activate
// mid-flight inside the engines; with -replan (single-run only) the
// topology is degraded first and the algorithm plans around them.
// -resilience sweeps completion time against the failed-link count on
// -topo, re-planning every algorithm and cross-validating both engines:
//
//	allreduce-bench -algo multitree -topo torus-4x4 -faults link:0-1:bw=0.5
//	allreduce-bench -algo multitree -topo torus-4x4 -faults link:0-1:down -replan
//	allreduce-bench -schedule multitree.json -faults link:0-1@t=5000:down
//	allreduce-bench -resilience -topo torus-4x4 -maxfail 2 -seed 42
//
// Output is CSV on stdout; -json switches the single-run, Fig. 9,
// -schedule and -resilience modes to machine-readable JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"multitree/internal/algorithms"
	_ "multitree/internal/algorithms/all"
	"multitree/internal/cliutil"
	"multitree/internal/collective"
	"multitree/internal/experiments"
	"multitree/internal/faults"
	"multitree/internal/network"
	"multitree/internal/ni"
	"multitree/internal/obs"
	"multitree/internal/topology"
	"multitree/internal/topospec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("allreduce-bench: ")
	var (
		fig     = flag.String("fig", "", "figure to regenerate: 2, 9a, 9b, 9c, 9d, 10")
		table1  = flag.Bool("table1", false, "emit the measured Table I comparison")
		maxSz   = flag.String("max", "8MiB", "largest all-reduce size for Fig. 9 (the paper uses 64MiB)")
		engine  = flag.String("engine", "", "simulation engine: packet (default for Fig. 9) or fluid")
		topos   = flag.String("topos", "", "comma-separated topology overrides, e.g. torus-4x4,mesh-8x8")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for Fig. 9 sweeps; 1 runs the sweep sequentially")

		algo      = flag.String("algo", "", "single-run mode: algorithm ("+strings.Join(algorithms.Names(), ", ")+"; append -msg for message-based flow control)")
		topo      = flag.String("topo", "torus-4x4", "single-run mode: topology spec ("+topospec.Usage()+")")
		size      = flag.String("size", "1MiB", "single-run mode: all-reduce data size")
		traceOut  = flag.String("trace", "", "single-run mode: write Chrome-trace JSON (ui.perfetto.dev) to this file")
		linkstats = flag.String("linkstats", "", "single-run mode: write per-link binned utilization CSV to this file")
		steputil  = flag.String("steputil", "", "single-run mode: write per-step link utilization CSV (trace vs static) to this file")
		bin       = flag.Float64("bin", 1000, "single-run mode: utilization histogram bin width in cycles")

		schedFile = flag.String("schedule", "", "run a schedule IR file (schedule-dump -export) through both engines, the correctness interpreter and the NI compiler")
		jsonOut   = flag.Bool("json", false, "emit JSON instead of CSV (single-run, Fig. 9 and -schedule modes)")

		faultSpec  = flag.String("faults", "", "fault spec, e.g. link:3-7@t=5000:down,link:0-1:bw=0.5,node:12:down; injected mid-flight in single-run and -schedule modes, or re-planned around with -replan")
		replan     = flag.Bool("replan", false, "single-run mode: degrade the topology with -faults before planning, so the algorithm routes around the faults instead of hitting them mid-flight")
		resilience = flag.Bool("resilience", false, "sweep completion time vs failed-link count on -topo, re-planning every algorithm on both engines")
		maxFail    = flag.Int("maxfail", 2, "resilience mode: largest failed-link count")
		seed       = flag.Int64("seed", 42, "resilience mode: seed for the deterministic failed-link draw")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write an allocation profile taken at exit to this file")

		reportPath    = flag.String("report", "", "write a structured run report (versioned JSON) to this file")
		planCSV       = flag.String("planprofile", "", "write the planner phase-profile CSV to this file")
		planCache     = flag.String("plan-cache", "", "content-addressed plan cache directory: schedules load from it when present and are stored after a fresh build")
		planCacheMax  = flag.String("plan-cache-max-bytes", "", "evict least-recently-used plan-cache entries above this size (e.g. 256MiB); empty or 0 leaves the cache uncapped")
		planMemMB     = flag.Int64("plan-mem-cache-mb", 0, "in-process decoded-plan cache cap in MiB: repeated builds of one plan (sweeps, resilience re-plans) skip disk and decode; <= 0 off")
		planWorkers   = flag.Int("plan-workers", 1, "parallel tree-growth workers for the MultiTree planner and section-decode workers for binary-IR plan loads; the schedule built is identical for every value")
		planShards    = flag.Int("plan-shards", 1, "sharded tree growth for the MultiTree planner (geometric root partition); the schedule built is byte-identical for every value")
		verifyPlan    = flag.Bool("verify-plan", false, "re-run the full schedule validation pass on plan-cache hits instead of trusting the stored validation summary")
		progressMode  = flag.String("progress", "auto", "live planner progress on stderr: auto (terminals only), on, off")
		metricsAddr   = flag.String("metrics-addr", "", "serve Prometheus metrics at this address (e.g. :9464) during the run")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep the metrics endpoint up this long after the run completes")
		validatePath  = flag.String("validate-report", "", "strictly validate a run report file and exit (the CI check)")
	)
	flag.Parse()

	if *validatePath != "" {
		rep, err := cliutil.ValidateRunReport(*validatePath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid %s (tool %s, mode %s)\n", *validatePath, rep.Schema, rep.Tool, rep.Mode)
		return
	}

	var mode string
	switch {
	case *resilience:
		mode = "resilience"
	case *schedFile != "":
		mode = "schedule"
	case *algo != "":
		mode = "single"
	case *table1:
		mode = "table1"
	case *fig != "":
		mode = "fig" + *fig
	default:
		flag.Usage()
		os.Exit(2)
	}
	cacheMax := int64(0)
	if *planCacheMax != "" {
		v, err := parseSize(*planCacheMax)
		if err != nil {
			log.Fatal(err)
		}
		cacheMax = v
	}
	run, err := cliutil.StartRun(cliutil.Config{
		Tool: "allreduce-bench", Mode: mode,
		ReportPath: *reportPath, PlanCSVPath: *planCSV,
		ProgressMode: *progressMode,
		MetricsAddr:  *metricsAddr, MetricsLinger: *metricsLinger,
		CPUProfile: *cpuProfile, MemProfile: *memProfile,
		PlanCacheDir: *planCache, PlanCacheMaxBytes: cacheMax, PlanMemCacheMB: *planMemMB,
		PlanWorkers: *planWorkers, PlanShards: *planShards, VerifyPlan: *verifyPlan,
	})
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *resilience:
		runResilience(*topo, *size, *maxFail, *seed, *jsonOut, run)
	case *schedFile != "":
		runSchedule(*schedFile, *faultSpec, *jsonOut, run)
	case *algo != "":
		runSingle(*algo, *topo, *size, *engine, *faultSpec, *replan, *traceOut, *linkstats, *steputil, *bin, *jsonOut, run)
	case *table1:
		runTable1(*topos)
	case *fig == "2":
		fmt.Println("payload_bytes,head_flit_overhead")
		for _, p := range experiments.Fig2() {
			fmt.Printf("%d,%.4f\n", p.PayloadBytes, p.Overhead)
		}
	case strings.HasPrefix(*fig, "9"):
		runFig9(*fig, *topos, *maxSz, *engine, *workers, *jsonOut, run)
	case *fig == "10":
		runFig10()
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
	if err := run.Finish(); err != nil {
		log.Fatal(err)
	}
}

// engineReport is one network engine's verdict on an imported schedule.
type engineReport struct {
	Cycles        uint64  `json:"cycles"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
}

// niReport records whether the imported schedule has a Fig. 5 table
// encoding; ring- and HDRM-style schedules do not, and Reason says why.
type niReport struct {
	Compiled    bool   `json:"compiled"`
	IssueRounds int    `json:"issue_rounds,omitempty"`
	Reason      string `json:"reason,omitempty"`
}

// scheduleReport is the full -schedule mode result.
type scheduleReport struct {
	File      string       `json:"file"`
	Algorithm string       `json:"algorithm"`
	Topology  string       `json:"topology"`
	Nodes     int          `json:"nodes"`
	DataBytes int64        `json:"data_bytes"`
	Transfers int          `json:"transfers"`
	Fluid     engineReport `json:"fluid"`
	Packet    engineReport `json:"packet"`
	Correct   bool         `json:"correct"`
	NITables  niReport     `json:"ni_tables"`
}

// runSchedule imports a schedule IR file and gives it the same treatment
// an in-process build gets: both network engines with the Table III
// default link configuration, the float32 all-reduce interpreter over
// ramp inputs, and an NI table-compilation attempt with a Fig. 6 machine
// replay when it succeeds. Validation (DAG shape, link existence, flow
// coverage, topology fingerprint) already happened inside Import.
func runSchedule(path, faultSpec string, jsonOut bool, run *cliutil.Run) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	s, err := collective.Import(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	imported := time.Now()
	plan, err := faults.ParseSpec(faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	dataBytes := int64(s.Elems) * collective.WordSize
	rep := scheduleReport{
		File:      path,
		Algorithm: s.Algorithm,
		Topology:  s.Topo.Name(),
		Nodes:     s.Topo.Nodes(),
		DataBytes: dataBytes,
		Transfers: len(s.Transfers),
	}
	run.SetTopology(s.Topo, s)
	run.Report.Algorithm = s.Algorithm
	run.Report.DataBytes = dataBytes
	run.Option("schedule", path)
	run.Option("faults", faultSpec)
	cfg := network.DefaultConfig()
	if !plan.Empty() {
		cfg.Faults = plan
	}
	var met *obs.Metrics
	if run.Profile != nil {
		met = obs.NewMetrics(0)
		cfg.Tracer = met
	}
	simStart := time.Now()
	fl, err := network.SimulateFluid(s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep.Fluid = engineReport{uint64(fl.Cycles), fl.BandwidthBytesPerCycle(dataBytes)}
	pk, err := network.SimulatePackets(s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep.Packet = engineReport{uint64(pk.Cycles), pk.BandwidthBytesPerCycle(dataBytes)}
	simNanos := time.Since(simStart).Nanoseconds()
	run.ObserveSim(met)
	if err := collective.VerifyAllReduce(s, collective.RampInputs(s.Topo.Nodes(), s.Elems)); err != nil {
		log.Fatalf("imported schedule fails all-reduce correctness: %v", err)
	}
	rep.Correct = true
	niStart := time.Now()
	if tables, err := ni.CompileScheduleObserved(s, run.PlanObserver()); err != nil {
		rep.NITables = niReport{Reason: err.Error()}
	} else {
		rounds, err := ni.NewMachine(tables, len(s.Flows)).Run()
		if err != nil {
			log.Fatal(err)
		}
		rep.NITables = niReport{Compiled: true, IssueRounds: rounds}
	}
	run.Report.Wall = &obs.WallSplit{
		CompileNanos:  imported.Sub(start).Nanoseconds() + time.Since(niStart).Nanoseconds(),
		SimulateNanos: simNanos,
	}
	if jsonOut {
		emitJSON(rep)
		return
	}
	fmt.Printf("schedule %s: %s on %s (%d nodes, %d transfers, %d bytes)\n",
		path, rep.Algorithm, rep.Topology, rep.Nodes, rep.Transfers, dataBytes)
	fmt.Println("engine,data_bytes,cycles,bandwidth_gbps")
	fmt.Printf("fluid,%d,%d,%.3f\n", dataBytes, rep.Fluid.Cycles, rep.Fluid.BandwidthGBps)
	fmt.Printf("packet,%d,%d,%.3f\n", dataBytes, rep.Packet.Cycles, rep.Packet.BandwidthGBps)
	fmt.Println("correctness: all-reduce verified over float32 ramp inputs")
	if rep.NITables.Compiled {
		fmt.Printf("ni tables: compiled, machine completed in %d issue rounds\n", rep.NITables.IssueRounds)
	} else {
		fmt.Printf("ni tables: no Fig. 5 encoding: %s\n", rep.NITables.Reason)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

// runSingle traces one (algorithm, topology, size) run and exports the
// requested artifacts. The packet engine is the default here for the same
// reason as Fig. 9: its per-packet link occupancy gives the most honest
// timelines; -engine fluid selects the flow-level engine.
func runSingle(algo, topoSpec, size, engineName, faultSpec string, replan bool, traceOut, linkstats, steputil string, bin float64, jsonOut bool, run *cliutil.Run) {
	topo, err := topospec.Parse(normalizeTopoSpec(topoSpec))
	if err != nil {
		log.Fatal(err)
	}
	dataBytes, err := parseSize(size)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := faults.ParseSpec(faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	if replan && plan.Empty() {
		log.Fatal("-replan needs a -faults spec to plan around")
	}
	if replan {
		// Topology-layer faults: plan the collective on the degraded fabric
		// so routes avoid the failed links by construction.
		deg, err := faults.Apply(topo, plan)
		if err != nil {
			log.Fatal(err)
		}
		topo = deg.Topo
		plan = nil // already baked into the degraded view
	}
	alg := experiments.AlgSpec{Name: algo, Msg: strings.HasSuffix(algo, "-msg")}
	engine := experiments.Packet
	if engineName == "fluid" {
		engine = experiments.Fluid
	}
	if plan.Empty() {
		plan = nil
	}
	tr, err := experiments.TraceAllReduceOpts(topo, alg, dataBytes, engine, bin, plan, run.BuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	p := tr.Point
	run.SetTopology(topo, tr.Sched)
	run.NoteCacheKey(topo, algo, int(dataBytes/collective.WordSize), 0)
	run.Report.Algorithm = algo
	run.Report.DataBytes = dataBytes
	run.Report.Engine = engine.String()
	run.Option("faults", faultSpec)
	if replan {
		run.Option("replan", "true")
	}
	run.ObserveSim(tr.Metrics)
	if run.Report.Sim != nil {
		run.Report.Sim.Engine = engine.String()
		run.Report.Sim.Cycles = p.Cycles
		run.Report.Sim.BandwidthGBps = p.BandwidthGBps
	}
	run.Report.Wall = &obs.WallSplit{
		PlanNanos:     p.PlanNanos,
		SimulateNanos: p.WallNanos - p.PlanNanos,
	}
	if jsonOut {
		emitJSON(struct {
			experiments.AllReducePoint
			Engine string `json:"engine"`
			Events int    `json:"events"`
		}{p, engine.String(), len(tr.Events.Events)})
	} else {
		fmt.Println("topology,algorithm,engine,data_bytes,cycles,bandwidth_gbps,events")
		fmt.Printf("%s,%s,%s,%d,%d,%.3f,%d\n",
			p.Topology, p.Algorithm, engine, p.DataBytes, p.Cycles, p.BandwidthGBps, len(tr.Events.Events))
	}

	if traceOut != "" {
		writeFile(traceOut, tr.WriteChromeTrace)
		log.Printf("wrote %s (open in ui.perfetto.dev)", traceOut)
	}
	if linkstats != "" {
		writeFile(linkstats, func(w io.Writer) error {
			return tr.Metrics.WriteLinkCSV(w, tr.Meta.LinkNames)
		})
		log.Printf("wrote %s", linkstats)
	}
	if steputil != "" {
		writeFile(steputil, func(w io.Writer) error {
			return writeStepUtil(w, tr)
		})
		log.Printf("wrote %s", steputil)
	}
}

// writeStepUtil emits per-step link utilization two ways: measured from
// the trace's link-acquired events, and statically from the schedule's
// per-step link sets. The two columns must agree — the static number is
// the paper's Fig. 3/4 utilization metric.
func writeStepUtil(w io.Writer, tr *experiments.TracedResult) error {
	traced := obs.StepLinkUtilization(tr.Events.Events, len(tr.Sched.Topo.Links()))
	static := collective.StepUtilization(tr.Sched)
	if _, err := fmt.Fprintln(w, "step,trace_util,static_util"); err != nil {
		return err
	}
	for step := 1; step < len(static) || step < len(traced); step++ {
		var t, s float64
		if step < len(traced) {
			t = traced[step]
		}
		if step < len(static) {
			s = static[step]
		}
		if _, err := fmt.Fprintf(w, "%d,%.4f,%.4f\n", step, t, s); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// normalizeTopoSpec accepts the dashless shorthand "torus4x4" for
// "torus-4x4" by inserting a dash before the first digit run.
func normalizeTopoSpec(spec string) string {
	if i := strings.IndexFunc(spec, func(r rune) bool { return r >= '0' && r <= '9' }); i > 0 && spec[i-1] != '-' {
		return spec[:i] + "-" + spec[i:]
	}
	return spec
}

func runFig9(fig, topoOverride, maxSz, engineName string, workers int, jsonOut bool, run *cliutil.Run) {
	specs := map[string][]string{
		"9a": {"torus-4x4", "torus-8x8"},
		"9b": {"mesh-4x4", "mesh-8x8"},
		"9c": {"fattree-16", "fattree-64"},
		"9d": {"bigraph-32", "bigraph-64"},
	}[fig]
	if specs == nil {
		log.Fatalf("unknown figure %q", fig)
	}
	if topoOverride != "" {
		specs = strings.Split(topoOverride, ",")
	}
	maxBytes, err := parseSize(maxSz)
	if err != nil {
		log.Fatal(err)
	}
	// The packet engine is the reference for Fig. 9: it captures the
	// congestion trees that make DBTree and Mesh 2D-Ring collapse at
	// large sizes (§VI-A); the fluid engine is faster but optimistic for
	// those two cases.
	engine := experiments.Packet
	if engineName == "fluid" {
		engine = experiments.Fluid
	}
	run.Report.Engine = engine.String()
	run.Option("topos", strings.Join(specs, ","))
	run.Option("max", maxSz)
	run.Option("workers", strconv.Itoa(workers))
	var all []experiments.AllReducePoint
	if !jsonOut {
		fmt.Println("topology,algorithm,data_bytes,cycles,bandwidth_gbps")
	}
	for _, spec := range specs {
		topo, err := topospec.Parse(spec)
		if err != nil {
			log.Fatal(err)
		}
		points, err := experiments.Fig9ParallelOpts(topo, experiments.Fig9Sizes(maxBytes), engine, workers, run.BuildOptions())
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range points {
			run.Report.Points = append(run.Report.Points, obs.ReportPoint{
				Topology:      p.Topology,
				Algorithm:     p.Algorithm,
				DataBytes:     p.DataBytes,
				Cycles:        p.Cycles,
				BandwidthGBps: p.BandwidthGBps,
				WallNanos:     p.WallNanos,
				PlanNanos:     p.PlanNanos,
			})
		}
		if jsonOut {
			all = append(all, points...)
			continue
		}
		for _, p := range points {
			fmt.Printf("%s,%s,%d,%d,%.3f\n", p.Topology, p.Algorithm, p.DataBytes, p.Cycles, p.BandwidthGBps)
		}
	}
	if jsonOut {
		emitJSON(all)
	}
}

// runResilience sweeps completion time against the number of failed
// links on one topology: deterministic connectivity-preserving failure
// draws, every algorithm re-planned on the degraded fabric, both engines.
func runResilience(topoSpec, size string, maxFail int, seed int64, jsonOut bool, run *cliutil.Run) {
	topo, err := topospec.Parse(normalizeTopoSpec(topoSpec))
	if err != nil {
		log.Fatal(err)
	}
	dataBytes, err := parseSize(size)
	if err != nil {
		log.Fatal(err)
	}
	run.SetTopology(topo, nil)
	run.Report.DataBytes = dataBytes
	run.Option("maxfail", strconv.Itoa(maxFail))
	run.Option("seed", strconv.FormatInt(seed, 10))
	points, err := experiments.Resilience(topo, maxFail, seed, dataBytes)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		emitJSON(points)
		return
	}
	fmt.Println("topology,failed_links,algorithm,engine,data_bytes,cycles,bandwidth_gbps,supported,note")
	for _, p := range points {
		fmt.Printf("%s,%d,%s,%s,%d,%d,%.3f,%v,%s\n",
			p.Topology, p.FailedLinks, p.Algorithm, p.Engine, p.DataBytes,
			p.Cycles, p.BandwidthGBps, p.Supported, p.Note)
	}
}

func runFig10() {
	points, err := experiments.Fig10(topospec.TorusFor, []int{16, 32, 64, 128, 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes,algorithm,data_bytes,cycles,normalized_to_ring16")
	for _, p := range points {
		fmt.Printf("%d,%s,%d,%d,%.3f\n", p.Nodes, p.Algorithm, p.DataBytes, p.Cycles, p.Normalized)
	}
}

func runTable1(topoOverride string) {
	specs := []string{"torus-8x8", "mesh-8x8", "fattree-16", "bigraph-32"}
	if topoOverride != "" {
		specs = strings.Split(topoOverride, ",")
	}
	var topos []*topology.Topology
	for _, s := range specs {
		t, err := topospec.Parse(s)
		if err != nil {
			log.Fatal(err)
		}
		topos = append(topos, t)
	}
	rows, err := experiments.Table1(topos, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algorithm,topology,steps,bandwidth_overhead,max_link_overlap,max_hops,contention_free")
	for _, r := range rows {
		fmt.Printf("%s,%s,%d,%.2f,%d,%d,%v\n",
			r.Algorithm, r.Topology, r.Steps, r.BandwidthOverhead, r.MaxLinkOverlap, r.MaxHops,
			r.MaxLinkOverlap <= 1)
	}
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
