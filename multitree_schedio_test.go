package multitree

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicExportImport: the facade-level IR round trip preserves
// identity, semantics, and timing, and the imported schedule simulates
// through the public API without the original Topology object.
func TestPublicExportImport(t *testing.T) {
	topo := NewTorus(4, 4)
	orig, err := BuildSchedule(topo, MultiTree, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Export(&buf); err != nil {
		t.Fatal(err)
	}
	imp, err := ImportSchedule(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if imp.Algorithm() != orig.Algorithm() || imp.Steps() != orig.Steps() || imp.Transfers() != orig.Transfers() {
		t.Fatal("imported schedule header differs")
	}
	if imp.Topology().Nodes() != topo.Nodes() {
		t.Fatalf("imported topology has %d nodes, want %d", imp.Topology().Nodes(), topo.Nodes())
	}
	if err := imp.Verify(); err != nil {
		t.Fatal(err)
	}
	a, err := orig.Simulate(SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := imp.Simulate(SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("imported schedule simulates in %d cycles, original in %d", b.Cycles, a.Cycles)
	}
}

// TestPublicImportRejectsGarbage: non-IR input fails with an error, not a
// panic or a half-built schedule.
func TestPublicImportRejectsGarbage(t *testing.T) {
	if _, err := ImportSchedule(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ImportSchedule(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("empty IR accepted")
	}
}
