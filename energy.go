package multitree

import "multitree/internal/network"

// Energy reports the estimated interconnect energy of one collective
// (§IV-B's efficiency argument, quantified with an event-count model:
// flit-hops, buffer accesses, and per-packet routing/arbitration).
type Energy struct {
	FlitHops         int64
	PacketEvents     int64
	LinkPJ           float64
	BufferPJ         float64
	RouteArbitratePJ float64
	TotalMicrojoules float64
}

// EstimateEnergy prices the schedule's on-wire events under the selected
// flow control. Message-based flow control lowers both the flit count
// (one head flit per gradient message) and the routing/arbitration events
// (sub-packets follow the established path).
func (s *Schedule) EstimateEnergy(opt SimOptions) (Energy, error) {
	e, err := network.EstimateEnergy(s.s, opt.internal(), network.DefaultEnergyModel())
	if err != nil {
		return Energy{}, err
	}
	return Energy{
		FlitHops:         e.Flits,
		PacketEvents:     e.Packets,
		LinkPJ:           e.LinkPJ,
		BufferPJ:         e.BufferPJ,
		RouteArbitratePJ: e.RoutePJ + e.ArbPJ,
		TotalMicrojoules: e.TotalUJ(),
	}, nil
}
