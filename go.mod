module multitree

go 1.22
