package multitree

import (
	"multitree/internal/accel"
	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/model"
	"multitree/internal/network"
	"multitree/internal/sim"
	"multitree/internal/topology"
	"multitree/internal/training"
)

// Models lists the DNN workloads of the paper's evaluation.
func Models() []string {
	zoo := model.Zoo()
	names := make([]string, len(zoo))
	for i, n := range zoo {
		names[i] = n.Name
	}
	return names
}

// ModelInfo summarizes a workload.
type ModelInfo struct {
	Name          string
	Layers        int
	Params        int64
	GradientBytes int64
	MACsPerSample int64
}

// DescribeModel returns a workload's size summary.
func DescribeModel(name string) (ModelInfo, error) {
	n, err := model.ByName(name)
	if err != nil {
		return ModelInfo{}, err
	}
	return ModelInfo{
		Name:          n.Name,
		Layers:        len(n.Layers),
		Params:        n.Params(),
		GradientBytes: n.GradientBytes(),
		MACsPerSample: n.MACs(),
	}, nil
}

// TrainingOptions configures a training-iteration simulation.
type TrainingOptions struct {
	// BatchPerNode defaults to 16 samples per accelerator (§V-B).
	BatchPerNode int

	// Overlapped selects layer-wise all-reduce (Fig. 11b) instead of the
	// non-overlapped forward+backward+all-reduce sequence (Fig. 11a).
	Overlapped bool

	// Sim selects the network configuration.
	Sim SimOptions
}

// TrainingResult reports one iteration's time breakdown in cycles
// (nanoseconds at the 1 GHz clock).
type TrainingResult struct {
	Model     string
	Algorithm Algorithm

	ForwardCycles  uint64
	BackwardCycles uint64
	CommCycles     uint64 // total all-reduce busy time
	ExposedCycles  uint64 // communication not hidden under compute
	OverlapCycles  uint64 // communication hidden under compute
	TotalCycles    uint64
}

// CommFraction returns exposed communication as a fraction of iteration
// time.
func (r TrainingResult) CommFraction() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.ExposedCycles) / float64(r.TotalCycles)
}

// SimulateTraining runs one data-parallel training iteration of the named
// model on the topology with the chosen all-reduce algorithm.
func SimulateTraining(t *Topology, alg Algorithm, modelName string, opt TrainingOptions) (TrainingResult, error) {
	net, err := model.ByName(modelName)
	if err != nil {
		return TrainingResult{}, err
	}
	if opt.BatchPerNode <= 0 {
		opt.BatchPerNode = 16
	}
	cfg := training.Config{
		Topo:         t.t,
		Accel:        accel.Default(),
		BatchPerNode: opt.BatchPerNode,
		Net:          opt.Sim.internal(),
		Build:        scheduleBuilder(alg),
	}
	if opt.Sim.PacketLevel {
		cfg.Engine = network.SimulatePackets
	}
	var (
		b    training.Breakdown
		berr error
	)
	if opt.Overlapped {
		b, berr = cfg.Overlapped(net)
	} else {
		b, berr = cfg.NonOverlapped(net)
	}
	if berr != nil {
		return TrainingResult{}, berr
	}
	return TrainingResult{
		Model:          net.Name,
		Algorithm:      alg,
		ForwardCycles:  uint64(b.Forward),
		BackwardCycles: uint64(b.Backward),
		CommCycles:     uint64(b.Comm),
		ExposedCycles:  uint64(b.Exposed),
		OverlapCycles:  uint64(b.Overlap),
		TotalCycles:    uint64(b.Total),
	}, nil
}

// scheduleBuilder adapts an Algorithm to the training package's builder.
// For MultiTree the schedule trees are built once per topology and reused
// for every layer size — the paper's deployment model, where "the
// schedules are computed once during initialization and loaded to network
// interfaces for reuse in the iterative training epochs" (§V-A).
func scheduleBuilder(alg Algorithm) training.ScheduleBuilder {
	if alg != MultiTree {
		return func(topo *topology.Topology, elems int) (*collective.Schedule, error) {
			s, err := BuildSchedule(&Topology{t: topo}, alg, int64(elems)*collective.WordSize)
			if err != nil {
				return nil, err
			}
			return s.s, nil
		}
	}
	cache := map[*topology.Topology][]*collective.Tree{}
	return func(topo *topology.Topology, elems int) (*collective.Schedule, error) {
		trees, ok := cache[topo]
		if !ok {
			var err error
			trees, err = core.BuildTrees(topo, core.DefaultOptions(topo))
			if err != nil {
				return nil, err
			}
			cache[topo] = trees
		}
		return collective.TreesToSchedule(core.Algorithm, topo, elems, trees)
	}
}

func simTime(ns int) sim.Time { return sim.Time(ns) }
