package multitree_test

import (
	"fmt"
	"testing"

	multitree "multitree"
)

// TestEndToEndMatrix is the integration sweep: every public topology
// constructor x every supported algorithm, verified for all-reduce
// correctness and simulated by both engines at a small size.
func TestEndToEndMatrix(t *testing.T) {
	topos := []*multitree.Topology{
		multitree.NewTorus(4, 4),
		multitree.NewMesh(4, 4),
		multitree.NewFatTree(4, 4, 4),
		multitree.NewBiGraph(4, 4),
		multitree.NewTorus3D(2, 2, 4),
		multitree.NewMesh3D(2, 2, 4),
		multitree.NewDragonfly(4, 4, 1),
	}
	for _, topo := range topos {
		for _, alg := range multitree.Algorithms() {
			if !topo.Supports(alg) {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s", topo.Name(), alg), func(t *testing.T) {
				s, err := multitree.BuildSchedule(topo, alg, 64<<10)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Verify(); err != nil {
					t.Fatal(err)
				}
				fluid, err := s.Simulate(multitree.SimOptions{})
				if err != nil {
					t.Fatal(err)
				}
				packet, err := s.Simulate(multitree.SimOptions{PacketLevel: true})
				if err != nil {
					t.Fatal(err)
				}
				if fluid.Cycles == 0 || packet.Cycles == 0 {
					t.Fatalf("zero-cycle simulation: fluid %d packet %d", fluid.Cycles, packet.Cycles)
				}
				// MultiTree stays contention-free everywhere.
				if alg == multitree.MultiTree && !s.ContentionFree() {
					t.Error("multitree schedule contends")
				}
			})
		}
	}
}

// TestEndToEndTrainingMatrix smoke-tests every model under both training
// modes through the public API.
func TestEndToEndTrainingMatrix(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	for _, name := range multitree.Models() {
		for _, overlapped := range []bool{false, true} {
			r, err := multitree.SimulateTraining(topo, multitree.MultiTree, name,
				multitree.TrainingOptions{Overlapped: overlapped, Sim: multitree.SimOptions{MessageBased: true}})
			if err != nil {
				t.Fatalf("%s overlapped=%v: %v", name, overlapped, err)
			}
			if r.TotalCycles == 0 {
				t.Errorf("%s overlapped=%v: zero total", name, overlapped)
			}
			if r.OverlapCycles+r.ExposedCycles != r.CommCycles {
				t.Errorf("%s overlapped=%v: comm accounting broken: %+v", name, overlapped, r)
			}
		}
	}
}
