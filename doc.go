// Package multitree is a from-scratch reproduction of "Communication
// Algorithm-Architecture Co-Design for Distributed Deep Learning" (Huang
// et al., ISCA 2021): the MultiTree topology-aware all-reduce algorithm,
// its co-designed network interface with hardware schedule tables and
// message-based flow control for big gradient exchanges, the four baseline
// all-reduce algorithms it is evaluated against (Ring, Double Binary Tree,
// 2D-Ring, HDRM), discrete-event network simulators at fluid and packet
// granularity, a systolic-array training-accelerator model, and the seven
// DNN workloads of the paper's evaluation.
//
// The root package is the stable public API: build a topology, pick an
// algorithm, build a schedule, simulate it, or simulate whole training
// iterations. The implementation lives in internal/ packages — see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
//
// Quick start:
//
//	topo := multitree.NewTorus(8, 8)
//	sched, _ := multitree.BuildSchedule(topo, multitree.MultiTree, 64<<20)
//	res, _ := sched.Simulate(multitree.SimOptions{MessageBased: true})
//	fmt.Printf("%.1f GB/s\n", res.BandwidthGBps)
package multitree
