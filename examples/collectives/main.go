// Collectives example: the broader operations of the paper's §VII-B on
// top of the MultiTree schedule trees — standalone reduce-scatter and
// all-gather (hybrid-parallel building blocks), the all-to-all
// personalized exchange of embedding-heavy models like DLRM, a subset
// all-reduce in which only some nodes participate, and the interconnect
// energy estimate that quantifies the message-based flow control's
// efficiency argument.
package main

import (
	"fmt"
	"log"

	multitree "multitree"
)

func main() {
	topo := multitree.NewTorus(4, 4)
	const dataBytes = 4 << 20

	fmt.Printf("MultiTree collectives on %s\n\n", topo.Name())

	type namedSchedule struct {
		name  string
		sched *multitree.Schedule
	}
	var ops []namedSchedule

	ar, err := multitree.BuildSchedule(topo, multitree.MultiTree, dataBytes)
	if err != nil {
		log.Fatal(err)
	}
	ops = append(ops, namedSchedule{"all-reduce", ar})

	rs, err := multitree.BuildReduceScatter(topo, dataBytes)
	if err != nil {
		log.Fatal(err)
	}
	ops = append(ops, namedSchedule{"reduce-scatter", rs})

	ag, err := multitree.BuildAllGather(topo, dataBytes)
	if err != nil {
		log.Fatal(err)
	}
	ops = append(ops, namedSchedule{"all-gather", ag})

	a2a, err := multitree.BuildAllToAll(topo, dataBytes/int64(topo.Nodes()))
	if err != nil {
		log.Fatal(err)
	}
	ops = append(ops, namedSchedule{"all-to-all", a2a})

	sub, err := multitree.BuildSubsetAllReduce(topo, []int{0, 2, 5, 7, 8, 10, 13, 15}, dataBytes)
	if err != nil {
		log.Fatal(err)
	}
	ops = append(ops, namedSchedule{"subset all-reduce (8 of 16)", sub})

	fmt.Printf("%-28s %-7s %-10s %-10s %s\n", "collective", "steps", "transfers", "cycles", "contention-free")
	for _, op := range ops {
		res, err := op.sched.Simulate(multitree.SimOptions{MessageBased: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-7d %-10d %-10d %v\n",
			op.name, op.sched.Steps(), op.sched.Transfers(), res.Cycles, op.sched.ContentionFree())
	}

	// Energy: the §IV-B flow-control co-design in joules.
	pkt, err := ar.EstimateEnergy(multitree.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	msg, err := ar.EstimateEnergy(multitree.SimOptions{MessageBased: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall-reduce interconnect energy, packet-based:  %8.1f uJ (%d arbitration events)\n",
		pkt.TotalMicrojoules, pkt.PacketEvents)
	fmt.Printf("all-reduce interconnect energy, message-based: %8.1f uJ (%d arbitration events, %.1f%% saved)\n",
		msg.TotalMicrojoules, msg.PacketEvents,
		100*(1-msg.TotalMicrojoules/pkt.TotalMicrojoules))
}
