// Custom-topology example: MultiTree is topology-aware, not
// topology-specific (§VII-B of the paper). This example builds an
// irregular two-rack cluster — two 4-node leaf switches joined by a
// double-width spine trunk — and shows MultiTree scheduling
// contention-free all-reduce over it, something the fixed-topology
// baselines (2D-Ring, HDRM) cannot target at all, while the
// topology-oblivious double binary tree congests the trunk. On this
// NIC-bound cluster Ring remains competitive for large gradients, the
// same equal-at-large-sizes behaviour the paper reports on Fat-Tree
// (Fig. 9c); MultiTree's schedule stays contention-free without any
// per-topology code.
package main

import (
	"fmt"
	"log"

	multitree "multitree"
)

func main() {
	// Vertices 0..7 are accelerators; switches: 0, 1 are leaves, 2 is the
	// spine.
	b := multitree.NewCustomTopology("two-racks", 8, 3)
	leaf0, leaf1, spine := b.Switch(0), b.Switch(1), b.Switch(2)
	for n := 0; n < 4; n++ {
		b.Connect(n, leaf0)
		b.Connect(4+n, leaf1)
	}
	// A double-width trunk: heterogeneous bandwidth as parallel links (the
	// multigraph treatment of §VII-B).
	b.Connect(leaf0, spine).Connect(leaf0, spine)
	b.Connect(leaf1, spine).Connect(leaf1, spine)
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	const dataBytes = 4 << 20
	fmt.Printf("custom topology %q: %d accelerators, all-reduce %d MiB\n\n",
		topo.Name(), topo.Nodes(), dataBytes>>20)

	for _, alg := range []multitree.Algorithm{multitree.Ring, multitree.DBTree, multitree.MultiTree} {
		sched, err := multitree.BuildSchedule(topo, alg, dataBytes)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.Verify(); err != nil {
			log.Fatalf("%s: %v", alg, err)
		}
		res, err := sched.Simulate(multitree.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s steps=%-3d transfers=%-4d contention-free=%-5v %8.2f GB/s\n",
			alg, sched.Steps(), sched.Transfers(), sched.ContentionFree(), res.BandwidthGBps)
	}
}
