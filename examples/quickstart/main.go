// Quickstart: build an 8x8 Torus, run every applicable all-reduce
// algorithm on a 16 MiB gradient, and print achieved bandwidth — a
// miniature of the paper's Fig. 9a comparison.
package main

import (
	"fmt"
	"log"

	multitree "multitree"
)

func main() {
	topo := multitree.NewTorus(8, 8)
	const dataBytes = 16 << 20

	fmt.Printf("all-reduce of %d MiB on %s (%d accelerators)\n\n",
		dataBytes>>20, topo.Name(), topo.Nodes())
	fmt.Printf("%-12s %-8s %-12s %-12s %s\n", "algorithm", "steps", "cycles", "GB/s", "notes")

	for _, alg := range multitree.Algorithms() {
		if !topo.Supports(alg) {
			continue
		}
		sched, err := multitree.BuildSchedule(topo, alg, dataBytes)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.Verify(); err != nil {
			log.Fatalf("%s does not all-reduce correctly: %v", alg, err)
		}
		res, err := sched.Simulate(multitree.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		notes := fmt.Sprintf("%.2fx-optimal bytes", sched.BandwidthOverhead())
		if sched.ContentionFree() {
			notes += ", contention-free"
		}
		fmt.Printf("%-12s %-8d %-12d %-12.2f %s\n",
			alg, sched.Steps(), res.Cycles, res.BandwidthGBps, notes)
	}

	// The co-designed message-based flow control (§IV-B) recovers the
	// per-packet head-flit overhead for big gradients.
	sched, err := multitree.BuildSchedule(topo, multitree.MultiTree, dataBytes)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.Simulate(multitree.SimOptions{MessageBased: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-8d %-12d %-12.2f message-based flow control\n",
		"mtree-msg", sched.Steps(), res.Cycles, res.BandwidthGBps)
}
