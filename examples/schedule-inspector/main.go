// Schedule-inspector example: walk the paper's worked example (§III-B,
// Fig. 3 and Fig. 5) programmatically — construct the MultiTree schedule
// trees for a 2x2 Mesh, print the per-step link allocation, compile the
// co-designed NI schedule tables, and drive the Fig. 6 state machine to
// prove the tables alone complete a correct all-reduce.
//
// This example reaches below the public facade into the internal packages
// to show the co-design's moving parts; downstream users normally stay on
// the multitree package API (see examples/quickstart).
package main

import (
	"fmt"
	"log"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/ni"
	"multitree/internal/topology"
)

func main() {
	topo := topology.Mesh(2, 2, topology.DefaultLinkConfig())

	// Algorithm 1: one spanning tree per node, built top-down with
	// per-step link allocation.
	trees, err := core.BuildTrees(topo, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 3: all-gather schedule trees of the 2x2 Mesh")
	for _, tr := range trees {
		fmt.Println("  " + tr.String())
	}

	// Lower to the transfer DAG and check the schedule's semantics on
	// real vectors.
	sched, err := collective.TreesToSchedule(core.Algorithm, topo, 1024, trees)
	if err != nil {
		log.Fatal(err)
	}
	if err := collective.VerifyAllReduce(sched, collective.RampInputs(4, 1024)); err != nil {
		log.Fatal(err)
	}
	a := collective.Analyze(sched)
	fmt.Printf("\nschedule: %s\n", a)

	// Compile the Fig. 5 schedule tables and run the Fig. 6 NI state
	// machine on them.
	tables, err := ni.Compile(trees, topo.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	tables.Bind(1024, topo.Nodes())
	fmt.Println("\nFig. 5: per-accelerator schedule tables")
	for _, tab := range tables.PerNode {
		fmt.Println(tab.String())
	}

	machine := ni.NewMachine(tables, topo.Nodes())
	rounds, err := machine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NI state machine completed the all-reduce in %d issue rounds\n", rounds)
	fmt.Printf("hardware cost: %d bits/entry, %d B/table (paper: ~200 bits, 3.2 KB at 64 nodes)\n",
		ni.EntryBits(topo.Nodes()), ni.TableBytes(topo.Nodes()))
}
