// DNN training example: simulate one data-parallel training iteration of
// each evaluation workload on an 8x8 Torus and compare Ring against
// MultiTree with message-based flow control, in both the non-overlapped
// and layer-wise-overlapped modes — the experiment behind the paper's
// headline "up to 81% training time reduction".
package main

import (
	"fmt"
	"log"

	multitree "multitree"
)

func main() {
	topo := multitree.NewTorus(8, 8)

	for _, name := range multitree.Models() {
		info, err := multitree.DescribeModel(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d layers, %.1fM parameters, %.1f MB gradient\n",
			info.Name, info.Layers, float64(info.Params)/1e6, float64(info.GradientBytes)/1e6)

		for _, overlapped := range []bool{false, true} {
			mode := "non-overlapped"
			if overlapped {
				mode = "overlapped    "
			}
			ringRes, err := multitree.SimulateTraining(topo, multitree.Ring, name,
				multitree.TrainingOptions{Overlapped: overlapped})
			if err != nil {
				log.Fatal(err)
			}
			mtRes, err := multitree.SimulateTraining(topo, multitree.MultiTree, name,
				multitree.TrainingOptions{
					Overlapped: overlapped,
					Sim:        multitree.SimOptions{MessageBased: true},
				})
			if err != nil {
				log.Fatal(err)
			}
			reduction := 100 * (1 - float64(mtRes.TotalCycles)/float64(ringRes.TotalCycles))
			fmt.Printf("  %s  ring %7.2f ms -> multitree-msg %7.2f ms  (%.0f%% faster iteration)\n",
				mode, float64(ringRes.TotalCycles)/1e6, float64(mtRes.TotalCycles)/1e6, reduction)
		}
		fmt.Println()
	}
}
