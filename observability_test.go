package multitree

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"multitree/internal/obs"
)

// TestSimulateTraced runs the public tracing path end to end: build,
// simulate with recording, export Chrome-trace JSON and the link CSV, and
// check both artifacts are well formed and consistent with the result.
func TestSimulateTraced(t *testing.T) {
	topo := NewTorus(4, 4)
	s, err := BuildSchedule(topo, MultiTree, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []SimOptions{{}, {PacketLevel: true}} {
		res, tr, err := s.SimulateTraced(opt)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := s.Simulate(opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != plain.Cycles {
			t.Fatalf("tracing changed the simulation: %d vs %d cycles", res.Cycles, plain.Cycles)
		}
		if tr.Events() == 0 {
			t.Fatalf("no events recorded")
		}

		var js bytes.Buffer
		if err := tr.WriteChromeTrace(&js); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
			t.Fatalf("Chrome trace is not valid JSON: %v", err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatalf("Chrome trace has no events")
		}

		var csv bytes.Buffer
		if err := tr.WriteLinkStats(&csv, 1000); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
		if len(lines) < 2 || !strings.HasPrefix(lines[0], "link,name,") {
			t.Fatalf("bad link CSV:\n%s", csv.String())
		}
	}
}

// TestBuildScheduleProfiled: the public profiled build produces the
// same schedule as the plain one and a usable phase breakdown.
func TestBuildScheduleProfiled(t *testing.T) {
	topo := NewTorus(4, 4)
	plain, err := BuildSchedule(topo, MultiTree, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanProfile()
	prof, err := BuildScheduleProfiled(topo, MultiTree, 1<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Steps() != prof.Steps() || plain.Transfers() != prof.Transfers() {
		t.Errorf("profiled build differs: %d/%d steps, %d/%d transfers",
			plain.Steps(), prof.Steps(), plain.Transfers(), prof.Transfers())
	}
	if p.TotalWallNanos() <= 0 {
		t.Error("profile recorded no planner wall time")
	}
	if done, total := p.Progress(); total == 0 || done != total {
		t.Errorf("pipeline incomplete after build: %d/%d", done, total)
	}
	var csv strings.Builder
	if err := p.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "tree-growth") {
		t.Errorf("profile CSV missing tree-growth phase:\n%s", csv.String())
	}
}

// TestSimOptionsMetrics checks the Metrics field collects without a Tracer
// and composes with one.
func TestSimOptionsMetrics(t *testing.T) {
	topo := NewTorus(4, 4)
	s, err := BuildSchedule(topo, Ring, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics(0)
	rec := &obs.Recorder{}
	if _, err := s.Simulate(SimOptions{Metrics: met, Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	if met.Events() == 0 || int64(len(rec.Events)) != met.Events() {
		t.Fatalf("metrics saw %d events, recorder %d", met.Events(), len(rec.Events))
	}
	if met.StepEnters() == 0 {
		t.Fatalf("no lockstep step entries observed")
	}
	busy := met.LinkBusy()
	total := 0.0
	for _, b := range busy {
		total += b
	}
	if total == 0 {
		t.Fatalf("no link busy time collected")
	}
}
