package multitree

import (
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/topology"
)

// The broader collectives of §VII-B, built on the MultiTree schedule
// trees: standalone reduce-scatter and all-gather for hybrid-parallel
// training, and the all-to-all personalized exchange used by
// embedding-heavy workloads such as DLRM.

// BuildReduceScatter constructs a MultiTree reduce-scatter of dataBytes:
// after execution node i holds the fully reduced i-th segment.
func BuildReduceScatter(t *Topology, dataBytes int64) (*Schedule, error) {
	elems, err := elemsOf(dataBytes)
	if err != nil {
		return nil, err
	}
	s, err := core.BuildReduceScatter(t.t, elems, core.DefaultOptions(t.t))
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}

// BuildAllGather constructs a MultiTree all-gather of dataBytes: node i
// starts owning the i-th segment and every node ends with all segments.
func BuildAllGather(t *Topology, dataBytes int64) (*Schedule, error) {
	elems, err := elemsOf(dataBytes)
	if err != nil {
		return nil, err
	}
	s, err := core.BuildAllGather(t.t, elems, core.DefaultOptions(t.t))
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}

// BuildAllToAll constructs a MultiTree all-to-all in which every node
// sends a personalized message of perMessageBytes to every other node,
// routed along the schedule trees.
func BuildAllToAll(t *Topology, perMessageBytes int64) (*Schedule, error) {
	elems, err := elemsOf(perMessageBytes)
	if err != nil {
		return nil, err
	}
	s, err := core.BuildAllToAll(t.t, elems, core.DefaultOptions(t.t))
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}

// BuildSubsetAllReduce constructs a MultiTree all-reduce over a subset of
// the topology's nodes — the hybrid-parallel case of §VII-B where only
// the data-parallel replicas exchange gradients. Non-member nodes are
// bystanders: in direct networks their routers may forward member
// traffic, but their buffers are untouched.
func BuildSubsetAllReduce(t *Topology, members []int, dataBytes int64) (*Schedule, error) {
	elems, err := elemsOf(dataBytes)
	if err != nil {
		return nil, err
	}
	ids := make([]topology.NodeID, len(members))
	for i, m := range members {
		ids[i] = topology.NodeID(m)
	}
	s, err := core.BuildSubset(t.t, ids, elems, core.DefaultOptions(t.t))
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}

func elemsOf(dataBytes int64) (int, error) {
	elems := int(dataBytes / collective.WordSize)
	if elems < 1 {
		return 0, fmt.Errorf("multitree: data size %d bytes is below one element", dataBytes)
	}
	return elems, nil
}
