package multitree

import (
	"io"

	"multitree/internal/collective"
)

// Export writes the schedule in the versioned IR JSON interchange format:
// header, embedded topology (links + fingerprint), flow segment table,
// and the transfer DAG with every route pinned. The output is
// deterministic — exporting the same schedule twice yields identical
// bytes — and round-trips through ImportSchedule with identical simulated
// timing and reduction semantics.
func (s *Schedule) Export(w io.Writer) error {
	return collective.Export(w, s.s)
}

// ImportSchedule reads a schedule IR file written by Export (or by
// schedule-dump -export), reconstructs its topology from the embedded
// link list, and strictly validates it: dependency DAG acyclicity, link
// existence and path connectivity, flow-range bounds, and full element
// coverage. Malformed files are rejected with a descriptive error.
func ImportSchedule(r io.Reader) (*Schedule, error) {
	s, err := collective.Import(r)
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}

// Topology returns the fabric the schedule targets. For imported
// schedules this is the reconstruction from the file's embedded link
// list, which simulates identically to the original.
func (s *Schedule) Topology() *Topology {
	return &Topology{t: s.s.Topo}
}
