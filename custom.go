package multitree

import "multitree/internal/topology"

// TopologyBuilder assembles a user-defined network, the §VII-B case of
// applying MultiTree to general cluster networks whose topology is known
// or probed. Vertices 0..nodes-1 are accelerators; use Switch to address
// switch vertices.
type TopologyBuilder struct {
	b *topology.CustomBuilder
}

// NewCustomTopology starts a topology with the given accelerator and
// switch counts (switches may be zero for a direct network).
func NewCustomTopology(name string, nodes, switches int) *TopologyBuilder {
	return &TopologyBuilder{b: topology.NewCustom(name, nodes, switches)}
}

// Switch returns the vertex id of switch i, for use with Connect.
func (tb *TopologyBuilder) Switch(i int) int { return tb.b.SwitchVertex(i) }

// Connect adds a full-duplex cable between two vertices with Table III
// link parameters.
func (tb *TopologyBuilder) Connect(a, b int) *TopologyBuilder {
	tb.b.Link(a, b, topology.DefaultLinkConfig())
	return tb
}

// ConnectLinks adds a full-duplex cable with custom bandwidth/latency.
// Wider links can be modeled by calling this multiple times for the same
// vertex pair (the multigraph treatment of §VII-B).
func (tb *TopologyBuilder) ConnectLinks(a, b int, lc LinkConfig) *TopologyBuilder {
	tb.b.Link(a, b, lc.internal())
	return tb
}

// Build validates connectivity and returns the topology.
func (tb *TopologyBuilder) Build() (*Topology, error) {
	t, err := tb.b.Build()
	if err != nil {
		return nil, err
	}
	return &Topology{t: t}, nil
}
