#!/bin/sh
# plan-sweep.sh — the Fig. 9-style planner scaling sweep: cold build
# wall time vs warm trusted-load wall time at growing Mesh sizes,
# through the plan cache's binary IR.
#
#     scripts/plan-sweep.sh [out.csv] [topo...]
#
# Defaults: results/plan-scale-sweep.csv over mesh-16x16 mesh-32x32
# mesh-48x48 mesh-64x64 (256 to 4096 nodes; the 4096-node cold build
# takes minutes — that is the point of the warm columns). Each row
# records the cold build+store wall, the warm run's end-to-end wall
# (load + re-validating re-export), the warm *load* alone (the
# cache-lookup phase of the warm run's planner profile — the number the
# "warm hit in seconds" budget is about), the load's decode vs verify
# CPU split (summed per-worker, so with several decode workers either
# can exceed the load wall), the entry's IR size, and a byte-identity
# check between the two exports.
# PROFILE_DIR=dir additionally writes the cold build's planner phase
# profile to dir/plan-profile-<topo>.csv.
#
# Workers default to 4 (override with PLAN_WORKERS); the cold build
# also shards tree growth, 4 shards by default (override with
# PLAN_SHARDS). The schedule is byte-identical at any worker or shard
# count, so the sweep is reproducible modulo wall time.
set -eu

out=${1:-results/plan-scale-sweep.csv}
[ $# -gt 0 ] && shift
topos=${*:-"mesh-16x16 mesh-32x32 mesh-48x48 mesh-64x64"}
workers=${PLAN_WORKERS:-4}
shards=${PLAN_SHARDS:-4}

bin=$(mktemp -t schedule-dump.XXXXXX)
go build -o "$bin" ./cmd/schedule-dump
cache=$(mktemp -d -t plan-sweep.XXXXXX)
trap 'rm -rf "$cache" "$bin"' EXIT

now() { date +%s.%N; }

echo "topology,nodes,transfers,ir_bytes,cold_wall_s,warm_wall_s,warm_load_s,warm_decode_s,warm_verify_s,warm_validation" > "$out"
for topo in $topos; do
    nodes=$(echo "$topo" | awk -F'[-x]' '{print $2 * $3}')
    profile=""
    if [ -n "${PROFILE_DIR:-}" ]; then
        # mesh-64x64 -> plan-profile-mesh64x64.csv, matching the
        # committed results/ naming.
        profile="-planprofile $PROFILE_DIR/plan-profile-$(printf '%s' "$topo" | sed 's/-//').csv"
    fi
    cold="$cache/$topo-cold.plan"
    warm="$cache/$topo-warm.plan"

    t0=$(now)
    # shellcheck disable=SC2086
    "$bin" -topo "$topo" -algo multitree -size 1MiB -plan-workers "$workers" \
        -plan-shards "$shards" -plan-cache "$cache" -progress off $profile \
        -export "$cold" > "$cache/cold.out"
    t1=$(now)
    "$bin" -topo "$topo" -algo multitree -size 1MiB \
        -plan-cache "$cache" -plan-workers "$workers" -progress off \
        -planprofile "$cache/warm-profile.csv" \
        -export "$warm" > "$cache/warm.out"
    t2=$(now)

    cmp "$cold" "$warm" || { echo "plan-sweep: $topo warm export differs from cold" >&2; exit 1; }
    transfers=$(sed -n 's/^schedule .*: \([0-9]*\) transfers.*/\1/p' "$cache/warm.out")
    validation=$(sed -n 's/.*validation=\(.*\)$/\1/p' "$cache/warm.out")
    warm_load=$(awk -F, '$1 == "cache-lookup" { printf "%.2f", $3 / 1e9 }' "$cache/warm-profile.csv")
    # Header-indexed so the extraction survives future profile columns;
    # summed across phases (decode_ns lands on the decode row, verify_ns
    # on the validate row).
    warm_decode=$(awk -F, 'NR==1 { for (i=1;i<=NF;i++) col[$i]=i; next }
        { d += $col["decode_ns"] } END { printf "%.2f", d/1e9 }' "$cache/warm-profile.csv")
    warm_verify=$(awk -F, 'NR==1 { for (i=1;i<=NF;i++) col[$i]=i; next }
        { v += $col["verify_ns"] } END { printf "%.2f", v/1e9 }' "$cache/warm-profile.csv")
    ir_bytes=$(wc -c < "$cold" | tr -d ' ')
    awk -v t="$topo" -v n="$nodes" -v x="$transfers" -v b="$ir_bytes" \
        -v c0="$t0" -v c1="$t1" -v w1="$t2" -v wl="$warm_load" \
        -v wd="$warm_decode" -v wv="$warm_verify" -v v="$validation" \
        'BEGIN { printf "%s,%d,%d,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%s\n", t, n, x, b, c1-c0, w1-c1, wl, wd, wv, v }' >> "$out"
    rm -f "$cold" "$warm"
    # Flush the row's dirty pages (cache entry + exports) before the next
    # topology's timer starts: writeback from one row otherwise competes
    # with the next row's build and skews its cold wall.
    sync
    echo "plan-sweep: $topo done" >&2
done
echo "plan-sweep: wrote $out" >&2
