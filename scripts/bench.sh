#!/bin/sh
# bench.sh — benchmark-regression harness for the simulator core.
#
# Record mode (default) runs the regression benchmark set and writes two
# artifacts: a raw `go test -bench` log (benchstat-compatible — compare
# two recordings with `benchstat old.txt new.txt`) and a JSON baseline
# with one {name, ns_op, b_op, allocs_op, plan_ns} entry per benchmark
# (plan_ns is the planner's share of the last measured point, so sweep
# recordings double as planner-throughput history):
#
#   scripts/bench.sh                              # -> results/BENCH_pr10.json + .txt
#   scripts/bench.sh -out results/BENCH_new.json  # record elsewhere
#   scripts/bench.sh -benchtime 3x                # extra go-test flags pass through
#
# Check mode re-runs benchmarks and compares them against the committed
# baseline, failing on allocation regressions (the property the
# zero-allocation event core guarantees) while staying tolerant on ns/op
# (CI hardware varies; only a blow-up past NS_FACTOR fails):
#
#   scripts/bench.sh -check                                      # full set
#   scripts/bench.sh -check -bench=BenchmarkTraceOverhead -benchtime=1x
#
# Rules in check mode, per benchmark present in both runs:
#   - allocs/op: baseline 0 must stay 0; otherwise <= 1.25x + 16.
#   - ns/op: must stay under NS_FACTOR (default 4) x baseline.
# Benchmarks missing from the baseline are reported but do not fail.
set -eu

cd "$(dirname "$0")/.."

BASELINE=results/BENCH_pr10.json
DEFAULT_BENCH='^(BenchmarkFig9a_Torus|BenchmarkPacketEngineSteadyState|BenchmarkTraceOverhead|BenchmarkFluidSweep_Torus8x8|BenchmarkFluidEngineSteadyState|BenchmarkPlanMesh16x16|BenchmarkPlanCacheWarmLoad|BenchmarkWarmLoadMesh32x32Parallel|BenchmarkMemCacheHit|BenchmarkLowerMesh32x32|BenchmarkGrowShardedMesh32x32)$'
NS_FACTOR=${NS_FACTOR:-4}

mode=record
out=$BASELINE
passthrough=
have_bench=0
have_time=0
while [ $# -gt 0 ]; do
  case "$1" in
    -check) mode=check ;;
    -out) out=$2; shift ;;
    -bench|-benchtime)
      [ "$1" = -bench ] && have_bench=1 || have_time=1
      passthrough="$passthrough $1 $2"; shift ;;
    -bench=*) have_bench=1; passthrough="$passthrough $1" ;;
    -benchtime=*) have_time=1; passthrough="$passthrough $1" ;;
    -h|-help|--help) sed -n '2,26p' "$0"; exit 0 ;;
    *) passthrough="$passthrough $1" ;;
  esac
  shift
done
[ $have_bench = 1 ] || passthrough="$passthrough -bench $DEFAULT_BENCH"
[ $have_time = 1 ] || passthrough="$passthrough -benchtime 1x"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# shellcheck disable=SC2086  # passthrough is intentionally word-split
go test -run '^$' $passthrough -count=1 . | tee "$raw"

# bench_to_tsv: name<TAB>ns/op<TAB>B/op<TAB>allocs/op<TAB>plan_ns per
# benchmark line. plan_ns (planner share of each all-reduce point, from
# b.ReportMetric) is 0 for benchmarks that do not plan. Other
# ReportMetric columns (GB/s, simCycles, ...) are skipped by matching on
# the unit token; the trailing -N GOMAXPROCS suffix is stripped.
bench_to_tsv() {
  awk '
    /^Benchmark/ {
      name = $1
      sub(/^Benchmark/, "", name)
      sub(/-[0-9]+$/, "", name)
      ns = ""; bytes = "0"; allocs = "0"; plan = "0"
      for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        else if ($i == "B/op") bytes = $(i-1)
        else if ($i == "allocs/op") allocs = $(i-1)
        else if ($i == "plan_ns") plan = $(i-1)
      }
      if (ns != "") printf "%s\t%s\t%s\t%s\t%s\n", name, ns, bytes, allocs, plan
    }
  ' "$1"
}

if [ "$mode" = record ]; then
  txt=${out%.json}.txt
  cp "$raw" "$txt"
  {
    echo '{'
    printf '  "schema": "multitree-bench/v1",\n'
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "goos": "%s",\n' "$(go env GOOS)"
    printf '  "goarch": "%s",\n' "$(go env GOARCH)"
    printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "benchmarks": [\n'
    bench_to_tsv "$raw" | awk -F'\t' '
      { lines[NR] = sprintf("    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s, \"plan_ns\": %s}", $1, $2, $3, $4, $5) }
      END { for (i = 1; i <= NR; i++) printf "%s%s\n", lines[i], (i < NR ? "," : "") }
    '
    printf '  ]\n'
    echo '}'
  } > "$out"
  echo "wrote $out and $txt"
  exit 0
fi

# Check mode: join the fresh run against the baseline JSON (one benchmark
# object per line, as record mode writes it).
[ -f "$BASELINE" ] || { echo "bench.sh: no baseline at $BASELINE; run scripts/bench.sh first" >&2; exit 1; }
bench_to_tsv "$raw" | awk -F'\t' -v base="$BASELINE" -v nsf="$NS_FACTOR" '
  BEGIN {
    while ((getline line < base) > 0) {
      if (line !~ /"name":/) continue
      name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      ns = line; sub(/.*"ns_op": /, "", ns); sub(/[,}].*/, "", ns)
      al = line; sub(/.*"allocs_op": /, "", al); sub(/[,}].*/, "", al)
      baseNs[name] = ns + 0; baseAllocs[name] = al + 0
    }
    close(base)
    fails = 0
  }
  {
    name = $1; ns = $2 + 0; allocs = $4 + 0
    if (!(name in baseNs)) {
      printf "SKIP  %-50s not in baseline (ns/op %.0f, allocs/op %d)\n", name, ns, allocs
      next
    }
    bNs = baseNs[name]; bAl = baseAllocs[name]
    ok = "ok  "
    if ((bAl == 0 && allocs > 0) || (bAl > 0 && allocs > bAl*1.25 + 16)) {
      ok = "FAIL"; fails++
      printf "%s  %-50s allocs/op %d -> %d (regression)\n", ok, name, bAl, allocs
      next
    }
    if (bNs > 0 && ns > bNs*nsf) {
      ok = "FAIL"; fails++
      printf "%s  %-50s ns/op %.0f -> %.0f (> %sx baseline)\n", ok, name, bNs, ns, nsf
      next
    }
    printf "%s  %-50s ns/op %.0f -> %.0f, allocs/op %d -> %d\n", ok, name, bNs, ns, bAl, allocs
  }
  END {
    if (fails > 0) { printf "bench.sh: %d benchmark regression(s) vs %s\n", fails, base; exit 1 }
    print "bench.sh: no regressions vs " base
  }
'
