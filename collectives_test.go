package multitree_test

import (
	"testing"

	multitree "multitree"
)

func TestPublicReduceScatterAllGather(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	rs, err := multitree.BuildReduceScatter(topo, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := multitree.BuildAllGather(topo, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := multitree.BuildSchedule(topo, multitree.MultiTree, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Transfers()+ag.Transfers() != ar.Transfers() {
		t.Errorf("rs (%d) + ag (%d) transfers != all-reduce (%d)",
			rs.Transfers(), ag.Transfers(), ar.Transfers())
	}
	for name, s := range map[string]*multitree.Schedule{"rs": rs, "ag": ag} {
		if !s.ContentionFree() {
			t.Errorf("%s contends", name)
		}
		res, err := s.Simulate(multitree.SimOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cycles == 0 {
			t.Errorf("%s took zero cycles", name)
		}
	}
	// Each phase moves half the all-reduce traffic, so it finishes faster.
	rsRes, _ := rs.Simulate(multitree.SimOptions{})
	arRes, _ := ar.Simulate(multitree.SimOptions{})
	if rsRes.Cycles >= arRes.Cycles {
		t.Errorf("reduce-scatter (%d cycles) not faster than all-reduce (%d)", rsRes.Cycles, arRes.Cycles)
	}
}

func TestPublicAllToAll(t *testing.T) {
	topo := multitree.NewFatTree(4, 4, 4)
	s, err := multitree.BuildAllToAll(topo, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate(multitree.SimOptions{MessageBased: true})
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all moves N*(N-1) personalized messages; each crosses at
	// least one tree edge, and forwarded messages cross several.
	n := int64(topo.Nodes())
	if res.PayloadBytes < n*(n-1)*(64<<10) {
		t.Errorf("payload %d bytes, want >= %d", res.PayloadBytes, n*(n-1)*(64<<10))
	}
}

func TestCollectivesRejectTinySizes(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	if _, err := multitree.BuildAllToAll(topo, 2); err == nil {
		t.Error("sub-element message accepted")
	}
	if _, err := multitree.BuildReduceScatter(topo, 0); err == nil {
		t.Error("zero-size reduce-scatter accepted")
	}
}

func TestPublicSubsetAllReduce(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	s, err := multitree.BuildSubsetAllReduce(topo, []int{0, 2, 8, 10}, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !s.ContentionFree() {
		t.Error("subset schedule contends")
	}
	res, err := s.Simulate(multitree.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("subset all-reduce took zero cycles")
	}
	if _, err := multitree.BuildSubsetAllReduce(topo, []int{5}, 1024); err == nil {
		t.Error("single-member subset accepted")
	}
}

func TestPublicEnergyEstimate(t *testing.T) {
	topo := multitree.NewTorus(4, 4)
	s, err := multitree.BuildSchedule(topo, multitree.MultiTree, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := s.EstimateEnergy(multitree.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := s.EstimateEnergy(multitree.SimOptions{MessageBased: true})
	if err != nil {
		t.Fatal(err)
	}
	if msg.TotalMicrojoules >= pkt.TotalMicrojoules {
		t.Errorf("message-based energy %.1f uJ not below packet-based %.1f uJ",
			msg.TotalMicrojoules, pkt.TotalMicrojoules)
	}
	if msg.PacketEvents >= pkt.PacketEvents/10 {
		t.Errorf("arbitration events %d vs %d: expected order-of-magnitude cut",
			msg.PacketEvents, pkt.PacketEvents)
	}
}
