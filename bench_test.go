package multitree_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the design-choice ablations called out in DESIGN.md.
// Each benchmark regenerates its experiment's data points and reports the
// headline quantity (bandwidth in GB/s, normalized time, etc.) through
// b.ReportMetric, so `go test -bench=.` prints the same series the paper
// plots. The cmd/allreduce-bench and cmd/train-sim tools print the full
// CSVs using the same internal/experiments code paths.
//
// Benchmark sizes default to the bandwidth-saturating 1 MiB point of each
// sweep so the suite completes in minutes; the full 32 KiB - 64 MiB sweeps
// are one flag away via the CLI tools (see EXPERIMENTS.md).

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"multitree/internal/accel"
	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/experiments"
	"multitree/internal/model"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/plancache"
	"multitree/internal/topology"
	"multitree/internal/topospec"
	"multitree/internal/training"
)

// benchAllReduce measures one (topology, algorithm, size) point and
// reports the achieved bandwidth.
func benchAllReduce(b *testing.B, spec string, dataBytes int64, engine experiments.Engine) {
	topo, err := topospec.Parse(spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range experiments.Algorithms(topo) {
		b.Run(fmt.Sprintf("%s/%s", spec, alg.Name), func(b *testing.B) {
			b.ReportAllocs()
			var p experiments.AllReducePoint
			for i := 0; i < b.N; i++ {
				p, err = experiments.MeasureAllReduce(topo, alg, dataBytes, engine)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.BandwidthGBps, "GB/s")
			b.ReportMetric(float64(p.Cycles), "cycles")
			b.ReportMetric(float64(p.PlanNanos), "plan_ns")
		})
	}
}

// BenchmarkFig9a_Torus regenerates the Torus bandwidth comparison
// (Fig. 9a) at the 1 MiB point with the packet-level reference engine.
func BenchmarkFig9a_Torus(b *testing.B) {
	b.ReportAllocs()
	benchAllReduce(b, "torus-4x4", 1<<20, experiments.Packet)
	benchAllReduce(b, "torus-8x8", 1<<20, experiments.Packet)
}

// BenchmarkFig9b_Mesh regenerates the Mesh comparison (Fig. 9b).
func BenchmarkFig9b_Mesh(b *testing.B) {
	b.ReportAllocs()
	benchAllReduce(b, "mesh-4x4", 1<<20, experiments.Packet)
	benchAllReduce(b, "mesh-8x8", 1<<20, experiments.Packet)
}

// BenchmarkFig9c_FatTree regenerates the Fat-Tree comparison (Fig. 9c).
func BenchmarkFig9c_FatTree(b *testing.B) {
	b.ReportAllocs()
	benchAllReduce(b, "fattree-16", 1<<20, experiments.Packet)
	benchAllReduce(b, "fattree-64", 1<<20, experiments.Packet)
}

// BenchmarkFig9d_BiGraph regenerates the BiGraph comparison (Fig. 9d),
// including the EFLOPS HDRM baseline.
func BenchmarkFig9d_BiGraph(b *testing.B) {
	b.ReportAllocs()
	benchAllReduce(b, "bigraph-32", 1<<20, experiments.Packet)
	benchAllReduce(b, "bigraph-64", 1<<20, experiments.Packet)
}

// BenchmarkFig10_Scalability regenerates the weak-scaling study: 375*N KiB
// all-reduce on N-node Tori, N = 16..256, Ring vs 2D-Ring vs
// MULTITREE-MSG, reporting times normalized to 16-node Ring (Fig. 10's
// y-axis).
func BenchmarkFig10_Scalability(b *testing.B) {
	b.ReportAllocs()
	var points []experiments.Fig10Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.Fig10(topospec.TorusFor, []int{16, 32, 64, 128, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Normalized, fmt.Sprintf("norm-%s-%dn", p.Algorithm, p.Nodes))
	}
}

// BenchmarkFig11a_TrainingNonOverlapped regenerates the non-overlapped
// training-time breakdown on an 8x8 Torus (Fig. 11a), reporting each
// model's all-reduce speedup of MULTITREE-MSG over Ring.
func BenchmarkFig11a_TrainingNonOverlapped(b *testing.B) {
	b.ReportAllocs()
	benchFig11(b, false)
}

// BenchmarkFig11b_TrainingOverlapped regenerates the layer-wise
// overlapped breakdown (Fig. 11b).
func BenchmarkFig11b_TrainingOverlapped(b *testing.B) {
	b.ReportAllocs()
	benchFig11(b, true)
}

func benchFig11(b *testing.B, overlapped bool) {
	b.ReportAllocs()
	topo, err := topospec.Parse("torus-8x8")
	if err != nil {
		b.Fatal(err)
	}
	var rows []experiments.Fig11Row
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig11(topo, overlapped)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Algorithm == "multitree-msg" {
			b.ReportMetric(r.AllReduceSpeedup, "ARspeedup-"+r.Model)
			b.ReportMetric(r.NormalizedTotal, "normTotal-"+r.Model)
		}
	}
}

// BenchmarkTable1_AlgorithmComparison regenerates the measured Table I:
// steps, bandwidth overhead and contention of every algorithm on every
// topology class.
func BenchmarkTable1_AlgorithmComparison(b *testing.B) {
	b.ReportAllocs()
	var topos []*topology.Topology
	for _, spec := range []string{"torus-8x8", "mesh-8x8", "fattree-16", "bigraph-32"} {
		t, err := topospec.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		topos = append(topos, t)
	}
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table1(topos, 1<<18)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Topology == "torus-8x8" {
			b.ReportMetric(float64(r.Steps), "steps-"+r.Algorithm)
			b.ReportMetric(r.BandwidthOverhead, "bwOverhead-"+r.Algorithm)
		}
	}
}

// BenchmarkFig2_HeadFlitOverhead regenerates the packet head-flit
// bandwidth overhead curve (6%-25% for 256 B down to 64 B payloads).
func BenchmarkFig2_HeadFlitOverhead(b *testing.B) {
	b.ReportAllocs()
	var pts []experiments.Fig2Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig2()
	}
	for _, p := range pts {
		if p.PayloadBytes == 64 || p.PayloadBytes == 256 {
			b.ReportMetric(p.Overhead, fmt.Sprintf("overhead-%dB", p.PayloadBytes))
		}
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkAblation_Lockstep compares MultiTree on BiGraph with the NI
// lockstep + step-priority scheduling of §IV-A enabled and disabled; the
// co-design is what keeps the per-step allocation contention-free in
// time, not just in space.
func BenchmarkAblation_Lockstep(b *testing.B) {
	b.ReportAllocs()
	topo, err := topospec.Parse("bigraph-32")
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.Build(topo, (4<<20)/4, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, lockstep := range []bool{true, false} {
		b.Run(fmt.Sprintf("lockstep=%v", lockstep), func(b *testing.B) {
			b.ReportAllocs()
			cfg := network.DefaultConfig()
			cfg.Lockstep = lockstep
			cfg.StepPriority = lockstep
			var res *network.Result
			for i := 0; i < b.N; i++ {
				res, err = network.SimulateFluid(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.BandwidthBytesPerCycle(4<<20), "GB/s")
		})
	}
}

// BenchmarkAblation_TreeOrder compares the round-robin-by-root turn order
// against remaining-height prioritization on an asymmetric Mesh
// (§III-C1's note on asymmetric networks).
func BenchmarkAblation_TreeOrder(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Mesh(4, 8, topology.DefaultLinkConfig())
	for _, order := range []core.TreeOrder{core.RoundRobinByRoot, core.ByRemainingHeight} {
		name := "roundRobin"
		if order == core.ByRemainingHeight {
			name = "remainingHeight"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var s *collective.Schedule
			var err error
			for i := 0; i < b.N; i++ {
				s, err = core.Build(topo, (1<<20)/4, core.Options{Order: order})
				if err != nil {
					b.Fatal(err)
				}
			}
			res, err := network.SimulateFluid(s, network.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(s.Steps), "steps")
			b.ReportMetric(res.BandwidthBytesPerCycle(1<<20), "GB/s")
		})
	}
}

// BenchmarkAblation_DimOrder compares Y-before-X link allocation (the
// paper's preference) against X-before-Y on a Torus.
func BenchmarkAblation_DimOrder(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Torus(8, 8, topology.DefaultLinkConfig())
	for _, reverse := range []bool{false, true} {
		name := "Yfirst"
		if reverse {
			name = "Xfirst"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var s *collective.Schedule
			var err error
			for i := 0; i < b.N; i++ {
				s, err = core.Build(topo, (1<<20)/4, core.Options{ReverseNeighborOrder: reverse})
				if err != nil {
					b.Fatal(err)
				}
			}
			res, err := network.SimulateFluid(s, network.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(s.Steps), "steps")
			b.ReportMetric(res.BandwidthBytesPerCycle(1<<20), "GB/s")
		})
	}
}

// BenchmarkAblation_PayloadSize sweeps the baseline packet payload across
// Fig. 2's 64-256 B range end to end, against the message-based flow
// control.
func BenchmarkAblation_PayloadSize(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := core.Build(topo, (4<<20)/4, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, payload := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("packet-%dB", payload), func(b *testing.B) {
			b.ReportAllocs()
			cfg := network.DefaultConfig()
			cfg.PayloadBytes = payload
			var res *network.Result
			for i := 0; i < b.N; i++ {
				res, err = network.SimulateFluid(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.BandwidthBytesPerCycle(4<<20), "GB/s")
		})
	}
	b.Run("message-based", func(b *testing.B) {
		b.ReportAllocs()
		var res *network.Result
		for i := 0; i < b.N; i++ {
			res, err = network.SimulateFluid(s, network.MessageConfig())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.BandwidthBytesPerCycle(4<<20), "GB/s")
	})
}

// BenchmarkAblation_EngineFidelity runs the same schedule through the
// fluid and packet engines; their agreement on contention-free schedules
// is the basis for using the fluid engine in the large sweeps.
func BenchmarkAblation_EngineFidelity(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := core.Build(topo, (1<<20)/4, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []experiments.Engine{experiments.Fluid, experiments.Packet} {
		b.Run(engine.String(), func(b *testing.B) {
			b.ReportAllocs()
			cfg := network.DefaultConfig()
			var cycles float64
			for i := 0; i < b.N; i++ {
				var res *network.Result
				if engine == experiments.Packet {
					res, err = network.SimulatePackets(s, cfg)
				} else {
					res, err = network.SimulateFluid(s, cfg)
				}
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.Cycles)
			}
			b.ReportMetric(cycles, "simCycles")
		})
	}
}

// BenchmarkMultiTreeConstruction measures Algorithm 1 itself across
// system scales (its complexity bound is O(|V|^2 |E|), §III-C2).
func BenchmarkMultiTreeConstruction(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{16, 64, 256} {
		topo, err := topospec.TorusFor(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("torus-%dn", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildTrees(topo, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleExecution measures the correctness interpreter, the
// hot path of the property-based tests.
func BenchmarkScheduleExecution(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := core.Build(topo, 1<<14, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	in := collective.RampInputs(topo.Nodes(), s.Elems)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := collective.Execute(s, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollective_AllToAll measures the DLRM-style all-to-all of
// §VII-B built on the all-gather trees.
func BenchmarkCollective_AllToAll(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := core.BuildAllToAll(topo, (1<<20)/4/16, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var res *network.Result
	for i := 0; i < b.N; i++ {
		res, err = network.SimulateFluid(s, network.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cycles), "cycles")
}

// BenchmarkAblation_Energy prices the flow-control co-design: the same
// MultiTree schedule under packet-based vs message-based flow control.
func BenchmarkAblation_Energy(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Torus(8, 8, topology.DefaultLinkConfig())
	s, err := core.Build(topo, (16<<20)/4, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := network.DefaultEnergyModel()
	for _, cfg := range []network.Config{network.DefaultConfig(), network.MessageConfig()} {
		name := "packet-based"
		if cfg.MessageBased {
			name = "message-based"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var e network.EnergyBreakdown
			for i := 0; i < b.N; i++ {
				e, err = network.EstimateEnergy(s, cfg, m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(e.TotalUJ(), "uJ")
			b.ReportMetric(float64(e.Packets), "arbEvents")
		})
	}
}

// BenchmarkAblation_NCCLThreshold compares MultiTree against an oracle
// that always picks the better of Ring and DBTree per message size — the
// size-threshold switching NCCL uses (footnote 1 of the paper). MultiTree
// beats the oracle at every size because it is simultaneously low-latency
// and bandwidth-optimal.
func BenchmarkAblation_NCCLThreshold(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Torus(8, 8, topology.DefaultLinkConfig())
	for _, bytes := range []int64{32 << 10, 1 << 20, 16 << 20} {
		b.Run(fmt.Sprintf("%dKiB", bytes>>10), func(b *testing.B) {
			b.ReportAllocs()
			var oracle, mtree float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.MeasureAllReduce(topo, experiments.AlgSpec{Name: "ring"}, bytes, experiments.Fluid)
				if err != nil {
					b.Fatal(err)
				}
				d, err := experiments.MeasureAllReduce(topo, experiments.AlgSpec{Name: "dbtree"}, bytes, experiments.Fluid)
				if err != nil {
					b.Fatal(err)
				}
				m, err := experiments.MeasureAllReduce(topo, experiments.AlgSpec{Name: "multitree"}, bytes, experiments.Fluid)
				if err != nil {
					b.Fatal(err)
				}
				oracle = float64(r.Cycles)
				if float64(d.Cycles) < oracle {
					oracle = float64(d.Cycles)
				}
				mtree = float64(m.Cycles)
			}
			b.ReportMetric(oracle/mtree, "speedupVsOracle")
		})
	}
}

// BenchmarkStrongScaling reproduces the §VI-B side note: with a fixed
// large problem, communication time shows "only small variation" as the
// torus grows, because every algorithm stays contention-free and
// serialization dominates.
func BenchmarkStrongScaling(b *testing.B) {
	b.ReportAllocs()
	var points []experiments.Fig10Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.StrongScaling(topospec.TorusFor, []int{16, 64, 256}, 32<<20)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Normalized, fmt.Sprintf("rel-%s-%dn", p.Algorithm, p.Nodes))
	}
}

// BenchmarkAblation_Dataflow compares the three systolic mappings on
// ResNet50's forward pass (the paper fixes output stationary; this shows
// the choice's cost).
func BenchmarkAblation_Dataflow(b *testing.B) {
	b.ReportAllocs()
	net, err := model.ByName("ResNet50")
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []accel.Dataflow{accel.OutputStationary, accel.WeightStationary, accel.InputStationary} {
		b.Run(d.String(), func(b *testing.B) {
			b.ReportAllocs()
			a := accel.Default()
			a.Dataflow = d
			var cyc int64
			for i := 0; i < b.N; i++ {
				cyc = a.NetworkForwardCycles(net, 16)
			}
			b.ReportMetric(float64(cyc), "fwdCycles")
		})
	}
}

// BenchmarkAblation_GradientFusion sweeps the Horovod-style fusion
// threshold extension over the overlapped Transformer iteration.
func BenchmarkAblation_GradientFusion(b *testing.B) {
	b.ReportAllocs()
	topo := topology.Torus(8, 8, topology.DefaultLinkConfig())
	for _, fusion := range []int64{0, 1 << 20, 16 << 20} {
		b.Run(fmt.Sprintf("fusion-%dMiB", fusion>>20), func(b *testing.B) {
			b.ReportAllocs()
			cfg := training.Config{
				Topo:         topo,
				Accel:        accel.Default(),
				BatchPerNode: 16,
				Net:          network.MessageConfig(),
				FusionBytes:  fusion,
				Build: func(tp *topology.Topology, elems int) (*collective.Schedule, error) {
					return experiments.BuildSchedule(tp, "multitree", elems)
				},
			}
			net, err := model.ByName("Transformer")
			if err != nil {
				b.Fatal(err)
			}
			var res training.Breakdown
			for i := 0; i < b.N; i++ {
				res, err = cfg.Overlapped(net)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Total)/1e6, "ms-total")
		})
	}
}

// BenchmarkAblation_TreeAdjustment measures the §IV-A-footnote
// tree-adjustment direction on BiGraph: the paper's literal
// first-parent-in-addition-order allocation versus shortest-free-path
// allocation (the default on switch-based networks), which reaches the
// per-phase step lower bound.
func BenchmarkAblation_TreeAdjustment(b *testing.B) {
	b.ReportAllocs()
	topo, err := topospec.Parse("bigraph-32")
	if err != nil {
		b.Fatal(err)
	}
	for _, shortest := range []bool{false, true} {
		name := "firstParent"
		if shortest {
			name = "shortestPath"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var s *collective.Schedule
			for i := 0; i < b.N; i++ {
				s, err = core.Build(topo, (4<<20)/4, core.Options{ShortestPathFirst: shortest})
				if err != nil {
					b.Fatal(err)
				}
			}
			res, err := network.SimulateFluid(s, network.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(s.Steps), "steps")
			b.ReportMetric(res.BandwidthBytesPerCycle(4<<20), "GB/s")
		})
	}
}

// BenchmarkTraceOverhead is the observability cost guard: the same 1 MiB
// MultiTree packet-level simulation with tracing disabled, with a
// streaming metrics collector, with an in-memory recorder, and with the
// full Chrome-trace export to io.Discard. The disabled case is the one
// every experiment pays; it must stay within noise of the pre-tracing
// engine (the emit sites reduce to a nil check), and the sub-benchmark
// deltas price each collector.
func BenchmarkTraceOverhead(b *testing.B) {
	b.ReportAllocs()
	topo, err := topospec.Parse("torus-4x4")
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.Build(topo, (1<<20)/4, core.DefaultOptions(topo))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, tr obs.Tracer) *network.Result {
		cfg := network.DefaultConfig()
		cfg.Tracer = tr
		res, err := network.SimulatePackets(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("metrics", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, obs.NewMetrics(1000))
		}
	})
	b.Run("recorder", func(b *testing.B) {
		b.ReportAllocs()
		rec := &obs.Recorder{}
		for i := 0; i < b.N; i++ {
			rec.Reset()
			run(b, rec)
		}
		b.ReportMetric(float64(len(rec.Events)), "events")
	})
	b.Run("chrometrace", func(b *testing.B) {
		b.ReportAllocs()
		rec := &obs.Recorder{}
		meta := network.TraceMetaFor(s, "")
		for i := 0; i < b.N; i++ {
			rec.Reset()
			run(b, rec)
			if err := obs.WriteChromeTrace(io.Discard, meta, rec.Events); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFluidSweep_Torus8x8 times the fluid engine alone on the
// torus-8x8 algorithm menu at the 1 MiB plateau point: schedules are
// prebuilt outside the timer, so ns/op is pure simulation cost with no
// schedule-construction dilution. This is the regression benchmark the
// fluid-engine rewrite is measured by; the pre-rewrite numbers are kept
// in results/BENCH_pr4-fluid-baseline.txt.
func BenchmarkFluidSweep_Torus8x8(b *testing.B) {
	topo, err := topospec.Parse("torus-8x8")
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range experiments.Algorithms(topo) {
		s, err := experiments.BuildSchedule(topo, alg.Name, (1<<20)/4)
		if err != nil {
			b.Fatal(err)
		}
		cfg := network.DefaultConfig()
		cfg.MessageBased = alg.Msg
		b.Run(alg.Name, func(b *testing.B) {
			b.ReportAllocs()
			var res *network.Result
			for i := 0; i < b.N; i++ {
				res, err = network.SimulateFluid(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "simCycles")
			b.ReportMetric(res.BandwidthBytesPerCycle(1<<20), "GB/s")
		})
	}
}

// BenchmarkFluidEngineSteadyState is the fluid counterpart of
// BenchmarkPacketEngineSteadyState: a reusable FluidSim re-simulates a
// 16 MiB MultiTree all-reduce on an 8x8 Torus, reusing its typed event
// heap, rate scratch arrays and link occupancy arena across runs. The
// benchmark fails outright if the steady-state loop allocates, so an
// accidental map, closure or slice regrowth in the rate recompute cannot
// land silently.
func BenchmarkFluidEngineSteadyState(b *testing.B) {
	topo, err := topospec.Parse("torus-8x8")
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.Build(topo, (16<<20)/4, core.DefaultOptions(topo))
	if err != nil {
		b.Fatal(err)
	}
	sim, err := network.NewFluidSim(s, network.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	warm, err := sim.Run() // grow every backing array to its high-water mark
	if err != nil {
		b.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1, func() {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("steady-state event loop allocates %.1f per run, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *network.Result
	for i := 0; i < b.N; i++ {
		res, err = sim.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Cycles != warm.Cycles {
		b.Fatalf("steady-state run finished in %d cycles, warm-up in %d", res.Cycles, warm.Cycles)
	}
	b.ReportMetric(float64(res.Cycles), "simCycles")
	b.ReportMetric(res.BandwidthBytesPerCycle(16<<20), "GB/s")
}

// BenchmarkPlanMesh16x16 measures a cold MultiTree build on the 256-node
// Mesh — the planner-scaling benchmark of the bitset/memoized tree-growth
// rewrite. The PR 6 baseline for this build was ~4.3 s; the rewrite's
// budget is well under half a second (results/BENCH_pr7.txt records the
// measured value). ns/op is pure planning: topology construction happens
// outside the timer, and allocs/op guards the scratch-reuse discipline.
func BenchmarkPlanMesh16x16(b *testing.B) {
	topo, err := topospec.Parse("mesh-16x16")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var s *collective.Schedule
	for i := 0; i < b.N; i++ {
		s, err = core.Build(topo, (1<<20)/4, core.DefaultOptions(topo))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Steps), "steps")
	b.ReportMetric(float64(len(s.Transfers)), "transfers")
}

// BenchmarkPlanCacheWarmLoad measures the warm path the plan cache buys:
// loading a stored mesh-16x16 schedule back through the strict IR
// validator instead of re-planning it. The ratio to BenchmarkPlanMesh16x16
// is the cache's speedup; the absolute number must stay far under the
// ISSUE's one-second warm-hit budget even at 32x32 (IR size scales
// linearly with transfers while planning scales superlinearly).
func BenchmarkPlanCacheWarmLoad(b *testing.B) {
	topo, err := topospec.Parse("mesh-16x16")
	if err != nil {
		b.Fatal(err)
	}
	elems := (1 << 20) / 4
	s, err := core.Build(topo, elems, core.DefaultOptions(topo))
	if err != nil {
		b.Fatal(err)
	}
	cache, err := plancache.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	key := plancache.Key(topo, core.Algorithm, elems, 0)
	if _, err := cache.Put(key, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var bytesRead int64
	for i := 0; i < b.N; i++ {
		got, n, ok := cache.Get(key, topo)
		if !ok {
			b.Fatal("warm cache missed")
		}
		if got.Steps != s.Steps {
			b.Fatal("cached schedule differs")
		}
		bytesRead = n
	}
	b.ReportMetric(float64(bytesRead), "irBytes")
}

// BenchmarkWarmLoadMesh32x32Parallel measures the v3 warm path at the
// 1024-node scale: a stored mesh-32x32 plan (~2.1M transfers) decoded
// section-by-section with every available worker. Against
// BenchmarkPlanCacheWarmLoad's sequential 16x16 load this is the
// headline sub-second-warm-plan number; on multi-core hosts the
// sectioned decode splits the varint and hashing work across cores,
// and on single-core ones it bounds the regression of the fan-out
// bookkeeping.
func BenchmarkWarmLoadMesh32x32Parallel(b *testing.B) {
	topo, err := topospec.Parse("mesh-32x32")
	if err != nil {
		b.Fatal(err)
	}
	elems := (1 << 20) / 4
	s, err := core.Build(topo, elems, core.DefaultOptions(topo))
	if err != nil {
		b.Fatal(err)
	}
	cache, err := plancache.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	key := plancache.Key(topo, core.Algorithm, elems, 0)
	if _, err := cache.Put(key, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var bytesRead int64
	for i := 0; i < b.N; i++ {
		got, n, ok := cache.GetOpts(key, topo, plancache.GetOptions{Workers: runtime.GOMAXPROCS(0)})
		if !ok {
			b.Fatal("warm cache missed")
		}
		if got.Steps != s.Steps {
			b.Fatal("cached schedule differs")
		}
		bytesRead = n
	}
	b.ReportMetric(float64(bytesRead), "irBytes")
}

// BenchmarkMemCacheHit measures the decoded-plan memory tier: the cost
// of serving an already-materialized mesh-16x16 schedule. This is the
// floor every warm load above it (disk decode, re-plan) is compared
// against — a hit is a map lookup and an LRU splice, no I/O, no varint,
// no hashing.
func BenchmarkMemCacheHit(b *testing.B) {
	topo, err := topospec.Parse("mesh-16x16")
	if err != nil {
		b.Fatal(err)
	}
	elems := (1 << 20) / 4
	s, err := core.Build(topo, elems, core.DefaultOptions(topo))
	if err != nil {
		b.Fatal(err)
	}
	m := plancache.NewMemCache(s.MemBytes() * 2)
	key := plancache.Key(topo, core.Algorithm, elems, 0)
	m.Put(key, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, ok := m.Get(key)
		if !ok {
			b.Fatal("mem cache missed")
		}
		if got != s {
			b.Fatal("mem cache returned a different schedule")
		}
	}
	b.ReportMetric(float64(s.MemBytes()), "memBytes")
}

// BenchmarkLowerMesh32x32 measures schedule lowering alone at the
// 1024-node scale — the ~2.1M-transfer Mesh where lowering, not tree
// growth, dominated cold builds before the parallel arena-based rewrite.
// Trees are grown once outside the timer; each iteration re-lowers them
// with every available worker. The schedule is byte-identical at any
// worker count, so this also exercises the deterministic merge.
func BenchmarkLowerMesh32x32(b *testing.B) {
	topo, err := topospec.Parse("mesh-32x32")
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions(topo)
	trees, err := core.BuildTrees(topo, opts)
	if err != nil {
		b.Fatal(err)
	}
	elems := (1 << 20) / 4
	b.ReportAllocs()
	b.ResetTimer()
	var s *collective.Schedule
	for i := 0; i < b.N; i++ {
		s, err = collective.TreesToScheduleParallel(core.Algorithm, topo, elems, trees, runtime.GOMAXPROCS(0), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(s.Transfers)), "transfers")
}

// BenchmarkGrowShardedMesh32x32 measures sharded tree growth at the
// 1024-node scale: roots partitioned into four fabric quadrants, each
// shard speculating on a snapshot of the link pool, merged through the
// deterministic commit replay. The trees are byte-identical to the
// sequential ones at any shard count — what this buys is wall time on
// multi-core hosts and a bounded replay rate on single-core ones.
func BenchmarkGrowShardedMesh32x32(b *testing.B) {
	topo, err := topospec.Parse("mesh-32x32")
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions(topo)
	opts.Shards = 4
	b.ReportAllocs()
	b.ResetTimer()
	var trees []*collective.Tree
	for i := 0; i < b.N; i++ {
		trees, err = core.BuildTrees(topo, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(trees)), "trees")
}

// BenchmarkPacketEngineSteadyState is the zero-allocation guard for the
// discrete-event hot path: a reusable PacketSim re-simulates a 16 MiB
// MultiTree all-reduce on an 8x8 Torus, reusing its event heap, packet
// arena and link ring deques across runs. The benchmark fails outright if
// the steady-state event loop allocates, so an accidental closure or
// slice regrowth in the engine cannot land silently.
func BenchmarkPacketEngineSteadyState(b *testing.B) {
	topo, err := topospec.Parse("torus-8x8")
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.Build(topo, (16<<20)/4, core.DefaultOptions(topo))
	if err != nil {
		b.Fatal(err)
	}
	sim, err := network.NewPacketSim(s, network.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	warm, err := sim.Run() // grow every backing array to its high-water mark
	if err != nil {
		b.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1, func() {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("steady-state event loop allocates %.1f per run, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *network.Result
	for i := 0; i < b.N; i++ {
		res, err = sim.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Cycles != warm.Cycles {
		b.Fatalf("steady-state run finished in %d cycles, warm-up in %d", res.Cycles, warm.Cycles)
	}
	b.ReportMetric(float64(res.Cycles), "simCycles")
	b.ReportMetric(res.BandwidthBytesPerCycle(16<<20), "GB/s")
}
