package collective

import (
	"fmt"
	"sort"

	"multitree/internal/topology"
)

// Analysis summarizes the static properties of a schedule that Table I of
// the paper compares: algorithmic step count, per-node traffic volume
// relative to the bandwidth-optimal 2(N-1)/N * S, hop counts, and worst
// same-step link contention.
type Analysis struct {
	Algorithm string
	Topology  string
	Nodes     int

	Steps     int
	Transfers int

	// TotalBytes is payload bytes summed over transfers; OptimalBytes is
	// the bandwidth-optimal network-wide volume N * 2(N-1)/N * S = 2(N-1)S.
	TotalBytes   int64
	OptimalBytes int64

	// MaxHops is the longest routed path of any transfer (1 for
	// direct-network MultiTree by construction).
	MaxHops int

	// MaxLinkOverlap is the largest number of same-step transfers that
	// share one directed link. 1 means contention-free under lockstep
	// scheduling.
	MaxLinkOverlap int

	// BusiestStepLinks is the fraction of directed links used at the
	// busiest step, a link-utilization proxy (§I's 25% ring example).
	BusiestStepLinks float64
}

// BandwidthOverhead returns TotalBytes / OptimalBytes; 1.0 is
// bandwidth-optimal, 2D-Ring approaches 2.0.
func (a Analysis) BandwidthOverhead() float64 {
	if a.OptimalBytes == 0 {
		return 0
	}
	return float64(a.TotalBytes) / float64(a.OptimalBytes)
}

// ContentionFree reports whether no two same-step transfers share a link.
func (a Analysis) ContentionFree() bool { return a.MaxLinkOverlap <= 1 }

func (a Analysis) String() string {
	return fmt.Sprintf(
		"%s on %s: steps=%d transfers=%d bytes=%.2fx-optimal maxHops=%d maxOverlap=%d",
		a.Algorithm, a.Topology, a.Steps, a.Transfers,
		a.BandwidthOverhead(), a.MaxHops, a.MaxLinkOverlap)
}

// Analyze computes the static schedule properties used by Table I and the
// ablation benches.
func Analyze(s *Schedule) Analysis {
	a := Analysis{
		Algorithm: s.Algorithm,
		Topology:  s.Topo.Name(),
		Nodes:     s.Topo.Nodes(),
		Steps:     s.Steps,
		Transfers: len(s.Transfers),
	}
	n := int64(s.Topo.Nodes())
	a.TotalBytes = s.TotalBytes()
	a.OptimalBytes = 2 * (n - 1) * int64(s.Elems) * WordSize

	// Per-step link usage.
	type key struct {
		step int
		link topology.LinkID
	}
	usage := make(map[key]int)
	stepLinks := make(map[int]map[topology.LinkID]bool)
	for i := range s.Transfers {
		t := &s.Transfers[i]
		path := s.PathOf(t)
		if len(path) > a.MaxHops {
			a.MaxHops = len(path)
		}
		for _, l := range path {
			usage[key{t.Step, l}]++
			m := stepLinks[t.Step]
			if m == nil {
				m = make(map[topology.LinkID]bool)
				stepLinks[t.Step] = m
			}
			m[l] = true
		}
	}
	for _, c := range usage {
		if c > a.MaxLinkOverlap {
			a.MaxLinkOverlap = c
		}
	}
	busiest := 0
	for _, m := range stepLinks {
		if len(m) > busiest {
			busiest = len(m)
		}
	}
	if nl := len(s.Topo.Links()); nl > 0 {
		a.BusiestStepLinks = float64(busiest) / float64(nl)
	}
	return a
}

// PerNodeBytes returns, for each node, the payload bytes it injects
// (sends). Bandwidth-optimal algorithms inject 2(N-1)/N * S per node.
func PerNodeBytes(s *Schedule) []int64 {
	out := make([]int64, s.Topo.Nodes())
	for i := range s.Transfers {
		t := &s.Transfers[i]
		out[t.Src] += s.Bytes(t)
	}
	return out
}

// StepHistogram returns the number of transfers at each step (1-based
// index 0 unused), useful for inspecting schedule balance.
func StepHistogram(s *Schedule) []int {
	h := make([]int, s.Steps+1)
	for i := range s.Transfers {
		h[s.Transfers[i].Step]++
	}
	return h
}

// SortTransfersByStep returns transfer indices ordered by (step, id),
// used by pretty-printers.
func SortTransfersByStep(s *Schedule) []int {
	idx := make([]int, len(s.Transfers))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ta, tb := &s.Transfers[idx[a]], &s.Transfers[idx[b]]
		if ta.Step != tb.Step {
			return ta.Step < tb.Step
		}
		return ta.ID < tb.ID
	})
	return idx
}
