package collective

import (
	"testing"
	"testing/quick"

	"multitree/internal/topology"
)

func testTopo() *topology.Topology {
	return topology.Mesh(2, 2, topology.DefaultLinkConfig())
}

// TestPartitionProperties: parts cover [0, elems) contiguously, lengths
// differ by at most one.
func TestPartitionProperties(t *testing.T) {
	f := func(e uint16, p uint8) bool {
		elems := int(e)
		parts := 1 + int(p)%64
		rs := Partition(elems, parts)
		if len(rs) != parts {
			return false
		}
		off, min, max := 0, 1<<30, 0
		for _, r := range rs {
			if r.Off != off || r.Len < 0 {
				return false
			}
			off += r.Len
			if r.Len < min {
				min = r.Len
			}
			if r.Len > max {
				max = r.Len
			}
		}
		return off == elems && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionPanicsOnZeroParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Partition(10, 0) did not panic")
		}
	}()
	Partition(10, 0)
}

func TestValidateCatchesSelfTransfer(t *testing.T) {
	s := NewSchedule("bad", testTopo(), 100, 1)
	s.Add(Transfer{Src: 1, Dst: 1, Op: Reduce, Flow: 0, Step: 1})
	if err := s.Validate(); err == nil {
		t.Error("self-transfer passed validation")
	}
}

func TestValidateCatchesBadFlow(t *testing.T) {
	s := NewSchedule("bad", testTopo(), 100, 1)
	s.Add(Transfer{Src: 0, Dst: 1, Op: Reduce, Flow: 5, Step: 1})
	if err := s.Validate(); err == nil {
		t.Error("out-of-range flow passed validation")
	}
}

func TestValidateCatchesBadStep(t *testing.T) {
	s := NewSchedule("bad", testTopo(), 100, 1)
	s.Add(Transfer{Src: 0, Dst: 1, Op: Reduce, Flow: 0, Step: 0})
	if err := s.Validate(); err == nil {
		t.Error("step 0 passed validation")
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	s := NewSchedule("cyclic", testTopo(), 100, 1)
	a := s.Add(Transfer{Src: 0, Dst: 1, Op: Reduce, Flow: 0, Step: 1})
	b := s.Add(Transfer{Src: 1, Dst: 2, Op: Reduce, Flow: 0, Step: 2, Deps: []TransferID{a}})
	s.Transfers[a].Deps = []TransferID{b}
	if _, err := s.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := s.Validate(); err == nil {
		t.Error("Validate missed the cycle")
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	s := NewSchedule("chain", testTopo(), 100, 1)
	var prev TransferID = -1
	for i := 0; i < 5; i++ {
		var deps []TransferID
		if prev >= 0 {
			deps = []TransferID{prev}
		}
		prev = s.Add(Transfer{Src: topology.NodeID(i % 2), Dst: topology.NodeID(1 - i%2),
			Op: Reduce, Flow: 0, Step: i + 1, Deps: deps})
	}
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TransferID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := range s.Transfers {
		for _, d := range s.Transfers[i].Deps {
			if pos[d] >= pos[TransferID(i)] {
				t.Fatalf("dep %d ordered after %d", d, i)
			}
		}
	}
}

// TestTopoOrderIdentityFastPath pins the all-backward-deps shortcut:
// planner-built schedules (deps always reference earlier ids) must come
// back in identity order — which is what min-id Kahn produces for that
// shape — while a single forward dep routes through the general
// algorithm and still yields its min-id order.
func TestTopoOrderIdentityFastPath(t *testing.T) {
	s := NewSchedule("backward", testTopo(), 100, 1)
	var prev TransferID = -1
	for i := 0; i < 6; i++ {
		var deps []TransferID
		if prev >= 0 {
			deps = []TransferID{prev}
		}
		prev = s.Add(Transfer{Src: topology.NodeID(i % 2), Dst: topology.NodeID(1 - i%2),
			Op: Reduce, Flow: 0, Step: i + 1, Deps: deps})
	}
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if int(id) != i {
			t.Fatalf("backward-dep schedule ordered %v, want identity", order)
		}
	}

	// 1 depends forward on 2: min-id Kahn emits 0, 2, 1, 3.
	f := NewSchedule("forward", testTopo(), 100, 1)
	f.Add(Transfer{Src: 0, Dst: 1, Op: Reduce, Flow: 0, Step: 1})
	f.Add(Transfer{Src: 1, Dst: 2, Op: Reduce, Flow: 0, Step: 2, Deps: []TransferID{2}})
	f.Add(Transfer{Src: 2, Dst: 1, Op: Reduce, Flow: 0, Step: 1})
	f.Add(Transfer{Src: 1, Dst: 0, Op: Reduce, Flow: 0, Step: 3, Deps: []TransferID{1}})
	order, err = f.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []TransferID{0, 2, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("forward-dep schedule ordered %v, want %v", order, want)
		}
	}
}

func TestTotalBytesAndPerNode(t *testing.T) {
	s := NewSchedule("unit", testTopo(), 1000, 4)
	s.Add(Transfer{Src: 0, Dst: 1, Op: Gather, Flow: 0, Step: 1})
	s.Add(Transfer{Src: 0, Dst: 2, Op: Gather, Flow: 1, Step: 1})
	want := s.Flows[0].Bytes() + s.Flows[1].Bytes()
	if got := s.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	per := PerNodeBytes(s)
	if per[0] != want || per[1] != 0 {
		t.Errorf("PerNodeBytes = %v", per)
	}
}

func TestAnalyzeContention(t *testing.T) {
	// Two same-step transfers forced over the same link.
	topo := testTopo()
	s := NewSchedule("contended", topo, 1000, 2)
	path := topo.Route(0, 1)
	s.Add(Transfer{Src: 0, Dst: 1, Op: Gather, Flow: 0, Step: 1, Path: path})
	s.Add(Transfer{Src: 0, Dst: 1, Op: Gather, Flow: 1, Step: 1, Path: path})
	a := Analyze(s)
	if a.MaxLinkOverlap != 2 || a.ContentionFree() {
		t.Errorf("contended schedule analyzed as %+v", a)
	}
	// Different steps: no same-step overlap.
	s2 := NewSchedule("ok", topo, 1000, 2)
	s2.Add(Transfer{Src: 0, Dst: 1, Op: Gather, Flow: 0, Step: 1, Path: path})
	s2.Add(Transfer{Src: 0, Dst: 1, Op: Gather, Flow: 1, Step: 2, Path: path})
	if a2 := Analyze(s2); !a2.ContentionFree() {
		t.Errorf("step-separated schedule flagged contended: %+v", a2)
	}
}

func TestStepHistogram(t *testing.T) {
	s := NewSchedule("unit", testTopo(), 100, 1)
	s.Add(Transfer{Src: 0, Dst: 1, Op: Gather, Flow: 0, Step: 1})
	s.Add(Transfer{Src: 1, Dst: 3, Op: Gather, Flow: 0, Step: 2})
	s.Add(Transfer{Src: 2, Dst: 0, Op: Gather, Flow: 0, Step: 2})
	h := StepHistogram(s)
	if len(h) != 3 || h[1] != 1 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestExecuteRejectsBadInputs(t *testing.T) {
	s := NewSchedule("unit", testTopo(), 100, 1)
	if _, err := Execute(s, make([][]float32, 3)); err == nil {
		t.Error("wrong node count accepted")
	}
	in := RampInputs(4, 99)
	if _, err := Execute(s, in); err == nil {
		t.Error("wrong vector length accepted")
	}
}

// TestExecuteGatherOverwrites pins the op semantics.
func TestExecuteGatherOverwrites(t *testing.T) {
	s := NewSchedule("unit", testTopo(), 4, 1)
	s.Add(Transfer{Src: 0, Dst: 1, Op: Gather, Flow: 0, Step: 1})
	in := [][]float32{{1, 1, 1, 1}, {2, 2, 2, 2}, {3, 3, 3, 3}, {4, 4, 4, 4}}
	out, err := Execute(s, in)
	if err != nil {
		t.Fatal(err)
	}
	if out[1][0] != 1 {
		t.Errorf("gather did not overwrite: %v", out[1])
	}
	if out[0][0] != 1 || out[2][0] != 3 {
		t.Errorf("unrelated buffers changed: %v %v", out[0], out[2])
	}
}

func TestExecuteReduceAdds(t *testing.T) {
	s := NewSchedule("unit", testTopo(), 4, 1)
	s.Add(Transfer{Src: 0, Dst: 1, Op: Reduce, Flow: 0, Step: 1})
	in := [][]float32{{1, 1, 1, 1}, {2, 2, 2, 2}, {3, 3, 3, 3}, {4, 4, 4, 4}}
	out, err := Execute(s, in)
	if err != nil {
		t.Fatal(err)
	}
	if out[1][0] != 3 {
		t.Errorf("reduce did not add: %v", out[1])
	}
}
