package collective_test

import (
	"strings"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/ring"
	"multitree/internal/topology"
)

// TestRingUtilization25Percent pins the paper's §I motivation verbatim:
// ring all-reduce achieves "only 25% link utilization rate in a 4x4 2D
// Torus".
func TestRingUtilization25Percent(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s := ring.Build(topo, 4096)
	u := collective.StepUtilization(s)
	for step := 1; step < len(u); step++ {
		if u[step] != 0.25 {
			t.Fatalf("ring step %d uses %.0f%% of links, want 25%%", step, 100*u[step])
		}
	}
	if m := collective.MeanUtilization(s); m != 0.25 {
		t.Errorf("mean utilization %.2f, want 0.25", m)
	}
}

// TestMultiTreeUtilizationHigh: MultiTree's middle steps saturate the
// torus links, tripling ring's mean utilization.
func TestMultiTreeUtilizationHigh(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := core.Build(topo, 4096, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := collective.StepUtilization(s)
	saturated := 0
	for step := 1; step < len(u); step++ {
		if u[step] == 1.0 {
			saturated++
		}
	}
	if saturated == 0 {
		t.Error("no fully utilized step in the MultiTree schedule")
	}
	if m := collective.MeanUtilization(s); m < 0.6 {
		t.Errorf("mean utilization %.2f, want >= 0.6", m)
	}
}

func TestUtilizationChartRenders(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s := ring.Build(topo, 4096)
	chart := collective.UtilizationChart(s, 40)
	if !strings.Contains(chart, "25%") || !strings.Contains(chart, "step") {
		t.Errorf("chart rendering unexpected:\n%s", chart)
	}
}
