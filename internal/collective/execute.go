package collective

import (
	"fmt"
	"math"
)

// Execute runs a schedule's reduction semantics on real data: inputs holds
// one gradient vector per node, and the returned slices hold each node's
// buffer after the schedule completes. For a correct all-reduce schedule
// every output vector equals the element-wise sum of the inputs.
//
// Transfers execute in dependency (topological) order; an algorithm whose
// correctness relies on timing rather than on its declared dependencies
// will produce wrong sums here, which is exactly the point.
func Execute(s *Schedule, inputs [][]float32) ([][]float32, error) {
	n := s.Topo.Nodes()
	if len(inputs) != n {
		return nil, fmt.Errorf("collective: %d input vectors for %d nodes", len(inputs), n)
	}
	for i, v := range inputs {
		if len(v) != s.Elems {
			return nil, fmt.Errorf("collective: node %d input has %d elems, want %d", i, len(v), s.Elems)
		}
	}
	order, err := s.TopoOrder()
	if err != nil {
		return nil, err
	}
	bufs := make([][]float32, n)
	for i := range bufs {
		bufs[i] = make([]float32, s.Elems)
		copy(bufs[i], inputs[i])
	}
	for _, id := range order {
		t := &s.Transfers[id]
		seg := s.Seg(t)
		src := bufs[t.Src][seg.Off:seg.End()]
		dst := bufs[t.Dst][seg.Off:seg.End()]
		switch t.Op {
		case Reduce:
			for i := range dst {
				dst[i] += src[i]
			}
		case Gather:
			copy(dst, src)
		default:
			return nil, fmt.Errorf("collective: transfer %d has op %v", id, t.Op)
		}
	}
	return bufs, nil
}

// VerifyAllReduce executes the schedule on the inputs and checks that every
// node ends with the element-wise sum, within a small relative tolerance
// for float32 association-order differences.
func VerifyAllReduce(s *Schedule, inputs [][]float32) error {
	out, err := Execute(s, inputs)
	if err != nil {
		return err
	}
	want := make([]float64, s.Elems)
	for _, v := range inputs {
		for i, x := range v {
			want[i] += float64(x)
		}
	}
	const relTol = 1e-4
	for node, buf := range out {
		for i, got := range buf {
			w := want[i]
			diff := math.Abs(float64(got) - w)
			if diff > relTol*math.Max(1, math.Abs(w)) {
				return fmt.Errorf(
					"collective: %s on %s: node %d elem %d = %g, want %g",
					s.Algorithm, s.Topo.Name(), node, i, got, w)
			}
		}
	}
	return nil
}

// RampInputs builds deterministic, node-distinguishable test vectors:
// node k element i gets float32(k+1) * rampVal(i). Useful in tests and
// examples.
func RampInputs(nodes, elems int) [][]float32 {
	in := make([][]float32, nodes)
	for k := range in {
		v := make([]float32, elems)
		for i := range v {
			v[i] = float32(k+1) * (1 + float32(i%17)/16)
		}
		in[k] = v
	}
	return in
}
