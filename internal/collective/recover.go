package collective

import (
	"fmt"

	"multitree/internal/topology"
)

// TreesFromSchedule is the inverse of TreesToSchedule: it recovers the
// per-flow spanning trees from a two-phase schedule whose all-gather
// phase broadcasts each flow down a tree and whose reduce-scatter phase
// is the step-reversed mirror (the exact shape Algorithm 1 produces and
// the Fig. 5 schedule tables encode). This is what lets an imported
// schedule IR file reach the NI table compiler with no access to the
// algorithm that built it.
//
// Schedules that are not in this form — ring's all-gather continues
// around the ring instead of retracing the reduce path, HDRM exchanges
// nested segment halves across flows — are rejected with a descriptive
// error; they still simulate and execute, they just have no Fig. 5 table
// encoding.
func TreesFromSchedule(s *Schedule) ([]*Tree, error) {
	if s.Steps <= 0 || s.Steps%2 != 0 {
		return nil, fmt.Errorf("collective: %s schedule has %d steps, not an even two-phase count", s.Algorithm, s.Steps)
	}
	tot := s.Steps / 2
	n := s.Topo.Nodes()

	type mirror struct {
		src, dst topology.NodeID
		step     int
	}
	gathers := make(map[int][]*Transfer)
	reduces := make(map[int]map[mirror]int)
	for i := range s.Transfers {
		t := &s.Transfers[i]
		switch t.Op {
		case Gather:
			gathers[t.Flow] = append(gathers[t.Flow], t)
		case Reduce:
			if reduces[t.Flow] == nil {
				reduces[t.Flow] = map[mirror]int{}
			}
			reduces[t.Flow][mirror{t.Src, t.Dst, t.Step}]++
		}
	}

	trees := make([]*Tree, len(s.Flows))
	for f := range s.Flows {
		edges := gathers[f]
		if len(edges) == 0 {
			return nil, fmt.Errorf("collective: flow %d has no all-gather transfers", f)
		}
		tr := NewTree(f, -1, n)
		hasParent := make([]bool, n)
		inFlow := make([]bool, n)
		left := reduces[f]
		for _, t := range edges {
			agStep := t.Step - tot
			if agStep < 1 || agStep > tot {
				return nil, fmt.Errorf("collective: flow %d gather at step %d is outside the all-gather phase (%d..%d)",
					f, t.Step, tot+1, 2*tot)
			}
			if hasParent[t.Dst] {
				return nil, fmt.Errorf("collective: flow %d node %d receives two all-gather transfers", f, t.Dst)
			}
			hasParent[t.Dst] = true
			inFlow[t.Src], inFlow[t.Dst] = true, true
			tr.SetEdge(t.Src, t.Dst, agStep)
			tr.Path[t.Dst] = t.Path
			// The mirrored reduce: child -> parent at the reversed step.
			m := mirror{t.Dst, t.Src, tot - agStep + 1}
			if left[m] == 0 {
				return nil, fmt.Errorf("collective: flow %d edge n%d->n%d (gather step %d) has no mirrored reduce n%d->n%d at step %d",
					f, t.Src, t.Dst, t.Step, m.src, m.dst, m.step)
			}
			left[m]--
		}
		for m, c := range left {
			if c > 0 {
				return nil, fmt.Errorf("collective: flow %d reduce n%d->n%d at step %d mirrors no all-gather edge",
					f, m.src, m.dst, m.step)
			}
		}
		members := 0
		for node := 0; node < n; node++ {
			if !inFlow[node] {
				continue
			}
			members++
			if !hasParent[node] {
				if tr.Root >= 0 {
					return nil, fmt.Errorf("collective: flow %d has two roots (n%d and n%d)", f, tr.Root, node)
				}
				tr.Root = topology.NodeID(node)
			}
		}
		if tr.Root < 0 {
			return nil, fmt.Errorf("collective: flow %d all-gather edges form a cycle", f)
		}
		if members < n {
			tr.Members = inFlow
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("collective: flow %d does not form a schedule tree: %w", f, err)
		}
		trees[f] = tr
	}
	return trees, nil
}
