// Package collective defines the intermediate representation shared by all
// all-reduce algorithms in this repository: a DAG of point-to-point
// transfers tagged with reduction semantics, the spanning-tree form used by
// tree-based algorithms, and utilities to validate, analyze and execute
// schedules on real data.
//
// Every algorithm (ring, double binary tree, 2D-ring, HDRM and MultiTree)
// lowers to a Schedule. The network simulators in internal/network execute
// Schedules against a topology; the correctness interpreter in this package
// executes them against float32 vectors to prove the all-reduce semantics.
package collective

import (
	"container/heap"
	"fmt"
	"runtime"
	"slices"
	"unsafe"

	"multitree/internal/topology"
)

// idHeap is a min-heap of transfer ids used for deterministic topological
// ordering.
type idHeap []TransferID

func (h idHeap) Len() int           { return len(h) }
func (h idHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h idHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *idHeap) Push(x any)        { *h = append(*h, x.(TransferID)) }
func (h *idHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// WordSize is the gradient element size in bytes (32-bit precision,
// Table III).
const WordSize = 4

// Op is the operation a transfer performs at its destination, matching the
// schedule-table opcodes of §IV-A.
type Op uint8

const (
	// Reduce adds the carried segment into the destination's buffer
	// (reduce-scatter phase, leaf-to-root).
	Reduce Op = iota
	// Gather overwrites the destination's copy of the segment with the
	// carried, fully reduced value (all-gather phase, root-to-leaf).
	Gather
	// NOP entries exist only in NI schedule tables to hold the lockstep;
	// they never appear as transfers.
	NOP
)

func (o Op) String() string {
	switch o {
	case Reduce:
		return "Reduce"
	case Gather:
		return "Gather"
	case NOP:
		return "NOP"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// TransferID indexes a transfer within a Schedule.
type TransferID int32

// Range is a half-open element interval [Off, Off+Len) of the gradient
// vector.
type Range struct {
	Off, Len int
}

// End returns the exclusive upper bound of the range.
func (r Range) End() int { return r.Off + r.Len }

// Bytes returns the on-wire payload size of the range.
func (r Range) Bytes() int64 { return int64(r.Len) * WordSize }

// Transfer is one point-to-point message in an all-reduce schedule.
type Transfer struct {
	ID   TransferID
	Src  topology.NodeID
	Dst  topology.NodeID
	Op   Op
	Flow int // tree / chunk id (FlowID of the schedule table)
	Step int // algorithmic time step, 1-based

	// Deps lists transfers that must complete before this one may start
	// (the Parent/Children dependencies of the schedule table).
	Deps []TransferID

	// Path optionally pins the source-routed link path (§IV-B); when nil
	// the simulators use the topology's deterministic routing.
	Path []topology.LinkID
}

// Schedule is a complete all-reduce communication plan.
type Schedule struct {
	Algorithm string
	Topo      *topology.Topology

	// Elems is the total gradient length in elements.
	Elems int

	// Flows maps each flow id to the gradient segment it carries.
	Flows []Range

	Transfers []Transfer

	// Steps is the total number of algorithmic time steps.
	Steps int

	// covScratch is reused by flowCoverageHole across strict validations
	// (schedules with out-of-order flow segments only). Like the exported
	// fields, it is not safe for concurrent mutation.
	covScratch []Range
}

// NewSchedule allocates an empty schedule for the given topology and data
// size in elements, with the flow segments produced by Partition.
func NewSchedule(alg string, topo *topology.Topology, elems, flows int) *Schedule {
	return &Schedule{
		Algorithm: alg,
		Topo:      topo,
		Elems:     elems,
		Flows:     Partition(elems, flows),
	}
}

// Add appends a transfer, assigns its ID, and returns it.
func (s *Schedule) Add(t Transfer) TransferID {
	t.ID = TransferID(len(s.Transfers))
	s.Transfers = append(s.Transfers, t)
	if t.Step > s.Steps {
		s.Steps = t.Step
	}
	return t.ID
}

// Seg returns the gradient segment a transfer carries.
func (s *Schedule) Seg(t *Transfer) Range { return s.Flows[t.Flow] }

// Bytes returns the payload bytes of a transfer.
func (s *Schedule) Bytes(t *Transfer) int64 { return s.Flows[t.Flow].Bytes() }

// TotalBytes returns the sum of payload bytes over all transfers, the
// quantity the bandwidth-optimality comparisons of §II-C count.
func (s *Schedule) TotalBytes() int64 {
	var sum int64
	for i := range s.Transfers {
		sum += s.Bytes(&s.Transfers[i])
	}
	return sum
}

// MemBytes estimates the resident heap size of the materialized
// schedule: the transfer array plus the dependency and path arenas. It
// is the cost function of the decoded-plan memory cache, so it counts
// what eviction actually frees, not on-wire bytes.
func (s *Schedule) MemBytes() int64 {
	size := int64(unsafe.Sizeof(*s))
	size += int64(len(s.Flows)) * int64(unsafe.Sizeof(Range{}))
	size += int64(len(s.Transfers)) * int64(unsafe.Sizeof(Transfer{}))
	var deps, hops int64
	for i := range s.Transfers {
		t := &s.Transfers[i]
		deps += int64(len(t.Deps))
		hops += int64(len(t.Path))
	}
	size += deps * int64(unsafe.Sizeof(TransferID(0)))
	size += hops * int64(unsafe.Sizeof(topology.LinkID(0)))
	return size
}

// PathOf returns the link path of a transfer: the pinned source route if
// present, otherwise the topology's deterministic route.
func (s *Schedule) PathOf(t *Transfer) []topology.LinkID {
	if t.Path != nil {
		return t.Path
	}
	return s.Topo.Route(t.Src, t.Dst)
}

// Partition splits elems into parts contiguous ranges whose lengths differ
// by at most one element, earlier ranges taking the remainder.
func Partition(elems, parts int) []Range {
	if parts <= 0 {
		panic("collective: Partition needs at least one part")
	}
	out := make([]Range, parts)
	base := elems / parts
	rem := elems % parts
	off := 0
	for i := range out {
		n := base
		if i < rem {
			n++
		}
		out[i] = Range{Off: off, Len: n}
		off += n
	}
	return out
}

// Validate checks structural well-formedness: ids in range, src != dst,
// deps reference earlier-validated transfers, flow indices and segment
// ranges within bounds, pinned link paths that exist in the topology and
// connect their endpoints, and the dependency graph being acyclic.
// Algorithms call it in tests; simulators assume a valid schedule.
func (s *Schedule) Validate() error {
	_, err := s.validatedOrder(false)
	return err
}

// validatedOrder runs the validation pipeline once and returns the
// deterministic topological order it computes along the way, so callers
// that need both (the binary exporter, which stores the order's witness
// hash) do not pay for Kahn twice. strict adds the flow-coverage check of
// ValidateStrict.
func (s *Schedule) validatedOrder(strict bool) ([]TransferID, error) {
	if s.Topo == nil {
		return nil, fmt.Errorf("collective: schedule %q has no topology", s.Algorithm)
	}
	for f, r := range s.Flows {
		if r.Off < 0 || r.Len < 0 || r.End() > s.Elems {
			return nil, fmt.Errorf("flow %d: range [%d,%d) outside gradient [0,%d)", f, r.Off, r.End(), s.Elems)
		}
	}
	if err := s.validateTransfers(); err != nil {
		return nil, err
	}
	order, err := s.TopoOrder()
	if err != nil {
		return nil, err
	}
	if strict && s.Elems > 0 && len(s.Transfers) > 0 {
		if hole, ok := s.flowCoverageHole(); ok {
			return nil, fmt.Errorf("collective: flows leave element %d of [0,%d) uncovered", hole, s.Elems)
		}
	}
	return order, nil
}

// validateTransferRange checks the per-transfer structural invariants
// over [lo, hi). The checks are independent per transfer, so large
// schedules shard this across CPUs.
func (s *Schedule) validateTransferRange(lo, hi int) error {
	n := topology.NodeID(s.Topo.Nodes())
	for i := lo; i < hi; i++ {
		t := &s.Transfers[i]
		if t.ID != TransferID(i) {
			return fmt.Errorf("transfer %d: bad id %d", i, t.ID)
		}
		if t.Src < 0 || t.Src >= n || t.Dst < 0 || t.Dst >= n {
			return fmt.Errorf("transfer %d: endpoint out of range (%d->%d)", i, t.Src, t.Dst)
		}
		if t.Src == t.Dst {
			return fmt.Errorf("transfer %d: self-transfer on node %d", i, t.Src)
		}
		if t.Op != Reduce && t.Op != Gather {
			return fmt.Errorf("transfer %d: bad op %v", i, t.Op)
		}
		if t.Flow < 0 || t.Flow >= len(s.Flows) {
			return fmt.Errorf("transfer %d: flow %d out of range", i, t.Flow)
		}
		if t.Step < 1 {
			return fmt.Errorf("transfer %d: step %d < 1", i, t.Step)
		}
		for _, d := range t.Deps {
			if d < 0 || int(d) >= len(s.Transfers) {
				return fmt.Errorf("transfer %d: dep %d out of range", i, d)
			}
		}
		if t.Path != nil {
			if err := s.validatePath(t); err != nil {
				return fmt.Errorf("transfer %d: %w", i, err)
			}
		}
	}
	return nil
}

// validateParallelMin is the transfer count below which validateTransfers
// stays sequential; goroutine fan-out only pays off on large schedules.
const validateParallelMin = 1 << 16

func (s *Schedule) validateTransfers() error {
	n := len(s.Transfers)
	workers := runtime.GOMAXPROCS(0)
	if n < validateParallelMin || workers <= 1 {
		return s.validateTransferRange(0, n)
	}
	// Shard the read-only pass; report the error of the lowest shard so
	// the result is deterministic regardless of scheduling.
	shards := workers * 4
	chunk := (n + shards - 1) / shards
	errs := make([]error, shards)
	runTreeTasks(workers, shards, func(_, i int) {
		lo := i * chunk
		hi := min(lo+chunk, n)
		if lo < hi {
			errs[i] = s.validateTransferRange(lo, hi)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// validatePath checks a pinned source route: every link exists in the
// topology and the links chain contiguously from Src to Dst.
func (s *Schedule) validatePath(t *Transfer) error {
	links := s.Topo.Links()
	if len(t.Path) == 0 {
		return fmt.Errorf("pinned path is empty")
	}
	at := int(t.Src)
	for hop, id := range t.Path {
		if id < 0 || int(id) >= len(links) {
			return fmt.Errorf("path hop %d: link %d not in topology (%d links)", hop, id, len(links))
		}
		l := links[id]
		if l.Src != at {
			return fmt.Errorf("path hop %d: link %d starts at vertex %d, want %d", hop, id, l.Src, at)
		}
		at = l.Dst
	}
	if at != int(t.Dst) {
		return fmt.Errorf("pinned path ends at vertex %d, want node %d", at, t.Dst)
	}
	return nil
}

// ValidateStrict is the import-time validation: Validate plus the flow
// coverage property — the union of flow segments must cover the whole
// gradient [0, Elems), so no element can escape reduction merely because
// no transfer ever references it.
func (s *Schedule) ValidateStrict() error {
	_, err := s.validatedOrder(true)
	return err
}

// flowCoverageHole returns the first element of [0, Elems) not covered by
// any flow range, if one exists. Partition emits segments in ascending
// offset order, so the common case is a zero-allocation in-place scan;
// out-of-order flow tables fall back to sorting a scratch copy that is
// reused across validations of the same schedule.
func (s *Schedule) flowCoverageHole() (int, bool) {
	ranges := s.Flows
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Off < ranges[i-1].Off {
			s.covScratch = s.covScratch[:0]
			for _, r := range s.Flows {
				if r.Len > 0 {
					s.covScratch = append(s.covScratch, r)
				}
			}
			// slices.SortFunc, unlike sort.Slice, does not allocate — the
			// scratch makes repeat validations allocation-free.
			slices.SortFunc(s.covScratch, func(a, b Range) int { return a.Off - b.Off })
			ranges = s.covScratch
			break
		}
	}
	covered := 0
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		if r.Off > covered {
			return covered, true
		}
		if r.End() > covered {
			covered = r.End()
		}
	}
	if covered < s.Elems {
		return covered, true
	}
	return 0, false
}

// TopoOrder returns a deterministic topological order of the transfers
// (Kahn's algorithm, ready set drained in id order), or an error if the
// dependency graph has a cycle. The successor adjacency is built in CSR
// form — three flat arrays instead of one slice per transfer — so a
// multi-million-transfer schedule orders without per-node allocation.
func (s *Schedule) TopoOrder() ([]TransferID, error) {
	n := len(s.Transfers)
	// Identity fast path: when every dependency points backwards (d < i),
	// the min-id Kahn order is exactly 0..n-1 — by induction, after
	// emitting 0..i-1 transfer i is ready and is the smallest ready id.
	// The lowering emits transfers in exactly this shape (deps always
	// reference earlier ids within the same tree's contiguous region), so
	// planner-built schedules skip the heap entirely; anything with a
	// forward or out-of-range dep falls through to the general algorithm,
	// which also reports the range errors.
	identity := true
	for i := range s.Transfers {
		for _, d := range s.Transfers[i].Deps {
			if d < 0 || int(d) >= i {
				identity = false
				break
			}
		}
		if !identity {
			break
		}
	}
	if identity {
		order := make([]TransferID, n)
		for i := range order {
			order[i] = TransferID(i)
		}
		return order, nil
	}
	indeg := make([]int32, n)
	succEnd := make([]int32, n) // cursor during fill; end-of-region after
	var nDeps int
	for i := range s.Transfers {
		deps := s.Transfers[i].Deps
		indeg[i] = int32(len(deps))
		nDeps += len(deps)
		for _, d := range deps {
			if d < 0 || int(d) >= n {
				return nil, fmt.Errorf("collective: transfer %d: dep %d out of range", i, d)
			}
			succEnd[d]++
		}
	}
	for i := 1; i < n; i++ {
		succEnd[i] += succEnd[i-1]
	}
	// Fill backwards: each decrement walks succEnd[d] down to d's region
	// start, leaving the region [succEnd[d], succEnd[d+1]) sorted
	// ascending (succEnd[n-1]'s region ends at nDeps).
	succ := make([]TransferID, nDeps)
	for i := n - 1; i >= 0; i-- {
		for _, d := range s.Transfers[i].Deps {
			succEnd[d]--
			succ[succEnd[d]] = TransferID(i)
		}
	}
	regionEnd := func(v TransferID) int32 {
		if int(v) == n-1 {
			return int32(nDeps)
		}
		return succEnd[v+1]
	}

	var ready idHeap
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, TransferID(i))
		}
	}
	heap.Init(&ready)
	order := make([]TransferID, 0, n)
	for ready.Len() > 0 {
		id := heap.Pop(&ready).(TransferID)
		order = append(order, id)
		for _, nxt := range succ[succEnd[id]:regionEnd(id)] {
			indeg[nxt]--
			if indeg[nxt] == 0 {
				heap.Push(&ready, nxt)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("collective: dependency cycle in %s schedule", s.Algorithm)
	}
	return order, nil
}
