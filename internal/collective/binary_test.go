package collective_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/ring"
	"multitree/internal/topology"
)

// TestBinaryRoundTrip: the binary IR is lossless against the JSON
// interchange IR — a schedule sent through ExportBinary/ImportBinaryInto
// re-exports to JSON byte-identically, which is what lets the plan cache
// serve an entry in place of a fresh build without changing any -export
// file downstream.
func TestBinaryRoundTrip(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	const elems = 1 << 12
	for _, build := range []func() (*collective.Schedule, error){
		func() (*collective.Schedule, error) { return ring.Build(topo, elems), nil },
		func() (*collective.Schedule, error) { return core.Build(topo, elems, core.DefaultOptions(topo)) },
	} {
		orig, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var bin bytes.Buffer
		if err := collective.ExportBinary(&bin, orig); err != nil {
			t.Fatal(err)
		}
		imp, err := collective.ImportBinaryInto(bytes.NewReader(bin.Bytes()), topo)
		if err != nil {
			t.Fatalf("%s: binary import: %v", orig.Algorithm, err)
		}
		if imp.Topo != topo {
			t.Fatalf("%s: ImportBinaryInto did not keep the provided topology", orig.Algorithm)
		}
		var wantJSON, haveJSON bytes.Buffer
		if err := collective.Export(&wantJSON, orig); err != nil {
			t.Fatal(err)
		}
		if err := collective.Export(&haveJSON, imp); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON.Bytes(), haveJSON.Bytes()) {
			t.Fatalf("%s: JSON export differs after a binary round trip", orig.Algorithm)
		}
		if err := collective.VerifyAllReduce(imp, collective.RampInputs(topo.Nodes(), elems)); err != nil {
			t.Fatalf("%s: binary-imported schedule fails correctness: %v", orig.Algorithm, err)
		}
	}
}

// TestBinaryStreamMatchesBuffered: the seekable hash-while-write path
// (what the plan cache's Put drives through an *os.File) must produce
// exactly the bytes of the buffered path — same digest field included —
// and import cleanly. The two paths share the body encoder; this pins
// the header/hash-patching plumbing around it.
func TestBinaryStreamMatchesBuffered(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	const elems = 1 << 12
	s, err := core.Build(topo, elems, core.DefaultOptions(topo))
	if err != nil {
		t.Fatal(err)
	}
	var buffered bytes.Buffer
	if err := collective.ExportBinary(&buffered, s); err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(t.TempDir(), "stream-*.plan")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := collective.ExportBinary(f, s); err != nil {
		t.Fatal(err)
	}
	streamed, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buffered.Bytes(), streamed) {
		t.Fatal("streaming export bytes differ from buffered export")
	}
	if _, err := collective.ImportBinaryInto(bytes.NewReader(streamed), topo); err != nil {
		t.Fatalf("streamed export does not import: %v", err)
	}
}

// TestBinaryImportRejects covers the rejection paths that matter for a
// cache that must never serve a wrong plan: foreign files, version
// drift, topology mismatch, and truncation anywhere in the stream.
func TestBinaryImportRejects(t *testing.T) {
	torus := topology.Torus(4, 4, topology.DefaultLinkConfig())
	mesh := topology.Mesh(4, 4, topology.DefaultLinkConfig())
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, ring.Build(torus, 256)); err != nil {
		t.Fatal(err)
	}
	file := buf.Bytes()

	if _, err := collective.ImportBinaryInto(bytes.NewReader(file), torus); err != nil {
		t.Fatalf("baseline file rejected: %v", err)
	}
	if _, err := collective.ImportBinaryInto(bytes.NewReader(file), mesh); err == nil {
		t.Fatal("accepted a mesh for a torus schedule")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := collective.ImportBinaryInto(bytes.NewReader([]byte(`{"version": 1}`)), torus); err == nil {
		t.Fatal("accepted a JSON file as binary")
	}
	wrongVersion := append([]byte(nil), file...)
	wrongVersion[4] = 99 // version varint follows the 4-byte magic
	if _, err := collective.ImportBinaryInto(bytes.NewReader(wrongVersion), torus); err == nil {
		t.Fatal("accepted an unknown format version")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("unexpected error: %v", err)
	}
	for _, cut := range []int{len(file) / 4, len(file) / 2, len(file) - 1} {
		if _, err := collective.ImportBinaryInto(bytes.NewReader(file[:cut]), torus); err == nil {
			t.Fatalf("accepted a file truncated to %d bytes", cut)
		}
	}
}
