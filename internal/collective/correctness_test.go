package collective_test

import (
	"fmt"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/dbtree"
	"multitree/internal/hdrm"
	"multitree/internal/ring"
	"multitree/internal/ring2d"
	"multitree/internal/topology"
)

// buildAll returns every algorithm's schedule applicable to the topology.
func buildAll(t *testing.T, topo *topology.Topology, elems int) map[string]*collective.Schedule {
	t.Helper()
	out := map[string]*collective.Schedule{}
	out["ring"] = ring.Build(topo, elems)
	if s, err := dbtree.Build(topo, elems, 4); err == nil {
		out["dbtree"] = s
	} else {
		t.Fatalf("dbtree on %s: %v", topo.Name(), err)
	}
	if nx, _ := topo.GridDims(); nx > 0 {
		s, err := ring2d.Build(topo, elems)
		if err != nil {
			t.Fatalf("ring2d on %s: %v", topo.Name(), err)
		}
		out["2d-ring"] = s
	}
	if n := topo.Nodes(); n&(n-1) == 0 {
		s, err := hdrm.Build(topo, elems)
		if err != nil {
			t.Fatalf("hdrm on %s: %v", topo.Name(), err)
		}
		out["hdrm"] = s
	}
	s, err := core.Build(topo, elems, core.Options{})
	if err != nil {
		t.Fatalf("multitree on %s: %v", topo.Name(), err)
	}
	out["multitree"] = s
	return out
}

func testTopologies() []*topology.Topology {
	cfg := topology.DefaultLinkConfig()
	return []*topology.Topology{
		topology.Mesh(2, 2, cfg),
		topology.Mesh(4, 4, cfg),
		topology.Mesh(3, 5, cfg),
		topology.Torus(4, 4, cfg),
		topology.Torus(4, 8, cfg),
		topology.FatTree(4, 4, 4, cfg),
		topology.BiGraph(4, 4, cfg),
	}
}

// TestAllReduceCorrectness executes every (algorithm, topology) schedule
// on real vectors and checks that every node ends with the global sum.
func TestAllReduceCorrectness(t *testing.T) {
	for _, topo := range testTopologies() {
		for name, s := range buildAll(t, topo, 1000) {
			t.Run(fmt.Sprintf("%s/%s", name, topo.Name()), func(t *testing.T) {
				if err := s.Validate(); err != nil {
					t.Fatalf("validate: %v", err)
				}
				in := collective.RampInputs(topo.Nodes(), s.Elems)
				if err := collective.VerifyAllReduce(s, in); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestMultiTreeContentionFree checks the central structural claim: no two
// same-step MultiTree transfers share a directed link, on any topology,
// under both the paper-literal and the shortest-path-first allocations.
func TestMultiTreeContentionFree(t *testing.T) {
	for _, topo := range testTopologies() {
		for _, opts := range []core.Options{{}, core.DefaultOptions(topo), {ShortestPathFirst: true}} {
			s, err := core.Build(topo, 4096, opts)
			if err != nil {
				t.Fatalf("%s: %v", topo.Name(), err)
			}
			a := collective.Analyze(s)
			if !a.ContentionFree() {
				t.Errorf("%s %+v: max same-step link overlap %d, want 1 (%s)",
					topo.Name(), opts, a.MaxLinkOverlap, a)
			}
			in := collective.RampInputs(topo.Nodes(), s.Elems)
			if err := collective.VerifyAllReduce(s, in); err != nil {
				t.Errorf("%s %+v: %v", topo.Name(), opts, err)
			}
		}
	}
}
