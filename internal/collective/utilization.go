package collective

import (
	"fmt"
	"strings"

	"multitree/internal/topology"
)

// StepUtilization reports, for each algorithmic step, the fraction of
// directed links the schedule occupies — the quantity behind the paper's
// "only 25% link utilization rate in a 4x4 2D Torus" motivation for ring
// all-reduce, and behind MultiTree's full-utilization claim. Index 0 is
// unused (steps are 1-based).
func StepUtilization(s *Schedule) []float64 {
	links := len(s.Topo.Links())
	if links == 0 || s.Steps == 0 {
		return nil
	}
	used := make([]map[topology.LinkID]bool, s.Steps+1)
	for i := range s.Transfers {
		t := &s.Transfers[i]
		m := used[t.Step]
		if m == nil {
			m = make(map[topology.LinkID]bool)
			used[t.Step] = m
		}
		for _, l := range s.PathOf(t) {
			m[l] = true
		}
	}
	out := make([]float64, s.Steps+1)
	for step := 1; step <= s.Steps; step++ {
		out[step] = float64(len(used[step])) / float64(links)
	}
	return out
}

// MeanUtilization averages StepUtilization over the schedule's steps.
func MeanUtilization(s *Schedule) float64 {
	u := StepUtilization(s)
	if len(u) <= 1 {
		return 0
	}
	sum := 0.0
	for _, v := range u[1:] {
		sum += v
	}
	return sum / float64(len(u)-1)
}

// UtilizationChart renders StepUtilization as an ASCII bar chart, one row
// per step, width columns at 100%.
func UtilizationChart(s *Schedule, width int) string {
	if width < 10 {
		width = 40
	}
	u := StepUtilization(s)
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: link utilization per step (mean %.0f%%)\n",
		s.Algorithm, s.Topo.Name(), 100*MeanUtilization(s))
	for step := 1; step < len(u); step++ {
		bars := int(u[step]*float64(width) + 0.5)
		fmt.Fprintf(&b, "step %3d |%-*s| %3.0f%%\n",
			step, width, strings.Repeat("#", bars), 100*u[step])
	}
	return b.String()
}
