package collective

// Binary IR version 3: the sectioned layout that makes warm plan loads
// parallel. Where v2 is one varint stream hashed end to end — inherently
// sequential to decode — v3 splits the schedule into independently
// decodable sections and stripes:
//
//	magic "MTIR" | uvarint version=3 | root sha256[32]
//	meta        (algorithm, fingerprint, elems, steps, summary, flow count)
//	sections    (flows; then per transfer stripe: records, deps, hops)
//	footer      (section table: kind, element range, byte range, digest)
//	trailer[16] (footer offset + length, little-endian uint64s)
//
// Every section carries its own sha256 in the footer, and the root hash
// covers meta||footer — a two-level tree hash, so both verification and
// decode parallelize over sections while any single flipped bit anywhere
// in the stream still fails the load: section bytes are pinned by their
// digest, digests and byte ranges by the root, the root by the header
// field, and the trailer by the requirement that footer+trailer end
// flush against the section bytes.
//
// Transfers are striped (transfersPerStripe records per section), with
// each stripe's dependency and path-hop values split into companion
// sections indexed into flat arenas — the same prefix-sum-arena shape as
// TreesToScheduleParallel, which is what makes the decoded Schedule
// byte-identical at any worker count: stripe k writes Transfers[lo:hi)
// and its fixed arena ranges no matter which goroutine runs it, and a
// worker that decodes a deps stripe writes arena elements while another
// writes the slice headers over them — disjoint memory, no ordering
// between them until the final join.
//
// Correlated fields are delta-coded as zigzag varints, with the delta
// chain resetting at every section boundary so sections stay
// independently decodable: a transfer's dst is coded against its own
// src, flow and step against the previous record in the stripe, and
// dependency values chain through the dep section (planner output
// orders deps roughly by owner, so consecutive values are near). At
// mesh-64x64 scale this is a third of the stream — and, more
// importantly for the warm-load budget, it turns most multi-byte
// varints into one-byte ones that decode on the fast path. Path hops
// measured no better under deltas and stay absolute.
//
// Loads read through an io.ReaderAt (plain pread per section, no shared
// cursor, no mmap); readers that cannot seek fall back to one in-memory
// copy of the body.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"

	"multitree/internal/obs"
	"multitree/internal/topology"
)

// Section kinds of the v3 footer table.
const (
	secFlows     = 0 // flow ranges; exactly one section
	secTransfers = 1 // fixed transfer records (src,dst,op,flow,step,ndeps,nhops)
	secDeps      = 2 // dependency values, flat arena order
	secPaths     = 3 // path-hop link ids, flat arena order
)

// transfersPerStripe fixes the stripe width of the transfer sections. It
// is an encoder constant, not a format parameter — the footer records
// each stripe's extent, so decoders accept any striping — chosen so a
// mesh-64x64 schedule (~33M transfers) splits into a few hundred
// stripes: enough grain to keep 8 workers busy, few enough that the
// footer stays in the tens of kilobytes.
const transfersPerStripe = 1 << 17

// v3TrailerLen is the fixed trailer: footer offset + footer length as
// little-endian uint64s, in body coordinates (byte 0 = first meta byte).
const v3TrailerLen = 16

// maxV3Sections and maxV3MetaLen bound hostile table/meta claims before
// anything is allocated from them.
const (
	maxV3Sections = 1 << 20
	maxV3MetaLen  = 1 << 20
)

// sectionEntry is one row of the footer table.
type sectionEntry struct {
	kind      uint64
	elemOff   uint64 // first element index the section covers, per kind
	elemCount uint64
	auxDep    uint64 // transfers stripes: dep arena offset at stripe start
	auxPath   uint64 // transfers stripes: path arena offset at stripe start
	byteOff   uint64 // body coordinates
	byteLen   uint64
	digest    [hashSize]byte
}

// sliceDecoder decodes uvarints from a fully buffer-resident section.
// Unlike binStream there is no window to refill, so the common case — a
// one-byte varint — inlines to a bounds check and a compare; section
// decode throughput is what the warm-load budget is spent on.
type sliceDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *sliceDecoder) uint() uint64 {
	if d.err == nil && d.pos < len(d.buf) {
		if b := d.buf[d.pos]; b < 0x80 {
			d.pos++
			return uint64(b)
		}
	}
	return d.uintSlow()
}

// uintSlow is the multi-byte continuation of uint, hand-rolled rather
// than sliced through binary.Uvarint: the re-slice plus call overhead is
// measurable at tens of millions of values per load. Semantics match
// binary.Uvarint exactly, including the >64-bit overflow rule.
func (d *sliceDecoder) uintSlow() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	s := uint(0)
	for i := d.pos; i < len(d.buf); i++ {
		b := d.buf[i]
		if b < 0x80 {
			if s == 63 && b > 1 {
				d.err = fmt.Errorf("varint overflow")
				return 0
			}
			d.pos = i + 1
			return v | uint64(b)<<s
		}
		v |= uint64(b&0x7f) << s
		s += 7
		if s >= 64 {
			d.err = fmt.Errorf("varint overflow")
			return 0
		}
	}
	d.err = fmt.Errorf("truncated varint: %w", io.ErrUnexpectedEOF)
	return 0
}

// sint reads one zigzag-coded signed value.
func (d *sliceDecoder) sint() int64 {
	v := d.uint()
	return int64(v>>1) ^ -int64(v&1)
}

func (d *sliceDecoder) bytes(p []byte) {
	if d.err != nil {
		return
	}
	if len(d.buf)-d.pos < len(p) {
		d.err = fmt.Errorf("truncated stream: %w", io.ErrUnexpectedEOF)
		return
	}
	copy(p, d.buf[d.pos:])
	d.pos += len(p)
}

func (d *sliceDecoder) str(limit int64) string {
	n := d.intCap("string", limit)
	if d.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	if d.err != nil {
		return ""
	}
	return string(b)
}

// intCap reads a count and rejects values beyond limit, so a corrupt
// length cannot drive a huge allocation.
func (d *sliceDecoder) intCap(what string, limit int64) int {
	v := d.uint()
	if d.err != nil {
		return 0
	}
	if v > uint64(limit) {
		d.err = fmt.Errorf("%s count %d exceeds limit %d", what, v, limit)
		return 0
	}
	return int(v)
}

// done reports whether the section was consumed exactly.
func (d *sliceDecoder) done() bool { return d.err == nil && d.pos == len(d.buf) }

// countWriter tracks the byte offset of everything written through it,
// with sticky errors; section byte ranges come straight off its cursor.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// bufWriteSeeker adapts the streaming v3 exporter to non-seekable sinks:
// the stream assembles in memory, then ships in one Write. Only the
// hash-patch seek is ever used, so the implementation stays minimal.
type bufWriteSeeker struct {
	buf []byte
	pos int64
}

func (b *bufWriteSeeker) Write(p []byte) (int, error) {
	if need := b.pos + int64(len(p)); need > int64(len(b.buf)) {
		if need > int64(cap(b.buf)) {
			grown := make([]byte, need, max(need, int64(2*cap(b.buf))))
			copy(grown, b.buf)
			b.buf = grown
		}
		b.buf = b.buf[:need]
	}
	copy(b.buf[b.pos:], p)
	b.pos += int64(len(p))
	return len(p), nil
}

func (b *bufWriteSeeker) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		b.pos = off
	case io.SeekCurrent:
		b.pos += off
	case io.SeekEnd:
		b.pos = int64(len(b.buf)) + off
	}
	if b.pos < 0 || b.pos > int64(len(b.buf)) {
		return 0, fmt.Errorf("collective: seek out of buffered range")
	}
	return b.pos, nil
}

// encodeMetaV3 renders the meta block: everything the loader needs
// before it can size arenas and fan out — header fields, the validation
// summary, and the flow count (flow data itself is a section).
// sint writes one zigzag-coded signed value — the encoder half of
// sliceDecoder.sint.
func (w *binWriter) sint(v int64) {
	w.uint(uint64(v)<<1 ^ uint64(v>>63))
}

func encodeMetaV3(s *Schedule, sum ValidationSummary) []byte {
	bw := &binWriter{buf: make([]byte, 0, 256)}
	bw.str(s.Algorithm)
	bw.str(TopologyFingerprint(s.Topo))
	bw.uint(uint64(s.Elems))
	bw.uint(uint64(s.Steps))
	bw.uint(uint64(sum.Transfers))
	bw.uint(uint64(sum.DepEdges))
	bw.uint(uint64(sum.PathHops))
	bw.uint(uint64(sum.LinksUsed))
	bw.uint(uint64(sum.CoveredElems))
	bw.bytes(sum.Witness[:])
	bw.uint(uint64(len(s.Flows)))
	return bw.buf
}

// encodeFooterV3 renders the section table.
func encodeFooterV3(entries []sectionEntry) []byte {
	bw := &binWriter{buf: make([]byte, 0, 64+48*len(entries))}
	bw.uint(uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		bw.uint(e.kind)
		bw.uint(e.elemOff)
		bw.uint(e.elemCount)
		bw.uint(e.auxDep)
		bw.uint(e.auxPath)
		bw.uint(e.byteOff)
		bw.uint(e.byteLen)
		bw.bytes(e.digest[:])
	}
	return bw.buf
}

// encodeV3Sections streams the section data — flows first, then each
// transfer stripe followed by its dep and path-hop stripes — recording
// byte ranges and per-section digests as it goes. Section bytes never
// materialize beyond the bounded window.
func encodeV3Sections(cw *countWriter, s *Schedule, sum ValidationSummary) ([]sectionEntry, error) {
	window := make([]byte, 0, 1<<18)
	var entries []sectionEntry
	h := sha256.New()
	emit := func(kind int, elemOff, elemCount, auxDep, auxPath int64, fill func(bw *binWriter)) error {
		h.Reset()
		off := cw.n
		bw := &binWriter{out: io.MultiWriter(cw, h), buf: window}
		fill(bw)
		bw.flush()
		if bw.err != nil {
			return bw.err
		}
		if cw.err != nil {
			return cw.err
		}
		e := sectionEntry{
			kind:    uint64(kind),
			elemOff: uint64(elemOff), elemCount: uint64(elemCount),
			auxDep: uint64(auxDep), auxPath: uint64(auxPath),
			byteOff: uint64(off), byteLen: uint64(cw.n - off),
		}
		h.Sum(e.digest[:0])
		entries = append(entries, e)
		return nil
	}

	if err := emit(secFlows, 0, int64(len(s.Flows)), 0, 0, func(bw *binWriter) {
		for _, r := range s.Flows {
			bw.uint(uint64(r.Off))
			bw.uint(uint64(r.Len))
		}
	}); err != nil {
		return nil, err
	}

	nt := len(s.Transfers)
	var dOff, pOff int64
	for lo := 0; lo < nt; lo += transfersPerStripe {
		hi := min(lo+transfersPerStripe, nt)
		var dCount, pCount int64
		if err := emit(secTransfers, int64(lo), int64(hi-lo), dOff, pOff, func(bw *binWriter) {
			var prevFlow, prevStep int64
			for i := lo; i < hi; i++ {
				t := &s.Transfers[i]
				bw.uint(uint64(t.Src))
				bw.sint(int64(t.Dst) - int64(t.Src))
				op := uint64(opReduceBin)
				if t.Op == Gather {
					op = opGatherBin
				}
				bw.uint(op)
				bw.sint(int64(t.Flow) - prevFlow)
				bw.sint(int64(t.Step) - prevStep)
				prevFlow, prevStep = int64(t.Flow), int64(t.Step)
				bw.uint(uint64(len(t.Deps)))
				path := s.PathOf(t)
				bw.uint(uint64(len(path)))
				dCount += int64(len(t.Deps))
				pCount += int64(len(path))
			}
		}); err != nil {
			return nil, err
		}
		if err := emit(secDeps, dOff, dCount, 0, 0, func(bw *binWriter) {
			var prev int64
			for i := lo; i < hi; i++ {
				for _, d := range s.Transfers[i].Deps {
					bw.sint(int64(d) - prev)
					prev = int64(d)
				}
			}
		}); err != nil {
			return nil, err
		}
		if err := emit(secPaths, pOff, pCount, 0, 0, func(bw *binWriter) {
			for i := lo; i < hi; i++ {
				for _, id := range s.PathOf(&s.Transfers[i]) {
					bw.uint(uint64(id))
				}
			}
		}); err != nil {
			return nil, err
		}
		dOff += dCount
		pOff += pCount
	}
	if dOff != sum.DepEdges || pOff != sum.PathHops {
		return nil, fmt.Errorf("collective: internal error: sections emitted %d deps/%d hops, summary has %d/%d",
			dOff, pOff, sum.DepEdges, sum.PathHops)
	}
	return entries, nil
}

// exportBinaryV3 writes the current sectioned format. Seekable sinks
// stream in one pass with the root hash patched at the end, exactly like
// the v2 exporter; everything else assembles in memory first. Both paths
// emit identical bytes.
func exportBinaryV3(w io.Writer, s *Schedule, sum ValidationSummary) error {
	if ws, ok := w.(io.WriteSeeker); ok {
		return exportBinaryV3Stream(ws, s, sum)
	}
	var buf bufWriteSeeker
	if err := exportBinaryV3Stream(&buf, s, sum); err != nil {
		return err
	}
	_, err := w.Write(buf.buf)
	return err
}

func exportBinaryV3Stream(w io.WriteSeeker, s *Schedule, sum ValidationSummary) error {
	start, err := w.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	var head binWriter
	head.buf = append(head.buf, binaryMagic[:]...)
	head.uint(BinaryIRVersion)
	hashOff := int64(len(head.buf))
	var placeholder [hashSize]byte
	head.buf = append(head.buf, placeholder[:]...)
	if _, err := w.Write(head.buf); err != nil {
		return err
	}

	// Everything below goes through the counting writer, so section byte
	// offsets land directly in body coordinates (0 = first meta byte).
	cw := &countWriter{w: w}
	meta := encodeMetaV3(s, sum)
	if _, err := cw.Write(meta); err != nil {
		return err
	}
	entries, err := encodeV3Sections(cw, s, sum)
	if err != nil {
		return err
	}
	footOff := cw.n
	footer := encodeFooterV3(entries)
	if _, err := cw.Write(footer); err != nil {
		return err
	}
	var trailer [v3TrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:], uint64(footOff))
	binary.LittleEndian.PutUint64(trailer[8:], uint64(len(footer)))
	if _, err := cw.Write(trailer[:]); err != nil {
		return err
	}

	// Root hash: meta || footer. The footer's digests pin the section
	// bytes, so this is the only whole-file pass — and meta+footer are
	// kilobytes.
	h := sha256.New()
	h.Write(meta)
	h.Write(footer)
	var root [hashSize]byte
	h.Sum(root[:0])
	if _, err := w.Seek(start+hashOff, io.SeekStart); err != nil {
		return err
	}
	if _, err := w.Write(root[:]); err != nil {
		return err
	}
	_, err = w.Seek(0, io.SeekEnd)
	return err
}

// readerAtSeeker is what the parallel import path needs: positioned
// reads for concurrent sections, seeks to locate the trailer. *os.File
// and *bytes.Reader both qualify.
type readerAtSeeker interface {
	io.ReaderAt
	io.Seeker
}

// importBinaryV3 decodes the sectioned format: verify the root over
// meta+footer, size every arena from the summary, then fan the sections
// out across opts.Workers goroutines — each a pread, a digest check, and
// a buffer-resident varint decode into its disjoint slice of the shared
// arenas.
func importBinaryV3(r io.Reader, topo *topology.Topology, opts BinaryImportOptions, info BinaryLoadInfo) (*Schedule, BinaryLoadInfo, error) {
	ld := &v3Loader{topo: topo, opts: opts}
	if _, err := io.ReadFull(r, ld.root[:]); err != nil {
		return nil, info, fmt.Errorf("collective: bad binary schedule: %w", err)
	}
	if rs, ok := r.(readerAtSeeker); ok {
		base, err := rs.Seek(0, io.SeekCurrent)
		if err == nil {
			var end int64
			end, err = rs.Seek(0, io.SeekEnd)
			ld.base, ld.size = base, end-base
		}
		if err != nil {
			return nil, info, fmt.Errorf("collective: bad binary schedule: %w", err)
		}
		ld.ra = rs
	} else {
		body, err := io.ReadAll(r)
		if err != nil {
			return nil, info, fmt.Errorf("collective: bad binary schedule: %w", err)
		}
		ld.ra = bytes.NewReader(body)
		ld.size = int64(len(body))
	}
	return ld.load(info)
}

// v3Loader carries the shared state of one sectioned import.
type v3Loader struct {
	topo *topology.Topology
	opts BinaryImportOptions
	root [hashSize]byte
	ra   io.ReaderAt
	base int64 // stream offset of body coordinate 0
	size int64 // body bytes, trailer included

	s       *Schedule
	sum     ValidationSummary
	nf      int
	entries []sectionEntry
	depEnd  []int64 // per transfers stripe: exclusive dep arena bound
	pathEnd []int64 // per transfers stripe: exclusive path arena bound

	depArena  []TransferID
	pathArena []topology.LinkID

	// Per-entry results of the decode fan-out, merged deterministically.
	errs    []error
	maxStep []int
	bitmaps []*linkBitmap // per worker

	decodeNs, verifyNs atomic.Int64
}

func badSchedule(format string, args ...any) error {
	return fmt.Errorf("collective: bad binary schedule: "+format, args...)
}

func (ld *v3Loader) readAt(p []byte, off int64) error {
	_, err := ld.ra.ReadAt(p, ld.base+off)
	if err != nil {
		return badSchedule("truncated stream: %w", err)
	}
	return nil
}

func (ld *v3Loader) load(info BinaryLoadInfo) (*Schedule, BinaryLoadInfo, error) {
	t0 := time.Now()
	meta, err := ld.readTable()
	if err != nil {
		return nil, info, err
	}
	ld.verifyNs.Add(time.Since(t0).Nanoseconds())
	if err := ld.parseMeta(meta); err != nil {
		return nil, info, err
	}
	if err := ld.planSections(); err != nil {
		return nil, info, err
	}

	o := ld.opts.Observer
	if o != nil {
		o.PhaseStart(obs.PhaseDecode)
	}
	err = ld.decodeAll()
	if o != nil {
		o.PhaseEnd(obs.PhaseDecode, obs.PlanCounters{
			Transfers:   ld.sum.Transfers,
			DecodeNanos: ld.decodeNs.Load(),
		})
	}
	if err != nil {
		return nil, info, err
	}

	if o != nil && !ld.opts.VerifyFull {
		o.PhaseStart(obs.PhaseValidate)
	}
	err = ld.crossCheck()
	if o != nil && !ld.opts.VerifyFull {
		c := obs.PlanCounters{Transfers: ld.sum.Transfers, VerifyNanos: ld.verifyNs.Load()}
		if err == nil {
			c.SummaryValidations = 1
		}
		o.PhaseEnd(obs.PhaseValidate, c)
	}
	if err != nil {
		return nil, info, err
	}

	info.Summary = &ld.sum
	info.Transfers = len(ld.s.Transfers)
	if ld.opts.VerifyFull {
		if err := verifyFullV2(ld.s, &ld.sum, o); err != nil {
			return nil, info, err
		}
		info.Validation = "full"
		return ld.s, info, nil
	}
	info.Validation = "summary"
	return ld.s, info, nil
}

// readTable locates and parses the footer, pins every byte of the body
// to a structural role, and verifies the root hash — after which any
// surviving corruption must be confined to section bytes, where the
// per-section digests catch it. Returns the meta block bytes.
func (ld *v3Loader) readTable() ([]byte, error) {
	if ld.size < v3TrailerLen {
		return nil, badSchedule("truncated stream: %w", io.ErrUnexpectedEOF)
	}
	var tr [v3TrailerLen]byte
	if err := ld.readAt(tr[:], ld.size-v3TrailerLen); err != nil {
		return nil, err
	}
	footOff := binary.LittleEndian.Uint64(tr[0:8])
	footLen := binary.LittleEndian.Uint64(tr[8:16])
	// The footer must end flush against the trailer: no slack bytes
	// anywhere, so a tampered trailer cannot point at a forged table
	// hidden inside the stream without the contiguity checks below
	// failing.
	if footLen == 0 || footLen > uint64(ld.size)-v3TrailerLen ||
		footOff != uint64(ld.size)-v3TrailerLen-footLen {
		return nil, badSchedule("section table out of place")
	}
	footer := make([]byte, footLen)
	if err := ld.readAt(footer, int64(footOff)); err != nil {
		return nil, err
	}

	d := &sliceDecoder{buf: footer}
	n := d.intCap("section", min(maxV3Sections, int64(footLen)))
	if d.err == nil && n == 0 {
		return nil, badSchedule("no sections")
	}
	entries := make([]sectionEntry, n)
	for i := range entries {
		e := &entries[i]
		e.kind = d.uint()
		e.elemOff = d.uint()
		e.elemCount = d.uint()
		e.auxDep = d.uint()
		e.auxPath = d.uint()
		e.byteOff = d.uint()
		e.byteLen = d.uint()
		d.bytes(e.digest[:])
	}
	if d.err != nil || !d.done() {
		err := d.err
		if err == nil {
			err = fmt.Errorf("trailing bytes in section table")
		}
		return nil, badSchedule("%w", err)
	}
	// Sections must tile [metaLen, footOff) contiguously in table order:
	// together with the root hash over meta||footer this accounts for
	// every body byte exactly once.
	metaLen := entries[0].byteOff
	if metaLen > maxV3MetaLen {
		return nil, badSchedule("meta block of %d bytes", metaLen)
	}
	at := metaLen
	for i := range entries {
		e := &entries[i]
		if e.byteOff != at || e.byteLen > footOff-at {
			return nil, badSchedule("section %d bytes out of place", i)
		}
		at += e.byteLen
	}
	if at != footOff {
		return nil, badSchedule("sections cover %d bytes, data has %d", at-metaLen, footOff-metaLen)
	}

	meta := make([]byte, metaLen)
	if err := ld.readAt(meta, 0); err != nil {
		return nil, err
	}
	h := sha256.New()
	h.Write(meta)
	h.Write(footer)
	var got [hashSize]byte
	h.Sum(got[:0])
	if got != ld.root {
		return nil, badSchedule("content hash mismatch (corrupt or tampered entry)")
	}
	ld.entries = entries
	return meta, nil
}

// parseMeta decodes the meta block and applies the same header and
// summary-size hygiene as the v2 path — with the advantage that the
// body size is known exactly, not hinted.
func (ld *v3Loader) parseMeta(meta []byte) error {
	d := &sliceDecoder{buf: meta}
	algorithm := d.str(maxStringLen)
	fingerprint := d.str(maxStringLen)
	s := &Schedule{
		Algorithm: algorithm,
		Topo:      ld.topo,
		Elems:     d.intCap("elems", 1<<56),
		Steps:     d.intCap("steps", 1<<56),
	}
	sum := &ld.sum
	sum.Transfers = int64(d.intCap("transfer", 1<<31-1))
	sum.DepEdges = int64(d.intCap("dep", 1<<40))
	sum.PathHops = int64(d.intCap("path hop", 1<<40))
	sum.LinksUsed = int64(d.intCap("link", 1<<40))
	sum.CoveredElems = int64(d.intCap("covered elem", 1<<56))
	d.bytes(sum.Witness[:])
	// One flow per tree; always dwarfed by transfers on non-trivial
	// schedules, with a floor for degenerate ones.
	ld.nf = d.intCap("flow", max(sum.Transfers, 1<<16))
	if d.err == nil && !d.done() {
		d.err = fmt.Errorf("trailing bytes in meta block")
	}
	if d.err != nil {
		return badSchedule("%w", d.err)
	}
	if err := checkHeader(s, ld.topo, fingerprint); err != nil {
		return err
	}
	// Each transfer record costs >= 7 section bytes, each dep and path
	// hop >= 1: a summary whose claimed sizes could not fit in the body
	// is rejected before anything is allocated from it.
	if sum.Transfers*7+sum.DepEdges+sum.PathHops > ld.size {
		return badSchedule("summary claims %d transfers/%d deps/%d hops in a %d-byte body",
			sum.Transfers, sum.DepEdges, sum.PathHops, ld.size)
	}
	ld.s = s
	return nil
}

// planSections checks that each kind's sections tile its element space
// exactly and derives the per-transfers-stripe arena bounds from the
// aux-offset chain.
func (ld *v3Loader) planSections() error {
	ld.depEnd = make([]int64, len(ld.entries))
	ld.pathEnd = make([]int64, len(ld.entries))
	var flowSections int
	var tAt, dAt, pAt int64 // next expected element index per kind
	lastT := -1             // index of the previous transfers stripe
	for i := range ld.entries {
		e := &ld.entries[i]
		switch e.kind {
		case secFlows:
			if flowSections++; flowSections > 1 {
				return badSchedule("duplicate flow section")
			}
			if e.elemOff != 0 || e.elemCount != uint64(ld.nf) {
				return badSchedule("flow section covers [%d,+%d), want %d flows", e.elemOff, e.elemCount, ld.nf)
			}
		case secTransfers:
			if e.elemOff != uint64(tAt) || e.elemCount > uint64(ld.sum.Transfers-tAt) {
				return badSchedule("transfer section %d covers [%d,+%d), want offset %d", i, e.elemOff, e.elemCount, tAt)
			}
			if e.auxDep > uint64(ld.sum.DepEdges) || e.auxPath > uint64(ld.sum.PathHops) {
				return badSchedule("transfer section %d arena offsets out of range", i)
			}
			if lastT >= 0 {
				ld.depEnd[lastT] = int64(e.auxDep)
				ld.pathEnd[lastT] = int64(e.auxPath)
				if ld.depEnd[lastT] < int64(ld.entries[lastT].auxDep) ||
					ld.pathEnd[lastT] < int64(ld.entries[lastT].auxPath) {
					return badSchedule("transfer section %d arena offsets regress", i)
				}
			} else if e.auxDep != 0 || e.auxPath != 0 {
				return badSchedule("first transfer section starts mid-arena")
			}
			tAt += int64(e.elemCount)
			lastT = i
		case secDeps:
			if e.elemOff != uint64(dAt) || e.elemCount > uint64(ld.sum.DepEdges-dAt) {
				return badSchedule("dep section %d covers [%d,+%d), want offset %d", i, e.elemOff, e.elemCount, dAt)
			}
			dAt += int64(e.elemCount)
		case secPaths:
			if e.elemOff != uint64(pAt) || e.elemCount > uint64(ld.sum.PathHops-pAt) {
				return badSchedule("path section %d covers [%d,+%d), want offset %d", i, e.elemOff, e.elemCount, pAt)
			}
			pAt += int64(e.elemCount)
		default:
			return badSchedule("unknown section kind %d", e.kind)
		}
	}
	if lastT >= 0 {
		ld.depEnd[lastT] = ld.sum.DepEdges
		ld.pathEnd[lastT] = ld.sum.PathHops
		if ld.depEnd[lastT] < int64(ld.entries[lastT].auxDep) ||
			ld.pathEnd[lastT] < int64(ld.entries[lastT].auxPath) {
			return badSchedule("last transfer section arena offsets regress")
		}
	}
	if flowSections == 0 {
		return badSchedule("no flow section")
	}
	if tAt != ld.sum.Transfers || dAt != ld.sum.DepEdges || pAt != ld.sum.PathHops {
		return badSchedule("sections cover %d transfers/%d deps/%d hops, summary claims %d/%d/%d",
			tAt, dAt, pAt, ld.sum.Transfers, ld.sum.DepEdges, ld.sum.PathHops)
	}
	return nil
}

// decodeAll allocates the arenas and fans section decoding out across
// the workers, then merges per-entry results deterministically: the
// lowest-indexed section's error wins regardless of scheduling.
func (ld *v3Loader) decodeAll() error {
	workers := ld.opts.Workers
	if workers < 1 {
		workers = 1
	}
	ld.s.Flows = make([]Range, ld.nf)
	ld.s.Transfers = make([]Transfer, ld.sum.Transfers)
	ld.depArena = make([]TransferID, ld.sum.DepEdges)
	ld.pathArena = make([]topology.LinkID, ld.sum.PathHops)
	ld.errs = make([]error, len(ld.entries))
	ld.maxStep = make([]int, len(ld.entries))
	ld.bitmaps = make([]*linkBitmap, workers)
	bufs := make([][]byte, workers)
	runTreeTasks(workers, len(ld.entries), func(w, i int) {
		ld.errs[i] = ld.decodeSection(w, i, &bufs[w])
	})
	for i, err := range ld.errs {
		if err != nil {
			return fmt.Errorf("%w (section %d)", err, i)
		}
	}
	return nil
}

// decodeSection loads, verifies and decodes one section into its
// disjoint region of the shared arrays. buf is the worker's reusable
// read buffer.
func (ld *v3Loader) decodeSection(w, i int, buf *[]byte) error {
	e := &ld.entries[i]
	if int64(e.byteLen) > int64(cap(*buf)) {
		*buf = make([]byte, e.byteLen)
	}
	b := (*buf)[:e.byteLen]
	t0 := time.Now()
	if err := ld.readAt(b, int64(e.byteOff)); err != nil {
		return err
	}
	t1 := time.Now()
	if sha256.Sum256(b) != e.digest {
		ld.verifyNs.Add(time.Since(t1).Nanoseconds())
		return badSchedule("content hash mismatch (corrupt or tampered entry)")
	}
	t2 := time.Now()
	ld.verifyNs.Add(t2.Sub(t1).Nanoseconds())

	d := &sliceDecoder{buf: b}
	var err error
	switch e.kind {
	case secFlows:
		err = ld.decodeFlows(d, e)
	case secTransfers:
		err = ld.decodeTransfers(d, e, i)
	case secDeps:
		err = ld.decodeDeps(d, e)
	case secPaths:
		err = ld.decodePaths(d, e, w)
	}
	ld.decodeNs.Add(time.Since(t2).Nanoseconds() + t1.Sub(t0).Nanoseconds())
	if err == nil && d.err != nil {
		err = badSchedule("%w", d.err)
	}
	if err == nil && !d.done() {
		err = badSchedule("trailing bytes in section")
	}
	return err
}

func (ld *v3Loader) decodeFlows(d *sliceDecoder, e *sectionEntry) error {
	for j := uint64(0); j < e.elemCount; j++ {
		off := d.uint()
		length := d.uint()
		ld.s.Flows[e.elemOff+j] = Range{Off: int(off), Len: int(length)}
	}
	return nil
}

func (ld *v3Loader) decodeTransfers(d *sliceDecoder, e *sectionEntry, i int) error {
	nodes := topology.NodeID(ld.topo.Nodes())
	dcur, pcur := int64(e.auxDep), int64(e.auxPath)
	dEnd, pEnd := ld.depEnd[i], ld.pathEnd[i]
	lo := int(e.elemOff)
	hi := lo + int(e.elemCount)
	maxStep := 0
	var prevFlow, prevStep int64
	for j := lo; j < hi; j++ {
		t := &ld.s.Transfers[j]
		t.ID = TransferID(j)
		src := int64(d.uint())
		dst := src + d.sint()
		op := d.uint()
		flow := prevFlow + d.sint()
		step := prevStep + d.sint()
		nd := d.uint()
		np := d.uint()
		if d.err != nil {
			return badSchedule("%w", d.err)
		}
		// Range checks run on int64 before narrowing: a hostile delta
		// cannot wrap a sum of two in-range values back into range.
		if src < 0 || src >= int64(nodes) || dst < 0 || dst >= int64(nodes) {
			return fmt.Errorf("collective: transfer %d: endpoint out of range (%d->%d)", j, src, dst)
		}
		t.Src = topology.NodeID(src)
		t.Dst = topology.NodeID(dst)
		switch op {
		case opReduceBin:
			t.Op = Reduce
		case opGatherBin:
			t.Op = Gather
		default:
			return fmt.Errorf("collective: transfer %d has unknown op %d", j, op)
		}
		if flow < 0 || flow >= int64(ld.nf) {
			return fmt.Errorf("collective: transfer %d: flow %d out of range", j, flow)
		}
		if step < 0 || step > int64(ld.s.Steps) {
			return fmt.Errorf("collective: transfer %d: step %d out of range", j, step)
		}
		t.Flow = int(flow)
		t.Step = int(step)
		prevFlow, prevStep = flow, step
		if nd > uint64(dEnd-dcur) {
			return badSchedule("transfer %d overruns its dep stripe", j)
		}
		if nd > 0 {
			t.Deps = ld.depArena[dcur : dcur+int64(nd) : dcur+int64(nd)]
			dcur += int64(nd)
		}
		if np > uint64(pEnd-pcur) {
			return badSchedule("transfer %d overruns its path stripe", j)
		}
		t.Path = ld.pathArena[pcur : pcur+int64(np) : pcur+int64(np)]
		pcur += int64(np)
		if t.Step > maxStep {
			maxStep = t.Step
		}
	}
	if dcur != dEnd || pcur != pEnd {
		return badSchedule("transfer section deps/hops end at %d/%d, table says %d/%d", dcur, pcur, dEnd, pEnd)
	}
	ld.maxStep[i] = maxStep
	return nil
}

func (ld *v3Loader) decodeDeps(d *sliceDecoder, e *sectionEntry) error {
	nt := ld.sum.Transfers
	var prev int64
	for j := uint64(0); j < e.elemCount; j++ {
		v := prev + d.sint()
		if v < 0 || v >= nt {
			if d.err == nil {
				return fmt.Errorf("collective: dep %d out of range", v)
			}
			return badSchedule("%w", d.err)
		}
		ld.depArena[e.elemOff+j] = TransferID(v)
		prev = v
	}
	return nil
}

func (ld *v3Loader) decodePaths(d *sliceDecoder, e *sectionEntry, w int) error {
	links := uint64(len(ld.topo.Links()))
	bm := ld.bitmaps[w]
	if bm == nil {
		bm = newLinkBitmap(int(links))
		ld.bitmaps[w] = bm
	}
	for j := uint64(0); j < e.elemCount; j++ {
		v := d.uint()
		if v >= links {
			if d.err == nil {
				return fmt.Errorf("collective: path link %d out of range", v)
			}
			return badSchedule("%w", d.err)
		}
		ld.pathArena[e.elemOff+j] = topology.LinkID(v)
		bm.add(topology.LinkID(v))
	}
	return nil
}

// crossCheck is the post-join summary validation: the per-worker link
// bitmaps union to the summary's distinct-link count, steps bound the
// decoded maximum, and coverage matches — the same cross-checks the v2
// path runs, minus the ones the section tables enforce structurally.
func (ld *v3Loader) crossCheck() error {
	var merged *linkBitmap
	for _, bm := range ld.bitmaps {
		if bm == nil {
			continue
		}
		if merged == nil {
			merged = bm
			continue
		}
		for w, word := range bm.words {
			merged.words[w] |= word
		}
	}
	var linksUsed int64
	if merged != nil {
		for _, word := range merged.words {
			linksUsed += int64(bits.OnesCount64(word))
		}
	}
	if linksUsed != ld.sum.LinksUsed {
		return badSchedule("summary claims %d links used, stream has %d", ld.sum.LinksUsed, linksUsed)
	}
	maxStep := 0
	for _, st := range ld.maxStep {
		if st > maxStep {
			maxStep = st
		}
	}
	if ld.s.Steps < maxStep {
		return fmt.Errorf("collective: schedule claims %d steps but has a transfer at step %d", ld.s.Steps, maxStep)
	}
	if len(ld.s.Transfers) > 0 && ld.s.Elems > 0 && ld.sum.CoveredElems != int64(ld.s.Elems) {
		return badSchedule("summary covers %d of %d elements", ld.sum.CoveredElems, ld.s.Elems)
	}
	return nil
}
