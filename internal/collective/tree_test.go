package collective

import (
	"strings"
	"testing"

	"multitree/internal/topology"
)

// chainTree builds a unary tree root -> 1 -> 2 -> 3 on the 2x2 mesh.
func chainTree() *Tree {
	tr := NewTree(0, 0, 4)
	tr.SetEdge(0, 1, 1)
	tr.SetEdge(1, 3, 2)
	tr.SetEdge(3, 2, 3)
	return tr
}

func TestTreeValidateAccepts(t *testing.T) {
	if err := chainTree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeValidateRejectsDisconnected(t *testing.T) {
	tr := NewTree(0, 0, 4)
	tr.SetEdge(0, 1, 1)
	if err := tr.Validate(); err == nil {
		t.Error("tree missing nodes validated")
	}
}

func TestTreeValidateRejectsNonMonotoneSteps(t *testing.T) {
	tr := NewTree(0, 0, 3)
	tr.SetEdge(0, 1, 2)
	tr.SetEdge(1, 2, 1) // child attaches before its parent
	if err := tr.Validate(); err == nil {
		t.Error("non-monotone steps validated")
	}
}

func TestTreeValidateRejectsCycle(t *testing.T) {
	tr := NewTree(0, 0, 3)
	tr.SetEdge(0, 1, 1)
	tr.SetEdge(2, 2, 2) // self-parent cycle (never reaches root)
	if err := tr.Validate(); err == nil {
		t.Error("cycle validated")
	}
}

func TestTreeChildrenSorted(t *testing.T) {
	tr := NewTree(0, 0, 4)
	tr.SetEdge(0, 3, 2)
	tr.SetEdge(0, 1, 1)
	tr.SetEdge(0, 2, 1)
	kids := tr.Children()[0]
	if len(kids) != 3 || kids[0] != 1 || kids[1] != 2 || kids[2] != 3 {
		t.Errorf("children order = %v, want step-then-id order [1 2 3]", kids)
	}
	if tr.Height() != 2 {
		t.Errorf("height = %d, want 2", tr.Height())
	}
}

func TestTreeString(t *testing.T) {
	s := chainTree().String()
	for _, want := range []string{"tree 0 root n0", "t1: n0->n1", "t3: n3->n2"} {
		if !strings.Contains(s, want) {
			t.Errorf("tree rendering missing %q: %s", want, s)
		}
	}
}

// TestTreesToScheduleStructure lowers one chain tree and checks phases,
// steps and dependencies.
func TestTreesToScheduleStructure(t *testing.T) {
	topo := topology.Mesh(2, 2, topology.DefaultLinkConfig())
	s, err := TreesToSchedule("unit", topo, 400, []*Tree{chainTree()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 reduce + 3 gather transfers; reduce steps 1..3, gather 4..6.
	if len(s.Transfers) != 6 || s.Steps != 6 {
		t.Fatalf("%d transfers %d steps, want 6 and 6", len(s.Transfers), s.Steps)
	}
	var reduceSteps, gatherSteps []int
	for i := range s.Transfers {
		tr := &s.Transfers[i]
		if tr.Op == Reduce {
			reduceSteps = append(reduceSteps, tr.Step)
			// Reduce direction is child -> parent: deepest node 2 sends
			// first.
			if tr.Step == 1 && tr.Src != 2 {
				t.Errorf("first reduce from node %d, want 2", tr.Src)
			}
		} else {
			gatherSteps = append(gatherSteps, tr.Step)
		}
	}
	for _, st := range reduceSteps {
		if st < 1 || st > 3 {
			t.Errorf("reduce step %d out of phase", st)
		}
	}
	for _, st := range gatherSteps {
		if st < 4 || st > 6 {
			t.Errorf("gather step %d out of phase", st)
		}
	}
	// Semantics: all-reduce for flow 0's segment only. With one tree the
	// whole vector is flow 0, so this is a full all-reduce.
	if err := VerifyAllReduce(s, RampInputs(4, 400)); err != nil {
		t.Fatal(err)
	}
}

// TestTreesToSchedulePinnedPaths checks that reduce transfers use the
// reversed allocated path.
func TestTreesToSchedulePinnedPaths(t *testing.T) {
	topo := topology.FatTree(2, 2, 2, topology.DefaultLinkConfig())
	tr := NewTree(0, 0, 4)
	tr.SetEdge(0, 1, 1)
	tr.SetEdge(0, 2, 2)
	tr.SetEdge(2, 3, 3)
	tr.Path[1] = topo.Route(0, 1)
	tr.Path[2] = topo.Route(0, 2)
	tr.Path[3] = topo.Route(2, 3)
	s, err := TreesToSchedule("unit", topo, 100, []*Tree{tr})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Transfers {
		tf := &s.Transfers[i]
		if tf.Path == nil {
			t.Fatalf("transfer %d lost its pinned path", i)
		}
		cur := int(tf.Src)
		for _, id := range tf.Path {
			l := topo.Link(id)
			if l.Src != cur {
				t.Fatalf("transfer %d path discontiguous", i)
			}
			cur = l.Dst
		}
		if cur != int(tf.Dst) {
			t.Fatalf("transfer %d path ends at %d, want %d", i, cur, tf.Dst)
		}
	}
}

func TestTreesToScheduleRejectsBadTree(t *testing.T) {
	topo := topology.Mesh(2, 2, topology.DefaultLinkConfig())
	bad := NewTree(0, 0, 4)
	if _, err := TreesToSchedule("unit", topo, 100, []*Tree{bad}); err == nil {
		t.Error("disconnected tree lowered without error")
	}
}
