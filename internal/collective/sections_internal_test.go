package collective

// Internal differential tests for the hand-rolled varint decoder in
// sections.go. The slow path must match encoding/binary.Uvarint
// bit-for-bit — including the 10th-byte overflow rule — because the
// encoder writes with binary.PutUvarint and the v3 wire format's
// tamper rejection depends on every out-of-spec byte sequence being
// an error, not a silent wrap.

import (
	"encoding/binary"
	"math"
	"testing"
)

// varintCorpus mixes boundary values with a deterministic LCG sweep so
// every encoded length (1..10 bytes) and both zigzag signs appear.
func varintCorpus() []uint64 {
	vals := []uint64{
		0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 0x1fffff, 0x200000,
		math.MaxUint32, math.MaxUint64, math.MaxUint64 - 1,
		1 << 62, (1 << 63) - 1, 1 << 63,
	}
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 200; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		// Vary the magnitude so short encodings are well represented.
		vals = append(vals, x>>(x%64))
	}
	return vals
}

func TestSliceDecoderMatchesStdUvarint(t *testing.T) {
	for _, v := range varintCorpus() {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		d := &sliceDecoder{buf: buf[:n]}
		got := d.uint()
		if d.err != nil {
			t.Fatalf("decode(%#x): unexpected error %v", v, d.err)
		}
		if got != v || d.pos != n {
			t.Fatalf("decode(%#x) = %#x, pos %d; want %#x, pos %d", v, got, d.pos, v, n)
		}
	}
}

func TestSliceDecoderSintRoundTrip(t *testing.T) {
	signed := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64, math.MinInt64 + 1}
	for _, v := range varintCorpus() {
		signed = append(signed, int64(v), -int64(v))
	}
	for _, v := range signed {
		var w binWriter
		w.buf = w.buf[:0]
		w.sint(v)
		d := &sliceDecoder{buf: w.buf}
		got := d.sint()
		if d.err != nil {
			t.Fatalf("sint(%d): unexpected error %v", v, d.err)
		}
		if got != v || !d.done() {
			t.Fatalf("sint round trip: got %d (done=%v), want %d", got, d.done(), v)
		}
	}
}

func TestSliceDecoderRejectsWhatStdRejects(t *testing.T) {
	cases := [][]byte{
		// 10 continuation bytes: longer than any valid encoding.
		{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		// 10th byte > 1 would overflow 64 bits (binary.Uvarint returns n<0).
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02},
		// Truncated multi-byte varints.
		{0x80},
		{0xff, 0xff, 0xff},
		{},
	}
	for i, c := range cases {
		if v, n := binary.Uvarint(c); n > 0 {
			t.Fatalf("case %d: corpus error — stdlib accepts %v as %d", i, c, v)
		}
		d := &sliceDecoder{buf: c}
		d.uint()
		if d.err == nil {
			t.Fatalf("case %d: decoder accepted invalid varint % x", i, c)
		}
	}
	// The maximum valid encoding (10 bytes, final byte 0x01) must still
	// decode: it is exactly math.MaxUint64 and the overflow guard must
	// not fire one value early.
	max := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	d := &sliceDecoder{buf: max}
	if got := d.uint(); d.err != nil || got != math.MaxUint64 {
		t.Fatalf("max encoding: got %#x, err %v", got, d.err)
	}
}
