package collective

import (
	"fmt"
	"sort"
	"strings"

	"multitree/internal/obs"
	"multitree/internal/topology"
)

// Tree is a spanning reduction/broadcast tree for one flow (one gradient
// chunk), the structure Algorithm 1 of the paper constructs. The same tree
// serves both phases: reduce-scatter runs it leaf-to-root, all-gather
// root-to-leaf, exactly as lines 16-18 of Algorithm 1 derive one from the
// other.
type Tree struct {
	Flow int
	Root topology.NodeID

	// Parent[n] is node n's parent, -1 for the root.
	Parent []topology.NodeID

	// AGStep[n] is the 1-based all-gather time step at which the edge
	// Parent[n] -> n communicates (the construction time step of line 13);
	// 0 for the root.
	AGStep []int

	// Path[n] optionally pins the allocated link path Parent[n] -> n for
	// indirect networks (§III-C3); nil entries fall back to routing.
	Path [][]topology.LinkID

	// Members, when non-nil, restricts the tree to a subset of nodes —
	// the hybrid-parallel case of §VII-B where "MultiTree runs for the
	// nodes that involve all-reduce communication". Non-member nodes may
	// still appear inside Path entries as pass-through routers, but they
	// neither send nor receive gradient chunks.
	Members []bool
}

// NewTree allocates a tree over n nodes rooted at root.
func NewTree(flow int, root topology.NodeID, n int) *Tree {
	t := &Tree{
		Flow:   flow,
		Root:   root,
		Parent: make([]topology.NodeID, n),
		AGStep: make([]int, n),
		Path:   make([][]topology.LinkID, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	return t
}

// SetEdge records that node child was connected to parent at all-gather
// step step.
func (t *Tree) SetEdge(parent, child topology.NodeID, step int) {
	t.Parent[child] = parent
	t.AGStep[child] = step
}

// Children returns, for each node, its children sorted by attach step then
// id — the order the schedule table lists them.
func (t *Tree) Children() [][]topology.NodeID {
	ch := make([][]topology.NodeID, len(t.Parent))
	for n, p := range t.Parent {
		if topology.NodeID(n) == t.Root || p < 0 {
			continue
		}
		ch[p] = append(ch[p], topology.NodeID(n))
	}
	for p := range ch {
		kids := ch[p]
		sort.Slice(kids, func(i, j int) bool {
			if t.AGStep[kids[i]] != t.AGStep[kids[j]] {
				return t.AGStep[kids[i]] < t.AGStep[kids[j]]
			}
			return kids[i] < kids[j]
		})
	}
	return ch
}

// Height returns the maximum AGStep, i.e. the tree's scheduled depth.
func (t *Tree) Height() int {
	h := 0
	for _, s := range t.AGStep {
		if s > h {
			h = s
		}
	}
	return h
}

// Validate checks that the tree spans all nodes, is acyclic, and that each
// child attaches at a strictly later step than its parent.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	for node := 0; node < n; node++ {
		id := topology.NodeID(node)
		if t.Members != nil && !t.Members[node] {
			if t.Parent[node] != -1 {
				return fmt.Errorf("tree %d: non-member %d has parent %d", t.Flow, id, t.Parent[node])
			}
			continue
		}
		if id == t.Root {
			if t.Parent[node] != -1 {
				return fmt.Errorf("tree %d: root %d has parent %d", t.Flow, id, t.Parent[node])
			}
			continue
		}
		if t.Parent[node] < 0 {
			return fmt.Errorf("tree %d: node %d not connected", t.Flow, id)
		}
		if t.AGStep[node] < 1 {
			return fmt.Errorf("tree %d: node %d has step %d", t.Flow, id, t.AGStep[node])
		}
		if p := t.Parent[node]; p != t.Root && t.AGStep[p] >= t.AGStep[node] {
			return fmt.Errorf("tree %d: node %d (step %d) attaches no later than parent %d (step %d)",
				t.Flow, id, t.AGStep[node], p, t.AGStep[p])
		}
		// Walk to the root to detect cycles.
		seen := 0
		for v := id; v != t.Root; v = t.Parent[v] {
			if seen++; seen > n {
				return fmt.Errorf("tree %d: cycle through node %d", t.Flow, id)
			}
		}
	}
	return nil
}

// String renders the tree per level for diagnostics and the Fig. 3
// walkthrough.
func (t *Tree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tree %d root n%d:", t.Flow, t.Root)
	byStep := map[int][]string{}
	maxStep := 0
	for n, p := range t.Parent {
		if p < 0 {
			continue
		}
		s := t.AGStep[n]
		byStep[s] = append(byStep[s], fmt.Sprintf("n%d->n%d", p, n))
		if s > maxStep {
			maxStep = s
		}
	}
	for s := 1; s <= maxStep; s++ {
		edges := byStep[s]
		sort.Strings(edges)
		fmt.Fprintf(&b, " [t%d: %s]", s, strings.Join(edges, " "))
	}
	return b.String()
}

// TreesToSchedule lowers a set of spanning trees (one per flow) into a
// Transfer DAG. Reduce-scatter transfers occupy steps 1..tot and run each
// tree leaf-to-root; all-gather transfers occupy steps tot+1..2*tot and run
// root-to-leaf, with the step reversal of Algorithm 1 lines 16-18:
//
//	reduce step  = tot - AGStep + 1
//	gather step  = tot + AGStep
//
// Dependencies encode the schedule-table semantics of §IV-A: a node's
// Reduce to its parent waits for the Reduces from all its children, and a
// Gather to a child waits for the Gather received from the parent (or, at
// the root, for the completed reduction).
func TreesToSchedule(alg string, topo *topology.Topology, elems int, trees []*Tree) (*Schedule, error) {
	return TreesToScheduleObserved(alg, topo, elems, trees, nil)
}

// TreesToScheduleObserved is TreesToSchedule bracketed as the lowering
// phase of a PlanObserver: phase boundaries plus the emitted transfer
// count. A nil observer makes it exactly TreesToSchedule.
func TreesToScheduleObserved(alg string, topo *topology.Topology, elems int, trees []*Tree, o obs.PlanObserver) (*Schedule, error) {
	if o == nil {
		return treesToSchedule(alg, topo, elems, trees)
	}
	o.PhaseStart(obs.PhaseLowering)
	s, err := treesToSchedule(alg, topo, elems, trees)
	var c obs.PlanCounters
	if s != nil {
		c.Transfers = int64(len(s.Transfers))
	}
	o.PhaseEnd(obs.PhaseLowering, c)
	return s, err
}

func treesToSchedule(alg string, topo *topology.Topology, elems int, trees []*Tree) (*Schedule, error) {
	s := NewSchedule(alg, topo, elems, len(trees))
	tot := 0
	for _, tr := range trees {
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		if h := tr.Height(); h > tot {
			tot = h
		}
	}
	for _, tr := range trees {
		n := len(tr.Parent)

		// Reduce phase, deepest level first so dependencies reference
		// already-added transfers.
		reduceInto := make([][]TransferID, n) // Reduce transfers received per node
		reduceFrom := make([]TransferID, n)   // the Reduce each non-root node sends
		type edge struct {
			child topology.NodeID
			step  int
		}
		var edges []edge
		for node := 0; node < n; node++ {
			if tr.Members != nil && !tr.Members[node] {
				continue
			}
			if topology.NodeID(node) != tr.Root {
				edges = append(edges, edge{topology.NodeID(node), tr.AGStep[node]})
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].step != edges[j].step {
				return edges[i].step > edges[j].step // deepest first for reduce
			}
			return edges[i].child < edges[j].child
		})
		for _, e := range edges {
			p := tr.Parent[e.child]
			var deps []TransferID
			deps = append(deps, reduceInto[e.child]...)
			id := s.Add(Transfer{
				Src: e.child, Dst: p, Op: Reduce, Flow: tr.Flow,
				Step: tot - e.step + 1,
				Deps: deps,
				Path: reversePath(topo, tr.Path[e.child]),
			})
			reduceFrom[e.child] = id
			reduceInto[p] = append(reduceInto[p], id)
		}

		// Gather phase, shallowest level first.
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].step != edges[j].step {
				return edges[i].step < edges[j].step
			}
			return edges[i].child < edges[j].child
		})
		gatherInto := make([]TransferID, n)
		for i := range gatherInto {
			gatherInto[i] = -1
		}
		for _, e := range edges {
			p := tr.Parent[e.child]
			var deps []TransferID
			if p == tr.Root {
				deps = append(deps, reduceInto[tr.Root]...)
			} else if gatherInto[p] >= 0 {
				deps = append(deps, gatherInto[p])
			}
			// A node cannot forward downstream before it has stopped
			// needing its buffer for the reduce it sent upstream; the
			// gather overwrites the same segment, so order after its own
			// reduce send.
			if topology.NodeID(e.child) != tr.Root {
				deps = append(deps, reduceFrom[e.child])
			}
			id := s.Add(Transfer{
				Src: p, Dst: e.child, Op: Gather, Flow: tr.Flow,
				Step: tot + e.step,
				Deps: deps,
				Path: tr.Path[e.child],
			})
			gatherInto[e.child] = id
		}
	}
	s.Steps = 2 * tot
	return s, nil
}

// reversePath returns the opposite-direction link path, used to derive
// reduce-scatter routes from allocated all-gather routes.
func reversePath(topo *topology.Topology, path []topology.LinkID) []topology.LinkID {
	if path == nil {
		return nil
	}
	out := make([]topology.LinkID, len(path))
	for i, id := range path {
		l := topo.Link(id)
		out[len(path)-1-i] = topo.ReverseLink(l)
	}
	return out
}
