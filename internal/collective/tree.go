package collective

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"multitree/internal/obs"
	"multitree/internal/topology"
)

// Tree is a spanning reduction/broadcast tree for one flow (one gradient
// chunk), the structure Algorithm 1 of the paper constructs. The same tree
// serves both phases: reduce-scatter runs it leaf-to-root, all-gather
// root-to-leaf, exactly as lines 16-18 of Algorithm 1 derive one from the
// other.
type Tree struct {
	Flow int
	Root topology.NodeID

	// Parent[n] is node n's parent, -1 for the root.
	Parent []topology.NodeID

	// AGStep[n] is the 1-based all-gather time step at which the edge
	// Parent[n] -> n communicates (the construction time step of line 13);
	// 0 for the root.
	AGStep []int

	// Path[n] optionally pins the allocated link path Parent[n] -> n for
	// indirect networks (§III-C3); nil entries fall back to routing.
	Path [][]topology.LinkID

	// Members, when non-nil, restricts the tree to a subset of nodes —
	// the hybrid-parallel case of §VII-B where "MultiTree runs for the
	// nodes that involve all-reduce communication". Non-member nodes may
	// still appear inside Path entries as pass-through routers, but they
	// neither send nor receive gradient chunks.
	Members []bool
}

// NewTree allocates a tree over n nodes rooted at root.
func NewTree(flow int, root topology.NodeID, n int) *Tree {
	t := &Tree{
		Flow:   flow,
		Root:   root,
		Parent: make([]topology.NodeID, n),
		AGStep: make([]int, n),
		Path:   make([][]topology.LinkID, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	return t
}

// SetEdge records that node child was connected to parent at all-gather
// step step.
func (t *Tree) SetEdge(parent, child topology.NodeID, step int) {
	t.Parent[child] = parent
	t.AGStep[child] = step
}

// Children returns, for each node, its children sorted by attach step then
// id — the order the schedule table lists them.
func (t *Tree) Children() [][]topology.NodeID {
	ch := make([][]topology.NodeID, len(t.Parent))
	for n, p := range t.Parent {
		if topology.NodeID(n) == t.Root || p < 0 {
			continue
		}
		ch[p] = append(ch[p], topology.NodeID(n))
	}
	for p := range ch {
		kids := ch[p]
		sort.Slice(kids, func(i, j int) bool {
			if t.AGStep[kids[i]] != t.AGStep[kids[j]] {
				return t.AGStep[kids[i]] < t.AGStep[kids[j]]
			}
			return kids[i] < kids[j]
		})
	}
	return ch
}

// Height returns the maximum AGStep, i.e. the tree's scheduled depth.
func (t *Tree) Height() int {
	h := 0
	for _, s := range t.AGStep {
		if s > h {
			h = s
		}
	}
	return h
}

// Validate checks that the tree spans all nodes, is acyclic, and that each
// child attaches at a strictly later step than its parent. The check is a
// single O(n) pass: every parent pointer must go to a member whose attach
// step is strictly smaller, so any chain of parents strictly decreases the
// step and must terminate at the root — a cycle would need some edge whose
// step does not decrease, and that edge fails the per-node check directly.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	for node := 0; node < n; node++ {
		id := topology.NodeID(node)
		if t.Members != nil && !t.Members[node] {
			if t.Parent[node] != -1 {
				return fmt.Errorf("tree %d: non-member %d has parent %d", t.Flow, id, t.Parent[node])
			}
			continue
		}
		if id == t.Root {
			if t.Parent[node] != -1 {
				return fmt.Errorf("tree %d: root %d has parent %d", t.Flow, id, t.Parent[node])
			}
			continue
		}
		if t.Parent[node] < 0 {
			return fmt.Errorf("tree %d: node %d not connected", t.Flow, id)
		}
		if t.AGStep[node] < 1 {
			return fmt.Errorf("tree %d: node %d has step %d", t.Flow, id, t.AGStep[node])
		}
		p := t.Parent[node]
		if int(p) >= n {
			return fmt.Errorf("tree %d: node %d has parent %d outside the tree", t.Flow, id, p)
		}
		if t.Members != nil && !t.Members[p] {
			return fmt.Errorf("tree %d: node %d has non-member parent %d", t.Flow, id, p)
		}
		if p != t.Root && t.AGStep[p] >= t.AGStep[node] {
			return fmt.Errorf("tree %d: node %d (step %d) attaches no later than parent %d (step %d)",
				t.Flow, id, t.AGStep[node], p, t.AGStep[p])
		}
	}
	return nil
}

// String renders the tree per level for diagnostics and the Fig. 3
// walkthrough.
func (t *Tree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tree %d root n%d:", t.Flow, t.Root)
	byStep := map[int][]string{}
	maxStep := 0
	for n, p := range t.Parent {
		if p < 0 {
			continue
		}
		s := t.AGStep[n]
		byStep[s] = append(byStep[s], fmt.Sprintf("n%d->n%d", p, n))
		if s > maxStep {
			maxStep = s
		}
	}
	for s := 1; s <= maxStep; s++ {
		edges := byStep[s]
		sort.Strings(edges)
		fmt.Fprintf(&b, " [t%d: %s]", s, strings.Join(edges, " "))
	}
	return b.String()
}

// TreesToSchedule lowers a set of spanning trees (one per flow) into a
// Transfer DAG. Reduce-scatter transfers occupy steps 1..tot and run each
// tree leaf-to-root; all-gather transfers occupy steps tot+1..2*tot and run
// root-to-leaf, with the step reversal of Algorithm 1 lines 16-18:
//
//	reduce step  = tot - AGStep + 1
//	gather step  = tot + AGStep
//
// Dependencies encode the schedule-table semantics of §IV-A: a node's
// Reduce to its parent waits for the Reduces from all its children, and a
// Gather to a child waits for the Gather received from the parent (or, at
// the root, for the completed reduction).
func TreesToSchedule(alg string, topo *topology.Topology, elems int, trees []*Tree) (*Schedule, error) {
	return TreesToScheduleParallel(alg, topo, elems, trees, 1, nil)
}

// TreesToScheduleObserved is TreesToSchedule bracketed as the lowering
// phase of a PlanObserver: phase boundaries plus the emitted transfer,
// dependency-edge and path-hop counts. A nil observer makes it exactly
// TreesToSchedule.
func TreesToScheduleObserved(alg string, topo *topology.Topology, elems int, trees []*Tree, o obs.PlanObserver) (*Schedule, error) {
	return TreesToScheduleParallel(alg, topo, elems, trees, 1, o)
}

// TreesToScheduleParallel lowers independent trees on up to workers
// goroutines. Every tree's transfers occupy a precomputed contiguous id
// region, so the emitted schedule — ids, dependency order, pinned paths,
// exported bytes — is identical at any worker count; workers only change
// who fills which region.
func TreesToScheduleParallel(alg string, topo *topology.Topology, elems int, trees []*Tree, workers int, o obs.PlanObserver) (*Schedule, error) {
	if o == nil {
		s, _, err := treesToSchedule(alg, topo, elems, trees, workers, nil)
		return s, err
	}
	o.PhaseStart(obs.PhaseLowering)
	s, c, err := treesToSchedule(alg, topo, elems, trees, workers, o)
	o.PhaseEnd(obs.PhaseLowering, c)
	return s, err
}

// treeLowerPlan is one tree's slot assignment in the shared output
// arrays, fixed by the sequential sizing pass so the parallel fill pass
// writes disjoint regions.
type treeLowerPlan struct {
	height   int // max AGStep
	edges    int // member non-root nodes; the tree emits 2*edges transfers
	rootKids int // children attached directly to the root
	xferOff  int // first transfer index in Schedule.Transfers
	rOff     int // first slot in the reduce-dependency arena
	gOff     int // first slot in the gather-dependency arena
	gLen     int // gather-dependency slots reserved (upper bound)
	pOff     int // first slot in the reversed-path arena
	pLen     int // reversed-path hops reserved
	deps     int64
	hops     int64
}

// lowerScratch is one worker's reusable per-tree working state; all
// slices are indexed by node id and grown to the largest tree seen.
type lowerScratch struct {
	cnt        []int32 // children per node
	rPos       []int   // node's region offset in the reduce-dep arena
	rFill      []int32 // filled entries in that region
	reduceFrom []TransferID
	gatherInto []TransferID
	stepOff    []int             // counting-sort bucket bounds by AGStep
	kids       []topology.NodeID // children in (step asc, id asc) order
}

func (sc *lowerScratch) grow(n, height int) {
	if len(sc.cnt) < n {
		sc.cnt = make([]int32, n)
		sc.rPos = make([]int, n)
		sc.rFill = make([]int32, n)
		sc.reduceFrom = make([]TransferID, n)
		sc.gatherInto = make([]TransferID, n)
		sc.kids = make([]topology.NodeID, n)
	}
	if len(sc.stepOff) < height+2 {
		sc.stepOff = make([]int, height+2)
	}
}

func treesToSchedule(alg string, topo *topology.Topology, elems int, trees []*Tree, workers int, o obs.PlanObserver) (*Schedule, obs.PlanCounters, error) {
	s := NewSchedule(alg, topo, elems, len(trees))
	var counters obs.PlanCounters
	k := len(trees)
	plans := make([]treeLowerPlan, k)
	errs := make([]error, k)

	// Sizing pass: validate each tree and count its transfers, dependency
	// slots and reversed-path hops. Per tree: the reduce side emits one
	// transfer per edge whose deps exactly fill the parent's child-count
	// region; the gather side needs at most 2 slots per edge, except edges
	// off the root, which copy the root's full reduce fan-in plus one.
	runTreeTasks(workers, k, func(_, i int) {
		tr := trees[i]
		if err := tr.Validate(); err != nil {
			errs[i] = err
			return
		}
		pl := &plans[i]
		for node := 0; node < len(tr.Parent); node++ {
			if tr.Members != nil && !tr.Members[node] {
				continue
			}
			if topology.NodeID(node) == tr.Root {
				continue
			}
			pl.edges++
			if tr.Parent[node] == tr.Root {
				pl.rootKids++
			}
			if st := tr.AGStep[node]; st > pl.height {
				pl.height = st
			}
			pl.pLen += len(tr.Path[node])
		}
		pl.gLen = 2*(pl.edges-pl.rootKids) + pl.rootKids*(pl.rootKids+1)
	})
	for _, err := range errs {
		if err != nil {
			return nil, counters, err
		}
	}

	// Sequential merge plan: prefix sums assign every tree its transfer-id
	// range and arena regions; tot (the global schedule depth) comes from
	// the same pass.
	tot, nXfer, nRDep, nGDep, nPath := 0, 0, 0, 0, 0
	for i := range plans {
		pl := &plans[i]
		pl.xferOff, pl.rOff, pl.gOff, pl.pOff = nXfer, nRDep, nGDep, nPath
		nXfer += 2 * pl.edges
		nRDep += pl.edges
		nGDep += pl.gLen
		nPath += pl.pLen
		if pl.height > tot {
			tot = pl.height
		}
	}
	s.Transfers = make([]Transfer, nXfer)
	reduceDeps := make([]TransferID, nRDep)
	gatherDeps := make([]TransferID, nGDep)
	pathArena := make([]topology.LinkID, nPath)

	// Fill pass: each worker lowers whole trees into their regions.
	var done atomic.Int64
	scratches := make([]lowerScratch, max(workers, 1))
	runTreeTasks(workers, k, func(w, i int) {
		pl := &plans[i]
		lowerTree(topo, trees[i], pl, tot, s.Transfers, reduceDeps, gatherDeps, pathArena, &scratches[w])
		if o != nil {
			o.PlanProgress(obs.PhaseLowering, done.Add(int64(2*pl.edges)), int64(nXfer))
		}
	})
	for i := range plans {
		counters.DepEdges += plans[i].deps
		counters.PathHops += plans[i].hops
	}
	counters.Transfers = int64(nXfer)
	s.Steps = 2 * tot
	return s, counters, nil
}

// lowerTree emits one tree's transfers into its reserved regions. Reduce
// transfers go deepest level first so dependencies reference
// already-emitted transfers; gather transfers go shallowest first; within
// a level, children ascend by id — the exact order the append-based
// lowering produced, so transfer ids and bytes are unchanged.
func lowerTree(topo *topology.Topology, tr *Tree, pl *treeLowerPlan, tot int,
	xfers []Transfer, reduceDeps, gatherDeps []TransferID, pathArena []topology.LinkID, sc *lowerScratch) {
	n := len(tr.Parent)
	sc.grow(n, pl.height)
	so := sc.stepOff[:pl.height+2]
	for i := range so {
		so[i] = 0
	}
	for node := 0; node < n; node++ {
		sc.cnt[node] = 0
		sc.gatherInto[node] = -1
	}

	// Counting sort of edges by attach step: after the placement loop,
	// bucket st spans kids[so[st-1]:so[st]] in ascending child id.
	for node := 0; node < n; node++ {
		if tr.Members != nil && !tr.Members[node] {
			continue
		}
		if topology.NodeID(node) == tr.Root {
			continue
		}
		so[tr.AGStep[node]+1]++
		sc.cnt[tr.Parent[node]]++
	}
	for st := 1; st < len(so); st++ {
		so[st] += so[st-1]
	}
	for node := 0; node < n; node++ {
		if tr.Members != nil && !tr.Members[node] {
			continue
		}
		if topology.NodeID(node) == tr.Root {
			continue
		}
		st := tr.AGStep[node]
		sc.kids[so[st]] = topology.NodeID(node)
		so[st]++
	}

	// Each node's reduce fan-in region in the shared arena.
	off := pl.rOff
	for node := 0; node < n; node++ {
		sc.rPos[node] = off
		off += int(sc.cnt[node])
		sc.rFill[node] = 0
	}

	// Reduce phase, deepest level first. A child attaches strictly later
	// than its (non-root) parent, so by the time an edge is emitted the
	// child's fan-in region is complete and can be aliased as Deps.
	seq := pl.xferOff
	pcur := pl.pOff
	var depCount, hopCount int64
	for st := pl.height; st >= 1; st-- {
		for _, c := range sc.kids[so[st-1]:so[st]] {
			p := tr.Parent[c]
			var deps []TransferID
			if f := int(sc.rFill[c]); f > 0 {
				deps = reduceDeps[sc.rPos[c] : sc.rPos[c]+f : sc.rPos[c]+f]
			}
			var path []topology.LinkID
			if tp := tr.Path[c]; tp != nil {
				path = pathArena[pcur : pcur+len(tp) : pcur+len(tp)]
				for i, id := range tp {
					path[len(tp)-1-i] = topo.ReverseLink(topo.Link(id))
				}
				pcur += len(tp)
			}
			id := TransferID(seq)
			xfers[seq] = Transfer{
				ID: id, Src: c, Dst: p, Op: Reduce, Flow: tr.Flow,
				Step: tot - st + 1,
				Deps: deps,
				Path: path,
			}
			seq++
			sc.reduceFrom[c] = id
			reduceDeps[sc.rPos[p]+int(sc.rFill[p])] = id
			sc.rFill[p]++
			depCount += int64(len(deps))
			hopCount += int64(len(path))
		}
	}

	// Gather phase, shallowest level first. Deps: the gather received from
	// the parent (at the root: the completed reduction fan-in), then the
	// child's own reduce send — a node cannot forward downstream before it
	// has stopped needing its buffer for the reduce it sent upstream; the
	// gather overwrites the same segment.
	gcur := pl.gOff
	for st := 1; st <= pl.height; st++ {
		for _, c := range sc.kids[so[st-1]:so[st]] {
			p := tr.Parent[c]
			start := gcur
			if p == tr.Root {
				root := int(tr.Root)
				gcur += copy(gatherDeps[gcur:], reduceDeps[sc.rPos[root]:sc.rPos[root]+int(sc.rFill[root])])
			} else if g := sc.gatherInto[p]; g >= 0 {
				gatherDeps[gcur] = g
				gcur++
			}
			gatherDeps[gcur] = sc.reduceFrom[c]
			gcur++
			deps := gatherDeps[start:gcur:gcur]
			id := TransferID(seq)
			xfers[seq] = Transfer{
				ID: id, Src: p, Dst: c, Op: Gather, Flow: tr.Flow,
				Step: tot + st,
				Deps: deps,
				Path: tr.Path[c],
			}
			seq++
			sc.gatherInto[c] = id
			depCount += int64(len(deps))
			hopCount += int64(len(tr.Path[c]))
		}
	}
	pl.deps, pl.hops = depCount, hopCount
}

// runTreeTasks runs fn(worker, i) for i in [0, k), fanning out over up to
// workers goroutines pulling indices from a shared cursor. fn instances
// must write disjoint state; worker indexes per-goroutine scratch.
func runTreeTasks(workers, k int, fn func(worker, i int)) {
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for i := 0; i < k; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
