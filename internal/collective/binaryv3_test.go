package collective_test

// Tests of the version-3 sectioned binary IR: parallel-decode
// invariance (the materialized schedule is byte-identical at every
// worker count), tamper rejection on the parallel path, cross-version
// round trips with v2 entries, and the non-seekable fallback.

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"multitree/internal/collective"
)

// TestBinaryV3ParallelDecodeInvariance: importing one v3 file at any
// worker count materializes the same schedule — pinned by re-exporting
// each load and comparing bytes, content hash included.
func TestBinaryV3ParallelDecodeInvariance(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, info, err := collective.ImportBinaryIntoOpts(bytes.NewReader(good), topo,
			collective.BinaryImportOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if info.Version != collective.BinaryIRVersion || info.Validation != "summary" {
			t.Fatalf("workers=%d: info = %+v, want v%d summary-validated",
				workers, info, collective.BinaryIRVersion)
		}
		var re bytes.Buffer
		if err := collective.ExportBinary(&re, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(good, re.Bytes()) {
			t.Fatalf("workers=%d: decoded schedule re-exports to different bytes", workers)
		}
		if err := got.ValidateStrict(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestBinaryV3TamperRejectedParallel sweeps a single-bit flip across
// the whole v3 body — meta, every section, footer, trailer — and
// requires the parallel decoder to reject every variant. Flips that
// keep the sections decodable must be caught by a digest ("content
// hash mismatch"), and the sweep must engage that backstop at least
// once. This is the sequential sweep of TestBinaryV2NoSingleBitFlipAccepted
// run against the fan-out path, where a missed check would race instead
// of fail.
func TestBinaryV3TamperRejectedParallel(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Body starts after magic(4) + version varint(1) + root hash(32).
	const bodyOff = 4 + 1 + 32
	hashCaught := 0
	for off := bodyOff; off < len(good); off += 3 {
		bad := bytes.Clone(good)
		bad[off] ^= 0x01
		_, _, err := collective.ImportBinaryIntoOpts(bytes.NewReader(bad), topo,
			collective.BinaryImportOptions{Workers: 8})
		if err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
		if strings.Contains(err.Error(), "content hash mismatch") {
			hashCaught++
		}
	}
	if hashCaught == 0 {
		t.Fatal("no flip was caught by a content digest; the backstop never engaged")
	}
}

// TestBinaryV3RootHashCoversTrailer: flipping root-hash bytes
// themselves must also reject — the stored root no longer matches the
// recomputed one.
func TestBinaryV3RootHashCoversTrailer(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{5, 20, 36} { // first, middle, last hash byte
		bad := bytes.Clone(buf.Bytes())
		bad[off] ^= 0x80
		if _, _, err := collective.ImportBinaryIntoOpts(bytes.NewReader(bad), topo,
			collective.BinaryImportOptions{Workers: 4}); err == nil {
			t.Fatalf("flip in stored root hash at offset %d accepted", off)
		}
	}
}

// TestBinaryV2ToV3RoundTrip: a legacy v2 entry still loads (stream
// path, summary-validated), and re-encoding that load as v3 yields a
// schedule that round-trips byte-identically — the upgrade path a cache
// rebuild takes.
func TestBinaryV2ToV3RoundTrip(t *testing.T) {
	topo, s := buildV2(t)
	var v2 bytes.Buffer
	if err := collective.ExportBinaryV2(&v2, s); err != nil {
		t.Fatal(err)
	}
	fromV2, info, err := collective.ImportBinaryIntoOpts(bytes.NewReader(v2.Bytes()), topo,
		collective.BinaryImportOptions{Workers: 8}) // Workers must be ignored on v2
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Validation != "summary" {
		t.Fatalf("info = %+v, want version 2, summary-validated", info)
	}
	var v3 bytes.Buffer
	if err := collective.ExportBinary(&v3, fromV2); err != nil {
		t.Fatal(err)
	}
	fromV3, info3, err := collective.ImportBinaryIntoOpts(bytes.NewReader(v3.Bytes()), topo,
		collective.BinaryImportOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if info3.Version != collective.BinaryIRVersion {
		t.Fatalf("round-tripped version = %d, want %d", info3.Version, collective.BinaryIRVersion)
	}
	var want, have bytes.Buffer
	if err := collective.ExportBinary(&want, s); err != nil {
		t.Fatal(err)
	}
	if err := collective.ExportBinary(&have, fromV3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatal("v2 -> v3 round trip changed the schedule")
	}
}

// TestBinaryV3StreamFallback: a v3 file arriving on a plain io.Reader
// (no ReaderAt/Seeker — a network stream, a pipe) still loads via the
// buffered fallback, identically to the random-access path.
func TestBinaryV3StreamFallback(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, info, err := collective.ImportBinaryIntoOpts(
		struct{ io.Reader }{bytes.NewReader(buf.Bytes())}, topo,
		collective.BinaryImportOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != collective.BinaryIRVersion {
		t.Fatalf("version = %d, want %d", info.Version, collective.BinaryIRVersion)
	}
	var re bytes.Buffer
	if err := collective.ExportBinary(&re, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), re.Bytes()) {
		t.Fatal("stream-fallback load re-exports to different bytes")
	}
}

// TestBinaryV3VerifyFull: the escape hatch still forces the complete
// validation pass on the sectioned format.
func TestBinaryV3VerifyFull(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	_, info, err := collective.ImportBinaryIntoOpts(bytes.NewReader(buf.Bytes()), topo,
		collective.BinaryImportOptions{VerifyFull: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if info.Validation != "full" {
		t.Fatalf("validation = %q, want full", info.Validation)
	}
}

// TestBinaryV3Truncated: cutting the file at any of a few points —
// inside the trailer, the footer, a section — must reject, never hang
// or mis-decode.
func TestBinaryV3Truncated(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, n := range []int{len(good) - 1, len(good) - 8, len(good) - 17, len(good) / 2, 40} {
		if _, _, err := collective.ImportBinaryIntoOpts(bytes.NewReader(good[:n]), topo,
			collective.BinaryImportOptions{Workers: 4}); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(good))
		}
	}
}

// TestScheduleMemBytes: the memory-cache cost function scales with the
// schedule's actual contents and never returns zero for a real plan.
func TestScheduleMemBytes(t *testing.T) {
	_, s := buildV2(t)
	got := s.MemBytes()
	if got <= 0 {
		t.Fatalf("MemBytes = %d, want > 0", got)
	}
	// At minimum the transfer array itself must be counted.
	if floor := int64(len(s.Transfers)) * 16; got < floor {
		t.Fatalf("MemBytes = %d, below the transfer array floor %d", got, floor)
	}
}
