package collective_test

// External test package: exercises the schedule IR round trip with real
// algorithm builders (ring, MultiTree) without an import cycle.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/network"
	"multitree/internal/ring"
	"multitree/internal/topology"
)

func fluidCycles(t *testing.T, s *collective.Schedule) uint64 {
	t.Helper()
	res, err := network.SimulateFluid(s, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return uint64(res.Cycles)
}

// TestExportImportRoundTrip: export → import reproduces the simulated
// finish time and the all-reduce semantics, re-export is byte-identical,
// and ImportInto accepts the original topology object.
func TestExportImportRoundTrip(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	const elems = 1 << 12
	for _, build := range []func() (*collective.Schedule, error){
		func() (*collective.Schedule, error) { return ring.Build(topo, elems), nil },
		func() (*collective.Schedule, error) { return core.Build(topo, elems, core.DefaultOptions(topo)) },
	} {
		orig, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := collective.Export(&buf, orig); err != nil {
			t.Fatal(err)
		}
		file := buf.Bytes()

		imp, err := collective.Import(bytes.NewReader(file))
		if err != nil {
			t.Fatalf("%s: import: %v", orig.Algorithm, err)
		}
		if imp.Algorithm != orig.Algorithm || imp.Elems != orig.Elems || imp.Steps != orig.Steps {
			t.Fatalf("%s: header mismatch after import", orig.Algorithm)
		}
		if len(imp.Transfers) != len(orig.Transfers) {
			t.Fatalf("%s: %d transfers, want %d", orig.Algorithm, len(imp.Transfers), len(orig.Transfers))
		}
		if got := collective.TopologyFingerprint(imp.Topo); got != collective.TopologyFingerprint(topo) {
			t.Fatalf("%s: reconstructed topology fingerprint differs", orig.Algorithm)
		}
		if want, got := fluidCycles(t, orig), fluidCycles(t, imp); got != want {
			t.Fatalf("%s: imported schedule finishes in %d cycles, original in %d", orig.Algorithm, got, want)
		}
		if err := collective.VerifyAllReduce(imp, collective.RampInputs(topo.Nodes(), elems)); err != nil {
			t.Fatalf("%s: imported schedule fails correctness: %v", orig.Algorithm, err)
		}

		var again bytes.Buffer
		if err := collective.Export(&again, imp); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(file, again.Bytes()) {
			t.Fatalf("%s: re-export is not byte-identical", orig.Algorithm)
		}

		into, err := collective.ImportInto(bytes.NewReader(file), topo)
		if err != nil {
			t.Fatalf("%s: ImportInto: %v", orig.Algorithm, err)
		}
		if into.Topo != topo {
			t.Fatalf("%s: ImportInto did not keep the provided topology", orig.Algorithm)
		}
	}
}

// TestImportIntoRejectsWrongTopology: a schedule exported on one fabric
// must not load onto a structurally different one.
func TestImportIntoRejectsWrongTopology(t *testing.T) {
	torus := topology.Torus(4, 4, topology.DefaultLinkConfig())
	mesh := topology.Mesh(4, 4, topology.DefaultLinkConfig())
	var buf bytes.Buffer
	if err := collective.Export(&buf, ring.Build(torus, 256)); err != nil {
		t.Fatal(err)
	}
	if _, err := collective.ImportInto(bytes.NewReader(buf.Bytes()), mesh); err == nil {
		t.Fatal("ImportInto accepted a mesh for a torus schedule")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// mutateIR decodes an exported IR file, applies fn, and re-encodes it —
// the malformed-file generator for rejection tests.
func mutateIR(t *testing.T, file []byte, fn func(m map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(file, &m); err != nil {
		t.Fatal(err)
	}
	fn(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestImportRejectsMalformed covers the strict-validation matrix: version
// gate, dependency cycles, out-of-range flow indices, links that do not
// exist in the topology, fingerprint drift, and flow-coverage holes.
func TestImportRejectsMalformed(t *testing.T) {
	topo := topology.Torus(2, 2, topology.DefaultLinkConfig())
	var buf bytes.Buffer
	if err := collective.Export(&buf, ring.Build(topo, 64)); err != nil {
		t.Fatal(err)
	}
	file := buf.Bytes()

	transfer := func(m map[string]any, i int) map[string]any {
		return m["transfers"].([]any)[i].(map[string]any)
	}
	cases := []struct {
		name    string
		mutate  func(m map[string]any)
		wantErr string
	}{
		{
			name:    "unsupported version",
			mutate:  func(m map[string]any) { m["version"] = 99 },
			wantErr: "version",
		},
		{
			name: "dependency cycle",
			mutate: func(m map[string]any) {
				transfer(m, 0)["deps"] = []any{1}
				transfer(m, 1)["deps"] = []any{0}
			},
			wantErr: "cycle",
		},
		{
			name:    "flow index out of range",
			mutate:  func(m map[string]any) { transfer(m, 0)["flow"] = 99 },
			wantErr: "flow 99 out of range",
		},
		{
			name:    "link not in topology",
			mutate:  func(m map[string]any) { transfer(m, 0)["path"] = []any{9999} },
			wantErr: "not in topology",
		},
		{
			name: "disconnected pinned path",
			mutate: func(m map[string]any) {
				p := transfer(m, 0)["path"].([]any)
				transfer(m, 1)["path"] = p // endpoints differ -> chain breaks
			},
			wantErr: "path",
		},
		{
			name: "fingerprint drift",
			mutate: func(m map[string]any) {
				topoM := m["topology"].(map[string]any)
				topoM["links"].([]any)[0].(map[string]any)["bw"] = 1.5
			},
			wantErr: "fingerprint",
		},
		{
			name: "flow coverage hole",
			mutate: func(m map[string]any) {
				flows := m["flows"].([]any)
				last := flows[len(flows)-1].(map[string]any)
				last["len"] = last["len"].(float64) - 1
			},
			wantErr: "uncovered",
		},
		{
			name: "self transfer",
			mutate: func(m map[string]any) {
				tr := transfer(m, 0)
				tr["dst"] = tr["src"]
			},
			wantErr: "self-transfer",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := mutateIR(t, file, tc.mutate)
			_, err := collective.Import(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("import accepted a file with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// The unmutated file must still load, proving the mutations (not the
	// baseline) trigger the rejections.
	if _, err := collective.Import(bytes.NewReader(file)); err != nil {
		t.Fatalf("baseline file rejected: %v", err)
	}
}
