package collective

// A compact binary rendering of the schedule IR, for the plan cache's
// hot load path. The JSON IR of encoding.go stays the interchange
// format — self-contained, diffable, hand-editable; this encoding
// trades all of that for decode speed: a 1024-node MultiTree schedule
// (~2M transfers) loads in a few hundred milliseconds where the JSON
// form takes ten seconds, which is the difference between a plan cache
// that pays for itself and one that loses to re-planning.
//
// The format is not self-contained: it records the topology's
// fingerprint, not its link list, so it can only be loaded onto a live
// topology that hashes to the same value (ImportBinaryInto). That is
// exactly the plan cache's situation.
//
// Version 2 moves validation to store time. The exporter runs the full
// ValidateStrict pass once, then embeds (a) a sha256 content hash over
// everything after the hash field and (b) a validation summary —
// transfer/dependency/path-hop/link counts, the coverage extent, and a
// witness hash of the deterministic topological order. A v2 load
// verifies the summary's cross-checks and the content hash in O(bytes)
// instead of re-running Kahn and per-path continuity over millions of
// transfers; BinaryImportOptions.VerifyFull restores the full pass. The
// trust boundary is unchanged from v1: the cache directory was always
// trusted to hold what the exporter wrote (an adversary who can write
// arbitrary cache files could always substitute a different valid
// schedule); the hash turns silent corruption into a rebuild.
//
// Version 3 (sections.go) makes the warm load parallel: the stream is
// split into independently decodable sections with per-section digests
// under a root tree hash, so ImportBinary fans decoding out across
// BinaryImportOptions.Workers goroutines reading through an io.ReaderAt
// — same trust model, same O(bytes) validation, divided by the worker
// count.
//
// Version 1 and 2 files still decode, via the sequential path — v1
// through the full ValidateStrict pass, v2 on its summary as before.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"multitree/internal/obs"
	"multitree/internal/topology"
)

// BinaryIRVersion is the current binary schedule encoding version:
// version 3 is the sectioned, parallel-decodable layout of sections.go.
// A format change makes old cache keys unreachable (a cache miss)
// rather than misread; files in previous versions remain decodable
// through their original sequential paths.
const BinaryIRVersion = 3

// binaryIRVersionV1 is the legacy summary-free encoding and
// binaryIRVersionV2 the single-stream content-hash + summary encoding;
// both are still accepted by the importer.
const (
	binaryIRVersionV1 = 1
	binaryIRVersionV2 = 2
)

// binaryMagic brands binary schedule files. Distinct from both JSON
// ('{') and anything a truncated write leaves behind.
var binaryMagic = [4]byte{'M', 'T', 'I', 'R'}

const (
	opReduceBin = 0
	opGatherBin = 1
)

// hashSize is sha256's digest length, the size of both the content hash
// and the topo-order witness hash.
const hashSize = sha256.Size

// ValidationSummary is the store-time validation record embedded in a v2
// binary schedule: the exact output sizes the decoder preallocates, and
// the evidence that the full ValidateStrict pass ran when the file was
// written.
type ValidationSummary struct {
	// Transfers/DepEdges/PathHops are the exact entity counts of the
	// transfer section; the decoder sizes its arrays from them and
	// rejects a stream that deviates.
	Transfers int64
	DepEdges  int64
	PathHops  int64

	// LinksUsed is the number of distinct directed links appearing in
	// pinned paths; the decoder recounts it as it scans.
	LinksUsed int64

	// CoveredElems is the gradient extent the flow-coverage check proved
	// covered at store time (Elems, or 0 for an empty schedule where the
	// check is vacuous).
	CoveredElems int64

	// Witness is the sha256 over the schedule's deterministic topological
	// order (little-endian uint32 ids), recorded when store-time
	// validation computed it. A VerifyFull load recomputes and compares.
	Witness [hashSize]byte
}

// BinaryImportOptions controls how ImportBinaryIntoOpts validates.
type BinaryImportOptions struct {
	// VerifyFull re-runs the complete ValidateStrict pass (and checks the
	// witness hash) even when a trusted summary is present — the
	// -verify-plan escape hatch.
	VerifyFull bool

	// SizeHint, when > 0, is the byte length of the stream. It bounds the
	// summary-driven preallocations, so a corrupt or hostile length field
	// cannot drive an allocation larger than a small multiple of the
	// actual file.
	SizeHint int64

	// Observer, when non-nil, brackets the materialization and validation
	// work as the "decode" and "validate" planner phases.
	Observer obs.PlanObserver

	// Workers bounds the goroutines a v3 sectioned load fans decoding
	// across; <= 1 decodes sequentially. Earlier format versions are
	// single-stream and ignore it. The decoded schedule is byte-identical
	// at any worker count.
	Workers int
}

// BinaryLoadInfo reports how a binary schedule load was validated.
type BinaryLoadInfo struct {
	Version int

	// Validation is "summary" when the load was accepted on the embedded
	// validation summary + content hash, "full" when the complete
	// ValidateStrict pass ran (v1 file, or VerifyFull).
	Validation string

	Transfers int
	Summary   *ValidationSummary // nil for v1 files
}

// binWriter accumulates uvarints into one growing buffer; encoding a
// schedule is a single allocation-amortized append stream. With out set
// it instead streams: appends spill through the buffer — now a bounded
// window — into the writer whenever it fills, so encoding never
// materializes the body. Routing out through an io.MultiWriter over the
// file and a hasher is the store's hash-while-write path.
type binWriter struct {
	out io.Writer
	buf []byte
	tmp [binary.MaxVarintLen64]byte
	err error
}

// flush drains the window into out; a no-op in buffered mode.
func (w *binWriter) flush() {
	if w.out == nil {
		return
	}
	if w.err == nil && len(w.buf) > 0 {
		_, w.err = w.out.Write(w.buf)
	}
	w.buf = w.buf[:0]
}

// room makes space for an n-byte append in streaming mode.
func (w *binWriter) room(n int) {
	if w.out != nil && len(w.buf)+n > cap(w.buf) {
		w.flush()
	}
}

func (w *binWriter) uint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.room(n)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *binWriter) str(s string) {
	w.uint(uint64(len(s)))
	w.room(len(s))
	w.buf = append(w.buf, s...)
}

func (w *binWriter) bytes(p []byte) {
	w.room(len(p))
	w.buf = append(w.buf, p...)
}

// timedWriter accumulates the wall time spent inside the wrapped
// writer. Wrapping the v2 import's content hasher with it splits the
// sequential load's cost into decode vs verification, matching the
// per-section measurement of the v3 path.
type timedWriter struct {
	w  io.Writer
	ns int64
}

func (t *timedWriter) Write(p []byte) (int, error) {
	t0 := time.Now()
	n, err := t.w.Write(p)
	t.ns += time.Since(t0).Nanoseconds()
	return n, err
}

// witnessHash folds a topological order into its sha256 witness.
func witnessHash(order []TransferID) [hashSize]byte {
	h := sha256.New()
	var buf [4096]byte
	i := 0
	for _, id := range order {
		binary.LittleEndian.PutUint32(buf[i:], uint32(id))
		if i += 4; i == len(buf) {
			h.Write(buf[:])
			i = 0
		}
	}
	h.Write(buf[:i])
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// linkBitmap counts distinct directed links across pinned paths.
type linkBitmap struct {
	words []uint64
	count int64
}

func newLinkBitmap(links int) *linkBitmap {
	return &linkBitmap{words: make([]uint64, (links+63)/64)}
}

func (b *linkBitmap) add(id topology.LinkID) {
	w, bit := id>>6, uint64(1)<<(id&63)
	if b.words[w]&bit == 0 {
		b.words[w] |= bit
		b.count++
	}
}

// summarize computes the validation summary of a schedule whose strict
// validation just produced order.
func summarize(s *Schedule, order []TransferID) ValidationSummary {
	sum := ValidationSummary{Transfers: int64(len(s.Transfers)), Witness: witnessHash(order)}
	bm := newLinkBitmap(len(s.Topo.Links()))
	for i := range s.Transfers {
		t := &s.Transfers[i]
		sum.DepEdges += int64(len(t.Deps))
		path := s.PathOf(t)
		sum.PathHops += int64(len(path))
		for _, id := range path {
			bm.add(id)
		}
	}
	sum.LinksUsed = bm.count
	if len(s.Transfers) > 0 && s.Elems > 0 {
		sum.CoveredElems = int64(s.Elems)
	}
	return sum
}

// encodeBinaryBody emits everything after the header's content-hash
// field — exactly the bytes the hash covers. Both export paths, the
// buffered one and the streaming one, go through here, which is what
// keeps their output byte-identical.
func encodeBinaryBody(bw *binWriter, s *Schedule, sum ValidationSummary) {
	bw.str(s.Algorithm)
	bw.str(TopologyFingerprint(s.Topo))
	bw.uint(uint64(s.Elems))
	bw.uint(uint64(s.Steps))
	bw.uint(uint64(sum.Transfers))
	bw.uint(uint64(sum.DepEdges))
	bw.uint(uint64(sum.PathHops))
	bw.uint(uint64(sum.LinksUsed))
	bw.uint(uint64(sum.CoveredElems))
	bw.bytes(sum.Witness[:])
	bw.uint(uint64(len(s.Flows)))
	for _, r := range s.Flows {
		bw.uint(uint64(r.Off))
		bw.uint(uint64(r.Len))
	}
	for i := range s.Transfers {
		t := &s.Transfers[i]
		bw.uint(uint64(t.Src))
		bw.uint(uint64(t.Dst))
		op := uint64(opReduceBin)
		if t.Op == Gather {
			op = opGatherBin
		}
		bw.uint(op)
		bw.uint(uint64(t.Flow))
		bw.uint(uint64(t.Step))
		bw.uint(uint64(len(t.Deps)))
		for _, d := range t.Deps {
			bw.uint(uint64(d))
		}
		path := s.PathOf(t)
		bw.uint(uint64(len(path)))
		for _, id := range path {
			bw.uint(uint64(id))
		}
	}
}

// ExportBinary writes the schedule in the current binary IR (the v3
// sectioned layout of sections.go). Like Export, every transfer's link
// path is pinned, so the loaded schedule reproduces the exact link-level
// behavior; unlike Export, the topology is recorded only by fingerprint.
// The schedule is strictly validated here, at store time, and the file
// carries the ValidationSummary + content digests that let a later load
// trust the result without repeating the pass.
//
// When w can seek (a file), the stream is written in one pass with the
// root hash patched at the end; non-seekable writers assemble the stream
// in memory first. The emitted bytes are identical either way.
func ExportBinary(w io.Writer, s *Schedule) error {
	order, err := s.validatedOrder(true)
	if err != nil {
		return fmt.Errorf("collective: refusing to export invalid schedule: %w", err)
	}
	return exportBinaryV3(w, s, summarize(s, order))
}

// ExportBinaryV2 writes the schedule in the single-stream version-2
// encoding: one content hash over one varint stream. Kept so tests and
// tools can produce files that exercise the sequential compatibility
// path; new code writes the sectioned current version via ExportBinary.
func ExportBinaryV2(w io.Writer, s *Schedule) error {
	order, err := s.validatedOrder(true)
	if err != nil {
		return fmt.Errorf("collective: refusing to export invalid schedule: %w", err)
	}
	sum := summarize(s, order)
	if ws, ok := w.(io.WriteSeeker); ok {
		return exportBinaryStreamV2(ws, s, sum)
	}

	bw := &binWriter{buf: make([]byte, 0, 64+16*len(s.Transfers))}
	encodeBinaryBody(bw, s, sum)

	var head binWriter
	head.buf = append(head.buf, binaryMagic[:]...)
	head.uint(binaryIRVersionV2)
	contentHash := sha256.Sum256(bw.buf)
	head.buf = append(head.buf, contentHash[:]...)
	if _, err := w.Write(head.buf); err != nil {
		return err
	}
	_, err = w.Write(bw.buf)
	return err
}

// exportBinaryStreamV2 is ExportBinaryV2's single-pass path for seekable
// sinks: header with a zero hash placeholder, body streamed through the
// window into MultiWriter(file, hasher), then a seek back to patch the
// real digest over the placeholder.
func exportBinaryStreamV2(w io.WriteSeeker, s *Schedule, sum ValidationSummary) error {
	start, err := w.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	var head binWriter
	head.buf = append(head.buf, binaryMagic[:]...)
	head.uint(binaryIRVersionV2)
	hashOff := int64(len(head.buf))
	var placeholder [hashSize]byte
	head.buf = append(head.buf, placeholder[:]...)
	if _, err := w.Write(head.buf); err != nil {
		return err
	}

	h := sha256.New()
	bw := &binWriter{out: io.MultiWriter(w, h), buf: make([]byte, 0, 1<<18)}
	encodeBinaryBody(bw, s, sum)
	bw.flush()
	if bw.err != nil {
		return bw.err
	}

	var digest [hashSize]byte
	h.Sum(digest[:0])
	if _, err := w.Seek(start+hashOff, io.SeekStart); err != nil {
		return err
	}
	if _, err := w.Write(digest[:]); err != nil {
		return err
	}
	_, err = w.Seek(0, io.SeekEnd)
	return err
}

// ExportBinaryV1 writes the schedule in the legacy version-1 encoding —
// no content hash, no validation summary. Kept so tests (and any tool
// that needs to exercise the compatibility path) can produce files that
// take the importer's full-validation branch; new code writes the
// current version via ExportBinary.
func ExportBinaryV1(w io.Writer, s *Schedule) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("collective: refusing to export invalid schedule: %w", err)
	}
	bw := &binWriter{buf: make([]byte, 0, 64+16*len(s.Transfers))}
	bw.buf = append(bw.buf, binaryMagic[:]...)
	bw.uint(binaryIRVersionV1)
	bw.str(s.Algorithm)
	bw.str(TopologyFingerprint(s.Topo))
	bw.uint(uint64(s.Elems))
	bw.uint(uint64(s.Steps))
	bw.uint(uint64(len(s.Flows)))
	for _, r := range s.Flows {
		bw.uint(uint64(r.Off))
		bw.uint(uint64(r.Len))
	}
	bw.uint(uint64(len(s.Transfers)))
	for i := range s.Transfers {
		t := &s.Transfers[i]
		bw.uint(uint64(t.Src))
		bw.uint(uint64(t.Dst))
		op := uint64(opReduceBin)
		if t.Op == Gather {
			op = opGatherBin
		}
		bw.uint(op)
		bw.uint(uint64(t.Flow))
		bw.uint(uint64(t.Step))
		bw.uint(uint64(len(t.Deps)))
		for _, d := range t.Deps {
			bw.uint(uint64(d))
		}
		path := s.PathOf(t)
		bw.uint(uint64(len(path)))
		for _, id := range path {
			bw.uint(uint64(id))
		}
	}
	_, err := w.Write(bw.buf)
	return err
}

// binStream decodes uvarints from its own 256 KiB read-ahead window
// with sticky-error semantics, so decode never materializes the whole
// file. Varints decode straight off the buffer (binary.Uvarint on the
// slice) instead of byte-at-a-time through an io.ByteReader — at tens
// of millions of transfers the per-byte call overhead is the load's
// hottest path.
type binStream struct {
	r   io.Reader
	buf []byte
	pos int
	end int
	eof bool
	err error
}

func newBinStream(r io.Reader) *binStream {
	return &binStream{r: r, buf: make([]byte, 1<<18)}
}

func (r *binStream) uint() uint64 {
	if r.err != nil {
		return 0
	}
	if r.end-r.pos >= binary.MaxVarintLen64 {
		v, n := binary.Uvarint(r.buf[r.pos:r.end])
		if n <= 0 {
			r.err = fmt.Errorf("varint overflow")
			return 0
		}
		r.pos += n
		return v
	}
	return r.uintSlow()
}

// uintSlow handles the window tail: fewer than MaxVarintLen64 buffered
// bytes left, so the varint may straddle a refill or end the stream.
func (r *binStream) uintSlow() uint64 {
	for {
		v, n := binary.Uvarint(r.buf[r.pos:r.end])
		if n > 0 {
			r.pos += n
			return v
		}
		if n < 0 {
			r.err = fmt.Errorf("varint overflow")
			return 0
		}
		if r.eof {
			r.err = fmt.Errorf("truncated varint: %w", io.ErrUnexpectedEOF)
			return 0
		}
		r.fill()
		if r.err != nil {
			return 0
		}
	}
}

// fill compacts the unread tail to the front of the window and reads
// more. It returns having made progress, hit EOF, or failed.
func (r *binStream) fill() {
	if r.pos > 0 {
		copy(r.buf, r.buf[r.pos:r.end])
		r.end -= r.pos
		r.pos = 0
	}
	for tries := 0; tries < 100 && r.end < len(r.buf); tries++ {
		n, err := r.r.Read(r.buf[r.end:])
		r.end += n
		if err == io.EOF {
			r.eof = true
			return
		}
		if err != nil {
			r.err = fmt.Errorf("truncated stream: %w", err)
			return
		}
		if n > 0 {
			return
		}
	}
	r.err = io.ErrNoProgress
}

// atEOF reports whether the stream has no bytes left, pulling from the
// reader if the window is empty. On a read error it returns false and
// leaves the error in r.err.
func (r *binStream) atEOF() bool {
	for r.pos == r.end {
		if r.err != nil {
			return false
		}
		if r.eof {
			return true
		}
		r.fill()
	}
	return false
}

// intCap reads a count and rejects values beyond limit, so a corrupt
// length cannot drive a huge allocation.
func (r *binStream) intCap(what string, limit int64) int {
	v := r.uint()
	if r.err != nil {
		return 0
	}
	if v > uint64(limit) {
		r.err = fmt.Errorf("%s count %d exceeds limit %d", what, v, limit)
		return 0
	}
	return int(v)
}

func (r *binStream) bytes(b []byte) {
	for r.err == nil && len(b) > 0 {
		if r.pos < r.end {
			n := copy(b, r.buf[r.pos:r.end])
			r.pos += n
			b = b[n:]
			continue
		}
		if r.eof {
			r.err = fmt.Errorf("truncated stream: %w", io.ErrUnexpectedEOF)
			return
		}
		r.fill()
	}
}

func (r *binStream) str(limit int64) string {
	n := r.intCap("string", limit)
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// maxStringLen bounds algorithm/fingerprint strings; both are short.
const maxStringLen = 1 << 16

// ImportBinaryInto reads a binary schedule IR onto an existing topology
// with default options: a v2/v3 file loads on its trusted validation
// summary + content hash, a v1 file gets the full ValidateStrict pass.
func ImportBinaryInto(r io.Reader, topo *topology.Topology) (*Schedule, error) {
	s, _, err := ImportBinaryIntoOpts(r, topo, BinaryImportOptions{})
	return s, err
}

// ImportBinaryIntoOpts reads a binary schedule IR onto an existing
// topology, reporting how the load was validated. The stream is decoded
// incrementally through a fixed read-ahead window into arrays preallocated from the
// validation summary; nothing buffers the whole file.
func ImportBinaryIntoOpts(r io.Reader, topo *topology.Topology, opts BinaryImportOptions) (*Schedule, BinaryLoadInfo, error) {
	info := BinaryLoadInfo{}
	if opts.SizeHint == 0 {
		if sz, ok := r.(interface{ Size() int64 }); ok {
			opts.SizeHint = sz.Size()
		}
	}
	var magic [len(binaryMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != binaryMagic {
		return nil, info, fmt.Errorf("collective: not a binary schedule file")
	}
	// The version varint is read byte-by-byte from the raw reader so the
	// v2 path can start content hashing at the exact post-hash offset.
	version, err := readRawUvarint(r)
	if err != nil {
		return nil, info, fmt.Errorf("collective: bad binary schedule: %w", err)
	}
	info.Version = int(version)
	switch version {
	case binaryIRVersionV1:
		s, err := importBinaryV1(r, topo, opts)
		if err != nil {
			return nil, info, err
		}
		info.Validation = "full"
		info.Transfers = len(s.Transfers)
		return s, info, nil
	case binaryIRVersionV2:
		return importBinaryV2(r, topo, opts, info)
	case BinaryIRVersion:
		return importBinaryV3(r, topo, opts, info)
	default:
		return nil, info, fmt.Errorf("collective: unsupported binary schedule version %d (want <= %d)", version, BinaryIRVersion)
	}
}

// readRawUvarint reads a uvarint one byte at a time from an unbuffered
// reader.
func readRawUvarint(r io.Reader) (uint64, error) {
	var v uint64
	var b [1]byte
	for shift := 0; shift < 64; shift += 7 {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, fmt.Errorf("truncated varint: %w", err)
		}
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("varint overflow")
}

// checkHeader verifies the fingerprint/elems header fields shared by
// both format versions.
func checkHeader(s *Schedule, topo *topology.Topology, fingerprint string) error {
	if got := TopologyFingerprint(topo); got != fingerprint {
		return fmt.Errorf("collective: topology %s does not match binary schedule (fingerprint %s, file has %s)",
			topo.Name(), got, fingerprint)
	}
	if s.Elems < 1 {
		return fmt.Errorf("collective: schedule has %d elements", s.Elems)
	}
	return nil
}

// importBinaryV1 decodes the legacy summary-free format. With no
// store-time evidence to trust, the load ends in the full ValidateStrict
// pass, exactly as version 1 always did.
func importBinaryV1(r io.Reader, topo *topology.Topology, opts BinaryImportOptions) (*Schedule, error) {
	o := opts.Observer
	var decodeStart time.Time
	transfers := 0
	decodeEnded := false
	endDecode := func() {
		if o == nil || decodeEnded {
			return
		}
		decodeEnded = true
		o.PhaseEnd(obs.PhaseDecode, obs.PlanCounters{
			Transfers:   int64(transfers),
			DecodeNanos: time.Since(decodeStart).Nanoseconds(),
		})
	}
	if o != nil {
		o.PhaseStart(obs.PhaseDecode)
		decodeStart = time.Now()
	}
	defer endDecode()

	st := newBinStream(r)
	algorithm := st.str(maxStringLen)
	fingerprint := st.str(maxStringLen)
	s := &Schedule{
		Algorithm: algorithm,
		Topo:      topo,
		Elems:     int(st.uint()),
		Steps:     int(st.uint()),
	}
	if st.err == nil {
		if err := checkHeader(s, topo, fingerprint); err != nil {
			return nil, err
		}
	}
	// Counts are bounded by capped initial capacities plus append growth:
	// every decoded entry consumes at least one stream byte, so memory
	// stays proportional to the actual file size even if a corrupt count
	// claims billions.
	const preallocCap = 1 << 20
	nf := st.intCap("flow", 1<<32)
	s.Flows = make([]Range, 0, min(nf, preallocCap))
	for i := 0; i < nf && st.err == nil; i++ {
		s.Flows = append(s.Flows, Range{Off: int(st.uint()), Len: int(st.uint())})
	}
	nt := st.intCap("transfer", 1<<31-1)
	s.Transfers = make([]Transfer, 0, min(nt, preallocCap))
	maxStep := 0
	for i := 0; i < nt && st.err == nil; i++ {
		t := Transfer{
			ID:  TransferID(i),
			Src: topology.NodeID(st.uint()),
			Dst: topology.NodeID(st.uint()),
		}
		switch op := st.uint(); op {
		case opReduceBin:
			t.Op = Reduce
		case opGatherBin:
			t.Op = Gather
		default:
			if st.err == nil {
				return nil, fmt.Errorf("collective: transfer %d has unknown op %d", i, op)
			}
		}
		t.Flow = int(st.uint())
		t.Step = int(st.uint())
		if nd := st.intCap("dep", int64(nt)); nd > 0 && st.err == nil {
			t.Deps = make([]TransferID, nd)
			for d := range t.Deps {
				t.Deps[d] = TransferID(st.uint())
			}
		}
		np := st.intCap("path", 1<<32)
		if st.err == nil {
			t.Path = make([]topology.LinkID, 0, min(np, preallocCap))
			for h := 0; h < np && st.err == nil; h++ {
				t.Path = append(t.Path, topology.LinkID(st.uint()))
			}
		}
		if t.Step > maxStep {
			maxStep = t.Step
		}
		s.Transfers = append(s.Transfers, t)
	}
	if st.err != nil {
		return nil, fmt.Errorf("collective: bad binary schedule: %w", st.err)
	}
	if s.Steps < maxStep {
		return nil, fmt.Errorf("collective: schedule claims %d steps but has a transfer at step %d", s.Steps, maxStep)
	}
	transfers = len(s.Transfers)
	endDecode()
	if err := validateFullObserved(s, opts.Observer); err != nil {
		return nil, err
	}
	return s, nil
}

// validateFullObserved is the full load-time validation, bracketed as
// the validate phase.
func validateFullObserved(s *Schedule, o obs.PlanObserver) error {
	if o != nil {
		o.PhaseStart(obs.PhaseValidate)
		defer func() {
			o.PhaseEnd(obs.PhaseValidate, obs.PlanCounters{
				Transfers:       int64(len(s.Transfers)),
				FullValidations: 1,
			})
		}()
	}
	if err := s.ValidateStrict(); err != nil {
		return fmt.Errorf("collective: binary schedule failed validation: %w", err)
	}
	return nil
}

// importBinaryV2 decodes the current format: everything after the
// content-hash field streams through the hasher while it is decoded into
// arrays preallocated from the validation summary, and the load is
// accepted once the recomputed hash matches — O(1) validation work
// beyond the decode itself.
func importBinaryV2(r io.Reader, topo *topology.Topology, opts BinaryImportOptions, info BinaryLoadInfo) (*Schedule, BinaryLoadInfo, error) {
	var want [hashSize]byte
	if _, err := io.ReadFull(r, want[:]); err != nil {
		return nil, info, fmt.Errorf("collective: bad binary schedule: %w", err)
	}
	hasher := sha256.New()
	// The hasher is timed so the sequential load still reports the
	// decode/verify CPU split the v3 path measures per section.
	th := &timedWriter{w: hasher}
	o := opts.Observer
	var decodeStart time.Time
	var sum ValidationSummary
	decodeEnded := false
	endDecode := func() {
		if o == nil || decodeEnded {
			return
		}
		decodeEnded = true
		d := time.Since(decodeStart).Nanoseconds() - th.ns
		if d < 0 {
			d = 0
		}
		o.PhaseEnd(obs.PhaseDecode, obs.PlanCounters{Transfers: sum.Transfers, DecodeNanos: d})
	}
	if o != nil {
		o.PhaseStart(obs.PhaseDecode)
		decodeStart = time.Now()
	}
	defer endDecode()
	st := newBinStream(io.TeeReader(r, th))

	algorithm := st.str(maxStringLen)
	fingerprint := st.str(maxStringLen)
	s := &Schedule{
		Algorithm: algorithm,
		Topo:      topo,
		Elems:     int(st.uint()),
		Steps:     int(st.uint()),
	}
	if st.err == nil {
		if err := checkHeader(s, topo, fingerprint); err != nil {
			return nil, info, err
		}
	}
	sum.Transfers = int64(st.uint())
	sum.DepEdges = int64(st.uint())
	sum.PathHops = int64(st.uint())
	sum.LinksUsed = int64(st.uint())
	sum.CoveredElems = int64(st.uint())
	st.bytes(sum.Witness[:])
	if st.err != nil {
		return nil, info, fmt.Errorf("collective: bad binary schedule: %w", st.err)
	}
	// Each transfer costs >= 7 stream bytes, each dep and path hop >= 1:
	// with a size hint, a summary whose claimed sizes could not fit in
	// the file is rejected before anything is allocated.
	if hint := opts.SizeHint; hint > 0 {
		if sum.Transfers*7+sum.DepEdges+sum.PathHops > hint {
			return nil, info, fmt.Errorf("collective: bad binary schedule: summary claims %d transfers/%d deps/%d hops in a %d-byte file",
				sum.Transfers, sum.DepEdges, sum.PathHops, hint)
		}
	} else if sum.Transfers+sum.DepEdges+sum.PathHops > 1<<26 {
		return nil, info, fmt.Errorf("collective: refusing to decode a %d-entity binary schedule without a size bound",
			sum.Transfers+sum.DepEdges+sum.PathHops)
	}
	if sum.Transfers > 1<<31-1 {
		return nil, info, fmt.Errorf("collective: bad binary schedule: %d transfers", sum.Transfers)
	}

	// One flow per tree; always dwarfed by transfers on non-trivial
	// schedules, with a floor for degenerate ones.
	nf := st.intCap("flow", max(sum.Transfers, 1<<16))
	s.Flows = make([]Range, nf)
	for i := range s.Flows {
		s.Flows[i] = Range{Off: int(st.uint()), Len: int(st.uint())}
	}

	nt := int(sum.Transfers)
	nodes := topology.NodeID(topo.Nodes())
	links := len(topo.Links())
	s.Transfers = make([]Transfer, nt)
	depArena := make([]TransferID, sum.DepEdges)
	pathArena := make([]topology.LinkID, sum.PathHops)
	bm := newLinkBitmap(links)
	dcur, pcur := 0, 0
	maxStep := 0
	for i := 0; i < nt && st.err == nil; i++ {
		t := &s.Transfers[i]
		t.ID = TransferID(i)
		t.Src = topology.NodeID(st.uint())
		t.Dst = topology.NodeID(st.uint())
		if t.Src < 0 || t.Src >= nodes || t.Dst < 0 || t.Dst >= nodes {
			return nil, info, fmt.Errorf("collective: transfer %d: endpoint out of range (%d->%d)", i, t.Src, t.Dst)
		}
		switch op := st.uint(); op {
		case opReduceBin:
			t.Op = Reduce
		case opGatherBin:
			t.Op = Gather
		default:
			if st.err == nil {
				return nil, info, fmt.Errorf("collective: transfer %d has unknown op %d", i, op)
			}
		}
		t.Flow = int(st.uint())
		t.Step = int(st.uint())
		if st.err == nil && (t.Flow < 0 || t.Flow >= nf) {
			return nil, info, fmt.Errorf("collective: transfer %d: flow %d out of range", i, t.Flow)
		}
		nd := st.intCap("dep", sum.DepEdges-int64(dcur))
		if nd > 0 && st.err == nil {
			t.Deps = depArena[dcur : dcur+nd : dcur+nd]
			dcur += nd
			for d := range t.Deps {
				dep := TransferID(st.uint())
				if dep < 0 || int(dep) >= nt {
					if st.err == nil {
						return nil, info, fmt.Errorf("collective: transfer %d: dep %d out of range", i, dep)
					}
				}
				t.Deps[d] = dep
			}
		}
		np := st.intCap("path", sum.PathHops-int64(pcur))
		if st.err == nil {
			t.Path = pathArena[pcur : pcur+np : pcur+np]
			pcur += np
			for h := range t.Path {
				id := topology.LinkID(st.uint())
				if id < 0 || int(id) >= links {
					if st.err == nil {
						return nil, info, fmt.Errorf("collective: transfer %d: path link %d out of range", i, id)
					}
				}
				t.Path[h] = id
				bm.add(id)
			}
		}
		if t.Step > maxStep {
			maxStep = t.Step
		}
	}
	if st.err == nil && !st.atEOF() {
		// atEOF found live bytes — unless it failed reading, which is
		// the stickier error.
		if st.err == nil {
			st.err = fmt.Errorf("trailing data after schedule")
		}
	}
	if st.err != nil {
		return nil, info, fmt.Errorf("collective: bad binary schedule: %w", st.err)
	}

	// Summary validation: the cheap decode-time cross-checks, then the
	// content hash that proves the stream is bit-for-bit what store-time
	// validation accepted.
	endDecode()
	if o != nil && !opts.VerifyFull {
		o.PhaseStart(obs.PhaseValidate)
	}
	err := func() error {
		if int64(dcur) != sum.DepEdges || int64(pcur) != sum.PathHops {
			return fmt.Errorf("collective: bad binary schedule: summary claims %d deps/%d hops, stream has %d/%d",
				sum.DepEdges, sum.PathHops, dcur, pcur)
		}
		if bm.count != sum.LinksUsed {
			return fmt.Errorf("collective: bad binary schedule: summary claims %d links used, stream has %d", sum.LinksUsed, bm.count)
		}
		if s.Steps < maxStep {
			return fmt.Errorf("collective: schedule claims %d steps but has a transfer at step %d", s.Steps, maxStep)
		}
		if nt > 0 && s.Elems > 0 && sum.CoveredElems != int64(s.Elems) {
			return fmt.Errorf("collective: bad binary schedule: summary covers %d of %d elements", sum.CoveredElems, s.Elems)
		}
		var got [hashSize]byte
		hasher.Sum(got[:0])
		if got != want {
			return fmt.Errorf("collective: bad binary schedule: content hash mismatch (corrupt or tampered entry)")
		}
		return nil
	}()
	if o != nil && !opts.VerifyFull {
		c := obs.PlanCounters{Transfers: int64(nt), VerifyNanos: th.ns}
		if err == nil {
			c.SummaryValidations = 1
		}
		o.PhaseEnd(obs.PhaseValidate, c)
	}
	if err != nil {
		return nil, info, err
	}

	info.Summary = &sum
	info.Transfers = nt
	if opts.VerifyFull {
		if err := verifyFullV2(s, &sum, o); err != nil {
			return nil, info, err
		}
		info.Validation = "full"
		return s, info, nil
	}
	info.Validation = "summary"
	return s, info, nil
}

// verifyFullV2 is the -verify-plan path: the complete ValidateStrict
// pass plus a recomputation of the stored topological-order witness.
func verifyFullV2(s *Schedule, sum *ValidationSummary, o obs.PlanObserver) error {
	if o != nil {
		o.PhaseStart(obs.PhaseValidate)
		defer func() {
			o.PhaseEnd(obs.PhaseValidate, obs.PlanCounters{
				Transfers:       int64(len(s.Transfers)),
				FullValidations: 1,
			})
		}()
	}
	order, err := s.validatedOrder(true)
	if err != nil {
		return fmt.Errorf("collective: binary schedule failed validation: %w", err)
	}
	if w := witnessHash(order); w != sum.Witness {
		return fmt.Errorf("collective: binary schedule witness hash does not match its topological order")
	}
	return nil
}
