package collective

// A compact binary rendering of the schedule IR, for the plan cache's
// hot load path. The JSON IR of encoding.go stays the interchange
// format — self-contained, diffable, hand-editable; this encoding
// trades all of that for decode speed: a 1024-node MultiTree schedule
// (~2M transfers) loads in a few hundred milliseconds where the JSON
// form takes ten seconds, which is the difference between a plan cache
// that pays for itself and one that loses to re-planning.
//
// The format is not self-contained: it records the topology's
// fingerprint, not its link list, so it can only be loaded onto a live
// topology that hashes to the same value (ImportBinaryInto). That is
// exactly the plan cache's situation, and the fingerprint check plus
// the shared ValidateStrict pass keep the loaded schedule as trusted as
// a JSON import.

import (
	"encoding/binary"
	"fmt"
	"io"

	"multitree/internal/topology"
)

// BinaryIRVersion is the current binary schedule encoding version.
// ImportBinaryInto rejects any other version, so a format change makes
// old files unreadable (a cache miss) rather than misread.
const BinaryIRVersion = 1

// binaryMagic brands binary schedule files. Distinct from both JSON
// ('{') and anything a truncated write leaves behind.
var binaryMagic = [4]byte{'M', 'T', 'I', 'R'}

const (
	opReduceBin = 0
	opGatherBin = 1
)

// binWriter accumulates uvarints into one growing buffer; encoding a
// schedule is a single allocation-amortized append stream.
type binWriter struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *binWriter) uint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *binWriter) str(s string) {
	w.uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// binReader decodes from an in-memory image; the whole file is read up
// front (cache entries are tens of MB, well within reason) so decode is
// pure slice walking with no io layer in the hot loop.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a length prefix and bounds-checks it against the bytes
// remaining, so a corrupt length cannot drive a huge allocation.
func (r *binReader) count(elemBytes int) int {
	v := r.uint()
	if r.err != nil {
		return 0
	}
	if max := uint64(len(r.buf)-r.off) / uint64(elemBytes); v > max {
		r.err = fmt.Errorf("length %d exceeds remaining input at offset %d", v, r.off)
		return 0
	}
	return int(v)
}

func (r *binReader) str() string {
	n := r.count(1)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// ExportBinary writes the schedule in the binary IR. Like Export, every
// transfer's link path is pinned, so the loaded schedule reproduces the
// exact link-level behavior; unlike Export, the topology is recorded
// only by fingerprint.
func ExportBinary(w io.Writer, s *Schedule) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("collective: refusing to export invalid schedule: %w", err)
	}
	bw := &binWriter{buf: make([]byte, 0, 64+16*len(s.Transfers))}
	bw.buf = append(bw.buf, binaryMagic[:]...)
	bw.uint(BinaryIRVersion)
	bw.str(s.Algorithm)
	bw.str(TopologyFingerprint(s.Topo))
	bw.uint(uint64(s.Elems))
	bw.uint(uint64(s.Steps))
	bw.uint(uint64(len(s.Flows)))
	for _, r := range s.Flows {
		bw.uint(uint64(r.Off))
		bw.uint(uint64(r.Len))
	}
	bw.uint(uint64(len(s.Transfers)))
	for i := range s.Transfers {
		t := &s.Transfers[i]
		bw.uint(uint64(t.Src))
		bw.uint(uint64(t.Dst))
		op := uint64(opReduceBin)
		if t.Op == Gather {
			op = opGatherBin
		}
		bw.uint(op)
		bw.uint(uint64(t.Flow))
		bw.uint(uint64(t.Step))
		bw.uint(uint64(len(t.Deps)))
		for _, d := range t.Deps {
			bw.uint(uint64(d))
		}
		path := s.PathOf(t)
		bw.uint(uint64(len(path)))
		for _, id := range path {
			bw.uint(uint64(id))
		}
	}
	_, err := w.Write(bw.buf)
	return err
}

// ImportBinaryInto reads a binary schedule IR onto an existing topology.
// The load is as strict as the JSON path: magic, version, fingerprint
// match, and the full ValidateStrict pass (path continuity, DAG
// acyclicity, flow coverage) all run before a schedule is returned.
func ImportBinaryInto(r io.Reader, topo *topology.Topology) (*Schedule, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("collective: bad binary schedule: %w", err)
	}
	return importBinary(data, topo)
}

func importBinary(data []byte, topo *topology.Topology) (*Schedule, error) {
	if len(data) < len(binaryMagic) || string(data[:len(binaryMagic)]) != string(binaryMagic[:]) {
		return nil, fmt.Errorf("collective: not a binary schedule file")
	}
	br := &binReader{buf: data, off: len(binaryMagic)}
	if v := br.uint(); br.err == nil && v != BinaryIRVersion {
		return nil, fmt.Errorf("collective: unsupported binary schedule version %d (want %d)", v, BinaryIRVersion)
	}
	algorithm := br.str()
	fingerprint := br.str()
	if br.err == nil {
		if got := TopologyFingerprint(topo); got != fingerprint {
			return nil, fmt.Errorf("collective: topology %s does not match binary schedule (fingerprint %s, file has %s)",
				topo.Name(), got, fingerprint)
		}
	}
	s := &Schedule{
		Algorithm: algorithm,
		Topo:      topo,
		Elems:     int(br.uint()),
		Steps:     int(br.uint()),
	}
	nf := br.count(2)
	s.Flows = make([]Range, 0, nf)
	for i := 0; i < nf && br.err == nil; i++ {
		s.Flows = append(s.Flows, Range{Off: int(br.uint()), Len: int(br.uint())})
	}
	nt := br.count(7)
	s.Transfers = make([]Transfer, 0, nt)
	maxStep := 0
	for i := 0; i < nt && br.err == nil; i++ {
		t := Transfer{
			ID:  TransferID(i),
			Src: topology.NodeID(br.uint()),
			Dst: topology.NodeID(br.uint()),
		}
		switch op := br.uint(); op {
		case opReduceBin:
			t.Op = Reduce
		case opGatherBin:
			t.Op = Gather
		default:
			if br.err == nil {
				return nil, fmt.Errorf("collective: transfer %d has unknown op %d", i, op)
			}
		}
		t.Flow = int(br.uint())
		t.Step = int(br.uint())
		if nd := br.count(1); nd > 0 {
			t.Deps = make([]TransferID, nd)
			for d := range t.Deps {
				t.Deps[d] = TransferID(br.uint())
			}
		}
		np := br.count(1)
		t.Path = make([]topology.LinkID, np)
		for h := range t.Path {
			t.Path[h] = topology.LinkID(br.uint())
		}
		if t.Step > maxStep {
			maxStep = t.Step
		}
		s.Transfers = append(s.Transfers, t)
	}
	if br.err != nil {
		return nil, fmt.Errorf("collective: bad binary schedule: %w", br.err)
	}
	if s.Elems < 1 {
		return nil, fmt.Errorf("collective: schedule has %d elements", s.Elems)
	}
	if s.Steps < maxStep {
		return nil, fmt.Errorf("collective: schedule claims %d steps but has a transfer at step %d", s.Steps, maxStep)
	}
	if err := s.ValidateStrict(); err != nil {
		return nil, fmt.Errorf("collective: binary schedule failed validation: %w", err)
	}
	return s, nil
}
