package collective_test

// Tests of the version-2 binary IR trust machinery: validation-summary
// loads, the content hash as the corruption backstop, the VerifyFull
// escape hatch, and legacy version-1 compatibility.

import (
	"bytes"
	"strings"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/topology"
)

func buildV2(t *testing.T) (*topology.Topology, *collective.Schedule) {
	t.Helper()
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := core.Build(topo, 1<<12, core.DefaultOptions(topo))
	if err != nil {
		t.Fatal(err)
	}
	return topo, s
}

// TestBinaryV2SummaryLoad: a default import of a current-version file is
// accepted on its validation summary, and the summary's counts describe
// the schedule exactly.
func TestBinaryV2SummaryLoad(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, info, err := collective.ImportBinaryIntoOpts(bytes.NewReader(buf.Bytes()), topo, collective.BinaryImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != collective.BinaryIRVersion || info.Validation != "summary" {
		t.Fatalf("info = %+v, want current version, summary-validated", info)
	}
	if info.Summary == nil {
		t.Fatal("no validation summary reported")
	}
	var deps, hops int64
	for i := range s.Transfers {
		deps += int64(len(s.Transfers[i].Deps))
		hops += int64(len(s.PathOf(&s.Transfers[i])))
	}
	sum := info.Summary
	if sum.Transfers != int64(len(s.Transfers)) || sum.DepEdges != deps || sum.PathHops != hops {
		t.Fatalf("summary %+v does not match schedule (%d transfers, %d deps, %d hops)",
			sum, len(s.Transfers), deps, hops)
	}
	if sum.CoveredElems != int64(s.Elems) {
		t.Fatalf("summary covers %d elems, schedule has %d", sum.CoveredElems, s.Elems)
	}
	if sum.LinksUsed <= 0 || sum.LinksUsed > int64(len(topo.Links())) {
		t.Fatalf("summary links used = %d, topology has %d", sum.LinksUsed, len(topo.Links()))
	}
	// The trusted load is still the same schedule: full validation holds.
	if err := got.ValidateStrict(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryV2VerifyFull: VerifyFull forces the complete validation pass
// (witness hash included) and reports it.
func TestBinaryV2VerifyFull(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	_, info, err := collective.ImportBinaryIntoOpts(bytes.NewReader(buf.Bytes()), topo,
		collective.BinaryImportOptions{VerifyFull: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Validation != "full" {
		t.Fatalf("validation = %q, want full", info.Validation)
	}
}

// TestBinaryV2NoSingleBitFlipAccepted sweeps a single-bit flip across
// the encoded body (everything after magic/version/hash) and requires
// every variant to be rejected: flips that keep the stream decodable and
// the summary cross-checks consistent must be caught by the content
// hash — which is the whole point of carrying it — and at least one such
// flip must exist in the sweep.
func TestBinaryV2NoSingleBitFlipAccepted(t *testing.T) {
	topo, s := buildV2(t)
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Body starts after magic(4) + version varint(1) + content hash(32).
	const bodyOff = 4 + 1 + 32
	hashCaught := 0
	// Step a few bytes at a time to keep the sweep fast; every sampled
	// offset still covers header, summary, flow and transfer bytes.
	for off := bodyOff; off < len(good); off += 3 {
		bad := bytes.Clone(good)
		bad[off] ^= 0x01
		_, _, err := collective.ImportBinaryIntoOpts(bytes.NewReader(bad), topo, collective.BinaryImportOptions{})
		if err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
		if strings.Contains(err.Error(), "content hash mismatch") {
			hashCaught++
		}
	}
	if hashCaught == 0 {
		t.Fatal("no flip was caught by the content hash; the backstop never engaged")
	}
}

// TestBinaryV1Compat: a legacy version-1 file (no summary) still decodes
// — through the full validation pass — and yields the identical
// schedule.
func TestBinaryV1Compat(t *testing.T) {
	topo, s := buildV2(t)
	var v1 bytes.Buffer
	if err := collective.ExportBinaryV1(&v1, s); err != nil {
		t.Fatal(err)
	}
	got, info, err := collective.ImportBinaryIntoOpts(bytes.NewReader(v1.Bytes()), topo, collective.BinaryImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Validation != "full" {
		t.Fatalf("info = %+v, want version 1, full-validated", info)
	}
	var want, have bytes.Buffer
	if err := collective.Export(&want, s); err != nil {
		t.Fatal(err)
	}
	if err := collective.Export(&have, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatal("v1 round trip changed the schedule")
	}
}

// TestTreesToScheduleParallelDeterministic: the lowered schedule — and
// therefore its binary IR, content hash included — is byte-identical at
// every worker count.
func TestTreesToScheduleParallelDeterministic(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	trees, err := core.BuildTrees(topo, core.DefaultOptions(topo))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, workers := range []int{1, 2, 3, 8, 64} {
		s, err := collective.TreesToScheduleParallel(core.Algorithm, topo, 1<<12, trees, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := collective.ExportBinary(&buf, s); err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want = buf
			continue
		}
		if !bytes.Equal(want.Bytes(), buf.Bytes()) {
			t.Fatalf("workers=%d lowers to different bytes than workers=1", workers)
		}
	}
}
