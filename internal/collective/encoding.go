package collective

// The versioned on-disk Schedule IR. Like SCCL/TACCL interchange files,
// an exported schedule is a self-contained artifact: it embeds the
// topology (every directed link with its bandwidth and latency, plus a
// fingerprint), the flow segment table, and the full transfer DAG with
// every link path pinned. Import therefore needs no algorithm code and no
// routing function — an externally synthesized or hand-sketched schedule
// drops into the simulators, the float32 correctness interpreter, and
// (when tree-structured) the NI table compiler exactly like a built-in
// algorithm.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"multitree/internal/sim"
	"multitree/internal/topology"
)

// IRVersion is the current schedule interchange format version. Import
// rejects files with any other version.
const IRVersion = 1

type scheduleJSON struct {
	Version   int            `json:"version"`
	Algorithm string         `json:"algorithm"`
	Elems     int            `json:"elems"`
	Steps     int            `json:"steps"`
	Topology  topoJSON       `json:"topology"`
	Flows     []rangeJSON    `json:"flows"`
	Transfers []transferJSON `json:"transfers"`
}

type topoJSON struct {
	Name        string     `json:"name"`
	Class       string     `json:"class"`
	Nodes       int        `json:"nodes"`
	Switches    int        `json:"switches"`
	Links       []linkJSON `json:"links"`
	Fingerprint string     `json:"fingerprint"`
}

type linkJSON struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Bandwidth is bytes per cycle; Latency is cycles.
	Bandwidth float64 `json:"bw"`
	Latency   uint64  `json:"lat"`
}

type rangeJSON struct {
	Off int `json:"off"`
	Len int `json:"len"`
}

type transferJSON struct {
	Src  int     `json:"src"`
	Dst  int     `json:"dst"`
	Op   string  `json:"op"`
	Flow int     `json:"flow"`
	Step int     `json:"step"`
	Deps []int32 `json:"deps,omitempty"`
	Path []int   `json:"path"`
}

const (
	opReduceJSON = "reduce"
	opGatherJSON = "gather"
)

// TopologyFingerprint returns a stable hash of a topology's structure —
// vertex counts, class, and every directed link's endpoints, bandwidth
// and latency. Two topologies with equal fingerprints are functionally
// interchangeable for schedule execution.
func TopologyFingerprint(t *topology.Topology) string {
	h := sha256.New()
	fmt.Fprintf(h, "nodes=%d switches=%d class=%s\n", t.Nodes(), t.Switches(), t.Class())
	for _, l := range t.Links() {
		fmt.Fprintf(h, "%d>%d bw=%g lat=%d\n", l.Src, l.Dst, l.Bandwidth, uint64(l.Latency))
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Export writes the schedule in the versioned JSON IR. Every transfer's
// link path is pinned (resolving the topology's deterministic route when
// the schedule left it implicit), so an importer reproduces the exact
// link-level behavior without the original routing function. Exporting an
// imported schedule reproduces the file byte for byte.
func Export(w io.Writer, s *Schedule) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("collective: refusing to export invalid schedule: %w", err)
	}
	topo := s.Topo
	tj := topoJSON{
		Name:        topo.Name(),
		Class:       topo.Class().String(),
		Nodes:       topo.Nodes(),
		Switches:    topo.Switches(),
		Fingerprint: TopologyFingerprint(topo),
	}
	for _, l := range topo.Links() {
		tj.Links = append(tj.Links, linkJSON{
			Src: l.Src, Dst: l.Dst, Bandwidth: l.Bandwidth, Latency: uint64(l.Latency),
		})
	}
	f := scheduleJSON{
		Version:   IRVersion,
		Algorithm: s.Algorithm,
		Elems:     s.Elems,
		Steps:     s.Steps,
		Topology:  tj,
	}
	for _, r := range s.Flows {
		f.Flows = append(f.Flows, rangeJSON{Off: r.Off, Len: r.Len})
	}
	for i := range s.Transfers {
		t := &s.Transfers[i]
		op := opReduceJSON
		if t.Op == Gather {
			op = opGatherJSON
		}
		path := s.PathOf(t)
		pj := make([]int, len(path))
		for h, id := range path {
			pj[h] = int(id)
		}
		var deps []int32
		for _, d := range t.Deps {
			deps = append(deps, int32(d))
		}
		f.Transfers = append(f.Transfers, transferJSON{
			Src: int(t.Src), Dst: int(t.Dst), Op: op,
			Flow: t.Flow, Step: t.Step, Deps: deps, Path: pj,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&f)
}

// Import reads a schedule IR file and reconstructs it on a topology built
// from the file's embedded link list (IDs, bandwidths and latencies are
// preserved, so pinned paths resolve identically). The load is strict:
// version, topology sanity, fingerprint consistency, DAG acyclicity, link
// existence and flow coverage are all verified before a schedule is
// returned.
func Import(r io.Reader) (*Schedule, error) {
	f, err := decodeIR(r)
	if err != nil {
		return nil, err
	}
	topo, err := rebuildTopology(&f.Topology)
	if err != nil {
		return nil, err
	}
	return assemble(f, topo)
}

// ImportInto reads a schedule IR file onto an existing topology instead
// of reconstructing one. The topology must match the file's fingerprint;
// this keeps native routing metadata (grid coordinates, ring orders)
// available on the imported schedule's topology.
func ImportInto(r io.Reader, topo *topology.Topology) (*Schedule, error) {
	f, err := decodeIR(r)
	if err != nil {
		return nil, err
	}
	if got := TopologyFingerprint(topo); got != f.Topology.Fingerprint {
		return nil, fmt.Errorf("collective: topology %s does not match schedule file (fingerprint %s, file has %s for %s)",
			topo.Name(), got, f.Topology.Fingerprint, f.Topology.Name)
	}
	return assemble(f, topo)
}

func decodeIR(r io.Reader) (*scheduleJSON, error) {
	var f scheduleJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("collective: bad schedule file: %w", err)
	}
	if f.Version != IRVersion {
		return nil, fmt.Errorf("collective: unsupported schedule IR version %d (want %d)", f.Version, IRVersion)
	}
	if f.Elems < 1 {
		return nil, fmt.Errorf("collective: schedule has %d elements", f.Elems)
	}
	return &f, nil
}

// rebuildTopology reconstructs the embedded topology description as a
// custom topology with identical link IDs and parameters, verifying the
// fingerprint the exporter recorded.
func rebuildTopology(tj *topoJSON) (*topology.Topology, error) {
	if tj.Nodes < 1 || tj.Switches < 0 {
		return nil, fmt.Errorf("collective: schedule topology has %d nodes, %d switches", tj.Nodes, tj.Switches)
	}
	vertices := tj.Nodes + tj.Switches
	cb := topology.NewCustom(tj.Name, tj.Nodes, tj.Switches)
	for i, l := range tj.Links {
		if l.Src < 0 || l.Src >= vertices || l.Dst < 0 || l.Dst >= vertices || l.Src == l.Dst {
			return nil, fmt.Errorf("collective: schedule link %d has bad endpoints %d->%d", i, l.Src, l.Dst)
		}
		if l.Bandwidth <= 0 {
			return nil, fmt.Errorf("collective: schedule link %d has bandwidth %g", i, l.Bandwidth)
		}
		cb.DirectedLink(l.Src, l.Dst, topology.LinkConfig{
			Bandwidth: l.Bandwidth,
			Latency:   sim.Time(l.Latency),
		})
	}
	topo, err := cb.Build()
	if err != nil {
		return nil, fmt.Errorf("collective: schedule topology: %w", err)
	}
	if got := TopologyFingerprint(topo); got != tj.Fingerprint {
		return nil, fmt.Errorf("collective: topology fingerprint mismatch: rebuilt %s, file records %s", got, tj.Fingerprint)
	}
	return topo, nil
}

// assemble turns a decoded IR file plus a resolved topology into a
// validated Schedule.
func assemble(f *scheduleJSON, topo *topology.Topology) (*Schedule, error) {
	s := &Schedule{
		Algorithm: f.Algorithm,
		Topo:      topo,
		Elems:     f.Elems,
		Steps:     f.Steps,
	}
	for _, r := range f.Flows {
		s.Flows = append(s.Flows, Range{Off: r.Off, Len: r.Len})
	}
	maxStep := 0
	for i, tj := range f.Transfers {
		var op Op
		switch tj.Op {
		case opReduceJSON:
			op = Reduce
		case opGatherJSON:
			op = Gather
		default:
			return nil, fmt.Errorf("collective: transfer %d has unknown op %q", i, tj.Op)
		}
		t := Transfer{
			ID:  TransferID(i),
			Src: topology.NodeID(tj.Src), Dst: topology.NodeID(tj.Dst),
			Op: op, Flow: tj.Flow, Step: tj.Step,
		}
		for _, d := range tj.Deps {
			t.Deps = append(t.Deps, TransferID(d))
		}
		t.Path = make([]topology.LinkID, len(tj.Path))
		for h, id := range tj.Path {
			t.Path[h] = topology.LinkID(id)
		}
		if t.Step > maxStep {
			maxStep = t.Step
		}
		s.Transfers = append(s.Transfers, t)
	}
	if s.Steps < maxStep {
		return nil, fmt.Errorf("collective: schedule claims %d steps but has a transfer at step %d", s.Steps, maxStep)
	}
	if err := s.ValidateStrict(); err != nil {
		return nil, fmt.Errorf("collective: schedule file failed validation: %w", err)
	}
	return s, nil
}
