package collective_test

import (
	"bytes"
	"strings"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/hdrm"
	"multitree/internal/ring"
	"multitree/internal/topology"
)

// TestTreesFromScheduleRoundTrip: recovering the trees from a MultiTree
// schedule and lowering them again reproduces the schedule transfer for
// transfer — the IR and the tree form carry the same information.
func TestTreesFromScheduleRoundTrip(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	const elems = 320
	orig, err := core.Build(topo, elems, core.DefaultOptions(topo))
	if err != nil {
		t.Fatal(err)
	}
	trees, err := collective.TreesFromSchedule(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != topo.Nodes() {
		t.Fatalf("recovered %d trees, want %d", len(trees), topo.Nodes())
	}
	rebuilt, err := collective.TreesToSchedule(orig.Algorithm, topo, elems, trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt.Transfers) != len(orig.Transfers) || rebuilt.Steps != orig.Steps {
		t.Fatalf("rebuilt schedule shape differs: %d transfers/%d steps vs %d/%d",
			len(rebuilt.Transfers), rebuilt.Steps, len(orig.Transfers), orig.Steps)
	}
	type key struct {
		src, dst topology.NodeID
		op       collective.Op
		flow     int
		step     int
	}
	want := map[key]int{}
	for i := range orig.Transfers {
		tr := &orig.Transfers[i]
		want[key{tr.Src, tr.Dst, tr.Op, tr.Flow, tr.Step}]++
	}
	for i := range rebuilt.Transfers {
		tr := &rebuilt.Transfers[i]
		k := key{tr.Src, tr.Dst, tr.Op, tr.Flow, tr.Step}
		if want[k] == 0 {
			t.Fatalf("rebuilt schedule has extra transfer %+v", k)
		}
		want[k]--
	}
}

// TestTreesFromScheduleSurvivesExport: tree recovery works identically on
// a schedule that went through the IR file format.
func TestTreesFromScheduleSurvivesExport(t *testing.T) {
	topo := topology.Mesh(2, 2, topology.DefaultLinkConfig())
	orig, err := core.Build(topo, 64, core.DefaultOptions(topo))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := collective.Export(&buf, orig); err != nil {
		t.Fatal(err)
	}
	imp, err := collective.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := collective.TreesFromSchedule(imp)
	if err != nil {
		t.Fatalf("recovery failed on imported schedule: %v", err)
	}
	for _, tr := range trees {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTreesFromScheduleRejectsNonTreeForms: ring's all-gather does not
// retrace its reduce path and HDRM exchanges nested flow halves; both
// must be rejected with a descriptive error rather than mis-recovered.
func TestTreesFromScheduleRejectsNonTreeForms(t *testing.T) {
	torus := topology.Torus(4, 4, topology.DefaultLinkConfig())
	if _, err := collective.TreesFromSchedule(ring.Build(torus, 256)); err == nil {
		t.Fatal("ring schedule recovered as trees")
	} else if !strings.Contains(err.Error(), "mirror") {
		t.Fatalf("ring rejection should mention the missing mirror, got: %v", err)
	}
	big := topology.BiGraph(4, 4, topology.DefaultLinkConfig())
	hs, err := hdrm.Build(big, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collective.TreesFromSchedule(hs); err == nil {
		t.Fatal("hdrm schedule recovered as trees")
	}
}
