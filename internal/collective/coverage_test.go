package collective

import (
	"testing"
)

// coverageSchedule builds a bare schedule with nf flows over elems
// elements; shuffled reverses the flow table so the coverage check takes
// its sort fallback.
func coverageSchedule(elems, nf int, shuffled bool) *Schedule {
	s := &Schedule{Elems: elems, Flows: Partition(elems, nf)}
	if shuffled {
		for i, j := 0, len(s.Flows)-1; i < j; i, j = i+1, j-1 {
			s.Flows[i], s.Flows[j] = s.Flows[j], s.Flows[i]
		}
	}
	return s
}

// TestFlowCoverageHoleFindsHoles pins the check's answers on ordered and
// shuffled flow tables, covered and holed.
func TestFlowCoverageHoleFindsHoles(t *testing.T) {
	for _, shuffled := range []bool{false, true} {
		s := coverageSchedule(1<<12, 64, shuffled)
		if hole, ok := s.flowCoverageHole(); ok {
			t.Fatalf("shuffled=%v: false hole at %d", shuffled, hole)
		}
		// Punch a hole: drop one segment's coverage.
		victim := 17
		want := s.Flows[victim].Off
		s.Flows[victim].Len = 0
		hole, ok := s.flowCoverageHole()
		if !ok || hole != want {
			t.Fatalf("shuffled=%v: hole = %d,%v, want %d,true", shuffled, hole, ok, want)
		}
	}
}

// TestFlowCoverageHoleNoAlloc pins the scratch-reuse contract: the
// ascending fast path never allocates, and the sort fallback allocates
// only on its first run — repeat validations of the same schedule reuse
// the scratch.
func TestFlowCoverageHoleNoAlloc(t *testing.T) {
	ordered := coverageSchedule(1<<16, 1024, false)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := ordered.flowCoverageHole(); ok {
			t.Fatal("false hole")
		}
	}); allocs != 0 {
		t.Fatalf("ascending fast path allocates %.1f per check, want 0", allocs)
	}

	shuffled := coverageSchedule(1<<16, 1024, true)
	shuffled.flowCoverageHole() // first run sizes the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := shuffled.flowCoverageHole(); ok {
			t.Fatal("false hole")
		}
	}); allocs != 0 {
		t.Fatalf("sort fallback allocates %.1f per check after warmup, want 0", allocs)
	}
}

// BenchmarkFlowCoverageHole measures the strict-validation coverage
// check at a 1024-flow table — the fast path on Partition's ascending
// output, and the warmed sort fallback.
func BenchmarkFlowCoverageHole(b *testing.B) {
	for _, bc := range []struct {
		name     string
		shuffled bool
	}{{"ascending", false}, {"shuffled", true}} {
		b.Run(bc.name, func(b *testing.B) {
			s := coverageSchedule(1<<20, 1024, bc.shuffled)
			s.flowCoverageHole()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := s.flowCoverageHole(); ok {
					b.Fatal("false hole")
				}
			}
		})
	}
}
