// Package accel is the compute-side substrate: an analytical model of a
// TPU-like training accelerator built from output-stationary systolic
// arrays, standing in for the paper's extended SCALE-Sim (§V-A). The
// configuration of Table III is 16 processing elements, each a 32x32 MAC
// array at 1 GHz, with double buffering and sufficient memory bandwidth to
// sustain peak throughput — so compute time is the systolic dataflow time,
// not a memory model.
//
// Output-stationary mapping: each PE pass pins a tile of (output pixel,
// output channel) pairs — up to Rows x Cols outputs — and streams their
// K-long dot products through the array, costing K + (Rows + Cols - 2)
// cycles of fill/drain per pass. A layer's passes are divided evenly
// across the accelerator's PEs.
//
// Back-propagation (the paper's SCALE-Sim extension) costs, per layer:
// an input-gradient pass (the transposed convolution the paper calls out,
// skipped for the first layer) and a weight-gradient pass, both expressed
// as GEMMs on the same array.
package accel

import (
	"multitree/internal/model"
)

// Dataflow selects the systolic mapping, as in SCALE-Sim. The paper's
// configuration uses output stationary; the others are provided for the
// dataflow ablation.
type Dataflow int

const (
	// OutputStationary pins an output tile per pass and streams the
	// K-long dot products through the array (the paper's §V-A setting).
	OutputStationary Dataflow = iota
	// WeightStationary pins a weight tile (K x M) and streams the output
	// pixels past it.
	WeightStationary
	// InputStationary pins an input tile (pixels x K) and streams the
	// output channels past it.
	InputStationary
)

func (d Dataflow) String() string {
	switch d {
	case WeightStationary:
		return "weight-stationary"
	case InputStationary:
		return "input-stationary"
	}
	return "output-stationary"
}

// Accelerator describes one compute node.
type Accelerator struct {
	Rows, Cols int // systolic array dimensions (32x32)
	PEs        int // processing elements per accelerator (16)
	Dataflow   Dataflow
}

// Default returns the Table III accelerator configuration
// (output-stationary 32x32 arrays, 16 PEs).
func Default() Accelerator {
	return Accelerator{Rows: 32, Cols: 32, PEs: 16}
}

// gemmCycles returns the cycle count of an outputs x channels GEMM with
// k-long dot products on one PE under the configured dataflow, spread
// over the accelerator's PEs. Each pass pins one tile of the stationary
// operand and streams the moving dimension through, paying the array
// fill/drain once per pass.
func (a Accelerator) gemmCycles(outputs, channels, k int64) int64 {
	if outputs <= 0 || channels <= 0 || k <= 0 {
		return 0
	}
	var passes, stream int64
	switch a.Dataflow {
	case WeightStationary:
		// Stationary: k x channels weight tiles; stream the outputs.
		passes = ceilDiv(k, int64(a.Rows)) * ceilDiv(channels, int64(a.Cols))
		stream = outputs
	case InputStationary:
		// Stationary: outputs x k input tiles; stream the channels.
		passes = ceilDiv(outputs, int64(a.Rows)) * ceilDiv(k, int64(a.Cols))
		stream = channels
	default: // OutputStationary
		passes = ceilDiv(outputs, int64(a.Rows)) * ceilDiv(channels, int64(a.Cols))
		stream = k
	}
	perPass := stream + int64(a.Rows) + int64(a.Cols) - 2
	return ceilDiv(passes*perPass, int64(a.PEs))
}

// ForwardCycles returns one forward pass of the layer over a batch.
func (a Accelerator) ForwardCycles(l model.Layer, batch int) int64 {
	b := int64(batch)
	switch l.Kind {
	case model.Conv:
		ho, wo := l.OutDims()
		return a.gemmCycles(b*int64(ho)*int64(wo), int64(l.M),
			int64(l.R)*int64(l.S)*int64(l.C))
	case model.FC:
		seq := int64(l.Seq)
		if seq == 0 {
			seq = 1
		}
		return a.gemmCycles(b*seq, int64(l.M), int64(l.C))
	case model.Attention:
		seq := int64(l.Seq)
		// Scores QK^T (seq x seq, K = M) and context (seq x M, K = seq).
		return a.gemmCycles(b*seq, seq, int64(l.M)) +
			a.gemmCycles(b*seq, int64(l.M), seq)
	case model.Embedding:
		// Table lookups: one row fetch per sample, no MACs; charge one
		// cycle per fetched element per PE-row as a streaming cost.
		return ceilDiv(b*int64(l.M), int64(a.Rows*a.PEs))
	}
	return 0
}

// BackwardCycles returns one backward pass of the layer over a batch:
// weight-gradient GEMM plus, unless first (the layer has no upstream),
// the input-gradient (transposed convolution) GEMM.
func (a Accelerator) BackwardCycles(l model.Layer, batch int, first bool) int64 {
	b := int64(batch)
	var wg, ig int64
	switch l.Kind {
	case model.Conv:
		ho, wo := l.OutDims()
		outPix := b * int64(ho) * int64(wo)
		// dW: (R*S*C) x M GEMM with K = batch*Ho*Wo.
		wg = a.gemmCycles(int64(l.R)*int64(l.S)*int64(l.C), int64(l.M), outPix)
		if !first {
			// dX: transposed convolution, one R*S*M dot product per input
			// pixel.
			ig = a.gemmCycles(b*int64(l.H)*int64(l.W), int64(l.C),
				int64(l.R)*int64(l.S)*int64(l.M))
		}
	case model.FC:
		seq := int64(l.Seq)
		if seq == 0 {
			seq = 1
		}
		wg = a.gemmCycles(int64(l.C), int64(l.M), b*seq)
		if !first {
			ig = a.gemmCycles(b*seq, int64(l.C), int64(l.M))
		}
	case model.Attention:
		// Gradients through both attention GEMMs cost about twice the
		// forward work.
		return 2 * a.ForwardCycles(l, batch)
	case model.Embedding:
		// Scatter-add of row gradients.
		wg = ceilDiv(b*int64(l.M), int64(a.Rows*a.PEs))
	}
	return wg + ig
}

// NetworkForwardCycles sums forward cycles over all layers.
func (a Accelerator) NetworkForwardCycles(n model.Network, batch int) int64 {
	var sum int64
	for _, l := range n.Layers {
		sum += a.ForwardCycles(l, batch)
	}
	return sum
}

// NetworkBackwardCycles sums backward cycles over all layers; the first
// layer skips its input-gradient pass.
func (a Accelerator) NetworkBackwardCycles(n model.Network, batch int) int64 {
	var sum int64
	for i, l := range n.Layers {
		sum += a.BackwardCycles(l, batch, i == 0)
	}
	return sum
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
