package accel

import (
	"testing"
	"testing/quick"

	"multitree/internal/model"
)

func def() Accelerator { return Default() }

// TestGEMMCycleFormula pins the output-stationary pass cost.
func TestGEMMCycleFormula(t *testing.T) {
	a := Accelerator{Rows: 32, Cols: 32, PEs: 1}
	// One pass exactly: 32x32 outputs, K=100 -> 100 + 62 cycles.
	if got := a.gemmCycles(32, 32, 100); got != 162 {
		t.Errorf("single pass = %d, want 162", got)
	}
	// Two passes across rows.
	if got := a.gemmCycles(33, 32, 100); got != 324 {
		t.Errorf("two passes = %d, want 324", got)
	}
	// PEs divide the passes.
	a16 := Accelerator{Rows: 32, Cols: 32, PEs: 16}
	if got := a16.gemmCycles(32*16, 32, 100); got != 162 {
		t.Errorf("16 PEs on 16 passes = %d, want 162", got)
	}
}

func TestZeroWorkCostsNothing(t *testing.T) {
	a := def()
	if a.gemmCycles(0, 10, 10) != 0 || a.gemmCycles(10, 0, 10) != 0 || a.gemmCycles(10, 10, 0) != 0 {
		t.Error("empty GEMM has nonzero cost")
	}
}

// TestConvMatchesEquivalentGEMM: a conv layer costs the same as its
// im2col GEMM.
func TestConvMatchesEquivalentGEMM(t *testing.T) {
	a := def()
	l := model.Layer{Kind: model.Conv, H: 16, W: 16, C: 8, M: 32, R: 3, S: 3, Stride: 1}
	ho, wo := l.OutDims()
	want := a.gemmCycles(int64(4*ho*wo), 32, 3*3*8)
	if got := a.ForwardCycles(l, 4); got != want {
		t.Errorf("conv forward = %d, want %d", got, want)
	}
}

// TestBackwardFirstLayerSkipsInputGradient: the first layer has no
// upstream to propagate to (§V-B's transposed-convolution note applies to
// interior layers).
func TestBackwardFirstLayerSkipsInputGradient(t *testing.T) {
	a := def()
	l := model.Layer{Kind: model.Conv, H: 16, W: 16, C: 8, M: 32, R: 3, S: 3, Stride: 1}
	first := a.BackwardCycles(l, 4, true)
	mid := a.BackwardCycles(l, 4, false)
	if first >= mid {
		t.Errorf("first-layer backward (%d) should be cheaper than interior (%d)", first, mid)
	}
}

// TestBackwardCostsMoreThanForward: backward includes the weight-gradient
// pass, so an interior layer's backward exceeds its forward.
func TestBackwardCostsMoreThanForward(t *testing.T) {
	a := def()
	for _, l := range model.ResNet50().Layers {
		if l.Kind != model.Conv {
			continue
		}
		fwd := a.ForwardCycles(l, 16)
		bwd := a.BackwardCycles(l, 16, false)
		if bwd <= fwd/2 {
			t.Errorf("%s: backward %d suspiciously below forward %d", l.Name, bwd, fwd)
		}
	}
}

// TestBatchMonotonic: more samples never cost fewer cycles.
func TestBatchMonotonic(t *testing.T) {
	a := def()
	l := model.Layer{Kind: model.FC, C: 512, M: 512}
	f := func(b1, b2 uint8) bool {
		x, y := 1+int(b1)%64, 1+int(b2)%64
		if x > y {
			x, y = y, x
		}
		return a.ForwardCycles(l, x) <= a.ForwardCycles(l, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNetworkCyclesArePositive for all zoo models.
func TestNetworkCyclesArePositive(t *testing.T) {
	a := def()
	for _, n := range model.Zoo() {
		fwd := a.NetworkForwardCycles(n, 16)
		bwd := a.NetworkBackwardCycles(n, 16)
		if fwd <= 0 || bwd <= 0 {
			t.Errorf("%s: fwd=%d bwd=%d", n.Name, fwd, bwd)
		}
		if bwd <= fwd {
			t.Errorf("%s: backward (%d) should exceed forward (%d)", n.Name, bwd, fwd)
		}
	}
}

// TestComputeIntensityOrdering: the convolutional workloads are
// compute-dominant relative to their gradient size; NCF and Transformer
// are not — the split that drives Fig. 11.
func TestComputeIntensityOrdering(t *testing.T) {
	a := def()
	intensity := func(n model.Network) float64 {
		return float64(a.NetworkForwardCycles(n, 16)) / float64(n.GradientBytes())
	}
	cnn := intensity(model.ResNet50())
	ncf := intensity(model.NCF())
	tra := intensity(model.Transformer())
	if cnn <= 10*ncf {
		t.Errorf("ResNet50 intensity %.3f not clearly above NCF %.3f", cnn, ncf)
	}
	if cnn <= 3*tra {
		t.Errorf("ResNet50 intensity %.3f not clearly above Transformer %.3f", cnn, tra)
	}
}

// TestDataflowVariants: all three mappings do the same MACs, so their
// cycle counts stay within the fill/drain overhead of each other on a
// large square GEMM, and each one is exact on its favourable shape.
func TestDataflowVariants(t *testing.T) {
	shapes := []struct{ o, c, k int64 }{
		{1024, 1024, 1024},
		{32, 2048, 64},
		{2048, 32, 64},
	}
	for _, s := range shapes {
		var cyc [3]int64
		for i, d := range []Dataflow{OutputStationary, WeightStationary, InputStationary} {
			a := Accelerator{Rows: 32, Cols: 32, PEs: 1, Dataflow: d}
			cyc[i] = a.gemmCycles(s.o, s.c, s.k)
			if cyc[i] <= 0 {
				t.Fatalf("%v on %+v: %d cycles", d, s, cyc[i])
			}
		}
		// The ideal MAC-limited time is o*c*k/1024; no mapping may beat it.
		ideal := s.o * s.c * s.k / 1024
		for i, c := range cyc {
			if c < ideal {
				t.Errorf("dataflow %d beats the MAC bound on %+v: %d < %d", i, s, c, ideal)
			}
		}
	}
	// Square GEMM: all mappings within 2x of each other.
	a := func(d Dataflow) Accelerator { return Accelerator{Rows: 32, Cols: 32, PEs: 1, Dataflow: d} }
	os := a(OutputStationary).gemmCycles(1024, 1024, 1024)
	ws := a(WeightStationary).gemmCycles(1024, 1024, 1024)
	is := a(InputStationary).gemmCycles(1024, 1024, 1024)
	for _, c := range []int64{ws, is} {
		if c > 2*os || os > 2*c {
			t.Errorf("dataflow cycle spread too large: os=%d ws=%d is=%d", os, ws, is)
		}
	}
}

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "output-stationary" ||
		WeightStationary.String() != "weight-stationary" ||
		InputStationary.String() != "input-stationary" {
		t.Error("Dataflow.String broken")
	}
}
