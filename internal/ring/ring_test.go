package ring_test

import (
	"testing"
	"testing/quick"

	"multitree/internal/collective"
	"multitree/internal/ring"
	"multitree/internal/topology"
)

func cfg() topology.LinkConfig { return topology.DefaultLinkConfig() }

func TestStepsAndVolume(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s := ring.Build(topo, 1600)
	n := int64(topo.Nodes())
	if s.Steps != 2*(int(n)-1) {
		t.Errorf("steps = %d, want %d", s.Steps, 2*(n-1))
	}
	if len(s.Transfers) != int(2*n*(n-1)) {
		t.Errorf("transfers = %d, want %d", len(s.Transfers), 2*n*(n-1))
	}
	// Bandwidth-optimal: total bytes = 2(N-1) * S.
	want := 2 * (n - 1) * 1600 * collective.WordSize
	if got := s.TotalBytes(); got != want {
		t.Errorf("total bytes = %d, want %d", got, want)
	}
	a := collective.Analyze(s)
	if a.BandwidthOverhead() != 1.0 {
		t.Errorf("bandwidth overhead = %v, want 1.0", a.BandwidthOverhead())
	}
}

// TestContentionFreeOnTorus: the snake embedding maps each hop onto a
// distinct physical link, including the wrap-around closure.
func TestContentionFreeOnTorus(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.Torus(4, 4, cfg()),
		topology.Torus(8, 8, cfg()),
		topology.Mesh(4, 4, cfg()),
	} {
		a := collective.Analyze(ring.Build(topo, 4096))
		if !a.ContentionFree() {
			t.Errorf("%s: ring not contention-free (overlap %d)", topo.Name(), a.MaxLinkOverlap)
		}
	}
}

// TestPerNodeInjectionBalanced: every node injects exactly 2(N-1)/N * S.
func TestPerNodeInjectionBalanced(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s := ring.Build(topo, 1600)
	per := collective.PerNodeBytes(s)
	for n, b := range per {
		if b != per[0] {
			t.Fatalf("node %d injects %d bytes, node 0 injects %d", n, b, per[0])
		}
	}
}

// TestCorrectnessProperty checks the all-reduce semantics over random
// sizes via testing/quick.
func TestCorrectnessProperty(t *testing.T) {
	topo := topology.Mesh(3, 3, cfg())
	f := func(e uint16) bool {
		elems := 1 + int(e)%5000
		s := ring.Build(topo, elems)
		return collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), elems)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRingOrderUsed: transfers connect consecutive nodes of the topology's
// ring embedding.
func TestRingOrderUsed(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	order := topo.RingOrder()
	nextOf := map[topology.NodeID]topology.NodeID{}
	for i, n := range order {
		nextOf[n] = order[(i+1)%len(order)]
	}
	s := ring.Build(topo, 1600)
	for i := range s.Transfers {
		tr := &s.Transfers[i]
		if nextOf[tr.Src] != tr.Dst {
			t.Fatalf("transfer %d: %d->%d not a ring hop", i, tr.Src, tr.Dst)
		}
	}
}

func TestTwoNodeRing(t *testing.T) {
	c := topology.NewCustom("pair", 2, 0)
	c.Link(0, 1, cfg())
	topo, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ring.Build(topo, 100)
	if err := collective.VerifyAllReduce(s, collective.RampInputs(2, 100)); err != nil {
		t.Fatal(err)
	}
}
