package ring

import (
	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Self-registration in the central algorithm registry: ring applies to any
// connected topology with at least two nodes.
func init() {
	algorithms.Register(algorithms.Spec{
		Name:  Algorithm,
		Order: 10,
		Note:  "bandwidth-optimal ring, any topology with >= 2 nodes",
		Build: func(topo *topology.Topology, elems int, _ algorithms.Options) (*collective.Schedule, error) {
			return Build(topo, elems), nil
		},
		Supports: func(topo *topology.Topology) bool { return topo.Nodes() >= 2 },
	})
}
