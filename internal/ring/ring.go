// Package ring implements the Baidu-style ring all-reduce baseline of the
// paper (§II-B): data is split into N chunks; a reduce-scatter pass rotates
// partial sums around a unidirectional ring for N-1 steps, then an
// all-gather pass rotates the fully reduced chunks for another N-1 steps.
// Ring all-reduce is bandwidth-optimal but needs 2(N-1) algorithmic steps,
// and on Mesh/Torus topologies it leaves most links idle (§II-C).
package ring

import (
	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Algorithm is the schedule name used in reports.
const Algorithm = "ring"

// Build constructs the ring all-reduce schedule for elems gradient
// elements on the topology, embedding the ring with topo.RingOrder (a
// snake for grids, switch-major for indirect networks).
//
// Chunk c starts its reduction at ring position c+1 (as in Fig. 1 of the
// paper, where segment 0 is first sent from Node 1) and finishes at
// position c; the all-gather then pushes it forward from position c.
func Build(topo *topology.Topology, elems int) *collective.Schedule {
	order := topo.RingOrder()
	n := len(order)
	s := collective.NewSchedule(Algorithm, topo, elems, n)
	if n < 2 {
		return s
	}
	// last[c] is the most recent transfer of chunk c, the dependency of
	// the chunk's next hop.
	last := make([]collective.TransferID, n)
	for c := range last {
		last[c] = -1
	}
	addHop := func(c, srcPos, step int, op collective.Op) {
		dstPos := (srcPos + 1) % n
		var deps []collective.TransferID
		if last[c] >= 0 {
			deps = []collective.TransferID{last[c]}
		}
		last[c] = s.Add(collective.Transfer{
			Src: order[srcPos], Dst: order[dstPos],
			Op: op, Flow: c, Step: step, Deps: deps,
		})
	}
	// Reduce-scatter: at step t, chunk c moves from position (c+t) to
	// (c+t+1) mod n, accumulating.
	for t := 1; t <= n-1; t++ {
		for c := 0; c < n; c++ {
			addHop(c, (c+t)%n, t, collective.Reduce)
		}
	}
	// All-gather: at step t, chunk c moves from position (c+t-1) to (c+t).
	for t := 1; t <= n-1; t++ {
		for c := 0; c < n; c++ {
			addHop(c, (c+t-1)%n, n-1+t, collective.Gather)
		}
	}
	return s
}
