package core

import (
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// treeMemo caches one tree's proven search failures. Both facts rest on
// the same monotonicity: within a time step the link pool only shrinks
// and the tree only grows, so a breadth-first search that failed cannot
// start succeeding until the next step's fresh graph.
type treeMemo struct {
	// failedAt[p] is the construction step at which a search rooted at
	// parent p last failed for this tree; while the step is current the
	// parent is skipped without rescanning its frontier.
	failedAt []int32

	// dead[p] marks parents whose search failed without meeting a single
	// occupied link: it saw the parent's full statically-reachable
	// neighborhood and every candidate there was already in the tree.
	// The tree only grows, so such a parent can never extend it again,
	// on any step.
	dead []bool

	// deadCount is the number of dead parents still present in the
	// tree's eligible-parent list; growth compacts the list (dropping
	// dead entries, order preserved) once the count dominates, so find
	// stops re-skipping them every turn.
	deadCount int

	// skipStep/skipIdx memoize the leading run of the parent list that
	// is proven unable to extend the tree this step (dead, or failed at
	// skipStep). Both facts are monotone within a step, so the cursor
	// only advances; a new step resets it.
	skipStep int32
	skipIdx  int
}

func newTreeMemo(n int) *treeMemo {
	return &treeMemo{failedAt: make([]int32, n), dead: make([]bool, n)}
}

// markDead records a permanent failure, counting first-time marks so
// growth knows when compacting the parent list pays.
func (m *treeMemo) markDead(p topology.NodeID) {
	if !m.dead[p] {
		m.dead[p] = true
		m.deadCount++
	}
}

// pathFinder performs the per-parent breadth-first child search of
// Algorithm 1 line 10 (direct networks: a free one-hop edge) and its
// indirect-network extension §III-C3 (a free node-switch-...-node path).
type pathFinder struct {
	topo    *topology.Topology
	reverse bool

	// direct marks a switchless topology (every vertex an end node with
	// an integrated router). With full membership the breadth-first
	// search then degenerates to a scan of the parent's own out-links —
	// participating end nodes never relay, so the queue cannot grow —
	// and bfs takes a fast path that skips the epoch/queue machinery.
	direct bool

	// members, when non-nil, restricts candidate children to member nodes
	// (subset all-reduce, §VII-B); in direct networks non-member nodes'
	// routers still forward, so the search expands through them.
	members []bool

	// shortestFirst selects the Options.ShortestPathFirst allocation.
	shortestFirst bool

	// Search counters, maintained unconditionally (integer adds): turns
	// of Algorithm 1 line 10, the turns that found no free path, links
	// examined, and links skipped because another tree held them this
	// step. growTrees folds them into the phase counters at the end.
	searches      int64
	searchMisses  int64
	linksScanned  int64
	linkConflicts int64

	// touched, when non-nil, records every link whose pool bit a search
	// read — the read set that decides whether a speculative parallel
	// search may be committed without a replay.
	touched bitset

	// provisional defers this-step failure marks: sharded speculation
	// searches a per-shard pool that is neither a superset nor a subset
	// of the live pool, so a failedAt stamp derived from it is only
	// valid if the turn later commits with a clean read-set diff. In
	// provisional mode fresh failedAt marks land in failBuf for the
	// merge to flush or discard; dead marks are pool-independent (zero
	// conflicts seen means the full static neighborhood was explored)
	// and are always written through.
	provisional bool
	failBuf     []topology.NodeID

	// BFS scratch, reused across calls. A vertex counts as visited when
	// its stamp equals the current epoch, so each search starts without
	// clearing the arrays — the clear was the dominant cost of planning
	// direct networks, where a search is otherwise a one-hop scan.
	visitedAt []uint64
	epoch     uint64
	via       []topology.LinkID
	queue     []int
	rev       []topology.LinkID
}

func newPathFinder(topo *topology.Topology, reverse bool) *pathFinder {
	return &pathFinder{
		topo:      topo,
		reverse:   reverse,
		direct:    topo.Class() == topology.Direct && topo.Switches() == 0,
		visitedAt: make([]uint64, topo.Vertices()),
		via:       make([]topology.LinkID, topo.Vertices()),
	}
}

// fold accumulates the search counters into c.
func (f *pathFinder) fold(c *obs.PlanCounters) {
	c.Searches += f.searches
	c.SearchMisses += f.searchMisses
	c.LinksScanned += f.linksScanned
	c.LinkConflicts += f.linkConflicts
}

// markFailure records a failed search rooted at parent p. Zero fresh
// conflicts means the search saw the parent's full static neighborhood —
// the failure is permanent and pool-independent, so it is recorded even
// in provisional mode. Otherwise the failure only holds for this step on
// this pool; provisional searches buffer it for the merge to decide.
func (f *pathFinder) markFailure(m *treeMemo, p topology.NodeID, step int32, before int64) {
	if f.linkConflicts == before {
		m.markDead(p)
		return
	}
	if f.provisional {
		f.failBuf = append(f.failBuf, p)
		return
	}
	m.failedAt[p] = step
}

// find scans candidate parents in their order of addition and returns the
// first (child, parent, allocated path) reachable over free links, or
// child = -1 when no parent can extend the tree this step. With
// shortestFirst set it instead returns the globally shortest free path
// over all parents. A non-nil memo skips parents already proven unable to
// extend the tree (this step, or ever) and records fresh failures.
func (f *pathFinder) find(parents []topology.NodeID, inTree []bool, avail bitset, m *treeMemo, step int32) (topology.NodeID, topology.NodeID, []topology.LinkID) {
	f.searches++
	if m != nil {
		// Skip the leading run of parents already proven futile this
		// step in O(new failures) instead of re-testing them every turn.
		// Dense steps issue many turns per tree; without the cursor each
		// one rescans the same failed prefix.
		if m.skipStep != step {
			m.skipStep, m.skipIdx = step, 0
		}
		i := m.skipIdx
		for i < len(parents) && (m.dead[parents[i]] || m.failedAt[parents[i]] == step) {
			i++
		}
		m.skipIdx = i
		parents = parents[i:]
	}
	if !f.shortestFirst {
		for _, p := range parents {
			if m != nil && (m.dead[p] || m.failedAt[p] == step) {
				continue
			}
			before := f.linkConflicts
			if c, path := f.bfs(int(p), inTree, avail); c >= 0 {
				return c, p, path
			}
			if m != nil {
				f.markFailure(m, p, step, before)
			}
		}
		f.searchMisses++
		return -1, -1, nil
	}
	bestChild := topology.NodeID(-1)
	var bestParent topology.NodeID
	var bestPath []topology.LinkID
	for _, p := range parents {
		if m != nil && (m.dead[p] || m.failedAt[p] == step) {
			continue
		}
		before := f.linkConflicts
		c, path := f.bfs(int(p), inTree, avail)
		if c < 0 {
			if m != nil {
				f.markFailure(m, p, step, before)
			}
			continue
		}
		if bestChild < 0 || len(path) < len(bestPath) {
			bestChild, bestParent, bestPath = c, p, path
			if len(bestPath) <= 1 || (f.topo.Class() == topology.Indirect && len(bestPath) == 2) {
				break // cannot do better than a direct / same-switch hop
			}
		}
	}
	if bestChild < 0 {
		f.searchMisses++
	}
	return bestChild, bestParent, bestPath
}

// bfs searches from parent vertex start over available links. Expansion
// passes only through switch vertices; the first node vertex found that is
// not yet in the tree is returned together with its link path. Out-links
// are scanned in the topology's preference order (or reversed for the
// ablation), so one-hop children and Y-dimension neighbors win ties.
func (f *pathFinder) bfs(start int, inTree []bool, avail bitset) (topology.NodeID, []topology.LinkID) {
	t := f.topo
	if f.direct && f.members == nil {
		// Switchless fabric, full membership: every out-neighbor is an
		// end node, and end nodes already in the tree cannot relay, so
		// the search begins and ends at start's own links. Same scan
		// order, same counters, same result as the general loop below —
		// minus the visited stamps and queue it cannot need. Duplicate
		// destinations (parallel links) need no visited check either: a
		// free link to a new node returns immediately, so a repeated
		// destination can only be one already in the tree.
		links := t.Out(start)
		for li := 0; li < len(links); li++ {
			id := links[li]
			if f.reverse {
				id = links[len(links)-1-li]
			}
			f.linksScanned++
			if f.touched != nil {
				f.touched.set(int(id))
			}
			if !avail.test(int(id)) {
				f.linkConflicts++
				continue
			}
			if w := t.Link(id).Dst; !inTree[w] {
				return topology.NodeID(w), []topology.LinkID{id}
			}
		}
		return -1, nil
	}
	f.epoch++
	if f.epoch == 0 { // stamp wraparound: invalidate everything once
		for i := range f.visitedAt {
			f.visitedAt[i] = 0
		}
		f.epoch = 1
	}
	e := f.epoch
	f.visitedAt[start] = e
	f.queue = f.queue[:0]
	f.queue = append(f.queue, start)
	for qi := 0; qi < len(f.queue); qi++ {
		v := f.queue[qi]
		links := t.Out(v)
		for li := 0; li < len(links); li++ {
			id := links[li]
			if f.reverse {
				id = links[len(links)-1-li]
			}
			f.linksScanned++
			if f.touched != nil {
				f.touched.set(int(id))
			}
			if !avail.test(int(id)) {
				f.linkConflicts++
				continue
			}
			w := t.Link(id).Dst
			if f.visitedAt[w] == e {
				continue
			}
			f.visitedAt[w] = e
			f.via[w] = id
			if t.IsNode(w) {
				if f.members != nil && !f.members[w] {
					// Non-member accelerator: not a candidate child, but
					// its integrated router forwards in direct networks.
					if t.Class() == topology.Direct {
						f.queue = append(f.queue, w)
					}
					continue
				}
				if !inTree[w] {
					return topology.NodeID(w), f.pathTo(w, start)
				}
				continue // cannot relay through a participating end node
			}
			f.queue = append(f.queue, w)
		}
	}
	return -1, nil
}

// pathTo reconstructs the link path start -> v from the via array.
func (f *pathFinder) pathTo(v, start int) []topology.LinkID {
	f.rev = f.rev[:0]
	for u := v; u != start; u = f.topo.Link(f.via[u]).Src {
		f.rev = append(f.rev, f.via[u])
	}
	path := make([]topology.LinkID, len(f.rev))
	for i, id := range f.rev {
		path[len(f.rev)-1-i] = id
	}
	return path
}
