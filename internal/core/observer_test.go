package core

import (
	"bytes"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/ni"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// TestPlanObserverNilZeroAlloc pins the cost contract of the planner
// instrumentation: with no observer attached, the hot search path — the
// per-turn find over a saturated tree set, where misses dominate dense
// steps — performs zero allocations. The search counters are plain
// integer fields, so this also proves counting them is free of heap
// traffic.
func TestPlanObserverNilZeroAlloc(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	f := newPathFinder(topo, false)
	inTree := make([]bool, topo.Nodes())
	for i := range inTree {
		inTree[i] = true // every node attached: the search must miss
	}
	avail := newBitset(len(topo.Links()))
	avail.fill()
	parents := []topology.NodeID{0, 1, 2, 3}
	// A memo would skip the repeated misses outright; search with none so
	// the full frontier rescan is what gets measured.
	// Warm the scratch queue so steady-state reuse is what gets measured.
	f.find(parents, inTree, avail, nil, 1)
	if allocs := testing.AllocsPerRun(200, func() {
		if c, _, _ := f.find(parents, inTree, avail, nil, 1); c >= 0 {
			t.Fatal("search unexpectedly found a child")
		}
	}); allocs != 0 {
		t.Fatalf("nil-observer search path allocates %.1f per find, want 0", allocs)
	}

	f.shortestFirst = true
	if allocs := testing.AllocsPerRun(200, func() {
		f.find(parents, inTree, avail, nil, 1)
	}); allocs != 0 {
		t.Fatalf("shortest-first search path allocates %.1f per find, want 0", allocs)
	}
}

// TestObserverDoesNotChangeSchedule proves the golden property of the
// instrumentation: attaching an observer changes no byte of the planner's
// output. Exercises both the direct path and the Auto path (two growth
// runs, two lowerings, variant scoring).
func TestObserverDoesNotChangeSchedule(t *testing.T) {
	cases := []*topology.Topology{
		topology.Torus(4, 4, cfg()),
		topology.BiGraph(4, 4, cfg()), // DefaultOptions enables Auto here
	}
	for _, topo := range cases {
		opts := DefaultOptions(topo)
		plain, err := Build(topo, 1<<12, opts)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		opts.Observer = obs.NewPlanProfile()
		observed, err := Build(topo, 1<<12, opts)
		if err != nil {
			t.Fatalf("%s observed: %v", topo.Name(), err)
		}
		var a, b bytes.Buffer
		if err := collective.Export(&a, plain); err != nil {
			t.Fatal(err)
		}
		if err := collective.Export(&b, observed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: observed build exports different bytes (%d vs %d)",
				topo.Name(), a.Len(), b.Len())
		}
	}
}

// TestPlanProfilePhases checks the recorded breakdown of an observed
// build: phase set, counter arithmetic, progress and pipeline end state.
func TestPlanProfilePhases(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	n := topo.Nodes()
	p := obs.NewPlanProfile()
	s, err := Build(topo, 1<<12, Options{Observer: p})
	if err != nil {
		t.Fatal(err)
	}

	byPhase := map[obs.PlanPhase]obs.PhaseProfile{}
	for _, ph := range p.Phases() {
		byPhase[ph.Phase] = ph
	}
	growth, ok := byPhase[obs.PhaseTreeGrowth]
	if !ok {
		t.Fatal("no tree-growth phase recorded")
	}
	if want := int64(n * (n - 1)); growth.Counters.NodesAttached != want {
		t.Errorf("attachments = %d, want %d", growth.Counters.NodesAttached, want)
	}
	if growth.Counters.TreesGrown != int64(n) {
		t.Errorf("trees grown = %d, want %d", growth.Counters.TreesGrown, n)
	}
	if growth.Counters.Steps == 0 || growth.Counters.Searches == 0 || growth.Counters.LinksScanned == 0 {
		t.Errorf("growth counters empty: %+v", growth.Counters)
	}
	if growth.Counters.LinksAllocated < growth.Counters.NodesAttached {
		t.Errorf("links allocated %d < attachments %d", growth.Counters.LinksAllocated, growth.Counters.NodesAttached)
	}
	lower, ok := byPhase[obs.PhaseLowering]
	if !ok {
		t.Fatal("no lowering phase recorded")
	}
	if lower.Counters.Transfers != int64(len(s.Transfers)) {
		t.Errorf("lowering transfers = %d, want %d", lower.Counters.Transfers, len(s.Transfers))
	}

	// Lowering emits progress after tree growth, so the final sample is
	// the lowering phase completing all transfers.
	phase, done, total := p.Progress()
	if phase != obs.PhaseLowering || done != total || total != int64(len(s.Transfers)) {
		t.Errorf("final progress %v %d/%d", phase, done, total)
	}
	pdone, ptotal := p.PipelineProgress()
	if ptotal == 0 || pdone != ptotal {
		t.Errorf("pipeline did not complete: %d/%d", pdone, ptotal)
	}

	// The NI compilation joins the same profile as its own phase.
	trees, err := collective.TreesFromSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ni.CompileObserved(trees, n, p)
	if err != nil {
		t.Fatal(err)
	}
	var entries int64
	for _, tab := range ts.PerNode {
		entries += int64(len(tab.Entries))
	}
	var found bool
	for _, ph := range p.Phases() {
		if ph.Phase == obs.PhaseNICompile {
			found = true
			if ph.Counters.TableEntries != entries {
				t.Errorf("ni-compile entries = %d, want %d", ph.Counters.TableEntries, entries)
			}
		}
	}
	if !found {
		t.Error("no ni-compile phase recorded")
	}
}

// TestPlanProfileAutoRuns: the Auto path runs tree-growth and lowering
// twice and scores once, all visible in the profile.
func TestPlanProfileAutoRuns(t *testing.T) {
	topo := topology.BiGraph(4, 4, cfg())
	p := obs.NewPlanProfile()
	if _, err := Build(topo, 1<<12, Options{Auto: true, Observer: p}); err != nil {
		t.Fatal(err)
	}
	runs := map[obs.PlanPhase]int64{}
	for _, ph := range p.Phases() {
		runs[ph.Phase] = ph.Runs
	}
	if runs[obs.PhaseTreeGrowth] != 2 {
		t.Errorf("tree-growth runs = %d, want 2", runs[obs.PhaseTreeGrowth])
	}
	if runs[obs.PhaseLowering] != 2 {
		t.Errorf("lowering runs = %d, want 2", runs[obs.PhaseLowering])
	}
	if runs[obs.PhaseVariantScore] != 1 {
		t.Errorf("variant-score runs = %d, want 1", runs[obs.PhaseVariantScore])
	}
}

// BenchmarkPlanObserverOverhead quantifies the cost of an attached
// PlanProfile against the nil baseline on a full 8x8 torus construction:
// callbacks fire at phase and step boundaries only, so the delta should
// be within noise (<1%).
func BenchmarkPlanObserverOverhead(b *testing.B) {
	topo := topology.Torus(8, 8, cfg())
	b.Run("nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := BuildTrees(topo, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("profile", func(b *testing.B) {
		p := obs.NewPlanProfile()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := BuildTrees(topo, Options{Observer: p}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
