package core

import (
	"math"

	"multitree/internal/collective"
	"multitree/internal/network"
)

// scoreSchedule predicts a schedule's completion time with the fluid
// engine under the Table III configuration — cheap enough (milliseconds)
// to run at schedule-build time, and exact for the contention-free
// schedules MultiTree produces. Build's Auto mode uses it to choose
// between the first-parent and shortest-path tree sets for a given data
// size.
func scoreSchedule(s *collective.Schedule) float64 {
	res, err := network.SimulateFluid(s, network.DefaultConfig())
	if err != nil {
		return math.Inf(1)
	}
	return float64(res.Cycles)
}
