package core

import (
	"testing"
	"testing/quick"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

func cfg() topology.LinkConfig { return topology.DefaultLinkConfig() }

func buildOrFail(t *testing.T, topo *topology.Topology, opts Options) []*collective.Tree {
	t.Helper()
	trees, err := BuildTrees(topo, opts)
	if err != nil {
		t.Fatalf("BuildTrees(%s): %v", topo.Name(), err)
	}
	return trees
}

// checkInvariants verifies the structural guarantees of Algorithm 1:
// one valid spanning tree per node, every edge a valid allocated path, and
// no two same-step edges sharing a link.
func checkInvariants(t *testing.T, topo *topology.Topology, trees []*collective.Tree) {
	t.Helper()
	n := topo.Nodes()
	if len(trees) != n {
		t.Fatalf("%s: %d trees, want %d", topo.Name(), len(trees), n)
	}
	type stepLink struct {
		step int
		link topology.LinkID
	}
	used := map[stepLink]int{}
	for i, tr := range trees {
		if tr.Root != topology.NodeID(i) {
			t.Fatalf("%s: tree %d rooted at %d", topo.Name(), i, tr.Root)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		for node := 0; node < n; node++ {
			id := topology.NodeID(node)
			if id == tr.Root {
				continue
			}
			path := tr.Path[id]
			if len(path) == 0 {
				t.Fatalf("%s: tree %d edge to %d has no allocated path", topo.Name(), i, id)
			}
			// Path runs parent -> child through switches only.
			cur := int(tr.Parent[id])
			for h, l := range path {
				link := topo.Link(l)
				if link.Src != cur {
					t.Fatalf("%s: tree %d path to %d discontiguous", topo.Name(), i, id)
				}
				if h < len(path)-1 && topo.IsNode(link.Dst) {
					t.Fatalf("%s: tree %d path to %d relays through node %d",
						topo.Name(), i, id, link.Dst)
				}
				cur = link.Dst
				used[stepLink{tr.AGStep[id], l}]++
			}
			if cur != int(id) {
				t.Fatalf("%s: tree %d path ends at %d, want %d", topo.Name(), i, cur, id)
			}
			if topo.Class() == topology.Direct && len(path) != 1 {
				t.Fatalf("%s: direct-network edge spans %d hops", topo.Name(), len(path))
			}
		}
	}
	for sl, count := range used {
		if count > 1 {
			t.Fatalf("%s: link %d allocated %d times at step %d",
				topo.Name(), sl.link, count, sl.step)
		}
	}
}

func TestInvariantsAcrossTopologies(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.Mesh(2, 2, cfg()),
		topology.Mesh(4, 4, cfg()),
		topology.Mesh(5, 3, cfg()),
		topology.Torus(4, 4, cfg()),
		topology.Torus(8, 8, cfg()),
		topology.FatTree(4, 4, 4, cfg()),
		topology.FatTree(8, 8, 8, cfg()),
		topology.BiGraph(4, 4, cfg()),
		topology.BiGraph(8, 4, cfg()),
	} {
		checkInvariants(t, topo, buildOrFail(t, topo, Options{}))
	}
}

// TestFig3Example pins the §III-B walkthrough: on the 2x2 Mesh each tree
// reaches three nodes in two time steps, with two children attached at
// step 1 and one at step 2 — the shape of Fig. 3c-e.
func TestFig3Example(t *testing.T) {
	topo := topology.Mesh(2, 2, cfg())
	trees := buildOrFail(t, topo, Options{})
	for _, tr := range trees {
		if h := tr.Height(); h != 2 {
			t.Errorf("tree %d height %d, want 2", tr.Flow, h)
		}
		byStep := map[int]int{}
		for n, p := range tr.Parent {
			if p >= 0 && topology.NodeID(n) != tr.Root {
				byStep[tr.AGStep[n]]++
			}
		}
		if byStep[1] != 2 || byStep[2] != 1 {
			t.Errorf("tree %d adds %v per step, want {1:2, 2:1}", tr.Flow, byStep)
		}
	}
	// Root's two step-1 children must be its physical neighbors, with the
	// Y neighbor attached via the Y link (preference order).
	tr := trees[0]
	kids := tr.Children()[0]
	if len(kids) != 2 {
		t.Fatalf("root 0 has %d children, want 2", len(kids))
	}
}

// TestGridStepsNearDiameter: on a symmetric torus the all-gather phase
// completes within a small factor of the bandwidth lower bound
// |trees|*(N-1) edges / |links| steps.
func TestGridStepsNearDiameter(t *testing.T) {
	for _, tc := range []struct {
		topo     *topology.Topology
		maxSteps int
	}{
		{topology.Torus(4, 4, cfg()), 9},  // lower bound ceil(16*15/64)=4
		{topology.Torus(8, 8, cfg()), 20}, // lower bound ceil(64*63/256)=16
		{topology.Mesh(4, 4, cfg()), 14},  // fewer links, asymmetric
	} {
		trees := buildOrFail(t, tc.topo, Options{})
		tot := 0
		for _, tr := range trees {
			if h := tr.Height(); h > tot {
				tot = h
			}
		}
		if tot > tc.maxSteps {
			t.Errorf("%s: %d all-gather steps, want <= %d", tc.topo.Name(), tot, tc.maxSteps)
		}
	}
}

// TestBuildCorrectness is the end-to-end property: the lowered schedule
// all-reduces correctly on random-shaped grids (testing/quick supplies
// the shapes).
func TestBuildCorrectness(t *testing.T) {
	f := func(a, b uint8, wrap bool) bool {
		nx := 2 + int(a)%4
		ny := 2 + int(b)%4
		var topo *topology.Topology
		if wrap {
			topo = topology.Torus(nx, ny, cfg())
		} else {
			topo = topology.Mesh(nx, ny, cfg())
		}
		s, err := Build(topo, 257, Options{})
		if err != nil {
			return false
		}
		return collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), 257)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOptionsVariantsStayValid: both tree orders and both neighbor orders
// keep the invariants and correctness.
func TestOptionsVariantsStayValid(t *testing.T) {
	topo := topology.Mesh(4, 8, cfg())
	for _, opts := range []Options{
		{Order: RoundRobinByRoot},
		{Order: ByRemainingHeight},
		{ReverseNeighborOrder: true},
		{Order: ByRemainingHeight, ReverseNeighborOrder: true},
	} {
		trees := buildOrFail(t, topo, opts)
		checkInvariants(t, topo, trees)
		s, err := collective.TreesToSchedule(Algorithm, topo, 512, trees)
		if err != nil {
			t.Fatal(err)
		}
		if err := collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), 512)); err != nil {
			t.Errorf("%+v: %v", opts, err)
		}
	}
}

func TestBuildRejectsTinySystems(t *testing.T) {
	topo := topology.Mesh(2, 2, cfg())
	if _, err := Build(topo, 16, Options{}); err != nil {
		t.Fatalf("2x2 build failed: %v", err)
	}
	// One node: nothing to reduce.
	c := topology.NewCustom("solo", 1, 0)
	solo, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTrees(solo, Options{}); err == nil {
		t.Error("single-node system accepted")
	}
}

// TestDeterminism: two builds of the same topology produce identical
// trees — required for the static schedule tables of §IV-A.
func TestDeterminism(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	a := buildOrFail(t, topo, Options{})
	b := buildOrFail(t, topo, Options{})
	for i := range a {
		for n := range a[i].Parent {
			if a[i].Parent[n] != b[i].Parent[n] || a[i].AGStep[n] != b[i].AGStep[n] {
				t.Fatalf("tree %d differs between builds at node %d", i, n)
			}
		}
	}
}

// TestBalancedParticipation: every node is an internal or leaf node of
// every other tree (each node both roots one flow and serves all others),
// the full-bidirectional-bandwidth property of §VIII-A.
func TestBalancedParticipation(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	trees := buildOrFail(t, topo, Options{})
	sends := make([]int, topo.Nodes())
	for _, tr := range trees {
		for n, p := range tr.Parent {
			if p >= 0 {
				sends[p]++ // parent sends to child during all-gather
				sends[n]++ // child sends to parent during reduce-scatter
			}
		}
	}
	min, max := sends[0], sends[0]
	for _, s := range sends {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	// Total directed sends are 2*N*(N-1); perfect balance is 2*(N-1) per
	// node. Allow modest skew.
	if max > 3*min {
		t.Errorf("send load skew %d..%d too large", min, max)
	}
}
