package core

import (
	"bytes"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

// TestParallelGrowthIdenticalSchedules pins the determinism contract of
// speculative parallel growth: for any worker count, Build emits a
// schedule byte-identical (through the canonical IR encoding) to the
// sequential one, on direct and switch-based fabrics, under both tree
// orders and both allocation strategies.
func TestParallelGrowthIdenticalSchedules(t *testing.T) {
	cfgs := []struct {
		name string
		topo *topology.Topology
		opts func(*topology.Topology) Options
	}{
		{"torus-4x4", topology.Torus(4, 4, cfg()), DefaultOptions},
		{"mesh-4x4", topology.Mesh(4, 4, cfg()), DefaultOptions},
		{"mesh-8x8", topology.Mesh(8, 8, cfg()), DefaultOptions},
		{"bigraph-4x4", topology.BiGraph(4, 4, cfg()), DefaultOptions}, // Auto: both variants + scoring
		{"fattree", topology.FatTree(4, 4, 4, cfg()), DefaultOptions},
		{"torus-4x4-byheight", topology.Torus(4, 4, cfg()), func(*topology.Topology) Options {
			return Options{Order: ByRemainingHeight}
		}},
		{"mesh-4x4-reverse", topology.Mesh(4, 4, cfg()), func(*topology.Topology) Options {
			return Options{ReverseNeighborOrder: true}
		}},
		{"bigraph-shortest", topology.BiGraph(4, 4, cfg()), func(*topology.Topology) Options {
			return Options{ShortestPathFirst: true}
		}},
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			want := exportBuild(t, tc.topo, tc.opts(tc.topo), 0)
			for _, workers := range []int{2, 3, 8} {
				got := exportBuild(t, tc.topo, tc.opts(tc.topo), workers)
				if !bytes.Equal(want, got) {
					t.Fatalf("workers=%d schedule differs from sequential build", workers)
				}
			}
		})
	}
}

func exportBuild(t *testing.T, topo *topology.Topology, opts Options, workers int) []byte {
	t.Helper()
	opts.Workers = workers
	s, err := Build(topo, 1<<12, opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := collective.Export(&buf, s); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// TestParallelGrowthTreesMatch checks BuildTrees (the no-lowering entry
// point) too: edges, steps and pinned paths must match the sequential
// trees exactly.
func TestParallelGrowthTreesMatch(t *testing.T) {
	topo := topology.Torus(6, 6, cfg())
	opts := DefaultOptions(topo)
	seq, err := BuildTrees(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := BuildTrees(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("tree count %d != %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].String() != par[i].String() {
			t.Fatalf("tree %d differs:\nsequential %s\nparallel   %s", i, seq[i], par[i])
		}
		for node, p := range seq[i].Path {
			got := par[i].Path[node]
			if len(got) != len(p) {
				t.Fatalf("tree %d node %d path length differs", i, node)
			}
			for j := range p {
				if got[j] != p[j] {
					t.Fatalf("tree %d node %d path differs", i, node)
				}
			}
		}
	}
}
