package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/topology"
)

// TestGeneralityNewFabrics: MultiTree schedules contention-free, correct
// all-reduce on 3D tori and dragonflies with no topology-specific code —
// the §VII generality claim stretched beyond the paper's evaluated set.
func TestGeneralityNewFabrics(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.Torus3D(4, 4, 4, cfg()),
		topology.Mesh3D(2, 3, 4, cfg()),
		topology.Dragonfly(4, 4, 2, cfg()),
	} {
		trees, err := BuildTrees(topo, Options{})
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		checkInvariants(t, topo, trees)
		s, err := collective.TreesToSchedule(Algorithm, topo, 700, trees)
		if err != nil {
			t.Fatal(err)
		}
		if err := collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), 700)); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

// TestMultiTreeBeatsRingOn3DTorus: the richer link set of a 3D torus (6
// links/node) widens MultiTree's advantage over ring all-reduce.
func TestMultiTreeBeatsRingOn3DTorus(t *testing.T) {
	topo := topology.Torus3D(4, 4, 4, cfg())
	elems := (4 << 20) / 4
	mt, err := Build(topo, elems, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := network.SimulateFluid(mt, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Ring is NIC-pair-bound at ~8 GB/s; MultiTree should exceed 3x that
	// here (it reached 3.7x on the 4-link 2D torus).
	if bw := mres.BandwidthBytesPerCycle(4 << 20); bw < 24 {
		t.Errorf("multitree on torus3d = %.1f GB/s, want > 24", bw)
	}
}

// randomConnectedTopology builds a random direct network: a spanning tree
// plus extra random edges, deterministic per seed.
func randomConnectedTopology(seed int64, nodes int) *topology.Topology {
	rng := rand.New(rand.NewSource(seed))
	c := topology.NewCustom("rand", nodes, 0)
	type pair struct{ a, b int }
	have := map[pair]bool{}
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if have[pair{a, b}] {
			return
		}
		have[pair{a, b}] = true
		c.Link(a, b, cfg())
	}
	for v := 1; v < nodes; v++ {
		add(v, rng.Intn(v))
	}
	extra := nodes / 2
	for i := 0; i < extra; i++ {
		add(rng.Intn(nodes), rng.Intn(nodes))
	}
	topo, err := c.Build()
	if err != nil {
		panic(err)
	}
	return topo
}

// TestRandomTopologiesProperty: on arbitrary connected direct networks —
// the "general purpose cluster networks" of §VII-B — the construction
// terminates, keeps its invariants, stays contention-free, and the
// schedule all-reduces correctly.
func TestRandomTopologiesProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		nodes := 3 + int(sz)%14
		topo := randomConnectedTopology(seed, nodes)
		trees, err := BuildTrees(topo, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, tr := range trees {
			if tr.Validate() != nil {
				return false
			}
		}
		s, err := collective.TreesToSchedule(Algorithm, topo, 333, trees)
		if err != nil {
			return false
		}
		if !collective.Analyze(s).ContentionFree() {
			return false
		}
		return collective.VerifyAllReduce(s, collective.RampInputs(nodes, 333)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLinkFailureRebuild models the dynamic-systems case of §III-C1: a
// link fails, the runtime rebuilds the topology without it, and
// Algorithm 1 re-derives a correct contention-free schedule over the
// degraded fabric.
func TestLinkFailureRebuild(t *testing.T) {
	// A 4x4 mesh with one failed cable, rebuilt as a custom topology.
	nx, ny := 4, 4
	failA, failB := 5, 6 // interior horizontal cable
	c := topology.NewCustom("mesh-degraded", nx*ny, 0)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx && !(id(x, y) == failA && id(x+1, y) == failB) {
				c.Link(id(x, y), id(x+1, y), cfg())
			}
			if y+1 < ny {
				c.Link(id(x, y), id(x, y+1), cfg())
			}
		}
	}
	topo, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(topo, 640, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), 640)); err != nil {
		t.Fatal(err)
	}
	if a := collective.Analyze(s); !a.ContentionFree() {
		t.Errorf("degraded-fabric schedule contends: %v", a)
	}
	// The failed link must not appear on any allocated path.
	for i := range s.Transfers {
		for _, l := range s.PathOf(&s.Transfers[i]) {
			link := s.Topo.Link(l)
			if (link.Src == failA && link.Dst == failB) || (link.Src == failB && link.Dst == failA) {
				t.Fatalf("schedule uses the failed link %d<->%d", failA, failB)
			}
		}
	}
}

// TestNodeFailureSubset: a node fails entirely; the survivors re-form the
// collective via the subset path, routing around the dead node's links
// only if the topology still carries them (here we drop the node from
// membership while its router keeps forwarding — the §VII-B dynamic
// allocation story).
func TestNodeFailureSubset(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	dead := topology.NodeID(5)
	var survivors []topology.NodeID
	for n := 0; n < topo.Nodes(); n++ {
		if topology.NodeID(n) != dead {
			survivors = append(survivors, topology.NodeID(n))
		}
	}
	s, err := BuildSubset(topo, survivors, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := collective.RampInputs(topo.Nodes(), 480)
	if err := VerifySubsetAllReduce(s, survivors, in); err != nil {
		t.Fatal(err)
	}
	for i := range s.Transfers {
		tr := &s.Transfers[i]
		if tr.Src == dead || tr.Dst == dead {
			t.Fatalf("dead node %d participates in transfer %d", dead, i)
		}
	}
}
