package core

import (
	"bytes"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/faults"
	"multitree/internal/topology"
)

// TestShardedGrowthIdenticalSchedules pins the determinism contract of
// sharded tree growth: for any shard count, Build emits a schedule
// byte-identical (through the canonical binary IR encoding) to the
// unsharded one — on grid fabrics (tile assignment), switch fabrics and
// degraded custom fabrics (band assignment), under both tree orders.
func TestShardedGrowthIdenticalSchedules(t *testing.T) {
	cfgs := []struct {
		name string
		topo *topology.Topology
		opts func(*topology.Topology) Options
	}{
		{"mesh-16x16", topology.Mesh(16, 16, cfg()), DefaultOptions},
		{"torus-8x8", topology.Torus(8, 8, cfg()), DefaultOptions},
		{"torus-8x8-byheight", topology.Torus(8, 8, cfg()), func(*topology.Topology) Options {
			return Options{Order: ByRemainingHeight}
		}},
		{"mesh-8x8-reverse", topology.Mesh(8, 8, cfg()), func(*topology.Topology) Options {
			return Options{ReverseNeighborOrder: true}
		}},
		{"bigraph-4x4", topology.BiGraph(4, 4, cfg()), DefaultOptions}, // Auto + band assignment
		{"torus-8x8-faulted", degradedTorus8x8(t), DefaultOptions},     // custom rebuild: no grid coords
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			want := exportBinaryBuild(t, tc.topo, tc.opts(tc.topo), 0, 0)
			for _, shards := range []int{1, 2, 4, 16} {
				got := exportBinaryBuild(t, tc.topo, tc.opts(tc.topo), 0, shards)
				if !bytes.Equal(want, got) {
					t.Fatalf("shards=%d schedule differs from unsharded build", shards)
				}
			}
			// Shards wins over Workers for the growth rounds; the
			// combination must stay byte-identical too.
			got := exportBinaryBuild(t, tc.topo, tc.opts(tc.topo), 2, 4)
			if !bytes.Equal(want, got) {
				t.Fatalf("workers=2 shards=4 schedule differs from unsharded build")
			}
		})
	}
}

// degradedTorus8x8 applies a non-disconnecting fault plan to a torus-8x8
// and returns the rebuilt (custom, coordinate-free) fabric, the shape a
// re-plan after faults.Apply sees.
func degradedTorus8x8(t testing.TB) *topology.Topology {
	plan, err := faults.ParseSpec("link:0-1:down,link:9-10:down,node:63:down")
	if err != nil {
		t.Fatal(err)
	}
	d, err := faults.Apply(topology.Torus(8, 8, cfg()), plan)
	if err != nil {
		t.Fatal(err)
	}
	return d.Topo
}

func exportBinaryBuild(t *testing.T, topo *topology.Topology, opts Options, workers, shards int) []byte {
	t.Helper()
	opts.Workers = workers
	opts.Shards = shards
	s, err := Build(topo, 1<<12, opts)
	if err != nil {
		t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
	}
	var buf bytes.Buffer
	if err := collective.ExportBinary(&buf, s); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// TestShardAssignGrid pins the geometric partition: four shards on a
// mesh are its quadrants, and every shard is non-empty.
func TestShardAssignGrid(t *testing.T) {
	topo := topology.Mesh(8, 8, cfg())
	of := shardAssign(topo, 64, 4)
	counts := make([]int, 4)
	for i, s := range of {
		c, ok := topo.NodeCoord(topology.NodeID(i))
		if !ok {
			t.Fatalf("node %d has no coord", i)
		}
		want := 0
		if c.X >= 4 {
			want++
		}
		if c.Y >= 4 {
			want += 2
		}
		if s != want {
			t.Fatalf("node %d (%d,%d): shard %d, want quadrant %d", i, c.X, c.Y, s, want)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n != 16 {
			t.Fatalf("quadrant %d holds %d roots, want 16", s, n)
		}
	}
}

// TestShardAssignBands covers the fallback for fabrics without grid
// coordinates: contiguous id bands, all shards populated.
func TestShardAssignBands(t *testing.T) {
	topo := degradedTorus8x8(t)
	k := topo.Nodes()
	of := shardAssign(topo, k, 4)
	last := 0
	counts := make([]int, 4)
	for i, s := range of {
		if s < last || s > 3 {
			t.Fatalf("root %d: shard %d not a monotone band", i, s)
		}
		last = s
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("band %d empty", s)
		}
	}
}
