package core

import (
	"testing"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

// TestSubsetAllReduceCorrect: an all-reduce over half the torus reaches
// exactly the members and leaves bystanders untouched.
func TestSubsetAllReduceCorrect(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	// Every other node participates (a checkerboard of the 2D grid, the
	// kind of slice hybrid parallelism produces).
	var members []topology.NodeID
	for n := 0; n < topo.Nodes(); n += 2 {
		members = append(members, topology.NodeID(n))
	}
	s, err := BuildSubset(topo, members, 640, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Flows) != len(members) {
		t.Errorf("%d flows, want %d", len(s.Flows), len(members))
	}
	in := collective.RampInputs(topo.Nodes(), 640)
	if err := VerifySubsetAllReduce(s, members, in); err != nil {
		t.Fatal(err)
	}
}

// TestSubsetContentionFree: the per-step allocation discipline holds for
// subsets too.
func TestSubsetContentionFree(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	members := []topology.NodeID{0, 3, 5, 10, 12, 15}
	s, err := BuildSubset(topo, members, 4096, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a := collective.Analyze(s); !a.ContentionFree() {
		t.Errorf("subset schedule contends: %v", a)
	}
}

// TestSubsetOnIndirect: members spread across switches of a fat tree.
func TestSubsetOnIndirect(t *testing.T) {
	topo := topology.FatTree(4, 4, 4, cfg())
	members := []topology.NodeID{1, 2, 6, 9, 13, 14}
	s, err := BuildSubset(topo, members, 999, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := collective.RampInputs(topo.Nodes(), 999)
	if err := VerifySubsetAllReduce(s, members, in); err != nil {
		t.Fatal(err)
	}
}

// TestSubsetThroughBystanders: two members at opposite corners of a mesh
// must connect through non-member routers.
func TestSubsetThroughBystanders(t *testing.T) {
	topo := topology.Mesh(4, 4, cfg())
	members := []topology.NodeID{0, 15}
	s, err := BuildSubset(topo, members, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxHops := 0
	for i := range s.Transfers {
		if h := len(s.PathOf(&s.Transfers[i])); h > maxHops {
			maxHops = h
		}
	}
	if maxHops < 6 {
		t.Errorf("corner-to-corner path spans %d links, want 6", maxHops)
	}
	in := collective.RampInputs(topo.Nodes(), 100)
	if err := VerifySubsetAllReduce(s, members, in); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetErrors(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	if _, err := BuildSubset(topo, []topology.NodeID{3}, 100, Options{}); err == nil {
		t.Error("single-member subset accepted")
	}
	if _, err := BuildSubset(topo, []topology.NodeID{1, 99}, 100, Options{}); err == nil {
		t.Error("out-of-range member accepted")
	}
	// Duplicates collapse.
	if _, err := BuildSubset(topo, []topology.NodeID{1, 1, 1}, 100, Options{}); err == nil {
		t.Error("duplicate single member accepted")
	}
}

// TestSubsetFullMembershipDelegates: passing every node gives the standard
// build.
func TestSubsetFullMembershipDelegates(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	var all []topology.NodeID
	for n := 0; n < topo.Nodes(); n++ {
		all = append(all, topology.NodeID(n))
	}
	trees, err := BuildSubsetTrees(topo, all, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != topo.Nodes() || trees[0].Members != nil {
		t.Errorf("full membership did not delegate to the standard path")
	}
}
