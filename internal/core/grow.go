package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// This file is the tree-growth engine behind BuildTrees: Algorithm 1's
// main loop over a word-packed per-step link pool, with memoized search
// failures and optional speculative parallel turns. Whatever the worker
// count, the trees produced are byte-identical to a sequential run —
// parallelism and memoization only skip work whose outcome is already
// proven.
//
// Three facts carry all of the pruning, each a consequence of the same
// step invariant (within a time step the link pool only shrinks, a tree
// only grows, and the eligible-parent lists are frozen):
//
//   - A tree whose turn found no free path stays stuck for the rest of
//     the step (stalledAt).
//   - A parent whose search failed this step keeps failing this step
//     (treeMemo.failedAt).
//   - A parent whose search failed without meeting one occupied link has
//     seen its entire reachable neighborhood already in the tree; it is
//     dead for every future step too (treeMemo.dead).
//
// Parallel rounds speculate: every still-active tree searches the
// round-start pool snapshot concurrently while recording the links it
// read. Commits then replay the sequential turn order; a speculative
// result whose read set is disjoint from the links earlier turns claimed
// is provably the result the sequential search would have produced, and
// only the others re-run against the live pool.

// growth is the scratch state of one Algorithm 1 run.
type growth struct {
	topo *topology.Topology
	opts Options
	n, k int

	trees   []*collective.Tree
	inTree  [][]bool
	members []int
	parents [][]topology.NodeID // usable as parents (added in previous steps), in addition order
	pending [][]topology.NodeID // added during the current step, merged at step end
	memo    []*treeMemo

	// stalledAt[ti] stamps the step whose link pool tree ti exhausted:
	// its turn found no free path, so it sits out the step's remaining
	// rounds.
	stalledAt []int32

	ecc []int

	avail bitset      // the step's link pool: set = free
	seq   *pathFinder // the sequential / commit-path finder

	c obs.PlanCounters

	// treeOrder scratch, reused every round.
	orderIdx []int
	orderRem []int

	// Speculative-round state, allocated for Workers > 1 or Shards > 1.
	workers     int
	finders     []*pathFinder
	roundAvail  bitset // pool snapshot the round's speculation ran against
	claimed     bitset // links committed by earlier turns this round
	active      []int  // trees taking a turn this round, in turn order
	specChild   []topology.NodeID
	specParent  []topology.NodeID
	specPath    [][]topology.LinkID
	specTouched []bitset
	cursor      atomic.Int64

	// Sharded-round state, allocated only for Shards > 1. Each shard
	// owns a geometric slice of the roots, a private copy of the step's
	// pool, and its own provisional-mode finder; shardSpec tracks the
	// links each shard's speculation claimed, rebuilt turn by turn
	// during the merge.
	shards        int
	shardOf       []int // shard index per tree
	shardAvail    []bitset
	shardSpec     []bitset
	shardTrees    [][]int
	shardFinders  []*pathFinder
	specFail      [][2]int // per tree: [lo,hi) of the turn's provisional failure stamps in its shard finder's failBuf
	shardTurns    int64
	shardReplays  int64
	shardPause    int // rounds left to take directly on the live pool after a conflict-heavy merge
	shardPauseLen int // current backoff length; doubles on consecutive conflict-heavy probes
}

// shardProbeInterval is how many rounds a conflict-heavy merge pauses
// speculation for before probing a sharded round again; consecutive
// failed probes double the pause up to shardPauseMax. Conflict
// structure shifts as trees fill in (early rounds contend fabric-wide,
// endgame rounds barely overlap), so the pause is a backoff, not a
// permanent downgrade — but on hosts or fabrics where speculation
// never pays (one core, dense contention) the probe tax decays to
// nothing instead of recurring every few rounds.
const (
	shardProbeInterval = 8
	shardPauseMax      = 1 << 10
)

// growTrees is the tree-growth phase body: Algorithm 1's main loop with
// the per-step link allocation. It always maintains the PlanCounters —
// integer adds cost nothing worth branching around — and reports per-step
// progress only when an observer is attached.
func growTrees(topo *topology.Topology, opts Options) ([]*collective.Tree, obs.PlanCounters, error) {
	g, err := newGrowth(topo, opts)
	if err != nil {
		return nil, obs.PlanCounters{}, err
	}
	return g.run()
}

func newGrowth(topo *topology.Topology, opts Options) (*growth, error) {
	n := topo.Nodes()
	k := n // one tree per node by default
	if opts.Trees > 0 && opts.Trees < n {
		k = opts.Trees
	}
	g := &growth{topo: topo, opts: opts, n: n, k: k, workers: opts.Workers}
	g.trees = make([]*collective.Tree, k)
	g.inTree = make([][]bool, k)
	g.members = make([]int, k)
	g.parents = make([][]topology.NodeID, k)
	g.pending = make([][]topology.NodeID, k)
	g.memo = make([]*treeMemo, k)
	g.stalledAt = make([]int32, k)
	for i := 0; i < k; i++ {
		g.trees[i] = collective.NewTree(i, topology.NodeID(i), n)
		g.inTree[i] = make([]bool, n)
		g.inTree[i][i] = true
		g.members[i] = 1
		g.parents[i] = []topology.NodeID{topology.NodeID(i)}
		g.memo[i] = newTreeMemo(n)
	}
	if opts.Order == ByRemainingHeight {
		g.ecc = eccentricities(topo, opts.Workers)
		for i := 0; i < k; i++ {
			if g.ecc[i] == EccUnreachable {
				u := newEccScratch(topo).firstUnreachable(i)
				return nil, fmt.Errorf("multitree: root %d cannot reach node %d on %s: refusing to grow a partial tree", i, u, topo.Name())
			}
		}
	}
	g.avail = newBitset(len(topo.Links()))
	g.seq = newPathFinder(topo, opts.ReverseNeighborOrder)
	g.seq.shortestFirst = opts.ShortestPathFirst
	g.orderIdx = make([]int, k)
	g.orderRem = make([]int, k)
	if opts.Shards > 1 {
		g.shards = opts.Shards
		if g.shards > k {
			g.shards = k
		}
	}
	if g.workers > 1 {
		g.finders = make([]*pathFinder, g.workers)
		g.finders[0] = g.seq
		for i := 1; i < g.workers; i++ {
			g.finders[i] = newPathFinder(topo, opts.ReverseNeighborOrder)
			g.finders[i].shortestFirst = opts.ShortestPathFirst
		}
		g.roundAvail = newBitset(len(topo.Links()))
	}
	if g.workers > 1 || g.shards > 1 {
		g.claimed = newBitset(len(topo.Links()))
		g.active = make([]int, 0, k)
		g.specChild = make([]topology.NodeID, k)
		g.specParent = make([]topology.NodeID, k)
		g.specPath = make([][]topology.LinkID, k)
		g.specTouched = make([]bitset, k)
		for i := range g.specTouched {
			g.specTouched[i] = newBitset(len(topo.Links()))
		}
	}
	if g.shards > 1 {
		g.shardOf = shardAssign(topo, k, g.shards)
		g.shardAvail = make([]bitset, g.shards)
		g.shardSpec = make([]bitset, g.shards)
		g.shardTrees = make([][]int, g.shards)
		g.shardFinders = make([]*pathFinder, g.shards)
		for s := 0; s < g.shards; s++ {
			g.shardAvail[s] = newBitset(len(topo.Links()))
			g.shardSpec[s] = newBitset(len(topo.Links()))
			g.shardFinders[s] = newPathFinder(topo, opts.ReverseNeighborOrder)
			g.shardFinders[s].shortestFirst = opts.ShortestPathFirst
			g.shardFinders[s].provisional = true
		}
		g.specFail = make([][2]int, k)
	}
	return g, nil
}

func (g *growth) run() ([]*collective.Tree, obs.PlanCounters, error) {
	o := g.opts.Observer
	// Every tree must attach all other nodes: the unit of progress.
	totalAttach := int64(g.k) * int64(g.n-1)
	for t := int32(1); ; t++ {
		if complete(g.members, g.n) {
			g.fold()
			return g.trees, g.c, nil
		}
		if int(t) > 2*len(g.topo.Links())+2 {
			g.fold()
			return nil, g.c, fmt.Errorf("multitree: construction did not converge on %s", g.topo.Name())
		}
		// Start a new time step with a fresh topology graph (line 6).
		g.avail.fill()
		addedThisStep := 0
		for {
			var added int
			switch {
			case g.shards > 1:
				if g.shardPause > 0 {
					g.shardPause--
					added = g.roundSequential(t)
				} else {
					added = g.roundSharded(t)
				}
			case g.workers > 1:
				added = g.roundParallel(t)
			default:
				added = g.roundSequential(t)
			}
			if added == 0 {
				break
			}
			addedThisStep += added
		}
		if addedThisStep == 0 {
			g.fold()
			return nil, g.c, g.stallError(t)
		}
		g.c.Steps++
		if o != nil {
			o.PlanProgress(obs.PhaseTreeGrowth, g.c.NodesAttached, totalAttach)
		}
		// Nodes added this step become eligible parents next step.
		for ti := 0; ti < g.k; ti++ {
			g.parents[ti] = append(g.parents[ti], g.pending[ti]...)
			g.pending[ti] = g.pending[ti][:0]
			// Once dead parents dominate a tree's list, drop them (order
			// preserved). find skips them either way, so the trees built
			// are unchanged; the per-turn skip scans just stop paying for
			// them.
			if m := g.memo[ti]; m.deadCount > 32 && m.deadCount*4 > len(g.parents[ti]) {
				kept := g.parents[ti][:0]
				for _, p := range g.parents[ti] {
					if !m.dead[p] {
						kept = append(kept, p)
					}
				}
				g.parents[ti] = kept
				m.deadCount = 0
			}
		}
	}
}

// stallError diagnoses a step that attached nothing. A disconnected
// fabric (a fault plan that isolated nodes, or a hand-built partial
// topology) is the common cause; when some unfinished tree's root cannot
// reach a node over the static graph at all, name the witness pair
// instead of guessing.
func (g *growth) stallError(t int32) error {
	for ti := 0; ti < g.k; ti++ {
		if g.members[ti] == g.n {
			continue
		}
		root := int(g.trees[ti].Root)
		if u := newEccScratch(g.topo).firstUnreachable(root); u >= 0 {
			return fmt.Errorf("multitree: root %d cannot reach node %d on %s: topology is disconnected", root, u, g.topo.Name())
		}
		break // this root reaches everything; no cheap witness, report generically
	}
	return fmt.Errorf("multitree: no progress at step %d on %s (disconnected graph?)", t, g.topo.Name())
}

// roundSequential gives every unfinished, unstalled tree one turn in
// order, committing each result before the next tree searches.
func (g *growth) roundSequential(t int32) int {
	added := 0
	for _, ti := range g.order() {
		if g.members[ti] == g.n || g.stalledAt[ti] == t {
			continue
		}
		child, parent, path := g.seq.find(g.parents[ti], g.inTree[ti], g.avail, g.memo[ti], t)
		if child < 0 {
			g.stalledAt[ti] = t
			continue
		}
		g.commit(ti, child, parent, path, t)
		added++
	}
	return added
}

// roundParallel runs the same round speculatively: all active trees
// search the round-start pool snapshot concurrently, then results commit
// in sequential turn order, replaying only the searches whose read set
// overlaps links claimed by an earlier turn. The committed trees are
// exactly the sequential round's.
func (g *growth) roundParallel(t int32) int {
	g.active = g.active[:0]
	for _, ti := range g.order() {
		if g.members[ti] == g.n || g.stalledAt[ti] == t {
			continue
		}
		g.active = append(g.active, ti)
	}
	if len(g.active) == 0 {
		return 0
	}
	if len(g.active) == 1 {
		// One turn left: speculation buys nothing.
		ti := g.active[0]
		child, parent, path := g.seq.find(g.parents[ti], g.inTree[ti], g.avail, g.memo[ti], t)
		if child < 0 {
			g.stalledAt[ti] = t
			return 0
		}
		g.commit(ti, child, parent, path, t)
		return 1
	}
	copy(g.roundAvail, g.avail)
	g.claimed.zero()
	g.cursor.Store(0)
	w := g.workers
	if w > len(g.active) {
		w = len(g.active)
	}
	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		wg.Add(1)
		go func(f *pathFinder) {
			defer wg.Done()
			g.speculate(f, t)
		}(g.finders[i])
	}
	g.speculate(g.seq, t)
	wg.Wait()

	added := 0
	for _, ti := range g.active {
		child, parent, path := g.specChild[ti], g.specParent[ti], g.specPath[ti]
		if child < 0 {
			// Failed against a superset of the live pool: the live search
			// would fail too.
			g.stalledAt[ti] = t
			continue
		}
		if g.specTouched[ti].intersects(g.claimed) {
			// An earlier turn claimed a link this search read; replay it
			// against the live pool, exactly as the sequential round would
			// have run it.
			child, parent, path = g.seq.find(g.parents[ti], g.inTree[ti], g.avail, g.memo[ti], t)
			if child < 0 {
				g.stalledAt[ti] = t
				continue
			}
		}
		for _, l := range path {
			g.claimed.set(int(l))
		}
		g.commit(ti, child, parent, path, t)
		added++
	}
	return added
}

// speculate is the worker body: trees are pulled off a shared cursor, so
// each active tree is searched by exactly one goroutine — its memo is
// written race-free, and the failure stamps stay valid for the commit
// phase because speculation ran with strictly more links available.
func (g *growth) speculate(f *pathFinder, t int32) {
	for {
		i := int(g.cursor.Add(1)) - 1
		if i >= len(g.active) {
			return
		}
		ti := g.active[i]
		tb := g.specTouched[ti]
		tb.zero()
		f.touched = tb
		c, p, path := f.find(g.parents[ti], g.inTree[ti], g.roundAvail, g.memo[ti], t)
		f.touched = nil
		g.specChild[ti], g.specParent[ti], g.specPath[ti] = c, p, path
	}
}

// roundSharded runs one round sharded: the active trees partition by
// root shard, each shard's trees take their turns in order against a
// private copy of the live pool on the shard's own goroutine, and the
// speculative results merge in the global sequential turn order. A
// turn's shard pool differs from the live pool at its merge point by
// exactly (links committed by earlier turns) XOR (links the shard's own
// earlier turns claimed speculatively); a search that read no link in
// that difference saw bit-for-bit the pool the sequential search would
// have seen and commits as-is — failure stamps included. The rest
// replay against the live pool, so the committed trees are exactly the
// sequential round's at any shard count.
func (g *growth) roundSharded(t int32) int {
	g.active = g.active[:0]
	for _, ti := range g.order() {
		if g.members[ti] == g.n || g.stalledAt[ti] == t {
			continue
		}
		g.active = append(g.active, ti)
	}
	if len(g.active) == 0 {
		return 0
	}
	for s := 0; s < g.shards; s++ {
		g.shardTrees[s] = g.shardTrees[s][:0]
	}
	busy := 0
	for _, ti := range g.active {
		s := g.shardOf[ti]
		if len(g.shardTrees[s]) == 0 {
			busy++
		}
		g.shardTrees[s] = append(g.shardTrees[s], ti)
	}
	if busy == 1 || len(g.active) == 1 {
		// Everything left lives in one shard (the endgame rounds):
		// speculation against a pool copy buys nothing over taking the
		// turns directly on the live pool.
		added := 0
		for _, ti := range g.active {
			child, parent, path := g.seq.find(g.parents[ti], g.inTree[ti], g.avail, g.memo[ti], t)
			if child < 0 {
				g.stalledAt[ti] = t
				continue
			}
			g.commit(ti, child, parent, path, t)
			added++
		}
		return added
	}

	var wg sync.WaitGroup
	first := -1
	for s := 0; s < g.shards; s++ {
		if len(g.shardTrees[s]) == 0 {
			continue
		}
		if first < 0 {
			first = s
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			g.speculateShard(s, t)
		}(s)
	}
	g.speculateShard(first, t)
	wg.Wait()

	o := g.opts.Observer
	if o != nil {
		o.PhaseStart(obs.PhaseShardMerge)
	}
	g.claimed.zero()
	for s := 0; s < g.shards; s++ {
		g.shardSpec[s].zero()
	}
	added, replays := 0, 0
	for _, ti := range g.active {
		s := g.shardOf[ti]
		child, parent, path := g.specChild[ti], g.specParent[ti], g.specPath[ti]
		if !g.specTouched[ti].intersectsDiff(g.claimed, g.shardSpec[s]) {
			// Proven equal to the sequential search: its provisional
			// failure stamps are the ones the sequential run would have
			// recorded, so flush them.
			f := g.shardFinders[s]
			for _, p := range f.failBuf[g.specFail[ti][0]:g.specFail[ti][1]] {
				g.memo[ti].failedAt[p] = t
			}
		} else {
			replays++
			child, parent, path = g.seq.find(g.parents[ti], g.inTree[ti], g.avail, g.memo[ti], t)
		}
		// The speculated claims shaped the shard pool for the shard's
		// later turns whether or not this turn replayed.
		for _, l := range g.specPath[ti] {
			g.shardSpec[s].set(int(l))
		}
		if child < 0 {
			g.stalledAt[ti] = t
			continue
		}
		for _, l := range path {
			g.claimed.set(int(l))
		}
		g.commit(ti, child, parent, path, t)
		added++
	}
	g.shardTurns += int64(len(g.active))
	g.shardReplays += int64(replays)
	// Adaptive backoff: speculation pays only while the merge commits
	// most turns clean. Replays re-search the live pool one by one, so
	// with p shards truly running in parallel a sharded round costs
	// roughly turns/p + replays search-times against the sequential
	// round's turns — worth it only while the replay share stays under
	// 1 - 1/p (taken with a 3/4 margin here, in integers:
	// replays/turns > 3(p-1)/4p pauses). Which rounds speculate is pure
	// scheduling; the trees built are byte-identical either way, since
	// the merge replays exactly the turns whose speculation diverged
	// from sequential state.
	if p := min(busy, g.shards, runtime.GOMAXPROCS(0)); replays*4*p > len(g.active)*3*(p-1) {
		if g.shardPauseLen == 0 {
			g.shardPauseLen = shardProbeInterval
		} else if g.shardPauseLen < shardPauseMax {
			g.shardPauseLen *= 2
		}
		g.shardPause = g.shardPauseLen
	} else {
		g.shardPauseLen = 0
	}
	if o != nil {
		o.PhaseEnd(obs.PhaseShardMerge, obs.PlanCounters{
			ShardTurns:   int64(len(g.active)),
			ShardReplays: int64(replays),
		})
	}
	return added
}

// speculateShard gives each of shard s's active trees its turn in order
// against the shard's private pool copy: successful searches claim their
// paths from the shard pool only, so the shard's later turns see them
// exactly as the sequential round would. This-step failure stamps
// derived from the shard pool are buffered per turn (the finder runs in
// provisional mode) until the merge proves the turn clean or replays it;
// permanent dead marks write through.
func (g *growth) speculateShard(s int, t int32) {
	f := g.shardFinders[s]
	pool := g.shardAvail[s]
	copy(pool, g.avail)
	f.failBuf = f.failBuf[:0]
	for _, ti := range g.shardTrees[s] {
		tb := g.specTouched[ti]
		tb.zero()
		f.touched = tb
		lo := len(f.failBuf)
		c, p, path := f.find(g.parents[ti], g.inTree[ti], pool, g.memo[ti], t)
		f.touched = nil
		g.specFail[ti] = [2]int{lo, len(f.failBuf)}
		g.specChild[ti], g.specParent[ti], g.specPath[ti] = c, p, path
		for _, l := range path {
			pool.clear(int(l))
		}
	}
}

// shardAssign partitions the k tree roots into shards. On grids the
// shards are near-square tiles of the node grid — quadrants at four
// shards — so each shard's trees grow outward from a distinct region of
// the fabric and their early link claims rarely collide. Elsewhere the
// roots split into contiguous id bands, preserving whatever locality
// the builder's node numbering has.
func shardAssign(topo *topology.Topology, k, shards int) []int {
	of := make([]int, k)
	nx, ny := topo.GridDims()
	if nx > 0 && ny > 0 {
		// Factor shards = sx*sy with the tile grid as square as possible.
		sx := 1
		for d := 1; d*d <= shards; d++ {
			if shards%d == 0 {
				sx = d
			}
		}
		sy := shards / sx
		for i := 0; i < k; i++ {
			c, ok := topo.NodeCoord(topology.NodeID(i))
			if !ok {
				of[i] = i * shards / k
				continue
			}
			of[i] = (c.Y*sy/ny)*sx + c.X*sx/nx
		}
		return of
	}
	for i := 0; i < k; i++ {
		of[i] = i * shards / k
	}
	return of
}

// commit claims the path from the step's pool and attaches child to tree
// ti.
func (g *growth) commit(ti int, child, parent topology.NodeID, path []topology.LinkID, t int32) {
	for _, l := range path {
		g.avail.clear(int(l))
	}
	g.c.LinksAllocated += int64(len(path))
	g.trees[ti].SetEdge(parent, child, int(t))
	g.trees[ti].Path[child] = path
	g.inTree[ti][child] = true
	g.members[ti]++
	g.c.NodesAttached++
	if g.members[ti] == g.n {
		g.c.TreesGrown++
	}
	g.pending[ti] = append(g.pending[ti], child)
}

// fold accumulates every finder's search counters into the run's.
func (g *growth) fold() {
	g.seq.fold(&g.c)
	for _, f := range g.finders {
		if f != g.seq {
			f.fold(&g.c)
		}
	}
	for _, f := range g.shardFinders {
		f.fold(&g.c)
	}
}

// order returns the indices of the trees in the order they take turns
// this round, into scratch reused across rounds.
func (g *growth) order() []int {
	idx := g.orderIdx
	for i := range idx {
		idx[i] = i
	}
	if g.opts.Order != ByRemainingHeight {
		return idx // ascending root id
	}
	remaining := g.orderRem
	for i, tr := range g.trees {
		remaining[i] = g.ecc[i] - tr.Height()
	}
	// Insertion sort, descending remaining height, ties by root id.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j], idx[j-1]
			if remaining[a] > remaining[b] || (remaining[a] == remaining[b] && a < b) {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			} else {
				break
			}
		}
	}
	return idx
}

func complete(members []int, n int) bool {
	for _, m := range members {
		if m != n {
			return false
		}
	}
	return true
}

// EccUnreachable is the eccentricity sentinel for a source that cannot
// reach every node. On degraded or disconnected topologies the max-hop
// figure is undefined; silently skipping the unreachable nodes (the old
// behavior) under-scored exactly the roots that cannot grow a full tree,
// so callers must treat a sentinel root as an error, not a short tree.
const EccUnreachable = -1

// eccentricities returns each node's maximum hop distance to any other
// node, measured over the full (unallocated) topology graph, traversing
// switches freely, or EccUnreachable for sources that cannot reach every
// node. It estimates the final height of the tree rooted there. Direct
// symmetric fabrics take an incremental path that updates distances
// between adjacent sources; otherwise the per-source searches are
// independent, so they reuse one scratch set per worker and fan out
// across workers when asked.
func eccentricities(topo *topology.Topology, workers int) []int {
	if out := eccentricitiesIncremental(topo); out != nil {
		return out
	}
	n := topo.Nodes()
	out := make([]int, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := newEccScratch(topo)
		for src := 0; src < n; src++ {
			out[src] = s.from(src)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newEccScratch(topo)
			for {
				src := int(next.Add(1)) - 1
				if src >= n {
					return
				}
				out[src] = s.from(src)
			}
		}()
	}
	wg.Wait()
	return out
}

// eccScratch is one worker's reusable BFS state for eccentricities.
type eccScratch struct {
	topo           *topology.Topology
	dist           []int32
	frontier, next []int
}

func newEccScratch(topo *topology.Topology) *eccScratch {
	return &eccScratch{
		topo:     topo,
		dist:     make([]int32, topo.Vertices()),
		frontier: make([]int, 0, topo.Vertices()),
		next:     make([]int, 0, topo.Vertices()),
	}
}

func (s *eccScratch) from(src int) int {
	t := s.topo
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	cur := s.frontier[:0]
	cur = append(cur, src)
	nxt := s.next[:0]
	for len(cur) > 0 {
		nxt = nxt[:0]
		for _, v := range cur {
			// In switch-based networks only switches forward, so a path
			// cannot relay through another end node; in direct networks
			// every node's integrated router forwards.
			if t.Class() == topology.Indirect && t.IsNode(v) && v != src {
				continue
			}
			for _, l := range t.Out(v) {
				w := t.Link(l).Dst
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					nxt = append(nxt, w)
				}
			}
		}
		cur, nxt = nxt, cur
	}
	s.frontier, s.next = cur, nxt // keep whichever capacity each grew
	// Node-distance in construction steps: switch hops are internal to a
	// single scheduled edge, so eccentricity counts destination nodes
	// only. A conservative proxy is the max node distance in links, which
	// orders roots correctly on grids and trees alike.
	ecc := 0
	for d := 0; d < t.Nodes(); d++ {
		if dist[d] < 0 {
			return EccUnreachable
		}
		if int(dist[d]) > ecc {
			ecc = int(dist[d])
		}
	}
	return ecc
}

// firstUnreachable runs the eccentricity BFS from src and returns the
// lowest-numbered node it cannot reach, or -1 when every node is
// reachable.
func (s *eccScratch) firstUnreachable(src int) topology.NodeID {
	s.from(src)
	for d := 0; d < s.topo.Nodes(); d++ {
		if s.dist[d] < 0 {
			return topology.NodeID(d)
		}
	}
	return -1
}

// symmetricLinks reports whether every directed link has a reverse
// companion — the precondition for the incremental eccentricity pass's
// triangle-inequality seeding.
func symmetricLinks(topo *topology.Topology) bool {
	links := topo.Links()
	seen := make(map[uint64]bool, len(links))
	for _, l := range links {
		seen[uint64(uint32(l.Src))<<32|uint64(uint32(l.Dst))] = true
	}
	for _, l := range links {
		if !seen[uint64(uint32(l.Dst))<<32|uint64(uint32(l.Src))] {
			return false
		}
	}
	return true
}

// eccentricitiesIncremental computes every node's eccentricity by
// updating distances between adjacent sources instead of re-running a
// full breadth-first search per source. On direct fabrics with
// symmetric links the hop metric obeys the triangle inequality, so for
// adjacent vertices u, v the exact distances from u bound those from v:
// d(v,w) <= d(u,w) + 1. Seeding v's array with du+1 and relaxing only
// the strict improvements touches just the region whose distance
// actually changes — about half the fabric per hop on grids, against a
// full sweep for a from-scratch BFS. Sources are visited by walking a
// BFS spanning tree of the fabric depth-first with one distance array
// per tree level, so every seed comes from an exact, adjacent source.
//
// The relaxation is exact: along any shortest path from v, each vertex
// either gets improved (and then relaxes its successor) or its seeded
// value already equals the true distance — and then the successor's
// seed is forced to the true distance too, by the same two inequalities
// that justified the seed.
//
// Returns nil when the preconditions fail (indirect class, asymmetric
// links, disconnected graph); the caller falls back to per-source BFS,
// which also produces the EccUnreachable sentinels.
func eccentricitiesIncremental(topo *topology.Topology) []int {
	if topo.Class() != topology.Direct || !symmetricLinks(topo) {
		return nil
	}
	nv := topo.Vertices()
	n := topo.Nodes()
	if nv == 0 || n == 0 {
		return nil
	}
	// BFS spanning tree of the fabric from vertex 0.
	parent := make([]int32, nv)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = 0
	bfsOrder := make([]int32, 0, nv)
	bfsOrder = append(bfsOrder, 0)
	for qi := 0; qi < len(bfsOrder); qi++ {
		v := int(bfsOrder[qi])
		for _, l := range topo.Out(v) {
			w := topo.Link(l).Dst
			if parent[w] < 0 {
				parent[w] = int32(v)
				bfsOrder = append(bfsOrder, int32(w))
			}
		}
	}
	if len(bfsOrder) != nv {
		return nil // disconnected
	}
	// Children of each vertex in the spanning tree, as a CSR layout.
	start := make([]int32, nv+1)
	for _, v := range bfsOrder[1:] {
		start[parent[v]+1]++
	}
	for i := 0; i < nv; i++ {
		start[i+1] += start[i]
	}
	kids := make([]int32, nv-1)
	fill := make([]int32, nv)
	copy(fill, start[:nv])
	for _, v := range bfsOrder[1:] {
		p := parent[v]
		kids[fill[p]] = v
		fill[p]++
	}

	out := make([]int, n)
	eccOf := func(d []int32) int {
		e := 0
		for i := 0; i < n; i++ {
			if int(d[i]) > e {
				e = int(d[i])
			}
		}
		return e
	}
	// Exact distances from the tree root, by full BFS.
	levels := [][]int32{make([]int32, nv)}
	d0 := levels[0]
	for i := range d0 {
		d0[i] = -1
	}
	d0[0] = 0
	q := make([]int32, 0, nv)
	q = append(q, 0)
	for qi := 0; qi < len(q); qi++ {
		v := int(q[qi])
		for _, l := range topo.Out(v) {
			w := topo.Link(l).Dst
			if d0[w] < 0 {
				d0[w] = d0[v] + 1
				q = append(q, int32(w))
			}
		}
	}
	out[0] = eccOf(d0)

	// Depth-first walk of the spanning tree. Each descent u -> v seeds
	// dv from du and relaxes; each level's array is reused across the
	// subtrees hanging at that depth, so memory is O(tree height) arrays.
	type frame struct {
		v    int32
		next int32 // cursor into kids[start[v]:start[v+1]]
	}
	stack := make([]frame, 1, 64)
	stack[0] = frame{v: 0, next: start[0]}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= start[f.v+1] {
			stack = stack[:len(stack)-1]
			continue
		}
		child := int(kids[f.next])
		f.next++
		depth := len(stack)
		if depth >= len(levels) {
			levels = append(levels, make([]int32, nv))
		}
		du, dv := levels[depth-1], levels[depth]
		for i, d := range du {
			dv[i] = d + 1
		}
		dv[child] = 0
		q = q[:0]
		q = append(q, int32(child))
		for qi := 0; qi < len(q); qi++ {
			x := int(q[qi])
			nd := dv[x] + 1
			for _, l := range topo.Out(x) {
				w := topo.Link(l).Dst
				if nd < dv[w] {
					dv[w] = nd
					q = append(q, int32(w))
				}
			}
		}
		if child < n {
			out[child] = eccOf(dv)
		}
		stack = append(stack, frame{v: int32(child), next: start[child]})
	}
	return out
}
