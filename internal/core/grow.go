package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// This file is the tree-growth engine behind BuildTrees: Algorithm 1's
// main loop over a word-packed per-step link pool, with memoized search
// failures and optional speculative parallel turns. Whatever the worker
// count, the trees produced are byte-identical to a sequential run —
// parallelism and memoization only skip work whose outcome is already
// proven.
//
// Three facts carry all of the pruning, each a consequence of the same
// step invariant (within a time step the link pool only shrinks, a tree
// only grows, and the eligible-parent lists are frozen):
//
//   - A tree whose turn found no free path stays stuck for the rest of
//     the step (stalledAt).
//   - A parent whose search failed this step keeps failing this step
//     (treeMemo.failedAt).
//   - A parent whose search failed without meeting one occupied link has
//     seen its entire reachable neighborhood already in the tree; it is
//     dead for every future step too (treeMemo.dead).
//
// Parallel rounds speculate: every still-active tree searches the
// round-start pool snapshot concurrently while recording the links it
// read. Commits then replay the sequential turn order; a speculative
// result whose read set is disjoint from the links earlier turns claimed
// is provably the result the sequential search would have produced, and
// only the others re-run against the live pool.

// growth is the scratch state of one Algorithm 1 run.
type growth struct {
	topo *topology.Topology
	opts Options
	n, k int

	trees   []*collective.Tree
	inTree  [][]bool
	members []int
	parents [][]topology.NodeID // usable as parents (added in previous steps), in addition order
	pending [][]topology.NodeID // added during the current step, merged at step end
	memo    []*treeMemo

	// stalledAt[ti] stamps the step whose link pool tree ti exhausted:
	// its turn found no free path, so it sits out the step's remaining
	// rounds.
	stalledAt []int32

	ecc []int

	avail bitset      // the step's link pool: set = free
	seq   *pathFinder // the sequential / commit-path finder

	c obs.PlanCounters

	// treeOrder scratch, reused every round.
	orderIdx []int
	orderRem []int

	// Speculative-round state, allocated only for Workers > 1.
	workers     int
	finders     []*pathFinder
	roundAvail  bitset // pool snapshot the round's speculation ran against
	claimed     bitset // links committed by earlier turns this round
	active      []int  // trees taking a turn this round, in turn order
	specChild   []topology.NodeID
	specParent  []topology.NodeID
	specPath    [][]topology.LinkID
	specTouched []bitset
	cursor      atomic.Int64
}

// growTrees is the tree-growth phase body: Algorithm 1's main loop with
// the per-step link allocation. It always maintains the PlanCounters —
// integer adds cost nothing worth branching around — and reports per-step
// progress only when an observer is attached.
func growTrees(topo *topology.Topology, opts Options) ([]*collective.Tree, obs.PlanCounters, error) {
	return newGrowth(topo, opts).run()
}

func newGrowth(topo *topology.Topology, opts Options) *growth {
	n := topo.Nodes()
	k := n // one tree per node by default
	if opts.Trees > 0 && opts.Trees < n {
		k = opts.Trees
	}
	g := &growth{topo: topo, opts: opts, n: n, k: k, workers: opts.Workers}
	g.trees = make([]*collective.Tree, k)
	g.inTree = make([][]bool, k)
	g.members = make([]int, k)
	g.parents = make([][]topology.NodeID, k)
	g.pending = make([][]topology.NodeID, k)
	g.memo = make([]*treeMemo, k)
	g.stalledAt = make([]int32, k)
	for i := 0; i < k; i++ {
		g.trees[i] = collective.NewTree(i, topology.NodeID(i), n)
		g.inTree[i] = make([]bool, n)
		g.inTree[i][i] = true
		g.members[i] = 1
		g.parents[i] = []topology.NodeID{topology.NodeID(i)}
		g.memo[i] = newTreeMemo(n)
	}
	if opts.Order == ByRemainingHeight {
		g.ecc = eccentricities(topo, opts.Workers)
	}
	g.avail = newBitset(len(topo.Links()))
	g.seq = newPathFinder(topo, opts.ReverseNeighborOrder)
	g.seq.shortestFirst = opts.ShortestPathFirst
	g.orderIdx = make([]int, k)
	g.orderRem = make([]int, k)
	if g.workers > 1 {
		g.finders = make([]*pathFinder, g.workers)
		g.finders[0] = g.seq
		for i := 1; i < g.workers; i++ {
			g.finders[i] = newPathFinder(topo, opts.ReverseNeighborOrder)
			g.finders[i].shortestFirst = opts.ShortestPathFirst
		}
		g.roundAvail = newBitset(len(topo.Links()))
		g.claimed = newBitset(len(topo.Links()))
		g.active = make([]int, 0, k)
		g.specChild = make([]topology.NodeID, k)
		g.specParent = make([]topology.NodeID, k)
		g.specPath = make([][]topology.LinkID, k)
		g.specTouched = make([]bitset, k)
		for i := range g.specTouched {
			g.specTouched[i] = newBitset(len(topo.Links()))
		}
	}
	return g
}

func (g *growth) run() ([]*collective.Tree, obs.PlanCounters, error) {
	o := g.opts.Observer
	// Every tree must attach all other nodes: the unit of progress.
	totalAttach := int64(g.k) * int64(g.n-1)
	for t := int32(1); ; t++ {
		if complete(g.members, g.n) {
			g.fold()
			return g.trees, g.c, nil
		}
		if int(t) > 2*len(g.topo.Links())+2 {
			g.fold()
			return nil, g.c, fmt.Errorf("multitree: construction did not converge on %s", g.topo.Name())
		}
		// Start a new time step with a fresh topology graph (line 6).
		g.avail.fill()
		addedThisStep := 0
		for {
			var added int
			if g.workers > 1 {
				added = g.roundParallel(t)
			} else {
				added = g.roundSequential(t)
			}
			if added == 0 {
				break
			}
			addedThisStep += added
		}
		if addedThisStep == 0 {
			g.fold()
			return nil, g.c, fmt.Errorf("multitree: no progress at step %d on %s (disconnected graph?)", t, g.topo.Name())
		}
		g.c.Steps++
		if o != nil {
			o.PlanProgress(obs.PhaseTreeGrowth, g.c.NodesAttached, totalAttach)
		}
		// Nodes added this step become eligible parents next step.
		for ti := 0; ti < g.k; ti++ {
			g.parents[ti] = append(g.parents[ti], g.pending[ti]...)
			g.pending[ti] = g.pending[ti][:0]
		}
	}
}

// roundSequential gives every unfinished, unstalled tree one turn in
// order, committing each result before the next tree searches.
func (g *growth) roundSequential(t int32) int {
	added := 0
	for _, ti := range g.order() {
		if g.members[ti] == g.n || g.stalledAt[ti] == t {
			continue
		}
		child, parent, path := g.seq.find(g.parents[ti], g.inTree[ti], g.avail, g.memo[ti], t)
		if child < 0 {
			g.stalledAt[ti] = t
			continue
		}
		g.commit(ti, child, parent, path, t)
		added++
	}
	return added
}

// roundParallel runs the same round speculatively: all active trees
// search the round-start pool snapshot concurrently, then results commit
// in sequential turn order, replaying only the searches whose read set
// overlaps links claimed by an earlier turn. The committed trees are
// exactly the sequential round's.
func (g *growth) roundParallel(t int32) int {
	g.active = g.active[:0]
	for _, ti := range g.order() {
		if g.members[ti] == g.n || g.stalledAt[ti] == t {
			continue
		}
		g.active = append(g.active, ti)
	}
	if len(g.active) == 0 {
		return 0
	}
	if len(g.active) == 1 {
		// One turn left: speculation buys nothing.
		ti := g.active[0]
		child, parent, path := g.seq.find(g.parents[ti], g.inTree[ti], g.avail, g.memo[ti], t)
		if child < 0 {
			g.stalledAt[ti] = t
			return 0
		}
		g.commit(ti, child, parent, path, t)
		return 1
	}
	copy(g.roundAvail, g.avail)
	g.claimed.zero()
	g.cursor.Store(0)
	w := g.workers
	if w > len(g.active) {
		w = len(g.active)
	}
	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		wg.Add(1)
		go func(f *pathFinder) {
			defer wg.Done()
			g.speculate(f, t)
		}(g.finders[i])
	}
	g.speculate(g.seq, t)
	wg.Wait()

	added := 0
	for _, ti := range g.active {
		child, parent, path := g.specChild[ti], g.specParent[ti], g.specPath[ti]
		if child < 0 {
			// Failed against a superset of the live pool: the live search
			// would fail too.
			g.stalledAt[ti] = t
			continue
		}
		if g.specTouched[ti].intersects(g.claimed) {
			// An earlier turn claimed a link this search read; replay it
			// against the live pool, exactly as the sequential round would
			// have run it.
			child, parent, path = g.seq.find(g.parents[ti], g.inTree[ti], g.avail, g.memo[ti], t)
			if child < 0 {
				g.stalledAt[ti] = t
				continue
			}
		}
		for _, l := range path {
			g.claimed.set(int(l))
		}
		g.commit(ti, child, parent, path, t)
		added++
	}
	return added
}

// speculate is the worker body: trees are pulled off a shared cursor, so
// each active tree is searched by exactly one goroutine — its memo is
// written race-free, and the failure stamps stay valid for the commit
// phase because speculation ran with strictly more links available.
func (g *growth) speculate(f *pathFinder, t int32) {
	for {
		i := int(g.cursor.Add(1)) - 1
		if i >= len(g.active) {
			return
		}
		ti := g.active[i]
		tb := g.specTouched[ti]
		tb.zero()
		f.touched = tb
		c, p, path := f.find(g.parents[ti], g.inTree[ti], g.roundAvail, g.memo[ti], t)
		f.touched = nil
		g.specChild[ti], g.specParent[ti], g.specPath[ti] = c, p, path
	}
}

// commit claims the path from the step's pool and attaches child to tree
// ti.
func (g *growth) commit(ti int, child, parent topology.NodeID, path []topology.LinkID, t int32) {
	for _, l := range path {
		g.avail.clear(int(l))
	}
	g.c.LinksAllocated += int64(len(path))
	g.trees[ti].SetEdge(parent, child, int(t))
	g.trees[ti].Path[child] = path
	g.inTree[ti][child] = true
	g.members[ti]++
	g.c.NodesAttached++
	if g.members[ti] == g.n {
		g.c.TreesGrown++
	}
	g.pending[ti] = append(g.pending[ti], child)
}

// fold accumulates every finder's search counters into the run's.
func (g *growth) fold() {
	g.seq.fold(&g.c)
	for _, f := range g.finders {
		if f != g.seq {
			f.fold(&g.c)
		}
	}
}

// order returns the indices of the trees in the order they take turns
// this round, into scratch reused across rounds.
func (g *growth) order() []int {
	idx := g.orderIdx
	for i := range idx {
		idx[i] = i
	}
	if g.opts.Order != ByRemainingHeight {
		return idx // ascending root id
	}
	remaining := g.orderRem
	for i, tr := range g.trees {
		remaining[i] = g.ecc[i] - tr.Height()
	}
	// Insertion sort, descending remaining height, ties by root id.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j], idx[j-1]
			if remaining[a] > remaining[b] || (remaining[a] == remaining[b] && a < b) {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			} else {
				break
			}
		}
	}
	return idx
}

func complete(members []int, n int) bool {
	for _, m := range members {
		if m != n {
			return false
		}
	}
	return true
}

// eccentricities returns each node's maximum hop distance to any other
// node, measured over the full (unallocated) topology graph, traversing
// switches freely. It estimates the final height of the tree rooted
// there. The per-source searches are independent, so they reuse one
// scratch set per worker and fan out across workers when asked.
func eccentricities(topo *topology.Topology, workers int) []int {
	n := topo.Nodes()
	out := make([]int, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := newEccScratch(topo)
		for src := 0; src < n; src++ {
			out[src] = s.from(src)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newEccScratch(topo)
			for {
				src := int(next.Add(1)) - 1
				if src >= n {
					return
				}
				out[src] = s.from(src)
			}
		}()
	}
	wg.Wait()
	return out
}

// eccScratch is one worker's reusable BFS state for eccentricities.
type eccScratch struct {
	topo           *topology.Topology
	dist           []int32
	frontier, next []int
}

func newEccScratch(topo *topology.Topology) *eccScratch {
	return &eccScratch{
		topo:     topo,
		dist:     make([]int32, topo.Vertices()),
		frontier: make([]int, 0, topo.Vertices()),
		next:     make([]int, 0, topo.Vertices()),
	}
}

func (s *eccScratch) from(src int) int {
	t := s.topo
	dist := s.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	cur := s.frontier[:0]
	cur = append(cur, src)
	nxt := s.next[:0]
	for len(cur) > 0 {
		nxt = nxt[:0]
		for _, v := range cur {
			// In switch-based networks only switches forward, so a path
			// cannot relay through another end node; in direct networks
			// every node's integrated router forwards.
			if t.Class() == topology.Indirect && t.IsNode(v) && v != src {
				continue
			}
			for _, l := range t.Out(v) {
				w := t.Link(l).Dst
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					nxt = append(nxt, w)
				}
			}
		}
		cur, nxt = nxt, cur
	}
	s.frontier, s.next = cur, nxt // keep whichever capacity each grew
	// Node-distance in construction steps: switch hops are internal to a
	// single scheduled edge, so eccentricity counts destination nodes
	// only. A conservative proxy is the max node distance in links, which
	// orders roots correctly on grids and trees alike.
	ecc := 0
	for d := 0; d < t.Nodes(); d++ {
		if int(dist[d]) > ecc {
			ecc = int(dist[d])
		}
	}
	return ecc
}
