package core

import (
	"fmt"
	"math"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

// This file implements the hybrid-parallel case of §VII-B: "When the
// parallelism strategy and DNN workload are determined, MULTITREE runs for
// the nodes that involve all-reduce communication." A subset all-reduce
// builds one schedule tree per participating node; non-participating nodes
// take no part in the collective, but in direct networks their integrated
// routers still forward traffic, so tree edges may pass through them.

// BuildSubsetTrees runs Algorithm 1 restricted to the member nodes (which
// must contain at least two distinct nodes). The returned trees span the
// members only.
func BuildSubsetTrees(topo *topology.Topology, members []topology.NodeID, opts Options) ([]*collective.Tree, error) {
	n := topo.Nodes()
	isMember := make([]bool, n)
	count := 0
	for _, m := range members {
		if m < 0 || int(m) >= n {
			return nil, fmt.Errorf("multitree: member %d out of range", m)
		}
		if !isMember[m] {
			isMember[m] = true
			count++
		}
	}
	if count < 2 {
		return nil, fmt.Errorf("multitree: subset needs at least 2 distinct members, have %d", count)
	}
	if count == n {
		return BuildTrees(topo, opts) // full membership: the standard path
	}

	roots := make([]topology.NodeID, 0, count)
	for node := 0; node < n; node++ {
		if isMember[node] {
			roots = append(roots, topology.NodeID(node))
		}
	}
	trees := make([]*collective.Tree, count)
	inTree := make([][]bool, count)
	membersIn := make([]int, count)
	parents := make([][]topology.NodeID, count)
	pending := make([][]topology.NodeID, count)
	for i, root := range roots {
		trees[i] = collective.NewTree(i, root, n)
		trees[i].Members = isMember
		inTree[i] = make([]bool, n)
		inTree[i][root] = true
		membersIn[i] = 1
		parents[i] = []topology.NodeID{root}
	}

	avail := newBitset(len(topo.Links()))
	alloc := newPathFinder(topo, opts.ReverseNeighborOrder)
	alloc.members = isMember
	memo := make([]*treeMemo, count)
	stalledAt := make([]int32, count)
	for i := range memo {
		memo[i] = newTreeMemo(n)
	}

	for t := int32(1); ; t++ {
		done := true
		for _, m := range membersIn {
			if m != count {
				done = false
				break
			}
		}
		if done {
			return trees, nil
		}
		if int(t) > 4*len(topo.Links())+4 {
			return nil, fmt.Errorf("multitree: subset construction did not converge on %s", topo.Name())
		}
		avail.fill()
		added := 0
		for {
			progress := false
			for ti := range trees {
				if membersIn[ti] == count || stalledAt[ti] == t {
					continue
				}
				child, parent, path := alloc.find(parents[ti], inTree[ti], avail, memo[ti], t)
				if child < 0 {
					stalledAt[ti] = t
					continue
				}
				for _, l := range path {
					avail.clear(int(l))
				}
				trees[ti].SetEdge(parent, child, int(t))
				trees[ti].Path[child] = path
				inTree[ti][child] = true
				membersIn[ti]++
				pending[ti] = append(pending[ti], child)
				added++
				progress = true
			}
			if !progress {
				break
			}
		}
		if added == 0 {
			return nil, fmt.Errorf("multitree: subset members unreachable at step %d on %s", t, topo.Name())
		}
		for ti := range trees {
			parents[ti] = append(parents[ti], pending[ti]...)
			pending[ti] = pending[ti][:0]
		}
	}
}

// BuildSubset lowers the subset trees into an executable schedule; flow i
// is rooted at the i-th member (in ascending node order).
func BuildSubset(topo *topology.Topology, members []topology.NodeID, elems int, opts Options) (*collective.Schedule, error) {
	trees, err := BuildSubsetTrees(topo, members, opts)
	if err != nil {
		return nil, err
	}
	return collective.TreesToSchedule(Algorithm+"-subset", topo, elems, trees)
}

// VerifySubsetAllReduce executes a subset schedule and checks that every
// member holds the sum over the members' inputs while every non-member's
// buffer is untouched.
func VerifySubsetAllReduce(s *collective.Schedule, members []topology.NodeID, inputs [][]float32) error {
	isMember := make([]bool, s.Topo.Nodes())
	for _, m := range members {
		isMember[m] = true
	}
	out, err := collective.Execute(s, inputs)
	if err != nil {
		return err
	}
	want := make([]float64, s.Elems)
	for node, v := range inputs {
		if !isMember[node] {
			continue
		}
		for i, x := range v {
			want[i] += float64(x)
		}
	}
	for node := range out {
		if !isMember[node] {
			for i := range out[node] {
				if out[node][i] != inputs[node][i] {
					return fmt.Errorf("core: subset all-reduce disturbed non-member %d", node)
				}
			}
			continue
		}
		for i, got := range out[node] {
			if diff := math.Abs(float64(got) - want[i]); diff > 1e-3*math.Max(1, math.Abs(want[i])) {
				return fmt.Errorf("core: subset all-reduce: member %d elem %d = %v, want %v",
					node, i, got, want[i])
			}
		}
	}
	return nil
}
