package core

// bitset is a word-packed bit vector indexed by link id. The planner
// keeps the per-step link pool here so that starting a fresh time step,
// claiming a path and intersecting a speculative search's read set
// against the links committed so far are whole-word operations instead
// of per-link scans.
type bitset []uint64

// newBitset returns a bitset able to hold n bits, all zero.
func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

// test reports whether bit i is set.
func (b bitset) test(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// set sets bit i.
func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

// clear clears bit i.
func (b bitset) clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// fill sets every word to all-ones. Bits past the logical length are
// never tested, so leaving them set is harmless.
func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// zero clears every word.
func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

// intersects reports whether b and o share a set bit.
func (b bitset) intersects(o bitset) bool {
	for i, w := range b {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// intersectsDiff reports whether b shares a set bit with the symmetric
// difference of x and y — the bits where the two sets disagree. The
// sharded merge uses it to ask "did this search read any link whose
// shard-pool state differs from the live pool?" in one pass.
func (b bitset) intersectsDiff(x, y bitset) bool {
	for i, w := range b {
		if w&(x[i]^y[i]) != 0 {
			return true
		}
	}
	return false
}
