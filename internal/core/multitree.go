// Package core implements MultiTree, the paper's primary contribution: a
// topology- and link-utilization-aware all-reduce algorithm (Algorithm 1)
// that builds |V| spanning schedule trees concurrently, top-down from the
// roots, allocating physical links per time step so that the resulting
// reduce-scatter and all-gather schedules are contention-free on any
// interconnect topology.
//
// Key properties reproduced from §III:
//
//   - One tree per node, so every node is a root of one flow and an
//     internal/leaf node of all others, using all bidirectional links.
//   - Trees take turns adding one node at a time (balance); parents are
//     considered in their order of addition (breadth-first), which packs
//     communication into levels near the roots and sparsifies the leaves.
//   - A fresh copy of the topology graph per time step; an edge allocated
//     to a tree is unavailable to every other tree within that step, so
//     same-step transfers never share a link.
//   - Reduce-scatter schedules are the time-reversed all-gather schedules
//     (Algorithm 1 lines 16-18).
//   - On switch-based (indirect) networks, links are allocated along
//     node-switch-...-switch-node paths discovered breadth-first
//     (§III-C3), and every transfer carries its allocated source route.
package core

import (
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// Algorithm is the schedule name used in reports.
const Algorithm = "multitree"

// TreeOrder selects how trees take turns during construction (§III-C1).
type TreeOrder int

const (
	// RoundRobinByRoot alternates trees by ascending root id, the paper's
	// default that "works fine in most cases, especially for symmetric
	// networks like Torus".
	RoundRobinByRoot TreeOrder = iota
	// ByRemainingHeight prioritizes trees with larger remaining height so
	// the longest paths are scheduled earliest, the paper's suggestion for
	// asymmetric or irregular networks.
	ByRemainingHeight
)

// Options tunes tree construction; the zero value reproduces the paper's
// defaults.
type Options struct {
	Order TreeOrder

	// ReverseNeighborOrder flips the adjacency preference (X before Y on
	// grids instead of Y before X); used by the dimension-order ablation.
	ReverseNeighborOrder bool

	// Trees caps the number of schedule trees (0 or >= N means one per
	// node, the paper's default). Fewer trees trade aggregate bandwidth
	// for fewer construction steps — the Blink-inspired knob §VII-C
	// leaves for future work. Roots are nodes 0..Trees-1.
	Trees int

	// ShortestPathFirst changes the per-turn choice on switch-based
	// networks: instead of taking the first parent (in addition order)
	// that can reach any child, the tree takes the (parent, child) pair
	// with the shortest free path, conserving scarce inter-switch links.
	// This is the "pruning and adjusting the trees" direction the paper's
	// §IV-A footnote leaves for future exploration; the tree-adjustment
	// ablation measures its effect. It helps fabrics whose inter-switch
	// links are the scarce resource (BiGraph: 37 -> 31 steps) and hurts
	// fabrics with abundant spine paths (Fat-Tree: deep same-switch
	// chains double the steps), which is why Auto tries both.
	ShortestPathFirst bool

	// Auto builds trees with both allocation strategies and keeps the
	// better set: Build scores both schedules with the fluid engine at
	// the requested data size; BuildTrees (no size available) keeps the
	// fewer-step set. DefaultOptions enables Auto on switch-based
	// networks.
	Auto bool

	// Observer receives planner lifecycle callbacks: phase boundaries
	// with counters, per-step progress, and pipeline position. Nil (the
	// default) keeps construction observation-free: no time reads, no
	// callbacks, zero allocations added to the hot search path
	// (TestPlanObserverNilZeroAlloc). The per-search counters themselves
	// are plain integer fields and are maintained either way.
	Observer obs.PlanObserver
}

// DefaultOptions returns the recommended construction options for a
// topology: the paper's literal parent-order scan on direct networks
// (where every edge is one hop and the order is immaterial), and Auto on
// switch-based networks, where the better of the first-parent and
// shortest-path allocations depends on the fabric and the message size.
func DefaultOptions(topo *topology.Topology) Options {
	return Options{Auto: topo.Class() == topology.Indirect}
}

// BuildTrees runs Algorithm 1 and returns one spanning schedule tree per
// node, with per-edge all-gather time steps and allocated link paths.
func BuildTrees(topo *topology.Topology, opts Options) ([]*collective.Tree, error) {
	n := topo.Nodes()
	if n < 2 {
		return nil, fmt.Errorf("multitree: need at least 2 nodes, have %d", n)
	}
	if opts.Auto {
		return buildAuto(topo, opts)
	}
	o := opts.Observer
	if o != nil {
		o.PhaseStart(obs.PhaseTreeGrowth)
	}
	trees, counters, err := growTrees(topo, opts)
	if o != nil {
		o.PhaseEnd(obs.PhaseTreeGrowth, counters)
	}
	return trees, err
}

// growTrees is the tree-growth phase body: Algorithm 1's main loop with
// the per-step link allocation. It always maintains the PlanCounters —
// integer adds cost nothing worth branching around — and reports per-step
// progress only when an observer is attached.
func growTrees(topo *topology.Topology, opts Options) ([]*collective.Tree, obs.PlanCounters, error) {
	o := opts.Observer
	var c obs.PlanCounters
	n := topo.Nodes()
	k := n // one tree per node by default
	if opts.Trees > 0 && opts.Trees < n {
		k = opts.Trees
	}
	trees := make([]*collective.Tree, k)
	inTree := make([][]bool, k)             // inTree[t][node]
	members := make([]int, k)               // node count per tree
	parents := make([][]topology.NodeID, k) // nodes usable as parents (added in previous steps), in addition order
	var pending [][]topology.NodeID         // nodes added during the current step, merged at step end
	pending = make([][]topology.NodeID, k)
	for i := 0; i < k; i++ {
		trees[i] = collective.NewTree(i, topology.NodeID(i), n)
		inTree[i] = make([]bool, n)
		inTree[i][i] = true
		members[i] = 1
		parents[i] = []topology.NodeID{topology.NodeID(i)}
	}

	var ecc []int
	if opts.Order == ByRemainingHeight {
		ecc = eccentricities(topo)
	}

	avail := make([]bool, len(topo.Links()))
	alloc := newPathFinder(topo, opts.ReverseNeighborOrder)
	alloc.shortestFirst = opts.ShortestPathFirst

	// Every tree must attach all other nodes: the unit of progress.
	totalAttach := int64(k) * int64(n-1)

	for t := 1; ; t++ {
		if complete(members, n) {
			alloc.fold(&c)
			return trees, c, nil
		}
		if t > 2*len(topo.Links())+2 {
			alloc.fold(&c)
			return nil, c, fmt.Errorf("multitree: construction did not converge on %s", topo.Name())
		}
		// Start a new time step with a fresh topology graph (line 6).
		for i := range avail {
			avail[i] = true
		}
		addedThisStep := 0
		for {
			progress := false
			for _, ti := range treeOrder(members, ecc, trees, opts.Order) {
				if members[ti] == n {
					continue
				}
				if child, parent, path := alloc.find(parents[ti], inTree[ti], avail); child >= 0 {
					for _, l := range path {
						avail[l] = false
					}
					c.LinksAllocated += int64(len(path))
					trees[ti].SetEdge(parent, child, t)
					trees[ti].Path[child] = path
					inTree[ti][child] = true
					members[ti]++
					c.NodesAttached++
					if members[ti] == n {
						c.TreesGrown++
					}
					pending[ti] = append(pending[ti], child)
					addedThisStep++
					progress = true
				}
			}
			if !progress {
				break
			}
		}
		if addedThisStep == 0 {
			alloc.fold(&c)
			return nil, c, fmt.Errorf("multitree: no progress at step %d on %s (disconnected graph?)", t, topo.Name())
		}
		c.Steps++
		if o != nil {
			o.PlanProgress(obs.PhaseTreeGrowth, c.NodesAttached, totalAttach)
		}
		// Nodes added this step become eligible parents next step.
		for ti := 0; ti < k; ti++ {
			parents[ti] = append(parents[ti], pending[ti]...)
			pending[ti] = pending[ti][:0]
		}
	}
}

// buildAuto constructs trees under both allocation strategies and keeps
// the set that finishes in fewer time steps — the bandwidth-optimal
// choice. Build refines this per data size; BuildTrees without a size
// keeps the min-steps rule.
func buildAuto(topo *topology.Topology, opts Options) ([]*collective.Tree, error) {
	first, shortest, err := buildBoth(topo, opts)
	if err != nil {
		return nil, err
	}
	if shortest != nil && maxHeight(shortest) < maxHeight(first) {
		return shortest, nil
	}
	return first, nil
}

// buildBoth returns the paper-literal (first-parent) trees and, when it
// succeeds, the shortest-path-first variant.
func buildBoth(topo *topology.Topology, opts Options) (first, shortest []*collective.Tree, err error) {
	opts.Auto = false
	opts.ShortestPathFirst = false
	first, err = BuildTrees(topo, opts)
	if err != nil {
		return nil, nil, err
	}
	opts.ShortestPathFirst = true
	shortest, err = BuildTrees(topo, opts)
	if err != nil {
		return first, nil, nil // fall back to the paper-literal trees
	}
	return first, shortest, nil
}

func maxHeight(trees []*collective.Tree) int {
	h := 0
	for _, tr := range trees {
		if th := tr.Height(); th > h {
			h = th
		}
	}
	return h
}

// Build runs Algorithm 1 and lowers the trees to an executable schedule
// with reduce-scatter steps 1..tot and all-gather steps tot+1..2tot.
// With Auto set it builds both allocation variants, scores each with the
// fast fluid engine at the target size, and keeps the faster schedule:
// bushy first-parent trees win latency-bound small messages, step-minimal
// shortest-path trees win bandwidth-bound large ones — the size-threshold
// tuning NCCL applies between algorithms (footnote 1 of the paper),
// applied here between two MultiTree schedules of the same fabric. Both
// table sets fit comfortably in the NI (§V-A), so a deployment can hold
// both and select per collective size.
func Build(topo *topology.Topology, elems int, opts Options) (*collective.Schedule, error) {
	var tracker *pipelineTracker
	o := opts.Observer
	if o != nil {
		// Announce the pipeline shape up front so a progress reporter can
		// show "phase i/N" from the first step: Auto runs tree-growth and
		// lowering twice plus one variant-score pass.
		total := 2
		if opts.Auto {
			total = 5
		}
		o.Pipeline(0, total)
		tracker = &pipelineTracker{inner: o, total: total}
		opts.Observer = tracker
		o = tracker
	}
	if opts.Auto {
		first, shortest, err := buildBoth(topo, opts)
		if err != nil {
			return nil, err
		}
		sf, err := collective.TreesToScheduleObserved(Algorithm, topo, elems, first, o)
		if err != nil {
			return nil, err
		}
		if shortest == nil {
			tracker.finish()
			return sf, nil
		}
		ss, err := collective.TreesToScheduleObserved(Algorithm, topo, elems, shortest, o)
		if err != nil {
			return nil, err
		}
		if o != nil {
			o.PhaseStart(obs.PhaseVariantScore)
		}
		better := scoreSchedule(ss) < scoreSchedule(sf)
		if o != nil {
			o.PhaseEnd(obs.PhaseVariantScore, obs.PlanCounters{})
		}
		tracker.finish()
		if better {
			return ss, nil
		}
		return sf, nil
	}
	trees, err := BuildTrees(topo, opts)
	if err != nil {
		return nil, err
	}
	s, err := collective.TreesToScheduleObserved(Algorithm, topo, elems, trees, o)
	if err == nil {
		tracker.finish()
	}
	return s, err
}

// pipelineTracker wraps the caller's observer to advance the pipeline
// position after every completed phase, so Build call sites do not thread
// a counter through the phase emit sites. Only allocated when an observer
// is attached.
type pipelineTracker struct {
	inner       obs.PlanObserver
	done, total int
}

func (p *pipelineTracker) PhaseStart(ph obs.PlanPhase) { p.inner.PhaseStart(ph) }

func (p *pipelineTracker) PhaseEnd(ph obs.PlanPhase, c obs.PlanCounters) {
	p.inner.PhaseEnd(ph, c)
	if p.done < p.total {
		p.done++
	}
	p.inner.Pipeline(p.done, p.total)
}

func (p *pipelineTracker) PlanProgress(ph obs.PlanPhase, done, total int64) {
	p.inner.PlanProgress(ph, done, total)
}

func (p *pipelineTracker) Pipeline(done, total int) { p.inner.Pipeline(done, total) }

// finish snaps the pipeline to complete — the Auto fallback path runs
// fewer phases than announced. Safe on nil receivers.
func (p *pipelineTracker) finish() {
	if p == nil || p.done == p.total {
		return
	}
	p.done = p.total
	p.inner.Pipeline(p.done, p.total)
}

func complete(members []int, n int) bool {
	for _, m := range members {
		if m != n {
			return false
		}
	}
	return true
}

// treeOrder returns the indices of the trees in the order they take turns
// this round.
func treeOrder(members, ecc []int, trees []*collective.Tree, order TreeOrder) []int {
	n := len(trees)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if order != ByRemainingHeight {
		return idx // ascending root id
	}
	remaining := make([]int, n)
	for i, tr := range trees {
		remaining[i] = ecc[i] - tr.Height()
	}
	// Insertion sort, descending remaining height, ties by root id.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j], idx[j-1]
			if remaining[a] > remaining[b] || (remaining[a] == remaining[b] && a < b) {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			} else {
				break
			}
		}
	}
	return idx
}

// eccentricities returns each node's maximum hop distance to any other
// node, measured over the full (unallocated) topology graph, traversing
// switches freely. It estimates the final height of the tree rooted there.
func eccentricities(topo *topology.Topology) []int {
	n := topo.Nodes()
	out := make([]int, n)
	for src := 0; src < n; src++ {
		dist := make([]int, topo.Vertices())
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		frontier := []int{src}
		for len(frontier) > 0 {
			var next []int
			for _, v := range frontier {
				// In switch-based networks only switches forward, so a
				// path cannot relay through another end node; in direct
				// networks every node's integrated router forwards.
				if topo.Class() == topology.Indirect && topo.IsNode(v) && v != src {
					continue
				}
				for _, l := range topo.Out(v) {
					w := topo.Link(l).Dst
					if dist[w] < 0 {
						dist[w] = dist[v] + 1
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		// Node-distance in construction steps: switch hops are internal to
		// a single scheduled edge, so eccentricity counts destination
		// nodes only. A conservative proxy is the max node distance in
		// links, which orders roots correctly on grids and trees alike.
		for d := 0; d < n; d++ {
			if dist[d] > out[src] {
				out[src] = dist[d]
			}
		}
	}
	return out
}

// pathFinder performs the per-parent breadth-first child search of
// Algorithm 1 line 10 (direct networks: a free one-hop edge) and its
// indirect-network extension §III-C3 (a free node-switch-...-node path).
type pathFinder struct {
	topo    *topology.Topology
	reverse bool

	// members, when non-nil, restricts candidate children to member nodes
	// (subset all-reduce, §VII-B); in direct networks non-member nodes'
	// routers still forward, so the search expands through them.
	members []bool

	// shortestFirst selects the Options.ShortestPathFirst allocation.
	shortestFirst bool

	// Search counters, maintained unconditionally (integer adds): turns
	// of Algorithm 1 line 10, the turns that found no free path, links
	// examined, and links skipped because another tree held them this
	// step. growTrees folds them into the phase counters at the end.
	searches      int64
	searchMisses  int64
	linksScanned  int64
	linkConflicts int64

	// scratch, reused across calls to avoid allocation in the hot loop.
	visited []bool
	via     []topology.LinkID
	queue   []int
}

func newPathFinder(topo *topology.Topology, reverse bool) *pathFinder {
	return &pathFinder{
		topo:    topo,
		reverse: reverse,
		visited: make([]bool, topo.Vertices()),
		via:     make([]topology.LinkID, topo.Vertices()),
	}
}

// fold accumulates the search counters into c.
func (f *pathFinder) fold(c *obs.PlanCounters) {
	c.Searches += f.searches
	c.SearchMisses += f.searchMisses
	c.LinksScanned += f.linksScanned
	c.LinkConflicts += f.linkConflicts
}

// find scans candidate parents in their order of addition and returns the
// first (child, parent, allocated path) reachable over free links, or
// child = -1 when no parent can extend the tree this step. With
// shortestFirst set it instead returns the globally shortest free path
// over all parents.
func (f *pathFinder) find(parents []topology.NodeID, inTree, avail []bool) (topology.NodeID, topology.NodeID, []topology.LinkID) {
	f.searches++
	if !f.shortestFirst {
		for _, p := range parents {
			if c, path := f.bfs(int(p), inTree, avail); c >= 0 {
				return c, p, path
			}
		}
		f.searchMisses++
		return -1, -1, nil
	}
	bestChild := topology.NodeID(-1)
	var bestParent topology.NodeID
	var bestPath []topology.LinkID
	for _, p := range parents {
		c, path := f.bfs(int(p), inTree, avail)
		if c < 0 {
			continue
		}
		if bestChild < 0 || len(path) < len(bestPath) {
			bestChild, bestParent, bestPath = c, p, path
			if len(bestPath) <= 1 || (f.topo.Class() == topology.Indirect && len(bestPath) == 2) {
				break // cannot do better than a direct / same-switch hop
			}
		}
	}
	if bestChild < 0 {
		f.searchMisses++
	}
	return bestChild, bestParent, bestPath
}

// bfs searches from parent vertex start over available links. Expansion
// passes only through switch vertices; the first node vertex found that is
// not yet in the tree is returned together with its link path. Out-links
// are scanned in the topology's preference order (or reversed for the
// ablation), so one-hop children and Y-dimension neighbors win ties.
func (f *pathFinder) bfs(start int, inTree, avail []bool) (topology.NodeID, []topology.LinkID) {
	t := f.topo
	for i := range f.visited {
		f.visited[i] = false
		f.via[i] = -1
	}
	f.queue = f.queue[:0]
	f.visited[start] = true
	f.queue = append(f.queue, start)
	for qi := 0; qi < len(f.queue); qi++ {
		v := f.queue[qi]
		links := t.Out(v)
		for li := 0; li < len(links); li++ {
			id := links[li]
			if f.reverse {
				id = links[len(links)-1-li]
			}
			f.linksScanned++
			if !avail[id] {
				f.linkConflicts++
				continue
			}
			w := t.Link(id).Dst
			if f.visited[w] {
				continue
			}
			f.visited[w] = true
			f.via[w] = id
			if t.IsNode(w) {
				if f.members != nil && !f.members[w] {
					// Non-member accelerator: not a candidate child, but
					// its integrated router forwards in direct networks.
					if t.Class() == topology.Direct {
						f.queue = append(f.queue, w)
					}
					continue
				}
				if !inTree[w] {
					return topology.NodeID(w), f.pathTo(w, start)
				}
				continue // cannot relay through a participating end node
			}
			f.queue = append(f.queue, w)
		}
	}
	return -1, nil
}

// pathTo reconstructs the link path start -> v from the via array.
func (f *pathFinder) pathTo(v, start int) []topology.LinkID {
	var rev []topology.LinkID
	for u := v; u != start; u = f.topo.Link(f.via[u]).Src {
		rev = append(rev, f.via[u])
	}
	path := make([]topology.LinkID, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path
}
