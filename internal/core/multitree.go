// Package core implements MultiTree, the paper's primary contribution: a
// topology- and link-utilization-aware all-reduce algorithm (Algorithm 1)
// that builds |V| spanning schedule trees concurrently, top-down from the
// roots, allocating physical links per time step so that the resulting
// reduce-scatter and all-gather schedules are contention-free on any
// interconnect topology.
//
// Key properties reproduced from §III:
//
//   - One tree per node, so every node is a root of one flow and an
//     internal/leaf node of all others, using all bidirectional links.
//   - Trees take turns adding one node at a time (balance); parents are
//     considered in their order of addition (breadth-first), which packs
//     communication into levels near the roots and sparsifies the leaves.
//   - A fresh copy of the topology graph per time step; an edge allocated
//     to a tree is unavailable to every other tree within that step, so
//     same-step transfers never share a link.
//   - Reduce-scatter schedules are the time-reversed all-gather schedules
//     (Algorithm 1 lines 16-18).
//   - On switch-based (indirect) networks, links are allocated along
//     node-switch-...-switch-node paths discovered breadth-first
//     (§III-C3), and every transfer carries its allocated source route.
package core

import (
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// Algorithm is the schedule name used in reports.
const Algorithm = "multitree"

// TreeOrder selects how trees take turns during construction (§III-C1).
type TreeOrder int

const (
	// RoundRobinByRoot alternates trees by ascending root id, the paper's
	// default that "works fine in most cases, especially for symmetric
	// networks like Torus".
	RoundRobinByRoot TreeOrder = iota
	// ByRemainingHeight prioritizes trees with larger remaining height so
	// the longest paths are scheduled earliest, the paper's suggestion for
	// asymmetric or irregular networks.
	ByRemainingHeight
)

// Options tunes tree construction; the zero value reproduces the paper's
// defaults.
type Options struct {
	Order TreeOrder

	// ReverseNeighborOrder flips the adjacency preference (X before Y on
	// grids instead of Y before X); used by the dimension-order ablation.
	ReverseNeighborOrder bool

	// Trees caps the number of schedule trees (0 or >= N means one per
	// node, the paper's default). Fewer trees trade aggregate bandwidth
	// for fewer construction steps — the Blink-inspired knob §VII-C
	// leaves for future work. Roots are nodes 0..Trees-1.
	Trees int

	// ShortestPathFirst changes the per-turn choice on switch-based
	// networks: instead of taking the first parent (in addition order)
	// that can reach any child, the tree takes the (parent, child) pair
	// with the shortest free path, conserving scarce inter-switch links.
	// This is the "pruning and adjusting the trees" direction the paper's
	// §IV-A footnote leaves for future exploration; the tree-adjustment
	// ablation measures its effect. It helps fabrics whose inter-switch
	// links are the scarce resource (BiGraph: 37 -> 31 steps) and hurts
	// fabrics with abundant spine paths (Fat-Tree: deep same-switch
	// chains double the steps), which is why Auto tries both.
	ShortestPathFirst bool

	// Auto builds trees with both allocation strategies and keeps the
	// better set: Build scores both schedules with the fluid engine at
	// the requested data size; BuildTrees (no size available) keeps the
	// fewer-step set. DefaultOptions enables Auto on switch-based
	// networks.
	Auto bool

	// Observer receives planner lifecycle callbacks: phase boundaries
	// with counters, per-step progress, and pipeline position. Nil (the
	// default) keeps construction observation-free: no time reads, no
	// callbacks, zero allocations added to the hot search path
	// (TestPlanObserverNilZeroAlloc). The per-search counters themselves
	// are plain integer fields and are maintained either way.
	Observer obs.PlanObserver

	// Workers grows independent trees in parallel goroutines (<= 1 means
	// sequential). Each round speculates every active tree's search
	// against the round-start link pool and commits in the sequential
	// turn order, replaying searches invalidated by earlier commits — so
	// the trees built are byte-identical for every worker count. The
	// search counters are deterministic too, though the parallel path
	// skips different redundant work than the sequential one, so counter
	// totals may differ between Workers <= 1 and Workers > 1.
	Workers int

	// Shards partitions the root set geometrically (grid quadrants when
	// the topology exposes grid dimensions, contiguous root bands
	// otherwise) and grows each shard's trees against a private copy of
	// the step's link pool on its own goroutine. The per-shard results
	// merge through the same deterministic commit replay as Workers, so
	// the trees built are byte-identical for every shard count — sharding
	// only changes how much search work runs concurrently and how much
	// the merge replays. <= 1 means unsharded; Shards takes precedence
	// over Workers for the round itself (Workers still parallelizes the
	// eccentricity pass and lowering).
	Shards int
}

// DefaultOptions returns the recommended construction options for a
// topology: the paper's literal parent-order scan on direct networks
// (where every edge is one hop and the order is immaterial), and Auto on
// switch-based networks, where the better of the first-parent and
// shortest-path allocations depends on the fabric and the message size.
func DefaultOptions(topo *topology.Topology) Options {
	return Options{Auto: topo.Class() == topology.Indirect}
}

// BuildTrees runs Algorithm 1 and returns one spanning schedule tree per
// node, with per-edge all-gather time steps and allocated link paths.
func BuildTrees(topo *topology.Topology, opts Options) ([]*collective.Tree, error) {
	n := topo.Nodes()
	if n < 2 {
		return nil, fmt.Errorf("multitree: need at least 2 nodes, have %d", n)
	}
	if opts.Auto {
		return buildAuto(topo, opts)
	}
	o := opts.Observer
	if o != nil {
		o.PhaseStart(obs.PhaseTreeGrowth)
	}
	trees, counters, err := growTrees(topo, opts)
	if o != nil {
		o.PhaseEnd(obs.PhaseTreeGrowth, counters)
	}
	return trees, err
}

// buildAuto constructs trees under both allocation strategies and keeps
// the set that finishes in fewer time steps — the bandwidth-optimal
// choice. Build refines this per data size; BuildTrees without a size
// keeps the min-steps rule.
func buildAuto(topo *topology.Topology, opts Options) ([]*collective.Tree, error) {
	first, shortest, err := buildBoth(topo, opts)
	if err != nil {
		return nil, err
	}
	if shortest != nil && maxHeight(shortest) < maxHeight(first) {
		return shortest, nil
	}
	return first, nil
}

// buildBoth returns the paper-literal (first-parent) trees and, when it
// succeeds, the shortest-path-first variant.
func buildBoth(topo *topology.Topology, opts Options) (first, shortest []*collective.Tree, err error) {
	opts.Auto = false
	opts.ShortestPathFirst = false
	first, err = BuildTrees(topo, opts)
	if err != nil {
		return nil, nil, err
	}
	opts.ShortestPathFirst = true
	shortest, err = BuildTrees(topo, opts)
	if err != nil {
		return first, nil, nil // fall back to the paper-literal trees
	}
	return first, shortest, nil
}

func maxHeight(trees []*collective.Tree) int {
	h := 0
	for _, tr := range trees {
		if th := tr.Height(); th > h {
			h = th
		}
	}
	return h
}

// Build runs Algorithm 1 and lowers the trees to an executable schedule
// with reduce-scatter steps 1..tot and all-gather steps tot+1..2tot.
// With Auto set it builds both allocation variants, scores each with the
// fast fluid engine at the target size, and keeps the faster schedule:
// bushy first-parent trees win latency-bound small messages, step-minimal
// shortest-path trees win bandwidth-bound large ones — the size-threshold
// tuning NCCL applies between algorithms (footnote 1 of the paper),
// applied here between two MultiTree schedules of the same fabric. Both
// table sets fit comfortably in the NI (§V-A), so a deployment can hold
// both and select per collective size.
func Build(topo *topology.Topology, elems int, opts Options) (*collective.Schedule, error) {
	var tracker *pipelineTracker
	o := opts.Observer
	if o != nil {
		// Announce the pipeline shape up front so a progress reporter can
		// show "phase i/N" from the first step: Auto runs tree-growth and
		// lowering twice plus one variant-score pass.
		total := 2
		if opts.Auto {
			total = 5
		}
		o.Pipeline(0, total)
		tracker = &pipelineTracker{inner: o, total: total}
		opts.Observer = tracker
		o = tracker
	}
	if opts.Auto {
		first, shortest, err := buildBoth(topo, opts)
		if err != nil {
			return nil, err
		}
		sf, err := collective.TreesToScheduleParallel(Algorithm, topo, elems, first, opts.Workers, o)
		if err != nil {
			return nil, err
		}
		if shortest == nil {
			tracker.finish()
			return sf, nil
		}
		ss, err := collective.TreesToScheduleParallel(Algorithm, topo, elems, shortest, opts.Workers, o)
		if err != nil {
			return nil, err
		}
		if o != nil {
			o.PhaseStart(obs.PhaseVariantScore)
		}
		better := scoreSchedule(ss) < scoreSchedule(sf)
		if o != nil {
			o.PhaseEnd(obs.PhaseVariantScore, obs.PlanCounters{})
		}
		tracker.finish()
		if better {
			return ss, nil
		}
		return sf, nil
	}
	trees, err := BuildTrees(topo, opts)
	if err != nil {
		return nil, err
	}
	s, err := collective.TreesToScheduleParallel(Algorithm, topo, elems, trees, opts.Workers, o)
	if err == nil {
		tracker.finish()
	}
	return s, err
}

// pipelineTracker wraps the caller's observer to advance the pipeline
// position after every completed phase, so Build call sites do not thread
// a counter through the phase emit sites. Only allocated when an observer
// is attached.
type pipelineTracker struct {
	inner       obs.PlanObserver
	done, total int
}

func (p *pipelineTracker) PhaseStart(ph obs.PlanPhase) { p.inner.PhaseStart(ph) }

func (p *pipelineTracker) PhaseEnd(ph obs.PlanPhase, c obs.PlanCounters) {
	p.inner.PhaseEnd(ph, c)
	if p.done < p.total {
		p.done++
	}
	p.inner.Pipeline(p.done, p.total)
}

func (p *pipelineTracker) PlanProgress(ph obs.PlanPhase, done, total int64) {
	p.inner.PlanProgress(ph, done, total)
}

func (p *pipelineTracker) Pipeline(done, total int) { p.inner.Pipeline(done, total) }

// finish snaps the pipeline to complete — the Auto fallback path runs
// fewer phases than announced. Safe on nil receivers.
func (p *pipelineTracker) finish() {
	if p == nil || p.done == p.total {
		return
	}
	p.done = p.total
	p.inner.Pipeline(p.done, p.total)
}
