package core

import (
	"fmt"
	"sort"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

// This file implements the broader collective operations of §VII-B:
// "Reduce-scatter and all-gather are naturally supported ... The
// all-gather trees can also easily support all-to-all collective in recent
// DNN workloads such as DLRM."

// BuildReduceScatter constructs only the reduce phase of MultiTree: after
// it completes, node i holds the fully reduced flow-i segment (and stale
// copies of the rest). Steps run 1..tot.
func BuildReduceScatter(topo *topology.Topology, elems int, opts Options) (*collective.Schedule, error) {
	trees, err := BuildTrees(topo, opts)
	if err != nil {
		return nil, err
	}
	full, err := collective.TreesToSchedule(Algorithm+"-rs", topo, elems, trees)
	if err != nil {
		return nil, err
	}
	return phaseOnly(full, collective.Reduce), nil
}

// BuildAllGather constructs only the broadcast phase: it assumes node i
// already holds the final flow-i segment and distributes all segments to
// all nodes. Steps run 1..tot.
func BuildAllGather(topo *topology.Topology, elems int, opts Options) (*collective.Schedule, error) {
	trees, err := BuildTrees(topo, opts)
	if err != nil {
		return nil, err
	}
	s := collective.NewSchedule(Algorithm+"-ag", topo, elems, len(trees))
	tot := 0
	for _, tr := range trees {
		if h := tr.Height(); h > tot {
			tot = h
		}
	}
	for _, tr := range trees {
		type edge struct {
			child topology.NodeID
			step  int
		}
		var edges []edge
		for node := range tr.Parent {
			if topology.NodeID(node) != tr.Root {
				edges = append(edges, edge{topology.NodeID(node), tr.AGStep[node]})
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].step != edges[j].step {
				return edges[i].step < edges[j].step
			}
			return edges[i].child < edges[j].child
		})
		gatherInto := make([]collective.TransferID, len(tr.Parent))
		for i := range gatherInto {
			gatherInto[i] = -1
		}
		for _, e := range edges {
			p := tr.Parent[e.child]
			var deps []collective.TransferID
			if p != tr.Root && gatherInto[p] >= 0 {
				deps = []collective.TransferID{gatherInto[p]}
			}
			gatherInto[e.child] = s.Add(collective.Transfer{
				Src: p, Dst: e.child, Op: collective.Gather, Flow: tr.Flow,
				Step: e.step, Deps: deps, Path: tr.Path[e.child],
			})
		}
	}
	s.Steps = tot
	return s, nil
}

// phaseOnly extracts one opcode's transfers into a fresh schedule,
// remapping ids and dropping cross-phase dependencies (which, for the
// reduce phase, never point into the gather phase).
func phaseOnly(full *collective.Schedule, op collective.Op) *collective.Schedule {
	out := &collective.Schedule{
		Algorithm: full.Algorithm,
		Topo:      full.Topo,
		Elems:     full.Elems,
		Flows:     full.Flows,
	}
	remap := make([]collective.TransferID, len(full.Transfers))
	for i := range remap {
		remap[i] = -1
	}
	for i := range full.Transfers {
		t := full.Transfers[i]
		if t.Op != op {
			continue
		}
		var deps []collective.TransferID
		for _, d := range t.Deps {
			if remap[d] >= 0 {
				deps = append(deps, remap[d])
			}
		}
		t.Deps = deps
		t.ID = 0
		remap[i] = out.Add(t)
	}
	return out
}

// BuildAllToAll constructs an all-to-all (personalized exchange) schedule
// over the all-gather trees: node i's message for node j rides tree j's
// reduce path from i up to root j, hop by hop, without reduction. elems is
// the size of ONE personalized message, so each node injects
// (N-1) * elems elements.
//
// Flows are indexed (src, dstTree): flow = src*N + dst carries src's
// message for dst; the executable semantics use Gather (copy-forward), so
// collective.Execute can verify delivery.
func BuildAllToAll(topo *topology.Topology, elems int, opts Options) (*collective.Schedule, error) {
	trees, err := BuildTrees(topo, opts)
	if err != nil {
		return nil, err
	}
	n := topo.Nodes()
	s := &collective.Schedule{
		Algorithm: Algorithm + "-a2a",
		Topo:      topo,
		Elems:     n * n * elems,
	}
	// Flow (i, j) occupies segment (i*n + j) * elems. The diagonal (i == j)
	// segments exist but never move.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Flows = append(s.Flows, collective.Range{Off: (i*n + j) * elems, Len: elems})
		}
	}
	tot := 0
	for _, tr := range trees {
		if h := tr.Height(); h > tot {
			tot = h
		}
	}
	for j, tr := range trees {
		// Messages climb toward root j along the reversed tree edges; a
		// node forwards a message one step after receiving it. Process
		// deepest senders first so dependencies exist.
		type hop struct {
			node topology.NodeID
			step int // AGStep of the node (depth proxy)
		}
		var order []hop
		for node := range tr.Parent {
			if topology.NodeID(node) != tr.Root {
				order = append(order, hop{topology.NodeID(node), tr.AGStep[node]})
			}
		}
		sort.Slice(order, func(a, b int) bool {
			if order[a].step != order[b].step {
				return order[a].step > order[b].step
			}
			return order[a].node < order[b].node
		})
		// carrying[v] lists, per origin i, the transfer that delivered i's
		// message to v (or -1 if v == i).
		carrying := make([][]collective.TransferID, n)
		for v := range carrying {
			carrying[v] = make([]collective.TransferID, n)
			for i := range carrying[v] {
				carrying[v][i] = -1
			}
		}
		arrivedAt := make([][]bool, n)
		for v := range arrivedAt {
			arrivedAt[v] = make([]bool, n)
			arrivedAt[v][v] = true
		}
		for _, h := range order {
			child := h.node
			parent := tr.Parent[child]
			step := tot - h.step + 1
			// The child forwards every origin message in its subtree,
			// including its own. Subtree members are exactly the nodes
			// whose root-ward path passes child; we accumulate them by
			// processing deepest-first.
			for origin := 0; origin < n; origin++ {
				if !arrivedAt[child][origin] {
					continue
				}
				var deps []collective.TransferID
				if d := carrying[child][origin]; d >= 0 {
					deps = []collective.TransferID{d}
				}
				id := s.Add(collective.Transfer{
					Src: child, Dst: parent,
					Op: collective.Gather, Flow: origin*n + j,
					Step: step, Deps: deps,
					Path: reversePathA2A(topo, tr.Path[child]),
				})
				arrivedAt[parent][origin] = true
				carrying[parent][origin] = id
			}
		}
	}
	s.Steps = tot
	return s, nil
}

// reversePathA2A mirrors collective.TreesToSchedule's path reversal.
func reversePathA2A(topo *topology.Topology, path []topology.LinkID) []topology.LinkID {
	if path == nil {
		return nil
	}
	out := make([]topology.LinkID, len(path))
	for i, id := range path {
		out[len(path)-1-i] = topo.ReverseLink(topo.Link(id))
	}
	return out
}

// VerifyAllToAll executes an all-to-all schedule and checks that every
// destination received every origin's personalized message.
func VerifyAllToAll(s *collective.Schedule, topo *topology.Topology, elems int) error {
	n := topo.Nodes()
	in := make([][]float32, n)
	for i := range in {
		in[i] = make([]float32, s.Elems)
		for j := 0; j < n; j++ {
			for k := 0; k < elems; k++ {
				// Node i's message for j is a constant pattern recognizable
				// at the destination.
				in[i][(i*n+j)*elems+k] = float32(100*i + j + 1)
			}
		}
	}
	out, err := collective.Execute(s, in)
	if err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			off := (i*n + j) * elems
			for k := 0; k < elems; k++ {
				if got, want := out[j][off+k], float32(100*i+j+1); got != want {
					return fmt.Errorf("core: all-to-all: node %d slot (%d,%d)[%d] = %v, want %v",
						j, i, j, k, got, want)
				}
			}
		}
	}
	return nil
}
