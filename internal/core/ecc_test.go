package core

import (
	"strings"
	"testing"

	"multitree/internal/topology"
)

// disconnectedPair builds a direct fabric with two components: nodes
// 0-3 in a ring, nodes 4-5 linked to each other only.
func disconnectedPair() *topology.Topology {
	c := topology.NewCustom("split-6", 6, 0)
	c.Link(0, 1, cfg()).Link(1, 2, cfg()).Link(2, 3, cfg()).Link(3, 0, cfg())
	c.Link(4, 5, cfg())
	return c.BuildUnchecked()
}

// TestEccentricitiesUnreachableSentinel pins the degraded-topology
// contract: a source that cannot reach every node reports
// EccUnreachable instead of the silently-truncated max the old code
// produced, which under-scored exactly the roots that cannot grow a
// full tree.
func TestEccentricitiesUnreachableSentinel(t *testing.T) {
	ecc := eccentricities(disconnectedPair(), 1)
	for i, e := range ecc {
		if e != EccUnreachable {
			t.Fatalf("node %d: ecc %d, want EccUnreachable on a split fabric", i, e)
		}
	}
	// A connected fabric keeps real values.
	for i, e := range eccentricities(topology.Mesh(4, 4, cfg()), 1) {
		if e < 0 {
			t.Fatalf("node %d: sentinel on a connected mesh", i)
		}
	}
}

// TestGrowthRefusesDisconnected verifies both entry points into growth
// error out with a witness pair instead of growing partial trees: the
// eccentricity ordering up front, and the in-step stall diagnosis for
// the default order.
func TestGrowthRefusesDisconnected(t *testing.T) {
	topo := disconnectedPair()
	for _, opts := range []Options{{}, {Order: ByRemainingHeight}} {
		_, err := BuildTrees(topo, opts)
		if err == nil {
			t.Fatalf("order=%v: BuildTrees succeeded on a disconnected fabric", opts.Order)
		}
		if !strings.Contains(err.Error(), "cannot reach node") {
			t.Fatalf("order=%v: error %q does not name the unreachable pair", opts.Order, err)
		}
	}
}

// TestEccentricitiesIncrementalExact checks the incremental pass against
// the per-source BFS on every fabric class it claims: the distance
// update between adjacent sources must reproduce the exact
// eccentricities, not an approximation.
func TestEccentricitiesIncrementalExact(t *testing.T) {
	topos := []*topology.Topology{
		topology.Mesh(4, 4, cfg()),
		topology.Mesh(7, 3, cfg()),
		topology.Torus(8, 8, cfg()),
		topology.Torus(5, 4, cfg()),
	}
	for _, topo := range topos {
		got := eccentricitiesIncremental(topo)
		if got == nil {
			t.Fatalf("%s: incremental pass refused a direct symmetric fabric", topo.Name())
		}
		s := newEccScratch(topo)
		for src := 0; src < topo.Nodes(); src++ {
			if want := s.from(src); got[src] != want {
				t.Fatalf("%s node %d: incremental ecc %d, want %d", topo.Name(), src, got[src], want)
			}
		}
	}
	// Indirect fabrics must fall back: the relay rule breaks the
	// triangle inequality the seeding relies on.
	if eccentricitiesIncremental(topology.BiGraph(4, 4, cfg())) != nil {
		t.Fatal("incremental pass accepted an indirect fabric")
	}
	// Asymmetric links must fall back too.
	a := topology.NewCustom("oneway-3", 3, 0)
	a.Link(0, 1, cfg()).Link(1, 2, cfg())
	a.DirectedLink(2, 0, cfg())
	asym, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	if eccentricitiesIncremental(asym) != nil {
		t.Fatal("incremental pass accepted asymmetric links")
	}
}
