package core

import (
	"math"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/topology"
)

// TestReduceScatterSemantics: after the reduce phase, node i holds the
// fully reduced flow-i segment.
func TestReduceScatterSemantics(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	const elems = 320
	s, err := BuildReduceScatter(topo, elems, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	in := collective.RampInputs(topo.Nodes(), elems)
	out, err := collective.Execute(s, in)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, elems)
	for _, v := range in {
		for i, x := range v {
			want[i] += float64(x)
		}
	}
	for node := 0; node < topo.Nodes(); node++ {
		seg := s.Flows[node]
		for i := seg.Off; i < seg.End(); i++ {
			if diff := math.Abs(float64(out[node][i]) - want[i]); diff > 1e-2 {
				t.Fatalf("node %d elem %d = %v, want %v", node, i, out[node][i], want[i])
			}
		}
	}
	// Reduce-scatter moves (N-1)/N * S per node: half an all-reduce.
	full, err := Build(topo, elems, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if 2*s.TotalBytes() != full.TotalBytes() {
		t.Errorf("reduce-scatter bytes %d, want half of all-reduce %d", s.TotalBytes(), full.TotalBytes())
	}
}

// TestAllGatherSemantics: starting from per-node owned segments, every
// node ends with every segment.
func TestAllGatherSemantics(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	const elems = 320
	s, err := BuildAllGather(topo, elems, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Node i owns segment i with the pattern i+1; others zero.
	n := topo.Nodes()
	in := make([][]float32, n)
	for i := range in {
		in[i] = make([]float32, elems)
		seg := s.Flows[i]
		for k := seg.Off; k < seg.End(); k++ {
			in[i][k] = float32(i + 1)
		}
	}
	out, err := collective.Execute(s, in)
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < n; node++ {
		for owner := 0; owner < n; owner++ {
			seg := s.Flows[owner]
			for k := seg.Off; k < seg.End(); k++ {
				if out[node][k] != float32(owner+1) {
					t.Fatalf("node %d segment %d elem %d = %v, want %v",
						node, owner, k, out[node][k], float32(owner+1))
				}
			}
		}
	}
	// All-gather steps run 1..tot (half the all-reduce schedule).
	if full, _ := Build(topo, elems, Options{}); s.Steps*2 != full.Steps {
		t.Errorf("all-gather steps %d, want half of %d", s.Steps, full.Steps)
	}
}

// TestAllGatherContentionFree: the standalone phases keep the per-step
// link-allocation guarantee.
func TestPhasesContentionFree(t *testing.T) {
	topo := topology.Mesh(4, 4, cfg())
	ag, err := BuildAllGather(topo, 4096, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a := collective.Analyze(ag); !a.ContentionFree() {
		t.Errorf("all-gather contends: %v", a)
	}
	rs, err := BuildReduceScatter(topo, 4096, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a := collective.Analyze(rs); !a.ContentionFree() {
		t.Errorf("reduce-scatter contends: %v", a)
	}
}

// TestAllToAllDelivery: every node receives every other node's
// personalized message (the DLRM-style collective of §VII-B).
func TestAllToAllDelivery(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.Mesh(2, 2, cfg()),
		topology.Torus(4, 4, cfg()),
		topology.FatTree(4, 4, 4, cfg()),
	} {
		s, err := BuildAllToAll(topo, 8, Options{})
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		if err := VerifyAllToAll(s, topo, 8); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

// TestAllToAllSimulates: the schedule runs through the network engine.
func TestAllToAllSimulates(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s, err := BuildAllToAll(topo, 1024, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := network.SimulateFluid(s, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("all-to-all took zero time")
	}
}

// TestReducedTreeCount exercises the Blink-style §VII-C knob: fewer trees
// still all-reduce correctly with proportionally fewer flows, and finish
// construction in no more steps than the full set.
func TestReducedTreeCount(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	for _, k := range []int{1, 2, 4, 8} {
		trees, err := BuildTrees(topo, Options{Trees: k})
		if err != nil {
			t.Fatalf("Trees=%d: %v", k, err)
		}
		if len(trees) != k {
			t.Fatalf("Trees=%d built %d trees", k, len(trees))
		}
		s, err := collective.TreesToSchedule(Algorithm, topo, 513, trees)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Flows) != k {
			t.Errorf("Trees=%d: %d flows", k, len(s.Flows))
		}
		if err := collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), 513)); err != nil {
			t.Errorf("Trees=%d: %v", k, err)
		}
		if a := collective.Analyze(s); !a.ContentionFree() {
			t.Errorf("Trees=%d contends: %v", k, a)
		}
	}
	full, _ := BuildTrees(topo, Options{})
	few, _ := BuildTrees(topo, Options{Trees: 2})
	maxH := func(ts []*collective.Tree) int {
		h := 0
		for _, tr := range ts {
			if th := tr.Height(); th > h {
				h = th
			}
		}
		return h
	}
	if maxH(few) > maxH(full) {
		t.Errorf("2 trees need %d steps, more than %d for the full set", maxH(few), maxH(full))
	}
}
