package core

import (
	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Self-registration in the central algorithm registry: MultiTree applies
// to any connected topology with at least two nodes (Algorithm 1 is
// topology-agnostic).
func init() {
	algorithms.Register(algorithms.Spec{
		Name:  Algorithm,
		Order: 50,
		Note:  "the paper's MultiTree, any topology with >= 2 nodes",
		Build: func(topo *topology.Topology, elems int, aopts algorithms.Options) (*collective.Schedule, error) {
			opts := DefaultOptions(topo)
			opts.Observer = aopts.Observer
			opts.Workers = aopts.Workers
			opts.Shards = aopts.Shards
			return Build(topo, elems, opts)
		},
		Supports: func(topo *topology.Topology) bool { return topo.Nodes() >= 2 },
	})
}
