package ring2d_test

import (
	"testing"
	"testing/quick"

	"multitree/internal/collective"
	"multitree/internal/ring2d"
	"multitree/internal/topology"
)

func cfg() topology.LinkConfig { return topology.DefaultLinkConfig() }

func TestRejectsNonGrid(t *testing.T) {
	topo := topology.FatTree(4, 4, 4, cfg())
	if _, err := ring2d.Build(topo, 100); err == nil {
		t.Error("fat-tree accepted by 2D-Ring")
	}
}

// TestStepsLow: 2D-Ring's step count is 2(nx-1)+2(ny-1), far below flat
// ring's 2(nx*ny-1) — its latency advantage.
func TestStepsLow(t *testing.T) {
	topo := topology.Torus(8, 8, cfg())
	s, err := ring2d.Build(topo, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*(8-1) + 2*(8-1); s.Steps != want {
		t.Errorf("steps = %d, want %d", s.Steps, want)
	}
}

// TestVolumeNearDouble: the communicated volume approaches 2x the
// bandwidth-optimal amount (the paper's 2N(N-1) vs N^2-1 comparison).
func TestVolumeNearDouble(t *testing.T) {
	topo := topology.Torus(8, 8, cfg())
	s, err := ring2d.Build(topo, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	a := collective.Analyze(s)
	if ov := a.BandwidthOverhead(); ov < 1.6 || ov > 2.0 {
		t.Errorf("bandwidth overhead = %.2f, want ~1.8 (approaching 2)", ov)
	}
}

// TestQuartersUseAllDirections: phase-one transfers occupy all four link
// directions of an interior torus node.
func TestQuartersUseAllDirections(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s, err := ring2d.Build(topo, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	dirs := map[topology.LinkID]bool{}
	for i := range s.Transfers {
		tr := &s.Transfers[i]
		if tr.Step != 1 || tr.Src != 5 {
			continue
		}
		for _, l := range s.PathOf(tr) {
			dirs[l] = true
		}
	}
	if len(dirs) != 4 {
		t.Errorf("node 5 uses %d link directions at step 1, want 4", len(dirs))
	}
}

// TestContentionFreeOnTorus: on a true torus the four quarters never share
// a link within a step.
func TestContentionFreeOnTorus(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s, err := ring2d.Build(topo, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if a := collective.Analyze(s); !a.ContentionFree() {
		t.Errorf("2d-ring contended on torus: overlap %d", a.MaxLinkOverlap)
	}
}

// TestMeshWrapContends: on a mesh the logical wrap hop crosses the row and
// collides with the opposite-direction quarter — the §VI-A reason 2D-Ring
// loses to flat ring on large Meshes.
func TestMeshWrapContends(t *testing.T) {
	topo := topology.Mesh(4, 4, cfg())
	s, err := ring2d.Build(topo, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if a := collective.Analyze(s); a.ContentionFree() {
		t.Error("mesh 2d-ring reported contention-free; wrap hops must contend")
	}
}

// TestCorrectnessProperty covers random grid shapes and sizes, including
// non-square grids.
func TestCorrectnessProperty(t *testing.T) {
	f := func(a, b uint8, e uint16, wrap bool) bool {
		nx := 2 + int(a)%4
		ny := 2 + int(b)%4
		elems := 16 + int(e)%2000
		var topo *topology.Topology
		if wrap {
			topo = topology.Torus(nx, ny, cfg())
		} else {
			topo = topology.Mesh(nx, ny, cfg())
		}
		s, err := ring2d.Build(topo, elems)
		if err != nil {
			return false
		}
		return collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), elems)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
