// Package ring2d implements the 2D-Ring all-reduce of Ying et al. used on
// TPU pods (§II-C of the paper): the gradient is all-reduced with rings
// along one grid dimension, then rings along the other. To use all four
// torus links of every node the gradient is split into four quarters that
// differ in dimension order and ring direction:
//
//	quarter 0: X-first, forward rings    quarter 1: X-first, backward
//	quarter 2: Y-first, forward          quarter 3: Y-first, backward
//
// During phase one the four quarters occupy the X+, X-, Y+ and Y- links
// respectively; in phase two they swap dimensions, so all links stay busy
// throughout — the full-utilization property the paper credits 2D-Ring
// with. The cost is that every element crosses two full ring all-reduces:
// the communicated volume approaches twice the bandwidth-optimal amount
// ("2D-ring transmits 2N(N-1) data while flat ring communicates N^2-1"),
// which is exactly the inefficiency MultiTree removes.
package ring2d

import (
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Algorithm is the schedule name used in reports.
const Algorithm = "2d-ring"

// Build constructs the 2D-Ring schedule. The topology must be a Mesh or
// Torus (it needs grid coordinates). On a Mesh the rings still wrap
// logically; the wrap hop crosses the whole row against same-direction
// traffic, which is why 2D-Ring loses to flat ring on large Meshes
// (§VI-A).
func Build(topo *topology.Topology, elems int) (*collective.Schedule, error) {
	nx, ny := topo.GridDims()
	if nx == 0 || ny == 0 {
		return nil, fmt.Errorf("ring2d: %s is not a grid topology", topo.Name())
	}
	s := &collective.Schedule{Algorithm: Algorithm, Topo: topo, Elems: elems}
	quarters := collective.Partition(elems, 4)

	node := func(x, y int) topology.NodeID { return topology.NodeID(y*nx + x) }
	// xLines[y] lists row y left to right; yLines[x] lists column x top to
	// bottom.
	xLines := make([][]topology.NodeID, ny)
	for y := range xLines {
		for x := 0; x < nx; x++ {
			xLines[y] = append(xLines[y], node(x, y))
		}
	}
	yLines := make([][]topology.NodeID, nx)
	for x := range yLines {
		for y := 0; y < ny; y++ {
			yLines[x] = append(yLines[x], node(x, y))
		}
	}

	for q, qr := range quarters {
		first, second := xLines, yLines
		if q >= 2 {
			first, second = yLines, xLines
		}
		backward := q%2 == 1
		phase1Steps := 2 * (len(first[0]) - 1)
		recv := ringPhase(s, first, qr, backward, 0, nil)
		ringPhase(s, second, qr, backward, phase1Steps, recv)
	}
	return s, nil
}

// ringPhase runs one ring all-reduce of segment qr along every line in
// lines, starting at stepBase. backward reverses ring direction. inDeps,
// when non-nil, gates each node's first send on the transfers it received
// in the previous phase. It returns the transfers received per node, for
// chaining the next phase.
func ringPhase(s *collective.Schedule, lines [][]topology.NodeID, qr collective.Range,
	backward bool, stepBase int, inDeps map[topology.NodeID][]collective.TransferID,
) map[topology.NodeID][]collective.TransferID {
	n := len(lines[0])
	if backward {
		// A backward ring is a forward ring over the reversed node order.
		rev := make([][]topology.NodeID, len(lines))
		for i, line := range lines {
			r := make([]topology.NodeID, n)
			for j, v := range line {
				r[n-1-j] = v
			}
			rev[i] = r
		}
		lines = rev
	}
	// Register this phase's chunk flows.
	chunkBase := len(s.Flows)
	for _, c := range collective.Partition(qr.Len, n) {
		s.Flows = append(s.Flows, collective.Range{Off: qr.Off + c.Off, Len: c.Len})
	}
	recv := make(map[topology.NodeID][]collective.TransferID)
	// last[line][chunk] is the chunk's latest transfer in that line.
	last := make([][]collective.TransferID, len(lines))
	for i := range last {
		last[i] = make([]collective.TransferID, n)
		for c := range last[i] {
			last[i][c] = -1
		}
	}
	hop := func(line, c, srcPos, step int, op collective.Op) {
		dstPos := (srcPos + 1) % n
		src, dst := lines[line][srcPos], lines[line][dstPos]
		var deps []collective.TransferID
		if prev := last[line][c]; prev >= 0 {
			deps = []collective.TransferID{prev}
		} else if inDeps != nil {
			deps = append(deps, inDeps[src]...)
		}
		id := s.Add(collective.Transfer{
			Src: src, Dst: dst, Op: op, Flow: chunkBase + c,
			Step: stepBase + step, Deps: deps,
		})
		last[line][c] = id
		recv[dst] = append(recv[dst], id)
	}
	for t := 1; t <= n-1; t++ {
		for line := range lines {
			for c := 0; c < n; c++ {
				hop(line, c, (c+t)%n, t, collective.Reduce)
			}
		}
	}
	for t := 1; t <= n-1; t++ {
		for line := range lines {
			for c := 0; c < n; c++ {
				hop(line, c, (c+t-1)%n, n-1+t, collective.Gather)
			}
		}
	}
	return recv
}
