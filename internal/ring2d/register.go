package ring2d

import (
	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Self-registration in the central algorithm registry: 2D-Ring needs grid
// coordinates (Mesh or Torus).
func init() {
	algorithms.Register(algorithms.Spec{
		Name:  Algorithm,
		Order: 30,
		Note:  "TPU-pod 2D-Ring, grid (mesh/torus) topologies only",
		Build: func(topo *topology.Topology, elems int, _ algorithms.Options) (*collective.Schedule, error) {
			return Build(topo, elems)
		},
		Supports: func(topo *topology.Topology) bool {
			nx, _ := topo.GridDims()
			return nx > 0
		},
	})
}
