package training_test

import (
	"testing"

	"multitree/internal/accel"
	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/model"
	"multitree/internal/network"
	"multitree/internal/ring"
	"multitree/internal/topology"
	"multitree/internal/training"
)

func config(t *testing.T, alg string) training.Config {
	t.Helper()
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	build := func(tp *topology.Topology, elems int) (*collective.Schedule, error) {
		if alg == "ring" {
			return ring.Build(tp, elems), nil
		}
		return core.Build(tp, elems, core.Options{})
	}
	return training.Config{
		Topo:         topo,
		Accel:        accel.Default(),
		BatchPerNode: 16,
		Net:          network.DefaultConfig(),
		Build:        build,
	}
}

func TestNonOverlappedAccounting(t *testing.T) {
	cfg := config(t, "ring")
	b, err := cfg.NonOverlapped(model.GoogLeNet())
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != b.Forward+b.Backward+b.Comm {
		t.Errorf("total %d != fwd %d + bwd %d + comm %d", b.Total, b.Forward, b.Backward, b.Comm)
	}
	if b.Exposed != b.Comm || b.Overlap != 0 {
		t.Errorf("non-overlapped exposure wrong: %+v", b)
	}
	if b.Comm == 0 || b.Forward == 0 || b.Backward == 0 {
		t.Errorf("zero component: %+v", b)
	}
}

func TestOverlappedAccounting(t *testing.T) {
	cfg := config(t, "ring")
	b, err := cfg.Overlapped(model.GoogLeNet())
	if err != nil {
		t.Fatal(err)
	}
	if b.Exposed+b.Overlap != b.Comm {
		t.Errorf("exposed %d + overlap %d != comm %d", b.Exposed, b.Overlap, b.Comm)
	}
	if b.Total < b.Forward+b.Backward {
		t.Errorf("total %d below compute %d", b.Total, b.Forward+b.Backward)
	}
	if b.Total > b.Forward+b.Backward+b.Comm {
		t.Errorf("total %d exceeds serial time", b.Total)
	}
}

// TestOverlapHelps: layer-wise all-reduce never makes an iteration slower
// than the non-overlapped sequence (same algorithm, same model).
func TestOverlapHelps(t *testing.T) {
	cfg := config(t, "ring")
	for _, net := range model.Zoo() {
		seq, err := cfg.NonOverlapped(net)
		if err != nil {
			t.Fatal(err)
		}
		ovl, err := cfg.Overlapped(net)
		if err != nil {
			t.Fatal(err)
		}
		// Layer-wise all-reduce pays per-layer latency, so allow a small
		// margin on communication-dominated models.
		if float64(ovl.Total) > 1.10*float64(seq.Total) {
			t.Errorf("%s: overlapped %d much slower than sequential %d", net.Name, ovl.Total, seq.Total)
		}
	}
}

// TestMultiTreeBeatsRing end to end on a communication-heavy model.
func TestMultiTreeBeatsRing(t *testing.T) {
	ringCfg := config(t, "ring")
	mtCfg := config(t, "multitree")
	net := model.Transformer()
	r, err := ringCfg.NonOverlapped(net)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mtCfg.NonOverlapped(net)
	if err != nil {
		t.Fatal(err)
	}
	if m.Comm >= r.Comm {
		t.Errorf("multitree comm %d not below ring %d", m.Comm, r.Comm)
	}
	if speedup := float64(r.Comm) / float64(m.Comm); speedup < 1.5 {
		t.Errorf("all-reduce speedup %.2f, want > 1.5", speedup)
	}
}

// TestCNNOverlapHidesComm: for a compute-heavy CNN, MultiTree's layer-wise
// all-reduce hides almost all communication (Fig. 11b's CNN story).
func TestCNNOverlapHidesComm(t *testing.T) {
	cfg := config(t, "multitree")
	b, err := cfg.Overlapped(model.FasterRCNN())
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(b.Exposed) / float64(b.Total); frac > 0.05 {
		t.Errorf("exposed comm fraction %.2f, want < 0.05 for a CNN under MultiTree", frac)
	}
}

func TestZeroParamLayerCostsNoComm(t *testing.T) {
	cfg := config(t, "ring")
	net := model.Network{Name: "attn-only", Layers: []model.Layer{
		{Name: "attn", Kind: model.Attention, Seq: 16, M: 64},
	}}
	b, err := cfg.NonOverlapped(net)
	if err != nil {
		t.Fatal(err)
	}
	if b.Comm != 0 {
		t.Errorf("parameter-free network has comm %d", b.Comm)
	}
}

func TestBreakdownString(t *testing.T) {
	b := training.Breakdown{Forward: 1, Backward: 2, Comm: 3, Exposed: 3, Total: 6}
	if s := b.String(); s == "" {
		t.Error("empty String()")
	}
	if b.Compute() != 3 {
		t.Errorf("Compute() = %d, want 3", b.Compute())
	}
}

// TestGradientFusion captures the fusion tradeoff: bucketing amortizes
// per-collective latency (network busy time always drops), and for
// networks made of many tiny layers — where each layer-wise all-reduce is
// latency-bound — it shortens the whole iteration. On coarse-layer CNNs
// it may instead delay communication start, so the iteration is allowed
// to shift slightly either way.
func TestGradientFusion(t *testing.T) {
	base := config(t, "multitree")
	fused := base
	fused.FusionBytes = 4 << 20

	// Busy-time reduction on real models.
	for _, net := range []model.Network{model.ResNet50(), model.GoogLeNet()} {
		b0, err := base.Overlapped(net)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := fused.Overlapped(net)
		if err != nil {
			t.Fatal(err)
		}
		if b1.Comm > b0.Comm {
			t.Errorf("%s: fusion increased comm busy time %d -> %d", net.Name, b0.Comm, b1.Comm)
		}
		if float64(b1.Total) > 1.05*float64(b0.Total) {
			t.Errorf("%s: fusion slowed the iteration badly: %d -> %d", net.Name, b0.Total, b1.Total)
		}
	}

	// End-to-end win on a many-tiny-layers network (latency-bound
	// collectives).
	tiny := model.Network{Name: "tiny-mlp"}
	for i := 0; i < 80; i++ {
		tiny.Layers = append(tiny.Layers, model.Layer{
			Name: "fc", Kind: model.FC, C: 64, M: 64,
		})
	}
	b0, err := base.Overlapped(tiny)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := fused.Overlapped(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Total >= b0.Total {
		t.Errorf("tiny-mlp: fusion did not help: %d -> %d", b0.Total, b1.Total)
	}
}
