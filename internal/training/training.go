// Package training simulates one data-parallel training iteration (§V-B,
// Fig. 11): forward and back-propagation compute on every node's
// accelerator, plus the gradient all-reduce, in two modes:
//
//   - NonOverlapped: forward + backward + one all-reduce of the full
//     gradient (Fig. 11a);
//   - Overlapped: layer-wise all-reduce — each layer's gradient is queued
//     for all-reduce as soon as its backward pass finishes, so
//     communication overlaps the remaining back-propagation (Fig. 11b).
package training

import (
	"fmt"

	"multitree/internal/accel"
	"multitree/internal/collective"
	"multitree/internal/model"
	"multitree/internal/network"
	"multitree/internal/sim"
	"multitree/internal/topology"
)

// ScheduleBuilder constructs an all-reduce schedule for elems gradient
// elements on a topology; each algorithm package provides one.
type ScheduleBuilder func(topo *topology.Topology, elems int) (*collective.Schedule, error)

// Engine executes a schedule; network.SimulateFluid or
// network.SimulatePackets.
type Engine func(*collective.Schedule, network.Config) (*network.Result, error)

// Config assembles a training system.
type Config struct {
	Topo         *topology.Topology
	Accel        accel.Accelerator
	BatchPerNode int // 16 in the paper
	Net          network.Config
	Build        ScheduleBuilder
	Engine       Engine // nil selects the fluid engine

	// FusionBytes, when positive, coalesces consecutive finished layers
	// into one all-reduce until the bucket reaches this many gradient
	// bytes — the Horovod-style gradient fusion extension to the paper's
	// pure layer-wise scheme. It amortizes per-collective latency for
	// networks with many small layers; zero keeps the paper's behaviour.
	FusionBytes int64
}

// Breakdown reports one iteration's time composition in cycles.
type Breakdown struct {
	Forward  sim.Time
	Backward sim.Time

	// Comm is the total all-reduce busy time; Exposed is the part not
	// hidden under compute (equal to Comm in non-overlapped mode);
	// Overlap is Comm - Exposed.
	Comm    sim.Time
	Exposed sim.Time
	Overlap sim.Time

	Total sim.Time
}

// Compute returns forward + backward time.
func (b Breakdown) Compute() sim.Time { return b.Forward + b.Backward }

func (b Breakdown) String() string {
	return fmt.Sprintf("fwd=%d bwd=%d comm=%d (exposed %d, overlapped %d) total=%d",
		b.Forward, b.Backward, b.Comm, b.Exposed, b.Overlap, b.Total)
}

func (c Config) engine() Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return network.SimulateFluid
}

// allReduceCycles simulates an all-reduce of elems gradient elements.
func (c Config) allReduceCycles(elems int) (sim.Time, error) {
	if elems <= 0 {
		return 0, nil
	}
	s, err := c.Build(c.Topo, elems)
	if err != nil {
		return 0, err
	}
	res, err := c.engine()(s, c.Net)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// NonOverlapped simulates forward + back-propagation + one full-gradient
// all-reduce (Fig. 11a's training approach).
func (c Config) NonOverlapped(net model.Network) (Breakdown, error) {
	var b Breakdown
	b.Forward = sim.Time(c.Accel.NetworkForwardCycles(net, c.BatchPerNode))
	b.Backward = sim.Time(c.Accel.NetworkBackwardCycles(net, c.BatchPerNode))
	comm, err := c.allReduceCycles(int(net.Params()))
	if err != nil {
		return b, err
	}
	b.Comm = comm
	b.Exposed = comm
	b.Total = b.Forward + b.Backward + b.Comm
	return b, nil
}

// Overlapped simulates layer-wise all-reduce (Fig. 11b): back-propagation
// walks the layers in reverse; each finished layer enqueues its gradient
// all-reduce on the network, which serves the queue in FIFO order
// concurrently with the remaining compute.
func (c Config) Overlapped(net model.Network) (Breakdown, error) {
	var b Breakdown
	b.Forward = sim.Time(c.Accel.NetworkForwardCycles(net, c.BatchPerNode))

	// Back-propagation completion time per layer, last layer first.
	now := b.Forward
	commFree := b.Forward // network idle until gradients exist
	var commBusy sim.Time
	var bucket int64 // fused gradient elements pending
	flush := func(ready sim.Time) error {
		if bucket == 0 {
			return nil
		}
		dur, err := c.allReduceCycles(int(bucket))
		if err != nil {
			return err
		}
		start := max(commFree, ready)
		commFree = start + dur
		commBusy += dur
		bucket = 0
		return nil
	}
	for i := len(net.Layers) - 1; i >= 0; i-- {
		l := net.Layers[i]
		now += sim.Time(c.Accel.BackwardCycles(l, c.BatchPerNode, i == 0))
		bucket += l.Params()
		if c.FusionBytes <= 0 || bucket*collective.WordSize >= c.FusionBytes || i == 0 {
			if err := flush(now); err != nil {
				return b, err
			}
		}
	}
	if err := flush(now); err != nil {
		return b, err
	}
	b.Backward = now - b.Forward
	b.Comm = commBusy
	computeEnd := now
	b.Total = max(computeEnd, commFree)
	b.Exposed = b.Total - computeEnd
	b.Overlap = b.Comm - b.Exposed
	return b, nil
}

func max(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
