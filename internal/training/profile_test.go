package training_test

import (
	"testing"

	"multitree/internal/model"
)

// TestProfileSumsMatchBreakdown: per-layer profile rows add up to the
// network totals the iteration simulation uses.
func TestProfileSumsMatchBreakdown(t *testing.T) {
	cfg := config(t, "multitree")
	net := model.GoogLeNet()
	rows, err := cfg.Profile(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(net.Layers) {
		t.Fatalf("%d rows for %d layers", len(rows), len(net.Layers))
	}
	var fwd, bwd uint64
	var params int64
	for _, r := range rows {
		fwd += uint64(r.ForwardCycles)
		bwd += uint64(r.BackwardCycles)
		params += r.Params
		if r.Params > 0 && r.AllReduceCycles == 0 {
			t.Errorf("layer %s has parameters but zero all-reduce time", r.Name)
		}
	}
	b, err := cfg.NonOverlapped(net)
	if err != nil {
		t.Fatal(err)
	}
	if fwd != uint64(b.Forward) || bwd != uint64(b.Backward) {
		t.Errorf("profile sums fwd=%d bwd=%d, breakdown %d/%d", fwd, bwd, b.Forward, b.Backward)
	}
	if params != net.Params() {
		t.Errorf("profile params %d != network %d", params, net.Params())
	}
}
