package training

import (
	"multitree/internal/model"
	"multitree/internal/sim"
)

// LayerProfile is one layer's contribution to an iteration: compute
// cycles, gradient volume, and the layer's standalone all-reduce time
// under the configured algorithm — the inputs to the Fig. 11b overlap
// analysis, exposed for inspection.
type LayerProfile struct {
	Name          string
	Kind          string
	Params        int64
	GradientBytes int64

	ForwardCycles   sim.Time
	BackwardCycles  sim.Time
	AllReduceCycles sim.Time
}

// Profile computes the per-layer breakdown of one iteration.
func (c Config) Profile(net model.Network) ([]LayerProfile, error) {
	out := make([]LayerProfile, len(net.Layers))
	for i, l := range net.Layers {
		comm, err := c.allReduceCycles(int(l.Params()))
		if err != nil {
			return nil, err
		}
		out[i] = LayerProfile{
			Name:            l.Name,
			Kind:            l.Kind.String(),
			Params:          l.Params(),
			GradientBytes:   l.Params() * 4,
			ForwardCycles:   sim.Time(c.Accel.ForwardCycles(l, c.BatchPerNode)),
			BackwardCycles:  sim.Time(c.Accel.BackwardCycles(l, c.BatchPerNode, i == 0)),
			AllReduceCycles: comm,
		}
	}
	return out, nil
}
