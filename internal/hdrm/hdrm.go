// Package hdrm implements the EFLOPS baseline: recursive Halving-Doubling
// with Rank Mapping on a BiGraph fabric (§II-C, [29] of the paper).
//
// Recursive halving-doubling finishes an all-reduce in 2*log2(N) steps: a
// reduce-scatter phase where pair distances double and exchanged segments
// halve, then the mirror all-gather phase. On an arbitrary topology the
// long-distance pairs congest; EFLOPS instead *maps ranks to nodes* so
// that every communicating pair sits on opposite layers of the BiGraph,
// crossing exactly one inter-switch link.
//
// The layer property comes from parity: pairs at every step differ in
// exactly one rank bit, so placing even-popcount ranks on upper-layer
// nodes and odd-popcount ranks on lower-layer nodes guarantees each pair
// crosses the bipartite cut. Within a layer, ranks are then assigned to
// switch slots by a deterministic local search that eliminates same-step
// reuse of any single inter-switch link, reproducing EFLOPS's
// contention-free property.
package hdrm

import (
	"fmt"
	"math/bits"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Algorithm is the schedule name used in reports.
const Algorithm = "hdrm"

// Build constructs the HDRM schedule for elems elements. The node count
// must be a power of two (a fundamental halving-doubling constraint).
// HDRM is designed for BiGraph topologies; Build accepts any topology and
// simply degrades to plain halving-doubling with identity mapping
// elsewhere, which is useful for contrast experiments.
func Build(topo *topology.Topology, elems int) (*collective.Schedule, error) {
	n := topo.Nodes()
	if n&(n-1) != 0 || n < 2 {
		return nil, fmt.Errorf("hdrm: node count %d is not a power of two", n)
	}
	rankToNode := rankMapping(topo)

	// Build the segment tree of exchanged ranges: level k (1-based) has
	// 2^k segments. flowID(level, index) indexes s.Flows.
	steps := bits.Len(uint(n)) - 1
	var flows []collective.Range
	levelBase := make([]int, steps+1)
	cur := []collective.Range{{Off: 0, Len: elems}}
	for k := 1; k <= steps; k++ {
		var next []collective.Range
		for _, r := range cur {
			half := collective.Partition(r.Len, 2)
			next = append(next,
				collective.Range{Off: r.Off, Len: half[0].Len},
				collective.Range{Off: r.Off + half[0].Len, Len: half[1].Len})
		}
		levelBase[k] = len(flows)
		flows = append(flows, next...)
		cur = next
	}
	s := &collective.Schedule{Algorithm: Algorithm, Topo: topo, Elems: elems, Flows: flows}

	// segIdx[r] tracks which level-k segment rank r currently owns, as an
	// index within level k; owning segment i at level k means the range
	// flows[levelBase[k]+i].
	segIdx := make([]int, n)
	lastIn := make([]collective.TransferID, n)
	for i := range lastIn {
		lastIn[i] = -1
	}
	dep := func(r int) []collective.TransferID {
		if lastIn[r] < 0 {
			return nil
		}
		return []collective.TransferID{lastIn[r]}
	}

	// Reduce-scatter: at step k (1..steps), rank r pairs with r^bit,
	// bit = 1<<(k-1); the rank with bit clear keeps the first half of its
	// current segment and sends the second half, and vice versa.
	for k := 1; k <= steps; k++ {
		bit := 1 << (k - 1)
		newIdx := make([]int, n)
		pending := make([]collective.TransferID, n)
		for r := 0; r < n; r++ {
			peer := r ^ bit
			keepFirst := r&bit == 0
			kept, sent := 2*segIdx[r], 2*segIdx[r]+1
			if !keepFirst {
				kept, sent = sent, kept
			}
			pending[peer] = s.Add(collective.Transfer{
				Src: rankToNode[r], Dst: rankToNode[peer],
				Op: collective.Reduce, Flow: levelBase[k] + sent,
				Step: k, Deps: dep(r),
			})
			newIdx[r] = kept
		}
		copy(lastIn, pending)
		copy(segIdx, newIdx)
	}

	// All-gather: mirror order. At step j (1..steps), distance halves from
	// n/2 back down to 1; each rank sends its entire currently-owned
	// region (a level-(steps-j+1) segment) to its peer, both ranks ending
	// the step owning the level-(steps-j) parent segment.
	for j := 1; j <= steps; j++ {
		k := steps - j + 1 // level whose segments are being exchanged
		bit := 1 << (k - 1)
		pending := make([]collective.TransferID, n)
		for r := 0; r < n; r++ {
			peer := r ^ bit
			pending[peer] = s.Add(collective.Transfer{
				Src: rankToNode[r], Dst: rankToNode[peer],
				Op: collective.Gather, Flow: levelBase[k] + segIdx[r],
				Step: steps + j, Deps: dep(r),
			})
		}
		copy(lastIn, pending)
		for r := 0; r < n; r++ {
			segIdx[r] /= 2
		}
	}
	return s, nil
}

// rankMapping returns the rank -> node permutation. On a BiGraph topology
// (even node ids on upper switches, odd on lower, as built by
// topology.BiGraph) it applies the popcount layer split plus a local
// search that de-conflicts inter-switch links; elsewhere it is identity.
func rankMapping(topo *topology.Topology) []topology.NodeID {
	n := topo.Nodes()
	m := make([]topology.NodeID, n)
	if !isBiGraphLike(topo) {
		for i := range m {
			m[i] = topology.NodeID(i)
		}
		return m
	}
	// Layer split: even-popcount ranks -> upper slots, odd -> lower slots.
	// Among any pair {2m, 2m+1} exactly one rank has even popcount, so the
	// slot index r>>1 is a bijection within each layer.
	for r := 0; r < n; r++ {
		slot := r >> 1
		if bits.OnesCount(uint(r))%2 == 0 {
			m[r] = topology.NodeID(2 * slot) // upper-layer node
		} else {
			m[r] = topology.NodeID(2*slot + 1) // lower-layer node
		}
	}
	refineMapping(topo, m)
	return m
}

// isBiGraphLike reports whether the topology was built by
// topology.BiGraph: indirect, and node parity determines the switch layer.
func isBiGraphLike(topo *topology.Topology) bool {
	if topo.Class() != topology.Indirect || topo.Nodes()%2 != 0 {
		return false
	}
	// Heuristic: BiGraph names start with "bigraph".
	return len(topo.Name()) >= 7 && topo.Name()[:7] == "bigraph"
}

// refineMapping greedily swaps same-layer slot assignments to minimize the
// worst same-step reuse of a single inter-switch link. The search is
// deterministic: repeated full passes of improving swaps until a fixed
// point.
func refineMapping(topo *topology.Topology, m []topology.NodeID) {
	n := len(m)
	steps := bits.Len(uint(n)) - 1
	cost := func() int {
		total := 0
		for k := 1; k <= steps; k++ {
			use := map[topology.LinkID]int{}
			bit := 1 << (k - 1)
			for r := 0; r < n; r++ {
				for _, l := range topo.Route(m[r], m[r^bit]) {
					use[l]++
					if use[l] > 1 {
						total += 1
					}
				}
			}
		}
		return total
	}
	best := cost()
	for pass := 0; pass < 8 && best > 0; pass++ {
		improved := false
		for i := 0; i < n && best > 0; i++ {
			for j := i + 1; j < n; j++ {
				// Swap only within a layer to preserve the parity property.
				if (m[i]^m[j])&1 != 0 {
					continue
				}
				m[i], m[j] = m[j], m[i]
				if c := cost(); c < best {
					best = c
					improved = true
				} else {
					m[i], m[j] = m[j], m[i]
				}
			}
		}
		if !improved {
			break
		}
	}
}
