package hdrm

import (
	"math/bits"
	"testing"
	"testing/quick"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

func cfg() topology.LinkConfig { return topology.DefaultLinkConfig() }

func TestRejectsNonPowerOfTwo(t *testing.T) {
	topo := topology.Mesh(3, 3, cfg())
	if _, err := Build(topo, 100); err == nil {
		t.Error("9 nodes accepted by halving-doubling")
	}
}

// TestLogSteps: halving-doubling finishes in 2*log2(N) steps.
func TestLogSteps(t *testing.T) {
	topo := topology.BiGraph(4, 4, cfg()) // 32 nodes
	s, err := Build(topo, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if s.Steps != 10 {
		t.Errorf("steps = %d, want 2*log2(32) = 10", s.Steps)
	}
}

// TestBandwidthOptimal: total communicated volume is 2(N-1)/N * S per
// node.
func TestBandwidthOptimal(t *testing.T) {
	topo := topology.BiGraph(4, 4, cfg())
	s, err := Build(topo, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	a := collective.Analyze(s)
	if ov := a.BandwidthOverhead(); ov < 0.99 || ov > 1.01 {
		t.Errorf("bandwidth overhead = %.3f, want 1.0", ov)
	}
}

// TestLayerCrossing: with the popcount rank mapping, every communication
// pair connects an upper-layer node with a lower-layer node (the EFLOPS
// property that each pair crosses exactly one bipartite link).
func TestLayerCrossing(t *testing.T) {
	topo := topology.BiGraph(4, 4, cfg())
	s, err := Build(topo, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Transfers {
		tr := &s.Transfers[i]
		if tr.Src%2 == tr.Dst%2 {
			t.Fatalf("transfer %d connects same-layer nodes %d and %d", i, tr.Src, tr.Dst)
		}
	}
}

// TestContentionFreeOnBiGraph: after the slot refinement no two same-step
// transfers share an inter-switch link.
func TestContentionFreeOnBiGraph(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.BiGraph(4, 4, cfg()),
		topology.BiGraph(8, 4, cfg()),
	} {
		s, err := Build(topo, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		if a := collective.Analyze(s); !a.ContentionFree() {
			t.Errorf("%s: hdrm contended (overlap %d)", topo.Name(), a.MaxLinkOverlap)
		}
	}
}

// TestPopcountMappingProperty: flipping any single bit of a rank flips the
// popcount parity — the invariant the layer split relies on.
func TestPopcountMappingProperty(t *testing.T) {
	f := func(r uint8, k uint8) bool {
		bit := uint(1) << (k % 8)
		a := bits.OnesCount(uint(r)) % 2
		b := bits.OnesCount(uint(r)^bit) % 2
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCorrectnessProperty covers sizes including ones not divisible by N.
func TestCorrectnessProperty(t *testing.T) {
	topo := topology.BiGraph(4, 4, cfg())
	f := func(e uint16) bool {
		elems := 1 + int(e)%4000
		s, err := Build(topo, elems)
		if err != nil {
			return false
		}
		return collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), elems)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestWorksOnOtherPowerOfTwoTopologies: HDRM degrades to identity-mapped
// halving-doubling elsewhere but stays correct.
func TestWorksOnOtherPowerOfTwoTopologies(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.Torus(4, 4, cfg()),
		topology.FatTree(4, 4, 4, cfg()),
	} {
		s, err := Build(topo, 777)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		if err := collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), 777)); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}
