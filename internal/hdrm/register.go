package hdrm

import (
	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Self-registration in the central algorithm registry. HDRM builds on any
// power-of-two node count (degrading to plain halving-doubling away from
// BiGraph), but the paper's evaluation menu features it only on
// switch-based EFLOPS-style fabrics, hence the narrower Featured
// predicate.
func init() {
	algorithms.Register(algorithms.Spec{
		Name:  Algorithm,
		Order: 40,
		Note:  "EFLOPS halving-doubling with rank mapping, 2^k nodes (featured on switch-based fabrics)",
		Build: func(topo *topology.Topology, elems int, _ algorithms.Options) (*collective.Schedule, error) {
			return Build(topo, elems)
		},
		Supports: func(topo *topology.Topology) bool {
			n := topo.Nodes()
			return n >= 2 && n&(n-1) == 0
		},
		Featured: func(topo *topology.Topology) bool {
			n := topo.Nodes()
			return n >= 2 && n&(n-1) == 0 && topo.Class() == topology.Indirect
		},
	})
}
