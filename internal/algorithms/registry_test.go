package algorithms_test

import (
	"strings"
	"testing"

	"multitree/internal/algorithms"
	_ "multitree/internal/algorithms/all"
	"multitree/internal/collective"
	"multitree/internal/topology"
)

func names(specs []algorithms.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// TestNamesPlottingOrder: the registry lists the five built-ins in the
// paper's plotting order regardless of package-init order.
func TestNamesPlottingOrder(t *testing.T) {
	want := []string{"ring", "dbtree", "2d-ring", "hdrm", "multitree"}
	got := algorithms.Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestMenus pins the featured evaluation menu per fabric, matching the
// paper's Fig. 9 legends.
func TestMenus(t *testing.T) {
	cfg := topology.DefaultLinkConfig()
	cases := []struct {
		topo *topology.Topology
		want string
	}{
		{topology.Torus(4, 4, cfg), "ring,dbtree,2d-ring,multitree"},
		{topology.Mesh(8, 8, cfg), "ring,dbtree,2d-ring,multitree"},
		{topology.FatTree(4, 4, 4, cfg), "ring,dbtree,hdrm,multitree"},
		{topology.BiGraph(4, 4, cfg), "ring,dbtree,hdrm,multitree"},
		{topology.BiGraph(3, 4, cfg), "ring,dbtree,multitree"}, // 24 nodes: not 2^k
	}
	for _, tc := range cases {
		if got := strings.Join(names(algorithms.For(tc.topo)), ","); got != tc.want {
			t.Errorf("For(%s) = %s, want %s", tc.topo.Name(), got, tc.want)
		}
	}
	// Supporting is the superset: HDRM builds on a 16-node torus even
	// though the menu omits it there.
	torus := topology.Torus(4, 4, cfg)
	if got := strings.Join(names(algorithms.Supporting(torus)), ","); got != "ring,dbtree,2d-ring,hdrm,multitree" {
		t.Errorf("Supporting(torus-4x4) = %s", got)
	}
}

// TestResolveAndBuild: every registered algorithm builds a valid,
// correctly named schedule through the uniform entry point, and the -msg
// variant resolves to the base builder.
func TestResolveAndBuild(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	const elems = 256
	for _, spec := range algorithms.Supporting(topo) {
		s, err := algorithms.Build(topo, spec.Name, elems, algorithms.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), elems)); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
	spec, msg, err := algorithms.Resolve("multitree-msg")
	if err != nil || !msg || spec.Name != "multitree" {
		t.Fatalf("Resolve(multitree-msg) = %v, %v, %v", spec.Name, msg, err)
	}
	if _, _, err := algorithms.Resolve("nccl"); err == nil || !strings.Contains(err.Error(), "multitree") {
		t.Fatalf("unknown-name error should list the registry, got %v", err)
	}
}

// TestBuildErrorsOnUnsupported: constructors fail with errors, never
// panics, off their applicability domain.
func TestBuildErrorsOnUnsupported(t *testing.T) {
	fat := topology.FatTree(3, 3, 3, topology.DefaultLinkConfig()) // 9 nodes: no grid, not 2^k
	for _, name := range []string{"2d-ring", "hdrm"} {
		if _, err := algorithms.Build(fat, name, 64, algorithms.Options{}); err == nil {
			t.Errorf("%s built on %s", name, fat.Name())
		}
	}
}
