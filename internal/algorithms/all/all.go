// Package all registers the five built-in all-reduce algorithms with the
// central registry. Blank-import it from any binary or test that resolves
// algorithms by name:
//
//	import _ "multitree/internal/algorithms/all"
package all

import (
	_ "multitree/internal/core"   // multitree
	_ "multitree/internal/dbtree" // dbtree
	_ "multitree/internal/hdrm"   // hdrm
	_ "multitree/internal/ring"   // ring
	_ "multitree/internal/ring2d" // 2d-ring
)
