// Package algorithms is the central all-reduce algorithm registry. The
// paper's core abstraction (§IV-A) is that every all-reduce — ring, double
// binary tree, 2D-ring, HDRM, MultiTree — lowers to the same schedule-table
// form the network interface executes; this package makes the set of
// lowerings a first-class, enumerable artifact. Each algorithm package
// self-registers a constructor with the uniform signature
//
//	Build(topo, elems, opts) (*collective.Schedule, error)
//
// plus applicability predicates, and every consumer — the experiments
// harness, the public facade, and the cmd/ tools — resolves algorithms by
// name here instead of maintaining its own switch statement.
//
// Importing an algorithm package is what registers it; blank-import
// multitree/internal/algorithms/all to get the full built-in set.
package algorithms

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/plancache"
	"multitree/internal/topology"
)

// MsgSuffix marks the message-based flow-control variant of an algorithm
// (§IV-B). The variant shares the base algorithm's schedule; only the
// simulator's flow-control configuration differs, so Resolve strips it
// before lookup.
const MsgSuffix = "-msg"

// Options carries per-build tuning knobs shared by all constructors.
// Algorithms ignore fields that do not apply to them; the zero value
// selects every algorithm's defaults.
type Options struct {
	// Chunks is the pipeline depth for chunk-pipelined algorithms
	// (dbtree); <= 0 selects the algorithm's default.
	Chunks int

	// Workers bounds planner parallelism for algorithms with a parallel
	// construction path (multitree's speculative tree growth); <= 1 means
	// sequential. The schedule built is identical for every value.
	Workers int

	// Shards partitions multitree's root set geometrically and grows
	// each shard's trees on its own goroutine against a private link
	// pool, merged deterministically; <= 1 means unsharded. Like
	// Workers, the schedule built is identical for every value, so
	// Shards is not part of the cache key.
	Shards int

	// Cache, when non-nil, is probed before construction and updated
	// after it (see Build). Only schedule-shaping inputs enter the cache
	// key; Workers and Observer do not.
	Cache *plancache.Cache

	// MemCache, when non-nil, is the in-process decoded-plan tier probed
	// before Cache: a hit returns the already-materialized schedule and
	// skips the disk read, decode, and verification entirely. Both cache
	// tiers share one content address. Schedules served from it are
	// shared across callers and must be treated as read-only.
	MemCache *plancache.MemCache

	// Observer receives planner lifecycle callbacks (phase wall time,
	// counters, progress) from algorithms that support them; nil keeps
	// construction observation-free. Algorithms whose construction is
	// trivial may ignore it.
	Observer obs.PlanObserver
}

// Builder constructs an algorithm's schedule for elems gradient elements
// on a topology.
type Builder func(topo *topology.Topology, elems int, opts Options) (*collective.Schedule, error)

// Spec describes one registered all-reduce algorithm.
type Spec struct {
	// Name is the registry key and the Schedule.Algorithm string.
	Name string

	// Order fixes the paper's plotting order (Fig. 9 legends); listings
	// sort by it so the menu does not depend on package-init order.
	Order int

	// Build constructs the schedule. It must fail with an error — never
	// panic — on topologies it does not support.
	Build Builder

	// Supports reports whether Build can produce a schedule on the
	// topology (e.g. HDRM needs a power-of-two node count).
	Supports func(*topology.Topology) bool

	// Featured reports whether the algorithm belongs on the paper's
	// evaluation menu for the topology (e.g. HDRM is plotted only on
	// switch-based EFLOPS-style fabrics even though it builds anywhere
	// with 2^k nodes). Nil means Featured == Supports.
	Featured func(*topology.Topology) bool

	// Note is a one-line applicability description for usage strings.
	Note string
}

// featured resolves the Featured predicate with its Supports default.
func (s Spec) featured(topo *topology.Topology) bool {
	if s.Featured != nil {
		return s.Featured(topo)
	}
	return s.Supports(topo)
}

var (
	mu       sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds an algorithm to the registry. It panics on a duplicate or
// malformed Spec — registration happens in package init, where a panic is
// an immediate, loud programming error.
func Register(s Spec) {
	if s.Name == "" || s.Build == nil || s.Supports == nil {
		panic("algorithms: Register needs Name, Build and Supports")
	}
	if strings.HasSuffix(s.Name, MsgSuffix) {
		panic(fmt.Sprintf("algorithms: %q collides with the %s variant namespace", s.Name, MsgSuffix))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("algorithms: %q registered twice", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the named algorithm's Spec.
func Lookup(name string) (Spec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Resolve returns the Spec behind a report name, accepting the MsgSuffix
// variant of any registered algorithm ("multitree-msg" resolves to
// "multitree"; msg reports whether the suffix was present). Unknown names
// return an error that lists the registered set.
func Resolve(name string) (spec Spec, msg bool, err error) {
	base := strings.TrimSuffix(name, MsgSuffix)
	spec, ok := Lookup(base)
	if !ok {
		return Spec{}, false, fmt.Errorf("algorithms: unknown algorithm %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return spec, base != name, nil
}

// Specs returns all registered algorithms in plotting order.
func Specs() []Spec {
	mu.RLock()
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the registered algorithm names in plotting order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// For returns the algorithms featured on a topology's evaluation menu, in
// plotting order.
func For(topo *topology.Topology) []Spec {
	var out []Spec
	for _, s := range Specs() {
		if s.featured(topo) {
			out = append(out, s)
		}
	}
	return out
}

// Supporting returns every algorithm whose Supports predicate admits the
// topology (a superset of For: it includes buildable-but-unfeatured
// pairings such as HDRM on a 16-node torus).
func Supporting(topo *topology.Topology) []Spec {
	var out []Spec
	for _, s := range Specs() {
		if s.Supports(topo) {
			out = append(out, s)
		}
	}
	return out
}

// Build resolves name (MsgSuffix variants included) and constructs its
// schedule. With a cache tier set, the tiers are probed in cost order —
// MemCache (already decoded) first, then Cache (on-disk IR, decoded with
// opts.Workers-way fan-out) — keyed by the base algorithm name, so
// "multitree" and "multitree-msg" share one entry (they build identical
// schedules; only the simulator's flow control differs). A miss builds
// fresh and stores back into every configured tier. Cache traffic is
// reported to opts.Observer under obs.PhaseCacheLookup.
func Build(topo *topology.Topology, name string, elems int, opts Options) (*collective.Schedule, error) {
	spec, _, err := Resolve(name)
	if err != nil {
		return nil, err
	}
	if opts.Cache == nil && opts.MemCache == nil {
		return spec.Build(topo, elems, opts)
	}
	key := plancache.Key(topo, spec.Name, elems, opts.Chunks)
	o := opts.Observer
	if o != nil {
		o.PhaseStart(obs.PhaseCacheLookup)
	}
	var memMiss int64
	if opts.MemCache != nil {
		if s, ok := opts.MemCache.Get(key); ok {
			if o != nil {
				o.PhaseEnd(obs.PhaseCacheLookup, obs.PlanCounters{CacheHits: 1, MemCacheHits: 1})
			}
			return s, nil
		}
		memMiss = 1
	}
	if opts.Cache != nil {
		got, n, ok := opts.Cache.GetOpts(key, topo, plancache.GetOptions{
			Observer: o,
			Workers:  opts.Workers,
		})
		if ok {
			if o != nil {
				o.PhaseEnd(obs.PhaseCacheLookup, obs.PlanCounters{CacheHits: 1, CacheBytes: n, MemCacheMisses: memMiss})
			}
			opts.MemCache.Put(key, got) // nil-safe: promote disk hits to the memory tier
			return got, nil
		}
	}
	if o != nil {
		o.PhaseEnd(obs.PhaseCacheLookup, obs.PlanCounters{CacheMisses: 1, MemCacheMisses: memMiss})
	}
	s, err := spec.Build(topo, elems, opts)
	if err != nil {
		return nil, err
	}
	// Best-effort store: a failed Put is logged by the cache and costs a
	// rebuild next run, never this one. Fresh builds enter both tiers.
	if o != nil {
		o.PhaseStart(obs.PhaseCacheLookup)
	}
	var n int64
	if opts.Cache != nil {
		n, _ = opts.Cache.Put(key, s)
	}
	opts.MemCache.Put(key, s)
	if o != nil {
		o.PhaseEnd(obs.PhaseCacheLookup, obs.PlanCounters{CacheBytes: n})
	}
	return s, nil
}
