package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed amount per reading, so wall-time math is
// deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestPlanProfileAggregates(t *testing.T) {
	p := NewPlanProfile()
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	p.now = clk.now

	p.Pipeline(0, 2)
	p.PhaseStart(PhaseTreeGrowth) // t=1s
	p.PlanProgress(PhaseTreeGrowth, 5, 10)
	p.PhaseEnd(PhaseTreeGrowth, PlanCounters{Steps: 3, NodesAttached: 5, Searches: 7, SearchMisses: 2}) // t=2s
	p.Pipeline(1, 2)
	p.PhaseStart(PhaseLowering)                            // t=3s
	p.PhaseEnd(PhaseLowering, PlanCounters{Transfers: 30}) // t=4s
	p.Pipeline(2, 2)

	phases := p.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	if phases[0].Phase != PhaseTreeGrowth || phases[1].Phase != PhaseLowering {
		t.Fatalf("wrong phase order: %v, %v", phases[0].Phase, phases[1].Phase)
	}
	if phases[0].WallNanos != int64(time.Second) {
		t.Fatalf("tree-growth wall %d, want 1s", phases[0].WallNanos)
	}
	if phases[0].Counters.NodesAttached != 5 || phases[0].Counters.SearchMisses != 2 {
		t.Fatalf("counters not recorded: %+v", phases[0].Counters)
	}
	if got := p.TotalWallNanos(); got != int64(2*time.Second) {
		t.Fatalf("total wall %d, want 2s", got)
	}
	if ph, done, total := p.Progress(); ph != PhaseTreeGrowth || done != 5 || total != 10 {
		t.Fatalf("progress = %v %d/%d", ph, done, total)
	}
	if done, total := p.PipelineProgress(); done != 2 || total != 2 {
		t.Fatalf("pipeline = %d/%d", done, total)
	}

	rep := p.Report()
	if rep.TotalNanos != int64(2*time.Second) || len(rep.Phases) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Phases[0].Share != 0.5 {
		t.Fatalf("share %v, want 0.5", rep.Phases[0].Share)
	}

	var csv bytes.Buffer
	if err := p.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "phase,runs,wall_ns,share,") {
		t.Fatalf("bad CSV:\n%s", csv.String())
	}
	if !strings.HasPrefix(lines[1], "tree-growth,1,") {
		t.Fatalf("bad CSV row: %s", lines[1])
	}
}

// TestPlanProfileOverlappingRuns covers parallel sweep workers sharing
// one profile: overlapping runs of the same phase charge the union
// interval once.
func TestPlanProfileOverlappingRuns(t *testing.T) {
	p := NewPlanProfile()
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	p.now = clk.now

	p.PhaseStart(PhaseTreeGrowth)               // t=1: opens interval
	p.PhaseStart(PhaseTreeGrowth)               // t=2: nested, no new interval
	p.PhaseEnd(PhaseTreeGrowth, PlanCounters{}) // t=3: still open
	p.PhaseEnd(PhaseTreeGrowth, PlanCounters{}) // t=4: closes, wall = 3s
	phases := p.Phases()
	if len(phases) != 1 || phases[0].Runs != 2 {
		t.Fatalf("phases: %+v", phases)
	}
	if phases[0].WallNanos != int64(3*time.Second) {
		t.Fatalf("union wall %v, want 3s", phases[0].WallNanos)
	}
}

// TestPlanProfileCallbacksZeroAlloc pins the <1%-overhead claim at its
// root: an attached profile's callbacks allocate nothing, so enabling
// observation costs mutex hops at phase/step boundaries only.
func TestPlanProfileCallbacksZeroAlloc(t *testing.T) {
	p := NewPlanProfile()
	c := PlanCounters{Steps: 1, Searches: 10}
	if allocs := testing.AllocsPerRun(100, func() {
		p.PhaseStart(PhaseTreeGrowth)
		p.PlanProgress(PhaseTreeGrowth, 1, 2)
		p.Pipeline(1, 4)
		p.PhaseEnd(PhaseTreeGrowth, c)
	}); allocs != 0 {
		t.Fatalf("PlanProfile callbacks allocate %.1f per cycle, want 0", allocs)
	}
}

func TestTeePlan(t *testing.T) {
	if TeePlan(nil, nil) != nil {
		t.Fatal("TeePlan of nils should be nil")
	}
	a, b := NewPlanProfile(), NewPlanProfile()
	if got := TeePlan(nil, a); got != a {
		t.Fatal("single observer should pass through")
	}
	tee := TeePlan(a, b)
	tee.PhaseStart(PhaseLowering)
	tee.PhaseEnd(PhaseLowering, PlanCounters{Transfers: 4})
	for _, p := range []*PlanProfile{a, b} {
		phases := p.Phases()
		if len(phases) != 1 || phases[0].Counters.Transfers != 4 {
			t.Fatalf("tee did not fan out: %+v", phases)
		}
	}
}

func TestProgressNonInteractive(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, false)
	clk := &fakeClock{t: time.Unix(1000, 0), step: 3 * time.Second}
	p.now = clk.now

	p.Pipeline(0, 2)
	p.PhaseStart(PhaseTreeGrowth)
	p.PlanProgress(PhaseTreeGrowth, 250, 1000)
	p.PlanProgress(PhaseTreeGrowth, 500, 1000)
	p.PhaseEnd(PhaseTreeGrowth, PlanCounters{Steps: 9, NodesAttached: 1000, Searches: 1200, SearchMisses: 200})

	out := buf.String()
	if strings.ContainsAny(out, "\r\x1b") {
		t.Fatalf("non-interactive output contains control characters:\n%q", out)
	}
	if !strings.Contains(out, "tree-growth started") {
		t.Fatalf("missing start line:\n%s", out)
	}
	if !strings.Contains(out, "(25.0%)") || !strings.Contains(out, "eta ") {
		t.Fatalf("missing progress/eta:\n%s", out)
	}
	if !strings.Contains(out, "[phase 1/2]") {
		t.Fatalf("missing pipeline counter:\n%s", out)
	}
	if !strings.Contains(out, "tree-growth done in") || !strings.Contains(out, "1000 attachments") {
		t.Fatalf("missing completion summary:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			t.Fatalf("blank line in plain output:\n%q", out)
		}
	}
}

func TestProgressNonInteractiveThrottles(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, false)
	p.MinInterval = time.Hour
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	p.now = clk.now

	p.PhaseStart(PhaseTreeGrowth)
	for i := int64(1); i <= 100; i++ {
		p.PlanProgress(PhaseTreeGrowth, i, 100)
	}
	// One start line plus exactly two samples: the first, and the final
	// 100% sample, which bypasses the throttle so a phase never ends
	// without its completion figure on record. Everything in between
	// falls inside MinInterval.
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("throttling failed: %d lines\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "100/100 (100.0%)") {
		t.Fatalf("missing final 100%% sample:\n%s", buf.String())
	}
}

func TestProgressDegenerateSamples(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, false)
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	p.now = clk.now

	p.PhaseStart(PhaseTreeGrowth)
	p.PlanProgress(PhaseTreeGrowth, 0, 0)  // unknown total
	p.PlanProgress(PhaseTreeGrowth, 7, 0)  // done with no total
	p.PlanProgress(PhaseTreeGrowth, 12, 8) // done past total
	out := buf.String()
	for _, bad := range []string{"+Inf", "NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("degenerate sample printed %s:\n%s", bad, out)
		}
	}
	if strings.Contains(out, "0/0 (") && !strings.Contains(out, "0/0 (0.0%)") {
		t.Fatalf("total=0 should report 0%%:\n%s", out)
	}
	if !strings.Contains(out, "12/8 (100.0%)") {
		t.Fatalf("done past total should clamp to 100%%:\n%s", out)
	}
	if strings.Contains(out, "12/8 (100.0%) eta") || strings.Contains(out, "eta -") {
		t.Fatalf("degenerate sample printed an ETA:\n%s", out)
	}
}

func TestProgressIgnoresShardMerge(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, false)
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	p.now = clk.now

	// shard-merge runs once per growth round; a start/done pair each
	// time would flood a non-interactive log.
	for i := 0; i < 100; i++ {
		p.PhaseStart(PhaseShardMerge)
		p.PhaseEnd(PhaseShardMerge, PlanCounters{ShardTurns: 10, ShardReplays: 1})
	}
	if buf.Len() != 0 {
		t.Fatalf("shard-merge phases should not print:\n%s", buf.String())
	}
}

func TestProgressInteractive(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, true)
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	p.now = clk.now

	p.PhaseStart(PhaseTreeGrowth)
	p.PlanProgress(PhaseTreeGrowth, 1, 4)
	p.PhaseEnd(PhaseTreeGrowth, PlanCounters{})
	out := buf.String()
	if !strings.Contains(out, "\r") {
		t.Fatalf("interactive output should rewrite with \\r:\n%q", out)
	}
	if !strings.Contains(out, "tree-growth done in") {
		t.Fatalf("missing completion line:\n%q", out)
	}
	// The completion line must start at column 0 (open line erased).
	if i := strings.Index(out, "plan: tree-growth done"); i > 0 && out[i-1] != 'K' {
		t.Fatalf("completion line not preceded by erase:\n%q", out)
	}
}
