package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Metrics is a streaming collector implementing Tracer: it folds the event
// stream into per-link time-binned utilization histograms, a per-transfer
// queueing-delay distribution, and NI table-occupancy counters, without
// retaining the events themselves. Attach it directly, or Tee it with a
// Recorder when the raw trace is also wanted.
type Metrics struct {
	// BinCycles is the utilization histogram bin width in cycles; 0
	// collects per-link totals only.
	BinCycles float64

	linkBusy []float64   // total busy-equivalent cycles per link
	linkBins [][]float64 // busy-equivalent cycles per (link, bin)
	lastAt   float64     // latest span end seen, bounds the histogram

	// Queueing delay: ready (deps cleared) -> first byte on a link.
	readyAt   map[int32]float64
	firstLink map[int32]bool
	delays    []float64

	niIssued  []int64 // per node: schedule-table entries issued
	niCleared []int64 // per node: dependencies cleared by received messages
	niNOPs    int64   // lockstep down-counter NOP elapses

	stepEnters int64
	queueMax   int64 // peak pending-event count in the discrete-event core
	events     int64
}

// NewMetrics returns a collector with the given utilization bin width in
// cycles (0 keeps totals only).
func NewMetrics(binCycles float64) *Metrics {
	return &Metrics{
		BinCycles: binCycles,
		readyAt:   make(map[int32]float64),
		firstLink: make(map[int32]bool),
	}
}

// Emit folds one event into the collector.
func (m *Metrics) Emit(ev Event) {
	m.events++
	switch ev.Kind {
	case EvTransferReady:
		if _, ok := m.readyAt[ev.Transfer]; !ok {
			m.readyAt[ev.Transfer] = ev.At
		}
	case EvTransferInjected:
		// Fallback for streams without ready events.
		if _, ok := m.readyAt[ev.Transfer]; !ok {
			m.readyAt[ev.Transfer] = ev.At
		}
	case EvLinkAcquired:
		m.addSpan(ev.Link, ev.At, ev.Dur, ev.Busy)
		if !m.firstLink[ev.Transfer] {
			m.firstLink[ev.Transfer] = true
			if ready, ok := m.readyAt[ev.Transfer]; ok {
				if d := ev.At - ready; d > 0 {
					m.delays = append(m.delays, d)
				} else {
					m.delays = append(m.delays, 0)
				}
			}
		}
	case EvStepEnter:
		m.stepEnters++
	case EvEngineQueue:
		if ev.Bytes > m.queueMax {
			m.queueMax = ev.Bytes
		}
	case EvNIEntryActivated:
		m.niIssued = growCounters(m.niIssued, int(ev.Node))
		m.niIssued[ev.Node]++
	case EvNIDepCleared:
		m.niCleared = growCounters(m.niCleared, int(ev.Node))
		m.niCleared[ev.Node]++
	case EvNILockstep:
		m.niNOPs++
	}
}

func growCounters(s []int64, idx int) []int64 {
	for len(s) <= idx {
		s = append(s, 0)
	}
	return s
}

// addSpan distributes busy-equivalent cycles uniformly over [at, at+dur)
// into the link's histogram bins.
func (m *Metrics) addSpan(link int32, at, dur, busy float64) {
	l := int(link)
	for len(m.linkBusy) <= l {
		m.linkBusy = append(m.linkBusy, 0)
		m.linkBins = append(m.linkBins, nil)
	}
	m.linkBusy[l] += busy
	if end := at + dur; end > m.lastAt {
		m.lastAt = end
	}
	if m.BinCycles <= 0 {
		return
	}
	if dur <= 0 {
		b := int(at / m.BinCycles)
		m.linkBins[l] = growBins(m.linkBins[l], b)
		m.linkBins[l][b] += busy
		return
	}
	density := busy / dur
	end := at + dur
	for b := int(at / m.BinCycles); float64(b)*m.BinCycles < end; b++ {
		lo := math.Max(at, float64(b)*m.BinCycles)
		hi := math.Min(end, float64(b+1)*m.BinCycles)
		m.linkBins[l] = growBins(m.linkBins[l], b)
		m.linkBins[l][b] += (hi - lo) * density
	}
}

func growBins(s []float64, idx int) []float64 {
	for len(s) <= idx {
		s = append(s, 0)
	}
	return s
}

// Events returns the number of events folded in.
func (m *Metrics) Events() int64 { return m.events }

// MetricsSnapshot is a value copy of a Metrics collector's scalar
// aggregates — the shape the Prometheus handler and the RunReport sim
// section consume. Taking a snapshot at a quiescent point (after a run)
// decouples serving from the unsynchronized hot-path collector.
type MetricsSnapshot struct {
	Events         int64
	StepEnters     int64
	EngineQueueMax int64

	// LinkBusyCycles sums busy-equivalent cycles over all links;
	// LinksActive counts links that carried any traffic.
	LinkBusyCycles float64
	LinksActive    int

	NIEntriesIssued int64 // summed over nodes
	NIDepsCleared   int64
	NILockstepNOPs  int64
}

// Snapshot aggregates the collector's state into a value copy. Do not
// call concurrently with Emit; Metrics is not synchronized (the emit
// path stays allocation- and lock-free).
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Events:         m.events,
		StepEnters:     m.stepEnters,
		EngineQueueMax: m.queueMax,
		NILockstepNOPs: m.niNOPs,
	}
	for _, b := range m.linkBusy {
		s.LinkBusyCycles += b
		if b > 0 {
			s.LinksActive++
		}
	}
	for _, v := range m.niIssued {
		s.NIEntriesIssued += v
	}
	for _, v := range m.niCleared {
		s.NIDepsCleared += v
	}
	return s
}

// LinkBusy returns the total busy-equivalent cycles per link (indexed by
// link id; links beyond the highest seen are absent).
func (m *Metrics) LinkBusy() []float64 { return m.linkBusy }

// LinkBins returns the utilization histogram of one link: busy-equivalent
// cycles per BinCycles-wide bin. Nil when binning is off or the link never
// carried traffic.
func (m *Metrics) LinkBins(link int) []float64 {
	if link < 0 || link >= len(m.linkBins) {
		return nil
	}
	return m.linkBins[link]
}

// QueueingDelays returns the sorted per-transfer queueing delays in
// cycles: the wait between a transfer becoming ready and its first byte
// starting across a link.
func (m *Metrics) QueueingDelays() []float64 {
	out := append([]float64(nil), m.delays...)
	sort.Float64s(out)
	return out
}

// QueueingDelayQuantile returns the q-quantile (0..1) of the queueing
// delay distribution, or 0 when no delays were observed.
func (m *Metrics) QueueingDelayQuantile(q float64) float64 {
	d := m.QueueingDelays()
	if len(d) == 0 {
		return 0
	}
	idx := int(q * float64(len(d)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d) {
		idx = len(d) - 1
	}
	return d[idx]
}

// NIEntriesIssued returns per-node counts of schedule-table entries the
// NI machine issued — the table-occupancy counters of the Fig. 6 model.
func (m *Metrics) NIEntriesIssued() []int64 { return m.niIssued }

// NIDepsCleared returns per-node counts of dependency-clearing receives.
func (m *Metrics) NIDepsCleared() []int64 { return m.niCleared }

// NILockstepNOPs returns the total lockstep down-counter NOP elapses.
func (m *Metrics) NILockstepNOPs() int64 { return m.niNOPs }

// StepEnters returns the number of lockstep step entries across nodes.
func (m *Metrics) StepEnters() int64 { return m.stepEnters }

// EngineQueueMax returns the peak pending-event count observed in the
// discrete-event core (0 when the packet engine did not run).
func (m *Metrics) EngineQueueMax() int64 { return m.queueMax }

// WriteLinkCSV writes the per-link utilization histogram as CSV, one row
// per (link, bin): link id, optional name, bin bounds in cycles, the
// busy-equivalent cycles inside the bin, and the bin's utilization
// (busy/width, 1.0 = saturated). With binning off it writes one totals row
// per link instead, with utilization relative to the whole run.
func (m *Metrics) WriteLinkCSV(w io.Writer, names []string) error {
	name := func(l int) string {
		if l < len(names) {
			return names[l]
		}
		return fmt.Sprintf("link%d", l)
	}
	if _, err := fmt.Fprintln(w, "link,name,bin_start_cycles,bin_end_cycles,busy_cycles,utilization"); err != nil {
		return err
	}
	for l := range m.linkBusy {
		if m.linkBusy[l] == 0 {
			continue
		}
		if m.BinCycles <= 0 {
			util := 0.0
			if m.lastAt > 0 {
				util = m.linkBusy[l] / m.lastAt
			}
			if _, err := fmt.Fprintf(w, "%d,%s,0,%.0f,%.1f,%.4f\n",
				l, name(l), m.lastAt, m.linkBusy[l], util); err != nil {
				return err
			}
			continue
		}
		for b, busy := range m.linkBins[l] {
			if busy == 0 {
				continue
			}
			lo := float64(b) * m.BinCycles
			if _, err := fmt.Fprintf(w, "%d,%s,%.0f,%.0f,%.1f,%.4f\n",
				l, name(l), lo, lo+m.BinCycles, busy, busy/m.BinCycles); err != nil {
				return err
			}
		}
	}
	return nil
}
