package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// PromHandler serves the observability state in Prometheus text
// exposition format (version 0.0.4), stdlib only. It is the metrics
// surface allreduce-bench mounts behind -metrics-addr, and the exact
// handler a long-running planning service (cmd/plan-server, ROADMAP)
// will expose: per-run engine aggregates accumulate via ObserveSim, the
// planner side reads live from an attached mutex-protected PlanProfile,
// so a scrape during a 20-minute build reports phase and progress
// gauges mid-flight.
//
// All metrics are prefixed "multitree_". Cardinality is deliberately
// node-count-independent: link-level detail stays in the CSV/trace
// exports; the endpoint carries totals, so a 4096-node fabric scrapes
// as cheaply as a 16-node one.
type PromHandler struct {
	mu sync.Mutex

	plan *PlanProfile

	cache    PlanCacheReport // plan-cache store totals (ObservePlanCache)
	hasCache bool

	runs           int64
	sim            MetricsSnapshot // accumulated across observed runs
	engineQueueMax int64           // max across runs
}

// NewPromHandler returns an empty handler ready to mount on a mux.
func NewPromHandler() *PromHandler { return &PromHandler{} }

// SetPlanProfile attaches the profile the planner side reports into.
// The profile's own mutex makes concurrent scrape-during-build safe.
func (h *PromHandler) SetPlanProfile(p *PlanProfile) {
	h.mu.Lock()
	h.plan = p
	h.mu.Unlock()
}

// ObservePlanCache publishes the plan-cache store totals (hits, misses,
// IR bytes moved, evictions). Call it whenever the stats move; the last
// snapshot wins.
func (h *PromHandler) ObservePlanCache(c PlanCacheReport) {
	h.mu.Lock()
	h.cache = c
	h.hasCache = true
	h.mu.Unlock()
}

// ObserveSim folds one completed run's metrics snapshot into the served
// totals and bumps the run counter. Call it at quiescent points (a run
// just finished), never concurrently with the collector still folding
// events.
func (h *PromHandler) ObserveSim(s MetricsSnapshot) {
	h.mu.Lock()
	h.runs++
	h.sim.Events += s.Events
	h.sim.StepEnters += s.StepEnters
	h.sim.LinkBusyCycles += s.LinkBusyCycles
	if s.LinksActive > h.sim.LinksActive {
		h.sim.LinksActive = s.LinksActive
	}
	h.sim.NIEntriesIssued += s.NIEntriesIssued
	h.sim.NIDepsCleared += s.NIDepsCleared
	h.sim.NILockstepNOPs += s.NILockstepNOPs
	if s.EngineQueueMax > h.engineQueueMax {
		h.engineQueueMax = s.EngineQueueMax
	}
	h.mu.Unlock()
}

// ServeHTTP implements http.Handler.
func (h *PromHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.WriteProm(w); err != nil {
		// Headers are out; nothing more to do than drop the connection.
		return
	}
}

// WriteProm writes the exposition text. Split out from ServeHTTP so
// tests and snapshot dumps need no HTTP plumbing.
func (h *PromHandler) WriteProm(w io.Writer) error {
	h.mu.Lock()
	runs, sim, queueMax, plan := h.runs, h.sim, h.engineQueueMax, h.plan
	cache, hasCache := h.cache, h.hasCache
	h.mu.Unlock()

	p := promWriter{w: w}
	p.metric("multitree_up", "gauge", "Whether the multitree metrics surface is serving.", nil, 1)
	p.metric("multitree_sim_runs_total", "counter", "Completed simulation runs observed.", nil, float64(runs))
	p.metric("multitree_sim_events_total", "counter", "Typed simulator events dispatched across observed runs.", nil, float64(sim.Events))
	p.metric("multitree_sim_step_enters_total", "counter", "Lockstep step entries across observed runs.", nil, float64(sim.StepEnters))
	p.metric("multitree_sim_engine_queue_max", "gauge", "Peak pending-event count of the discrete-event core (heap high-water mark).", nil, float64(queueMax))
	p.metric("multitree_sim_link_busy_cycles_total", "counter", "Busy-equivalent link cycles summed over all links and runs.", nil, sim.LinkBusyCycles)
	p.metric("multitree_sim_links_active", "gauge", "Directed links that carried traffic in the widest observed run.", nil, float64(sim.LinksActive))
	p.metric("multitree_ni_entries_issued_total", "counter", "NI schedule-table entries issued across observed runs.", nil, float64(sim.NIEntriesIssued))
	p.metric("multitree_ni_deps_cleared_total", "counter", "NI dependency-clearing receives across observed runs.", nil, float64(sim.NIDepsCleared))
	p.metric("multitree_ni_lockstep_nops_total", "counter", "NI lockstep down-counter NOP elapses across observed runs.", nil, float64(sim.NILockstepNOPs))

	if plan != nil {
		phases := plan.Phases()
		sort.Slice(phases, func(i, j int) bool { return phases[i].Phase < phases[j].Phase })
		p.head("multitree_plan_phase_wall_seconds", "counter", "Wall time attributed to each planner phase.")
		for _, ph := range phases {
			p.sample("multitree_plan_phase_wall_seconds", ph.Phase.String(), float64(ph.WallNanos)/1e9)
		}
		p.head("multitree_plan_phase_runs_total", "counter", "Executions of each planner phase.")
		for _, ph := range phases {
			p.sample("multitree_plan_phase_runs_total", ph.Phase.String(), float64(ph.Runs))
		}
		var c PlanCounters
		for _, ph := range phases {
			c.Add(ph.Counters)
		}
		p.metric("multitree_plan_steps_total", "counter", "Construction time steps completed.", nil, float64(c.Steps))
		p.metric("multitree_plan_nodes_attached_total", "counter", "Tree (node, tree) attachments made.", nil, float64(c.NodesAttached))
		p.metric("multitree_plan_searches_total", "counter", "BFS child searches attempted.", nil, float64(c.Searches))
		p.metric("multitree_plan_search_misses_total", "counter", "Searches rejected for lack of a free path (conflict-set misses).", nil, float64(c.SearchMisses))
		p.metric("multitree_plan_links_scanned_total", "counter", "Directed links examined during searches.", nil, float64(c.LinksScanned))
		p.metric("multitree_plan_link_conflicts_total", "counter", "Links skipped because occupied within the step.", nil, float64(c.LinkConflicts))
		p.metric("multitree_plan_links_allocated_total", "counter", "Links claimed for tree edges.", nil, float64(c.LinksAllocated))
		p.metric("multitree_plan_transfers_total", "counter", "Schedule transfers emitted by lowering.", nil, float64(c.Transfers))
		p.metric("multitree_plan_dep_edges_total", "counter", "Dependency edges emitted by lowering.", nil, float64(c.DepEdges))
		p.metric("multitree_plan_path_hops_total", "counter", "Pinned path hops emitted by lowering.", nil, float64(c.PathHops))
		p.metric("multitree_plan_summary_validations_total", "counter", "Binary-IR loads accepted by validation summary + content hash.", nil, float64(c.SummaryValidations))
		p.metric("multitree_plan_full_validations_total", "counter", "Binary-IR loads validated by the full ValidateStrict pass.", nil, float64(c.FullValidations))
		p.metric("multitree_plan_shard_turns_total", "counter", "Sharded-growth merge turns committed.", nil, float64(c.ShardTurns))
		p.metric("multitree_plan_shard_replays_total", "counter", "Merge turns replayed against the live link pool after a speculation conflict.", nil, float64(c.ShardReplays))
		p.metric("multitree_plan_shard_clean_commits_total", "counter", "Merge turns whose speculative result committed without a replay.", nil, float64(c.ShardTurns-c.ShardReplays))
		p.metric("multitree_plan_decode_cpu_seconds_total", "counter", "Summed per-worker CPU spent decoding binary-IR sections into schedules.", nil, float64(c.DecodeNanos)/1e9)
		p.metric("multitree_plan_verify_cpu_seconds_total", "counter", "Summed per-worker CPU spent verifying binary-IR content digests.", nil, float64(c.VerifyNanos)/1e9)
		p.metric("multitree_plan_mem_cache_hits_total", "counter", "Decoded-plan memory-cache probes that returned a materialized schedule.", nil, float64(c.MemCacheHits))
		p.metric("multitree_plan_mem_cache_misses_total", "counter", "Decoded-plan memory-cache probes that fell through to disk or a build.", nil, float64(c.MemCacheMisses))

		phase, done, total := plan.Progress()
		if total > 0 {
			lbl := phase.String()
			p.head("multitree_plan_progress_done", "gauge", "Work units completed in the active planner phase.")
			p.sample("multitree_plan_progress_done", lbl, float64(done))
			p.head("multitree_plan_progress_total", "gauge", "Work units in the active planner phase.")
			p.sample("multitree_plan_progress_total", lbl, float64(total))
		}
		pdone, ptotal := plan.PipelineProgress()
		if ptotal > 0 {
			p.metric("multitree_plan_pipeline_done", "gauge", "Completed phase executions of the current build.", nil, float64(pdone))
			p.metric("multitree_plan_pipeline_total", "gauge", "Total phase executions of the current build.", nil, float64(ptotal))
		}
	}
	if hasCache {
		p.metric("multitree_plan_cache_hits_total", "counter", "Plan-cache probes that returned a validated schedule.", nil, float64(cache.Hits))
		p.metric("multitree_plan_cache_misses_total", "counter", "Plan-cache probes that fell through to a fresh build.", nil, float64(cache.Misses))
		p.metric("multitree_plan_cache_read_bytes_total", "counter", "Schedule IR bytes loaded from the plan cache.", nil, float64(cache.BytesRead))
		p.metric("multitree_plan_cache_written_bytes_total", "counter", "Schedule IR bytes stored into the plan cache.", nil, float64(cache.BytesWritten))
		p.metric("multitree_plan_cache_evictions_total", "counter", "Plan-cache entries evicted to hold the size cap.", nil, float64(cache.Evictions))
		p.metric("multitree_plan_cache_summary_validated_total", "counter", "Plan-cache hits accepted by validation summary + content hash.", nil, float64(cache.SummaryValidated))
		p.metric("multitree_plan_cache_full_validated_total", "counter", "Plan-cache hits validated by the full ValidateStrict pass.", nil, float64(cache.FullValidated))
		p.metric("multitree_plan_mem_cache_evictions_total", "counter", "Decoded-plan memory-cache entries evicted to hold the byte cap.", nil, float64(cache.MemEvictions))
		p.metric("multitree_plan_mem_cache_bytes", "gauge", "Materialized bytes resident in the decoded-plan memory cache.", nil, float64(cache.MemBytes))
		p.metric("multitree_plan_mem_cache_entries", "gauge", "Schedules resident in the decoded-plan memory cache.", nil, float64(cache.MemEntries))
	}
	return p.err
}

// promWriter accumulates the first write error so call sites stay flat.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// head writes the HELP/TYPE preamble of a metric family.
func (p *promWriter) head(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one phase-labeled sample.
func (p *promWriter) sample(name, phase string, v float64) {
	p.printf("%s{phase=%q} %g\n", name, phase, v)
}

// metric writes a full single-sample family; labels nil means none.
func (p *promWriter) metric(name, typ, help string, labels map[string]string, v float64) {
	p.head(name, typ, help)
	if len(labels) == 0 {
		p.printf("%s %g\n", name, v)
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	p.printf("%s{", name)
	for i, k := range keys {
		if i > 0 {
			p.printf(",")
		}
		p.printf("%s=%q", k, labels[k])
	}
	p.printf("} %g\n", v)
}
