// Package obs is the simulation tracing and metrics layer: a
// zero-dependency (stdlib-only) event vocabulary shared by the network
// engines, the discrete-event core and the NI state machine, plus
// collectors that turn the event stream into per-link utilization
// histograms, queueing-delay distributions and a Chrome-trace/Perfetto
// export.
//
// The design center is cost when disabled: every emit site in the
// simulators is guarded by a nil check on the Tracer interface, so a run
// with no tracer attached pays one predictable branch per event and zero
// allocations (see TestNoOpEmitZeroAlloc and BenchmarkTraceOverhead).
// Events are small value structs reused at the emit sites — the engines
// build each Event on the stack and pass it by value, so neither emitting
// nor folding into Metrics boxes anything, and a Recorder whose slice has
// reached its high-water mark (Reset keeps capacity) records steadily
// with no per-event allocation either.
//
// Two simulation time domains flow through the same stream. Engine events
// carry cycle timestamps of the router clock (1 cycle = 1 ns at 1 GHz).
// NI-machine events (EvNI*) carry issue-round numbers of the behavioral
// Fig. 6 model, which has no clock; the Chrome-trace exporter keeps the
// domains on separate process tracks so they are never compared.
package obs

// Kind identifies the typed simulator events.
type Kind uint8

const (
	// EvTransferReady fires when a transfer's dependencies have cleared
	// (or immediately at seed time for dependency-free transfers) and it
	// is eligible to inject. Node is the transfer's source.
	EvTransferReady Kind = iota

	// EvTransferInjected fires when a transfer starts injecting at its
	// source NI: the fluid engine's flow activation, or the packet
	// engine's packetization and first-link enqueue. Bytes is the on-wire
	// size.
	EvTransferInjected

	// EvTransferDelivered fires when the last byte of a transfer reaches
	// its destination NI. Node is the destination.
	EvTransferDelivered

	// EvLinkAcquired is a span on a link's timeline. In the packet engine
	// it is one packet's serialization (Dur == Busy == wire/bandwidth).
	// In the fluid engine it is a flow's active interval on the link, with
	// Busy the busy-equivalent cycles at full link rate (wire/bandwidth),
	// so concurrent flows sharing a link never sum past 100%.
	EvLinkAcquired

	// EvLinkBlocked fires when a link's head packet cannot start because
	// the downstream input buffer lacks credit (packet engine only).
	EvLinkBlocked

	// EvStepEnter fires when a node's lockstep clock enters an active
	// schedule step (§IV-A injection regulation), in either engine.
	EvStepEnter

	// EvEngineQueue is a counter sample from the discrete-event core:
	// Bytes holds the pending-event count after the event at At ran.
	EvEngineQueue

	// EvNIEntryActivated fires when the Fig. 6 machine issues a
	// Reduce/Gather schedule-table entry. At is the issue round.
	EvNIEntryActivated

	// EvNIDepCleared fires when a received Reduce/Gather clears a
	// dependency in a node's table. Node is the receiver.
	EvNIDepCleared

	// EvNILockstep fires when the machine's lockstep down-counter elapses
	// a NOP entry.
	EvNILockstep

	// EvLinkFault fires when an injected fault activates on a link
	// (network.Config.Faults): Link is the affected directed link, Busy
	// the bandwidth scale now in effect (0 for a dead link), Dur the
	// added propagation latency in cycles. Appended after the NI kinds so
	// earlier trace digests keep their byte values.
	EvLinkFault
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case EvTransferReady:
		return "transfer-ready"
	case EvTransferInjected:
		return "transfer-injected"
	case EvTransferDelivered:
		return "transfer-delivered"
	case EvLinkAcquired:
		return "link-acquired"
	case EvLinkBlocked:
		return "link-blocked"
	case EvStepEnter:
		return "step-enter"
	case EvEngineQueue:
		return "engine-queue"
	case EvNIEntryActivated:
		return "ni-entry-activated"
	case EvNIDepCleared:
		return "ni-dep-cleared"
	case EvNILockstep:
		return "ni-lockstep-nop"
	case EvLinkFault:
		return "link-fault"
	}
	return "unknown"
}

// Event is one typed simulator event. Which fields are meaningful depends
// on Kind; unused fields are zero. At and Dur are in cycles for engine
// events and in issue rounds for EvNI* events.
type Event struct {
	Kind Kind
	At   float64 // timestamp
	Dur  float64 // span length; 0 for instants
	Busy float64 // busy-equivalent cycles within the span (<= Dur)

	Transfer int32 // schedule transfer id
	Link     int32 // directed link id
	Node     int32 // node id
	Flow     int32 // tree / chunk id
	Step     int32 // algorithmic step, 1-based

	Bytes int64 // payload or wire bytes; queue depth for EvEngineQueue
}

// Tracer receives simulator events. Implementations must tolerate events
// arriving with non-monotone At: the fluid engine reports a flow's link
// span only once the flow finishes injecting, so span starts lie in the
// past.
type Tracer interface {
	Emit(Event)
}

// Emit is the nil-safe helper for call sites that do not want an explicit
// guard: a nil tracer costs one branch and zero allocations.
func Emit(t Tracer, ev Event) {
	if t != nil {
		t.Emit(ev)
	}
}

// Recorder accumulates events in memory for export or analysis.
type Recorder struct {
	Events []Event
}

// Emit appends the event.
func (r *Recorder) Emit(ev Event) { r.Events = append(r.Events, ev) }

// Reset drops recorded events but keeps the capacity.
func (r *Recorder) Reset() { r.Events = r.Events[:0] }

// multi fans events out to several tracers.
type multi []Tracer

func (m multi) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// Tee combines tracers, skipping nils. It returns nil when none remain,
// the tracer itself for one, and a fan-out for more, so the result is
// always safe to store in a Tracer field.
func Tee(ts ...Tracer) Tracer {
	var out multi
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// StepLinkUtilization reports, per algorithmic step, the fraction of the
// topology's directed links that carried traffic of that step — the
// dynamic counterpart of collective.StepUtilization, measured from
// EvLinkAcquired events instead of the static schedule. Index 0 is unused
// (steps are 1-based).
func StepLinkUtilization(events []Event, totalLinks int) []float64 {
	if totalLinks == 0 {
		return nil
	}
	maxStep := 0
	for i := range events {
		if events[i].Kind == EvLinkAcquired && int(events[i].Step) > maxStep {
			maxStep = int(events[i].Step)
		}
	}
	if maxStep == 0 {
		return nil
	}
	used := make([]map[int32]bool, maxStep+1)
	for i := range events {
		ev := &events[i]
		if ev.Kind != EvLinkAcquired {
			continue
		}
		m := used[ev.Step]
		if m == nil {
			m = make(map[int32]bool)
			used[ev.Step] = m
		}
		m[ev.Link] = true
	}
	out := make([]float64, maxStep+1)
	for step := 1; step <= maxStep; step++ {
		out[step] = float64(len(used[step])) / float64(totalLinks)
	}
	return out
}
