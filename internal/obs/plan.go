package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Planner observability: the simulation Tracer sees what the engines do,
// but nothing in PR 1's event stream covers the minutes a large-fabric
// core.Build spends *before* any engine runs. PlanObserver is the
// planning-side counterpart — a small lifecycle interface the MultiTree
// constructor, the schedule lowering and the NI table compiler report
// into, with the same cost contract as Tracer: every emit site is guarded
// by a nil check, the per-search counters are plain integer fields that
// exist regardless, and a nil observer adds zero allocations to the
// planner hot path (TestPlanObserverNilZeroAlloc, core package).
//
// Wall time is measured by the observer, not the planner: a nil observer
// means not even a time.Now call.

// PlanPhase identifies one named phase of the plan -> compile pipeline.
// The names are stable: they key the RunReport phase breakdown, the
// Prometheus phase label, and the committed plan-profile CSVs.
type PlanPhase uint8

const (
	// PhaseTreeGrowth is Algorithm 1's main loop: trees taking turns
	// attaching one node at a time over per-step link allocation. This is
	// where large-fabric builds spend almost all of their time.
	PhaseTreeGrowth PlanPhase = iota

	// PhaseVariantScore is Auto mode's fluid-engine scoring of the
	// first-parent and shortest-path tree sets.
	PhaseVariantScore

	// PhaseLowering is collective.TreesToSchedule: spanning trees to the
	// transfer DAG with dependencies and pinned routes.
	PhaseLowering

	// PhaseNICompile is the Fig. 5 table compilation (internal/ni).
	PhaseNICompile

	// PhaseCacheLookup is the plan-cache probe (internal/plancache): key
	// derivation plus, on a hit, reading and validating the stored
	// schedule IR.
	PhaseCacheLookup

	// PhaseValidate is schedule validation at binary-IR load time: either
	// the O(1) summary + content-hash check of a trusted cache load or the
	// full ValidateStrict pass (-verify-plan, or a v1 entry with no
	// summary). It nests inside cache-lookup on warm loads, splitting the
	// load cost into decode vs validate.
	PhaseValidate

	// PhaseShardMerge is the commit-replay merge of sharded tree growth:
	// replaying the per-shard speculative turns against the live link pool
	// in global turn order. It nests inside tree-growth, one run per
	// round, so its share of the growth wall measures how much of the
	// sharded build is serial merge work vs parallel search.
	PhaseShardMerge

	// PhaseDecode is binary-IR materialization at load time: reading the
	// cache entry's section bytes and decoding them into the schedule's
	// arrays, fanned out over Options.Workers for a v3 entry. It nests
	// inside cache-lookup on warm loads; its DecodeNanos/VerifyNanos
	// counters split the per-worker CPU between varint decode and digest
	// verification (the phase wall covers both).
	PhaseDecode

	// NumPlanPhases bounds the phase ids; new phases append before it so
	// recorded profiles keep their meaning.
	NumPlanPhases
)

// String names the phase; these strings are the external identifiers.
func (p PlanPhase) String() string {
	switch p {
	case PhaseTreeGrowth:
		return "tree-growth"
	case PhaseVariantScore:
		return "variant-score"
	case PhaseLowering:
		return "lowering"
	case PhaseNICompile:
		return "ni-compile"
	case PhaseCacheLookup:
		return "cache-lookup"
	case PhaseValidate:
		return "validate"
	case PhaseShardMerge:
		return "shard-merge"
	case PhaseDecode:
		return "decode"
	}
	return "unknown"
}

// PlanCounters are the monotone counters a phase accumulates. Which
// fields are meaningful depends on the phase; unused fields stay zero.
// The planner keeps these as plain struct fields on its scratch state, so
// counting costs an integer add whether or not an observer is attached.
type PlanCounters struct {
	// Steps is the number of construction time steps completed
	// (tree-growth) — fresh-topology rounds of Algorithm 1 line 6.
	Steps int64

	// TreesGrown is the number of schedule trees grown to full
	// membership.
	TreesGrown int64

	// NodesAttached is the number of (tree, node) attachments made — the
	// unit of tree-growth progress; the total is trees x (nodes-1).
	NodesAttached int64

	// Searches counts BFS child searches attempted (Algorithm 1 line 10
	// turns); SearchMisses counts the searches that found no free path —
	// the conflict-set rejections that make dense steps expensive.
	Searches     int64
	SearchMisses int64

	// LinksScanned counts directed links examined across all searches;
	// LinkConflicts counts links skipped because another tree had already
	// claimed them within the step — the link-occupancy contention that
	// drives SearchMisses.
	LinksScanned  int64
	LinkConflicts int64

	// LinksAllocated counts links claimed for tree edges (path hops).
	LinksAllocated int64

	// Transfers is the number of schedule transfers emitted (lowering) or
	// validated (validate).
	Transfers int64

	// DepEdges/PathHops count the dependency edges and pinned path hops
	// emitted with those transfers (lowering) — together they are the
	// lowering output size the arena allocator provisions.
	DepEdges int64
	PathHops int64

	// TableEntries is the number of NI schedule-table entries compiled
	// (ni-compile).
	TableEntries int64

	// CacheHits/CacheMisses count plan-cache probes (cache-lookup) that
	// returned a validated schedule / fell through to a build; CacheBytes
	// is the IR bytes moved for them (read on hits, written on store).
	CacheHits   int64
	CacheMisses int64
	CacheBytes  int64

	// SummaryValidations/FullValidations count binary-IR loads accepted by
	// the O(1) validation summary + content hash vs. loads that ran the
	// full ValidateStrict pass (validate).
	SummaryValidations int64
	FullValidations    int64

	// ShardTurns/ShardReplays count sharded-growth merge turns and the
	// subset whose speculative search read a link that earlier turns had
	// claimed differently, forcing a replay against the live pool
	// (shard-merge). The replay ratio is the sharding overhead.
	ShardTurns   int64
	ShardReplays int64

	// DecodeNanos/VerifyNanos split a binary-IR load's CPU time between
	// varint materialization and content-digest verification (decode /
	// validate). Both sum per-worker time, so on a parallel v3 load they
	// can exceed the phase wall.
	DecodeNanos int64
	VerifyNanos int64

	// MemCacheHits/MemCacheMisses count decoded-plan memory-cache probes
	// (cache-lookup): a hit returns the already-materialized schedule and
	// skips disk and decode entirely.
	MemCacheHits   int64
	MemCacheMisses int64
}

// Add accumulates other into c.
func (c *PlanCounters) Add(other PlanCounters) {
	c.Steps += other.Steps
	c.TreesGrown += other.TreesGrown
	c.NodesAttached += other.NodesAttached
	c.Searches += other.Searches
	c.SearchMisses += other.SearchMisses
	c.LinksScanned += other.LinksScanned
	c.LinkConflicts += other.LinkConflicts
	c.LinksAllocated += other.LinksAllocated
	c.Transfers += other.Transfers
	c.DepEdges += other.DepEdges
	c.PathHops += other.PathHops
	c.TableEntries += other.TableEntries
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
	c.CacheBytes += other.CacheBytes
	c.SummaryValidations += other.SummaryValidations
	c.FullValidations += other.FullValidations
	c.ShardTurns += other.ShardTurns
	c.ShardReplays += other.ShardReplays
	c.DecodeNanos += other.DecodeNanos
	c.VerifyNanos += other.VerifyNanos
	c.MemCacheHits += other.MemCacheHits
	c.MemCacheMisses += other.MemCacheMisses
}

// PlanObserver receives planner lifecycle callbacks. All methods must be
// cheap and must not retain references into planner state. Emit sites
// guard on nil, so attaching no observer keeps planning allocation-free
// and branch-cheap; implementations are responsible for their own
// synchronization (phases of different builds may overlap when a sweep
// plans points in parallel).
type PlanObserver interface {
	// PhaseStart marks a phase beginning. Phases of one build do not
	// nest, but the same phase may run more than once (Auto builds both
	// tree variants) and concurrently across builds.
	PhaseStart(phase PlanPhase)

	// PhaseEnd marks a phase completing — on error paths too — and
	// delivers the counters the phase accumulated.
	PhaseEnd(phase PlanPhase, c PlanCounters)

	// PlanProgress reports coarse within-phase progress: done of total
	// work units (tree-growth: node attachments). Called at step
	// boundaries, roughly O(steps) times per build, never per unit.
	PlanProgress(phase PlanPhase, done, total int64)

	// Pipeline reports completed of total phase executions of the
	// current build, so long builds show "phase 2/6" alongside the
	// within-phase ratio. total is announced up front with completed 0.
	Pipeline(completed, total int)
}

// planMulti fans planner callbacks out to several observers.
type planMulti []PlanObserver

func (m planMulti) PhaseStart(ph PlanPhase) {
	for _, o := range m {
		o.PhaseStart(ph)
	}
}

func (m planMulti) PhaseEnd(ph PlanPhase, c PlanCounters) {
	for _, o := range m {
		o.PhaseEnd(ph, c)
	}
}

func (m planMulti) PlanProgress(ph PlanPhase, done, total int64) {
	for _, o := range m {
		o.PlanProgress(ph, done, total)
	}
}

func (m planMulti) Pipeline(completed, total int) {
	for _, o := range m {
		o.Pipeline(completed, total)
	}
}

// TeePlan combines plan observers, skipping nils: nil for none, the
// observer itself for one, a fan-out for more.
func TeePlan(os ...PlanObserver) PlanObserver {
	var out planMulti
	for _, o := range os {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// PhaseProfile is one phase's aggregate in a PlanProfile.
type PhaseProfile struct {
	Phase PlanPhase
	// Runs is how many times the phase executed (Auto builds run
	// tree-growth twice).
	Runs int64
	// WallNanos is the wall-clock time attributed to the phase. When
	// runs of the same phase overlap across goroutines, the union
	// interval is charged once (first start to last end).
	WallNanos int64
	Counters  PlanCounters
}

// PlanProfile is the standard PlanObserver: it aggregates per-phase wall
// time and counters, safe for concurrent use by parallel sweep workers
// sharing one profile. Its callbacks are allocation-free after
// construction, so an attached profile costs a mutex hop at phase and
// step boundaries only (BenchmarkPlanObserverOverhead).
type PlanProfile struct {
	mu     sync.Mutex
	phases [NumPlanPhases]PhaseProfile
	depth  [NumPlanPhases]int   // concurrently-open runs per phase
	openAt [NumPlanPhases]int64 // start of the current open interval

	progressPhase PlanPhase
	progressDone  int64
	progressTotal int64

	pipelineDone  int
	pipelineTotal int

	now func() time.Time // test hook; nil means time.Now
}

// NewPlanProfile returns an empty profile ready to attach as a
// PlanObserver.
func NewPlanProfile() *PlanProfile {
	p := &PlanProfile{}
	for i := range p.phases {
		p.phases[i].Phase = PlanPhase(i)
	}
	return p
}

func (p *PlanProfile) clock() int64 {
	if p.now != nil {
		return p.now().UnixNano()
	}
	return time.Now().UnixNano()
}

// PhaseStart implements PlanObserver.
func (p *PlanProfile) PhaseStart(ph PlanPhase) {
	if ph >= NumPlanPhases {
		return
	}
	t := p.clock()
	p.mu.Lock()
	if p.depth[ph] == 0 {
		p.openAt[ph] = t
	}
	p.depth[ph]++
	p.phases[ph].Runs++
	p.mu.Unlock()
}

// PhaseEnd implements PlanObserver.
func (p *PlanProfile) PhaseEnd(ph PlanPhase, c PlanCounters) {
	if ph >= NumPlanPhases {
		return
	}
	t := p.clock()
	p.mu.Lock()
	p.phases[ph].Counters.Add(c)
	if p.depth[ph] > 0 {
		p.depth[ph]--
		if p.depth[ph] == 0 {
			p.phases[ph].WallNanos += t - p.openAt[ph]
		}
	}
	p.mu.Unlock()
}

// PlanProgress implements PlanObserver.
func (p *PlanProfile) PlanProgress(ph PlanPhase, done, total int64) {
	p.mu.Lock()
	p.progressPhase, p.progressDone, p.progressTotal = ph, done, total
	p.mu.Unlock()
}

// Pipeline implements PlanObserver.
func (p *PlanProfile) Pipeline(completed, total int) {
	p.mu.Lock()
	p.pipelineDone, p.pipelineTotal = completed, total
	p.mu.Unlock()
}

// Progress returns the latest within-phase progress sample.
func (p *PlanProfile) Progress() (phase PlanPhase, done, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.progressPhase, p.progressDone, p.progressTotal
}

// PipelineProgress returns the latest completed/total phase-execution
// counts.
func (p *PlanProfile) PipelineProgress() (completed, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pipelineDone, p.pipelineTotal
}

// Phases returns the phases that ran, in pipeline order.
func (p *PlanProfile) Phases() []PhaseProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []PhaseProfile
	for i := range p.phases {
		if p.phases[i].Runs > 0 {
			out = append(out, p.phases[i])
		}
	}
	return out
}

// TotalWallNanos returns the wall time summed over phases. Phases do not
// overlap within one build, so for a single build this is the planning
// wall time; for parallel sweeps it can exceed elapsed time.
func (p *PlanProfile) TotalWallNanos() int64 {
	var tot int64
	for _, ph := range p.Phases() {
		tot += ph.WallNanos
	}
	return tot
}

// Report converts the profile into the RunReport planner section.
func (p *PlanProfile) Report() *PlanReport {
	phases := p.Phases()
	rep := &PlanReport{}
	for _, ph := range phases {
		rep.TotalNanos += ph.WallNanos
	}
	for _, ph := range phases {
		share := 0.0
		if rep.TotalNanos > 0 {
			share = float64(ph.WallNanos) / float64(rep.TotalNanos)
		}
		rep.Phases = append(rep.Phases, PhaseReport{
			Phase:          ph.Phase.String(),
			Runs:           ph.Runs,
			WallNanos:      ph.WallNanos,
			Share:          share,
			Steps:          ph.Counters.Steps,
			TreesGrown:     ph.Counters.TreesGrown,
			NodesAttached:  ph.Counters.NodesAttached,
			Searches:       ph.Counters.Searches,
			SearchMisses:   ph.Counters.SearchMisses,
			LinksScanned:   ph.Counters.LinksScanned,
			LinkConflicts:  ph.Counters.LinkConflicts,
			LinksAllocated: ph.Counters.LinksAllocated,
			Transfers:      ph.Counters.Transfers,
			DepEdges:       ph.Counters.DepEdges,
			PathHops:       ph.Counters.PathHops,
			TableEntries:   ph.Counters.TableEntries,
			CacheHits:      ph.Counters.CacheHits,
			CacheMisses:    ph.Counters.CacheMisses,
			CacheBytes:     ph.Counters.CacheBytes,

			SummaryValidations: ph.Counters.SummaryValidations,
			FullValidations:    ph.Counters.FullValidations,
			ShardTurns:         ph.Counters.ShardTurns,
			ShardReplays:       ph.Counters.ShardReplays,
			ShardCleanCommits:  ph.Counters.ShardTurns - ph.Counters.ShardReplays,
			ShardReplayShare:   shardReplayShare(ph.Counters),
			DecodeNanos:        ph.Counters.DecodeNanos,
			VerifyNanos:        ph.Counters.VerifyNanos,
			MemCacheHits:       ph.Counters.MemCacheHits,
			MemCacheMisses:     ph.Counters.MemCacheMisses,
		})
	}
	return rep
}

// shardReplayShare is the replayed fraction of shard-merge turns — the
// number the contention-aware-turn-order work tunes against.
func shardReplayShare(c PlanCounters) float64 {
	if c.ShardTurns == 0 {
		return 0
	}
	return float64(c.ShardReplays) / float64(c.ShardTurns)
}

// WriteCSV writes the phase breakdown as CSV: one row per phase that ran,
// with wall time, its share of the planner total, and every counter. This
// is the format of the committed results/plan-profile-*.csv artifacts.
func (p *PlanProfile) WriteCSV(w io.Writer) error {
	rep := p.Report()
	if _, err := fmt.Fprintln(w, "phase,runs,wall_ns,share,steps,trees_grown,nodes_attached,searches,search_misses,links_scanned,link_conflicts,links_allocated,transfers,dep_edges,path_hops,table_entries,cache_hits,cache_misses,cache_bytes,summary_validations,full_validations,shard_turns,shard_replays,decode_ns,verify_ns,mem_cache_hits,mem_cache_misses"); err != nil {
		return err
	}
	for _, ph := range rep.Phases {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			ph.Phase, ph.Runs, ph.WallNanos, ph.Share,
			ph.Steps, ph.TreesGrown, ph.NodesAttached,
			ph.Searches, ph.SearchMisses, ph.LinksScanned, ph.LinkConflicts,
			ph.LinksAllocated, ph.Transfers, ph.DepEdges, ph.PathHops, ph.TableEntries,
			ph.CacheHits, ph.CacheMisses, ph.CacheBytes,
			ph.SummaryValidations, ph.FullValidations,
			ph.ShardTurns, ph.ShardReplays,
			ph.DecodeNanos, ph.VerifyNanos,
			ph.MemCacheHits, ph.MemCacheMisses); err != nil {
			return err
		}
	}
	return nil
}

// Progress is a live planner progress reporter for long builds: attach it
// as a PlanObserver (Tee it with a PlanProfile to also keep the numbers)
// and a 20-minute mesh-32x32 build reports percent done and an ETA
// instead of appearing hung.
//
// Two output styles, selected by Interactive:
//
//   - Interactive (stderr is a terminal): a single line rewritten in
//     place with \r, erased cleanly at phase end.
//   - Non-interactive (CI logs, redirected files): plain line-buffered
//     samples at most once per MinInterval, no control characters.
type Progress struct {
	// W receives the progress output; typically os.Stderr.
	W io.Writer

	// Interactive selects the \r-rewriting single-line style. Leave
	// false when W is not a terminal (cmd tools detect this).
	Interactive bool

	// Label prefixes every line, e.g. the topology name. Optional.
	Label string

	// MinInterval throttles output; 0 defaults to 100ms interactive,
	// 2s non-interactive.
	MinInterval time.Duration

	mu            sync.Mutex
	phaseStart    [NumPlanPhases]int64
	lastEmit      int64
	lineOpen      bool // an unterminated \r line is on screen
	pipelineDone  int
	pipelineTotal int

	now func() time.Time // test hook; nil means time.Now
}

// NewProgress returns a progress reporter writing to w in the style
// matching interactive.
func NewProgress(w io.Writer, interactive bool) *Progress {
	return &Progress{W: w, Interactive: interactive}
}

func (p *Progress) clock() int64 {
	if p.now != nil {
		return p.now().UnixNano()
	}
	return time.Now().UnixNano()
}

func (p *Progress) interval() time.Duration {
	if p.MinInterval > 0 {
		return p.MinInterval
	}
	if p.Interactive {
		return 100 * time.Millisecond
	}
	return 2 * time.Second
}

func (p *Progress) prefix() string {
	if p.Label != "" {
		return p.Label + " "
	}
	return ""
}

// pipeline renders the "phase i/N" suffix; empty until announced.
func (p *Progress) pipeline() string {
	if p.pipelineTotal == 0 {
		return ""
	}
	return fmt.Sprintf(" [phase %d/%d]", p.pipelineDone+1, p.pipelineTotal)
}

// PhaseStart implements PlanObserver.
func (p *Progress) PhaseStart(ph PlanPhase) {
	if ph == PhaseShardMerge {
		// Per-round micro-phase nested inside tree-growth: a start/done
		// pair per round would flood the non-interactive log. The profile
		// keeps its numbers; the progress stream skips it.
		return
	}
	t := p.clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if ph < NumPlanPhases {
		p.phaseStart[ph] = t
	}
	if !p.Interactive {
		fmt.Fprintf(p.W, "%splan: %s started%s\n", p.prefix(), ph, p.pipeline())
	}
}

// PhaseEnd implements PlanObserver.
func (p *Progress) PhaseEnd(ph PlanPhase, c PlanCounters) {
	if ph == PhaseShardMerge {
		return
	}
	t := p.clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	var wall time.Duration
	if ph < NumPlanPhases && p.phaseStart[ph] != 0 {
		wall = time.Duration(t - p.phaseStart[ph])
	}
	p.closeLine()
	fmt.Fprintf(p.W, "%splan: %s done in %s%s\n", p.prefix(), ph, wall.Round(time.Millisecond), p.detail(ph, c))
	p.lastEmit = 0 // next phase's first sample prints immediately
}

// detail summarizes the counters that matter for the phase.
func (p *Progress) detail(ph PlanPhase, c PlanCounters) string {
	switch ph {
	case PhaseTreeGrowth:
		return fmt.Sprintf(" (%d steps, %d attachments, %d searches, %d misses)",
			c.Steps, c.NodesAttached, c.Searches, c.SearchMisses)
	case PhaseLowering:
		return fmt.Sprintf(" (%d transfers, %d dep edges, %d path hops)", c.Transfers, c.DepEdges, c.PathHops)
	case PhaseNICompile:
		return fmt.Sprintf(" (%d table entries)", c.TableEntries)
	case PhaseCacheLookup:
		if c.MemCacheHits > 0 {
			return fmt.Sprintf(" (%d memory hits)", c.MemCacheHits)
		}
		return fmt.Sprintf(" (%d hits, %d misses, %d bytes)", c.CacheHits, c.CacheMisses, c.CacheBytes)
	case PhaseDecode:
		return fmt.Sprintf(" (%d transfers, %s decode cpu)", c.Transfers, time.Duration(c.DecodeNanos).Round(time.Millisecond))
	case PhaseValidate:
		mode := "full"
		if c.SummaryValidations > 0 {
			mode = "summary"
		}
		return fmt.Sprintf(" (%d transfers, %s)", c.Transfers, mode)
	case PhaseShardMerge:
		return fmt.Sprintf(" (%d turns, %d replays)", c.ShardTurns, c.ShardReplays)
	}
	return ""
}

// PlanProgress implements PlanObserver: throttled percent-done with an
// ETA extrapolated from the phase's progress rate so far. Degenerate
// samples stay well-formed: total == 0 reports 0%, done past total is
// clamped to 100% with no ETA, and a completing sample (done >= total)
// bypasses the throttle so the final 100% line always lands before the
// phase's PhaseEnd.
func (p *Progress) PlanProgress(ph PlanPhase, done, total int64) {
	if ph == PhaseShardMerge {
		return
	}
	t := p.clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	final := total > 0 && done >= total
	if !final && p.lastEmit != 0 && time.Duration(t-p.lastEmit) < p.interval() {
		return
	}
	p.lastEmit = t
	var elapsed time.Duration
	if ph < NumPlanPhases && p.phaseStart[ph] != 0 {
		elapsed = time.Duration(t - p.phaseStart[ph])
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
		if pct > 100 {
			pct = 100
		}
	}
	eta := ""
	if done > 0 && total > done && elapsed > 0 {
		rem := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
		eta = " eta " + rem.Round(time.Second).String()
	}
	line := fmt.Sprintf("%splan: %s %d/%d (%.1f%%)%s elapsed %s%s",
		p.prefix(), ph, done, total, pct, p.pipeline(), elapsed.Round(time.Second), eta)
	if p.Interactive {
		// \r-rewrite one line; pad-erase is handled by closeLine at end.
		fmt.Fprintf(p.W, "\r\x1b[K%s", line)
		p.lineOpen = true
		return
	}
	fmt.Fprintln(p.W, line)
}

// Pipeline implements PlanObserver.
func (p *Progress) Pipeline(completed, total int) {
	p.mu.Lock()
	p.pipelineDone, p.pipelineTotal = completed, total
	p.mu.Unlock()
}

// closeLine terminates an open interactive line. Callers hold mu.
func (p *Progress) closeLine() {
	if p.lineOpen {
		fmt.Fprintf(p.W, "\r\x1b[K")
		p.lineOpen = false
	}
}
