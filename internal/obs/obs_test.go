package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRecorderAccumulatesAndResets(t *testing.T) {
	r := &Recorder{}
	r.Emit(Event{Kind: EvTransferReady, At: 1})
	r.Emit(Event{Kind: EvTransferDelivered, At: 2})
	if len(r.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(r.Events))
	}
	if r.Events[0].Kind != EvTransferReady || r.Events[1].At != 2 {
		t.Fatalf("events recorded wrong: %+v", r.Events)
	}
	r.Reset()
	if len(r.Events) != 0 || cap(r.Events) < 2 {
		t.Fatalf("Reset should keep capacity: len=%d cap=%d", len(r.Events), cap(r.Events))
	}
}

func TestTee(t *testing.T) {
	if tr := Tee(nil, nil); tr != nil {
		t.Fatalf("Tee of nils should be nil, got %T", tr)
	}
	a := &Recorder{}
	if tr := Tee(nil, a); tr != Tracer(a) {
		t.Fatalf("Tee of one tracer should return it directly, got %T", tr)
	}
	b := &Recorder{}
	tr := Tee(a, nil, b)
	tr.Emit(Event{Kind: EvStepEnter})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("fan-out failed: a=%d b=%d", len(a.Events), len(b.Events))
	}
}

// TestNoOpEmitZeroAlloc pins the tentpole cost contract: with no tracer
// attached, an emit site is a branch and nothing else.
func TestNoOpEmitZeroAlloc(t *testing.T) {
	ev := Event{Kind: EvLinkAcquired, At: 10, Dur: 4, Busy: 4, Link: 3, Transfer: 7, Bytes: 272}
	allocs := testing.AllocsPerRun(1000, func() {
		Emit(nil, ev)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer Emit allocates %v bytes/op, want 0", allocs)
	}
}

// Recording must not box events either: appending value structs to the
// recorder amortizes to well under one allocation per event.
func TestRecorderLowAlloc(t *testing.T) {
	r := &Recorder{Events: make([]Event, 0, 2000)}
	ev := Event{Kind: EvLinkAcquired, At: 10}
	allocs := testing.AllocsPerRun(1000, func() {
		if len(r.Events) == cap(r.Events) {
			r.Reset()
		}
		r.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("pre-sized Recorder.Emit allocates %v/op, want 0", allocs)
	}
}

func TestMetricsLinkBinning(t *testing.T) {
	m := NewMetrics(10)
	// A fully-busy span covering bins [0,10) and [10,20) equally.
	m.Emit(Event{Kind: EvLinkAcquired, Link: 0, At: 5, Dur: 10, Busy: 10})
	// A half-rate span inside one bin.
	m.Emit(Event{Kind: EvLinkAcquired, Link: 2, At: 20, Dur: 8, Busy: 4})

	busy := m.LinkBusy()
	if len(busy) != 3 || busy[0] != 10 || busy[1] != 0 || busy[2] != 4 {
		t.Fatalf("LinkBusy = %v, want [10 0 4]", busy)
	}
	b0 := m.LinkBins(0)
	if len(b0) != 2 || math.Abs(b0[0]-5) > 1e-9 || math.Abs(b0[1]-5) > 1e-9 {
		t.Fatalf("link 0 bins = %v, want [5 5]", b0)
	}
	b2 := m.LinkBins(2)
	if len(b2) != 3 || math.Abs(b2[2]-4) > 1e-9 {
		t.Fatalf("link 2 bins = %v, want busy 4 in bin 2", b2)
	}
	if m.LinkBins(7) != nil {
		t.Fatalf("unseen link should have nil bins")
	}

	var csv bytes.Buffer
	if err := m.WriteLinkCSV(&csv, []string{"a->b"}); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "link,name,bin_start_cycles,bin_end_cycles,busy_cycles,utilization\n") {
		t.Fatalf("bad CSV header:\n%s", out)
	}
	if !strings.Contains(out, "0,a->b,0,10,5.0,0.5000") {
		t.Fatalf("missing expected bin row:\n%s", out)
	}
	if !strings.Contains(out, "2,link2,20,30,4.0,0.4000") {
		t.Fatalf("missing fallback-named row:\n%s", out)
	}
}

func TestMetricsQueueingDelay(t *testing.T) {
	m := NewMetrics(0)
	m.Emit(Event{Kind: EvTransferReady, Transfer: 1, At: 100})
	m.Emit(Event{Kind: EvTransferReady, Transfer: 2, At: 100})
	// Transfer 1 waits 50 cycles for its first link, transfer 2 none.
	m.Emit(Event{Kind: EvLinkAcquired, Transfer: 1, Link: 0, At: 150, Dur: 10, Busy: 10})
	m.Emit(Event{Kind: EvLinkAcquired, Transfer: 1, Link: 1, At: 400, Dur: 10, Busy: 10}) // later hop: ignored
	m.Emit(Event{Kind: EvLinkAcquired, Transfer: 2, Link: 2, At: 100, Dur: 10, Busy: 10})
	d := m.QueueingDelays()
	if len(d) != 2 || d[0] != 0 || d[1] != 50 {
		t.Fatalf("QueueingDelays = %v, want [0 50]", d)
	}
	if got := m.QueueingDelayQuantile(1); got != 50 {
		t.Fatalf("p100 = %v, want 50", got)
	}
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics(0)
	m.Emit(Event{Kind: EvStepEnter, Step: 1})
	m.Emit(Event{Kind: EvEngineQueue, Bytes: 3})
	m.Emit(Event{Kind: EvEngineQueue, Bytes: 9})
	m.Emit(Event{Kind: EvEngineQueue, Bytes: 2})
	m.Emit(Event{Kind: EvNIEntryActivated, Node: 2})
	m.Emit(Event{Kind: EvNIEntryActivated, Node: 2})
	m.Emit(Event{Kind: EvNIDepCleared, Node: 0})
	m.Emit(Event{Kind: EvNILockstep, Node: 1})
	if m.StepEnters() != 1 || m.EngineQueueMax() != 9 || m.NILockstepNOPs() != 1 {
		t.Fatalf("counters wrong: steps=%d qmax=%d nops=%d",
			m.StepEnters(), m.EngineQueueMax(), m.NILockstepNOPs())
	}
	if got := m.NIEntriesIssued(); len(got) != 3 || got[2] != 2 {
		t.Fatalf("NIEntriesIssued = %v, want [0 0 2]", got)
	}
	if got := m.NIDepsCleared(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("NIDepsCleared = %v, want [1]", got)
	}
	if m.Events() != 8 {
		t.Fatalf("Events = %d, want 8", m.Events())
	}
}

func TestStepLinkUtilization(t *testing.T) {
	events := []Event{
		{Kind: EvLinkAcquired, Link: 0, Step: 1},
		{Kind: EvLinkAcquired, Link: 0, Step: 1}, // duplicate: same link, same step
		{Kind: EvLinkAcquired, Link: 1, Step: 2},
		{Kind: EvLinkAcquired, Link: 2, Step: 2},
		{Kind: EvTransferReady, Step: 2}, // not a link event
	}
	u := StepLinkUtilization(events, 4)
	if len(u) != 3 {
		t.Fatalf("len = %d, want 3", len(u))
	}
	if u[1] != 0.25 || u[2] != 0.5 {
		t.Fatalf("utilization = %v, want [_ 0.25 0.5]", u)
	}
	if StepLinkUtilization(nil, 4) != nil || StepLinkUtilization(events, 0) != nil {
		t.Fatalf("empty inputs should yield nil")
	}
}

func TestKindString(t *testing.T) {
	for k := EvTransferReady; k <= EvNILockstep; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatalf("out-of-range kind should be unknown")
	}
}

// TestWriteChromeTraceJSON checks the export is valid Chrome-trace JSON
// with the documented track layout.
func TestWriteChromeTraceJSON(t *testing.T) {
	meta := TraceMeta{Title: "test", LinkNames: []string{"n0->n1", "n1->n0"}, Nodes: 2}
	events := []Event{
		{Kind: EvTransferInjected, At: 0, Transfer: 0, Node: 0, Flow: 0, Step: 1, Bytes: 256},
		{Kind: EvLinkAcquired, At: 10, Dur: 16, Busy: 16, Link: 0, Transfer: 0, Step: 1, Bytes: 272},
		{Kind: EvLinkAcquired, At: 5, Dur: 20, Busy: 10, Link: 1, Transfer: 1, Step: 1, Bytes: 272},
		{Kind: EvTransferDelivered, At: 30, Transfer: 0, Node: 1},
		{Kind: EvEngineQueue, At: 12, Bytes: 5},
		{Kind: EvNIEntryActivated, At: 1, Node: 0, Flow: 0, Step: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var spans, instants, counters, metas int
	lastTs := -1.0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur <= 0 {
				t.Fatalf("span %q has non-positive dur %v", ev.Name, ev.Dur)
			}
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			metas++
			continue // metadata has no ordering requirement
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Ts < lastTs && ev.Pid != pidNIMachine {
			t.Fatalf("engine events out of ts order: %v after %v", ev.Ts, lastTs)
		}
		if ev.Pid != pidNIMachine {
			lastTs = ev.Ts
		}
	}
	if spans != 2 {
		t.Fatalf("got %d spans, want 2 (one per EvLinkAcquired)", spans)
	}
	if instants < 2 || counters != 1 || metas == 0 {
		t.Fatalf("instants=%d counters=%d metas=%d", instants, counters, metas)
	}
}
