package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceMeta names the tracks of a Chrome-trace export. LinkNames is
// indexed by directed link id ("n0->n1", "n3->s16", ...); Nodes is the
// accelerator count.
type TraceMeta struct {
	Title     string
	LinkNames []string
	Nodes     int
}

// Track (pid) layout of the export: one process per concern, one thread
// per link or node, so Perfetto renders per-link timelines and per-node NI
// timelines as separate groups.
const (
	pidLinks     = 1 // link serialization spans + credit-block instants
	pidNI        = 2 // per-node injection/delivery/lockstep instants
	pidNIMachine = 3 // Fig. 6 machine issue rounds (round domain, not cycles)
	pidEngine    = 4 // discrete-event core pending-event counter
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (ph X = complete span, i = instant, C = counter, M = metadata), as
// consumed by chrome://tracing and ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// usPerCycle converts router cycles to trace microseconds (1 cycle = 1 ns
// at the paper's 1 GHz clock).
const usPerCycle = 1e-3

// WriteChromeTrace exports events as Chrome-trace JSON loadable in
// ui.perfetto.dev or chrome://tracing: one track per directed link
// (serialization spans and credit blocks), one per node's NI (injection,
// delivery, lockstep steps), one per node of the Fig. 6 machine (issue
// rounds), and a pending-event counter for the discrete-event core.
func WriteChromeTrace(w io.Writer, meta TraceMeta, events []Event) error {
	out := chromeTrace{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]any{"title": meta.Title},
	}
	add := func(ev chromeEvent) { out.TraceEvents = append(out.TraceEvents, ev) }

	// Track metadata: name the processes, and each link/node thread.
	meta0 := func(pid int, name string) {
		add(chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
	}
	meta0(pidLinks, "links")
	meta0(pidNI, "node NIs")
	usedMachine, usedEngine := false, false
	for i := range events {
		switch events[i].Kind {
		case EvNIEntryActivated, EvNIDepCleared, EvNILockstep:
			usedMachine = true
		case EvEngineQueue:
			usedEngine = true
		}
	}
	if usedEngine {
		meta0(pidEngine, "event queue")
	}
	if usedMachine {
		meta0(pidNIMachine, "NI machine (issue rounds)")
	}
	for l, name := range meta.LinkNames {
		add(chromeEvent{Name: "thread_name", Ph: "M", Pid: pidLinks, Tid: l,
			Args: map[string]any{"name": name}})
	}
	for n := 0; n < meta.Nodes; n++ {
		add(chromeEvent{Name: "thread_name", Ph: "M", Pid: pidNI, Tid: n,
			Args: map[string]any{"name": fmt.Sprintf("node %d NI", n)}})
		if usedMachine {
			add(chromeEvent{Name: "thread_name", Ph: "M", Pid: pidNIMachine, Tid: n,
				Args: map[string]any{"name": fmt.Sprintf("node %d table", n)}})
		}
	}

	// The fluid engine reports link spans at injection completion with
	// starts in the past; sort so the JSON is time-ordered.
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	for i := range sorted {
		ev := &sorted[i]
		switch ev.Kind {
		case EvLinkAcquired:
			dur := ev.Dur
			if dur <= 0 {
				dur = ev.Busy
			}
			add(chromeEvent{
				Name: fmt.Sprintf("t%d f%d s%d", ev.Transfer, ev.Flow, ev.Step),
				Ph:   "X", Ts: ev.At * usPerCycle, Dur: dur * usPerCycle,
				Pid: pidLinks, Tid: int(ev.Link),
				Args: map[string]any{
					"transfer": ev.Transfer, "flow": ev.Flow, "step": ev.Step,
					"wire_bytes": ev.Bytes, "busy_cycles": ev.Busy,
				},
			})
		case EvLinkBlocked:
			add(chromeEvent{
				Name: fmt.Sprintf("blocked t%d", ev.Transfer),
				Ph:   "i", S: "t", Ts: ev.At * usPerCycle,
				Pid: pidLinks, Tid: int(ev.Link),
				Args: map[string]any{"transfer": ev.Transfer},
			})
		case EvTransferReady:
			add(instant(fmt.Sprintf("ready t%d", ev.Transfer), ev))
		case EvTransferInjected:
			e := instant(fmt.Sprintf("inject t%d", ev.Transfer), ev)
			e.Args = map[string]any{"wire_bytes": ev.Bytes, "flow": ev.Flow, "step": ev.Step}
			add(e)
		case EvTransferDelivered:
			add(instant(fmt.Sprintf("deliver t%d", ev.Transfer), ev))
		case EvStepEnter:
			add(instant(fmt.Sprintf("step %d", ev.Step), ev))
		case EvEngineQueue:
			add(chromeEvent{
				Name: "pending events", Ph: "C", Ts: ev.At * usPerCycle,
				Pid: pidEngine, Tid: 0,
				Args: map[string]any{"pending": ev.Bytes},
			})
		case EvNIEntryActivated:
			add(machineInstant(fmt.Sprintf("issue f%d s%d", ev.Flow, ev.Step), ev))
		case EvNIDepCleared:
			add(machineInstant(fmt.Sprintf("dep-clear f%d", ev.Flow), ev))
		case EvNILockstep:
			add(machineInstant(fmt.Sprintf("nop s%d", ev.Step), ev))
		case EvLinkFault:
			name := fmt.Sprintf("fault bw x%g", ev.Busy)
			if ev.Busy == 0 {
				name = "fault: link down"
			} else if ev.Dur > 0 && ev.Busy == 1 {
				name = fmt.Sprintf("fault lat +%g", ev.Dur)
			}
			add(chromeEvent{
				Name: name, Ph: "i", S: "t", Ts: ev.At * usPerCycle,
				Pid: pidLinks, Tid: int(ev.Link),
				Args: map[string]any{"bw_scale": ev.Busy, "added_latency": ev.Dur},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func instant(name string, ev *Event) chromeEvent {
	return chromeEvent{
		Name: name, Ph: "i", S: "t", Ts: ev.At * usPerCycle,
		Pid: pidNI, Tid: int(ev.Node),
	}
}

// machineInstant places a Fig. 6 machine event on the round-domain track;
// one issue round is rendered as one microsecond so rounds stay readable
// next to the cycle-domain tracks without implying a common clock.
func machineInstant(name string, ev *Event) chromeEvent {
	return chromeEvent{
		Name: name, Ph: "i", S: "t", Ts: ev.At,
		Pid: pidNIMachine, Tid: int(ev.Node),
	}
}
