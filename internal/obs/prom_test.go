package obs

import (
	"bufio"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseProm validates the exposition text line by line and returns the
// samples. It enforces the 0.0.4 format rules the CI smoke relies on:
// every sample preceded by HELP+TYPE for its family, parseable values,
// no duplicate series.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	helped := make(map[string]bool)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge") {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[0]] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		family := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			family = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
		}
		if !strings.HasPrefix(family, "multitree_") {
			t.Fatalf("sample outside multitree namespace: %q", line)
		}
		if !helped[family] || !typed[family] {
			t.Fatalf("sample %q before its HELP/TYPE preamble", line)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("duplicate series %q", series)
		}
		samples[series] = val
	}
	return samples
}

func TestPromHandlerEmpty(t *testing.T) {
	var buf strings.Builder
	if err := NewPromHandler().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	s := parseProm(t, buf.String())
	if s["multitree_up"] != 1 {
		t.Fatalf("multitree_up = %v, want 1", s["multitree_up"])
	}
	if s["multitree_sim_runs_total"] != 0 {
		t.Fatalf("runs = %v, want 0", s["multitree_sim_runs_total"])
	}
}

func TestPromHandlerSimAndPlan(t *testing.T) {
	h := NewPromHandler()
	h.ObserveSim(MetricsSnapshot{Events: 100, StepEnters: 10, EngineQueueMax: 7, LinkBusyCycles: 1.5, LinksActive: 4, NIEntriesIssued: 20, NIDepsCleared: 9, NILockstepNOPs: 3})
	h.ObserveSim(MetricsSnapshot{Events: 50, EngineQueueMax: 3, LinksActive: 2})

	p := NewPlanProfile()
	clk := &fakeClock{step: 250 * time.Millisecond}
	p.now = clk.now
	p.PhaseStart(PhaseTreeGrowth)
	p.PlanProgress(PhaseTreeGrowth, 30, 60)
	p.PhaseEnd(PhaseTreeGrowth, PlanCounters{Steps: 4, NodesAttached: 30, Searches: 40, SearchMisses: 10, LinksScanned: 200, LinkConflicts: 50, LinksAllocated: 60})
	p.PhaseStart(PhaseShardMerge)
	p.PhaseEnd(PhaseShardMerge, PlanCounters{ShardTurns: 10, ShardReplays: 3})
	p.PhaseStart(PhaseDecode)
	p.PhaseEnd(PhaseDecode, PlanCounters{DecodeNanos: 2e9, VerifyNanos: 1e9, MemCacheHits: 5, MemCacheMisses: 2})
	p.Pipeline(1, 3)
	h.SetPlanProfile(p)
	h.ObservePlanCache(PlanCacheReport{Hits: 4, MemHits: 5, MemMisses: 2, MemEvictions: 1, MemBytes: 1 << 20, MemEntries: 3})

	var buf strings.Builder
	if err := h.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	s := parseProm(t, buf.String())

	if s["multitree_sim_runs_total"] != 2 || s["multitree_sim_events_total"] != 150 {
		t.Fatalf("sim accumulation wrong: %v", s)
	}
	if s["multitree_sim_engine_queue_max"] != 7 {
		t.Fatalf("queue max should take the max across runs: %v", s["multitree_sim_engine_queue_max"])
	}
	if s[`multitree_plan_phase_wall_seconds{phase="tree-growth"}`] != 0.25 {
		t.Fatalf("phase wall: %v", s[`multitree_plan_phase_wall_seconds{phase="tree-growth"}`])
	}
	if s["multitree_plan_search_misses_total"] != 10 || s["multitree_plan_link_conflicts_total"] != 50 {
		t.Fatalf("plan counters: %v", s)
	}
	if s[`multitree_plan_progress_done{phase="tree-growth"}`] != 30 ||
		s[`multitree_plan_progress_total{phase="tree-growth"}`] != 60 {
		t.Fatalf("plan progress gauges: %v", s)
	}
	if s["multitree_plan_pipeline_done"] != 1 || s["multitree_plan_pipeline_total"] != 3 {
		t.Fatalf("pipeline gauges: %v", s)
	}
	if s["multitree_plan_shard_turns_total"] != 10 || s["multitree_plan_shard_replays_total"] != 3 ||
		s["multitree_plan_shard_clean_commits_total"] != 7 {
		t.Fatalf("shard counters: %v", s)
	}
	if s["multitree_plan_decode_cpu_seconds_total"] != 2 || s["multitree_plan_verify_cpu_seconds_total"] != 1 {
		t.Fatalf("decode/verify cpu counters: %v", s)
	}
	if s["multitree_plan_mem_cache_hits_total"] != 5 || s["multitree_plan_mem_cache_misses_total"] != 2 {
		t.Fatalf("mem-cache counters: %v", s)
	}
	if s["multitree_plan_cache_hits_total"] != 4 || s["multitree_plan_mem_cache_evictions_total"] != 1 ||
		s["multitree_plan_mem_cache_bytes"] != 1<<20 || s["multitree_plan_mem_cache_entries"] != 3 {
		t.Fatalf("mem-cache store gauges: %v", s)
	}
}

func TestPromHandlerServeHTTP(t *testing.T) {
	h := NewPromHandler()
	h.ObserveSim(MetricsSnapshot{Events: 1})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	parseProm(t, rec.Body.String())
}

// TestPromScrapeDuringBuild simulates a scrape arriving while a planner
// goroutine is mid-phase: the profile is attached and open but not yet
// ended. The scrape must not block or panic, and progress gauges must
// reflect the in-flight sample.
func TestPromScrapeDuringBuild(t *testing.T) {
	h := NewPromHandler()
	p := NewPlanProfile()
	h.SetPlanProfile(p)
	p.PhaseStart(PhaseTreeGrowth)
	p.PlanProgress(PhaseTreeGrowth, 5, 100)

	var buf strings.Builder
	if err := h.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	s := parseProm(t, buf.String())
	if s[`multitree_plan_progress_done{phase="tree-growth"}`] != 5 {
		t.Fatalf("in-flight progress not visible: %v", s)
	}
	if s[`multitree_plan_phase_runs_total{phase="tree-growth"}`] != 1 {
		t.Fatalf("open phase should still count a run: %v", s)
	}
}
