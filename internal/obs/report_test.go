package obs

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport() *RunReport {
	r := NewRunReport("allreduce-bench", "single")
	r.StartedAt = "2026-08-08T00:00:00Z"
	r.Topology = &TopologyInfo{Name: "mesh-4x4", Nodes: 16, Links: 48, Fingerprint: "deadbeef"}
	r.Algorithm = "multitree"
	r.DataBytes = 1 << 20
	r.Engine = "fluid"
	r.Options = map[string]string{"chunks": "4"}
	r.Planner = &PlanReport{
		TotalNanos: 2e9,
		Phases: []PhaseReport{
			{Phase: "tree-growth", Runs: 1, WallNanos: 15e8, Share: 0.75, Steps: 12, NodesAttached: 60},
			{Phase: "lowering", Runs: 1, WallNanos: 5e8, Share: 0.25, Transfers: 120},
		},
	}
	r.Sim = &SimReport{Engine: "fluid", Events: 4096, Cycles: 12345, BandwidthGBps: 99.5}
	r.Wall = &WallSplit{PlanNanos: 2e9, CompileNanos: 1e8, SimulateNanos: 3e8, TotalNanos: 24e8}
	r.Points = []ReportPoint{{Topology: "mesh-4x4", Algorithm: "multitree", DataBytes: 1 << 20, Cycles: 12345, BandwidthGBps: 99.5, WallNanos: 5e8, PlanNanos: 4e8}}
	return r
}

func TestRunReportRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRunReport(&buf)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if got.Tool != "allreduce-bench" || got.Mode != "single" {
		t.Fatalf("tool/mode lost: %+v", got)
	}
	if got.Env.GoVersion == "" || got.Env.GOMAXPROCS < 1 {
		t.Fatalf("env not captured: %+v", got.Env)
	}
	if got.Topology == nil || got.Topology.Fingerprint != "deadbeef" {
		t.Fatalf("topology lost: %+v", got.Topology)
	}
	if got.Planner == nil || len(got.Planner.Phases) != 2 || got.Planner.Phases[0].Phase != "tree-growth" {
		t.Fatalf("planner section lost: %+v", got.Planner)
	}
	if got.Wall == nil || got.Wall.TotalNanos != 24e8 {
		t.Fatalf("wall split lost: %+v", got.Wall)
	}
	if len(got.Points) != 1 || got.Points[0].PlanNanos != 4e8 {
		t.Fatalf("points lost: %+v", got.Points)
	}
}

func TestDecodeRunReportRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"schema":"multitree-runreport/v1","tool":"x","env":{"go_version":"go1.22","goos":"linux","goarch":"amd64","gomaxprocs":1,"num_cpu":1},"surprise":1}`,
		"wrong schema":   `{"schema":"multitree-runreport/v0","tool":"x","env":{"go_version":"go1.22","goos":"linux","goarch":"amd64","gomaxprocs":1,"num_cpu":1}}`,
		"missing schema": `{"tool":"x","env":{"go_version":"go1.22","goos":"linux","goarch":"amd64","gomaxprocs":1,"num_cpu":1}}`,
		"trailing data":  `{"schema":"multitree-runreport/v1","tool":"x","env":{"go_version":"go1.22","goos":"linux","goarch":"amd64","gomaxprocs":1,"num_cpu":1}} {"another":true}`,
		"not json":       `phase,runs\n`,
	}
	for name, in := range cases {
		if _, err := DecodeRunReport(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted invalid input", name)
		}
	}
}

func TestSimReportFrom(t *testing.T) {
	if SimReportFrom(nil) != nil {
		t.Fatal("nil Metrics should yield nil SimReport")
	}
	m := NewMetrics(0)
	m.Emit(Event{Kind: EvStepEnter})
	m.Emit(Event{Kind: EvLinkAcquired, Link: 2, At: 0, Dur: 10, Busy: 10})
	m.Emit(Event{Kind: EvNIEntryActivated, Node: 1})
	s := SimReportFrom(m)
	if s.Events != 3 || s.StepEnters != 1 || s.LinksActive != 1 || s.LinkBusyCycles != 10 || s.NIEntriesIssued != 1 {
		t.Fatalf("sim report: %+v", s)
	}
}
