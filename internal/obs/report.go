package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// RunReportSchema is the versioned identifier of the structured run
// report. Decoders reject unknown schemas and unknown fields, so a
// report either round-trips exactly or fails loudly — the property the
// CI smoke step checks. Additions bump the version; DecodeRunReport
// keeps accepting the versions whose fields remain a subset of the
// current struct (v2 added the additive plan_cache section; v3 added the
// validate phase counters and cache validation-mode counts; v4 added the
// decode/verify split, the shard-merge replay share, and the decoded-plan
// memory-cache counters — so v1 through v3 reports still decode).
const RunReportSchema = "multitree-runreport/v4"

// RunReportSchemaV1 through RunReportSchemaV3 are previous schema
// identifiers, still accepted by DecodeRunReport: their fields are strict
// subsets of the current struct.
const (
	RunReportSchemaV1 = "multitree-runreport/v1"
	RunReportSchemaV2 = "multitree-runreport/v2"
	RunReportSchemaV3 = "multitree-runreport/v3"
)

// RunReport is the machine-readable record of one CLI run: environment,
// what was planned and simulated, where the wall time went, and the
// planner phase breakdown. The three cmd/ tools write one behind
// -report <file>; the survey's point (PAPERS.md) is that credible
// simulators report reproducible run metadata, not bare numbers.
type RunReport struct {
	// Schema is always RunReportSchema.
	Schema string `json:"schema"`

	// Tool is the producing command ("allreduce-bench", ...); Mode its
	// operating mode ("single", "fig9", "schedule", ...).
	Tool string `json:"tool"`
	Mode string `json:"mode,omitempty"`

	// StartedAt is the run's start time in RFC3339 format.
	StartedAt string `json:"started_at,omitempty"`

	Env EnvInfo `json:"env"`

	Topology *TopologyInfo `json:"topology,omitempty"`

	// Algorithm/DataBytes/Engine describe the single-run configuration;
	// sweeps leave them empty and carry per-point data in Points.
	Algorithm string `json:"algorithm,omitempty"`
	DataBytes int64  `json:"data_bytes,omitempty"`
	Engine    string `json:"engine,omitempty"`

	// Options records free-form knobs that shaped the run (fault specs,
	// worker counts, payload overrides).
	Options map[string]string `json:"options,omitempty"`

	// Planner is the phase breakdown collected by a PlanProfile.
	Planner *PlanReport `json:"planner,omitempty"`

	// PlanCache summarizes the on-disk plan cache's activity, when one
	// was attached (-plan-cache).
	PlanCache *PlanCacheReport `json:"plan_cache,omitempty"`

	// Sim aggregates engine-side counters for the run.
	Sim *SimReport `json:"sim,omitempty"`

	// Wall splits the run's host wall-clock time across the pipeline.
	Wall *WallSplit `json:"wall,omitempty"`

	// Points carries per-point sweep results (Fig. 9 mode).
	Points []ReportPoint `json:"points,omitempty"`
}

// EnvInfo captures the execution environment.
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CaptureEnv snapshots the current process environment.
func CaptureEnv() EnvInfo {
	return EnvInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// TopologyInfo identifies the fabric a run planned or simulated.
type TopologyInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Links int    `json:"links"`
	// Fingerprint is the sha256 structure hash of the schedule IR
	// (collective.TopologyFingerprint), when a schedule was built.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// PlanReport is the serialized form of a PlanProfile.
type PlanReport struct {
	TotalNanos int64         `json:"total_ns"`
	Phases     []PhaseReport `json:"phases"`
}

// PhaseReport is one planner phase's aggregate: wall time, its share of
// the planner total, and the counters meaningful for the phase.
type PhaseReport struct {
	Phase     string  `json:"phase"`
	Runs      int64   `json:"runs"`
	WallNanos int64   `json:"wall_ns"`
	Share     float64 `json:"share"`

	Steps          int64 `json:"steps,omitempty"`
	TreesGrown     int64 `json:"trees_grown,omitempty"`
	NodesAttached  int64 `json:"nodes_attached,omitempty"`
	Searches       int64 `json:"searches,omitempty"`
	SearchMisses   int64 `json:"search_misses,omitempty"`
	LinksScanned   int64 `json:"links_scanned,omitempty"`
	LinkConflicts  int64 `json:"link_conflicts,omitempty"`
	LinksAllocated int64 `json:"links_allocated,omitempty"`
	Transfers      int64 `json:"transfers,omitempty"`
	DepEdges       int64 `json:"dep_edges,omitempty"`
	PathHops       int64 `json:"path_hops,omitempty"`
	TableEntries   int64 `json:"table_entries,omitempty"`
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheBytes     int64 `json:"cache_bytes,omitempty"`

	SummaryValidations int64 `json:"summary_validations,omitempty"`
	FullValidations    int64 `json:"full_validations,omitempty"`

	ShardTurns   int64 `json:"shard_turns,omitempty"`
	ShardReplays int64 `json:"shard_replays,omitempty"`

	// ShardCleanCommits is ShardTurns - ShardReplays — merge turns whose
	// speculative result committed without a replay — and
	// ShardReplayShare the replayed fraction, the contention signal the
	// ROADMAP's turn-order work tunes against.
	ShardCleanCommits int64   `json:"shard_clean_commits,omitempty"`
	ShardReplayShare  float64 `json:"shard_replay_share,omitempty"`

	// DecodeNanos/VerifyNanos split a binary-IR load's summed per-worker
	// CPU between varint materialization and digest verification.
	DecodeNanos int64 `json:"decode_ns,omitempty"`
	VerifyNanos int64 `json:"verify_ns,omitempty"`

	// MemCacheHits/MemCacheMisses count decoded-plan memory-cache probes
	// during cache-lookup.
	MemCacheHits   int64 `json:"mem_cache_hits,omitempty"`
	MemCacheMisses int64 `json:"mem_cache_misses,omitempty"`
}

// PlanCacheReport records one run's traffic against the content-addressed
// plan cache: probe outcomes, IR bytes moved, evictions performed, and —
// for single-schedule runs — the cache key probed.
type PlanCacheReport struct {
	Dir          string `json:"dir,omitempty"`
	Key          string `json:"key,omitempty"`
	Hits         int64  `json:"hits"`
	Misses       int64  `json:"misses"`
	BytesRead    int64  `json:"bytes_read,omitempty"`
	BytesWritten int64  `json:"bytes_written,omitempty"`
	Evictions    int64  `json:"evictions,omitempty"`

	// SummaryValidated/FullValidated split the hits by how the loaded
	// entry was validated: by its O(1) validation summary + content hash,
	// or by the full ValidateStrict pass (-verify-plan, or an entry
	// predating validation summaries).
	SummaryValidated int64 `json:"summary_validated,omitempty"`
	FullValidated    int64 `json:"full_validated,omitempty"`

	// MemHits/MemMisses/MemEvictions/MemBytes/MemEntries describe the
	// in-process decoded-plan LRU (-plan-mem-cache-mb) stacked above the
	// on-disk cache: a memory hit skips disk and decode entirely, so it
	// does not count in Hits/BytesRead.
	MemHits      int64 `json:"mem_hits,omitempty"`
	MemMisses    int64 `json:"mem_misses,omitempty"`
	MemEvictions int64 `json:"mem_evictions,omitempty"`
	MemBytes     int64 `json:"mem_bytes,omitempty"`
	MemEntries   int64 `json:"mem_entries,omitempty"`
}

// SimReport aggregates engine-side observability for the run: the event
// stream folded by a Metrics collector plus process allocation totals.
type SimReport struct {
	Engine string `json:"engine,omitempty"`

	// Events is the number of typed simulator events dispatched;
	// EngineQueueMax the discrete-event heap's high-water mark.
	Events         int64 `json:"events"`
	StepEnters     int64 `json:"step_enters,omitempty"`
	EngineQueueMax int64 `json:"engine_queue_max,omitempty"`

	// LinkBusyCycles sums busy-equivalent cycles over all links;
	// LinksActive counts links that carried traffic.
	LinkBusyCycles float64 `json:"link_busy_cycles,omitempty"`
	LinksActive    int     `json:"links_active,omitempty"`

	NIEntriesIssued int64 `json:"ni_entries_issued,omitempty"`
	NIDepsCleared   int64 `json:"ni_deps_cleared,omitempty"`
	NILockstepNOPs  int64 `json:"ni_lockstep_nops,omitempty"`

	Cycles        uint64  `json:"cycles,omitempty"`
	BandwidthGBps float64 `json:"bandwidth_gbps,omitempty"`

	// AllocBytes is the process's cumulative heap allocation growth over
	// the run (runtime.MemStats.TotalAlloc delta).
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
}

// WallSplit attributes the run's host wall time to pipeline stages:
// planning (schedule construction), compilation (NI tables / IR import),
// and simulation.
type WallSplit struct {
	PlanNanos     int64 `json:"plan_ns,omitempty"`
	CompileNanos  int64 `json:"compile_ns,omitempty"`
	SimulateNanos int64 `json:"simulate_ns,omitempty"`
	TotalNanos    int64 `json:"total_ns"`
}

// ReportPoint mirrors the per-point sweep result of allreduce-bench
// -json (experiments.AllReducePoint), so sweep reports embed the same
// shape the CSV/JSON outputs carry: wall_ns is the full point cost,
// plan_ns the schedule-construction share of it.
type ReportPoint struct {
	Topology      string  `json:"topology"`
	Algorithm     string  `json:"algorithm"`
	DataBytes     int64   `json:"data_bytes"`
	Cycles        uint64  `json:"cycles"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	WallNanos     int64   `json:"wall_ns,omitempty"`
	PlanNanos     int64   `json:"plan_ns,omitempty"`
}

// NewRunReport returns a report stamped with the schema and environment.
func NewRunReport(tool, mode string) *RunReport {
	return &RunReport{Schema: RunReportSchema, Tool: tool, Mode: mode, Env: CaptureEnv()}
}

// SimReportFrom folds a Metrics collector into the report shape.
func SimReportFrom(m *Metrics) *SimReport {
	if m == nil {
		return nil
	}
	s := m.Snapshot()
	return &SimReport{
		Events:          s.Events,
		StepEnters:      s.StepEnters,
		EngineQueueMax:  s.EngineQueueMax,
		LinkBusyCycles:  s.LinkBusyCycles,
		LinksActive:     s.LinksActive,
		NIEntriesIssued: s.NIEntriesIssued,
		NIDepsCleared:   s.NIDepsCleared,
		NILockstepNOPs:  s.NILockstepNOPs,
	}
}

// Write emits the report as indented JSON.
func (r *RunReport) Write(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = RunReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// DecodeRunReport strictly decodes a report: unknown fields, a missing
// or foreign schema string, and trailing garbage are all errors. This is
// the validation CI runs on every emitted report.
func DecodeRunReport(r io.Reader) (*RunReport, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep RunReport
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: invalid run report: %w", err)
	}
	if rep.Schema != RunReportSchema && rep.Schema != RunReportSchemaV1 && rep.Schema != RunReportSchemaV2 && rep.Schema != RunReportSchemaV3 {
		return nil, fmt.Errorf("obs: run report schema %q, want %q", rep.Schema, RunReportSchema)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("obs: trailing data after run report")
	}
	return &rep, nil
}
