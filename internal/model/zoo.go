package model

import "fmt"

// Zoo returns the seven evaluation workloads of §V-B in the paper's order.
func Zoo() []Network {
	return []Network{
		AlexNet(),
		AlphaGoZero(),
		FasterRCNN(),
		GoogLeNet(),
		NCF(),
		ResNet50(),
		Transformer(),
	}
}

// ByName returns the named workload.
func ByName(name string) (Network, error) {
	for _, n := range Zoo() {
		if n.Name == name {
			return n, nil
		}
	}
	return Network{}, fmt.Errorf("model: unknown network %q", name)
}

func conv(name string, h, w, c, m, r, s, stride int) Layer {
	return Layer{Name: name, Kind: Conv, H: h, W: w, C: c, M: m, R: r, S: s, Stride: stride}
}

func fc(name string, in, out int) Layer {
	return Layer{Name: name, Kind: FC, C: in, M: out}
}

// AlexNet returns the convolutional stack of Krizhevsky et al., as in the
// SCALE-Sim topology file (convolution layers only).
func AlexNet() Network {
	return Network{Name: "AlexNet", Layers: []Layer{
		conv("conv1", 227, 227, 3, 96, 11, 11, 4),
		conv("conv2", 31, 31, 96, 256, 5, 5, 1),
		conv("conv3", 15, 15, 256, 384, 3, 3, 1),
		conv("conv4", 15, 15, 384, 384, 3, 3, 1),
		conv("conv5", 15, 15, 384, 256, 3, 3, 1),
	}}
}

// AlphaGoZero returns the 20-block residual tower of Silver et al. on a
// 19x19 board (inputs padded to 21x21 for the SAME 3x3 convolutions).
func AlphaGoZero() Network {
	layers := []Layer{conv("conv-in", 21, 21, 17, 256, 3, 3, 1)}
	for b := 1; b <= 19; b++ {
		layers = append(layers,
			conv(fmt.Sprintf("res%d-a", b), 21, 21, 256, 256, 3, 3, 1),
			conv(fmt.Sprintf("res%d-b", b), 21, 21, 256, 256, 3, 3, 1),
		)
	}
	layers = append(layers,
		conv("policy-conv", 19, 19, 256, 2, 1, 1, 1),
		fc("policy-fc", 722, 362),
		conv("value-conv", 19, 19, 256, 1, 1, 1, 1),
		fc("value-fc1", 361, 256),
		fc("value-fc2", 256, 1),
	)
	return Network{Name: "AlphaGoZero", Layers: layers}
}

// FasterRCNN returns the VGG-16 backbone plus region proposal network of
// Ren et al. (convolutional stages, as in SCALE-Sim's configuration; the
// per-region detection head is not part of the gradient-heavy trunk).
func FasterRCNN() Network {
	var layers []Layer
	stage := func(n, h, c, m, count int) {
		for i := 1; i <= count; i++ {
			in := c
			if i > 1 {
				in = m
			}
			layers = append(layers, conv(fmt.Sprintf("conv%d_%d", n, i), h+2, h+2, in, m, 3, 3, 1))
		}
	}
	stage(1, 224, 3, 64, 2)
	stage(2, 112, 64, 128, 2)
	stage(3, 56, 128, 256, 3)
	stage(4, 28, 256, 512, 3)
	stage(5, 14, 512, 512, 3)
	layers = append(layers,
		conv("rpn-conv", 16, 16, 512, 512, 3, 3, 1),
		conv("rpn-cls", 14, 14, 512, 18, 1, 1, 1),
		conv("rpn-bbox", 14, 14, 512, 36, 1, 1, 1),
	)
	return Network{Name: "FasterRCNN", Layers: layers}
}

// GoogLeNet returns the 22-layer inception network of Szegedy et al.
// (stem, nine inception modules, classifier FC).
func GoogLeNet() Network {
	layers := []Layer{
		conv("conv1", 229, 229, 3, 64, 7, 7, 2),
		conv("conv2-reduce", 56, 56, 64, 64, 1, 1, 1),
		conv("conv2", 58, 58, 64, 192, 3, 3, 1),
	}
	inception := func(name string, hw, in, c1, c3r, c3, c5r, c5, pp int) {
		layers = append(layers,
			conv(name+"-1x1", hw, hw, in, c1, 1, 1, 1),
			conv(name+"-3x3r", hw, hw, in, c3r, 1, 1, 1),
			conv(name+"-3x3", hw+2, hw+2, c3r, c3, 3, 3, 1),
			conv(name+"-5x5r", hw, hw, in, c5r, 1, 1, 1),
			conv(name+"-5x5", hw+4, hw+4, c5r, c5, 5, 5, 1),
			conv(name+"-pool", hw, hw, in, pp, 1, 1, 1),
		)
	}
	inception("3a", 28, 192, 64, 96, 128, 16, 32, 32)
	inception("3b", 28, 256, 128, 128, 192, 32, 96, 64)
	inception("4a", 14, 480, 192, 96, 208, 16, 48, 64)
	inception("4b", 14, 512, 160, 112, 224, 24, 64, 64)
	inception("4c", 14, 512, 128, 128, 256, 24, 64, 64)
	inception("4d", 14, 512, 112, 144, 288, 32, 64, 64)
	inception("4e", 14, 528, 256, 160, 320, 32, 128, 128)
	inception("5a", 7, 832, 256, 160, 320, 32, 128, 128)
	inception("5b", 7, 832, 384, 192, 384, 48, 128, 128)
	layers = append(layers, fc("classifier", 1024, 1000))
	return Network{Name: "GoogLeNet", Layers: layers}
}

// NCF returns the neural collaborative filtering recommender of He et al.:
// GMF and MLP embedding tables plus the MLP tower. Embedding gradients are
// exchanged densely, which makes NCF communication-dominated exactly as in
// the paper's breakdown.
func NCF() Network {
	return Network{Name: "NCF", Layers: []Layer{
		{Name: "gmf-user-embed", Kind: Embedding, Vocab: 200000, M: 64},
		{Name: "gmf-item-embed", Kind: Embedding, Vocab: 30000, M: 64},
		{Name: "mlp-user-embed", Kind: Embedding, Vocab: 200000, M: 64},
		{Name: "mlp-item-embed", Kind: Embedding, Vocab: 30000, M: 64},
		fc("mlp-fc1", 128, 256),
		fc("mlp-fc2", 256, 128),
		fc("mlp-fc3", 128, 64),
		fc("predict", 128, 1),
	}}
}

// ResNet50 returns the 50-layer residual network of He et al.
// (convolutional trunk plus classifier).
func ResNet50() Network {
	layers := []Layer{conv("conv1", 229, 229, 3, 64, 7, 7, 2)}
	bottleneck := func(stage, block, hw, in, mid, out int) {
		p := fmt.Sprintf("s%d-b%d", stage, block)
		layers = append(layers,
			conv(p+"-1x1a", hw, hw, in, mid, 1, 1, 1),
			conv(p+"-3x3", hw+2, hw+2, mid, mid, 3, 3, 1),
			conv(p+"-1x1b", hw, hw, mid, out, 1, 1, 1),
		)
		if block == 1 {
			layers = append(layers, conv(p+"-proj", hw, hw, in, out, 1, 1, 1))
		}
	}
	cfgs := []struct {
		stage, blocks, hw, in, mid, out int
	}{
		{2, 3, 56, 64, 64, 256},
		{3, 4, 28, 256, 128, 512},
		{4, 6, 14, 512, 256, 1024},
		{5, 3, 7, 1024, 512, 2048},
	}
	for _, c := range cfgs {
		in := c.in
		for b := 1; b <= c.blocks; b++ {
			bottleneck(c.stage, b, c.hw, in, c.mid, c.out)
			in = c.out
		}
	}
	layers = append(layers, fc("classifier", 2048, 1000))
	return Network{Name: "ResNet50", Layers: layers}
}

// Transformer returns a 6-layer base Transformer encoder (Vaswani et al.)
// at d_model 512 over 64-token sequences, plus the token embedding.
func Transformer() Network {
	const (
		dModel = 512
		dFF    = 2048
		seq    = 64
		vocab  = 32000
		blocks = 6
	)
	layers := []Layer{{Name: "tok-embed", Kind: Embedding, Vocab: vocab, M: dModel}}
	for b := 1; b <= blocks; b++ {
		p := fmt.Sprintf("enc%d", b)
		proj := func(name string, in, out int) Layer {
			l := fc(p+"-"+name, in, out)
			l.Seq = seq
			return l
		}
		layers = append(layers,
			proj("wq", dModel, dModel),
			proj("wk", dModel, dModel),
			proj("wv", dModel, dModel),
			Layer{Name: p + "-attn", Kind: Attention, Seq: seq, M: dModel},
			proj("wo", dModel, dModel),
			proj("ff1", dModel, dFF),
			proj("ff2", dFF, dModel),
		)
	}
	return Network{Name: "Transformer", Layers: layers}
}
