package model

import (
	"testing"
	"testing/quick"
)

func TestZooValidates(t *testing.T) {
	for _, n := range Zoo() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	n, err := ByName("ResNet50")
	if err != nil || n.Name != "ResNet50" {
		t.Fatalf("ByName(ResNet50) = %v, %v", n.Name, err)
	}
	if _, err := ByName("VGG19"); err == nil {
		t.Error("unknown model did not error")
	}
}

// TestParameterCounts pins each workload's parameter count to the
// published architecture's ballpark (the all-reduce volume driver).
func TestParameterCounts(t *testing.T) {
	want := map[string][2]int64{
		"AlexNet":     {3_500_000, 4_200_000},   // conv stack only (SCALE-Sim style)
		"AlphaGoZero": {21_000_000, 25_000_000}, // 20-block residual tower
		"FasterRCNN":  {16_000_000, 18_500_000}, // VGG-16 trunk + RPN
		"GoogLeNet":   {6_500_000, 7_500_000},
		"NCF":         {28_000_000, 31_000_000},
		"ResNet50":    {24_000_000, 27_000_000},
		"Transformer": {34_000_000, 37_000_000}, // 6-layer base encoder
	}
	for _, n := range Zoo() {
		r, ok := want[n.Name]
		if !ok {
			t.Errorf("no expectation for %s", n.Name)
			continue
		}
		if p := n.Params(); p < r[0] || p > r[1] {
			t.Errorf("%s has %d params, want %d..%d", n.Name, p, r[0], r[1])
		}
	}
}

// TestMACCounts sanity-checks forward compute against published numbers
// (per sample, multiply-accumulates).
func TestMACCounts(t *testing.T) {
	want := map[string][2]int64{
		"AlexNet":  {600e6, 1.3e9}, // ~0.7 GMACs convs
		"ResNet50": {3.0e9, 4.5e9}, // ~3.8 GMACs
	}
	for name, r := range want {
		n, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m := n.MACs(); m < r[0] || m > r[1] {
			t.Errorf("%s: %d MACs/sample, want %d..%d", name, m, r[0], r[1])
		}
	}
}

func TestOutDims(t *testing.T) {
	l := Layer{Kind: Conv, H: 227, W: 227, R: 11, S: 11, Stride: 4, C: 3, M: 96}
	ho, wo := l.OutDims()
	if ho != 55 || wo != 55 {
		t.Errorf("AlexNet conv1 output = %dx%d, want 55x55", ho, wo)
	}
}

// TestParamsNonNegative is a property over arbitrary layer shapes.
func TestParamsNonNegative(t *testing.T) {
	f := func(h, w, c, m, r, s uint8) bool {
		l := Layer{Kind: Conv, H: int(h), W: int(w), C: int(c), M: int(m), R: int(r), S: int(s), Stride: 1}
		return l.Params() >= 0 && l.MACs() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGradientBytesIs4xParams(t *testing.T) {
	n := GoogLeNet()
	if n.GradientBytes() != 4*n.Params() {
		t.Error("gradient bytes != 4 * params")
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	n := Network{Name: "bad", Layers: []Layer{{Kind: Conv, H: 2, W: 2, R: 3, S: 3, C: 1, M: 1}}}
	if err := n.Validate(); err == nil {
		t.Error("kernel larger than input validated")
	}
	if err := (Network{Name: "empty"}).Validate(); err == nil {
		t.Error("empty network validated")
	}
}

func TestKindString(t *testing.T) {
	if Conv.String() != "conv" || Embedding.String() != "embedding" {
		t.Error("Kind.String broken")
	}
}
