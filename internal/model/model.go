// Package model defines the DNN workloads of the paper's evaluation
// (§V-B): AlexNet, AlphaGoZero, FasterRCNN, GoogLeNet, NCF, ResNet50 and
// Transformer, as per-layer shape tables in the style of SCALE-Sim
// topology files. Layer shapes follow the published architectures; like
// the SCALE-Sim configurations the paper used, the CNN tables list the
// convolutional stacks (SCALE-Sim models convolution/GEMM layers), and the
// recommendation/attention models list their GEMM and embedding layers.
// Parameter counts determine the all-reduce gradient volume; layer shapes
// determine the systolic-array compute cycles in internal/accel.
package model

import "fmt"

// Kind classifies a layer for the compute model.
type Kind int

const (
	// Conv is a 2D convolution: input HxWxC, M filters of RxSxC, given
	// stride.
	Conv Kind = iota
	// FC is a fully connected layer / GEMM: C inputs, M outputs per
	// sample (optionally with Seq positions per sample).
	FC
	// Embedding is a lookup table of Vocab x M; negligible compute, full
	// gradient exchanged (dense-gradient assumption).
	Embedding
	// Attention is a scaled dot-product attention block over Seq
	// positions with M-dimensional heads; its compute is the score and
	// context GEMMs, and it has no parameters of its own (projections are
	// separate FC layers).
	Attention
)

func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	case Embedding:
		return "embedding"
	case Attention:
		return "attention"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Layer is one parameterized stage of a network.
type Layer struct {
	Name string
	Kind Kind

	// Conv fields: input H x W x C, M filters of R x S, stride.
	H, W, C, M, R, S int
	Stride           int

	// FC / Attention: C inputs -> M outputs, applied Seq times per sample
	// (Seq = 0 means once per sample).
	Seq int

	// Embedding: Vocab rows of M features.
	Vocab int
}

// Network is a named list of layers.
type Network struct {
	Name   string
	Layers []Layer
}

// OutDims returns a conv layer's output spatial dimensions (no padding is
// modeled; SAME-padded architectures are encoded with their effective
// output sizes via stride-1 3x3 kernels on pre-padded inputs).
func (l Layer) OutDims() (ho, wo int) {
	if l.Kind != Conv {
		return 1, 1
	}
	s := l.Stride
	if s == 0 {
		s = 1
	}
	ho = (l.H-l.R)/s + 1
	wo = (l.W-l.S)/s + 1
	if ho < 1 {
		ho = 1
	}
	if wo < 1 {
		wo = 1
	}
	return ho, wo
}

// Params returns the layer's trainable parameter count (weights + bias).
func (l Layer) Params() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.R)*int64(l.S)*int64(l.C)*int64(l.M) + int64(l.M)
	case FC:
		return int64(l.C)*int64(l.M) + int64(l.M)
	case Embedding:
		return int64(l.Vocab) * int64(l.M)
	default:
		return 0
	}
}

// MACs returns the forward multiply-accumulate count for one sample.
func (l Layer) MACs() int64 {
	switch l.Kind {
	case Conv:
		ho, wo := l.OutDims()
		return int64(ho) * int64(wo) * int64(l.M) * int64(l.R) * int64(l.S) * int64(l.C)
	case FC:
		seq := l.Seq
		if seq == 0 {
			seq = 1
		}
		return int64(seq) * int64(l.C) * int64(l.M)
	case Attention:
		// QK^T scores and score*V context: 2 * Seq^2 * M.
		return 2 * int64(l.Seq) * int64(l.Seq) * int64(l.M)
	default:
		return 0
	}
}

// Params returns the network's total trainable parameter count.
func (n Network) Params() int64 {
	var sum int64
	for _, l := range n.Layers {
		sum += l.Params()
	}
	return sum
}

// GradientBytes returns the all-reduce volume of one iteration at 32-bit
// precision.
func (n Network) GradientBytes() int64 { return n.Params() * 4 }

// MACs returns the network's forward MAC count for one sample.
func (n Network) MACs() int64 {
	var sum int64
	for _, l := range n.Layers {
		sum += l.MACs()
	}
	return sum
}

// Validate sanity-checks layer shapes.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("model %s: no layers", n.Name)
	}
	for i, l := range n.Layers {
		switch l.Kind {
		case Conv:
			if l.H < l.R || l.W < l.S || l.C < 1 || l.M < 1 || l.R < 1 || l.S < 1 {
				return fmt.Errorf("model %s: conv layer %d (%s) has bad shape %+v", n.Name, i, l.Name, l)
			}
		case FC:
			if l.C < 1 || l.M < 1 {
				return fmt.Errorf("model %s: fc layer %d (%s) has bad shape", n.Name, i, l.Name)
			}
		case Embedding:
			if l.Vocab < 1 || l.M < 1 {
				return fmt.Errorf("model %s: embedding layer %d (%s) has bad shape", n.Name, i, l.Name)
			}
		case Attention:
			if l.Seq < 1 || l.M < 1 {
				return fmt.Errorf("model %s: attention layer %d (%s) has bad shape", n.Name, i, l.Name)
			}
		}
	}
	return nil
}
