package experiments

// Golden-cycle regression harness for the network engines. For every
// algorithm the registry supports on each of the paper's four evaluation
// fabrics, both engines' complete observable behavior is reduced to
// digests: the exact Result (Cycles, TransferDone, LinkBusy, byte
// totals) and the full traced event stream (kind, timestamps, ids, in
// emission order). The digests are pinned in testdata/golden_engines.json,
// generated from the pre-refactor closure-based engines, so any rewrite
// of the discrete-event core or the packet hot path must reproduce the
// old behavior bit for bit — not just "close enough" cycle counts.
//
// Regenerate (only when an intentional semantic change is made) with:
//
//	go test ./internal/experiments -run TestGoldenEngineDigests -update-golden

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/topospec"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_engines.json from the current engines")

const goldenFile = "testdata/golden_engines.json"

// goldenEntry pins one (topology, algorithm, engine) run.
type goldenEntry struct {
	Topology     string `json:"topology"`
	Algorithm    string `json:"algorithm"`
	Engine       string `json:"engine"`
	Cycles       uint64 `json:"cycles"`
	Events       int    `json:"events"`
	ResultDigest string `json:"result_digest"`
	TraceDigest  string `json:"trace_digest"`
}

func goldenKey(topo, alg, eng string) string { return topo + "/" + alg + "/" + eng }

// digestResult hashes every observable field of a Result in a fixed
// byte order.
func digestResult(res *network.Result) string {
	h := sha256.New()
	le := binary.LittleEndian
	var buf [8]byte
	put64 := func(v uint64) {
		le.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put64(uint64(res.Cycles))
	put64(uint64(res.PayloadBytes))
	put64(uint64(res.WireBytes))
	put64(uint64(len(res.TransferDone)))
	for _, t := range res.TransferDone {
		put64(uint64(t))
	}
	put64(uint64(len(res.LinkBusy)))
	for _, t := range res.LinkBusy {
		put64(uint64(t))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// digestEvents hashes the full traced event stream in emission order.
func digestEvents(events []obs.Event) string {
	h := sha256.New()
	h.Write(eventStreamBytes(events))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// eventStreamBytes serializes events to a canonical byte form, also used
// by the determinism test to compare two runs byte for byte.
func eventStreamBytes(events []obs.Event) []byte {
	le := binary.LittleEndian
	out := make([]byte, 0, len(events)*49)
	var buf [8]byte
	for i := range events {
		ev := &events[i]
		out = append(out, byte(ev.Kind))
		for _, f := range [3]float64{ev.At, ev.Dur, ev.Busy} {
			le.PutUint64(buf[:], math.Float64bits(f))
			out = append(out, buf[:]...)
		}
		for _, v := range [5]int32{ev.Transfer, ev.Link, ev.Node, ev.Flow, ev.Step} {
			le.PutUint32(buf[:4], uint32(v))
			out = append(out, buf[:4]...)
		}
		le.PutUint64(buf[:], uint64(ev.Bytes))
		out = append(out, buf[:]...)
	}
	return out
}

// TestGoldenEngineDigests runs every registry algorithm x topology pair
// through both engines with a recorder attached and checks the digests
// against the pinned pre-refactor values.
func TestGoldenEngineDigests(t *testing.T) {
	const dataBytes = 64 << 10
	const elems = dataBytes / collective.WordSize

	var entries []goldenEntry
	for _, spec := range []string{"torus-4x4", "mesh-4x4", "fattree-16", "bigraph-32"} {
		topo, err := topospec.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range algorithms.Supporting(topo) {
			s, err := BuildSchedule(topo, alg.Name, elems)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []Engine{Fluid, Packet} {
				rec := &obs.Recorder{}
				cfg := network.DefaultConfig()
				cfg.Tracer = rec
				res, err := eng.run(s, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", spec, alg.Name, eng, err)
				}
				entries = append(entries, goldenEntry{
					Topology:     spec,
					Algorithm:    alg.Name,
					Engine:       eng.String(),
					Cycles:       uint64(res.Cycles),
					Events:       len(rec.Events),
					ResultDigest: digestResult(res),
					TraceDigest:  digestEvents(rec.Events),
				})
			}
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(entries, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s with %d entries", goldenFile, len(entries))
		return
	}

	data, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-golden): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantByKey := make(map[string]goldenEntry, len(want))
	for _, e := range want {
		wantByKey[goldenKey(e.Topology, e.Algorithm, e.Engine)] = e
	}
	if len(entries) != len(want) {
		t.Errorf("have %d engine runs, golden file pins %d", len(entries), len(want))
	}
	for _, got := range entries {
		key := goldenKey(got.Topology, got.Algorithm, got.Engine)
		w, ok := wantByKey[key]
		if !ok {
			t.Errorf("%s: no golden entry (regenerate with -update-golden)", key)
			continue
		}
		if got.Cycles != w.Cycles {
			t.Errorf("%s: %d cycles, golden %d", key, got.Cycles, w.Cycles)
		}
		if got.Events != w.Events {
			t.Errorf("%s: %d traced events, golden %d", key, got.Events, w.Events)
		}
		if got.ResultDigest != w.ResultDigest {
			t.Errorf("%s: Result digest %s, golden %s", key, got.ResultDigest, w.ResultDigest)
		}
		if got.TraceDigest != w.TraceDigest {
			t.Errorf("%s: trace digest %s, golden %s", key, got.TraceDigest, w.TraceDigest)
		}
	}
}
