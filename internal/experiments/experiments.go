// Package experiments regenerates the paper's evaluation artifacts: the
// all-reduce bandwidth sweeps of Fig. 9, the weak-scaling study of
// Fig. 10, the DNN training breakdowns of Fig. 11, the algorithm
// comparison of Table I, and the head-flit overhead curve of Fig. 2. The
// cmd/ tools print these as CSV; bench_test.go reports them as benchmark
// metrics. Both call into this package so the numbers always agree.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"multitree/internal/algorithms"
	_ "multitree/internal/algorithms/all" // register the built-in algorithms
	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/ring"
	"multitree/internal/ring2d"
	"multitree/internal/topology"
)

// Engine selects the network simulation granularity.
type Engine int

const (
	// Fluid is the fast flow-level engine: exact for contention-free
	// schedules (Ring, 2D-Ring on Torus, HDRM, MultiTree) and used for the
	// large scaling and training studies.
	Fluid Engine = iota
	// Packet is the packet-granularity reference engine, needed where
	// congestion trees matter (DBTree anywhere, 2D-Ring on Mesh).
	Packet
)

func (e Engine) String() string {
	if e == Packet {
		return "packet"
	}
	return "fluid"
}

func (e Engine) run(s *collective.Schedule, cfg network.Config) (*network.Result, error) {
	if e == Packet {
		return network.SimulatePackets(s, cfg)
	}
	return network.SimulateFluid(s, cfg)
}

// AlgSpec names an algorithm variant in the evaluation: the four baselines
// plus MultiTree with and without message-based flow control.
type AlgSpec struct {
	Name string
	// Msg enables message-based flow control (MULTITREE-MSG).
	Msg bool
}

// Algorithms returns the algorithm variants applicable to a topology, in
// the paper's plotting order: the registry's featured menu plus the
// MULTITREE-MSG flow-control variant.
func Algorithms(topo *topology.Topology) []AlgSpec {
	var specs []AlgSpec
	for _, a := range algorithms.For(topo) {
		specs = append(specs, AlgSpec{Name: a.Name})
	}
	specs = append(specs, AlgSpec{Name: core.Algorithm + algorithms.MsgSuffix, Msg: true})
	return specs
}

// BuildSchedule resolves the named algorithm through the central registry
// and constructs its schedule. A "-msg" suffix selects message-based flow
// control in the simulator and shares the base algorithm's schedule.
func BuildSchedule(topo *topology.Topology, name string, elems int) (*collective.Schedule, error) {
	return algorithms.Build(topo, name, elems, algorithms.Options{})
}

// BuildScheduleObserved is BuildSchedule with planner observability: the
// observer receives phase boundaries, counters and progress while the
// schedule is constructed. Nil behaves exactly like BuildSchedule.
func BuildScheduleObserved(topo *topology.Topology, name string, elems int, o obs.PlanObserver) (*collective.Schedule, error) {
	return algorithms.Build(topo, name, elems, algorithms.Options{Observer: o})
}

// BuildScheduleOpts is BuildSchedule with the full planner option set:
// observability, parallel construction, and the plan cache. The schedule
// built is identical for every option combination.
func BuildScheduleOpts(topo *topology.Topology, name string, elems int, opts algorithms.Options) (*collective.Schedule, error) {
	return algorithms.Build(topo, name, elems, opts)
}

// AllReducePoint is one measurement of Fig. 9/10. The JSON tags define
// the machine-readable result format of allreduce-bench -json, consumed
// by perf-trajectory tracking.
type AllReducePoint struct {
	Topology  string `json:"topology"`
	Algorithm string `json:"algorithm"`
	DataBytes int64  `json:"data_bytes"`
	Cycles    uint64 `json:"cycles"`
	// BandwidthGBps is data size / time, the §VI-A metric (1 B/cycle =
	// 1 GB/s at the 1 GHz router clock).
	BandwidthGBps float64 `json:"bandwidth_gbps"`

	// WallNanos is the host wall-clock time spent producing this point
	// (schedule construction plus simulation) — the simulator-throughput
	// number the benchmark-regression harness tracks. PlanNanos is the
	// schedule-construction share of it, splitting planner cost from
	// engine cost in the same record.
	WallNanos int64 `json:"wall_ns,omitempty"`
	PlanNanos int64 `json:"plan_ns,omitempty"`
}

// MeasureAllReduce simulates one (topology, algorithm, size) point.
func MeasureAllReduce(topo *topology.Topology, alg AlgSpec, dataBytes int64, engine Engine) (AllReducePoint, error) {
	return MeasureAllReduceObserved(topo, alg, dataBytes, engine, nil)
}

// MeasureAllReduceObserved is MeasureAllReduce reporting schedule
// construction into a PlanObserver. Nil behaves exactly like
// MeasureAllReduce; either way the point's PlanNanos carries the
// construction share of WallNanos.
func MeasureAllReduceObserved(topo *topology.Topology, alg AlgSpec, dataBytes int64, engine Engine, o obs.PlanObserver) (AllReducePoint, error) {
	return MeasureAllReduceOpts(topo, alg, dataBytes, engine, algorithms.Options{Observer: o})
}

// MeasureAllReduceOpts is MeasureAllReduce with the full planner option
// set (observer, workers, plan cache). With a cache attached, PlanNanos
// still reports the point's true schedule-acquisition cost — a hit makes
// it milliseconds instead of minutes, which is the point.
func MeasureAllReduceOpts(topo *topology.Topology, alg AlgSpec, dataBytes int64, engine Engine, opts algorithms.Options) (AllReducePoint, error) {
	start := time.Now()
	elems := int(dataBytes / collective.WordSize)
	s, err := BuildScheduleOpts(topo, alg.Name, elems, opts)
	if err != nil {
		return AllReducePoint{}, err
	}
	planned := time.Now()
	cfg := network.DefaultConfig()
	cfg.MessageBased = alg.Msg
	res, err := engine.run(s, cfg)
	if err != nil {
		return AllReducePoint{}, err
	}
	return AllReducePoint{
		Topology:      topo.Name(),
		Algorithm:     alg.Name,
		DataBytes:     dataBytes,
		Cycles:        uint64(res.Cycles),
		BandwidthGBps: res.BandwidthBytesPerCycle(dataBytes),
		WallNanos:     time.Since(start).Nanoseconds(),
		PlanNanos:     planned.Sub(start).Nanoseconds(),
	}, nil
}

// Fig9Sizes returns the §VI-A sweep: 32 KiB doubling to maxBytes
// (64 MiB in the paper).
func Fig9Sizes(maxBytes int64) []int64 {
	var out []int64
	for b := int64(32 << 10); b <= maxBytes; b *= 2 {
		out = append(out, b)
	}
	return out
}

// Fig9 sweeps every applicable algorithm over the data sizes on one
// topology, emitting each point to the callback as it completes.
func Fig9(topo *topology.Topology, sizes []int64, engine Engine, emit func(AllReducePoint)) error {
	points, err := Fig9Parallel(topo, sizes, engine, 1)
	if err != nil {
		return err
	}
	for _, p := range points {
		emit(p)
	}
	return nil
}

// Fig9Parallel runs the same sweep across a worker pool (simulations of
// different points are independent; topologies are safe for concurrent
// reads). Results come back in deterministic (algorithm, size) order
// regardless of completion order.
func Fig9Parallel(topo *topology.Topology, sizes []int64, engine Engine, workers int) ([]AllReducePoint, error) {
	return Fig9ParallelObserved(topo, sizes, engine, workers, nil)
}

// Fig9ParallelObserved is Fig9Parallel with planner observability: all
// workers report into the one observer (PlanProfile handles overlapping
// same-phase runs by charging the union interval). Nil behaves exactly
// like Fig9Parallel.
func Fig9ParallelObserved(topo *topology.Topology, sizes []int64, engine Engine, workers int, o obs.PlanObserver) ([]AllReducePoint, error) {
	return Fig9ParallelOpts(topo, sizes, engine, workers, algorithms.Options{Observer: o})
}

// Fig9ParallelOpts is Fig9Parallel with the full planner option set. A
// shared plan cache pays off twice here: the "-msg" variant of each
// point hits the entry its base variant stored (they share one
// schedule), and a re-run of the sweep hits everything.
func Fig9ParallelOpts(topo *topology.Topology, sizes []int64, engine Engine, workers int, opts algorithms.Options) ([]AllReducePoint, error) {
	if workers < 1 {
		workers = 1
	}
	type job struct {
		idx   int
		alg   AlgSpec
		bytes int64
	}
	var jobs []job
	for _, alg := range Algorithms(topo) {
		for _, bytes := range sizes {
			jobs = append(jobs, job{idx: len(jobs), alg: alg, bytes: bytes})
		}
	}
	points := make([]AllReducePoint, len(jobs))
	errs := make([]error, len(jobs))
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				p, err := MeasureAllReduceOpts(topo, j.alg, j.bytes, engine, opts)
				if err != nil {
					errs[j.idx] = fmt.Errorf("%s/%s/%d: %w", topo.Name(), j.alg.Name, j.bytes, err)
					continue
				}
				points[j.idx] = p
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// Fig10Point is one weak-scaling measurement: all-reduce time for
// 375*N KiB on an N-node torus, plus the value normalized to 16-node Ring
// (the figure's y-axis).
type Fig10Point struct {
	Nodes      int
	Algorithm  string
	DataBytes  int64
	Cycles     uint64
	Normalized float64 // cycles / cycles(ring, 16 nodes)
}

// Fig10 runs the weak-scaling study over the given node counts (the paper
// uses 16..256 on Torus) with Ring, 2D-Ring and MULTITREE-MSG.
func Fig10(torusFor func(int) (*topology.Topology, error), nodeCounts []int) ([]Fig10Point, error) {
	algs := []AlgSpec{
		{Name: ring.Algorithm},
		{Name: ring2d.Algorithm},
		{Name: core.Algorithm + "-msg", Msg: true},
	}
	var out []Fig10Point
	var base float64
	for _, n := range nodeCounts {
		topo, err := torusFor(n)
		if err != nil {
			return nil, err
		}
		dataBytes := int64(375*n) << 10
		for _, alg := range algs {
			p, err := MeasureAllReduce(topo, alg, dataBytes, Fluid)
			if err != nil {
				return nil, fmt.Errorf("fig10 %d/%s: %w", n, alg.Name, err)
			}
			if alg.Name == ring.Algorithm && n == nodeCounts[0] {
				base = float64(p.Cycles)
			}
			out = append(out, Fig10Point{
				Nodes: n, Algorithm: alg.Name, DataBytes: dataBytes,
				Cycles: p.Cycles, Normalized: float64(p.Cycles) / base,
			})
		}
	}
	return out, nil
}

// StrongScaling runs the §VI-B side experiment: a fixed large problem
// size across growing node counts. The paper reports "only small
// variation for each algorithm since they are all contention-free and
// serialization latency is more dominant for large all-reduce size" —
// i.e. communication time stays roughly flat (the per-node share shrinks
// as fast as the node count grows).
func StrongScaling(torusFor func(int) (*topology.Topology, error), nodeCounts []int, dataBytes int64) ([]Fig10Point, error) {
	algs := []AlgSpec{
		{Name: ring.Algorithm},
		{Name: ring2d.Algorithm},
		{Name: core.Algorithm + "-msg", Msg: true},
	}
	var out []Fig10Point
	base := map[string]float64{}
	for _, n := range nodeCounts {
		topo, err := torusFor(n)
		if err != nil {
			return nil, err
		}
		for _, alg := range algs {
			p, err := MeasureAllReduce(topo, alg, dataBytes, Fluid)
			if err != nil {
				return nil, fmt.Errorf("strong scaling %d/%s: %w", n, alg.Name, err)
			}
			if _, ok := base[alg.Name]; !ok {
				base[alg.Name] = float64(p.Cycles)
			}
			out = append(out, Fig10Point{
				Nodes: n, Algorithm: alg.Name, DataBytes: dataBytes,
				Cycles: p.Cycles, Normalized: float64(p.Cycles) / base[alg.Name],
			})
		}
	}
	return out, nil
}

// Fig2Point is one head-flit overhead sample.
type Fig2Point struct {
	PayloadBytes int
	Overhead     float64
}

// Fig2 returns the packet head-flit bandwidth overhead for payloads of 64
// to 256 bytes with 16-byte flits (6%-25%).
func Fig2() []Fig2Point {
	var out []Fig2Point
	for p := 64; p <= 256; p += 16 {
		out = append(out, Fig2Point{PayloadBytes: p, Overhead: network.HeadFlitOverhead(p, 16)})
	}
	return out
}

// Table1Row reproduces Table I for one (algorithm, topology) pair from
// measured schedule properties rather than assertions.
type Table1Row struct {
	Algorithm string
	Topology  string

	Steps             int
	BandwidthOverhead float64 // 1.0 = optimal
	MaxLinkOverlap    int     // 1 = contention-free
	MaxHops           int
}

// Table1 analyzes every applicable algorithm on the given topologies.
func Table1(topos []*topology.Topology, elems int) ([]Table1Row, error) {
	var out []Table1Row
	for _, topo := range topos {
		for _, alg := range Algorithms(topo) {
			if alg.Msg {
				continue // flow control does not change the schedule
			}
			s, err := BuildSchedule(topo, alg.Name, elems)
			if err != nil {
				return nil, err
			}
			a := collective.Analyze(s)
			out = append(out, Table1Row{
				Algorithm:         alg.Name,
				Topology:          topo.Name(),
				Steps:             a.Steps,
				BandwidthOverhead: a.BandwidthOverhead(),
				MaxLinkOverlap:    a.MaxLinkOverlap,
				MaxHops:           a.MaxHops,
			})
		}
	}
	return out, nil
}
