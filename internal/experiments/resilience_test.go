package experiments

import (
	"bytes"
	"math"
	"testing"

	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/faults"
	"multitree/internal/network"
	"multitree/internal/topospec"
)

// TestResilienceTorus4x4 covers the acceptance sweep: per-algorithm
// completion times under 0, 1 and 2 failed links on torus-4x4, with the
// packet and fluid engines agreeing within the cross-validation
// tolerance (15%, as in TestEnginesAgree).
func TestResilienceTorus4x4(t *testing.T) {
	topo, err := topospec.Parse("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	points, err := Resilience(topo, 2, 42, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		failed int
		alg    string
	}
	cycles := map[key]map[string]uint64{}
	supported := map[int]int{}
	for _, p := range points {
		if !p.Supported {
			if p.Note == "" {
				t.Errorf("unsupported row %d/%s/%s has no note", p.FailedLinks, p.Algorithm, p.Engine)
			}
			continue
		}
		if p.Cycles == 0 {
			t.Errorf("supported row %d/%s/%s has zero cycles", p.FailedLinks, p.Algorithm, p.Engine)
		}
		k := key{p.FailedLinks, p.Algorithm}
		if cycles[k] == nil {
			cycles[k] = map[string]uint64{}
			supported[p.FailedLinks]++
		}
		cycles[k][p.Engine] = p.Cycles
	}
	for f := 0; f <= 2; f++ {
		if supported[f] < 2 {
			t.Errorf("only %d algorithms supported at %d failed links; want at least ring and multitree", supported[f], f)
		}
	}
	if _, ok := cycles[key{2, core.Algorithm}]; !ok {
		t.Error("multitree missing from the 2-failure sweep")
	}
	for k, m := range cycles {
		fl, pk := float64(m["fluid"]), float64(m["packet"])
		if fl == 0 || pk == 0 {
			t.Errorf("%d/%s measured on only one engine", k.failed, k.alg)
			continue
		}
		if rel := math.Abs(fl-pk) / pk; rel > 0.15 {
			t.Errorf("%d/%s: fluid %.0f vs packet %.0f cycles, %.1f%% apart (tolerance 15%%)",
				k.failed, k.alg, fl, pk, 100*rel)
		}
	}
}

// TestMultiTreeReplanAvoidsFailedLinks asserts the degraded re-plan
// routes around every failed cable, by walking the exported schedule's
// pinned routes and mapping each hop back to original vertex ids.
func TestMultiTreeReplanAvoidsFailedLinks(t *testing.T) {
	topo, err := topospec.Parse("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.RandomLinkFailures(topo, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := faults.Apply(topo, plan)
	if err != nil {
		t.Fatal(err)
	}
	failed := map[[2]int]bool{}
	for _, f := range plan.Links {
		a, b := f.A, f.B
		if a > b {
			a, b = b, a
		}
		failed[[2]int{a, b}] = true
	}

	s, err := BuildSchedule(deg.Topo, core.Algorithm, (256<<10)/4)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the IR so the walk covers the *pinned* routes a
	// consumer would replay, not just the in-memory BFS paths.
	var buf bytes.Buffer
	if err := collective.Export(&buf, s); err != nil {
		t.Fatal(err)
	}
	imported, err := collective.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imported.Transfers {
		tr := &imported.Transfers[i]
		for _, lid := range imported.PathOf(tr) {
			lk := imported.Topo.Link(lid)
			a := deg.OrigVertex[lk.Src]
			b := deg.OrigVertex[lk.Dst]
			if a > b {
				a, b = b, a
			}
			if failed[[2]int{a, b}] {
				t.Fatalf("transfer %d routes across failed cable %d-%d (plan %q)", i, a, b, plan)
			}
		}
	}
}

// TestRegistryReplanRoundTrip exercises every registered algorithm
// against a degraded fabric: supported ones must build, export,
// re-import and simulate on both engines without error; unsupported ones
// must be rejected by their Supports predicate, not by a panic or a
// build failure.
func TestRegistryReplanRoundTrip(t *testing.T) {
	topo, err := topospec.Parse("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.ParseSpec("link:0-1:down,link:5-6:bw=0.5")
	if err != nil {
		t.Fatal(err)
	}
	deg, err := faults.Apply(topo, plan)
	if err != nil {
		t.Fatal(err)
	}
	supported := 0
	for _, spec := range algorithms.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if !spec.Supports(deg.Topo) {
				t.Logf("%s reports unsupported on the degraded graph (ok)", spec.Name)
				return
			}
			supported++
			s, err := spec.Build(deg.Topo, (64<<10)/4, algorithms.Options{})
			if err != nil {
				t.Fatalf("Supports passed but Build failed: %v", err)
			}
			var buf bytes.Buffer
			if err := collective.Export(&buf, s); err != nil {
				t.Fatal(err)
			}
			rt, err := collective.Import(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			cfg := network.DefaultConfig()
			fres, err := network.SimulateFluid(rt, cfg)
			if err != nil {
				t.Fatalf("fluid on re-imported degraded schedule: %v", err)
			}
			pres, err := network.SimulatePackets(rt, cfg)
			if err != nil {
				t.Fatalf("packet on re-imported degraded schedule: %v", err)
			}
			if fres.Cycles == 0 || pres.Cycles == 0 {
				t.Error("zero-cycle result on degraded schedule")
			}
		})
	}
	if supported < 2 {
		t.Errorf("only %d algorithms supported the degraded torus; expected at least ring and multitree", supported)
	}
}
