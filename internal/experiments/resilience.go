package experiments

import (
	"fmt"

	"multitree/internal/algorithms"
	"multitree/internal/faults"
	"multitree/internal/topology"
)

// ResiliencePoint is one measurement of the resilience sweep: an
// algorithm re-planned on a degraded fabric, simulated by one engine.
// Unsupported rows (Supported=false) record that the algorithm's
// Supports predicate rejected the degraded graph — e.g. 2D-Ring once the
// rebuilt topology loses its grid coordinates — with the reason in Note.
type ResiliencePoint struct {
	Topology      string  `json:"topology"`
	FailedLinks   int     `json:"failed_links"`
	FaultSpec     string  `json:"fault_spec,omitempty"`
	Algorithm     string  `json:"algorithm"`
	Engine        string  `json:"engine"`
	DataBytes     int64   `json:"data_bytes"`
	Cycles        uint64  `json:"cycles"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	Supported     bool    `json:"supported"`
	Note          string  `json:"note,omitempty"`
}

// Resilience sweeps completion time against the number of failed links:
// for each failure count 0..maxFailed it draws a deterministic
// connectivity-preserving fault plan (seeded), re-plans every algorithm
// of the original topology's menu against the degraded fabric, and
// simulates the survivors on both engines — the two stay within the
// cross-validation tolerance, which the resilience test asserts.
// Algorithms the degraded graph no longer supports yield unsupported
// rows instead of errors.
func Resilience(topo *topology.Topology, maxFailed int, seed int64, dataBytes int64) ([]ResiliencePoint, error) {
	var out []ResiliencePoint
	for failed := 0; failed <= maxFailed; failed++ {
		plan, err := faults.RandomLinkFailures(topo, failed, seed)
		if err != nil {
			return nil, fmt.Errorf("resilience: %w", err)
		}
		deg, err := faults.Apply(topo, plan)
		if err != nil {
			return nil, fmt.Errorf("resilience: %d failures: %w", failed, err)
		}
		for _, alg := range Algorithms(topo) {
			spec, _, err := algorithms.Resolve(alg.Name)
			if err != nil {
				return nil, err
			}
			point := ResiliencePoint{
				Topology: topo.Name(), FailedLinks: failed, FaultSpec: plan.String(),
				Algorithm: alg.Name, DataBytes: dataBytes,
			}
			if !spec.Supports(deg.Topo) {
				point.Note = "unsupported on degraded topology"
				for _, e := range []Engine{Fluid, Packet} {
					p := point
					p.Engine = e.String()
					out = append(out, p)
				}
				continue
			}
			for _, e := range []Engine{Fluid, Packet} {
				p, err := MeasureAllReduce(deg.Topo, alg, dataBytes, e)
				if err != nil {
					return nil, fmt.Errorf("resilience: %d failures, %s/%s: %w", failed, alg.Name, e, err)
				}
				pt := point
				pt.Engine = e.String()
				pt.Cycles = p.Cycles
				pt.BandwidthGBps = p.BandwidthGBps
				pt.Supported = true
				out = append(out, pt)
			}
		}
	}
	return out, nil
}
