package experiments

// Cross-validation of the schedule IR: for every algorithm the registry
// features on each of the paper's four evaluation fabrics, the schedule
// must survive export → import with its simulated finish time (both
// engines), all-reduce semantics, topology fingerprint, and byte-exact
// file form intact. This is the end-to-end guarantee that the IR file is
// a faithful interchange format, not a lossy dump.

import (
	"bytes"
	"testing"

	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/topospec"
)

func TestScheduleIRCrossValidation(t *testing.T) {
	const dataBytes = 64 << 10
	const elems = dataBytes / collective.WordSize
	for _, spec := range []string{"torus-4x4", "mesh-4x4", "fattree-16", "bigraph-32"} {
		topo, err := topospec.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, alg := range algorithms.Supporting(topo) {
			covered++
			t.Run(spec+"/"+alg.Name, func(t *testing.T) {
				orig, err := BuildSchedule(topo, alg.Name, elems)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := collective.Export(&buf, orig); err != nil {
					t.Fatal(err)
				}
				file := buf.Bytes()
				imp, err := collective.Import(bytes.NewReader(file))
				if err != nil {
					t.Fatal(err)
				}
				if got, want := collective.TopologyFingerprint(imp.Topo), collective.TopologyFingerprint(topo); got != want {
					t.Fatalf("fingerprint %s, want %s", got, want)
				}
				cfg := network.DefaultConfig()
				for _, eng := range []Engine{Fluid, Packet} {
					a, err := eng.run(orig, cfg)
					if err != nil {
						t.Fatal(err)
					}
					b, err := eng.run(imp, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if a.Cycles != b.Cycles {
						t.Fatalf("%s engine: imported schedule finishes in %d cycles, original in %d",
							eng, b.Cycles, a.Cycles)
					}
				}
				if err := collective.VerifyAllReduce(imp, collective.RampInputs(topo.Nodes(), elems)); err != nil {
					t.Fatalf("imported schedule fails correctness: %v", err)
				}
				var again bytes.Buffer
				if err := collective.Export(&again, imp); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(file, again.Bytes()) {
					t.Fatal("re-export of the imported schedule is not byte-identical")
				}
			})
		}
		if covered < 4 {
			t.Errorf("%s: only %d algorithms featured; the menu shrank", spec, covered)
		}
	}
}
