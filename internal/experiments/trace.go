package experiments

import (
	"fmt"
	"io"
	"time"

	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/faults"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// TracedResult is one traced all-reduce run: the measurement plus the
// full event recording and streaming metrics, ready for Chrome-trace or
// CSV export.
type TracedResult struct {
	Point   AllReducePoint
	Sched   *collective.Schedule
	Meta    obs.TraceMeta
	Events  *obs.Recorder
	Metrics *obs.Metrics
}

// WriteChromeTrace exports the recording as Chrome-trace JSON for
// ui.perfetto.dev.
func (tr *TracedResult) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, tr.Meta, tr.Events.Events)
}

// TraceAllReduce measures one (topology, algorithm, size) point like
// MeasureAllReduce while recording every simulation event and streaming
// it into a metrics collector with binCycles-wide utilization bins.
func TraceAllReduce(topo *topology.Topology, alg AlgSpec, dataBytes int64, engine Engine, binCycles float64) (*TracedResult, error) {
	return TraceAllReduceFaulty(topo, alg, dataBytes, engine, binCycles, nil)
}

// TraceAllReduceFaulty is TraceAllReduce with engine-layer fault
// injection: the plan's faults activate mid-flight during the traced run
// (EvLinkFault events land in the recording), without re-planning the
// schedule around them.
func TraceAllReduceFaulty(topo *topology.Topology, alg AlgSpec, dataBytes int64, engine Engine, binCycles float64, plan *faults.Plan) (*TracedResult, error) {
	return TraceAllReduceObserved(topo, alg, dataBytes, engine, binCycles, plan, nil)
}

// TraceAllReduceObserved is TraceAllReduceFaulty reporting schedule
// construction into a PlanObserver, so traced runs carry the same planner
// phase breakdown as plain measurements. Nil behaves identically.
func TraceAllReduceObserved(topo *topology.Topology, alg AlgSpec, dataBytes int64, engine Engine, binCycles float64, plan *faults.Plan, po obs.PlanObserver) (*TracedResult, error) {
	return TraceAllReduceOpts(topo, alg, dataBytes, engine, binCycles, plan, algorithms.Options{Observer: po})
}

// TraceAllReduceOpts is TraceAllReduceFaulty with the full planner option
// set (observer, workers, plan cache).
func TraceAllReduceOpts(topo *topology.Topology, alg AlgSpec, dataBytes int64, engine Engine, binCycles float64, plan *faults.Plan, opts algorithms.Options) (*TracedResult, error) {
	elems := int(dataBytes / collective.WordSize)
	if elems < 1 {
		return nil, fmt.Errorf("experiments: data size %d bytes is below one %d-byte element", dataBytes, collective.WordSize)
	}
	start := time.Now()
	s, err := BuildScheduleOpts(topo, alg.Name, elems, opts)
	if err != nil {
		return nil, err
	}
	planned := time.Now()
	rec := &obs.Recorder{}
	met := obs.NewMetrics(binCycles)
	cfg := network.DefaultConfig()
	cfg.MessageBased = alg.Msg
	cfg.Faults = plan
	cfg.Tracer = obs.Tee(rec, met)
	res, err := engine.run(s, cfg)
	if err != nil {
		return nil, err
	}
	return &TracedResult{
		Point: AllReducePoint{
			Topology:      topo.Name(),
			Algorithm:     alg.Name,
			DataBytes:     dataBytes,
			Cycles:        uint64(res.Cycles),
			BandwidthGBps: res.BandwidthBytesPerCycle(dataBytes),
			WallNanos:     time.Since(start).Nanoseconds(),
			PlanNanos:     planned.Sub(start).Nanoseconds(),
		},
		Sched:   s,
		Meta:    network.TraceMetaFor(s, ""),
		Events:  rec,
		Metrics: met,
	}, nil
}
