package experiments

// Determinism guard for the discrete-event core: the same schedule run
// twice through each engine must produce byte-identical traced event
// streams. This pins the (At, seq) tie-break through the heap rewrite —
// any nondeterminism in event ordering (map iteration, heap layout
// dependence, pooled-state leakage between runs) shows up as a diverging
// stream long before it corrupts a Result.

import (
	"bytes"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/topospec"
)

func TestEngineDeterminism(t *testing.T) {
	const elems = (256 << 10) / collective.WordSize
	for _, spec := range []string{"torus-4x4", "bigraph-32"} {
		topo, err := topospec.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []string{"ring", "multitree"} {
			s, err := BuildSchedule(topo, alg, elems)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []Engine{Fluid, Packet} {
				t.Run(spec+"/"+alg+"/"+eng.String(), func(t *testing.T) {
					run := func() []byte {
						rec := &obs.Recorder{}
						cfg := network.DefaultConfig()
						cfg.Tracer = rec
						if _, err := eng.run(s, cfg); err != nil {
							t.Fatal(err)
						}
						return eventStreamBytes(rec.Events)
					}
					first := run()
					second := run()
					if !bytes.Equal(first, second) {
						t.Fatalf("two runs produced different event streams (%d vs %d bytes)",
							len(first), len(second))
					}
				})
			}
		}
	}
}

// TestPacketSimReuseDeterminism: the reusable PacketSim must replay the
// identical event stream on every Run, since reset restores all pooled
// state (event heap sequence numbers, packet arena, ring deques).
func TestPacketSimReuseDeterminism(t *testing.T) {
	topo, err := topospec.Parse("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(topo, "multitree", (256<<10)/collective.WordSize)
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	cfg := network.DefaultConfig()
	cfg.Tracer = rec
	sim, err := network.NewPacketSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	for run := 0; run < 3; run++ {
		rec.Reset()
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		stream := eventStreamBytes(rec.Events)
		if run == 0 {
			first = append(first, stream...)
			continue
		}
		if !bytes.Equal(first, stream) {
			t.Fatalf("run %d diverged from the first run (%d vs %d bytes)",
				run, len(stream), len(first))
		}
	}
}

// TestFluidSimReuseDeterminism: the reusable FluidSim must replay the
// identical event stream on every Run, since reset restores all pooled
// state (typed event heap, rate scratch, occupancy arena) and the
// epoch-stamped fill scratch never leaks stale entries across runs.
func TestFluidSimReuseDeterminism(t *testing.T) {
	topo, err := topospec.Parse("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(topo, "multitree", (256<<10)/collective.WordSize)
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	cfg := network.DefaultConfig()
	cfg.Tracer = rec
	sim, err := network.NewFluidSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	for run := 0; run < 3; run++ {
		rec.Reset()
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		stream := eventStreamBytes(rec.Events)
		if run == 0 {
			first = append(first, stream...)
			continue
		}
		if !bytes.Equal(first, stream) {
			t.Fatalf("run %d diverged from the first run (%d vs %d bytes)",
				run, len(stream), len(first))
		}
	}
}

// TestFluidEqualTimeEventOrder pins the fluid engine's total event order
// (at, kind, id) at an exact tie: with 564-word flows on the default
// torus links, a transfer injected alone takes 150 cycles (= estStep
// = path latency), so node 0's first delivery at t=300 coincides exactly
// with its deferred step-3 entry. Arrivals must precede step entries at
// the same instant — the delivery clears dependencies before the gate
// opening scans for releasable transfers — and the heap order must not
// depend on insertion order, so repeat runs are byte-identical.
func TestFluidEqualTimeEventOrder(t *testing.T) {
	topo, err := topospec.Parse("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	// Two flows of 564 words: payload 2256 B, wire 2256 + 9*16 = 2400 B,
	// 150 cycles at 16 B/cycle.
	s := collective.NewSchedule("tie", topo, 1128, 2)
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
	s.Add(collective.Transfer{Src: 0, Dst: 2, Op: collective.Gather, Flow: 1, Step: 3})

	run := func() []obs.Event {
		rec := &obs.Recorder{}
		cfg := network.DefaultConfig()
		cfg.Tracer = rec
		if _, err := network.SimulateFluid(s, cfg); err != nil {
			t.Fatal(err)
		}
		return rec.Events
	}
	events := run()

	deliveredAt, stepAt := -1, -1
	for i, ev := range events {
		if ev.At != 300 {
			continue
		}
		switch {
		case ev.Kind == obs.EvTransferDelivered && ev.Transfer == 0:
			deliveredAt = i
		case ev.Kind == obs.EvStepEnter && ev.Node == 0 && ev.Step == 3:
			stepAt = i
		}
	}
	if deliveredAt < 0 || stepAt < 0 {
		t.Fatalf("tie not exercised: delivery idx %d, step-entry idx %d (want both at t=300)",
			deliveredAt, stepAt)
	}
	if deliveredAt > stepAt {
		t.Errorf("step entry (idx %d) popped before the same-instant delivery (idx %d)",
			stepAt, deliveredAt)
	}

	first := eventStreamBytes(events)
	for i := 0; i < 3; i++ {
		if again := eventStreamBytes(run()); !bytes.Equal(first, again) {
			t.Fatalf("repeat run %d produced a different event stream", i+1)
		}
	}
}
