package experiments

// Determinism guard for the discrete-event core: the same schedule run
// twice through each engine must produce byte-identical traced event
// streams. This pins the (At, seq) tie-break through the heap rewrite —
// any nondeterminism in event ordering (map iteration, heap layout
// dependence, pooled-state leakage between runs) shows up as a diverging
// stream long before it corrupts a Result.

import (
	"bytes"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/topospec"
)

func TestEngineDeterminism(t *testing.T) {
	const elems = (256 << 10) / collective.WordSize
	for _, spec := range []string{"torus-4x4", "bigraph-32"} {
		topo, err := topospec.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []string{"ring", "multitree"} {
			s, err := BuildSchedule(topo, alg, elems)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []Engine{Fluid, Packet} {
				t.Run(spec+"/"+alg+"/"+eng.String(), func(t *testing.T) {
					run := func() []byte {
						rec := &obs.Recorder{}
						cfg := network.DefaultConfig()
						cfg.Tracer = rec
						if _, err := eng.run(s, cfg); err != nil {
							t.Fatal(err)
						}
						return eventStreamBytes(rec.Events)
					}
					first := run()
					second := run()
					if !bytes.Equal(first, second) {
						t.Fatalf("two runs produced different event streams (%d vs %d bytes)",
							len(first), len(second))
					}
				})
			}
		}
	}
}

// TestPacketSimReuseDeterminism: the reusable PacketSim must replay the
// identical event stream on every Run, since reset restores all pooled
// state (event heap sequence numbers, packet arena, ring deques).
func TestPacketSimReuseDeterminism(t *testing.T) {
	topo, err := topospec.Parse("torus-4x4")
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(topo, "multitree", (256<<10)/collective.WordSize)
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	cfg := network.DefaultConfig()
	cfg.Tracer = rec
	sim, err := network.NewPacketSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	for run := 0; run < 3; run++ {
		rec.Reset()
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		stream := eventStreamBytes(rec.Events)
		if run == 0 {
			first = append(first, stream...)
			continue
		}
		if !bytes.Equal(first, stream) {
			t.Fatalf("run %d diverged from the first run (%d vs %d bytes)",
				run, len(stream), len(first))
		}
	}
}
