package experiments_test

import (
	"testing"

	"multitree/internal/experiments"
	"multitree/internal/topology"
	"multitree/internal/topospec"
)

func cfg() topology.LinkConfig { return topology.DefaultLinkConfig() }

func TestAlgorithmsPerTopology(t *testing.T) {
	names := func(topo *topology.Topology) []string {
		var out []string
		for _, a := range experiments.Algorithms(topo) {
			out = append(out, a.Name)
		}
		return out
	}
	torus := names(topology.Torus(4, 4, cfg()))
	if len(torus) != 5 { // ring, dbtree, 2d-ring, multitree, multitree-msg
		t.Errorf("torus algorithms = %v", torus)
	}
	bigraph := names(topology.BiGraph(4, 4, cfg()))
	found := false
	for _, n := range bigraph {
		if n == "hdrm" {
			found = true
		}
	}
	if !found {
		t.Errorf("bigraph algorithms missing hdrm: %v", bigraph)
	}
	fattree := names(topology.FatTree(4, 4, 4, cfg()))
	for _, n := range fattree {
		if n == "2d-ring" {
			t.Errorf("fat-tree offers 2d-ring: %v", fattree)
		}
	}
}

// TestFig9ShapeTorus regenerates a small Fig. 9a point set and asserts the
// paper's ordering: MultiTree > 2D-Ring > Ring > DBTree at a
// bandwidth-bound size on a Torus.
func TestFig9ShapeTorus(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	bw := map[string]float64{}
	err := experiments.Fig9(topo, []int64{4 << 20}, experiments.Fluid, func(p experiments.AllReducePoint) {
		bw[p.Algorithm] = p.BandwidthGBps
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(bw["multitree"] > bw["2d-ring"] && bw["2d-ring"] > bw["ring"] && bw["ring"] > bw["dbtree"]) {
		t.Errorf("bandwidth ordering wrong: %v", bw)
	}
	if gain := bw["multitree-msg"] / bw["multitree"]; gain < 1.04 || gain > 1.08 {
		t.Errorf("message-based gain %.3f, want ~1.06", gain)
	}
}

// TestFig10Normalization: the first Ring point is the normalization base
// and scaling is roughly linear in N for every algorithm.
func TestFig10Normalization(t *testing.T) {
	points, err := experiments.Fig10(topospec.TorusFor, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]experiments.Fig10Point{}
	for _, p := range points {
		byKey[p.Algorithm+"@"+itoa(p.Nodes)] = p
	}
	if r16 := byKey["ring@16"]; r16.Normalized != 1.0 {
		t.Errorf("ring@16 normalized = %v, want 1", r16.Normalized)
	}
	// MULTITREE-MSG should be clearly fastest at 64 nodes (~3x over ring).
	r := byKey["ring@64"].Normalized
	m := byKey["multitree-msg@64"].Normalized
	if m >= r || r/m < 2 {
		t.Errorf("multitree-msg@64 = %.2f vs ring@64 = %.2f, want >=2x gap", m, r)
	}
}

func TestTable1Shapes(t *testing.T) {
	torus := topology.Torus(8, 8, cfg())
	rows, err := experiments.Table1([]*topology.Topology{torus}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	get := func(alg string) experiments.Table1Row {
		for _, r := range rows {
			if r.Algorithm == alg {
				return r
			}
		}
		t.Fatalf("no row for %s", alg)
		return experiments.Table1Row{}
	}
	// Table I's qualitative rows, measured.
	if r := get("ring"); r.MaxLinkOverlap > 1 || r.BandwidthOverhead > 1.01 || r.Steps != 126 {
		t.Errorf("ring row: %+v", r)
	}
	if r := get("dbtree"); r.MaxLinkOverlap <= 1 {
		t.Errorf("dbtree should contend: %+v", r)
	}
	if r := get("2d-ring"); r.BandwidthOverhead < 1.5 {
		t.Errorf("2d-ring should be bandwidth sub-optimal: %+v", r)
	}
	if r := get("multitree"); r.MaxLinkOverlap > 1 || r.BandwidthOverhead > 1.01 || r.Steps >= 126 || r.MaxHops != 1 {
		t.Errorf("multitree row: %+v", r)
	}
}

func TestFig2Endpoints(t *testing.T) {
	pts := experiments.Fig2()
	if pts[0].PayloadBytes != 64 || pts[0].Overhead != 0.25 {
		t.Errorf("first point %+v, want 64B/25%%", pts[0])
	}
	last := pts[len(pts)-1]
	if last.PayloadBytes != 256 || last.Overhead != 0.0625 {
		t.Errorf("last point %+v, want 256B/6.25%%", last)
	}
}

// TestFig11Headline checks the paper's headline numbers hold in shape: on
// the 8x8 Torus, MULTITREE-MSG's all-reduce speedup over Ring averages
// at least 2x, and communication-bound workloads see the largest
// training-time reductions.
func TestFig11Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("full training sweep")
	}
	topo, err := topospec.Parse("torus-8x8")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := experiments.Fig11(topo, false)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var count int
	best := 0.0
	for _, r := range rows {
		if r.Algorithm != "multitree-msg" {
			continue
		}
		sum += r.AllReduceSpeedup
		count++
		if red := 1 - r.NormalizedTotal; red > best {
			best = red
		}
	}
	if avg := sum / float64(count); avg < 2.0 {
		t.Errorf("mean all-reduce speedup %.2f, want >= 2 (paper: 2.3)", avg)
	}
	if best < 0.5 {
		t.Errorf("best training-time reduction %.0f%%, want >= 50%% (paper: up to 81%%)", 100*best)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestFig9ParallelMatchesSerial: the worker pool returns the same points
// in the same order as the serial sweep (run under -race in CI).
func TestFig9ParallelMatchesSerial(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	sizes := []int64{32 << 10, 128 << 10}
	serial, err := experiments.Fig9Parallel(topo, sizes, experiments.Fluid, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.Fig9Parallel(topo, sizes, experiments.Fluid, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d points, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		a.WallNanos, b.WallNanos = 0, 0 // host timing, not simulation output
		a.PlanNanos, b.PlanNanos = 0, 0
		if a != b {
			t.Errorf("point %d differs: %+v vs %+v", i, a, b)
		}
	}
}
