package experiments

import (
	"fmt"

	"multitree/internal/accel"
	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/model"
	"multitree/internal/network"
	"multitree/internal/topology"
	"multitree/internal/training"
)

// Fig11Row is one bar of the Fig. 11 training-time breakdown, in cycles
// (nanoseconds at 1 GHz).
type Fig11Row struct {
	Model     string
	Algorithm string

	Compute uint64
	Comm    uint64 // total all-reduce busy time
	Exposed uint64 // communication not hidden by compute
	Overlap uint64
	Total   uint64

	// NormalizedTotal and AllReduceSpeedup are relative to Ring on the
	// same model (Fig. 11's primary and secondary axes).
	NormalizedTotal  float64
	AllReduceSpeedup float64
}

// Fig11Algorithms returns the algorithm variants of the training study.
func Fig11Algorithms() []AlgSpec {
	return []AlgSpec{
		{Name: "ring"},
		{Name: "dbtree"},
		{Name: "2d-ring"},
		{Name: core.Algorithm},
		{Name: core.Algorithm + "-msg", Msg: true},
	}
}

// Fig11 simulates one training iteration of every zoo model under every
// algorithm on the topology (the paper uses an 8x8 Torus, batch 16 per
// node). overlapped selects the Fig. 11b layer-wise all-reduce mode.
func Fig11(topo *topology.Topology, overlapped bool) ([]Fig11Row, error) {
	var out []Fig11Row
	for _, net := range model.Zoo() {
		var ringComm, ringTotal float64
		for _, alg := range Fig11Algorithms() {
			cfg := training.Config{
				Topo:         topo,
				Accel:        accel.Default(),
				BatchPerNode: 16,
				Net:          netConfig(alg),
				Build:        builderFor(alg.Name),
			}
			var (
				b   training.Breakdown
				err error
			)
			if overlapped {
				b, err = cfg.Overlapped(net)
			} else {
				b, err = cfg.NonOverlapped(net)
			}
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%s: %w", net.Name, alg.Name, err)
			}
			row := Fig11Row{
				Model:     net.Name,
				Algorithm: alg.Name,
				Compute:   uint64(b.Compute()),
				Comm:      uint64(b.Comm),
				Exposed:   uint64(b.Exposed),
				Overlap:   uint64(b.Overlap),
				Total:     uint64(b.Total),
			}
			if alg.Name == "ring" {
				ringComm = float64(b.Comm)
				ringTotal = float64(b.Total)
			}
			if ringComm > 0 {
				row.AllReduceSpeedup = ringComm / float64(b.Comm)
			}
			if ringTotal > 0 {
				row.NormalizedTotal = float64(b.Total) / ringTotal
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func netConfig(alg AlgSpec) network.Config {
	cfg := network.DefaultConfig()
	cfg.MessageBased = alg.Msg
	return cfg
}

// builderFor returns a ScheduleBuilder, caching MultiTree's trees per
// topology so per-layer schedules reuse one Algorithm 1 run (§V-A: the
// schedules are computed once and reused across epochs).
func builderFor(name string) training.ScheduleBuilder {
	base := name
	if base == core.Algorithm+"-msg" {
		base = core.Algorithm
	}
	if base != core.Algorithm {
		return func(topo *topology.Topology, elems int) (*collective.Schedule, error) {
			return BuildSchedule(topo, base, elems)
		}
	}
	cache := map[*topology.Topology][]*collective.Tree{}
	return func(topo *topology.Topology, elems int) (*collective.Schedule, error) {
		trees, ok := cache[topo]
		if !ok {
			var err error
			trees, err = core.BuildTrees(topo, core.DefaultOptions(topo))
			if err != nil {
				return nil, err
			}
			cache[topo] = trees
		}
		return collective.TreesToSchedule(core.Algorithm, topo, elems, trees)
	}
}
