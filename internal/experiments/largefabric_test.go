package experiments

// Large-fabric guard for the incremental fluid engine: the 256-node
// sweeps that PR 5 makes practical must stay anchored to the packet-level
// reference. The engines are expected to agree tightly on MultiTree
// (contention-free by construction), so the 15% tolerance mirrors the
// resilience suite's cross-engine bound with plenty of slack.

import (
	"math"
	"testing"

	"multitree/internal/network"
	"multitree/internal/topospec"
)

func TestLargeFabricCrossEngine(t *testing.T) {
	topo, err := topospec.Parse("torus-16x16")
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(topo, "multitree", (256<<10)/4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig()
	fluid, err := network.SimulateFluid(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	packet, err := network.SimulatePackets(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(fluid.Cycles) / float64(packet.Cycles)
	if math.Abs(ratio-1) > 0.15 {
		t.Errorf("torus-16x16 multitree: fluid %d cycles vs packet %d cycles (ratio %.3f, want within 15%%)",
			fluid.Cycles, packet.Cycles, ratio)
	}
	if fluid.WireBytes != packet.WireBytes {
		t.Errorf("wire bytes diverge: fluid %d, packet %d", fluid.WireBytes, packet.WireBytes)
	}
}
