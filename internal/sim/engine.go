// Package sim provides a minimal discrete-event simulation engine used by
// the network simulators. Time is measured in integer cycles of the router
// clock (1 GHz in the paper's configuration, so one cycle is one
// nanosecond).
package sim

import (
	"container/heap"

	"multitree/internal/obs"
)

// Time is a simulation timestamp in clock cycles.
type Time uint64

// Event is a callback scheduled to run at a particular simulation time.
type Event struct {
	At Time
	Fn func()

	// seq breaks ties so that events scheduled earlier at the same cycle
	// run first, keeping runs deterministic.
	seq uint64
	idx int
}

// Engine is a discrete-event simulator driven by a binary-heap event queue.
// The zero value is ready to use.
type Engine struct {
	now    Time
	queue  eventQueue
	nextID uint64

	// Trace, when non-nil, receives an EvEngineQueue sample (pending-event
	// count) after every executed event. The nil default costs one branch
	// per event and nothing else.
	Trace obs.Tracer
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (at < Now) runs the event at the current time instead; this keeps
// zero-latency feedback loops well defined.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	ev := &Event{At: at, Fn: fn, seq: e.nextID}
	e.nextID++
	heap.Push(&e.queue, ev)
}

// After enqueues fn to run delay cycles from now.
func (e *Engine) After(delay Time, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return e.queue.Len() }

// Step runs the single earliest pending event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	ev.Fn()
	if e.Trace != nil {
		e.Trace.Emit(obs.Event{
			Kind: obs.EvEngineQueue, At: float64(e.now), Bytes: int64(e.queue.Len()),
		})
	}
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained, false if it stopped at the deadline with work pending.
func (e *Engine) RunUntil(deadline Time) bool {
	for e.queue.Len() > 0 {
		if e.queue[0].At > deadline {
			return false
		}
		e.Step()
	}
	return true
}

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
