// Package sim provides a minimal discrete-event simulation engine used by
// the network simulators. Time is measured in integer cycles of the router
// clock (1 GHz in the paper's configuration, so one cycle is one
// nanosecond).
//
// The engine is built for an allocation-free steady state: the event queue
// is a value-based 4-ary min-heap of small typed records ordered by
// (At, seq), so scheduling allocates nothing once the heap's backing array
// has grown to the simulation's high-water mark. Hot paths schedule typed
// events (a Kind plus two int32 arguments) that the engine hands to a
// single Dispatch function, avoiding both closure allocation and
// interface boxing; the closure-based Schedule/After API remains as a
// compatibility shim for cold paths and tests.
package sim

import (
	"multitree/internal/obs"
)

// Time is a simulation timestamp in clock cycles.
type Time uint64

// Kind identifies a typed event for the dispatch fast path. Kind values
// are defined by the engine's user; kindClosure (0) is reserved for
// events scheduled through the closure shim.
type Kind uint8

const kindClosure Kind = 0

// event is one queued record. Typed events carry (kind, a, b) and a nil
// fn; closure events carry fn with kind == kindClosure. seq breaks ties
// so that events scheduled earlier at the same cycle run first, keeping
// runs deterministic regardless of heap shape.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	kind Kind
	a, b int32
}

// Engine is a discrete-event simulator driven by a 4-ary min-heap event
// queue. The zero value is ready to use.
type Engine struct {
	now    Time
	nextID uint64
	heap   []event

	// Dispatch receives typed events scheduled with ScheduleKind/AfterKind.
	// It must be set before the first typed event fires; closure-only users
	// can leave it nil.
	Dispatch func(kind Kind, a, b int32)

	// Trace, when non-nil, receives an EvEngineQueue sample (pending-event
	// count) after every executed event. The nil default costs one branch
	// per event and nothing else.
	Trace obs.Tracer
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (at < Now) runs the event at the current time instead; this keeps
// zero-latency feedback loops well defined.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.push(event{at: at, seq: e.nextID, fn: fn})
	e.nextID++
}

// After enqueues fn to run delay cycles from now.
func (e *Engine) After(delay Time, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// ScheduleKind enqueues a typed event for Dispatch at absolute time at,
// with the same past-clamping as Schedule. It allocates nothing once the
// heap's backing array has reached the run's high-water mark.
func (e *Engine) ScheduleKind(at Time, kind Kind, a, b int32) {
	if at < e.now {
		at = e.now
	}
	e.push(event{at: at, seq: e.nextID, kind: kind, a: a, b: b})
	e.nextID++
}

// AfterKind enqueues a typed event delay cycles from now.
func (e *Engine) AfterKind(delay Time, kind Kind, a, b int32) {
	e.ScheduleKind(e.now+delay, kind, a, b)
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.heap) }

// Reset returns the engine to time zero with an empty queue, keeping the
// heap's backing array (and Dispatch/Trace) so a reused engine re-runs
// without reallocating. Sequence numbering restarts, so a reset run is
// cycle- and order-identical to a fresh one.
func (e *Engine) Reset() {
	for i := range e.heap {
		e.heap[i].fn = nil
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.nextID = 0
}

// Step runs the single earliest pending event and returns true, or returns
// false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	e.pop()
	e.now = ev.at
	if ev.fn != nil {
		ev.fn()
	} else {
		e.Dispatch(ev.kind, ev.a, ev.b)
	}
	if e.Trace != nil {
		e.Trace.Emit(obs.Event{
			Kind: obs.EvEngineQueue, At: float64(e.now), Bytes: int64(len(e.heap)),
		})
	}
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained, false if it stopped at the deadline with work pending.
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.heap) > 0 {
		if e.heap[0].at > deadline {
			return false
		}
		e.Step()
	}
	return true
}

// less orders events by (at, seq) — a strict total order, so the dispatch
// sequence is independent of heap arity and layout.
func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	return e.heap[i].seq < e.heap[j].seq
}

// push appends the record and sifts it up the 4-ary heap.
func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// pop removes the minimum record, clearing the vacated slot's closure so
// the backing array never pins dead captures.
func (e *Engine) pop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n].fn = nil
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown()
	}
}

// siftDown restores heap order from the root of the 4-ary heap. Four-way
// branching halves the tree depth of a binary heap, trading two extra
// comparisons per level for far fewer cache-missing swaps.
func (e *Engine) siftDown() {
	n := len(e.heap)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(c, min) {
				min = c
			}
		}
		if !e.less(min, i) {
			return
		}
		e.heap[i], e.heap[min] = e.heap[min], e.heap[i]
		i = min
	}
}
