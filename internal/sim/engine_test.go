package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if end := e.Run(); end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events ran in order %v", got)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var e Engine
	var at []Time
	e.After(10, func() {
		at = append(at, e.Now())
		e.After(5, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Errorf("nested After times = %v, want [10 15]", at)
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	var e Engine
	ran := Time(0)
	e.Schedule(100, func() {
		e.Schedule(50, func() { ran = e.Now() })
	})
	e.Run()
	if ran != 100 {
		t.Errorf("past event ran at %d, want clamped to 100", ran)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i*10, func() { count++ })
	}
	if drained := e.RunUntil(50); drained {
		t.Error("RunUntil(50) claims drained with events pending")
	}
	if count != 5 {
		t.Errorf("ran %d events by t=50, want 5", count)
	}
	if e.Pending() != 5 {
		t.Errorf("%d pending, want 5", e.Pending())
	}
	if !e.RunUntil(1000) {
		t.Error("RunUntil(1000) should drain")
	}
	if count != 10 {
		t.Errorf("ran %d events total, want 10", count)
	}
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

// TestTimeMonotonic is a property test: however events are scheduled, the
// engine dispatches them in nondecreasing time order.
func TestTimeMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		var e Engine
		var seen []Time
		for _, d := range delays {
			at := Time(d)
			e.Schedule(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTypedDispatch(t *testing.T) {
	var e Engine
	type rec struct {
		kind Kind
		a, b int32
		at   Time
	}
	var got []rec
	e.Dispatch = func(kind Kind, a, b int32) {
		got = append(got, rec{kind, a, b, e.Now()})
	}
	e.ScheduleKind(20, 2, 7, 8)
	e.ScheduleKind(10, 1, 5, 6)
	e.AfterKind(5, 3, 1, 2)
	if end := e.Run(); end != 20 {
		t.Errorf("final time = %d, want 20", end)
	}
	want := []rec{{3, 1, 2, 5}, {1, 5, 6, 10}, {2, 7, 8, 20}}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTypedClosureInterleaving: a shared seq counter keeps typed and
// closure events in exact scheduling order at equal timestamps.
func TestTypedClosureInterleaving(t *testing.T) {
	var e Engine
	var got []int32
	e.Dispatch = func(kind Kind, a, b int32) { got = append(got, a) }
	e.ScheduleKind(5, 1, 0, 0)
	e.Schedule(5, func() { got = append(got, 1) })
	e.ScheduleKind(5, 1, 2, 0)
	e.Schedule(5, func() { got = append(got, 3) })
	e.Run()
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("mixed same-time events reordered: %v", got)
		}
	}
}

func TestTypedPastClampsToNow(t *testing.T) {
	var e Engine
	ran := Time(0)
	e.Dispatch = func(kind Kind, a, b int32) { ran = e.Now() }
	e.Schedule(100, func() { e.ScheduleKind(50, 1, 0, 0) })
	e.Run()
	if ran != 100 {
		t.Errorf("past typed event ran at %d, want clamped to 100", ran)
	}
}

// TestResetDeterminism: a reset engine replays the same schedule with the
// same dispatch order and final time, without growing its queue storage.
func TestResetDeterminism(t *testing.T) {
	var e Engine
	run := func() []int32 {
		var got []int32
		e.Dispatch = func(kind Kind, a, b int32) {
			got = append(got, a)
			if a < 20 {
				e.AfterKind(Time(a%3+1), 1, a+10, 0)
			}
		}
		for i := int32(0); i < 8; i++ {
			e.ScheduleKind(Time(i%4), 1, i, 0)
		}
		e.Run()
		return got
	}
	first := run()
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("reset left now=%d pending=%d", e.Now(), e.Pending())
	}
	second := run()
	if len(first) != len(second) {
		t.Fatalf("replay ran %d events, first run %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at event %d: %d vs %d", i, second[i], first[i])
		}
	}
}

// TestTypedScheduleZeroAlloc: after warm-up, the typed schedule/run loop
// performs no allocations.
func TestTypedScheduleZeroAlloc(t *testing.T) {
	var e Engine
	e.Dispatch = func(kind Kind, a, b int32) {
		if kind == 1 && a > 0 {
			e.AfterKind(3, 1, a-1, 0)
		}
	}
	// Warm up the heap's backing array.
	for i := 0; i < 256; i++ {
		e.ScheduleKind(Time(i), 1, 0, 0)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		for i := 0; i < 200; i++ {
			e.ScheduleKind(Time(i%16), 1, int32(i%8), 0)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("typed schedule/run loop allocates %.1f per run, want 0", allocs)
	}
}

// TestHeapOrderProperty: mixed typed and closure events at random times
// always dispatch in nondecreasing (time, schedule-order) order.
func TestHeapOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var e Engine
		type stamp struct {
			at  Time
			seq int32
		}
		var seen []stamp
		e.Dispatch = func(kind Kind, a, b int32) {
			seen = append(seen, stamp{e.Now(), a})
		}
		for i, d := range delays {
			if i%2 == 0 {
				e.ScheduleKind(Time(d), 1, int32(i), 0)
			} else {
				i := int32(i)
				at := Time(d)
				e.Schedule(at, func() { seen = append(seen, stamp{e.Now(), i}) })
			}
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i].at < seen[i-1].at {
				return false
			}
			if seen[i].at == seen[i-1].at && seen[i].seq < seen[i-1].seq {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
