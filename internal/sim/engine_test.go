package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if end := e.Run(); end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events ran in order %v", got)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var e Engine
	var at []Time
	e.After(10, func() {
		at = append(at, e.Now())
		e.After(5, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Errorf("nested After times = %v, want [10 15]", at)
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	var e Engine
	ran := Time(0)
	e.Schedule(100, func() {
		e.Schedule(50, func() { ran = e.Now() })
	})
	e.Run()
	if ran != 100 {
		t.Errorf("past event ran at %d, want clamped to 100", ran)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i*10, func() { count++ })
	}
	if drained := e.RunUntil(50); drained {
		t.Error("RunUntil(50) claims drained with events pending")
	}
	if count != 5 {
		t.Errorf("ran %d events by t=50, want 5", count)
	}
	if e.Pending() != 5 {
		t.Errorf("%d pending, want 5", e.Pending())
	}
	if !e.RunUntil(1000) {
		t.Error("RunUntil(1000) should drain")
	}
	if count != 10 {
		t.Errorf("ran %d events total, want 10", count)
	}
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

// TestTimeMonotonic is a property test: however events are scheduled, the
// engine dispatches them in nondecreasing time order.
func TestTimeMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		var e Engine
		var seen []Time
		for _, d := range delays {
			at := Time(d)
			e.Schedule(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
