package dbtree

import (
	"testing"
	"testing/quick"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

func cfg() topology.LinkConfig { return topology.DefaultLinkConfig() }

// TestTwoTreeProperty: for even node counts, the in-order tree's leaves
// are even ranks and its mirror's leaves are odd ranks, so no rank is a
// leaf in both trees — the Sanders full-bandwidth property.
func TestTwoTreeProperty(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64} {
		t1 := inorderTree(n)
		t2 := shift(t1)
		leaf := func(tr *tree, r int) bool { return tr.height[r] == 0 }
		for r := 0; r < n; r++ {
			if leaf(t1, r) && leaf(t2, r) {
				t.Errorf("n=%d: rank %d is a leaf in both trees", n, r)
			}
		}
	}
}

func TestTreeShape(t *testing.T) {
	tr := inorderTree(7)
	if tr.root != 3 {
		t.Errorf("root = %d, want 3", tr.root)
	}
	// Positions 1..7 with trailing-zero heights: leaves at even ranks.
	for r := 0; r < 7; r += 2 {
		if tr.height[r] != 0 {
			t.Errorf("rank %d height %d, want leaf", r, tr.height[r])
		}
	}
	// Logarithmic depth.
	big := inorderTree(64)
	for r := 0; r < 64; r++ {
		if big.depth[r] > 6 {
			t.Errorf("rank %d at depth %d in 64-rank tree", r, big.depth[r])
		}
	}
}

func TestShiftPreservesShape(t *testing.T) {
	t1 := inorderTree(8)
	t2 := shift(t1)
	if t2.root != (t1.root+1)%8 {
		t.Errorf("shift root = %d, want %d", t2.root, (t1.root+1)%8)
	}
	for r := 0; r < 8; r++ {
		if t1.depth[r] != t2.depth[(r+1)%8] {
			t.Errorf("depth mismatch at rank %d", r)
		}
	}
}

// TestScheduleHalvesData: tree 0 and tree 1 carry disjoint halves of the
// gradient covering the whole vector.
func TestScheduleHalvesData(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s, err := Build(topo, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, f := range s.Flows {
		covered += f.Len
	}
	if covered != 1000 {
		t.Errorf("flows cover %d elems, want 1000", covered)
	}
	if len(s.Flows) != 2*4 {
		t.Errorf("%d flows, want 8 (2 trees x 4 chunks)", len(s.Flows))
	}
}

// TestEvenOddInterleave: tree 0 communicates on odd steps, tree 1 on even
// steps (the Fig. 4b black/red schedule), so a node never serves both
// trees in the same step.
func TestEvenOddInterleave(t *testing.T) {
	topo := topology.Torus(4, 4, cfg())
	s, err := Build(topo, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks := len(s.Flows) / 2
	for i := range s.Transfers {
		tr := &s.Transfers[i]
		tree := tr.Flow / chunks
		if tr.Step%2 != 1-tree {
			t.Fatalf("tree %d transfer at step %d breaks the even/odd interleave", tree, tr.Step)
		}
	}
}

// TestMultiHopOnTorus: DBTree is topology-oblivious, so on a torus some
// logical edges must span multiple physical hops — the §VI-A congestion
// cause.
func TestMultiHopOnTorus(t *testing.T) {
	topo := topology.Torus(8, 8, cfg())
	s, err := Build(topo, 1<<14, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := collective.Analyze(s)
	if a.MaxHops < 2 {
		t.Errorf("max hops = %d; expected multi-hop logical edges", a.MaxHops)
	}
	if a.ContentionFree() {
		t.Error("dbtree reported contention-free on a torus")
	}
}

// TestCorrectnessProperty covers arbitrary node counts (odd included) and
// pipeline depths.
func TestCorrectnessProperty(t *testing.T) {
	f := func(a, b uint8, c uint8) bool {
		nx := 2 + int(a)%4
		ny := 2 + int(b)%4
		chunks := 1 + int(c)%7
		topo := topology.Mesh(nx, ny, cfg())
		elems := 501
		s, err := Build(topo, elems, chunks)
		if err != nil {
			return false
		}
		return collective.VerifyAllReduce(s, collective.RampInputs(topo.Nodes(), elems)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestChunkClamping: tiny gradients fall back to one chunk per tree.
func TestChunkClamping(t *testing.T) {
	topo := topology.Mesh(2, 2, cfg())
	s, err := Build(topo, 8, 0) // default chunks would over-split 8 elems
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Flows) != 2 {
		t.Errorf("%d flows for an 8-element gradient, want 2", len(s.Flows))
	}
	if err := collective.VerifyAllReduce(s, collective.RampInputs(4, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsSingleNode(t *testing.T) {
	c := topology.NewCustom("solo", 1, 0)
	topo, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(topo, 100, 2); err == nil {
		t.Error("single node accepted")
	}
}
