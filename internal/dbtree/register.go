package dbtree

import (
	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Self-registration in the central algorithm registry: the double binary
// tree is topology-oblivious and needs only >= 2 nodes.
func init() {
	algorithms.Register(algorithms.Spec{
		Name:  Algorithm,
		Order: 20,
		Note:  "NCCL-style double binary tree, any topology with >= 2 nodes",
		Build: func(topo *topology.Topology, elems int, opts algorithms.Options) (*collective.Schedule, error) {
			return Build(topo, elems, opts.Chunks)
		},
		Supports: func(topo *topology.Topology) bool { return topo.Nodes() >= 2 },
	})
}
