// Package dbtree implements the Double Binary Tree all-reduce baseline
// (Sanders et al., also in NCCL; §II-C of the paper). Two logical binary
// trees are built so that the leaves of one are internal nodes of the
// other; each tree reduces and then broadcasts half of the gradient, with
// chunked pipelining so every level of both trees streams concurrently.
// Communications of the two trees are interleaved on even/odd steps so a
// node never sends (or receives) for both trees at the same instant, as
// Fig. 4b of the paper shows.
//
// DBTree is topology-oblivious: tree edges connect logical ranks, so on a
// Mesh or Torus they cross multiple physical hops and congest the network
// for large messages — the failure mode MultiTree's topology awareness
// removes.
package dbtree

import (
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

// Algorithm is the schedule name used in reports.
const Algorithm = "dbtree"

// DefaultPipelineChunks is the number of pipeline chunks per tree used
// when Build is called with chunks <= 0. NCCL-style implementations choose
// chunk counts to fill the pipeline; each tree's half is split this many
// ways so that all tree levels stream concurrently.
const DefaultPipelineChunks = 16

// tree holds one logical binary tree as parent pointers over ranks.
type tree struct {
	parent []int
	// depth[r] is the edge distance from the root.
	depth []int
	// height[r] is the height of the subtree rooted at r (leaf = 0).
	height []int
	root   int
}

// Build constructs the double-binary-tree schedule. chunks is the pipeline
// depth per tree (<= 0 selects DefaultPipelineChunks). The node count must
// be at least 2.
func Build(topo *topology.Topology, elems, chunks int) (*collective.Schedule, error) {
	n := topo.Nodes()
	if n < 2 {
		return nil, fmt.Errorf("dbtree: need at least 2 nodes, have %d", n)
	}
	if chunks <= 0 {
		chunks = DefaultPipelineChunks
	}
	// Never split below one element per flow.
	if max := elems / (2 * chunks); max == 0 {
		chunks = 1
	}

	t1 := inorderTree(n)
	t2 := shift(t1)

	// Flows: halves split into pipeline chunks. Tree ti chunk j -> flow
	// ti*chunks + j.
	halves := collective.Partition(elems, 2)
	var flows []collective.Range
	for _, h := range halves {
		for _, c := range collective.Partition(h.Len, chunks) {
			flows = append(flows, collective.Range{Off: h.Off + c.Off, Len: c.Len})
		}
	}
	s := &collective.Schedule{Algorithm: Algorithm, Topo: topo, Elems: elems, Flows: flows}

	for ti, tr := range []*tree{t1, t2} {
		buildTreeSchedule(s, tr, ti, chunks)
	}
	return s, nil
}

// buildTreeSchedule emits the pipelined reduce+broadcast transfers for one
// tree. Steps are doubled and offset by the tree index so tree 0 uses odd
// steps and tree 1 even steps (the paper's black/red interleave).
func buildTreeSchedule(s *collective.Schedule, tr *tree, ti, chunks int) {
	n := len(tr.parent)
	flow := func(j int) int { return ti*chunks + j }
	step := func(logical int) int { return 2*logical - 1 + ti }

	// Reduce: rank r sends chunk j to its parent at logical step
	// height(r)+1+j — exactly one step after its deepest child subtree
	// delivered chunk j.
	// reduceRecv[r][j] lists reduce transfers into r for chunk j.
	reduceRecv := make([][][]collective.TransferID, n)
	for r := range reduceRecv {
		reduceRecv[r] = make([][]collective.TransferID, chunks)
	}
	// Emit in order of sender height so dependencies already exist.
	byHeight := ranksByHeight(tr)
	maxReduceLogical := 0
	for _, r := range byHeight {
		if r == tr.root {
			continue
		}
		for j := 0; j < chunks; j++ {
			logical := tr.height[r] + 1 + j
			if logical > maxReduceLogical {
				maxReduceLogical = logical
			}
			id := s.Add(collective.Transfer{
				Src: topology.NodeID(r), Dst: topology.NodeID(tr.parent[r]),
				Op: collective.Reduce, Flow: flow(j), Step: step(logical),
				Deps: reduceRecv[r][j],
			})
			p := tr.parent[r]
			reduceRecv[p][j] = append(reduceRecv[p][j], id)
		}
	}

	// Broadcast: the root sends chunk j to its children once its reduction
	// of chunk j completed; a node at depth d forwards one logical step
	// after receiving.
	rootDone := maxReduceLogical
	gatherIn := make([][]collective.TransferID, n)
	for r := range gatherIn {
		gatherIn[r] = make([]collective.TransferID, chunks)
		for j := range gatherIn[r] {
			gatherIn[r][j] = -1
		}
	}
	byDepth := ranksByDepth(tr)
	for _, r := range byDepth {
		if r == tr.root {
			continue
		}
		p := tr.parent[r]
		for j := 0; j < chunks; j++ {
			var deps []collective.TransferID
			if p == tr.root {
				deps = reduceRecv[tr.root][j]
			} else if gatherIn[p][j] >= 0 {
				deps = []collective.TransferID{gatherIn[p][j]}
			}
			logical := rootDone + tr.depth[r] + j
			gatherIn[r][j] = s.Add(collective.Transfer{
				Src: topology.NodeID(p), Dst: topology.NodeID(r),
				Op: collective.Gather, Flow: flow(j), Step: step(logical),
				Deps: deps,
			})
		}
	}
}

// inorderTree builds the Sanders in-order binary tree over ranks 0..n-1
// using 1-based positions p = rank+1: a position's height in the tree is
// the number of trailing zeros of p, its parent is p +/- 2^h (choosing the
// in-order side, clipped to the range), and the root is the largest power
// of two <= n. Odd positions — even ranks — are the leaves, so the
// shifted second tree's leaves are the odd ranks and no rank is a leaf in
// both: the two-tree full-bandwidth property.
func inorderTree(n int) *tree {
	t := &tree{
		parent: make([]int, n),
		depth:  make([]int, n),
		height: make([]int, n),
	}
	for p := 1; p <= n; p++ {
		pp := parentPos(p, n)
		if pp == 0 {
			t.parent[p-1] = -1
			t.root = p - 1
		} else {
			t.parent[p-1] = pp - 1
		}
	}
	computeDepths(t)
	computeHeights(t)
	return t
}

// parentPos returns the 1-based parent position of p in an n-position
// in-order tree, or 0 for the root.
func parentPos(p, n int) int {
	h := trailingZeros(p)
	up, down := p+1<<h, p-1<<h
	if (p>>(h+1))&1 == 0 && up <= n {
		return up
	}
	return down // 0 marks the root (p is the largest power of two <= n)
}

func trailingZeros(p int) int {
	h := 0
	for p&1 == 0 {
		h++
		p >>= 1
	}
	return h
}

// shift relabels rank r as (r+1) mod n — the NCCL "shift by one" trick
// that turns the first tree's even-rank leaves into odd-rank leaves.
func shift(src *tree) *tree {
	n := len(src.parent)
	t := &tree{
		parent: make([]int, n),
		depth:  make([]int, n),
		height: make([]int, n),
	}
	for r := 0; r < n; r++ {
		m := (r + 1) % n
		if src.parent[r] < 0 {
			t.parent[m] = -1
			t.root = m
		} else {
			t.parent[m] = (src.parent[r] + 1) % n
		}
		t.depth[m] = src.depth[r]
	}
	computeHeights(t)
	return t
}

// computeDepths fills depth from parent pointers.
func computeDepths(t *tree) {
	var depth func(r int) int
	depth = func(r int) int {
		if t.parent[r] < 0 {
			return 0
		}
		if t.depth[r] == 0 && r != t.root {
			t.depth[r] = depth(t.parent[r]) + 1
		}
		return t.depth[r]
	}
	for r := range t.parent {
		depth(r)
	}
}

func computeHeights(t *tree) {
	// Height = max over children of height+1; compute by scanning ranks in
	// decreasing depth order.
	order := ranksByDepth(t)
	for i := len(order) - 1; i >= 0; i-- {
		r := order[i]
		if p := t.parent[r]; p >= 0 && t.height[r]+1 > t.height[p] {
			t.height[p] = t.height[r] + 1
		}
	}
}

// ranksByDepth returns ranks sorted by increasing depth (root first),
// stable by rank.
func ranksByDepth(t *tree) []int {
	n := len(t.parent)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sortBy(order, func(a, b int) bool {
		if t.depth[a] != t.depth[b] {
			return t.depth[a] < t.depth[b]
		}
		return a < b
	})
	return order
}

// ranksByHeight returns ranks sorted by increasing subtree height (leaves
// first), stable by rank.
func ranksByHeight(t *tree) []int {
	n := len(t.parent)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sortBy(order, func(a, b int) bool {
		if t.height[a] != t.height[b] {
			return t.height[a] < t.height[b]
		}
		return a < b
	})
	return order
}

func sortBy(xs []int, less func(a, b int) bool) {
	// Insertion sort keeps the helper dependency-free; rank lists are
	// small (node counts).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
