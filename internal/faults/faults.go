// Package faults models degraded training fabrics: permanent link
// failures, bandwidth-degraded straggler links, per-link added latency,
// and whole-node failures. Real fabrics are not the fault-free ideal of
// the paper's evaluation (§VIII); like TACCL's communication sketches and
// TopoOpt, this package treats the topology as a constrained, changeable
// input so every algorithm can be asked "what happens when the fabric is
// degraded?".
//
// A fault Plan is deterministic and serializable (ParseSpec / String),
// and applies at two layers:
//
//   - Topology layer: Apply produces a degraded topology.Topology view
//     with failed cables and nodes removed and straggler links
//     re-parameterized. The algorithm registry re-plans against the
//     degraded view, so schedules route around dead links by
//     construction; algorithms whose Supports predicate fails on the
//     degraded graph (e.g. 2D-Ring without grid coordinates) report
//     gracefully instead of panicking.
//
//   - Engine layer: Compile lowers a plan onto a concrete topology's
//     link ids for mid-flight degradation inside the network engines
//     (network.Config.Faults). A transfer crossing a link at or after
//     its fault time stalls and the simulation errors with a
//     descriptive report; degraded bandwidth and added latency are
//     honored by both the fluid and packet engines.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"multitree/internal/sim"
	"multitree/internal/topology"
)

// LinkFault degrades or kills the full-duplex cable between two vertices
// (all parallel links of a multigraph trunk, both directions — a physical
// cable fails as a unit). Exactly one of Down, BWScale, AddLatency is
// active per fault; compose several faults to stack effects.
type LinkFault struct {
	// A, B are vertex ids (end nodes 0..N-1, switches N..N+S-1).
	A, B int

	// At is the activation time in cycles; 0 means the fault predates the
	// run. The topology layer (Apply) treats every fault as permanent and
	// plans around it regardless of At; the engines honor At mid-flight.
	At sim.Time

	// Down removes the cable entirely.
	Down bool

	// BWScale, when in (0,1), multiplies the cable's bandwidth — a
	// straggler link.
	BWScale float64

	// AddLatency adds propagation delay to the cable.
	AddLatency sim.Time
}

// NodeFault kills a vertex: every incident link fails at At. At the
// topology layer a failed end node is removed from the collective (the
// surviving nodes renumber densely); a failed switch only takes its
// links.
type NodeFault struct {
	Vertex int
	At     sim.Time
}

// Plan is a deterministic, serializable set of fault injections.
type Plan struct {
	Links []LinkFault
	Nodes []NodeFault
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Links) == 0 && len(p.Nodes) == 0)
}

// String renders the plan in the -faults spec grammar, so a plan logs
// and round-trips through ParseSpec.
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	var parts []string
	for _, f := range p.Links {
		t := ""
		if f.At > 0 {
			t = fmt.Sprintf("@t=%d", uint64(f.At))
		}
		switch {
		case f.Down:
			parts = append(parts, fmt.Sprintf("link:%d-%d%s:down", f.A, f.B, t))
		case f.BWScale > 0:
			parts = append(parts, fmt.Sprintf("link:%d-%d%s:bw=%g", f.A, f.B, t, f.BWScale))
		default:
			parts = append(parts, fmt.Sprintf("link:%d-%d%s:lat+%d", f.A, f.B, t, uint64(f.AddLatency)))
		}
	}
	for _, f := range p.Nodes {
		t := ""
		if f.At > 0 {
			t = fmt.Sprintf("@t=%d", uint64(f.At))
		}
		parts = append(parts, fmt.Sprintf("node:%d%s:down", f.Vertex, t))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault spec, e.g.
//
//	link:3-7@t=5000:down,link:0-1:bw=0.5,link:2-3:lat+100,node:12:down
//
// Grammar per clause:
//
//	link:<a>-<b>[@t=<cycles>]:down | bw=<scale> | lat+<cycles>
//	node:<v>[@t=<cycles>]:down
//
// An empty spec parses to an empty plan.
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not <kind>:<target>:<effect>", clause)
		}
		target, effect, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is missing its effect", clause)
		}
		at, target, err := parseAt(target)
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
		switch kind {
		case "link":
			as, bs, ok := strings.Cut(target, "-")
			if !ok {
				return nil, fmt.Errorf("faults: clause %q needs a <a>-<b> vertex pair", clause)
			}
			a, err1 := strconv.Atoi(as)
			b, err2 := strconv.Atoi(bs)
			if err1 != nil || err2 != nil || a < 0 || b < 0 || a == b {
				return nil, fmt.Errorf("faults: clause %q has a bad vertex pair %q", clause, target)
			}
			f := LinkFault{A: a, B: b, At: at}
			switch {
			case effect == "down":
				f.Down = true
			case strings.HasPrefix(effect, "bw="):
				scale, err := strconv.ParseFloat(effect[3:], 64)
				if err != nil || scale <= 0 || scale >= 1 {
					return nil, fmt.Errorf("faults: clause %q needs bw=<scale> with 0 < scale < 1", clause)
				}
				f.BWScale = scale
			case strings.HasPrefix(effect, "lat+"):
				add, err := strconv.ParseUint(effect[4:], 10, 63)
				if err != nil || add == 0 {
					return nil, fmt.Errorf("faults: clause %q needs lat+<cycles> with cycles > 0", clause)
				}
				f.AddLatency = sim.Time(add)
			default:
				return nil, fmt.Errorf("faults: clause %q has unknown link effect %q (want down, bw=<scale> or lat+<cycles>)", clause, effect)
			}
			p.Links = append(p.Links, f)
		case "node":
			if effect != "down" {
				return nil, fmt.Errorf("faults: clause %q: node faults support only :down", clause)
			}
			v, err := strconv.Atoi(target)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("faults: clause %q has a bad vertex %q", clause, target)
			}
			p.Nodes = append(p.Nodes, NodeFault{Vertex: v, At: at})
		default:
			return nil, fmt.Errorf("faults: unknown fault kind %q in %q (want link or node)", kind, clause)
		}
	}
	return p, nil
}

// parseAt splits an optional @t=<cycles> suffix off a clause target.
func parseAt(target string) (sim.Time, string, error) {
	base, ts, ok := strings.Cut(target, "@")
	if !ok {
		return 0, target, nil
	}
	if !strings.HasPrefix(ts, "t=") {
		return 0, "", fmt.Errorf("bad time suffix %q (want @t=<cycles>)", "@"+ts)
	}
	v, err := strconv.ParseUint(ts[2:], 10, 63)
	if err != nil {
		return 0, "", fmt.Errorf("bad fault time %q", ts[2:])
	}
	return sim.Time(v), base, nil
}

// validate checks every fault against a concrete topology: vertex ids in
// range and, for link faults, at least one directed link between the
// endpoints.
func (p *Plan) validate(topo *topology.Topology) error {
	if p == nil {
		return nil
	}
	v := topo.Vertices()
	for _, f := range p.Links {
		if f.A < 0 || f.A >= v || f.B < 0 || f.B >= v {
			return fmt.Errorf("faults: link fault %d-%d is outside %s (%d vertices)", f.A, f.B, topo.Name(), v)
		}
		if !cableExists(topo, f.A, f.B) {
			return fmt.Errorf("faults: %s has no cable between %s and %s",
				topo.Name(), topo.VertexName(f.A), topo.VertexName(f.B))
		}
	}
	for _, f := range p.Nodes {
		if f.Vertex < 0 || f.Vertex >= v {
			return fmt.Errorf("faults: node fault %d is outside %s (%d vertices)", f.Vertex, topo.Name(), v)
		}
	}
	return nil
}

func cableExists(topo *topology.Topology, a, b int) bool {
	for _, l := range topo.Links() {
		if (l.Src == a && l.Dst == b) || (l.Src == b && l.Dst == a) {
			return true
		}
	}
	return false
}

// hits reports whether a directed link belongs to the cable a-b.
func hits(l topology.Link, a, b int) bool {
	return (l.Src == a && l.Dst == b) || (l.Src == b && l.Dst == a)
}

// Degraded is the topology-layer view of a fault plan: the degraded
// fabric plus the vertex renumbering that removing failed end nodes
// induced, so analyses can map degraded entities back to the original.
type Degraded struct {
	// Topo is the degraded fabric. When the plan is empty this is the
	// original topology unchanged (grid coordinates and ring orders
	// intact); otherwise it is a rebuilt custom topology with BFS
	// routing, which routes around the removed links.
	Topo *topology.Topology

	// Plan is the applied plan.
	Plan *Plan

	// NodeOf maps an original node id to its degraded id, or -1 for a
	// failed node.
	NodeOf []topology.NodeID

	// OrigNode maps a degraded node id back to the original.
	OrigNode []topology.NodeID

	// OrigVertex maps every degraded vertex (nodes and switches) back to
	// the original vertex id.
	OrigVertex []int

	// RemovedLinks lists the original directed link ids the plan removed.
	RemovedLinks []topology.LinkID
}

// Apply produces the degraded topology view the algorithm registry
// re-plans against. Every fault is treated as permanent regardless of
// its activation time — the planner routes around a link that is known
// to die. It errors when the plan references absent cables or vertices,
// kills so many nodes that fewer than two survive, or disconnects the
// fabric (an unroutable plan).
func Apply(topo *topology.Topology, p *Plan) (*Degraded, error) {
	if err := p.validate(topo); err != nil {
		return nil, err
	}
	if p.Empty() {
		d := &Degraded{Topo: topo, Plan: p,
			NodeOf:     make([]topology.NodeID, topo.Nodes()),
			OrigNode:   make([]topology.NodeID, topo.Nodes()),
			OrigVertex: make([]int, topo.Vertices()),
		}
		for i := range d.NodeOf {
			d.NodeOf[i] = topology.NodeID(i)
			d.OrigNode[i] = topology.NodeID(i)
		}
		for i := range d.OrigVertex {
			d.OrigVertex[i] = i
		}
		return d, nil
	}

	deadVertex := make([]bool, topo.Vertices())
	for _, f := range p.Nodes {
		deadVertex[f.Vertex] = true
	}

	// Per original link: removed, bandwidth multiplier, extra latency.
	links := topo.Links()
	removed := make([]bool, len(links))
	scale := make([]float64, len(links))
	extra := make([]sim.Time, len(links))
	for i := range scale {
		scale[i] = 1
	}
	for _, f := range p.Links {
		for i, l := range links {
			if !hits(l, f.A, f.B) {
				continue
			}
			switch {
			case f.Down:
				removed[i] = true
			case f.BWScale > 0:
				scale[i] *= f.BWScale
			default:
				extra[i] += f.AddLatency
			}
		}
	}
	for i, l := range links {
		if deadVertex[l.Src] || deadVertex[l.Dst] {
			removed[i] = true
		}
	}

	// Renumber: surviving end nodes first (dense, in original order),
	// then surviving switches.
	d := &Degraded{Plan: p, NodeOf: make([]topology.NodeID, topo.Nodes())}
	vertexOf := make([]int, topo.Vertices())
	for i := range vertexOf {
		vertexOf[i] = -1
	}
	for n := 0; n < topo.Nodes(); n++ {
		d.NodeOf[n] = -1
		if !deadVertex[n] {
			d.NodeOf[n] = topology.NodeID(len(d.OrigNode))
			vertexOf[n] = len(d.OrigNode)
			d.OrigNode = append(d.OrigNode, topology.NodeID(n))
			d.OrigVertex = append(d.OrigVertex, n)
		}
	}
	nodes := len(d.OrigNode)
	if nodes < 2 {
		return nil, fmt.Errorf("faults: plan %q leaves %s with %d live node(s); an all-reduce needs at least 2",
			p, topo.Name(), nodes)
	}
	switches := 0
	for s := 0; s < topo.Switches(); s++ {
		v := topo.SwitchVertex(s)
		if !deadVertex[v] {
			vertexOf[v] = nodes + switches
			d.OrigVertex = append(d.OrigVertex, v)
			switches++
		}
	}

	cb := topology.NewCustom(topo.Name()+"-degraded", nodes, switches)
	for i, l := range links {
		if removed[i] {
			d.RemovedLinks = append(d.RemovedLinks, l.ID)
			continue
		}
		cb.DirectedLink(vertexOf[l.Src], vertexOf[l.Dst], topology.LinkConfig{
			Bandwidth: l.Bandwidth * scale[i],
			Latency:   l.Latency + extra[i],
		})
	}
	deg, err := cb.Build()
	if err != nil {
		return nil, fmt.Errorf("faults: plan %q disconnects %s (unroutable): %w", p, topo.Name(), err)
	}
	d.Topo = deg
	return d, nil
}

// RandomLinkFailures returns a plan that fails n distinct cables of the
// topology, chosen deterministically from seed, such that the degraded
// fabric stays connected. Cables whose removal would disconnect the
// fabric are skipped; if fewer than n removable cables exist the plan
// errors.
func RandomLinkFailures(topo *topology.Topology, n int, seed int64) (*Plan, error) {
	p := &Plan{}
	if n == 0 {
		return p, nil
	}
	type cable struct{ a, b int }
	seen := map[cable]bool{}
	var cables []cable
	for _, l := range topo.Links() {
		c := cable{l.Src, l.Dst}
		if c.a > c.b {
			c.a, c.b = c.b, c.a
		}
		if !seen[c] {
			seen[c] = true
			cables = append(cables, c)
		}
	}
	sort.Slice(cables, func(i, j int) bool {
		if cables[i].a != cables[j].a {
			return cables[i].a < cables[j].a
		}
		return cables[i].b < cables[j].b
	})
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cables), func(i, j int) { cables[i], cables[j] = cables[j], cables[i] })
	for _, c := range cables {
		if len(p.Links) == n {
			break
		}
		trial := &Plan{Links: append(append([]LinkFault(nil), p.Links...),
			LinkFault{A: c.a, B: c.b, Down: true})}
		if _, err := Apply(topo, trial); err != nil {
			continue // removal would disconnect the fabric; skip this cable
		}
		p.Links = trial.Links
	}
	if len(p.Links) < n {
		return nil, fmt.Errorf("faults: %s has only %d removable cables, %d requested",
			topo.Name(), len(p.Links), n)
	}
	return p, nil
}

// Change is one engine-visible fault activation on a directed link.
type Change struct {
	At   sim.Time
	Link topology.LinkID

	// Down kills the link at At.
	Down bool

	// BWScale multiplies the link's bandwidth from At on (1 when the
	// change does not touch bandwidth).
	BWScale float64

	// AddLatency adds propagation delay from At on.
	AddLatency sim.Time
}

// Compiled is a fault plan lowered onto one topology's directed link
// ids, for the network engines' mid-flight degradation. A nil *Compiled
// means "no faults" and is what Compile returns for an empty plan.
type Compiled struct {
	changes []Change
	effects [][]Change // per link id, sorted by At; nil when unaffected
	downAt  []sim.Time // earliest Down activation per link; never if none
}

// never is the sentinel "this link does not fail".
const never = sim.Time(math.MaxUint64)

// Compile lowers a plan onto a topology for engine-layer injection. It
// returns (nil, nil) for an empty plan so engines keep their zero-cost
// no-fault fast path.
func Compile(p *Plan, topo *topology.Topology) (*Compiled, error) {
	if p.Empty() {
		return nil, nil
	}
	if err := p.validate(topo); err != nil {
		return nil, err
	}
	links := topo.Links()
	c := &Compiled{
		effects: make([][]Change, len(links)),
		downAt:  make([]sim.Time, len(links)),
	}
	for i := range c.downAt {
		c.downAt[i] = never
	}
	add := func(ch Change) {
		c.changes = append(c.changes, ch)
		c.effects[ch.Link] = append(c.effects[ch.Link], ch)
		if ch.Down && ch.At < c.downAt[ch.Link] {
			c.downAt[ch.Link] = ch.At
		}
	}
	for _, f := range p.Links {
		for _, l := range links {
			if !hits(l, f.A, f.B) {
				continue
			}
			ch := Change{At: f.At, Link: l.ID, Down: f.Down, BWScale: 1, AddLatency: f.AddLatency}
			if f.BWScale > 0 {
				ch.BWScale = f.BWScale
			}
			add(ch)
		}
	}
	for _, f := range p.Nodes {
		for _, l := range links {
			if l.Src == f.Vertex || l.Dst == f.Vertex {
				add(Change{At: f.At, Link: l.ID, Down: true, BWScale: 1})
			}
		}
	}
	sort.SliceStable(c.changes, func(i, j int) bool {
		if c.changes[i].At != c.changes[j].At {
			return c.changes[i].At < c.changes[j].At
		}
		return c.changes[i].Link < c.changes[j].Link
	})
	for l := range c.effects {
		eff := c.effects[l]
		sort.SliceStable(eff, func(i, j int) bool { return eff[i].At < eff[j].At })
	}
	return c, nil
}

// Changes returns every fault activation sorted by (time, link), for
// engines to schedule EvLinkFault trace events and rate recomputation.
func (c *Compiled) Changes() []Change { return c.changes }

// timeEps absorbs the fluid engine's floating-point clock when comparing
// against integer fault times.
const timeEps = 1e-6

// Bandwidth returns link l's effective bandwidth at time `at` (cycles;
// fractional times come from the fluid engine's clock): 0 once the link
// is down, the base bandwidth scaled by every activated straggler fault
// otherwise.
func (c *Compiled) Bandwidth(l topology.LinkID, base float64, at float64) float64 {
	bw := base
	for _, ch := range c.effects[l] {
		if float64(ch.At) > at+timeEps {
			break
		}
		if ch.Down {
			return 0
		}
		bw *= ch.BWScale
	}
	return bw
}

// ExtraLatency returns the added propagation delay of link l at time at.
func (c *Compiled) ExtraLatency(l topology.LinkID, at float64) sim.Time {
	var add sim.Time
	for _, ch := range c.effects[l] {
		if float64(ch.At) > at+timeEps {
			break
		}
		add += ch.AddLatency
	}
	return add
}

// DownAt returns the time link l fails, if the plan fails it at all.
func (c *Compiled) DownAt(l topology.LinkID) (sim.Time, bool) {
	at := c.downAt[l]
	return at, at != never
}
