package faults

import (
	"strings"
	"testing"

	"multitree/internal/sim"
	"multitree/internal/topology"
)

func torus4x4(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.Torus(4, 4, topology.DefaultLinkConfig())
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "link:3-7@t=5000:down,link:0-1:bw=0.5,link:2-3:lat+100,node:12:down"
	p, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	if len(p.Links) != 3 || len(p.Nodes) != 1 {
		t.Fatalf("got %d link / %d node faults, want 3/1", len(p.Links), len(p.Nodes))
	}
	if f := p.Links[0]; !f.Down || f.A != 3 || f.B != 7 || f.At != 5000 {
		t.Errorf("clause 0 parsed as %+v", f)
	}
	if f := p.Links[1]; f.BWScale != 0.5 || f.At != 0 {
		t.Errorf("clause 1 parsed as %+v", f)
	}
	if f := p.Links[2]; f.AddLatency != 100 {
		t.Errorf("clause 2 parsed as %+v", f)
	}
	if f := p.Nodes[0]; f.Vertex != 12 {
		t.Errorf("node clause parsed as %+v", f)
	}
	if got := p.String(); got != spec {
		t.Errorf("String() = %q, want round trip of %q", got, spec)
	}
	back, err := ParseSpec(p.String())
	if err != nil || back.String() != spec {
		t.Errorf("re-parse of String() failed: %v / %q", err, back.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"link:0-1",             // no effect
		"link:0-1:up",          // unknown effect
		"link:0-0:down",        // self loop
		"link:0:down",          // not a pair
		"link:0-1:bw=1.5",      // scale out of range
		"link:0-1:bw=0",        // scale out of range
		"link:0-1:lat+0",       // zero latency
		"link:0-1@5:down",      // bad time suffix
		"node:3:bw=0.5",        // nodes only go down
		"node:-1:down",         // negative vertex
		"switch:0:down",        // unknown kind
		"link:0-1:down,,",      // empty clause
		"link:0-1@t=nope:down", // unparsable time
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
	p, err := ParseSpec("  ")
	if err != nil || !p.Empty() {
		t.Errorf("blank spec: got %v, %+v", err, p)
	}
}

func TestApplyEmptyPlanIsIdentity(t *testing.T) {
	topo := torus4x4(t)
	d, err := Apply(topo, &Plan{})
	if err != nil {
		t.Fatalf("Apply(empty): %v", err)
	}
	if d.Topo != topo {
		t.Error("empty plan should return the original topology unchanged")
	}
	if nx, _ := d.Topo.GridDims(); nx != 4 {
		t.Error("empty plan lost grid dims")
	}
	for n := 0; n < topo.Nodes(); n++ {
		if d.NodeOf[n] != topology.NodeID(n) || d.OrigNode[n] != topology.NodeID(n) {
			t.Fatalf("identity mapping broken at node %d", n)
		}
	}
}

func TestApplyLinkDown(t *testing.T) {
	topo := torus4x4(t)
	p, err := ParseSpec("link:0-1:down")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Apply(topo, p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if d.Topo.Nodes() != 16 {
		t.Fatalf("degraded torus has %d nodes, want 16", d.Topo.Nodes())
	}
	// Both directions of the cable are gone.
	if len(d.RemovedLinks) != 2 {
		t.Fatalf("removed %d links, want 2 (both directions)", len(d.RemovedLinks))
	}
	for _, l := range d.Topo.Links() {
		if hits(l, 0, 1) {
			t.Fatalf("degraded topology still has link %d->%d", l.Src, l.Dst)
		}
	}
	// Torus stays connected: BFS routing must find an alternate 0->1 path.
	path := d.Topo.Route(0, 1)
	if len(path) == 0 {
		t.Fatal("no route 0->1 in degraded torus")
	}
	for _, lid := range path {
		if hits(d.Topo.Link(lid), 0, 1) {
			t.Fatal("route 0->1 uses the failed cable")
		}
	}
}

func TestApplyStragglerAndLatency(t *testing.T) {
	topo := torus4x4(t)
	base := topo.Link(0)
	p, _ := ParseSpec("link:0-1:bw=0.5,link:0-1:lat+25")
	d, err := Apply(topo, p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	found := 0
	for _, l := range d.Topo.Links() {
		if hits(l, 0, 1) {
			found++
			if l.Bandwidth != base.Bandwidth*0.5 {
				t.Errorf("straggler bandwidth %g, want %g", l.Bandwidth, base.Bandwidth*0.5)
			}
			if l.Latency != base.Latency+25 {
				t.Errorf("latency %d, want %d", l.Latency, base.Latency+25)
			}
		}
	}
	if found != 2 {
		t.Errorf("found %d degraded links of cable 0-1, want 2", found)
	}
}

func TestApplyNodeDownRenumbers(t *testing.T) {
	topo := torus4x4(t)
	p, _ := ParseSpec("node:5:down")
	d, err := Apply(topo, p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if d.Topo.Nodes() != 15 {
		t.Fatalf("degraded torus has %d nodes, want 15", d.Topo.Nodes())
	}
	if d.NodeOf[5] != -1 {
		t.Errorf("NodeOf[5] = %d, want -1", d.NodeOf[5])
	}
	if d.NodeOf[6] != 5 || d.OrigNode[5] != 6 {
		t.Errorf("renumbering wrong: NodeOf[6]=%d OrigNode[5]=%d", d.NodeOf[6], d.OrigNode[5])
	}
	// node 5 had degree 4 (torus): 8 directed links removed.
	if len(d.RemovedLinks) != 8 {
		t.Errorf("removed %d links, want 8", len(d.RemovedLinks))
	}
	for _, l := range d.Topo.Links() {
		if d.OrigVertex[l.Src] == 5 || d.OrigVertex[l.Dst] == 5 {
			t.Fatal("degraded topology still touches dead node 5")
		}
	}
}

func TestApplyUnroutable(t *testing.T) {
	topo := torus4x4(t)
	// Sever all four cables of node 0: it survives but cannot be reached.
	p, _ := ParseSpec("link:0-1:down,link:0-3:down,link:0-4:down,link:0-12:down")
	_, err := Apply(topo, p)
	if err == nil {
		t.Fatal("Apply succeeded on a disconnecting plan")
	}
	if !strings.Contains(err.Error(), "disconnect") {
		t.Errorf("error %q does not mention disconnection", err)
	}
}

func TestApplyValidation(t *testing.T) {
	topo := torus4x4(t)
	if _, err := Apply(topo, &Plan{Links: []LinkFault{{A: 0, B: 99, Down: true}}}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	// 0 and 5 are not torus neighbors: no cable to fail.
	if _, err := Apply(topo, &Plan{Links: []LinkFault{{A: 0, B: 5, Down: true}}}); err == nil {
		t.Error("absent cable accepted")
	}
	// Killing 15 of 16 nodes leaves too few for an all-reduce.
	var p Plan
	for n := 0; n < 15; n++ {
		p.Nodes = append(p.Nodes, NodeFault{Vertex: n})
	}
	if _, err := Apply(topo, &p); err == nil {
		t.Error("plan leaving <2 nodes accepted")
	}
}

func TestRandomLinkFailuresDeterministicAndConnected(t *testing.T) {
	topo := torus4x4(t)
	a, err := RandomLinkFailures(topo, 3, 42)
	if err != nil {
		t.Fatalf("RandomLinkFailures: %v", err)
	}
	b, err := RandomLinkFailures(topo, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different plans: %q vs %q", a, b)
	}
	c, _ := RandomLinkFailures(topo, 3, 7)
	if c.String() == a.String() {
		t.Logf("seeds 42 and 7 coincide (possible but unlikely): %q", a)
	}
	if len(a.Links) != 3 {
		t.Fatalf("plan has %d failures, want 3", len(a.Links))
	}
	if _, err := Apply(topo, a); err != nil {
		t.Errorf("random plan disconnects the fabric: %v", err)
	}
}

func TestRandomLinkFailuresTooMany(t *testing.T) {
	// A 2x2 mesh is a 4-cycle: it tolerates exactly one cable loss, and
	// any two removals disconnect it.
	cyc := topology.Mesh(2, 2, topology.DefaultLinkConfig())
	if _, err := RandomLinkFailures(cyc, 2, 1); err == nil {
		t.Error("RandomLinkFailures found 2 removable cables in a 4-cycle")
	}
}

func TestCompile(t *testing.T) {
	topo := torus4x4(t)
	p, _ := ParseSpec("link:0-1@t=5000:down,link:0-4:bw=0.25,node:5@t=100:down")
	c, err := Compile(p, topo)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Changes sorted by time: node-5 links at t=100 first, then 0-1 at 5000,
	// with the t=0 straggler first of all.
	chs := c.Changes()
	if len(chs) != 2+2+8 {
		t.Fatalf("got %d changes, want 12", len(chs))
	}
	for i := 1; i < len(chs); i++ {
		if chs[i].At < chs[i-1].At {
			t.Fatal("Changes not sorted by time")
		}
	}

	var l01, l04 topology.LinkID = -1, -1
	for _, l := range topo.Links() {
		if l.Src == 0 && l.Dst == 1 {
			l01 = l.ID
		}
		if l.Src == 0 && l.Dst == 4 {
			l04 = l.ID
		}
	}
	base := topo.Link(l01).Bandwidth
	if bw := c.Bandwidth(l01, base, 0); bw != base {
		t.Errorf("link 0->1 bandwidth before fault = %g, want %g", bw, base)
	}
	if bw := c.Bandwidth(l01, base, 5000); bw != 0 {
		t.Errorf("link 0->1 bandwidth at fault time = %g, want 0", bw)
	}
	if bw := c.Bandwidth(l04, base, 0); bw != base*0.25 {
		t.Errorf("straggler 0->4 bandwidth = %g, want %g", bw, base*0.25)
	}
	if at, down := c.DownAt(l01); !down || at != 5000 {
		t.Errorf("DownAt(0->1) = %d,%v want 5000,true", at, down)
	}
	if _, down := c.DownAt(l04); down {
		t.Error("straggler link reported as down")
	}

	// Empty plan compiles to nil: the engines' no-fault fast path.
	if c, err := Compile(&Plan{}, topo); err != nil || c != nil {
		t.Errorf("Compile(empty) = %v, %v; want nil, nil", c, err)
	}
}

func TestCompileExtraLatency(t *testing.T) {
	topo := torus4x4(t)
	p, _ := ParseSpec("link:0-1@t=200:lat+50")
	c, err := Compile(p, topo)
	if err != nil {
		t.Fatal(err)
	}
	var l01 topology.LinkID
	for _, l := range topo.Links() {
		if l.Src == 0 && l.Dst == 1 {
			l01 = l.ID
		}
	}
	if add := c.ExtraLatency(l01, 0); add != 0 {
		t.Errorf("extra latency before activation = %d, want 0", add)
	}
	if add := c.ExtraLatency(l01, 200); add != 50 {
		t.Errorf("extra latency after activation = %d, want 50", add)
	}
	if add := c.ExtraLatency(l01, 199.9999999); add != 50 {
		t.Errorf("extra latency within eps of activation = %d, want 50", add)
	}
	_ = sim.Time(0)
}
