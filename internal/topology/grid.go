package topology

import "fmt"

// Mesh builds an nx-by-ny 2D mesh direct network. Node (x, y) is node id
// y*nx + x. Outgoing links are added Y-dimension first, then X, matching
// the neighbor-preference order Algorithm 1 of the paper uses during link
// allocation.
func Mesh(nx, ny int, cfg LinkConfig) *Topology {
	return grid(fmt.Sprintf("mesh-%dx%d", nx, ny), nx, ny, false, cfg)
}

// Torus builds an nx-by-ny 2D torus direct network with wrap-around links
// in both dimensions.
func Torus(nx, ny int, cfg LinkConfig) *Topology {
	return grid(fmt.Sprintf("torus-%dx%d", nx, ny), nx, ny, true, cfg)
}

func grid(name string, nx, ny int, wrap bool, cfg LinkConfig) *Topology {
	if nx < 2 || ny < 2 {
		panic("topology: grid dimensions must be at least 2x2")
	}
	b := newBuilder(name, Direct, nx*ny, 0)
	t := b.t
	t.nx, t.ny = nx, ny
	t.coords = make([]Coord, nx*ny)
	node := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			t.coords[node(x, y)] = Coord{X: x, Y: y}
		}
	}
	// Y-dimension links first (preference order of §III-C1), then X.
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := node(x, y)
			if y+1 < ny {
				b.addLink(v, node(x, y+1), cfg)
			} else if wrap && ny > 2 {
				b.addLink(v, node(x, 0), cfg)
			}
			if y > 0 {
				b.addLink(v, node(x, y-1), cfg)
			} else if wrap && ny > 2 {
				b.addLink(v, node(x, ny-1), cfg)
			}
		}
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := node(x, y)
			if x+1 < nx {
				b.addLink(v, node(x+1, y), cfg)
			} else if wrap && nx > 2 {
				b.addLink(v, node(0, y), cfg)
			}
			if x > 0 {
				b.addLink(v, node(x-1, y), cfg)
			} else if wrap && nx > 2 {
				b.addLink(v, node(nx-1, y), cfg)
			}
		}
	}
	t.route = func(t *Topology, src, dst NodeID) []LinkID {
		return gridRoute(t, src, dst, wrap)
	}
	t.ringOrder = snakeOrder(nx, ny)
	return t
}

// gridRoute implements X-then-Y dimension-order routing. On a torus it
// takes the shorter wrap-around direction, breaking ties toward the
// positive direction.
func gridRoute(t *Topology, src, dst NodeID, wrap bool) []LinkID {
	cur := t.coords[src]
	goal := t.coords[dst]
	var path []LinkID
	step := func(from Coord, dx, dy int) Coord {
		next := Coord{X: mod(from.X+dx, t.nx), Y: mod(from.Y+dy, t.ny)}
		path = append(path, t.linkBetween(next2id(t, from), next2id(t, next)))
		return next
	}
	for cur.X != goal.X {
		cur = step(cur, gridDir(cur.X, goal.X, t.nx, wrap), 0)
	}
	for cur.Y != goal.Y {
		cur = step(cur, 0, gridDir(cur.Y, goal.Y, t.ny, wrap))
	}
	return path
}

func next2id(t *Topology, c Coord) int { return c.Y*t.nx + c.X }

func mod(a, n int) int { return ((a % n) + n) % n }

// gridDir returns +1 or -1: the direction to move one hop from cur toward
// goal along a dimension of length n.
func gridDir(cur, goal, n int, wrap bool) int {
	if !wrap || n <= 2 {
		if goal > cur {
			return 1
		}
		return -1
	}
	fwd := mod(goal-cur, n)
	bwd := mod(cur-goal, n)
	if fwd <= bwd {
		return 1
	}
	return -1
}

// snakeOrder returns a boustrophedon Hamiltonian ordering: row 0
// left-to-right, row 1 right-to-left, and so on. Consecutive nodes are
// physically adjacent; only the closing edge of the ring may be multi-hop
// (single-hop on a torus with an even row count).
func snakeOrder(nx, ny int) []NodeID {
	order := make([]NodeID, 0, nx*ny)
	for y := 0; y < ny; y++ {
		if y%2 == 0 {
			for x := 0; x < nx; x++ {
				order = append(order, NodeID(y*nx+x))
			}
		} else {
			for x := nx - 1; x >= 0; x-- {
				order = append(order, NodeID(y*nx+x))
			}
		}
	}
	return order
}
