package topology

import "fmt"

// CustomBuilder assembles a user-defined direct or indirect topology, the
// §VII-B "general purpose cluster networks or public clouds if the network
// topology is provided or can be probed" case.
type CustomBuilder struct {
	b      *builder
	frozen bool
}

// NewCustom starts a custom topology with the given number of end nodes
// and switches. Switches may be zero for a direct network.
func NewCustom(name string, nodes, switches int) *CustomBuilder {
	if nodes < 1 {
		panic("topology: custom topology needs at least one node")
	}
	class := Direct
	if switches > 0 {
		class = Indirect
	}
	return &CustomBuilder{b: newBuilder(name, class, nodes, switches)}
}

// SwitchVertex converts a switch index to the vertex id to use with Link.
func (c *CustomBuilder) SwitchVertex(s int) int { return c.b.t.SwitchVertex(s) }

// Link adds a full-duplex cable between two vertices.
func (c *CustomBuilder) Link(a, b int, cfg LinkConfig) *CustomBuilder {
	if c.frozen {
		panic("topology: CustomBuilder used after Build")
	}
	if a == b {
		panic("topology: self-link")
	}
	c.b.addDuplex(a, b, cfg)
	return c
}

// DirectedLink adds a single directed link, for asymmetric-bandwidth
// networks.
func (c *CustomBuilder) DirectedLink(src, dst int, cfg LinkConfig) *CustomBuilder {
	if c.frozen {
		panic("topology: CustomBuilder used after Build")
	}
	c.b.addLink(src, dst, cfg)
	return c
}

// Build finalizes the topology. Routing uses per-pair BFS shortest paths
// computed on demand; pass nil to keep that default or supply a custom
// routing function.
func (c *CustomBuilder) Build() (*Topology, error) {
	c.frozen = true
	t := c.b.t
	t.route = bfsRoute
	// Validate reachability between all node pairs.
	for s := 0; s < t.nodes; s++ {
		for d := 0; d < t.nodes; d++ {
			if s == d {
				continue
			}
			if bfsRoute(t, NodeID(s), NodeID(d)) == nil {
				return nil, fmt.Errorf(
					"topology %s: node %d cannot reach node %d", t.name, s, d)
			}
		}
	}
	return t, nil
}

// BuildUnchecked finalizes the topology without the all-pairs
// reachability validation. Deliberately-disconnected fabrics are useful
// for fault experiments and for testing how planners report partitions;
// anything routed across a partition simply gets no path, and planners
// are expected to diagnose that themselves.
func (c *CustomBuilder) BuildUnchecked() *Topology {
	c.frozen = true
	t := c.b.t
	t.route = bfsRoute
	return t
}

// bfsRoute finds a shortest hop-count path, deterministically preferring
// lower link ids. In a direct network every node has an integrated router
// and forwards traffic; in a switch-based network only switches forward,
// so paths never relay through a third end node.
func bfsRoute(t *Topology, src, dst NodeID) []LinkID {
	prev := make([]LinkID, t.Vertices())
	for i := range prev {
		prev[i] = -1
	}
	visited := make([]bool, t.Vertices())
	visited[int(src)] = true
	frontier := []int{int(src)}
	for len(frontier) > 0 && !visited[int(dst)] {
		var next []int
		for _, v := range frontier {
			for _, id := range t.out[v] {
				w := t.links[id].Dst
				if visited[w] {
					continue
				}
				if t.class == Indirect && t.IsNode(w) && w != int(dst) {
					continue // NICs do not forward
				}
				visited[w] = true
				prev[w] = id
				next = append(next, w)
			}
		}
		frontier = next
	}
	if !visited[int(dst)] {
		return nil
	}
	var rev []LinkID
	for v := int(dst); v != int(src); v = t.links[prev[v]].Src {
		rev = append(rev, prev[v])
	}
	path := make([]LinkID, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path
}
