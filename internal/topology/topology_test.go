package topology

import (
	"testing"
	"testing/quick"
)

func cfg() LinkConfig { return DefaultLinkConfig() }

// checkPath verifies a routed path is contiguous from src to dst over
// existing links.
func checkPath(t *testing.T, topo *Topology, src, dst NodeID, path []LinkID) {
	t.Helper()
	if src == dst {
		if path != nil {
			t.Errorf("%s: route(%d,%d) should be nil", topo.Name(), src, dst)
		}
		return
	}
	if len(path) == 0 {
		t.Fatalf("%s: no route %d->%d", topo.Name(), src, dst)
	}
	cur := int(src)
	for _, id := range path {
		l := topo.Link(id)
		if l.Src != cur {
			t.Fatalf("%s: discontiguous path at link %d (%d->%d), cursor %d",
				topo.Name(), id, l.Src, l.Dst, cur)
		}
		cur = l.Dst
	}
	if cur != int(dst) {
		t.Fatalf("%s: path ends at %d, want %d", topo.Name(), cur, dst)
	}
}

func allTopologies() []*Topology {
	custom := NewCustom("tri", 3, 0)
	custom.Link(0, 1, cfg()).Link(1, 2, cfg()).Link(2, 0, cfg())
	tri, err := custom.Build()
	if err != nil {
		panic(err)
	}
	return []*Topology{
		Mesh(2, 2, cfg()),
		Mesh(4, 4, cfg()),
		Mesh(3, 5, cfg()),
		Torus(4, 4, cfg()),
		Torus(8, 4, cfg()),
		FatTree(4, 4, 4, cfg()),
		FatTree(8, 8, 8, cfg()),
		BiGraph(4, 4, cfg()),
		BiGraph(8, 4, cfg()),
		tri,
	}
}

// TestRoutesAreValid checks every node pair on every topology.
func TestRoutesAreValid(t *testing.T) {
	for _, topo := range allTopologies() {
		for s := 0; s < topo.Nodes(); s++ {
			for d := 0; d < topo.Nodes(); d++ {
				checkPath(t, topo, NodeID(s), NodeID(d), topo.Route(NodeID(s), NodeID(d)))
			}
		}
	}
}

// TestRoutesAvoidNodeRelay checks that no route passes through a third end
// node (accelerators do not forward traffic).
func TestRoutesAvoidNodeRelay(t *testing.T) {
	for _, topo := range allTopologies() {
		if topo.Class() != Indirect {
			continue
		}
		for s := 0; s < topo.Nodes(); s++ {
			for d := 0; d < topo.Nodes(); d++ {
				path := topo.Route(NodeID(s), NodeID(d))
				for i, id := range path {
					v := topo.Link(id).Dst
					if i < len(path)-1 && topo.IsNode(v) {
						t.Fatalf("%s: route %d->%d relays through node %d", topo.Name(), s, d, v)
					}
				}
			}
		}
	}
}

// TestTorusShortestPaths checks dimension-order routing takes the shorter
// wrap direction: no hop count exceeds nx/2 + ny/2.
func TestTorusShortestPaths(t *testing.T) {
	topo := Torus(8, 8, cfg())
	if d := topo.Diameter(); d != 8 {
		t.Errorf("torus-8x8 diameter = %d, want 8", d)
	}
	topo = Torus(4, 4, cfg())
	if d := topo.Diameter(); d != 4 {
		t.Errorf("torus-4x4 diameter = %d, want 4", d)
	}
}

func TestMeshDiameter(t *testing.T) {
	if d := Mesh(4, 4, cfg()).Diameter(); d != 6 {
		t.Errorf("mesh-4x4 diameter = %d, want 6", d)
	}
}

// TestGridProperties is a property test over random grid sizes.
func TestGridProperties(t *testing.T) {
	f := func(a, b uint8, wrap bool) bool {
		nx := 2 + int(a)%6
		ny := 2 + int(b)%6
		var topo *Topology
		if wrap {
			topo = Torus(nx, ny, cfg())
		} else {
			topo = Mesh(nx, ny, cfg())
		}
		if topo.Nodes() != nx*ny || topo.Switches() != 0 {
			return false
		}
		// Snake order visits each node once, adjacent consecutive.
		order := topo.RingOrder()
		seen := map[NodeID]bool{}
		for i, n := range order {
			if seen[n] {
				return false
			}
			seen[n] = true
			if i > 0 {
				if hops := len(topo.Route(order[i-1], n)); hops != 1 {
					return false
				}
			}
		}
		// Y-first adjacency preference: the first out-link of an interior
		// node moves in Y.
		if nx >= 3 && ny >= 3 {
			center := NodeID((ny/2)*nx + nx/2)
			first := topo.Link(topo.Out(int(center))[0])
			cs, _ := topo.NodeCoord(center)
			cd, _ := topo.NodeCoord(NodeID(first.Dst))
			if cd.X != cs.X {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReverseLinkProperties: reversing twice is identity; parallel links
// reverse to distinct links.
func TestReverseLinkProperties(t *testing.T) {
	for _, topo := range allTopologies() {
		for _, l := range topo.Links() {
			r := topo.Link(topo.ReverseLink(l))
			if r.Src != l.Dst || r.Dst != l.Src {
				t.Fatalf("%s: reverse of %d is not opposite", topo.Name(), l.ID)
			}
			if rr := topo.ReverseLink(r); rr != l.ID {
				t.Fatalf("%s: double reverse of %d gives %d", topo.Name(), l.ID, rr)
			}
		}
	}
	// Multigraph trunk: two parallel links get two distinct reverses.
	c := NewCustom("trunk", 2, 0)
	c.Link(0, 1, cfg()).Link(0, 1, cfg())
	topo, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	var fwd []Link
	for _, l := range topo.Links() {
		if l.Src == 0 {
			fwd = append(fwd, l)
		}
	}
	if len(fwd) != 2 {
		t.Fatalf("trunk has %d forward links, want 2", len(fwd))
	}
	if topo.ReverseLink(fwd[0]) == topo.ReverseLink(fwd[1]) {
		t.Error("parallel links share a reverse link")
	}
}

func TestFatTreeStructure(t *testing.T) {
	topo := FatTree(4, 4, 4, cfg())
	if topo.Nodes() != 16 || topo.Switches() != 8 {
		t.Fatalf("fattree(4,4,4): %d nodes %d switches", topo.Nodes(), topo.Switches())
	}
	// Same-leaf routes stay within the leaf: 2 links.
	if hops := len(topo.Route(0, 1)); hops != 2 {
		t.Errorf("same-leaf route has %d hops, want 2", hops)
	}
	// Cross-leaf routes go node-leaf-spine-leaf-node: 4 links.
	if hops := len(topo.Route(0, 15)); hops != 4 {
		t.Errorf("cross-leaf route has %d hops, want 4", hops)
	}
}

func TestBiGraphStructure(t *testing.T) {
	topo := BiGraph(4, 4, cfg())
	if topo.Nodes() != 32 || topo.Switches() != 8 {
		t.Fatalf("bigraph(4,4): %d nodes %d switches", topo.Nodes(), topo.Switches())
	}
	// Opposite-layer nodes: node-switch-switch-node = 3 links.
	if hops := len(topo.Route(0, 1)); hops != 3 {
		t.Errorf("cross-layer route has %d hops, want 3", hops)
	}
	// Same-switch nodes: 2 links through the shared switch.
	if hops := len(topo.Route(0, 2)); hops != 2 {
		t.Errorf("same-switch route has %d hops, want 2", hops)
	}
}

func TestCustomBuilderErrors(t *testing.T) {
	c := NewCustom("broken", 3, 0)
	c.Link(0, 1, cfg())
	if _, err := c.Build(); err == nil {
		t.Error("disconnected topology built without error")
	}
	defer func() {
		if recover() == nil {
			t.Error("self-link did not panic")
		}
	}()
	NewCustom("self", 2, 0).Link(1, 1, cfg())
}

func TestPathLatency(t *testing.T) {
	topo := Mesh(4, 4, cfg())
	path := topo.Route(0, 3) // 3 hops along the top row
	if got := topo.PathLatency(path); got != 450 {
		t.Errorf("PathLatency = %d, want 450", got)
	}
}

func TestVertexName(t *testing.T) {
	topo := FatTree(2, 2, 2, cfg())
	if topo.VertexName(0) != "n0" {
		t.Errorf("VertexName(0) = %s", topo.VertexName(0))
	}
	if topo.VertexName(topo.SwitchVertex(1)) != "s1" {
		t.Errorf("switch name = %s", topo.VertexName(topo.SwitchVertex(1)))
	}
}
