package topology

import "fmt"

// BiGraph builds the EFLOPS two-stage fully connected switch fabric: two
// layers of `perLayer` switches with a full bipartite interconnect between
// the layers, and `nodesPerSwitch` end nodes attached to every switch. The
// paper's 32-node "4x8" BiGraph is BiGraph(4, 4) (4 switches per layer,
// 4 nodes per switch = 8 switches, 32 nodes) and the 64-node "4x16" is
// BiGraph(8, 4).
//
// Node ids interleave the layers so that even nodes attach to upper
// switches and odd nodes attach to lower switches: node 2i+0 is the i-th
// upper-layer node, node 2i+1 the i-th lower-layer node. This layout makes
// the HDRM popcount rank mapping (internal/hdrm) a pure rank permutation.
//
// Routing between nodes on opposite layers takes the single bipartite link
// between their switches; between same-layer nodes it relays through the
// opposite-layer switch with the same index (or index+1 when the two nodes
// share a switch is not needed: same-switch pairs route through the shared
// switch directly).
func BiGraph(perLayer, nodesPerSwitch int, cfg LinkConfig) *Topology {
	if perLayer < 1 || nodesPerSwitch < 1 {
		panic("topology: bigraph parameters must be positive")
	}
	n := 2 * perLayer * nodesPerSwitch
	b := newBuilder(fmt.Sprintf("bigraph-%dn", n), Indirect, n, 2*perLayer)
	t := b.t
	upper := func(i int) int { return t.SwitchVertex(i) }
	lower := func(i int) int { return t.SwitchVertex(perLayer + i) }
	// Node <-> switch NIC links. Even nodes upper, odd nodes lower.
	for node := 0; node < n; node++ {
		b.addDuplex(node, bigraphSwitch(t, perLayer, nodesPerSwitch, node), cfg)
	}
	// Full bipartite inter-layer links.
	for u := 0; u < perLayer; u++ {
		for l := 0; l < perLayer; l++ {
			b.addDuplex(upper(u), lower(l), cfg)
		}
	}
	t.route = func(t *Topology, src, dst NodeID) []LinkID {
		srcSw := bigraphSwitch(t, perLayer, nodesPerSwitch, int(src))
		dstSw := bigraphSwitch(t, perLayer, nodesPerSwitch, int(dst))
		path := []LinkID{t.linkBetween(int(src), srcSw)}
		switch {
		case srcSw == dstSw:
			// Same switch: one hop through it.
		case (int(src)%2 == 0) != (int(dst)%2 == 0):
			// Opposite layers: the direct bipartite link.
			path = append(path, t.linkBetween(srcSw, dstSw))
		default:
			// Same layer: relay via the opposite-layer switch with the
			// source switch's index.
			var relay int
			idx := (srcSw - t.nodes) % perLayer
			if int(src)%2 == 0 {
				relay = lower(idx)
			} else {
				relay = upper(idx)
			}
			path = append(path,
				t.linkBetween(srcSw, relay),
				t.linkBetween(relay, dstSw))
		}
		return append(path, t.linkBetween(dstSw, int(dst)))
	}
	// Ring embedding: switch-major order so consecutive nodes share a
	// switch where possible.
	order := make([]NodeID, 0, n)
	for s := 0; s < 2*perLayer; s++ {
		for k := 0; k < nodesPerSwitch; k++ {
			layerIdx := s % perLayer
			slot := layerIdx*nodesPerSwitch + k
			if s < perLayer {
				order = append(order, NodeID(2*slot))
			} else {
				order = append(order, NodeID(2*slot+1))
			}
		}
	}
	t.ringOrder = order
	return t
}

// bigraphSwitch returns the switch vertex a node attaches to.
func bigraphSwitch(t *Topology, perLayer, nodesPerSwitch, node int) int {
	slot := node / 2 // position among this layer's nodes
	swIdx := slot / nodesPerSwitch
	if node%2 == 0 {
		return t.SwitchVertex(swIdx)
	}
	return t.SwitchVertex(perLayer + swIdx)
}
