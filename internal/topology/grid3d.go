package topology

import "fmt"

// Torus3D builds an nx-by-ny-by-nz 3D torus — the pod fabric of newer
// TPU generations. Node (x, y, z) is id (z*ny + y)*nx + x. Out-links are
// ordered Z, then Y, then X, extending the paper's
// higher-dimension-first allocation preference to three dimensions.
// MultiTree needs no changes to schedule on it (§VII's generality claim);
// 2D-Ring does not apply.
func Torus3D(nx, ny, nz int, cfg LinkConfig) *Topology {
	return grid3d(fmt.Sprintf("torus3d-%dx%dx%d", nx, ny, nz), nx, ny, nz, true, cfg)
}

// Mesh3D builds an nx-by-ny-by-nz 3D mesh.
func Mesh3D(nx, ny, nz int, cfg LinkConfig) *Topology {
	return grid3d(fmt.Sprintf("mesh3d-%dx%dx%d", nx, ny, nz), nx, ny, nz, false, cfg)
}

func grid3d(name string, nx, ny, nz int, wrap bool, cfg LinkConfig) *Topology {
	if nx < 2 || ny < 2 || nz < 2 {
		panic("topology: 3D grid dimensions must be at least 2x2x2")
	}
	b := newBuilder(name, Direct, nx*ny*nz, 0)
	t := b.t
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	// One pass per dimension, highest dimension first, +dir then -dir,
	// mirroring the 2D grid builder's preference order.
	type dim struct{ dx, dy, dz, n int }
	dims := []dim{{0, 0, 1, nz}, {0, 1, 0, ny}, {1, 0, 0, nx}}
	for _, d := range dims {
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					v := id(x, y, z)
					cur := x*d.dx + y*d.dy + z*d.dz
					if cur+1 < d.n {
						b.addLink(v, id(x+d.dx, y+d.dy, z+d.dz), cfg)
					} else if wrap && d.n > 2 {
						// Only the active dimension overflows; mod is a
						// no-op on the others.
						b.addLink(v, id((x+d.dx)%nx, (y+d.dy)%ny, (z+d.dz)%nz), cfg)
					}
					if cur > 0 {
						b.addLink(v, id(x-d.dx, y-d.dy, z-d.dz), cfg)
					} else if wrap && d.n > 2 {
						b.addLink(v, id((x-d.dx+nx)%nx, (y-d.dy+ny)%ny, (z-d.dz+nz)%nz), cfg)
					}
				}
			}
		}
	}
	t.route = func(t *Topology, src, dst NodeID) []LinkID {
		return grid3dRoute(t, nx, ny, nz, wrap, src, dst)
	}
	t.ringOrder = snake3D(nx, ny, nz)
	return t
}

// grid3dRoute implements X-then-Y-then-Z dimension-order routing with
// shortest wrap selection on tori.
func grid3dRoute(t *Topology, nx, ny, nz int, wrap bool, src, dst NodeID) []LinkID {
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	sx, sy, sz := int(src)%nx, int(src)/nx%ny, int(src)/(nx*ny)
	dx, dy, dz := int(dst)%nx, int(dst)/nx%ny, int(dst)/(nx*ny)
	var path []LinkID
	step := func(cx, cy, cz, mx, my, mz int) (int, int, int) {
		nxt := id(mod(cx+mx, nx), mod(cy+my, ny), mod(cz+mz, nz))
		path = append(path, t.linkBetween(id(cx, cy, cz), nxt))
		return mod(cx+mx, nx), mod(cy+my, ny), mod(cz+mz, nz)
	}
	for sx != dx {
		sx, sy, sz = step(sx, sy, sz, gridDir(sx, dx, nx, wrap), 0, 0)
	}
	for sy != dy {
		sx, sy, sz = step(sx, sy, sz, 0, gridDir(sy, dy, ny, wrap), 0)
	}
	for sz != dz {
		sx, sy, sz = step(sx, sy, sz, 0, 0, gridDir(sz, dz, nz, wrap))
	}
	return path
}

// snake3D stacks 2D boustrophedon planes, alternating plane traversal
// direction, so consecutive ring neighbors stay physically adjacent.
func snake3D(nx, ny, nz int) []NodeID {
	var order []NodeID
	plane := snakeOrder(nx, ny)
	for z := 0; z < nz; z++ {
		if z%2 == 0 {
			for _, n := range plane {
				order = append(order, NodeID(z*nx*ny)+n)
			}
		} else {
			for i := len(plane) - 1; i >= 0; i-- {
				order = append(order, NodeID(z*nx*ny)+plane[i])
			}
		}
	}
	return order
}
