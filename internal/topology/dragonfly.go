package topology

import "fmt"

// Dragonfly builds the canonical dragonfly of Kim et al., the large-scale
// low-diameter fabric class the paper's §VII points MultiTree toward:
// `groups` groups of `routersPerGroup` routers, each router hosting
// `nodesPerRouter` accelerators; routers within a group are completely
// connected, and every router owns global links so that each group pair
// is joined by at least one global channel.
//
// Global link assignment is the standard arrangement: group g's router r
// connects to the group whose index is g's r-th "other group" (one global
// port per router when routersPerGroup >= groups-1).
func Dragonfly(groups, routersPerGroup, nodesPerRouter int, cfg LinkConfig) *Topology {
	if groups < 2 || routersPerGroup < 1 || nodesPerRouter < 1 {
		panic("topology: dragonfly parameters must be positive (>= 2 groups)")
	}
	if routersPerGroup < groups-1 {
		panic("topology: dragonfly needs routersPerGroup >= groups-1 for full global connectivity")
	}
	n := groups * routersPerGroup * nodesPerRouter
	b := newBuilder(fmt.Sprintf("dragonfly-%dn", n), Indirect, n, groups*routersPerGroup)
	t := b.t
	router := func(g, r int) int { return t.SwitchVertex(g*routersPerGroup + r) }
	// Node <-> router NIC links.
	for node := 0; node < n; node++ {
		g := node / (routersPerGroup * nodesPerRouter)
		r := node / nodesPerRouter % routersPerGroup
		b.addDuplex(node, router(g, r), cfg)
	}
	// Intra-group complete graph.
	for g := 0; g < groups; g++ {
		for r1 := 0; r1 < routersPerGroup; r1++ {
			for r2 := r1 + 1; r2 < routersPerGroup; r2++ {
				b.addDuplex(router(g, r1), router(g, r2), cfg)
			}
		}
	}
	// Global links: group g's router r reaches peer group p = the r-th
	// group other than g; the peer's inbound port is chosen symmetrically,
	// adding each global channel once (from the lower group id).
	peerOf := func(g, r int) int {
		p := r
		if p >= g {
			p++
		}
		return p
	}
	portFor := func(g, p int) int {
		r := p
		if r > g {
			r--
		}
		return r
	}
	for g := 0; g < groups; g++ {
		for r := 0; r < groups-1; r++ {
			p := peerOf(g, r)
			if p < g {
				continue // added from the other side
			}
			b.addDuplex(router(g, r), router(p, portFor(p, g)), cfg)
		}
	}
	t.route = func(t *Topology, src, dst NodeID) []LinkID {
		return dragonflyRoute(t, groups, routersPerGroup, nodesPerRouter, src, dst, portFor)
	}
	// Ring embedding: node ids are already group/router-major.
	return t
}

// dragonflyRoute performs minimal routing: local hop(s) to the router
// holding the right global port, one global hop, local hop(s) to the
// destination router.
func dragonflyRoute(t *Topology, groups, rpg, npr int, src, dst NodeID, portFor func(g, p int) int) []LinkID {
	router := func(g, r int) int { return t.SwitchVertex(g*rpg + r) }
	sg, sr := int(src)/(rpg*npr), int(src)/npr%rpg
	dg, dr := int(dst)/(rpg*npr), int(dst)/npr%rpg
	path := []LinkID{t.linkBetween(int(src), router(sg, sr))}
	cur := router(sg, sr)
	hopTo := func(v int) {
		if v != cur {
			path = append(path, t.linkBetween(cur, v))
			cur = v
		}
	}
	if sg != dg {
		out := router(sg, portFor(sg, dg))
		hopTo(out)
		hopTo(router(dg, portFor(dg, sg)))
	}
	hopTo(router(dg, dr))
	path = append(path, t.linkBetween(cur, int(dst)))
	return path
}
