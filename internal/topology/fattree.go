package topology

import "fmt"

// FatTree builds a two-level fat tree: `leaves` leaf switches each hosting
// `nodesPerLeaf` end nodes, and `spines` root switches, with one
// full-duplex cable between every (leaf, spine) pair. The 16-node DGX-2
// -like network of the paper is FatTree(4, 4, 4); the 64-node 8-ary
// two-level fat tree is FatTree(8, 8, 8).
//
// Routing is deterministic up/down with destination-mod-k spine selection,
// the standard D-mod-k scheme that spreads flows across spines without
// adaptivity.
func FatTree(leaves, nodesPerLeaf, spines int, cfg LinkConfig) *Topology {
	if leaves < 1 || nodesPerLeaf < 1 || spines < 1 {
		panic("topology: fat-tree parameters must be positive")
	}
	n := leaves * nodesPerLeaf
	b := newBuilder(fmt.Sprintf("fattree-%dn", n), Indirect, n, leaves+spines)
	t := b.t
	leafVertex := func(l int) int { return t.SwitchVertex(l) }
	spineVertex := func(s int) int { return t.SwitchVertex(leaves + s) }
	// Node <-> leaf NIC links.
	for node := 0; node < n; node++ {
		b.addDuplex(node, leafVertex(node/nodesPerLeaf), cfg)
	}
	// Leaf <-> spine links.
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			b.addDuplex(leafVertex(l), spineVertex(s), cfg)
		}
	}
	t.route = func(t *Topology, src, dst NodeID) []LinkID {
		srcLeaf := leafVertex(int(src) / nodesPerLeaf)
		dstLeaf := leafVertex(int(dst) / nodesPerLeaf)
		path := []LinkID{t.linkBetween(int(src), srcLeaf)}
		if srcLeaf != dstLeaf {
			spine := spineVertex(int(dst) % spines)
			path = append(path,
				t.linkBetween(srcLeaf, spine),
				t.linkBetween(spine, dstLeaf))
		}
		return append(path, t.linkBetween(dstLeaf, int(dst)))
	}
	// Ring embedding: node ids are already leaf-major, so consecutive ring
	// neighbors share a leaf switch except at leaf boundaries.
	return t
}
