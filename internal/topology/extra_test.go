package topology

import "testing"

func TestTorus3DStructure(t *testing.T) {
	topo := Torus3D(4, 4, 4, cfg())
	if topo.Nodes() != 64 || topo.Switches() != 0 {
		t.Fatalf("torus3d-4x4x4: %d nodes %d switches", topo.Nodes(), topo.Switches())
	}
	// Every node has 6 out-links on a wrapped 4^3 torus.
	for v := 0; v < topo.Nodes(); v++ {
		if deg := len(topo.Out(v)); deg != 6 {
			t.Fatalf("node %d has degree %d, want 6", v, deg)
		}
	}
	if d := topo.Diameter(); d != 6 {
		t.Errorf("diameter = %d, want 6 (2+2+2)", d)
	}
}

func TestMesh3DStructure(t *testing.T) {
	topo := Mesh3D(2, 3, 4, cfg())
	if topo.Nodes() != 24 {
		t.Fatalf("mesh3d-2x3x4: %d nodes", topo.Nodes())
	}
	if d := topo.Diameter(); d != 1+2+3 {
		t.Errorf("diameter = %d, want 6", d)
	}
}

func TestGrid3DRoutesValid(t *testing.T) {
	for _, topo := range []*Topology{
		Torus3D(3, 3, 3, cfg()),
		Mesh3D(2, 3, 2, cfg()),
	} {
		for s := 0; s < topo.Nodes(); s++ {
			for d := 0; d < topo.Nodes(); d++ {
				checkPath(t, topo, NodeID(s), NodeID(d), topo.Route(NodeID(s), NodeID(d)))
			}
		}
	}
}

func TestSnake3DIsHamiltonianPath(t *testing.T) {
	topo := Torus3D(4, 4, 2, cfg())
	order := topo.RingOrder()
	seen := map[NodeID]bool{}
	for i, n := range order {
		if seen[n] {
			t.Fatalf("node %d visited twice", n)
		}
		seen[n] = true
		if i > 0 {
			if hops := len(topo.Route(order[i-1], n)); hops != 1 {
				t.Fatalf("snake3d neighbors %d->%d are %d hops apart", order[i-1], n, hops)
			}
		}
	}
	if len(seen) != topo.Nodes() {
		t.Fatalf("snake visits %d of %d nodes", len(seen), topo.Nodes())
	}
}

func TestDragonflyStructure(t *testing.T) {
	topo := Dragonfly(4, 4, 2, cfg()) // 32 nodes, 16 routers
	if topo.Nodes() != 32 || topo.Switches() != 16 {
		t.Fatalf("dragonfly: %d nodes %d switches", topo.Nodes(), topo.Switches())
	}
	for s := 0; s < topo.Nodes(); s++ {
		for d := 0; d < topo.Nodes(); d++ {
			path := topo.Route(NodeID(s), NodeID(d))
			checkPath(t, topo, NodeID(s), NodeID(d), path)
			// Minimal routing: at most NIC + 2 local + 1 global + NIC.
			if s != d && len(path) > 5 {
				t.Fatalf("route %d->%d has %d hops", s, d, len(path))
			}
		}
	}
}

func TestDragonflyRejectsUnderProvisioned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("under-provisioned dragonfly did not panic")
		}
	}()
	Dragonfly(8, 2, 1, cfg()) // 2 routers cannot reach 7 peer groups
}
