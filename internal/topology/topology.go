// Package topology models the interconnection networks evaluated in the
// paper: 2D Torus, 2D Mesh (direct networks, TPU-pod-like), two-level
// Fat-Tree (DGX-2-like) and BiGraph (EFLOPS), plus user-defined custom
// topologies.
//
// A topology is a directed multigraph over vertices. Vertices 0..N-1 are
// end nodes (accelerators); vertices N..N+S-1 are switches. Direct networks
// have no switch vertices: each accelerator's on-chip router is the node
// vertex itself. Every physical cable is represented by a pair of directed
// links, one per direction, each with its own bandwidth and latency, so
// full-duplex links and heterogeneous-bandwidth multigraphs (§VII-B) fall
// out naturally: a wider link is simply several parallel Link entries.
package topology

import (
	"fmt"
	"sync"

	"multitree/internal/sim"
)

// NodeID identifies an end node (accelerator), 0..N-1.
type NodeID int

// LinkID indexes a directed link within a Topology.
type LinkID int

// Link is a directed physical channel between two vertices.
type Link struct {
	ID        LinkID
	Src, Dst  int     // vertex ids
	Bandwidth float64 // bytes per cycle
	Latency   sim.Time
}

// LinkConfig carries the per-link parameters of Table III.
type LinkConfig struct {
	Bandwidth float64  // bytes per cycle (16 GB/s at 1 GHz = 16 B/cycle)
	Latency   sim.Time // cycles (150 ns at 1 GHz = 150 cycles)
}

// DefaultLinkConfig matches Table III of the paper.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{Bandwidth: 16, Latency: 150}
}

// Class distinguishes direct networks (node routers connected to each
// other) from indirect, switch-based networks.
type Class int

const (
	// Direct means every vertex is an end node with an integrated router.
	Direct Class = iota
	// Indirect means end nodes attach to switches via NIC links.
	Indirect
)

func (c Class) String() string {
	if c == Direct {
		return "direct"
	}
	return "indirect"
}

// Topology is an immutable interconnection network description.
type Topology struct {
	name     string
	class    Class
	nodes    int
	switches int
	links    []Link
	out      [][]LinkID // vertex -> outgoing links, in preference order
	in       [][]LinkID // vertex -> incoming links

	// coords holds (x, y) per node for grid topologies; nil otherwise.
	coords []Coord
	nx, ny int

	// route computes the link path between two end nodes.
	route func(t *Topology, src, dst NodeID) []LinkID

	// ringOrder is the preferred Hamiltonian embedding for ring-based
	// algorithms; nil means identity order.
	ringOrder []NodeID

	// reverseOf pairs each directed link with its opposite, built lazily.
	reverseOnce sync.Once
	reverseOf   []LinkID
}

// Coord is a 2D grid coordinate for Mesh and Torus nodes.
type Coord struct{ X, Y int }

// Name returns a human-readable topology name, e.g. "torus-8x8".
func (t *Topology) Name() string { return t.name }

// Class reports whether the network is direct or switch-based.
func (t *Topology) Class() Class { return t.class }

// Nodes returns the number of end nodes (accelerators).
func (t *Topology) Nodes() int { return t.nodes }

// Switches returns the number of switch vertices.
func (t *Topology) Switches() int { return t.switches }

// Vertices returns the total vertex count (nodes + switches).
func (t *Topology) Vertices() int { return t.nodes + t.switches }

// Links returns all directed links. The returned slice must not be
// modified.
func (t *Topology) Links() []Link { return t.links }

// Link returns the link with the given id.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Out returns the outgoing links of a vertex in the topology's preference
// order (Y-dimension first for grids, as Algorithm 1 requires).
func (t *Topology) Out(vertex int) []LinkID { return t.out[vertex] }

// In returns the incoming links of a vertex.
func (t *Topology) In(vertex int) []LinkID { return t.in[vertex] }

// IsNode reports whether a vertex is an end node.
func (t *Topology) IsNode(vertex int) bool { return vertex < t.nodes }

// SwitchVertex converts a switch index (0-based) to its vertex id.
func (t *Topology) SwitchVertex(s int) int { return t.nodes + s }

// NodeCoord returns the grid coordinate of a node in a Mesh or Torus and
// whether coordinates are available for this topology.
func (t *Topology) NodeCoord(n NodeID) (Coord, bool) {
	if t.coords == nil {
		return Coord{}, false
	}
	return t.coords[n], true
}

// GridDims returns (nx, ny) for grid topologies, or (0, 0).
func (t *Topology) GridDims() (nx, ny int) { return t.nx, t.ny }

// VertexName renders a vertex id for diagnostics: "n3" or "s1".
func (t *Topology) VertexName(v int) string {
	if t.IsNode(v) {
		return fmt.Sprintf("n%d", v)
	}
	return fmt.Sprintf("s%d", v-t.nodes)
}

// Route returns the directed link path from src to dst end nodes using the
// topology's deterministic routing function (dimension-order for grids,
// destination-mod-k up/down for Fat-Tree, layer-crossing for BiGraph).
// It returns nil when src == dst.
func (t *Topology) Route(src, dst NodeID) []LinkID {
	if src == dst {
		return nil
	}
	return t.route(t, src, dst)
}

// RingOrder returns a Hamiltonian ordering of the nodes suitable for
// embedding ring algorithms: a boustrophedon snake for grids and a
// switch-major order for indirect networks.
func (t *Topology) RingOrder() []NodeID {
	if t.ringOrder == nil {
		order := make([]NodeID, t.nodes)
		for i := range order {
			order[i] = NodeID(i)
		}
		return order
	}
	out := make([]NodeID, len(t.ringOrder))
	copy(out, t.ringOrder)
	return out
}

// PathLatency sums the link latencies along a path.
func (t *Topology) PathLatency(path []LinkID) sim.Time {
	var total sim.Time
	for _, id := range path {
		total += t.links[id].Latency
	}
	return total
}

// Diameter returns the maximum over node pairs of routed hop count. It is
// O(N^2) and intended for analysis and tests, not inner loops.
func (t *Topology) Diameter() int {
	max := 0
	for s := 0; s < t.nodes; s++ {
		for d := 0; d < t.nodes; d++ {
			if hops := len(t.Route(NodeID(s), NodeID(d))); hops > max {
				max = hops
			}
		}
	}
	return max
}

// builder accumulates links during topology construction.
type builder struct {
	t *Topology
}

func newBuilder(name string, class Class, nodes, switches int) *builder {
	t := &Topology{
		name:     name,
		class:    class,
		nodes:    nodes,
		switches: switches,
		out:      make([][]LinkID, nodes+switches),
		in:       make([][]LinkID, nodes+switches),
	}
	return &builder{t: t}
}

// addLink appends one directed link and returns its id.
func (b *builder) addLink(src, dst int, cfg LinkConfig) LinkID {
	id := LinkID(len(b.t.links))
	b.t.links = append(b.t.links, Link{
		ID: id, Src: src, Dst: dst,
		Bandwidth: cfg.Bandwidth, Latency: cfg.Latency,
	})
	b.t.out[src] = append(b.t.out[src], id)
	b.t.in[dst] = append(b.t.in[dst], id)
	return id
}

// addDuplex appends the two directed links of a full-duplex cable.
func (b *builder) addDuplex(a, c int, cfg LinkConfig) {
	b.addLink(a, c, cfg)
	b.addLink(c, a, cfg)
}

// ReverseLink returns the id of a directed link running opposite to l.
// Parallel links between the same vertex pair (multigraph trunks) are
// matched by multiplicity, so reversing two distinct forward links yields
// two distinct reverse links. Every built-in topology adds links in
// full-duplex pairs, so the reverse always exists; a custom topology with
// a one-way link panics here, which indicates the schedule tried to
// reverse an irreversible path.
func (t *Topology) ReverseLink(l Link) LinkID {
	t.reverseOnce.Do(t.buildReverse)
	r := t.reverseOf[l.ID]
	if r < 0 {
		panic(fmt.Sprintf("topology %s: link %s->%s has no reverse",
			t.name, t.VertexName(l.Src), t.VertexName(l.Dst)))
	}
	return r
}

// buildReverse pairs opposite-direction links between each vertex pair in
// order of appearance.
func (t *Topology) buildReverse() {
	t.reverseOf = make([]LinkID, len(t.links))
	for i := range t.reverseOf {
		t.reverseOf[i] = -1
	}
	byPair := map[[2]int][]LinkID{}
	for _, l := range t.links {
		key := [2]int{l.Src, l.Dst}
		byPair[key] = append(byPair[key], l.ID)
	}
	for key, fwd := range byPair {
		bwd := byPair[[2]int{key[1], key[0]}]
		for i, id := range fwd {
			if i < len(bwd) {
				t.reverseOf[id] = bwd[i]
			}
		}
	}
}

// linkBetween finds a directed link src->dst; used by deterministic
// routing functions. Panics if absent, which indicates a routing bug.
func (t *Topology) linkBetween(src, dst int) LinkID {
	for _, id := range t.out[src] {
		if t.links[id].Dst == dst {
			return id
		}
	}
	panic(fmt.Sprintf("topology %s: no link %s->%s",
		t.name, t.VertexName(src), t.VertexName(dst)))
}
