package ni_test

import (
	"strings"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/ni"
	"multitree/internal/topology"
)

func compile(t *testing.T, topo *topology.Topology) *ni.Tables {
	t.Helper()
	trees, err := core.BuildTrees(topo, core.Options{})
	if err != nil {
		t.Fatalf("BuildTrees(%s): %v", topo.Name(), err)
	}
	tables, err := ni.Compile(trees, topo.Nodes())
	if err != nil {
		t.Fatalf("Compile(%s): %v", topo.Name(), err)
	}
	return tables
}

// TestTablesDriveCorrectAllReduce runs the Fig. 6 state machine over the
// compiled tables on every topology class and checks that tables alone
// produce a complete reduction at every node.
func TestTablesDriveCorrectAllReduce(t *testing.T) {
	cfg := topology.DefaultLinkConfig()
	for _, topo := range []*topology.Topology{
		topology.Mesh(2, 2, cfg),
		topology.Mesh(4, 4, cfg),
		topology.Torus(4, 4, cfg),
		topology.Torus(4, 8, cfg),
		topology.FatTree(4, 4, 4, cfg),
		topology.BiGraph(4, 4, cfg),
	} {
		tables := compile(t, topo)
		m := ni.NewMachine(tables, topo.Nodes())
		if _, err := m.Run(); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

// TestTableStructure checks the Fig. 5 invariants on the 2x2 Mesh example:
// every node has one Reduce entry per foreign tree and each tree's root
// has Gather entries covering all other nodes.
func TestTableStructure(t *testing.T) {
	topo := topology.Mesh(2, 2, topology.DefaultLinkConfig())
	tables := compile(t, topo)
	if tables.Steps < 2 {
		t.Fatalf("2x2 mesh should need at least 2 steps, got %d", tables.Steps)
	}
	for node, tab := range tables.PerNode {
		reduces := map[int]bool{}
		for _, e := range tab.Entries {
			if e.Op == collective.Reduce {
				reduces[e.FlowID] = true
				if e.Parent == ni.Nil {
					t.Errorf("node %d: reduce entry without parent", node)
				}
			}
			if e.Op != collective.NOP && (e.Step < 1 || e.Step > 2*tables.Steps) {
				t.Errorf("node %d: entry step %d out of range", node, e.Step)
			}
		}
		if len(reduces) != topo.Nodes()-1 {
			t.Errorf("node %d: %d reduce flows, want %d", node, len(reduces), topo.Nodes()-1)
		}
		if reduces[node] {
			t.Errorf("node %d: has a reduce entry for its own tree", node)
		}
	}
}

// TestBind checks DMA descriptor assignment.
func TestBind(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	tables := compile(t, topo)
	const elems = 1003
	tables.Bind(elems, topo.Nodes())
	covered := 0
	seen := map[int]collective.Range{}
	for _, e := range tables.PerNode[0].Entries {
		if e.Op == collective.NOP {
			continue
		}
		r, ok := seen[e.FlowID]
		if !ok {
			seen[e.FlowID] = collective.Range{Off: e.StartAddr, Len: e.Size}
			covered += e.Size
		} else if r.Off != e.StartAddr || r.Len != e.Size {
			t.Errorf("flow %d bound inconsistently", e.FlowID)
		}
	}
	// Node 0 participates in all 16 flows (root of one, member of others).
	if len(seen) != topo.Nodes() {
		t.Errorf("node 0 touches %d flows, want %d", len(seen), topo.Nodes())
	}
	if covered != elems {
		t.Errorf("flows cover %d elems, want %d", covered, elems)
	}
}

// TestHardwareOverhead pins the §V-A estimate: for a 64-node system each
// entry is about 200 bits and the table about 3.2 KB.
func TestHardwareOverhead(t *testing.T) {
	bits := ni.EntryBits(64)
	if bits < 150 || bits > 220 {
		t.Errorf("EntryBits(64) = %d, want roughly 200", bits)
	}
	bytes := ni.TableBytes(64)
	if bytes < 2400 || bytes > 3600 {
		t.Errorf("TableBytes(64) = %d, want about 3200", bytes)
	}
}

// TestTableString spot-checks the Fig. 5 rendering.
func TestTableString(t *testing.T) {
	topo := topology.Mesh(2, 2, topology.DefaultLinkConfig())
	tables := compile(t, topo)
	s := tables.PerNode[0].String()
	for _, want := range []string{"Accelerator 0", "Reduce", "Gather", "Step"} {
		if !strings.Contains(s, want) {
			t.Errorf("table rendering missing %q:\n%s", want, s)
		}
	}
}

// TestWideDependencyChaining exercises the chained-entry path: with the
// paper's literal first-parent allocation on a fat tree, roots collect
// many children per tree, overflowing the 4-slot Children field into
// chained Reduce entries; the machine must still complete.
func TestWideDependencyChaining(t *testing.T) {
	topo := topology.FatTree(4, 4, 4, topology.DefaultLinkConfig())
	trees, err := core.BuildTrees(topo, core.Options{}) // first-parent order
	if err != nil {
		t.Fatal(err)
	}
	maxKids := 0
	for _, tr := range trees {
		for _, kids := range tr.Children() {
			if len(kids) > maxKids {
				maxKids = len(kids)
			}
		}
	}
	if maxKids <= ni.MaxChildren {
		t.Skipf("trees never exceed %d children (max %d); chaining not exercised", ni.MaxChildren, maxKids)
	}
	tables, err := ni.Compile(trees, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	m := ni.NewMachine(tables, topo.Nodes())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCompileShortestPathTrees covers the default indirect-network
// configuration end to end.
func TestCompileShortestPathTrees(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.FatTree(4, 4, 4, topology.DefaultLinkConfig()),
		topology.BiGraph(4, 4, topology.DefaultLinkConfig()),
	} {
		trees, err := core.BuildTrees(topo, core.DefaultOptions(topo))
		if err != nil {
			t.Fatal(err)
		}
		tables, err := ni.Compile(trees, topo.Nodes())
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		m := ni.NewMachine(tables, topo.Nodes())
		if _, err := m.Run(); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}
