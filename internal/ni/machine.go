package ni

import (
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// Machine is a behavioral model of the Fig. 6 schedule-management
// hardware, instantiated for every node: each NI walks its schedule table
// in step order behind a timestep counter, issues Reduce/Gather entries
// once their Parent/Children dependencies clear, and advances past NOPs.
// Gradient values are tracked symbolically as contribution sets, so a run
// proves that the compiled tables alone — with no knowledge of the trees
// that produced them — drive a complete and correct all-reduce.
type Machine struct {
	tables *Tables
	nodes  int
	flows  int

	// Trace, when non-nil, receives EvNIEntryActivated / EvNIDepCleared /
	// EvNILockstep events with the issue round as the timestamp. The
	// behavioral model has no cycle clock, so these live in their own time
	// domain (the exporter keeps them on a separate track group).
	Trace obs.Tracer
	round int

	// cov[node][flow] is the set of original contributions folded into
	// the node's copy of the flow's chunk (bitset by node).
	cov [][]bitset

	// reduceHeard[node][flow] marks children whose Reduce arrived.
	reduceHeard [][]bitset
	// gatherHeard[node][flow] marks a received Gather from the parent.
	gatherHeard [][]bool

	next []int // per node: index of the next table entry to issue
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]>>(i%64)&1 == 1 }
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}
func (b bitset) copyFrom(o bitset) { copy(b, o) }
func (b bitset) full(n int) bool {
	for i := 0; i < n; i++ {
		if !b.has(i) {
			return false
		}
	}
	return true
}

// NewMachine prepares a symbolic run of the compiled tables for an
// n-node, f-flow all-reduce (normally f == n: one tree per node).
func NewMachine(tables *Tables, flows int) *Machine {
	n := len(tables.PerNode)
	m := &Machine{tables: tables, nodes: n, flows: flows}
	m.cov = make([][]bitset, n)
	m.reduceHeard = make([][]bitset, n)
	m.gatherHeard = make([][]bool, n)
	m.next = make([]int, n)
	for i := 0; i < n; i++ {
		m.cov[i] = make([]bitset, flows)
		m.reduceHeard[i] = make([]bitset, flows)
		m.gatherHeard[i] = make([]bool, flows)
		for f := 0; f < flows; f++ {
			m.cov[i][f] = newBitset(n)
			m.cov[i][f].set(i) // own gradient contribution
			m.reduceHeard[i][f] = newBitset(n)
		}
	}
	return m
}

// Run drives all NIs to completion and verifies that every node ends with
// every flow's full reduction. It returns the number of issue rounds
// taken, or an error if the tables deadlock or produce incomplete sums.
func (m *Machine) Run() (int, error) {
	rounds := 0
	for {
		progressed := false
		m.round = rounds
		for node := 0; node < m.nodes; node++ {
			for m.issueNext(node) {
				progressed = true
			}
		}
		rounds++
		if m.done() {
			break
		}
		if !progressed {
			return rounds, fmt.Errorf("ni: schedule tables deadlocked after %d rounds", rounds)
		}
	}
	for node := 0; node < m.nodes; node++ {
		for f := 0; f < m.flows; f++ {
			if !m.cov[node][f].full(m.nodes) {
				return rounds, fmt.Errorf("ni: node %d flow %d incomplete after run", node, f)
			}
		}
	}
	return rounds, nil
}

// done reports whether every table has been fully issued.
func (m *Machine) done() bool {
	for node := range m.next {
		if m.next[node] < len(m.tables.PerNode[node].Entries) {
			return false
		}
	}
	return true
}

// issueNext inspects the head entry of a node's table (step 1 of Fig. 6)
// and issues it if its dependencies are satisfied. Entries issue strictly
// in table order, which the timestep counter enforces in hardware.
func (m *Machine) issueNext(node int) bool {
	t := &m.tables.PerNode[node]
	if m.next[node] >= len(t.Entries) {
		return false
	}
	e := &t.Entries[m.next[node]]
	switch e.Op {
	case collective.NOP:
		// Behavioral model: the lockstep down-counter elapses instantly.
		if m.Trace != nil {
			m.Trace.Emit(obs.Event{
				Kind: obs.EvNILockstep, At: float64(m.round),
				Node: int32(node), Step: int32(e.Step),
			})
		}
		m.next[node]++
		return true
	case collective.Reduce:
		for _, c := range e.Children {
			if c != Nil && !m.reduceHeard[node][e.FlowID].has(int(c)) {
				return false
			}
		}
		// Chained wide-dependency entries: only the last entry of the
		// (flow, step) unit transmits.
		if m.next[node]+1 < len(t.Entries) {
			n := &t.Entries[m.next[node]+1]
			if n.Op == collective.Reduce && n.FlowID == e.FlowID && n.Step == e.Step {
				m.next[node]++
				return true
			}
		}
		m.emitActivated(node, e)
		m.deliverReduce(node, int(e.Parent), e.FlowID)
		m.next[node]++
		return true
	case collective.Gather:
		if e.Parent != Nil && !m.gatherHeard[node][e.FlowID] {
			return false
		}
		if e.Parent == Nil {
			// Root: broadcasting starts once the local reduction logic has
			// heard from every child of this flow — purely local state,
			// as in Fig. 6 step (5).
			for _, c := range m.flowChildren(node, e.FlowID) {
				if !m.reduceHeard[node][e.FlowID].has(int(c)) {
					return false
				}
			}
		}
		m.emitActivated(node, e)
		for _, c := range e.Children {
			if c != Nil {
				m.deliverGather(node, int(c), e.FlowID)
			}
		}
		m.next[node]++
		return true
	}
	return false
}

// emitActivated traces the issue of a Reduce/Gather table entry (step (2)
// of Fig. 6: the timestep counter matched and dependencies cleared).
func (m *Machine) emitActivated(node int, e *Entry) {
	if m.Trace != nil {
		m.Trace.Emit(obs.Event{
			Kind: obs.EvNIEntryActivated, At: float64(m.round),
			Node: int32(node), Flow: int32(e.FlowID), Step: int32(e.Step),
		})
	}
}

// flowChildren returns every child listed in a node's entries for a flow
// — the set whose Reduces its reduction logic must collect.
func (m *Machine) flowChildren(node, flow int) []topology.NodeID {
	var out []topology.NodeID
	for i := range m.tables.PerNode[node].Entries {
		e := &m.tables.PerNode[node].Entries[i]
		if e.FlowID != flow {
			continue
		}
		for _, c := range e.Children {
			if c != Nil {
				out = append(out, c)
			}
		}
	}
	return out
}

// deliverReduce models the receive path (4)-(5) of Fig. 6: aggregation
// then dependency clearing.
func (m *Machine) deliverReduce(from, to, flow int) {
	m.cov[to][flow].or(m.cov[from][flow])
	m.reduceHeard[to][flow].set(from)
	if m.Trace != nil {
		m.Trace.Emit(obs.Event{
			Kind: obs.EvNIDepCleared, At: float64(m.round),
			Node: int32(to), Flow: int32(flow),
		})
	}
}

// deliverGather models the receive path (6): the child's copy is
// overwritten and its parent dependence clears.
func (m *Machine) deliverGather(from, to, flow int) {
	m.cov[to][flow].copyFrom(m.cov[from][flow])
	m.gatherHeard[to][flow] = true
	if m.Trace != nil {
		m.Trace.Emit(obs.Event{
			Kind: obs.EvNIDepCleared, At: float64(m.round),
			Node: int32(to), Flow: int32(flow),
		})
	}
}
