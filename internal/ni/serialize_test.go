package ni_test

import (
	"reflect"
	"testing"

	"multitree/internal/core"
	"multitree/internal/ni"
	"multitree/internal/topology"
)

// TestTableRoundTrip: tables survive the binary load/store path a host
// driver would use, and the reloaded image still drives a correct
// all-reduce through the Fig. 6 machine.
func TestTableRoundTrip(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	trees, err := core.BuildTrees(topo, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := ni.Compile(trees, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	tables.Bind(12345, topo.Nodes())

	blob, err := tables.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded ni.Tables
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tables, &loaded) {
		t.Fatal("tables changed across the binary round trip")
	}
	m := ni.NewMachine(&loaded, topo.Nodes())
	if _, err := m.Run(); err != nil {
		t.Fatalf("reloaded tables misbehave: %v", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var ts ni.Tables
	if err := ts.UnmarshalBinary(nil); err == nil {
		t.Error("empty blob accepted")
	}
	if err := ts.UnmarshalBinary([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}); err == nil {
		t.Error("wrong magic accepted")
	}
	// Valid header, truncated body.
	topo := topology.Mesh(2, 2, topology.DefaultLinkConfig())
	trees, err := core.BuildTrees(topo, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := ni.Compile(trees, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := tables.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.UnmarshalBinary(blob[:len(blob)-5]); err == nil {
		t.Error("truncated blob accepted")
	}
}
