// Package ni models the co-designed network interface of §IV-A: the
// all-reduce schedule table (Fig. 5), and the schedule-management state
// machine of Fig. 6 — timestep counter, lockstep down-counter, opcode
// decoder, and dependency clearing. The tables are compiled from the
// spanning trees Algorithm 1 constructs; one table per node, two entries
// per tree (one Reduce for the reduce-scatter phase, one Gather for the
// all-gather phase), plus NOPs for the steps a node sits out.
package ni

import (
	"fmt"
	"sort"
	"strings"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// MaxChildren is the Children field width of a table entry. The paper
// sizes it as the bandwidth ratio between the network interface and one
// link (4 for the evaluated direct networks).
const MaxChildren = 4

// Nil marks an absent Parent or Children slot.
const Nil topology.NodeID = -1

// Entry is one all-reduce schedule table row (Fig. 5): opcode, tree flow,
// dependency endpoints, issue step, and the DMA descriptor for the
// gradient chunk.
type Entry struct {
	Op       collective.Op
	FlowID   int
	Parent   topology.NodeID
	Children [MaxChildren]topology.NodeID
	Step     int

	// StartAddr and Size describe the gradient chunk in node memory, in
	// elements. They are filled by Bind for a concrete gradient size.
	StartAddr int
	Size      int
}

// childCount returns the number of valid children slots.
func (e *Entry) childCount() int {
	n := 0
	for _, c := range e.Children {
		if c != Nil {
			n++
		}
	}
	return n
}

// Table is one node's all-reduce schedule table.
type Table struct {
	Node    topology.NodeID
	Entries []Entry
}

// Tables holds the per-node tables of a system plus the total step count.
type Tables struct {
	PerNode []Table
	Steps   int // steps per phase (reduce-scatter == all-gather == Steps)
}

// Compile converts the spanning trees of Algorithm 1 into per-node
// schedule tables. For every tree, each non-root node gets one Reduce
// entry (send to parent, after its children's Reduces arrive) and each
// node with children gets one Gather entry per child-step group; NOP
// entries fill the steps a node does not send in, to hold the lockstep.
func Compile(trees []*collective.Tree, nodes int) (*Tables, error) {
	return CompileObserved(trees, nodes, nil)
}

// CompileObserved is Compile bracketed as the ni-compile phase of a
// PlanObserver: phase boundaries plus the compiled entry count (NOPs
// included — they occupy table rows). A nil observer is exactly Compile.
func CompileObserved(trees []*collective.Tree, nodes int, o obs.PlanObserver) (*Tables, error) {
	if o == nil {
		return compile(trees, nodes)
	}
	o.PhaseStart(obs.PhaseNICompile)
	ts, err := compile(trees, nodes)
	var c obs.PlanCounters
	if ts != nil {
		for n := range ts.PerNode {
			c.TableEntries += int64(len(ts.PerNode[n].Entries))
		}
	}
	o.PhaseEnd(obs.PhaseNICompile, c)
	return ts, err
}

func compile(trees []*collective.Tree, nodes int) (*Tables, error) {
	tot := 0
	for _, tr := range trees {
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		if h := tr.Height(); h > tot {
			tot = h
		}
	}
	ts := &Tables{Steps: tot}
	ts.PerNode = make([]Table, nodes)
	for n := range ts.PerNode {
		ts.PerNode[n].Node = topology.NodeID(n)
	}
	for _, tr := range trees {
		children := tr.Children()
		for node := 0; node < nodes; node++ {
			id := topology.NodeID(node)
			// Reduce entry: send to parent at the reversed step; the
			// children this node must hear from first are its dependency
			// set.
			if id != tr.Root {
				step := tot - tr.AGStep[id] + 1
				// A node with more than MaxChildren children spreads the
				// dependency vector across chained entries of the same
				// (flow, step); the issue logic treats them as one unit.
				kids := children[id]
				for first := true; first || len(kids) > 0; first = false {
					e := Entry{
						Op:     collective.Reduce,
						FlowID: tr.Flow,
						Parent: tr.Parent[id],
						Step:   step,
					}
					n := len(kids)
					if n > MaxChildren {
						n = MaxChildren
					}
					fillChildren(&e, kids[:n])
					kids = kids[n:]
					ts.PerNode[node].Entries = append(ts.PerNode[node].Entries, e)
					if len(kids) == 0 {
						break
					}
				}
			}
			// Gather entries: one per distinct child step, since children
			// attached at different tree levels are served in different
			// steps.
			kids := children[id]
			for i := 0; i < len(kids); {
				step := tr.AGStep[kids[i]]
				e := Entry{
					Op:     collective.Gather,
					FlowID: tr.Flow,
					Parent: Nil,
					Step:   tot + step,
				}
				if id != tr.Root {
					e.Parent = tr.Parent[id]
				}
				slot := 0
				for i < len(kids) && tr.AGStep[kids[i]] == step {
					if slot == MaxChildren {
						return nil, fmt.Errorf(
							"ni: node %d tree %d step %d has more than %d same-step children",
							id, tr.Flow, step, MaxChildren)
					}
					e.Children[slot] = kids[i]
					slot++
					i++
				}
				for ; slot < MaxChildren; slot++ {
					e.Children[slot] = Nil
				}
				ts.PerNode[node].Entries = append(ts.PerNode[node].Entries, e)
			}
		}
	}
	for n := range ts.PerNode {
		entries := ts.PerNode[n].Entries
		sort.SliceStable(entries, func(a, b int) bool {
			if entries[a].Step != entries[b].Step {
				return entries[a].Step < entries[b].Step
			}
			return entries[a].FlowID < entries[b].FlowID
		})
		ts.PerNode[n].Entries = insertNOPs(entries, 2*tot)
	}
	return ts, nil
}

// fillChildren populates an entry's Children slots with the node's own
// children in the tree — the reduces it must receive before issuing.
func fillChildren(e *Entry, kids []topology.NodeID) {
	for i := range e.Children {
		if i < len(kids) {
			e.Children[i] = kids[i]
		} else {
			e.Children[i] = Nil
		}
	}
}

// insertNOPs fills step gaps with NOP entries so the timestep counter
// advances through idle steps via the lockstep down-counter.
func insertNOPs(entries []Entry, totalSteps int) []Entry {
	var out []Entry
	next := 1
	emitNOPs := func(upto int) {
		for ; next < upto; next++ {
			out = append(out, Entry{
				Op: collective.NOP, FlowID: -1, Parent: Nil,
				Children: [MaxChildren]topology.NodeID{Nil, Nil, Nil, Nil},
				Step:     next,
			})
		}
	}
	for _, e := range entries {
		emitNOPs(e.Step)
		out = append(out, e)
		if e.Step >= next {
			next = e.Step + 1
		}
	}
	emitNOPs(totalSteps + 1)
	return out
}

// Bind fills StartAddr and Size for a concrete gradient of elems elements
// partitioned across the flows, mirroring how the processor programs the
// DMA descriptors at initialization.
func (ts *Tables) Bind(elems, flows int) {
	parts := collective.Partition(elems, flows)
	for n := range ts.PerNode {
		for i := range ts.PerNode[n].Entries {
			e := &ts.PerNode[n].Entries[i]
			if e.Op == collective.NOP {
				continue
			}
			e.StartAddr = parts[e.FlowID].Off
			e.Size = parts[e.FlowID].Len
		}
	}
}

// EntryBits returns the storage cost of one entry in bits: a 4-bit
// opcode, byte-aligned node-id fields (flow, parent, 4 children), a
// 16-bit step counter, and the 64-bit start address and 64-bit size of
// the DMA descriptor. For a 64-node system this is 196 bits, matching the
// paper's "each table entry needs 200 bits" estimate (§V-A).
func EntryBits(nodes int) int {
	idBits := bitsFor(nodes)
	if idBits < 8 {
		idBits = 8 // byte-aligned id fields
	}
	return 4 + idBits + idBits + MaxChildren*idBits + 16 + 64 + 64
}

// TableBytes returns the per-node schedule table size in bytes: 2N entries
// for an N-node system (one Reduce and one Gather per tree), the §V-A
// hardware-overhead estimate (3.2 KB for 64 nodes).
func TableBytes(nodes int) int {
	return 2 * nodes * EntryBits(nodes) / 8
}

func bitsFor(n int) int {
	b := 1
	for (1 << b) < n {
		b++
	}
	return b
}

// String renders a table like Fig. 5.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Accelerator %d\n", t.Node)
	fmt.Fprintf(&b, "%-7s %-6s %-6s %-16s %-4s\n", "Op", "FlowID", "Parent", "Children", "Step")
	for _, e := range t.Entries {
		if e.Op == collective.NOP {
			fmt.Fprintf(&b, "%-7s %-6s %-6s %-16s %-4d\n", "NOP", "-", "-", "-", e.Step)
			continue
		}
		parent := "nil"
		if e.Parent != Nil {
			parent = fmt.Sprint(e.Parent)
		}
		var kids []string
		for _, c := range e.Children {
			if c == Nil {
				kids = append(kids, "nil")
			} else {
				kids = append(kids, fmt.Sprint(c))
			}
		}
		fmt.Fprintf(&b, "%-7s %-6d %-6s %-16s %-4d\n",
			e.Op, e.FlowID, parent, strings.Join(kids, " "), e.Step)
	}
	return b.String()
}
