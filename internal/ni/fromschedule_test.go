package ni

import (
	"bytes"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/ring"
	"multitree/internal/topology"
)

// TestCompileScheduleMatchesCompile: compiling tables from the lowered
// schedule produces the same tables as compiling from the trees directly,
// and the Fig. 6 machine drives them to a complete all-reduce.
func TestCompileScheduleMatchesCompile(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	const elems = 1 << 10
	trees, err := core.BuildTrees(topo, core.DefaultOptions(topo))
	if err != nil {
		t.Fatal(err)
	}
	s, err := collective.TreesToSchedule(core.Algorithm, topo, elems, trees)
	if err != nil {
		t.Fatal(err)
	}
	fromTrees, err := Compile(trees, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	fromTrees.Bind(elems, len(trees))
	fromSched, err := CompileSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if fromSched.Steps != fromTrees.Steps {
		t.Fatalf("steps: %d vs %d", fromSched.Steps, fromTrees.Steps)
	}
	for n := range fromTrees.PerNode {
		a, b := fromTrees.PerNode[n], fromSched.PerNode[n]
		if len(a.Entries) != len(b.Entries) {
			t.Fatalf("node %d: %d entries vs %d", n, len(a.Entries), len(b.Entries))
		}
		for i := range a.Entries {
			if a.Entries[i] != b.Entries[i] {
				t.Fatalf("node %d entry %d: %+v vs %+v", n, i, a.Entries[i], b.Entries[i])
			}
		}
	}
	if _, err := NewMachine(fromSched, len(trees)).Run(); err != nil {
		t.Fatalf("machine run on schedule-compiled tables: %v", err)
	}
}

// TestCompileScheduleImported: an IR file that crossed the export/import
// boundary still compiles to runnable tables — the end-to-end NI path for
// external schedules.
func TestCompileScheduleImported(t *testing.T) {
	topo := topology.Mesh(4, 4, topology.DefaultLinkConfig())
	s, err := core.Build(topo, 640, core.DefaultOptions(topo))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := collective.Export(&buf, s); err != nil {
		t.Fatal(err)
	}
	imp, err := collective.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := CompileSchedule(imp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(tables, len(imp.Flows)).Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCompileScheduleRejectsRing: non-tree schedules get a clear error.
func TestCompileScheduleRejectsRing(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	if _, err := CompileSchedule(ring.Build(topo, 256)); err == nil {
		t.Fatal("ring schedule compiled to NI tables")
	}
}
