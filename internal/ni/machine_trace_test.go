package ni_test

import (
	"testing"

	"multitree/internal/collective"
	"multitree/internal/ni"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// TestMachineTracing runs the Fig. 6 machine under a recorder and checks
// the emitted NI events are consistent with the tables: one activation
// per transmitting entry, NOP counts match the tables' NOP entries, every
// event carries the issue-round timestamp, and metrics counters agree.
func TestMachineTracing(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	tables := compile(t, topo)
	rec := &obs.Recorder{}
	met := obs.NewMetrics(0)
	m := ni.NewMachine(tables, topo.Nodes())
	m.Trace = obs.Tee(rec, met)
	rounds, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	var activated, cleared, nops int
	for _, ev := range rec.Events {
		switch ev.Kind {
		case obs.EvNIEntryActivated:
			activated++
		case obs.EvNIDepCleared:
			cleared++
		case obs.EvNILockstep:
			nops++
		default:
			t.Fatalf("machine emitted non-NI event %v", ev.Kind)
		}
		if ev.At < 0 || int(ev.At) >= rounds {
			t.Fatalf("event round %v outside [0,%d)", ev.At, rounds)
		}
	}
	if activated == 0 || cleared == 0 {
		t.Fatalf("no NI activity traced: activated=%d cleared=%d", activated, cleared)
	}

	wantNOPs := 0
	for n := range tables.PerNode {
		for i := range tables.PerNode[n].Entries {
			if tables.PerNode[n].Entries[i].Op == collective.NOP {
				wantNOPs++
			}
		}
	}
	if nops != wantNOPs {
		t.Fatalf("traced %d lockstep NOPs, tables hold %d", nops, wantNOPs)
	}

	issued := met.NIEntriesIssued()
	totalIssued := int64(0)
	for _, c := range issued {
		totalIssued += c
	}
	if totalIssued != int64(activated) || met.NILockstepNOPs() != int64(nops) {
		t.Fatalf("metrics disagree with recorder: issued=%d activated=%d nops=%d/%d",
			totalIssued, activated, met.NILockstepNOPs(), nops)
	}
	if len(issued) > topo.Nodes() {
		t.Fatalf("issued counters cover %d nodes, topology has %d", len(issued), topo.Nodes())
	}

	// A machine without a tracer behaves identically.
	m2 := ni.NewMachine(tables, topo.Nodes())
	rounds2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rounds2 != rounds {
		t.Fatalf("tracing changed the run: %d vs %d rounds", rounds, rounds2)
	}
}
