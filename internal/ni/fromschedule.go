package ni

import (
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/obs"
)

// CompileSchedule compiles a schedule — built in-process or imported from
// a schedule IR file — into the per-node Fig. 5 tables, by recovering its
// spanning trees (collective.TreesFromSchedule) and lowering them exactly
// like the in-process MultiTree path. The DMA descriptors are bound from
// the schedule's own flow segment table, so non-uniform partitions
// survive the round trip.
//
// Schedules whose two phases are not mirrored trees (ring, HDRM) have no
// Fig. 5 encoding and return a descriptive error.
func CompileSchedule(s *collective.Schedule) (*Tables, error) {
	return CompileScheduleObserved(s, nil)
}

// CompileScheduleObserved is CompileSchedule reporting into a
// PlanObserver: the table compilation lands in the ni-compile phase. A
// nil observer is exactly CompileSchedule.
func CompileScheduleObserved(s *collective.Schedule, o obs.PlanObserver) (*Tables, error) {
	trees, err := collective.TreesFromSchedule(s)
	if err != nil {
		return nil, err
	}
	for _, tr := range trees {
		if tr.Members != nil {
			return nil, fmt.Errorf("ni: flow %d covers a node subset; subset schedules are not table-compilable", tr.Flow)
		}
	}
	ts, err := CompileObserved(trees, s.Topo.Nodes(), o)
	if err != nil {
		return nil, err
	}
	for n := range ts.PerNode {
		for i := range ts.PerNode[n].Entries {
			e := &ts.PerNode[n].Entries[i]
			if e.Op == collective.NOP {
				continue
			}
			seg := s.Flows[e.FlowID]
			e.StartAddr, e.Size = seg.Off, seg.Len
		}
	}
	return ts, nil
}
