package ni

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

// This file implements the deployment path of §V-A: "The schedules are
// computed once during initialization and loaded to network interfaces for
// reuse in the iterative training epochs." Tables serialize to a compact
// little-endian binary image — the bit stream a host driver would DMA
// into the NI's table SRAM — and deserialize back for verification.

// tableMagic guards against loading foreign blobs into the NI.
const tableMagic = 0x4D545254 // "MTRT"

// entryWire is the fixed on-wire entry layout (byte-aligned rendition of
// the ~200-bit entry of §V-A).
type entryWire struct {
	Op       uint8
	_        uint8 // pad
	FlowID   int16
	Parent   int16
	Children [MaxChildren]int16
	Step     uint16
	_        uint16 // pad
	Start    uint64
	Size     uint64
}

// MarshalBinary encodes all per-node tables.
func (ts *Tables) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) {
		// bytes.Buffer writes cannot fail.
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	w(uint32(tableMagic))
	w(uint32(ts.Steps))
	w(uint32(len(ts.PerNode)))
	for _, tab := range ts.PerNode {
		w(uint32(tab.Node))
		w(uint32(len(tab.Entries)))
		for _, e := range tab.Entries {
			ew := entryWire{
				Op:     uint8(e.Op),
				FlowID: int16(e.FlowID),
				Parent: int16(e.Parent),
				Step:   uint16(e.Step),
				Start:  uint64(e.StartAddr),
				Size:   uint64(e.Size),
			}
			for i, c := range e.Children {
				ew.Children[i] = int16(c)
			}
			w(ew)
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a table image produced by MarshalBinary.
func (ts *Tables) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic, steps, nodes uint32
	if err := read(&magic); err != nil {
		return fmt.Errorf("ni: truncated table image: %w", err)
	}
	if magic != tableMagic {
		return fmt.Errorf("ni: bad table magic %#x", magic)
	}
	if err := read(&steps); err != nil {
		return err
	}
	if err := read(&nodes); err != nil {
		return err
	}
	if nodes > 1<<20 {
		return fmt.Errorf("ni: implausible node count %d", nodes)
	}
	ts.Steps = int(steps)
	ts.PerNode = make([]Table, nodes)
	for n := range ts.PerNode {
		var node, count uint32
		if err := read(&node); err != nil {
			return err
		}
		if err := read(&count); err != nil {
			return err
		}
		if count > 1<<24 {
			return fmt.Errorf("ni: implausible entry count %d", count)
		}
		tab := Table{Node: topology.NodeID(node)}
		tab.Entries = make([]Entry, count)
		for i := range tab.Entries {
			var ew entryWire
			if err := read(&ew); err != nil {
				return fmt.Errorf("ni: truncated entry: %w", err)
			}
			e := Entry{
				Op:        collective.Op(ew.Op),
				FlowID:    int(ew.FlowID),
				Parent:    topology.NodeID(ew.Parent),
				Step:      int(ew.Step),
				StartAddr: int(ew.Start),
				Size:      int(ew.Size),
			}
			for k, c := range ew.Children {
				e.Children[k] = topology.NodeID(c)
			}
			tab.Entries[i] = e
		}
		ts.PerNode[n] = tab
	}
	return nil
}
