package network_test

import (
	"testing"
	"testing/quick"

	"multitree/internal/network"
)

// TestFlitCodecRoundTrip covers the Fig. 8 flit formats: normal packets
// carry (Dest, Src) route info, sub-packets carry (Next, Eject, Tree).
func TestFlitCodecRoundTrip(t *testing.T) {
	const flitBytes = 16
	cases := []network.Flit{
		{VC: 0, Type: network.FlitHead, Dest: 63, Src: 0},
		{VC: 3, Type: network.FlitHeadTail, Dest: 255, Src: 254},
		{VC: 1, Type: network.FlitSubHead, Next: 4, Eject: 2, Tree: 63},
		{VC: 2, Type: network.FlitMsgTail, Next: 1, Eject: 7, Tree: 1023},
		{VC: 0, Type: network.FlitBody},
		{VC: 0, Type: network.FlitSubTail, Tree: 5},
	}
	buf := make([]byte, flitBytes)
	for _, f := range cases {
		if err := network.EncodeFlit(f, buf, flitBytes); err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
		got, err := network.DecodeFlit(buf, flitBytes)
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if got != f {
			t.Errorf("round trip changed flit: %+v -> %+v", f, got)
		}
	}
}

// TestFlitCodecProperty round-trips arbitrary field values.
func TestFlitCodecProperty(t *testing.T) {
	const flitBytes = 16
	f := func(vc uint8, ty uint8, a, b uint16) bool {
		fl := network.Flit{VC: vc & 0xF, Type: network.FlitType(ty & 0b111)}
		if fl.Type.IsSubPacket() {
			fl.Next = uint8(a)
			fl.Eject = uint8(b)
			fl.Tree = b
		} else {
			fl.Dest = a
			fl.Src = b
		}
		buf := make([]byte, flitBytes)
		if err := network.EncodeFlit(fl, buf, flitBytes); err != nil {
			return false
		}
		got, err := network.DecodeFlit(buf, flitBytes)
		return err == nil && got == fl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFlitCodecErrors(t *testing.T) {
	if err := network.EncodeFlit(network.Flit{VC: 16}, make([]byte, 16), 16); err == nil {
		t.Error("VC overflow accepted")
	}
	if err := network.EncodeFlit(network.Flit{}, make([]byte, 4), 16); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := network.DecodeFlit(make([]byte, 2), 16); err == nil {
		t.Error("short decode accepted")
	}
}

// TestFlitTypeTable pins the Table II encodings.
func TestFlitTypeTable(t *testing.T) {
	want := map[network.FlitType]struct {
		name string
		sub  bool
		head bool
	}{
		network.FlitHead:     {"Head", false, true},
		network.FlitBody:     {"Body", false, false},
		network.FlitTail:     {"Tail", false, false},
		network.FlitHeadTail: {"Head&Tail", false, true},
		network.FlitSubHead:  {"SubHead", true, true},
		network.FlitSubBody:  {"SubBody", true, false},
		network.FlitSubTail:  {"SubTail", true, false},
		network.FlitMsgTail:  {"MsgTail", true, false},
	}
	for ty, w := range want {
		if ty.String() != w.name || ty.IsSubPacket() != w.sub || ty.IsHead() != w.head {
			t.Errorf("%v: String=%s sub=%v head=%v, want %+v", ty, ty.String(), ty.IsSubPacket(), ty.IsHead(), w)
		}
	}
}

// TestFlitizeFraming pins the Fig. 7 message framing: a message-based
// transfer starts with SubHead, ends with MsgTail, and marks sub-packet
// boundaries with SubTail.
func TestFlitizeFraming(t *testing.T) {
	cfg := network.MessageConfig()
	flits := cfg.Flitize(1024) // 4 sub-packets of 256 B
	if flits[0] != network.FlitSubHead {
		t.Errorf("first flit %v, want SubHead", flits[0])
	}
	if flits[len(flits)-1] != network.FlitMsgTail {
		t.Errorf("last flit %v, want MsgTail", flits[len(flits)-1])
	}
	subTails := 0
	for _, f := range flits {
		if f == network.FlitSubTail {
			subTails++
		}
	}
	if subTails != 3 { // boundaries between 4 sub-packets, last is MsgTail
		t.Errorf("%d SubTail flits, want 3", subTails)
	}
	// Packet-based framing: one Head and one Tail per 256 B packet.
	pkt := network.DefaultConfig().Flitize(1024)
	heads, tails := 0, 0
	for _, f := range pkt {
		switch f {
		case network.FlitHead:
			heads++
		case network.FlitTail:
			tails++
		}
	}
	if heads != 4 || tails != 4 {
		t.Errorf("packet framing: %d heads %d tails, want 4/4", heads, tails)
	}
}
