package network_test

import (
	"math"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/dbtree"
	"multitree/internal/network"
	"multitree/internal/obs"
	"multitree/internal/topology"
)

// traceMultiTree simulates a 1 MiB MultiTree all-reduce on a 4x4 Torus
// under one engine with a recorder and metrics attached.
func traceMultiTree(t *testing.T, packet bool) (*collective.Schedule, *network.Result, *obs.Recorder, *obs.Metrics) {
	t.Helper()
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := core.Build(topo, (1<<20)/collective.WordSize, core.DefaultOptions(topo))
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	met := obs.NewMetrics(0)
	cfg := network.DefaultConfig()
	cfg.Tracer = obs.Tee(rec, met)
	engine := network.SimulateFluid
	if packet {
		engine = network.SimulatePackets
	}
	res, err := engine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, res, rec, met
}

// TestCrossEngineAgreement pins the two engines against each other through
// the tracing layer: on a contention-free MultiTree schedule the fluid
// abstraction must reproduce the packet engine's per-link busy time (up to
// per-packet head-flit framing) and both must deliver exactly the same
// transfers.
func TestCrossEngineAgreement(t *testing.T) {
	_, fluidRes, fluidRec, fluidMet := traceMultiTree(t, false)
	s, packetRes, packetRec, packetMet := traceMultiTree(t, true)

	// Per-link busy time agrees within 10%: the packet engine serializes
	// per-packet wire bytes (head flit per 256 B payload), the fluid engine
	// one aggregate wire size per transfer, so small framing differences
	// are expected but nothing structural.
	if len(fluidRes.LinkBusy) != len(packetRes.LinkBusy) {
		t.Fatalf("LinkBusy lengths differ: %d vs %d", len(fluidRes.LinkBusy), len(packetRes.LinkBusy))
	}
	for l := range fluidRes.LinkBusy {
		f, p := float64(fluidRes.LinkBusy[l]), float64(packetRes.LinkBusy[l])
		if f == 0 && p == 0 {
			continue
		}
		if rel := math.Abs(f-p) / math.Max(f, p); rel > 0.10 {
			t.Errorf("link %d busy disagrees: fluid %v packet %v (%.1f%%)", l, f, p, 100*rel)
		}
	}

	// The metrics collector's busy-equivalent accounting must match the
	// engines' own network.Result.LinkBusy — the trace is not a parallel truth.
	checkMetricsMatchResult(t, "fluid", fluidMet, fluidRes)
	checkMetricsMatchResult(t, "packet", packetMet, packetRes)

	// Both engines deliver exactly the schedule's transfer set.
	fluidDel := deliveredSet(fluidRec)
	packetDel := deliveredSet(packetRec)
	if len(fluidDel) != len(s.Transfers) || len(packetDel) != len(s.Transfers) {
		t.Fatalf("delivered %d (fluid) / %d (packet) of %d transfers",
			len(fluidDel), len(packetDel), len(s.Transfers))
	}
	for id := range fluidDel {
		if !packetDel[id] {
			t.Errorf("transfer %d delivered by fluid engine only", id)
		}
	}

	// The dynamic per-step link utilization measured from either trace
	// equals the static schedule analysis exactly: same links, same steps.
	static := collective.StepUtilization(s)
	links := len(s.Topo.Links())
	for name, rec := range map[string]*obs.Recorder{"fluid": fluidRec, "packet": packetRec} {
		dyn := obs.StepLinkUtilization(rec.Events, links)
		if len(dyn) != len(static) {
			t.Fatalf("%s: step count %d, static %d", name, len(dyn)-1, len(static)-1)
		}
		for step := 1; step < len(static); step++ {
			if math.Abs(dyn[step]-static[step]) > 1e-12 {
				t.Errorf("%s step %d: traced utilization %v, static %v", name, step, dyn[step], static[step])
			}
		}
	}
}

func checkMetricsMatchResult(t *testing.T, name string, m *obs.Metrics, res *network.Result) {
	t.Helper()
	busy := m.LinkBusy()
	for l, b := range res.LinkBusy {
		got := 0.0
		if l < len(busy) {
			got = busy[l]
		}
		want := float64(b)
		if want == 0 && got == 0 {
			continue
		}
		// The engine tallies whole ceil'd cycles per transfer/packet; the
		// trace carries the unrounded busy-equivalent. Allow 1%.
		if rel := math.Abs(got-want) / math.Max(got, want); rel > 0.01 {
			t.Errorf("%s link %d: metrics busy %v, network.Result.LinkBusy %v", name, l, got, want)
		}
	}
}

func deliveredSet(rec *obs.Recorder) map[int32]bool {
	out := make(map[int32]bool)
	for _, ev := range rec.Events {
		if ev.Kind == obs.EvTransferDelivered {
			out[ev.Transfer] = true
		}
	}
	return out
}

// TestFluidTraceSpansCoverBusy checks the fluid engine's span reporting
// invariant: a flow's link span never claims more busy time than its
// active interval, and spans start no earlier than injection.
func TestFluidTraceSpansCoverBusy(t *testing.T) {
	_, _, rec, _ := traceMultiTree(t, false)
	injected := map[int32]float64{}
	for _, ev := range rec.Events {
		switch ev.Kind {
		case obs.EvTransferInjected:
			injected[ev.Transfer] = ev.At
		case obs.EvLinkAcquired:
			if ev.Busy > ev.Dur+1e-9 {
				t.Fatalf("transfer %d link %d: busy %v exceeds span %v", ev.Transfer, ev.Link, ev.Busy, ev.Dur)
			}
			if at, ok := injected[ev.Transfer]; !ok || ev.At+1e-9 < at {
				t.Fatalf("transfer %d span starts at %v before injection at %v", ev.Transfer, ev.At, at)
			}
		}
	}
}

// TestPacketTraceBackpressure checks the packet engine reports credit
// blocking when buffers are too small for the offered load. MultiTree
// schedules are single-hop and never charge router buffers, so this uses
// DBTree, whose multi-hop tree edges do, and shrinks the input buffers to
// a single packet so any two packets meeting at a hop must block.
func TestPacketTraceBackpressure(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := dbtree.Build(topo, (256<<10)/collective.WordSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.Recorder{}
	cfg := network.DefaultConfig()
	cfg.VCs = 1
	cfg.VCDepthFlits = 17 // exactly one 272 B wire packet per buffer
	cfg.Tracer = rec
	if _, err := network.SimulatePackets(s, cfg); err != nil {
		t.Fatal(err)
	}
	blocked := 0
	for _, ev := range rec.Events {
		if ev.Kind == obs.EvLinkBlocked {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatalf("message-based run reported no credit blocking events")
	}
}
