// Package network simulates the interconnection fabric of the paper's
// evaluation (Table III): virtual cut-through flow control, 16 GB/s 150 ns
// links at a 1 GHz router clock, 4 virtual channels of 318 flits, and
// 256-byte data packet payloads for the baselines. It provides two
// engines over the same collective.Schedule input:
//
//   - a fluid, flow-level engine (SimulateFluid) that allocates max-min
//     fair rates over each transfer's routed links — fast enough for the
//     64 MiB sweeps of Fig. 9 and the 256-node scaling of Fig. 10; and
//   - a packet-level engine (SimulatePackets) that moves individual
//     packets hop by hop through per-link FIFOs with buffer backpressure —
//     the higher-fidelity reference the fluid engine is cross-validated
//     against in tests.
//
// Both engines model the paper's two flow-control schemes: conventional
// packet-based switching (one head flit per payload packet, Fig. 7a) and
// the co-designed message-based switching for big gradients (one head flit
// per gradient message, Fig. 7b).
package network

import (
	"fmt"

	"multitree/internal/faults"
	"multitree/internal/obs"
	"multitree/internal/sim"
)

// Config carries the network parameters of Table III plus the flow-control
// and scheduling options of the co-design.
type Config struct {
	// FlitBytes is the flit width (16 bytes in the paper).
	FlitBytes int

	// PayloadBytes is the data-packet payload used by packet-based flow
	// control (256 bytes for the baselines).
	PayloadBytes int

	// MessageBased enables the big-gradient message-based flow control of
	// §IV-B: the whole per-transfer gradient chunk travels as one message
	// with a single head flit, instead of one head flit per packet.
	MessageBased bool

	// Lockstep enables the NI lockstep injection regulation of §IV-A: each
	// node issues its schedule-table entries in time-step order, stalling
	// NOP gaps for the estimated step time. The paper applies this
	// scheduling to all baselines for fair comparison, so it defaults on.
	Lockstep bool

	// StepPriority makes links serve the earliest-step flow first in the
	// fluid engine, modeling the router arbitration the co-design relies
	// on to keep the lockstep schedule intact ("fine-grained control to
	// schedule link communication earlier for the critical tree", §VIII-A).
	// Without it, flows of adjacent time steps that briefly overlap on a
	// link would share max-min fairly, which real FIFO arbiters do not do.
	StepPriority bool

	// VCs and VCDepthFlits size the per-link input buffering used by the
	// packet engine for backpressure (4 VCs x 318 flits in Table III).
	VCs          int
	VCDepthFlits int

	// Faults, when non-nil, injects mid-flight fabric degradation into
	// either engine: links fail, lose bandwidth or gain latency at their
	// configured activation times. A transfer that must cross a link at
	// or after the link died can never finish, so the run errors with a
	// descriptive stall report naming the blocked transfers. The nil
	// default keeps the no-fault fast paths untouched. To instead
	// re-plan the collective around known faults, degrade the topology
	// with faults.Apply before building the schedule.
	Faults *faults.Plan

	// Tracer, when non-nil, receives typed simulation events from either
	// engine (transfer ready/injected/delivered, link-acquired spans,
	// credit blocks, lockstep step entries, event-queue samples). The nil
	// default keeps the hot paths branch-only with zero allocations per
	// event.
	Tracer obs.Tracer
}

// DefaultConfig returns the Table III configuration with packet-based
// (baseline) flow control and lockstep scheduling enabled.
func DefaultConfig() Config {
	return Config{
		FlitBytes:    16,
		PayloadBytes: 256,
		MessageBased: false,
		Lockstep:     true,
		StepPriority: true,
		VCs:          4,
		VCDepthFlits: 318,
	}
}

// MessageConfig returns the co-designed configuration (message-based flow
// control), i.e. the MULTITREE-MSG operating point.
func MessageConfig() Config {
	c := DefaultConfig()
	c.MessageBased = true
	return c
}

func (c Config) validate() error {
	if c.FlitBytes <= 0 || c.PayloadBytes <= 0 {
		return fmt.Errorf("network: non-positive flit (%d) or payload (%d) size",
			c.FlitBytes, c.PayloadBytes)
	}
	if c.PayloadBytes%c.FlitBytes != 0 {
		return fmt.Errorf("network: payload %dB is not a whole number of %dB flits",
			c.PayloadBytes, c.FlitBytes)
	}
	return nil
}

// WireBytes returns the on-wire size of a transfer carrying payload bytes
// under the configured flow control, counting head-flit overhead.
//
// Packet-based: every PayloadBytes-sized packet carries one extra head
// flit (Fig. 7a), so a 256 B payload costs 272 B on the wire (6.25%
// overhead; Fig. 2's 64 B payload costs 25%).
//
// Message-based: the whole chunk is one message with a single head flit;
// sub-packet boundaries reuse body-flit slots (sub-tail flits replace the
// final body flit of a sub-packet rather than adding one), so overhead is
// one flit per transfer (Fig. 7b).
func (c Config) WireBytes(payload int64) int64 {
	if payload <= 0 {
		return 0
	}
	flit := int64(c.FlitBytes)
	bodyBytes := (payload + flit - 1) / flit * flit // payload rounded to flits
	if c.MessageBased {
		return bodyBytes + flit
	}
	packets := (payload + int64(c.PayloadBytes) - 1) / int64(c.PayloadBytes)
	return bodyBytes + packets*flit
}

// HeadFlitOverhead returns the fractional bandwidth overhead of
// packet-based flow control for a given payload size — the quantity Fig. 2
// plots (6%-25% for 256 B down to 64 B payloads with 16 B flits).
func HeadFlitOverhead(payloadBytes, flitBytes int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return float64(flitBytes) / float64(payloadBytes)
}

// Result reports a simulated all-reduce execution.
type Result struct {
	// Cycles is the simulated completion time (all transfers delivered).
	Cycles sim.Time

	// PayloadBytes and WireBytes total the gradient bytes and on-wire
	// bytes (with head-flit overhead) moved across all transfers.
	PayloadBytes int64
	WireBytes    int64

	// TransferDone holds each transfer's delivery time, for per-layer
	// overlap accounting in the training simulator.
	TransferDone []sim.Time

	// LinkBusy[l] is the total busy time of directed link l, for
	// utilization reports.
	LinkBusy []sim.Time
}

// BandwidthBytesPerCycle returns the achieved all-reduce bandwidth: data
// size divided by simulation time (§VI-A's metric).
func (r *Result) BandwidthBytesPerCycle(dataBytes int64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(dataBytes) / float64(r.Cycles)
}

// GBps converts a bytes-per-cycle bandwidth to GB/s at the 1 GHz clock.
func GBps(bytesPerCycle float64) float64 { return bytesPerCycle } // 1 B/cycle = 1 GB/s at 1 GHz
