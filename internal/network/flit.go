package network

import (
	"encoding/binary"
	"fmt"
)

// FlitType enumerates the packet and sub-packet flit encodings of
// Table II. The high bit distinguishes the co-design's sub-packet flits
// from conventional packet flits.
type FlitType uint8

const (
	FlitHead     FlitType = 0b000 // normal packet head
	FlitBody     FlitType = 0b001 // normal packet body
	FlitTail     FlitType = 0b010 // normal packet tail
	FlitHeadTail FlitType = 0b011 // single-flit packet

	FlitSubHead FlitType = 0b100 // head flit of a big-gradient message
	FlitSubBody FlitType = 0b101 // sub-packet body
	FlitSubTail FlitType = 0b110 // end of a sub-packet
	FlitMsgTail FlitType = 0b111 // end of the whole gradient message
)

func (t FlitType) String() string {
	switch t {
	case FlitHead:
		return "Head"
	case FlitBody:
		return "Body"
	case FlitTail:
		return "Tail"
	case FlitHeadTail:
		return "Head&Tail"
	case FlitSubHead:
		return "SubHead"
	case FlitSubBody:
		return "SubBody"
	case FlitSubTail:
		return "SubTail"
	case FlitMsgTail:
		return "MsgTail"
	}
	return fmt.Sprintf("FlitType(%d)", uint8(t))
}

// IsSubPacket reports whether the flit belongs to a message-based
// big-gradient transfer.
func (t FlitType) IsSubPacket() bool { return t&0b100 != 0 }

// IsHead reports whether the flit carries packet info (routing metadata).
func (t FlitType) IsHead() bool {
	return t == FlitHead || t == FlitHeadTail || t == FlitSubHead
}

// Flit is the decoded head-flit metadata of Fig. 8. Body flits carry only
// VC + Type + payload and leave the routing fields zero.
type Flit struct {
	VC   uint8
	Type FlitType

	// Normal packets route by (Dest, Src) node ids under distributed
	// routing (Fig. 8c).
	Dest, Src uint16

	// All-reduce sub-packets are source-routed between neighbors: Next is
	// the output port at the source router, Eject the ejection port at the
	// destination, and Tree the flow (tree) id used to clear schedule
	// dependencies (Fig. 8d). Next is kept toward the destination so the
	// receiver can identify which child the message came from (§IV-B).
	Next, Eject uint8
	Tree        uint16
}

// flit byte layout (within a 16-byte flit, metadata occupies the first 6
// bytes; the rest is payload):
//
//	byte 0: VC (high nibble) | Type (low 3 bits)
//	bytes 1-2: Dest or (Next | Eject)
//	bytes 3-4: Src or Tree
//	byte 5: reserved
const flitMetaBytes = 6

// EncodeFlit packs the flit metadata into buf, which must be at least one
// flit wide.
func EncodeFlit(f Flit, buf []byte, flitBytes int) error {
	if len(buf) < flitBytes || flitBytes < flitMetaBytes {
		return fmt.Errorf("network: flit buffer %dB too small (flit %dB)", len(buf), flitBytes)
	}
	if f.VC > 0xF {
		return fmt.Errorf("network: VC %d out of range", f.VC)
	}
	buf[0] = f.VC<<4 | uint8(f.Type)
	if f.Type.IsSubPacket() {
		buf[1] = f.Next
		buf[2] = f.Eject
		binary.LittleEndian.PutUint16(buf[3:5], f.Tree)
	} else {
		binary.LittleEndian.PutUint16(buf[1:3], f.Dest)
		binary.LittleEndian.PutUint16(buf[3:5], f.Src)
	}
	buf[5] = 0
	return nil
}

// DecodeFlit unpacks flit metadata from buf.
func DecodeFlit(buf []byte, flitBytes int) (Flit, error) {
	var f Flit
	if len(buf) < flitBytes || flitBytes < flitMetaBytes {
		return f, fmt.Errorf("network: flit buffer %dB too small (flit %dB)", len(buf), flitBytes)
	}
	f.VC = buf[0] >> 4
	f.Type = FlitType(buf[0] & 0b111)
	if f.Type.IsSubPacket() {
		f.Next = buf[1]
		f.Eject = buf[2]
		f.Tree = binary.LittleEndian.Uint16(buf[3:5])
	} else {
		f.Dest = binary.LittleEndian.Uint16(buf[1:3])
		f.Src = binary.LittleEndian.Uint16(buf[3:5])
	}
	return f, nil
}

// Flitize returns the per-flit type sequence for a transfer of payload
// bytes under the configured flow control — the exact on-wire framing of
// Fig. 7. It is used by the flit-format tests and by diagnostics; the
// simulators use the closed-form Config.WireBytes, which tests check for
// agreement with len(Flitize(...)).
func (c Config) Flitize(payload int64) []FlitType {
	if payload <= 0 {
		return nil
	}
	flitsPerPayload := func(b int64) int64 {
		return (b + int64(c.FlitBytes) - 1) / int64(c.FlitBytes)
	}
	var out []FlitType
	if c.MessageBased {
		// One big message: SubHead, then body flits with SubTail marking
		// each sub-packet boundary, closed by MsgTail (Fig. 7b). Sub-tail
		// flits replace the final body flit of their sub-packet, so the
		// only added flit is the message head.
		out = append(out, FlitSubHead)
		body := flitsPerPayload(payload)
		subFlits := int64(c.PayloadBytes / c.FlitBytes)
		for i := int64(1); i <= body; i++ {
			switch {
			case i == body:
				out = append(out, FlitMsgTail)
			case i%subFlits == 0:
				out = append(out, FlitSubTail)
			default:
				out = append(out, FlitSubBody)
			}
		}
		return out
	}
	// Conventional packets: one head flit per payload packet (Fig. 7a).
	for payload > 0 {
		chunk := int64(c.PayloadBytes)
		if payload < chunk {
			chunk = payload
		}
		payload -= chunk
		body := flitsPerPayload(chunk)
		out = append(out, FlitHead)
		for i := int64(1); i <= body; i++ {
			if i == body {
				out = append(out, FlitTail)
			} else {
				out = append(out, FlitBody)
			}
		}
	}
	return out
}
