package network_test

import (
	"math"
	"strings"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/faults"
	"multitree/internal/network"
	"multitree/internal/obs"
)

// oneTransfer builds a single 0->1 gather of elems words.
func oneTransfer(elems int) *collective.Schedule {
	s := collective.NewSchedule("unit", torus4x4(), elems, 1)
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
	return s
}

func mustPlan(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	p, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return p
}

// TestFaultDegradedBandwidth: a straggler cable at half bandwidth doubles
// serialization time in both engines.
func TestFaultDegradedBandwidth(t *testing.T) {
	s := oneTransfer(4096)
	cfg := network.DefaultConfig()
	cfg.Lockstep = false
	cfg.Faults = mustPlan(t, "link:0-1:bw=0.5")
	wire := cfg.WireBytes(4096 * collective.WordSize)
	want := float64(wire)/8 + 150 // 16 GB/s scaled by 0.5, plus latency

	fres, err := network.SimulateFluid(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(fres.Cycles); math.Abs(got-want) > 2 {
		t.Errorf("fluid cycles = %v, want ~%v", got, want)
	}
	// LinkBusy must account at the degraded rate too.
	var busy float64
	for _, b := range fres.LinkBusy {
		busy += float64(b)
	}
	if wantBusy := float64(wire) / 8; math.Abs(busy-wantBusy) > 2 {
		t.Errorf("fluid LinkBusy total = %v, want ~%v", busy, wantBusy)
	}

	pres, err := network.SimulatePackets(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Packet engine rounds per packet; allow one cycle per packet of slack.
	if got := float64(pres.Cycles); math.Abs(got-want) > 64 {
		t.Errorf("packet cycles = %v, want ~%v", got, want)
	}
}

// TestFaultAddedLatency: lat+ faults delay delivery by the added
// propagation time in both engines.
func TestFaultAddedLatency(t *testing.T) {
	s := oneTransfer(4096)
	base := network.DefaultConfig()
	base.Lockstep = false
	faulty := base
	faulty.Faults = mustPlan(t, "link:0-1:lat+100")

	for _, eng := range []struct {
		name string
		run  func(*collective.Schedule, network.Config) (*network.Result, error)
	}{
		{"fluid", network.SimulateFluid},
		{"packet", network.SimulatePackets},
	} {
		r0, err := eng.run(s, base)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := eng.run(s, faulty)
		if err != nil {
			t.Fatal(err)
		}
		if got := int64(r1.Cycles) - int64(r0.Cycles); got != 100 {
			t.Errorf("%s: added latency shifted completion by %d cycles, want 100", eng.name, got)
		}
	}
}

// TestFaultLinkDownStalls: a transfer that must cross a dead link stalls
// both engines with a descriptive error naming the transfer and link.
func TestFaultLinkDownStalls(t *testing.T) {
	s := oneTransfer(4096)
	cfg := network.DefaultConfig()
	cfg.Lockstep = false
	cfg.Faults = mustPlan(t, "link:0-1:down")

	for _, eng := range []struct {
		name string
		run  func(*collective.Schedule, network.Config) (*network.Result, error)
	}{
		{"fluid", network.SimulateFluid},
		{"packet", network.SimulatePackets},
	} {
		_, err := eng.run(s, cfg)
		if err == nil {
			t.Fatalf("%s: simulation across a dead link succeeded", eng.name)
		}
		msg := err.Error()
		for _, want := range []string{"stalled", "0/1", "t0", "n0->n1"} {
			if !strings.Contains(msg, want) {
				t.Errorf("%s stall error %q missing %q", eng.name, msg, want)
			}
		}
	}
}

// TestFaultMidFlight: a link that dies mid-serialization strands the
// remaining bytes/packets; the fault time is honored (the run does not
// fail before it) and the stall report names the failed link.
func TestFaultMidFlight(t *testing.T) {
	s := oneTransfer(1 << 16) // 256 KiB payload: ~17k cycles of serialization
	cfg := network.DefaultConfig()
	cfg.Lockstep = false
	cfg.Faults = mustPlan(t, "link:0-1@t=5000:down")

	for _, eng := range []struct {
		name string
		run  func(*collective.Schedule, network.Config) (*network.Result, error)
	}{
		{"fluid", network.SimulateFluid},
		{"packet", network.SimulatePackets},
	} {
		_, err := eng.run(s, cfg)
		if err == nil {
			t.Fatalf("%s: mid-flight link death did not stall", eng.name)
		}
		if !strings.Contains(err.Error(), "n0->n1") {
			t.Errorf("%s stall error %q does not name the failed link", eng.name, err)
		}
	}

	// The same fault after the transfer would have finished is harmless.
	late := network.DefaultConfig()
	late.Lockstep = false
	late.Faults = mustPlan(t, "link:0-1@t=9999999:down")
	if _, err := network.SimulateFluid(s, late); err != nil {
		t.Errorf("fluid: post-completion fault failed the run: %v", err)
	}
	if _, err := network.SimulatePackets(s, late); err != nil {
		t.Errorf("packet: post-completion fault failed the run: %v", err)
	}
}

// TestFaultEventEmitted: both engines emit EvLinkFault at the activation
// time with the effective bandwidth scale.
func TestFaultEventEmitted(t *testing.T) {
	s := oneTransfer(4096)
	for _, eng := range []struct {
		name string
		run  func(*collective.Schedule, network.Config) (*network.Result, error)
	}{
		{"fluid", network.SimulateFluid},
		{"packet", network.SimulatePackets},
	} {
		rec := &obs.Recorder{}
		cfg := network.DefaultConfig()
		cfg.Lockstep = false
		cfg.Faults = mustPlan(t, "link:0-1@t=10:bw=0.5")
		cfg.Tracer = rec
		if _, err := eng.run(s, cfg); err != nil {
			t.Fatal(err)
		}
		found := 0
		for _, ev := range rec.Events {
			if ev.Kind == obs.EvLinkFault {
				found++
				if ev.At != 10 || ev.Busy != 0.5 {
					t.Errorf("%s: EvLinkFault at=%v busy=%v, want 10/0.5", eng.name, ev.At, ev.Busy)
				}
			}
		}
		if found != 2 { // both directions of the cable
			t.Errorf("%s: %d EvLinkFault events, want 2", eng.name, found)
		}
	}
}

// TestFaultPlanValidated: plans referencing absent cables are rejected up
// front by both engines.
func TestFaultPlanValidated(t *testing.T) {
	s := oneTransfer(16)
	cfg := network.DefaultConfig()
	cfg.Faults = &faults.Plan{Links: []faults.LinkFault{{A: 0, B: 5, Down: true}}}
	if _, err := network.SimulateFluid(s, cfg); err == nil {
		t.Error("fluid accepted a fault on an absent cable")
	}
	if _, err := network.SimulatePackets(s, cfg); err == nil {
		t.Error("packet accepted a fault on an absent cable")
	}
}
