package network

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"multitree/internal/collective"
	"multitree/internal/faults"
	"multitree/internal/obs"
	"multitree/internal/sim"
	"multitree/internal/topology"
)

// SimulatePackets executes an all-reduce schedule at packet granularity:
// transfers are packetized per the configured flow control, packets move
// hop by hop through per-link FIFO queues with serialization delay
// wire/bandwidth plus propagation delay per link, and each link's
// downstream input buffer (VCs x depth flits) exerts backpressure on the
// link. It is slower but higher-fidelity than SimulateFluid and serves as
// the reference engine in cross-validation tests and the fidelity
// ablation bench.
func SimulatePackets(s *collective.Schedule, cfg Config) (*Result, error) {
	ps, err := NewPacketSim(s, cfg)
	if err != nil {
		return nil, err
	}
	return ps.Run()
}

// Typed event kinds dispatched by the engine's fast path. The int32
// arguments carry a transfer id, packet arena index, node id or link id;
// no closures are allocated on the hot path.
const (
	evRelease   sim.Kind = iota + 1 // a: transfer id
	evSerDone                       // a: packet index, b: link id
	evArrive                        // a: packet index
	evEnterStep                     // a: node id
	evDelivered                     // a: transfer id
	evLinkFault                     // a: fault-change index
)

// packet is one on-wire unit of a transfer. Packets live in the
// simulation's arena and are identified by their index; next threads the
// arena's free list.
type packet struct {
	transfer int32
	next     int32 // free-list link; -1 terminates
	hop      int32 // index of the link the packet crosses next
	wire     int64 // bytes on the wire including its head-flit share
	path     []topology.LinkID
}

// pktRing is a FIFO deque of packet arena indices backed by a reusable
// ring buffer: popping the head advances an offset instead of reslicing,
// so the backing array is never abandoned and its capacity is bounded by
// the link's peak queue depth, not the total packets that ever crossed it.
type pktRing struct {
	buf  []int32
	head int
	n    int
}

func (r *pktRing) len() int     { return r.n }
func (r *pktRing) front() int32 { return r.buf[r.head] }

func (r *pktRing) push(v int32) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *pktRing) pop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// grow doubles the power-of-two backing array, unrolling the ring.
func (r *pktRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]int32, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

func (r *pktRing) reset() { r.head, r.n = 0, 0 }

// PacketSim is a reusable packet-level simulator for one schedule and
// configuration. Run may be called repeatedly: every run resets the
// mutable state but keeps all backing storage (event heap, packet arena,
// link rings), so steady-state re-simulation performs zero heap
// allocations (see TestPacketEngineSteadyStateAllocs). Runs are
// deterministic and cycle-identical to each other and to SimulatePackets.
type PacketSim struct {
	ps packetSim
}

// NewPacketSim validates the configuration and builds the immutable
// schedule-derived state (dependency graph, per-transfer paths, lockstep
// step lists, byte totals).
func NewPacketSim(s *collective.Schedule, cfg Config) (*PacketSim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	flt, err := faults.Compile(cfg.Faults, s.Topo)
	if err != nil {
		return nil, err
	}
	p := &PacketSim{}
	p.ps.init(s, cfg)
	p.ps.flt = flt
	return p, nil
}

// Run simulates the schedule and returns the result. The returned Result
// is owned by the simulator and overwritten by the next Run; callers that
// keep results across runs must copy them.
func (p *PacketSim) Run() (*Result, error) {
	ps := &p.ps
	ps.reset()
	if len(ps.s.Transfers) == 0 {
		return ps.res, nil
	}
	ps.seed()
	ps.eng.Run()
	if ps.done != len(ps.s.Transfers) {
		return nil, ps.stallError()
	}
	ps.res.Cycles = ps.eng.Now()
	return ps.res, nil
}

// stallError describes why the event queue drained with transfers
// outstanding: the overall counts, the first few blocked transfers with
// their unmet dependencies (or the failed link stranding their packets,
// or the closed step gate), and under lockstep the first stuck
// node/step.
func (ps *packetSim) stallError() error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "network: packet simulation stalled with %d/%d transfers done (%s on %s)",
		ps.done, len(ps.s.Transfers), ps.s.Algorithm, ps.s.Topo.Name())
	const maxList = 3
	listed, blocked := 0, 0
	for id := range ps.s.Transfers {
		if ps.doneT[id] {
			continue
		}
		blocked++
		if listed == maxList {
			continue
		}
		listed++
		switch {
		case ps.depsLeft[id] > 0:
			fmt.Fprintf(&sb, "; t%d waiting on", id)
			for _, d := range ps.s.Transfers[id].Deps {
				if !ps.doneT[d] {
					fmt.Fprintf(&sb, " t%d", d)
				}
			}
		case ps.pktsLeft[id] > 0:
			fmt.Fprintf(&sb, "; t%d has %d packet(s) stranded", id, ps.pktsLeft[id])
			if ps.flt != nil {
				for _, l := range ps.paths[id] {
					if at, down := ps.flt.DownAt(l); down && at <= ps.eng.Now() {
						lk := ps.s.Topo.Link(l)
						fmt.Fprintf(&sb, " at failed link %s->%s",
							ps.s.Topo.VertexName(lk.Src), ps.s.Topo.VertexName(lk.Dst))
						break
					}
				}
			}
		default:
			fmt.Fprintf(&sb, "; t%d ready, step %d gate closed at node %d",
				id, ps.s.Transfers[id].Step, ps.s.Transfers[id].Src)
		}
	}
	if blocked > listed {
		fmt.Fprintf(&sb, "; and %d more", blocked-listed)
	}
	if ps.lockstep {
		for node := range ps.clocks {
			c := &ps.clocks[node]
			if c.idx < len(c.steps) {
				fmt.Fprintf(&sb, "; node %d stuck at step %d", node, c.steps[c.idx])
				break
			}
		}
	}
	return fmt.Errorf("%s", sb.String())
}

type packetSim struct {
	s   *collective.Schedule
	cfg Config
	eng sim.Engine
	res *Result
	tr  obs.Tracer
	flt *faults.Compiled

	depsLeft []int
	succ     [][]int32
	paths    [][]topology.LinkID // per transfer, resolved once
	pktsLeft []int               // packets not yet delivered, per transfer
	toInject []int               // packets not yet across the first link, per transfer
	doneT    []bool              // per transfer, for stall diagnostics
	done     int

	// payloadTotal/wireTotal are computed once and restored on reset.
	payloadTotal int64
	wireTotal    int64

	// pkts is the packet arena; freeHead threads recycled slots. The arena
	// grows to the peak in-flight packet count and is then reused.
	pkts     []packet
	freeHead int32

	linkBusy  []bool
	linkQueue []pktRing
	// bufFree[l] is the remaining input-buffer space at link l's
	// downstream router. Only link l feeds that buffer, so when space
	// frees we simply retry link l.
	bufFree []int64
	bufCap  int64

	// Lockstep state (same semantics as the fluid engine).
	lockstep bool
	estStep  sim.Time
	clocks   []pktNodeClock
	sends    [][]int32
	waiting  [][]int32 // per node: dep-satisfied transfers parked for their step
	scratch  []int32   // reused by enterStep to drain waiting without aliasing
}

type pktNodeClock struct {
	steps   []int
	idx     int
	entered bool
	pending int
	injEnd  sim.Time
}

// init builds the immutable schedule-derived state. Mutable state is set
// by reset before every run.
func (ps *packetSim) init(s *collective.Schedule, cfg Config) {
	n := len(s.Transfers)
	nl := len(s.Topo.Links())
	ps.s, ps.cfg, ps.tr = s, cfg, cfg.Tracer
	ps.res = &Result{
		TransferDone: make([]sim.Time, n),
		LinkBusy:     make([]sim.Time, nl),
	}
	ps.depsLeft = make([]int, n)
	ps.succ = make([][]int32, n)
	ps.paths = make([][]topology.LinkID, n)
	ps.pktsLeft = make([]int, n)
	ps.toInject = make([]int, n)
	ps.doneT = make([]bool, n)
	ps.linkBusy = make([]bool, nl)
	ps.linkQueue = make([]pktRing, nl)
	ps.bufFree = make([]int64, nl)
	ps.lockstep = cfg.Lockstep
	ps.eng.Trace = cfg.Tracer
	ps.eng.Dispatch = ps.dispatch
	ps.bufCap = int64(cfg.VCs) * int64(cfg.VCDepthFlits) * int64(cfg.FlitBytes)
	maxWire, minBW := int64(0), math.Inf(1)
	for _, l := range s.Topo.Links() {
		if l.Bandwidth < minBW {
			minBW = l.Bandwidth
		}
	}
	for i := range s.Transfers {
		t := &s.Transfers[i]
		for _, d := range t.Deps {
			ps.succ[d] = append(ps.succ[d], int32(i))
		}
		ps.paths[i] = s.PathOf(t)
		w := cfg.WireBytes(s.Bytes(t))
		if w > maxWire {
			maxWire = w
		}
		ps.payloadTotal += s.Bytes(t)
		ps.wireTotal += w
	}
	ps.estStep = sim.Time(math.Ceil(float64(maxWire) / minBW))

	if ps.lockstep {
		nNodes := s.Topo.Nodes()
		ps.clocks = make([]pktNodeClock, nNodes)
		ps.sends = make([][]int32, nNodes)
		ps.waiting = make([][]int32, nNodes)
		for i := range s.Transfers {
			ps.sends[s.Transfers[i].Src] = append(ps.sends[s.Transfers[i].Src], int32(i))
		}
		for node := range ps.sends {
			ids := ps.sends[node]
			sort.SliceStable(ids, func(a, b int) bool {
				return s.Transfers[ids[a]].Step < s.Transfers[ids[b]].Step
			})
			c := &ps.clocks[node]
			last := -1
			for _, id := range ids {
				if st := s.Transfers[id].Step; st != last {
					c.steps = append(c.steps, st)
					last = st
				}
			}
		}
	}
}

// reset restores the mutable state for a fresh deterministic run while
// keeping every backing array.
func (ps *packetSim) reset() {
	s := ps.s
	ps.eng.Reset()
	ps.res.Cycles = 0
	ps.res.PayloadBytes = ps.payloadTotal
	ps.res.WireBytes = ps.wireTotal
	for i := range s.Transfers {
		ps.depsLeft[i] = len(s.Transfers[i].Deps)
		ps.pktsLeft[i] = 0
		ps.toInject[i] = 0
		ps.doneT[i] = false
		ps.res.TransferDone[i] = 0
	}
	for l := range ps.bufFree {
		ps.bufFree[l] = ps.bufCap
		ps.linkBusy[l] = false
		ps.linkQueue[l].reset()
		ps.res.LinkBusy[l] = 0
	}
	ps.pkts = ps.pkts[:0]
	ps.freeHead = -1
	ps.done = 0
	for i := range ps.clocks {
		c := &ps.clocks[i]
		c.idx, c.entered, c.pending, c.injEnd = 0, false, 0, 0
		ps.waiting[i] = ps.waiting[i][:0]
	}
}

// dispatch is the engine's typed fast path: one switch instead of one
// heap-allocated closure per event.
func (ps *packetSim) dispatch(kind sim.Kind, a, b int32) {
	switch kind {
	case evRelease:
		ps.release(a)
	case evSerDone:
		ps.serDone(a, topology.LinkID(b))
	case evArrive:
		ps.arrive(a)
	case evEnterStep:
		ps.enterStep(int(a))
	case evDelivered:
		ps.delivered(a)
	case evLinkFault:
		ch := ps.flt.Changes()[a]
		if ps.tr != nil {
			scale := ch.BWScale
			if ch.Down {
				scale = 0
			}
			ps.tr.Emit(obs.Event{
				Kind: obs.EvLinkFault, At: float64(ps.eng.Now()),
				Link: int32(ch.Link), Busy: scale, Dur: float64(ch.AddLatency),
			})
		}
		// Nothing to re-arm: serialization rates are sampled when a packet
		// starts crossing, and a link that just died strands its queue
		// (tryTransmit refuses), which the post-run stall check reports.
	}
}

// allocPacket takes a slot from the free list or grows the arena.
func (ps *packetSim) allocPacket(transfer int32, wire int64, path []topology.LinkID) int32 {
	if i := ps.freeHead; i >= 0 {
		p := &ps.pkts[i]
		ps.freeHead = p.next
		p.transfer, p.next, p.hop, p.wire, p.path = transfer, -1, 0, wire, path
		return i
	}
	ps.pkts = append(ps.pkts, packet{transfer: transfer, next: -1, wire: wire, path: path})
	return int32(len(ps.pkts) - 1)
}

// freePacket returns a delivered packet's slot to the free list.
func (ps *packetSim) freePacket(i int32) {
	p := &ps.pkts[i]
	p.path = nil
	p.next = ps.freeHead
	ps.freeHead = i
}

// seed enters every sending node's first step, schedules fault
// activations, and releases dependency-free transfers at cycle 0.
func (ps *packetSim) seed() {
	if ps.flt != nil {
		// Scheduled here rather than in init so a reused PacketSim re-arms
		// the fault timeline on every Run.
		for i, ch := range ps.flt.Changes() {
			ps.eng.ScheduleKind(ch.At, evLinkFault, int32(i), 0)
		}
	}
	if ps.lockstep {
		for node := range ps.clocks {
			c := &ps.clocks[node]
			if len(c.steps) == 0 {
				continue
			}
			// Leading NOPs stall like any other gap (§IV-A).
			if gap := sim.Time(c.steps[0]-1) * ps.estStep; gap > 0 {
				ps.eng.ScheduleKind(gap, evEnterStep, int32(node), 0)
			} else {
				ps.enterStep(node)
			}
		}
	}
	for i := range ps.depsLeft {
		if ps.depsLeft[i] == 0 {
			ps.eng.ScheduleKind(0, evRelease, int32(i), 0)
		}
	}
}

// release is called when a transfer's dependencies are met; it injects
// immediately or parks until the sender's lockstep gate opens.
func (ps *packetSim) release(id int32) {
	t := &ps.s.Transfers[id]
	if ps.tr != nil {
		ps.tr.Emit(obs.Event{
			Kind: obs.EvTransferReady, At: float64(ps.eng.Now()), Transfer: id,
			Node: int32(t.Src), Flow: int32(t.Flow), Step: int32(t.Step),
		})
	}
	if ps.lockstep {
		c := &ps.clocks[t.Src]
		if !(c.entered && c.idx < len(c.steps) && c.steps[c.idx] == t.Step) {
			ps.waiting[t.Src] = append(ps.waiting[t.Src], id)
			return
		}
	}
	ps.inject(id)
}

// inject packetizes a transfer and enqueues its packets on the first link
// of its path. Per-packet wire sizes are computed arithmetically — all
// packets carry a full payload except the last, and head-flit overhead
// falls on every packet (packet-based) or only the first (message-based)
// — so no per-transfer size slice is built.
func (ps *packetSim) inject(id int32) {
	t := &ps.s.Transfers[id]
	path := ps.paths[id]
	payload := ps.s.Bytes(t)
	flit := int64(ps.cfg.FlitBytes)
	var nPkts int64
	if payload > 0 {
		nPkts = (payload + int64(ps.cfg.PayloadBytes) - 1) / int64(ps.cfg.PayloadBytes)
	}
	if ps.tr != nil {
		ps.tr.Emit(obs.Event{
			Kind: obs.EvTransferInjected, At: float64(ps.eng.Now()), Transfer: id,
			Node: int32(t.Src), Flow: int32(t.Flow), Step: int32(t.Step),
			Bytes: ps.cfg.WireBytes(payload),
		})
	}
	ps.pktsLeft[id] = int(nPkts)
	ps.toInject[id] = int(nPkts)
	if nPkts == 0 {
		ps.eng.AfterKind(ps.s.Topo.PathLatency(path), evDelivered, id, 0)
		ps.injectionDone(int(t.Src))
		return
	}
	// All packets but the last carry a full payload; PayloadBytes is a
	// whole number of flits (validated), so only the remainder rounds up.
	fullWire := int64(ps.cfg.PayloadBytes)
	lastChunk := payload - (nPkts-1)*int64(ps.cfg.PayloadBytes)
	lastWire := (lastChunk + flit - 1) / flit * flit
	first := path[0]
	for i := int64(0); i < nPkts; i++ {
		wire := fullWire
		if i == nPkts-1 {
			wire = lastWire
		}
		if !ps.cfg.MessageBased || i == 0 {
			wire += flit
		}
		ps.linkQueue[first].push(ps.allocPacket(id, wire, path))
	}
	ps.tryTransmit(first)
}

// tryTransmit starts serving the head packet of a link's queue if the link
// is idle and the downstream buffer has room. It re-arms itself after each
// serialization completes, so a blocked link retries whenever its buffer
// frees or a new packet arrives.
func (ps *packetSim) tryTransmit(l topology.LinkID) {
	if ps.linkBusy[l] || ps.linkQueue[l].len() == 0 {
		return
	}
	if ps.flt != nil {
		if at, down := ps.flt.DownAt(l); down && at <= ps.eng.Now() {
			return // link died; its queue is stranded and the run will stall
		}
	}
	pi := ps.linkQueue[l].front()
	p := &ps.pkts[pi]
	lastHop := int(p.hop) == len(p.path)-1
	if !lastHop && ps.bufFree[l] < p.wire {
		if ps.tr != nil {
			ps.tr.Emit(obs.Event{
				Kind: obs.EvLinkBlocked, At: float64(ps.eng.Now()),
				Link: int32(l), Transfer: p.transfer, Bytes: p.wire,
			})
		}
		return // backpressured; retried when the buffer frees
	}
	ps.linkQueue[l].pop()
	if !lastHop {
		ps.bufFree[l] -= p.wire
	}
	if p.hop > 0 {
		// Departing frees the input buffer of the previous link and may
		// unblock it.
		prev := p.path[p.hop-1]
		ps.bufFree[prev] += p.wire
		ps.tryTransmit(prev)
	}
	ps.linkBusy[l] = true
	link := ps.s.Topo.Link(l)
	bw := link.Bandwidth
	if ps.flt != nil {
		bw = ps.flt.Bandwidth(l, bw, float64(ps.eng.Now()))
	}
	ser := sim.Time(math.Ceil(float64(p.wire) / bw))
	ps.res.LinkBusy[l] += ser
	if ps.tr != nil {
		t := &ps.s.Transfers[p.transfer]
		ps.tr.Emit(obs.Event{
			Kind: obs.EvLinkAcquired, At: float64(ps.eng.Now()),
			Dur: float64(ser), Busy: float64(ser),
			Link: int32(l), Transfer: p.transfer, Node: int32(t.Src),
			Flow: int32(t.Flow), Step: int32(t.Step), Bytes: p.wire,
		})
	}
	ps.eng.AfterKind(ser, evSerDone, pi, int32(l))
}

// serDone handles a packet's last byte leaving link l: the link frees,
// first-hop departures advance the sender's lockstep clock, and the
// packet arrives downstream one propagation delay later. The packet's hop
// index is unchanged until arrive, so first/last-hop are derived here
// exactly as the serialization closure captured them before the rewrite.
func (ps *packetSim) serDone(pi int32, l topology.LinkID) {
	p := &ps.pkts[pi]
	ps.linkBusy[l] = false
	if p.hop == 0 {
		ps.toInject[p.transfer]--
		if ps.toInject[p.transfer] == 0 {
			ps.injectionDone(int(ps.s.Transfers[p.transfer].Src))
		}
	}
	ps.tryTransmit(l)
	lat := ps.s.Topo.Link(l).Latency
	if ps.flt != nil {
		lat += ps.flt.ExtraLatency(l, float64(ps.eng.Now()))
	}
	ps.eng.AfterKind(lat, evArrive, pi, 0)
}

// arrive handles a packet reaching the downstream end of its current link.
func (ps *packetSim) arrive(pi int32) {
	p := &ps.pkts[pi]
	if int(p.hop) == len(p.path)-1 {
		// Eject into the destination NI; router buffer space was never
		// charged for the final hop.
		tr := p.transfer
		ps.freePacket(pi)
		ps.pktsLeft[tr]--
		if ps.pktsLeft[tr] == 0 {
			ps.delivered(tr)
		}
		return
	}
	p.hop++
	next := p.path[p.hop]
	ps.linkQueue[next].push(pi)
	ps.tryTransmit(next)
}

// delivered marks a transfer complete and releases its dependents.
func (ps *packetSim) delivered(id int32) {
	ps.res.TransferDone[id] = ps.eng.Now()
	ps.doneT[id] = true
	ps.done++
	if ps.tr != nil {
		t := &ps.s.Transfers[id]
		ps.tr.Emit(obs.Event{
			Kind: obs.EvTransferDelivered, At: float64(ps.eng.Now()), Transfer: id,
			Node: int32(t.Dst), Flow: int32(t.Flow), Step: int32(t.Step),
		})
	}
	for _, nxt := range ps.succ[id] {
		ps.depsLeft[nxt]--
		if ps.depsLeft[nxt] == 0 {
			ps.release(nxt)
		}
	}
}

// enterStep opens a node's lockstep gate for its current step and releases
// parked transfers. The parked list is drained through a reused scratch
// buffer so releases that re-park (for a later step) append to the
// waiting slice without aliasing the iteration.
func (ps *packetSim) enterStep(node int) {
	c := &ps.clocks[node]
	c.entered = true
	c.injEnd = ps.eng.Now()
	step := c.steps[c.idx]
	if ps.tr != nil {
		ps.tr.Emit(obs.Event{
			Kind: obs.EvStepEnter, At: float64(ps.eng.Now()),
			Node: int32(node), Step: int32(step),
		})
	}
	c.pending = 0
	for _, id := range ps.sends[node] {
		if ps.s.Transfers[id].Step == step {
			c.pending++
		}
	}
	ps.scratch = append(ps.scratch[:0], ps.waiting[node]...)
	ps.waiting[node] = ps.waiting[node][:0]
	for _, id := range ps.scratch {
		ps.release(id)
	}
}

// injectionDone advances the node's lockstep clock once all sends of its
// current step have left the NI, charging estStep stalls for NOP gaps.
func (ps *packetSim) injectionDone(node int) {
	if !ps.lockstep {
		return
	}
	c := &ps.clocks[node]
	if now := ps.eng.Now(); now > c.injEnd {
		c.injEnd = now
	}
	c.pending--
	if c.pending > 0 {
		return
	}
	prev := c.steps[c.idx]
	c.idx++
	if c.idx >= len(c.steps) {
		return
	}
	gap := sim.Time(c.steps[c.idx]-prev-1) * ps.estStep
	c.entered = false
	ps.eng.ScheduleKind(c.injEnd+gap, evEnterStep, int32(node), 0)
}
