package network

import (
	"fmt"
	"math"
	"sort"

	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/sim"
	"multitree/internal/topology"
)

// SimulatePackets executes an all-reduce schedule at packet granularity:
// transfers are packetized per the configured flow control, packets move
// hop by hop through per-link FIFO queues with serialization delay
// wire/bandwidth plus propagation delay per link, and each link's
// downstream input buffer (VCs x depth flits) exerts backpressure on the
// link. It is slower but higher-fidelity than SimulateFluid and serves as
// the reference engine in cross-validation tests and the fidelity
// ablation bench.
func SimulatePackets(s *collective.Schedule, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		TransferDone: make([]sim.Time, len(s.Transfers)),
		LinkBusy:     make([]sim.Time, len(s.Topo.Links())),
	}
	if len(s.Transfers) == 0 {
		return res, nil
	}
	ps := newPacketSim(s, cfg, res)
	ps.seed()
	ps.eng.Run()
	if ps.done != len(s.Transfers) {
		return nil, fmt.Errorf("network: packet simulation stalled with %d/%d transfers done (%s on %s)",
			ps.done, len(s.Transfers), s.Algorithm, s.Topo.Name())
	}
	res.Cycles = ps.eng.Now()
	return res, nil
}

// packet is one on-wire unit of a transfer.
type packet struct {
	transfer int32
	wire     int64 // bytes on the wire including its head-flit share
	path     []topology.LinkID
	hop      int // index of the link the packet crosses next
}

type packetSim struct {
	s   *collective.Schedule
	cfg Config
	eng sim.Engine
	res *Result
	tr  obs.Tracer

	depsLeft []int
	succ     [][]int32
	pktsLeft []int // packets not yet delivered, per transfer
	toInject []int // packets not yet across the first link, per transfer
	done     int

	linkBusy  []bool
	linkQueue [][]*packet
	// bufFree[l] is the remaining input-buffer space at link l's
	// downstream router. Only link l feeds that buffer, so when space
	// frees we simply retry link l.
	bufFree []int64

	// Lockstep state (same semantics as the fluid engine).
	lockstep bool
	estStep  sim.Time
	clocks   []pktNodeClock
	sends    [][]int32
	waiting  [][]int32 // per node: dep-satisfied transfers parked for their step
}

type pktNodeClock struct {
	steps   []int
	idx     int
	entered bool
	pending int
	injEnd  sim.Time
}

func newPacketSim(s *collective.Schedule, cfg Config, res *Result) *packetSim {
	n := len(s.Transfers)
	nl := len(s.Topo.Links())
	ps := &packetSim{
		s: s, cfg: cfg, res: res, tr: cfg.Tracer,
		depsLeft:  make([]int, n),
		succ:      make([][]int32, n),
		pktsLeft:  make([]int, n),
		toInject:  make([]int, n),
		linkBusy:  make([]bool, nl),
		linkQueue: make([][]*packet, nl),
		bufFree:   make([]int64, nl),
		lockstep:  cfg.Lockstep,
	}
	ps.eng.Trace = cfg.Tracer
	bufCap := int64(cfg.VCs) * int64(cfg.VCDepthFlits) * int64(cfg.FlitBytes)
	for l := range ps.bufFree {
		ps.bufFree[l] = bufCap
	}
	maxWire, minBW := int64(0), math.Inf(1)
	for _, l := range s.Topo.Links() {
		if l.Bandwidth < minBW {
			minBW = l.Bandwidth
		}
	}
	for i := range s.Transfers {
		t := &s.Transfers[i]
		ps.depsLeft[i] = len(t.Deps)
		for _, d := range t.Deps {
			ps.succ[d] = append(ps.succ[d], int32(i))
		}
		w := cfg.WireBytes(s.Bytes(t))
		if w > maxWire {
			maxWire = w
		}
		res.PayloadBytes += s.Bytes(t)
		res.WireBytes += w
	}
	ps.estStep = sim.Time(math.Ceil(float64(maxWire) / minBW))

	if ps.lockstep {
		nNodes := s.Topo.Nodes()
		ps.clocks = make([]pktNodeClock, nNodes)
		ps.sends = make([][]int32, nNodes)
		ps.waiting = make([][]int32, nNodes)
		for i := range s.Transfers {
			ps.sends[s.Transfers[i].Src] = append(ps.sends[s.Transfers[i].Src], int32(i))
		}
		for node := range ps.sends {
			ids := ps.sends[node]
			sort.SliceStable(ids, func(a, b int) bool {
				return s.Transfers[ids[a]].Step < s.Transfers[ids[b]].Step
			})
			c := &ps.clocks[node]
			last := -1
			for _, id := range ids {
				if st := s.Transfers[id].Step; st != last {
					c.steps = append(c.steps, st)
					last = st
				}
			}
		}
	}
	return ps
}

// seed enters every sending node's first step and releases dependency-free
// transfers at cycle 0.
func (ps *packetSim) seed() {
	if ps.lockstep {
		for node := range ps.clocks {
			c := &ps.clocks[node]
			if len(c.steps) == 0 {
				continue
			}
			// Leading NOPs stall like any other gap (§IV-A).
			if gap := sim.Time(c.steps[0]-1) * ps.estStep; gap > 0 {
				n := node
				ps.eng.Schedule(gap, func() { ps.enterStep(n) })
			} else {
				ps.enterStep(node)
			}
		}
	}
	for i := range ps.depsLeft {
		if ps.depsLeft[i] == 0 {
			id := int32(i)
			ps.eng.Schedule(0, func() { ps.release(id) })
		}
	}
}

// release is called when a transfer's dependencies are met; it injects
// immediately or parks until the sender's lockstep gate opens.
func (ps *packetSim) release(id int32) {
	t := &ps.s.Transfers[id]
	if ps.tr != nil {
		ps.tr.Emit(obs.Event{
			Kind: obs.EvTransferReady, At: float64(ps.eng.Now()), Transfer: id,
			Node: int32(t.Src), Flow: int32(t.Flow), Step: int32(t.Step),
		})
	}
	if ps.lockstep {
		c := &ps.clocks[t.Src]
		if !(c.entered && c.idx < len(c.steps) && c.steps[c.idx] == t.Step) {
			ps.waiting[t.Src] = append(ps.waiting[t.Src], id)
			return
		}
	}
	ps.inject(id)
}

// inject packetizes a transfer and enqueues its packets on the first link
// of its path.
func (ps *packetSim) inject(id int32) {
	t := &ps.s.Transfers[id]
	path := ps.s.PathOf(t)
	pkts := ps.packetize(ps.s.Bytes(t))
	if ps.tr != nil {
		ps.tr.Emit(obs.Event{
			Kind: obs.EvTransferInjected, At: float64(ps.eng.Now()), Transfer: id,
			Node: int32(t.Src), Flow: int32(t.Flow), Step: int32(t.Step),
			Bytes: ps.cfg.WireBytes(ps.s.Bytes(t)),
		})
	}
	ps.pktsLeft[id] = len(pkts)
	ps.toInject[id] = len(pkts)
	if len(pkts) == 0 {
		ps.eng.After(ps.s.Topo.PathLatency(path), func() { ps.delivered(id) })
		ps.injectionDone(int(t.Src))
		return
	}
	first := path[0]
	for _, w := range pkts {
		ps.linkQueue[first] = append(ps.linkQueue[first], &packet{
			transfer: id, wire: w, path: path,
		})
	}
	ps.tryTransmit(first)
}

// packetize splits a payload into per-packet wire sizes (Fig. 7): under
// packet-based flow control every packet carries a head flit; under
// message-based flow control only the first sub-packet does.
func (ps *packetSim) packetize(payload int64) []int64 {
	if payload <= 0 {
		return nil
	}
	flit := int64(ps.cfg.FlitBytes)
	var out []int64
	rem := payload
	first := true
	for rem > 0 {
		chunk := int64(ps.cfg.PayloadBytes)
		if rem < chunk {
			chunk = rem
		}
		rem -= chunk
		wire := (chunk + flit - 1) / flit * flit
		if !ps.cfg.MessageBased || first {
			wire += flit
		}
		out = append(out, wire)
		first = false
	}
	return out
}

// tryTransmit starts serving the head packet of a link's queue if the link
// is idle and the downstream buffer has room. It re-arms itself after each
// serialization completes, so a blocked link retries whenever its buffer
// frees or a new packet arrives.
func (ps *packetSim) tryTransmit(l topology.LinkID) {
	if ps.linkBusy[l] || len(ps.linkQueue[l]) == 0 {
		return
	}
	p := ps.linkQueue[l][0]
	lastHop := p.hop == len(p.path)-1
	if !lastHop && ps.bufFree[l] < p.wire {
		if ps.tr != nil {
			ps.tr.Emit(obs.Event{
				Kind: obs.EvLinkBlocked, At: float64(ps.eng.Now()),
				Link: int32(l), Transfer: p.transfer, Bytes: p.wire,
			})
		}
		return // backpressured; retried when the buffer frees
	}
	ps.linkQueue[l] = ps.linkQueue[l][1:]
	if !lastHop {
		ps.bufFree[l] -= p.wire
	}
	if p.hop > 0 {
		// Departing frees the input buffer of the previous link and may
		// unblock it.
		prev := p.path[p.hop-1]
		ps.bufFree[prev] += p.wire
		ps.tryTransmit(prev)
	}
	ps.linkBusy[l] = true
	link := ps.s.Topo.Link(l)
	ser := sim.Time(math.Ceil(float64(p.wire) / link.Bandwidth))
	ps.res.LinkBusy[l] += ser
	if ps.tr != nil {
		t := &ps.s.Transfers[p.transfer]
		ps.tr.Emit(obs.Event{
			Kind: obs.EvLinkAcquired, At: float64(ps.eng.Now()),
			Dur: float64(ser), Busy: float64(ser),
			Link: int32(l), Transfer: p.transfer, Node: int32(t.Src),
			Flow: int32(t.Flow), Step: int32(t.Step), Bytes: p.wire,
		})
	}
	firstHop := p.hop == 0
	ps.eng.After(ser, func() {
		ps.linkBusy[l] = false
		if firstHop {
			ps.toInject[p.transfer]--
			if ps.toInject[p.transfer] == 0 {
				ps.injectionDone(int(ps.s.Transfers[p.transfer].Src))
			}
		}
		ps.tryTransmit(l)
		ps.eng.After(link.Latency, func() { ps.arrive(p, lastHop) })
	})
}

// arrive handles a packet reaching the downstream end of its current link.
func (ps *packetSim) arrive(p *packet, lastHop bool) {
	if lastHop {
		// Eject into the destination NI; router buffer space was never
		// charged for the final hop.
		ps.pktsLeft[p.transfer]--
		if ps.pktsLeft[p.transfer] == 0 {
			ps.delivered(p.transfer)
		}
		return
	}
	p.hop++
	next := p.path[p.hop]
	ps.linkQueue[next] = append(ps.linkQueue[next], p)
	ps.tryTransmit(next)
}

// delivered marks a transfer complete and releases its dependents.
func (ps *packetSim) delivered(id int32) {
	ps.res.TransferDone[id] = ps.eng.Now()
	ps.done++
	if ps.tr != nil {
		t := &ps.s.Transfers[id]
		ps.tr.Emit(obs.Event{
			Kind: obs.EvTransferDelivered, At: float64(ps.eng.Now()), Transfer: id,
			Node: int32(t.Dst), Flow: int32(t.Flow), Step: int32(t.Step),
		})
	}
	for _, nxt := range ps.succ[id] {
		ps.depsLeft[nxt]--
		if ps.depsLeft[nxt] == 0 {
			ps.release(nxt)
		}
	}
}

// enterStep opens a node's lockstep gate for its current step and releases
// parked transfers.
func (ps *packetSim) enterStep(node int) {
	c := &ps.clocks[node]
	c.entered = true
	c.injEnd = ps.eng.Now()
	step := c.steps[c.idx]
	if ps.tr != nil {
		ps.tr.Emit(obs.Event{
			Kind: obs.EvStepEnter, At: float64(ps.eng.Now()),
			Node: int32(node), Step: int32(step),
		})
	}
	c.pending = 0
	for _, id := range ps.sends[node] {
		if ps.s.Transfers[id].Step == step {
			c.pending++
		}
	}
	parked := ps.waiting[node]
	ps.waiting[node] = nil
	for _, id := range parked {
		ps.release(id)
	}
}

// injectionDone advances the node's lockstep clock once all sends of its
// current step have left the NI, charging estStep stalls for NOP gaps.
func (ps *packetSim) injectionDone(node int) {
	if !ps.lockstep {
		return
	}
	c := &ps.clocks[node]
	if now := ps.eng.Now(); now > c.injEnd {
		c.injEnd = now
	}
	c.pending--
	if c.pending > 0 {
		return
	}
	prev := c.steps[c.idx]
	c.idx++
	if c.idx >= len(c.steps) {
		return
	}
	gap := sim.Time(c.steps[c.idx]-prev-1) * ps.estStep
	c.entered = false
	ps.eng.Schedule(c.injEnd+gap, func() { ps.enterStep(node) })
}
