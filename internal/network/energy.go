package network

import (
	"multitree/internal/collective"
)

// The paper motivates message-based flow control not only by bandwidth but
// by energy: "the head flits of these consecutive packets contain
// redundant information, leading to unnecessary bandwidth overhead" and
// per-packet routing/arbitration "causing extra delay and energy
// consumption" (§II-C, §IV-B). This file quantifies that argument with an
// event-count energy model: every flit traversal, buffer access, packet
// routing computation and switch arbitration carries a fixed energy cost,
// and the two flow controls differ in how many of each event a gradient
// exchange generates.

// EnergyModel holds per-event energies in picojoules. Defaults follow the
// usual published NoC/off-chip ballpark (Orion-class models): link
// traversal dominated by wire energy per flit, router events a few pJ.
type EnergyModel struct {
	LinkFlitPJ    float64 // one flit crossing one link
	BufferFlitPJ  float64 // one flit written + read in an input buffer
	RoutePacketPJ float64 // one routing computation (per packet head, per hop)
	ArbPacketPJ   float64 // one switch allocation (per packet, per hop)
}

// DefaultEnergyModel returns representative per-event costs.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		LinkFlitPJ:    8.0,
		BufferFlitPJ:  1.5,
		RoutePacketPJ: 1.0,
		ArbPacketPJ:   1.2,
	}
}

// EnergyBreakdown reports the estimated energy of one all-reduce.
type EnergyBreakdown struct {
	Flits   int64 // flit-hops
	Packets int64 // packet-hops (routing + arbitration events)

	LinkPJ   float64
	BufferPJ float64
	RoutePJ  float64
	ArbPJ    float64
}

// TotalPJ returns the total estimated energy in picojoules.
func (e EnergyBreakdown) TotalPJ() float64 {
	return e.LinkPJ + e.BufferPJ + e.RoutePJ + e.ArbPJ
}

// TotalUJ returns the total in microjoules.
func (e EnergyBreakdown) TotalUJ() float64 { return e.TotalPJ() / 1e6 }

// EstimateEnergy computes the event counts of executing a schedule under
// the given flow control and prices them with the model. Counts are
// static (independent of contention): every transfer contributes its
// on-wire flits and its packet count once per hop of its path.
//
// Message-based flow control wins twice: fewer flits (one head flit per
// gradient message instead of per packet) and, more importantly, far
// fewer routing/arbitration events, since sub-packets of an established
// message stream through without re-arbitration (§IV-B's
// circuit-switching-without-setup behaviour).
func EstimateEnergy(s *collective.Schedule, cfg Config, m EnergyModel) (EnergyBreakdown, error) {
	if err := cfg.validate(); err != nil {
		return EnergyBreakdown{}, err
	}
	var out EnergyBreakdown
	flit := int64(cfg.FlitBytes)
	for i := range s.Transfers {
		t := &s.Transfers[i]
		payload := s.Bytes(t)
		if payload <= 0 {
			continue
		}
		hops := int64(len(s.PathOf(t)))
		wire := cfg.WireBytes(payload)
		flits := wire / flit
		var arbEvents int64
		if cfg.MessageBased {
			// One routing/arbitration event per message per hop: the head
			// sub-packet sets up the path; body sub-packets follow it.
			arbEvents = 1
		} else {
			arbEvents = (payload + int64(cfg.PayloadBytes) - 1) / int64(cfg.PayloadBytes)
		}
		out.Flits += flits * hops
		out.Packets += arbEvents * hops
	}
	out.LinkPJ = float64(out.Flits) * m.LinkFlitPJ
	out.BufferPJ = float64(out.Flits) * m.BufferFlitPJ
	out.RoutePJ = float64(out.Packets) * m.RoutePacketPJ
	out.ArbPJ = float64(out.Packets) * m.ArbPacketPJ
	return out, nil
}
