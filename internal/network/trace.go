package network

import (
	"fmt"

	"multitree/internal/collective"
	"multitree/internal/obs"
)

// TraceMetaFor builds the Chrome-trace track metadata of a schedule's
// topology: one named track per directed link ("n0->n1", "n3->s16") and
// one per node's NI.
func TraceMetaFor(s *collective.Schedule, title string) obs.TraceMeta {
	links := s.Topo.Links()
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = fmt.Sprintf("%s->%s", s.Topo.VertexName(l.Src), s.Topo.VertexName(l.Dst))
	}
	if title == "" {
		title = fmt.Sprintf("%s on %s", s.Algorithm, s.Topo.Name())
	}
	return obs.TraceMeta{Title: title, LinkNames: names, Nodes: s.Topo.Nodes()}
}
