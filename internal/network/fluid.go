package network

import (
	"fmt"
	"math"
	"strings"

	"multitree/internal/collective"
	"multitree/internal/faults"
	"multitree/internal/obs"
	"multitree/internal/sim"
	"multitree/internal/topology"
)

// SimulateFluid executes an all-reduce schedule with the flow-level
// engine: each transfer, once its dependencies (and, under lockstep, its
// node's time step) allow, becomes a fluid flow across its routed links;
// concurrent flows share each link max-min fairly; a flow's payload is
// delivered one path-latency after its last byte is injected (virtual
// cut-through pipelining). Head-flit overhead inflates the on-wire volume
// per Config.WireBytes.
func SimulateFluid(s *collective.Schedule, cfg Config) (*Result, error) {
	fs, err := NewFluidSim(s, cfg)
	if err != nil {
		return nil, err
	}
	return fs.Run()
}

// FluidSim is a reusable flow-level simulator for one schedule and
// configuration, the fluid counterpart of PacketSim. Run may be called
// repeatedly: every run resets the mutable state but keeps all backing
// storage (typed event heap, rate scratch arrays, link occupancy arena),
// so steady-state re-simulation performs zero heap allocations (see
// TestFluidEngineSteadyStateAllocs). Runs are deterministic and
// cycle-identical to each other and to a fresh SimulateFluid.
type FluidSim struct {
	st fluidState
}

// NewFluidSim validates the configuration and builds the immutable
// schedule-derived state (dependency graph, per-transfer paths and wire
// volumes, lockstep step lists, byte totals, dense per-link scratch).
func NewFluidSim(s *collective.Schedule, cfg Config) (*FluidSim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	flt, err := faults.Compile(cfg.Faults, s.Topo)
	if err != nil {
		return nil, err
	}
	fs := &FluidSim{}
	fs.st.init(s, cfg, flt)
	return fs, nil
}

// Run simulates the schedule and returns the result. The returned Result
// is owned by the simulator and overwritten by the next Run; callers that
// keep results across runs must copy them.
func (fs *FluidSim) Run() (*Result, error) {
	return fs.st.run()
}

// fluidFlow is the per-transfer simulation state.
type fluidFlow struct {
	path    []topology.LinkID
	wire    float64 // total on-wire bytes
	rem     float64 // bytes not yet injected
	rate    float64
	latency float64 // path latency in cycles
	start   float64 // activation time, for trace spans

	step     int32 // lockstep step, cached from the transfer
	depsLeft int
	state    flowState
}

type flowState uint8

const (
	fsWaiting  flowState = iota // deps or node step pending
	fsActive                    // injecting
	fsInFlight                  // injected, traversing the path
	fsDone
)

// timedEvent is a transfer arrival (delivery), a node step entry, or a
// fault activation.
type timedEvent struct {
	at   float64
	kind uint8 // tevArrival, tevStepEntry or tevFault
	id   int   // transfer id, node id, or fault-change index
}

const (
	tevArrival   = iota // transfer delivery at its destination
	tevStepEntry        // deferred lockstep step entry
	tevFault            // fault activation (Config.Faults)
)

// tevLess is a total order (at, kind, id), not just by time: a heap gives
// equal keys an unspecified pop order, so ties must be broken for runs to
// be bit-identical. Arrivals sort before step entries at the same instant
// deliberately — a delivery at time t clears its dependents' dependencies
// before any step gate opening at t scans for releasable transfers,
// matching the packet engine, where the (at, seq) core fires the
// earlier-scheduled arrival first. Fault activations come last so rate
// changes never retroactively affect a same-instant delivery.
func tevLess(a, b timedEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.id < b.id
}

// tevHeap is a value-based 4-ary min-heap of timed events, mirroring
// internal/sim's engine heap: no container/heap interface, no `any`
// boxing, backing array reused across runs via reset. Because tevLess is
// a strict total order, the pop sequence is the fully sorted event order
// regardless of heap arity — bit-identical to the container/heap
// implementation it replaces.
type tevHeap struct {
	ev []timedEvent
}

func (h *tevHeap) len() int { return len(h.ev) }
func (h *tevHeap) reset()   { h.ev = h.ev[:0] }

func (h *tevHeap) push(e timedEvent) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !tevLess(h.ev[i], h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

func (h *tevHeap) pop() timedEvent {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *tevHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if tevLess(h.ev[j], h.ev[best]) {
				best = j
			}
		}
		if !tevLess(h.ev[best], h.ev[i]) {
			return
		}
		h.ev[i], h.ev[best] = h.ev[best], h.ev[i]
		i = best
	}
}

// nodeClock tracks one node's lockstep progress through its active steps.
type nodeClock struct {
	steps   []int // sorted distinct steps at which the node sends
	stepCnt []int // sends per entry of steps, precomputed in init
	idx     int   // index of the current active step; len(steps) when done
	entered bool  // node has entered steps[idx]
	pending int   // not-yet-injected sends in the current step
	entry   float64
	injEnd  float64 // completion time of the slowest injection this step
}

// occNode is one (flow, link) occupancy in the intrusive per-link lists
// that back the incremental rate registers. Nodes live in fluidState.occ
// and are identified by index; prev/next thread the link's list,
// nextInFlow chains one flow's occupancies (and the arena free list).
type occNode struct {
	flow       int32
	link       int32
	prev, next int32
	nextInFlow int32
}

type fluidState struct {
	s   *collective.Schedule
	cfg Config
	tr  obs.Tracer
	flt *faults.Compiled
	now float64

	flows  []fluidFlow
	succ   [][]int32
	busy   []float64 // fractional busy time per link, rounded once at report
	linkBW []float64 // base link bandwidths, cached from the topology

	active     []int32 // indices of fsActive flows
	ready      []int32 // deps satisfied, waiting to activate (step gate)
	still      []int32 // activateReady scratch, ping-ponged with ready
	ratesDirty bool
	done       int

	events tevHeap

	lockstep bool
	estStep  float64
	clocks   []nodeClock
	sends    [][]int32 // per node: transfer ids it sends, sorted by (step, id)

	res          *Result
	payloadTotal int64
	wireTotal    int64

	// Incremental rate registers, maintained on flow activate/retire:
	// cnt[l] counts path occurrences of active flows on link l and
	// minStep[l] is the minimum lockstep step among them (valid only when
	// cnt[l] > 0), kept exact by rescanning l's occupancy list when its
	// minimum-step flow retires. They replace the per-recompute
	// map[LinkID]int the step-priority filter used to rebuild.
	cnt     []int32
	minStep []int32
	occ     []occNode
	occFree int32   // head of the occNode free list; -1 when empty
	occHead []int32 // per link: head of its occupancy list; -1 when empty
	flowOcc []int32 // per flow: head of its occupancy chain; -1 when none

	// Flows activated/retired since the last rate assignment, consumed by
	// tryRateReuse; both survive recomputes that see no active flows so
	// the step-boundary drain/refill pattern can pair up across them.
	pendingNew     []int32
	pendingRetired []int32

	// Progressive-filling scratch, epoch-stamped instead of cleared:
	// fillEpoch[l] == epoch marks remCap/fillCnt[l] as initialized for
	// the current fill, and touched lists exactly those links.
	epoch     uint64
	fillEpoch []uint64
	remCap    []float64
	fillCnt   []int32
	touched   []int32
	eligible  []int32
	frozen    []bool

	// Retiree-matching scratch for tryRateReuse, epoch-stamped like the
	// fill scratch: matchStamp[l] == matchEpoch means matchFlow[l] is the
	// pending retiree whose path starts at link l.
	matchEpoch uint64
	matchStamp []uint64
	matchFlow  []int32

	noIncremental bool // test knob: force full progressive filling
	reuseHits     int  // fills skipped by tryRateReuse this run, for tests
}

const fluidEps = 1e-6

// newFluidState builds a fully seeded state, equivalent to what a fresh
// Run observes right before its event loop. Kept as an entry point for
// white-box tests.
func newFluidState(s *collective.Schedule, cfg Config, flt *faults.Compiled) *fluidState {
	st := &fluidState{}
	st.init(s, cfg, flt)
	st.reset()
	st.seed()
	return st
}

// init builds the immutable schedule-derived state. Everything here is
// computed once per FluidSim and only read by run/reset/seed.
func (st *fluidState) init(s *collective.Schedule, cfg Config, flt *faults.Compiled) {
	n := len(s.Transfers)
	nLinks := len(s.Topo.Links())
	st.s, st.cfg, st.tr, st.flt = s, cfg, cfg.Tracer, flt
	st.lockstep = cfg.Lockstep
	st.flows = make([]fluidFlow, n)
	st.succ = make([][]int32, n)
	st.busy = make([]float64, nLinks)
	st.cnt = make([]int32, nLinks)
	st.minStep = make([]int32, nLinks)
	st.occHead = make([]int32, nLinks)
	st.flowOcc = make([]int32, n)
	st.fillEpoch = make([]uint64, nLinks)
	st.remCap = make([]float64, nLinks)
	st.fillCnt = make([]int32, nLinks)
	st.matchStamp = make([]uint64, nLinks)
	st.matchFlow = make([]int32, nLinks)
	st.res = &Result{
		TransferDone: make([]sim.Time, n),
		LinkBusy:     make([]sim.Time, nLinks),
	}

	st.linkBW = make([]float64, nLinks)
	maxWire, minBW := 0.0, math.Inf(1)
	for i, l := range s.Topo.Links() {
		st.linkBW[i] = l.Bandwidth
		if l.Bandwidth < minBW {
			minBW = l.Bandwidth
		}
	}
	for i := range s.Transfers {
		t := &s.Transfers[i]
		f := &st.flows[i]
		f.path = s.PathOf(t)
		f.wire = float64(cfg.WireBytes(s.Bytes(t)))
		f.latency = float64(s.Topo.PathLatency(f.path))
		f.step = int32(t.Step)
		for _, d := range t.Deps {
			st.succ[d] = append(st.succ[d], int32(i))
		}
		if f.wire > maxWire {
			maxWire = f.wire
		}
		st.payloadTotal += s.Bytes(t)
		st.wireTotal += int64(f.wire)
	}
	st.estStep = maxWire / minBW

	if st.lockstep {
		nNodes := s.Topo.Nodes()
		st.clocks = make([]nodeClock, nNodes)
		st.sends = make([][]int32, nNodes)
		for i := range s.Transfers {
			src := int(s.Transfers[i].Src)
			st.sends[src] = append(st.sends[src], int32(i))
		}
		for node := range st.sends {
			ids := st.sends[node]
			// Stable sort by (step, id); transfers were appended in id
			// order, so an insertion sort on step keeps id order.
			for i := 1; i < len(ids); i++ {
				for j := i; j > 0 && s.Transfers[ids[j]].Step < s.Transfers[ids[j-1]].Step; j-- {
					ids[j], ids[j-1] = ids[j-1], ids[j]
				}
			}
			c := &st.clocks[node]
			last := -1
			for _, id := range ids {
				if step := s.Transfers[id].Step; step != last {
					c.steps = append(c.steps, step)
					c.stepCnt = append(c.stepCnt, 0)
					last = step
				}
				c.stepCnt[len(c.stepCnt)-1]++
			}
		}
	}
}

// reset restores the mutable state for a fresh deterministic run while
// keeping every backing array at its high-water capacity. The fill and
// match epochs deliberately survive: their stamp arrays hold stale epochs
// that simply never match again.
func (st *fluidState) reset() {
	st.now = 0
	st.done = 0
	st.ratesDirty = false
	st.reuseHits = 0
	for i := range st.flows {
		f := &st.flows[i]
		f.rem = f.wire
		f.rate = 0
		f.start = 0
		f.depsLeft = len(st.s.Transfers[i].Deps)
		f.state = fsWaiting
	}
	for i := range st.busy {
		st.busy[i] = 0
	}
	st.active = st.active[:0]
	st.ready = st.ready[:0]
	st.still = st.still[:0]
	st.events.reset()
	st.pendingNew = st.pendingNew[:0]
	st.pendingRetired = st.pendingRetired[:0]
	st.occ = st.occ[:0]
	st.occFree = -1
	for i := range st.occHead {
		st.occHead[i] = -1
		st.cnt[i] = 0
	}
	for i := range st.flowOcc {
		st.flowOcc[i] = -1
	}
	for node := range st.clocks {
		c := &st.clocks[node]
		c.idx, c.entered, c.pending = 0, false, 0
		c.entry, c.injEnd = 0, 0
	}
	st.res.Cycles = 0
	st.res.PayloadBytes = st.payloadTotal
	st.res.WireBytes = st.wireTotal
	for i := range st.res.TransferDone {
		st.res.TransferDone[i] = 0
	}
	for i := range st.res.LinkBusy {
		st.res.LinkBusy[i] = 0
	}
}

// seed arms the fault timeline, enters each node's first lockstep step
// (leading NOPs stall like any other gap, §IV-A: a node whose first send
// is at step s waits s-1 estimated steps, keeping all nodes' step clocks
// aligned without global synchronization), releases dependency-free
// transfers and computes the initial rates.
func (st *fluidState) seed() {
	if st.flt != nil {
		for i, ch := range st.flt.Changes() {
			st.events.push(timedEvent{at: float64(ch.At), kind: tevFault, id: i})
		}
	}
	if st.lockstep {
		for node := range st.clocks {
			if c := &st.clocks[node]; len(c.steps) > 0 {
				st.enterStep(node, float64(c.steps[0]-1)*st.estStep)
			}
		}
	}
	for i := range st.flows {
		if st.flows[i].depsLeft == 0 {
			st.ready = append(st.ready, int32(i))
			if st.tr != nil {
				st.tr.Emit(obs.Event{
					Kind: obs.EvTransferReady, At: 0, Transfer: int32(i),
					Node: int32(st.s.Transfers[i].Src),
					Flow: int32(st.s.Transfers[i].Flow), Step: int32(st.s.Transfers[i].Step),
				})
			}
		}
	}
	st.activateReady()
	st.recomputeRates()
}

// run is the engine's event loop, shared by SimulateFluid and FluidSim.
func (st *fluidState) run() (*Result, error) {
	st.reset()
	res := st.res
	n := len(st.flows)
	if n == 0 {
		return res, nil
	}
	st.seed()

	for st.done < n {
		tNext := st.nextEventTime()
		if math.IsInf(tNext, 1) {
			return nil, st.stallError()
		}
		st.advanceTo(tNext)
		st.processInjections(res)
		st.processTimed(res)
		st.activateReady()
		if st.ratesDirty {
			st.recomputeRates()
		}
	}
	res.Cycles = sim.Time(math.Ceil(st.now))
	// Busy time accumulates fractionally per flow and rounds once here, so
	// rounding error stays below one cycle per link however many transfers
	// crossed it (the per-transfer Ceil it replaces skewed utilization
	// against the packet engine as transfer counts grew). The epsilon keeps
	// float accumulation from pushing an exact integer over the ceiling.
	for l, b := range st.busy {
		if b > fluidEps {
			res.LinkBusy[l] = sim.Time(math.Ceil(b - fluidEps))
		}
	}
	return res, nil
}

// enterStep moves node into its next active step. NOP gaps between the
// previous and next active step each stall the estimated step time
// (§IV-A); the entry may therefore land in the future, in which case a
// timed event defers it.
func (st *fluidState) enterStep(node int, at float64) {
	c := &st.clocks[node]
	if c.idx >= len(c.steps) {
		return
	}
	if at > st.now+fluidEps {
		c.entered = false
		st.events.push(timedEvent{at: at, kind: tevStepEntry, id: node})
		return
	}
	c.entered = true
	c.entry = st.now
	c.injEnd = st.now
	step := c.steps[c.idx]
	if st.tr != nil {
		st.tr.Emit(obs.Event{
			Kind: obs.EvStepEnter, At: st.now, Node: int32(node), Step: int32(step),
		})
	}
	c.pending = c.stepCnt[c.idx]
}

// stepGateOpen reports whether lockstep permits transfer id to inject now.
func (st *fluidState) stepGateOpen(id int32) bool {
	if !st.lockstep {
		return true
	}
	t := &st.s.Transfers[id]
	c := &st.clocks[t.Src]
	return c.entered && c.idx < len(c.steps) && c.steps[c.idx] == t.Step
}

// activateReady promotes ready transfers whose step gate is open into
// active flows (or, for zero-byte flows, straight to in-flight). The
// not-yet-releasable remainder is kept in a scratch slice ping-ponged
// with ready so the filter allocates nothing in steady state.
func (st *fluidState) activateReady() {
	if len(st.ready) == 0 {
		return
	}
	still := st.still[:0]
	for _, id := range st.ready {
		if !st.stepGateOpen(id) {
			still = append(still, id)
			continue
		}
		f := &st.flows[id]
		f.start = st.now
		if st.tr != nil {
			t := &st.s.Transfers[id]
			st.tr.Emit(obs.Event{
				Kind: obs.EvTransferInjected, At: st.now, Transfer: id,
				Node: int32(t.Src), Flow: int32(t.Flow), Step: int32(t.Step),
				Bytes: int64(f.wire),
			})
		}
		if f.wire <= fluidEps {
			f.state = fsInFlight
			st.injected(id)
			continue
		}
		f.state = fsActive
		st.active = append(st.active, id)
		st.activateFlow(id)
		st.pendingNew = append(st.pendingNew, id)
		st.ratesDirty = true
	}
	old := st.ready
	st.ready = still
	st.still = old[:0]
}

// allocOcc pops a free occupancy node or grows the arena.
func (st *fluidState) allocOcc() int32 {
	if ni := st.occFree; ni >= 0 {
		st.occFree = st.occ[ni].nextInFlow
		return ni
	}
	st.occ = append(st.occ, occNode{})
	return int32(len(st.occ) - 1)
}

// activateFlow registers flow id's path in the per-link occupancy lists
// and updates the cnt/minStep registers in O(path length).
func (st *fluidState) activateFlow(id int32) {
	f := &st.flows[id]
	head := int32(-1)
	for _, l := range f.path {
		ni := st.allocOcc()
		n := &st.occ[ni]
		n.flow, n.link = id, int32(l)
		n.prev, n.next = -1, st.occHead[l]
		if n.next >= 0 {
			st.occ[n.next].prev = ni
		}
		st.occHead[l] = ni
		if st.cnt[l] == 0 || f.step < st.minStep[l] {
			st.minStep[l] = f.step
		}
		st.cnt[l]++
		n.nextInFlow = head
		head = ni
	}
	st.flowOcc[id] = head
}

// retireFlow removes flow id from the occupancy lists. When the retiring
// flow carried a link's minimum step, the link's remaining occupants are
// rescanned for the new minimum — the only super-constant step, bounded
// by that link's concurrent-flow count.
func (st *fluidState) retireFlow(id int32) {
	f := &st.flows[id]
	ni := st.flowOcc[id]
	for ni >= 0 {
		n := &st.occ[ni]
		l := n.link
		if n.prev >= 0 {
			st.occ[n.prev].next = n.next
		} else {
			st.occHead[l] = n.next
		}
		if n.next >= 0 {
			st.occ[n.next].prev = n.prev
		}
		st.cnt[l]--
		if st.cnt[l] > 0 && f.step == st.minStep[l] {
			m := int32(math.MaxInt32)
			for j := st.occHead[l]; j >= 0; j = st.occ[j].next {
				if s := st.flows[st.occ[j].flow].step; s < m {
					m = s
				}
			}
			st.minStep[l] = m
		}
		next := n.nextInFlow
		n.nextInFlow = st.occFree
		st.occFree = ni
		ni = next
	}
	st.flowOcc[id] = -1
}

// injected handles a flow whose last byte left the source: schedule its
// delivery (one path latency later, plus any fault-added latency in
// effect now) and advance the sender's lockstep clock.
func (st *fluidState) injected(id int32) {
	f := &st.flows[id]
	lat := f.latency
	if st.flt != nil {
		for _, l := range f.path {
			lat += float64(st.flt.ExtraLatency(l, st.now))
		}
	}
	st.events.push(timedEvent{at: st.now + lat, kind: tevArrival, id: int(id)})
	if !st.lockstep {
		return
	}
	node := int(st.s.Transfers[id].Src)
	c := &st.clocks[node]
	if st.now > c.injEnd {
		c.injEnd = st.now
	}
	c.pending--
	if c.pending == 0 {
		st.advanceNodeStep(node)
	}
}

// advanceNodeStep moves a node past its completed step, charging estStep
// stalls for skipped (NOP) steps before the next active one.
func (st *fluidState) advanceNodeStep(node int) {
	c := &st.clocks[node]
	prev := c.steps[c.idx]
	c.idx++
	if c.idx >= len(c.steps) {
		return
	}
	gap := c.steps[c.idx] - prev - 1
	st.enterStep(node, c.injEnd+float64(gap)*st.estStep)
}

// nextEventTime returns the earliest pending event: an active flow's
// injection completion or a timed (arrival / step-entry) event.
func (st *fluidState) nextEventTime() float64 {
	t := math.Inf(1)
	for _, id := range st.active {
		f := &st.flows[id]
		if f.rate > 0 {
			if c := st.now + f.rem/f.rate; c < t {
				t = c
			}
		}
	}
	if st.events.len() > 0 && st.events.ev[0].at < t {
		t = st.events.ev[0].at
	}
	return t
}

// advanceTo drains bandwidth from active flows up to time t.
func (st *fluidState) advanceTo(t float64) {
	dt := t - st.now
	if dt > 0 {
		for _, id := range st.active {
			f := &st.flows[id]
			f.rem -= f.rate * dt
		}
	}
	st.now = t
}

// processInjections retires active flows that finished injecting.
func (st *fluidState) processInjections(res *Result) {
	out := st.active[:0]
	for _, id := range st.active {
		f := &st.flows[id]
		if f.rem <= fluidEps {
			f.rem = 0
			f.state = fsInFlight
			for _, l := range f.path {
				st.busy[l] += f.wire / st.effBW(l)
			}
			if st.tr != nil {
				// The flow's active interval on each routed link, with the
				// busy-equivalent serialization time at full link rate, so
				// a shared link's concurrent spans never sum past 100%.
				t := &st.s.Transfers[id]
				for _, l := range f.path {
					st.tr.Emit(obs.Event{
						Kind: obs.EvLinkAcquired,
						At:   f.start, Dur: st.now - f.start,
						Busy: f.wire / st.effBW(l),
						Link: int32(l), Transfer: id, Node: int32(t.Src),
						Flow: int32(t.Flow), Step: int32(t.Step),
						Bytes: int64(f.wire),
					})
				}
			}
			st.retireFlow(id)
			st.pendingRetired = append(st.pendingRetired, id)
			st.injected(id)
			st.ratesDirty = true
		} else {
			out = append(out, id)
		}
	}
	st.active = out
}

// processTimed fires due arrivals and node step entries.
func (st *fluidState) processTimed(res *Result) {
	for st.events.len() > 0 && st.events.ev[0].at <= st.now+fluidEps {
		ev := st.events.pop()
		switch ev.kind {
		case tevArrival: // delivery at destination
			id := int32(ev.id)
			st.flows[id].state = fsDone
			st.done++
			res.TransferDone[id] = sim.Time(math.Ceil(st.now))
			if st.tr != nil {
				t := &st.s.Transfers[id]
				st.tr.Emit(obs.Event{
					Kind: obs.EvTransferDelivered, At: st.now, Transfer: id,
					Node: int32(t.Dst), Flow: int32(t.Flow), Step: int32(t.Step),
				})
			}
			for _, nxt := range st.succ[id] {
				nf := &st.flows[nxt]
				nf.depsLeft--
				if nf.depsLeft == 0 {
					st.ready = append(st.ready, nxt)
					if st.tr != nil {
						t := &st.s.Transfers[nxt]
						st.tr.Emit(obs.Event{
							Kind: obs.EvTransferReady, At: st.now, Transfer: nxt,
							Node: int32(t.Src), Flow: int32(t.Flow), Step: int32(t.Step),
						})
					}
				}
			}
		case tevStepEntry: // deferred node step entry
			st.enterStep(ev.id, st.now)
		case tevFault:
			ch := st.flt.Changes()[ev.id]
			if st.tr != nil {
				scale := ch.BWScale
				if ch.Down {
					scale = 0
				}
				st.tr.Emit(obs.Event{
					Kind: obs.EvLinkFault, At: st.now, Link: int32(ch.Link),
					Busy: scale, Dur: float64(ch.AddLatency),
				})
			}
			// Effective bandwidths changed; flows on the link re-share (a
			// dead link's flows drop to rate 0 in recomputeRates).
			st.ratesDirty = true
		}
	}
}

// effBW is link l's effective bandwidth at the current time under the
// compiled fault plan. A dead link reports the base bandwidth for busy
// accounting only when a flow somehow finished on it the very instant it
// died; rate allocation uses linkCap, which reports 0.
func (st *fluidState) effBW(l topology.LinkID) float64 {
	base := st.linkBW[l]
	if st.flt == nil {
		return base
	}
	if bw := st.flt.Bandwidth(l, base, st.now); bw > 0 {
		return bw
	}
	return base
}

// linkCap is link l's capacity for rate allocation: 0 once the link died.
func (st *fluidState) linkCap(l topology.LinkID) float64 {
	base := st.linkBW[l]
	if st.flt == nil {
		return base
	}
	return st.flt.Bandwidth(l, base, st.now)
}

// stallError describes why no transfer can make progress: the overall
// counts, then the first few blocked transfers with their unmet
// dependencies (or the failed link pinning them at rate 0, or the closed
// step gate), and under lockstep the first stuck node/step — enough to
// diagnose fault-induced stalls without a trace.
func (st *fluidState) stallError() error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "network: fluid simulation stalled with %d/%d transfers done (%s on %s)",
		st.done, len(st.flows), st.s.Algorithm, st.s.Topo.Name())
	const maxList = 3
	listed, blocked := 0, 0
	for id := range st.flows {
		f := &st.flows[id]
		if f.state == fsDone || f.state == fsInFlight {
			continue
		}
		blocked++
		if listed == maxList {
			continue
		}
		listed++
		switch {
		case f.state == fsWaiting && f.depsLeft > 0:
			fmt.Fprintf(&sb, "; t%d waiting on", id)
			for _, d := range st.s.Transfers[id].Deps {
				if st.flows[d].state != fsDone {
					fmt.Fprintf(&sb, " t%d", d)
				}
			}
		case f.state == fsWaiting:
			fmt.Fprintf(&sb, "; t%d ready, step %d gate closed at node %d",
				id, st.s.Transfers[id].Step, st.s.Transfers[id].Src)
		default: // fsActive at rate 0 forever
			fmt.Fprintf(&sb, "; t%d at rate 0", id)
			if st.flt != nil {
				for _, l := range f.path {
					if at, down := st.flt.DownAt(l); down && float64(at) <= st.now+fluidEps {
						lk := st.s.Topo.Link(l)
						fmt.Fprintf(&sb, " across failed link %s->%s",
							st.s.Topo.VertexName(lk.Src), st.s.Topo.VertexName(lk.Dst))
						break
					}
				}
			}
		}
	}
	if blocked > listed {
		fmt.Fprintf(&sb, "; and %d more", blocked-listed)
	}
	if st.lockstep {
		for node := range st.clocks {
			c := &st.clocks[node]
			if c.idx < len(c.steps) {
				fmt.Fprintf(&sb, "; node %d stuck at step %d", node, c.steps[c.idx])
				break
			}
		}
	}
	return fmt.Errorf("%s", sb.String())
}

// recomputeRates assigns rates to active flows: when step-priority
// arbitration is on (the co-designed scheduling, §IV-A/§VIII-A: links
// serve the earliest-step message first, like the FIFO/priority arbiters
// of a real router), a flow sharing any link with an earlier-step flow
// waits at rate 0; the remaining flows share max-min fairly via
// progressive filling. The step filter reads the incrementally maintained
// minStep registers, and the fill itself is skipped entirely when
// tryRateReuse proves the active set's link footprint unchanged since the
// last fill — the common case between pipelined same-shape steps.
func (st *fluidState) recomputeRates() {
	st.ratesDirty = false
	if len(st.active) == 0 {
		return
	}
	eligible := st.eligible[:0]
	if st.cfg.StepPriority {
		for _, id := range st.active {
			f := &st.flows[id]
			blocked := false
			for _, l := range f.path {
				if st.minStep[l] < f.step {
					blocked = true
					break
				}
			}
			if blocked {
				f.rate = 0
			} else {
				eligible = append(eligible, id)
			}
		}
	} else {
		eligible = append(eligible, st.active...)
	}
	st.eligible = eligible
	if !st.noIncremental && st.tryRateReuse() {
		return
	}
	st.progressiveFill(eligible)
	st.pendingNew = st.pendingNew[:0]
	st.pendingRetired = st.pendingRetired[:0]
}

// tryRateReuse detects the steady-state drain/refill pattern where the
// active set's link footprint is unchanged since the last progressive
// fill: every flow retired since then is replaced by a newly activated
// flow with an element-wise identical path, and each such path's links
// carry exactly one active flow (the replacement itself). Under those
// conditions — and with no fault plan that could have moved link
// capacities between fills — a from-scratch fill would see bit-identical
// link capacities, per-link flow counts and freeze rounds, so every
// replacement's rate equals its retired partner's stored rate and every
// survivor keeps its current rate. The exclusivity requirement also
// pins the step-priority classification: any activation or retirement
// that could flip a survivor between blocked and eligible would put two
// flows on a shared link and fail the cnt==1 check.
func (st *fluidState) tryRateReuse() bool {
	if st.flt != nil {
		return false // fault timeline can move link capacities between fills
	}
	if len(st.pendingNew) == 0 || len(st.pendingNew) != len(st.pendingRetired) {
		return false
	}
	st.matchEpoch++
	me := st.matchEpoch
	// Index the retirees by their first link; rate-carrying flows always
	// have non-empty paths. A collision means two retirees shared a head
	// link, which the exclusivity check below could not tell apart.
	for _, id := range st.pendingRetired {
		f := &st.flows[id]
		if len(f.path) == 0 {
			return false
		}
		l := f.path[0]
		if st.matchStamp[l] == me {
			return false
		}
		st.matchStamp[l] = me
		st.matchFlow[l] = id
	}
	for _, id := range st.pendingNew {
		nf := &st.flows[id]
		if len(nf.path) == 0 {
			return false
		}
		for _, l := range nf.path {
			if st.cnt[l] != 1 {
				return false
			}
		}
		l0 := nf.path[0]
		if st.matchStamp[l0] != me {
			return false
		}
		rf := &st.flows[st.matchFlow[l0]]
		if len(rf.path) != len(nf.path) {
			return false
		}
		for k := range nf.path {
			if rf.path[k] != nf.path[k] {
				return false
			}
		}
	}
	// The pairing is verified: head links are distinct across the new
	// flows (two sharing one would break cnt==1), so with equal counts
	// every retiree is matched exactly once. Copy the rates over.
	for _, id := range st.pendingNew {
		nf := &st.flows[id]
		nf.rate = st.flows[st.matchFlow[nf.path[0]]].rate
	}
	st.pendingNew = st.pendingNew[:0]
	st.pendingRetired = st.pendingRetired[:0]
	st.reuseHits++
	return true
}

// progressiveFill runs max-min progressive filling over the eligible
// flows using the dense epoch-stamped scratch arrays: fillEpoch marks
// which per-link entries belong to this fill (no clearing between
// calls), and touched lists them for the delta scans. Arithmetic is
// identical to the map-based version it replaces — delta is a min over
// the same values and remCap updates are the same per-link expressions —
// so results are bit-for-bit unchanged.
func (st *fluidState) progressiveFill(eligible []int32) {
	st.epoch++
	ep := st.epoch
	touched := st.touched[:0]
	for _, id := range eligible {
		f := &st.flows[id]
		f.rate = 0
		for _, l := range f.path {
			if st.fillEpoch[l] != ep {
				st.fillEpoch[l] = ep
				st.remCap[l] = st.linkCap(l)
				st.fillCnt[l] = 0
				touched = append(touched, int32(l))
			}
			st.fillCnt[l]++
		}
	}
	st.touched = touched
	frozen := st.frozen[:0]
	for range eligible {
		frozen = append(frozen, false)
	}
	st.frozen = frozen
	unfrozen := len(eligible)
	fill := 0.0
	for unfrozen > 0 {
		delta := math.Inf(1)
		for _, l := range touched {
			if st.fillCnt[l] > 0 {
				if d := st.remCap[l] / float64(st.fillCnt[l]); d < delta {
					delta = d
				}
			}
		}
		if math.IsInf(delta, 1) {
			break // active flows with no links cannot happen (wire > 0 paths are non-empty)
		}
		fill += delta
		for _, l := range touched {
			st.remCap[l] -= delta * float64(st.fillCnt[l])
		}
		progress := false
		for i, id := range eligible {
			if frozen[i] {
				continue
			}
			f := &st.flows[id]
			saturated := false
			for _, l := range f.path {
				if st.remCap[l] <= fluidEps {
					saturated = true
					break
				}
			}
			if saturated {
				frozen[i] = true
				unfrozen--
				progress = true
				f.rate = fill
				for _, l := range f.path {
					st.fillCnt[l]--
				}
			}
		}
		if !progress {
			// Numerical corner: freeze everything at the current fill.
			for i, id := range eligible {
				if !frozen[i] {
					frozen[i] = true
					unfrozen--
					st.flows[id].rate = fill
				}
			}
		}
	}
}
