package network

import (
	"container/heap"
	"fmt"
	"math"
	"strings"

	"multitree/internal/collective"
	"multitree/internal/faults"
	"multitree/internal/obs"
	"multitree/internal/sim"
	"multitree/internal/topology"
)

// SimulateFluid executes an all-reduce schedule with the flow-level
// engine: each transfer, once its dependencies (and, under lockstep, its
// node's time step) allow, becomes a fluid flow across its routed links;
// concurrent flows share each link max-min fairly; a flow's payload is
// delivered one path-latency after its last byte is injected (virtual
// cut-through pipelining). Head-flit overhead inflates the on-wire volume
// per Config.WireBytes.
func SimulateFluid(s *collective.Schedule, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	flt, err := faults.Compile(cfg.Faults, s.Topo)
	if err != nil {
		return nil, err
	}
	n := len(s.Transfers)
	res := &Result{
		TransferDone: make([]sim.Time, n),
		LinkBusy:     make([]sim.Time, len(s.Topo.Links())),
	}
	if n == 0 {
		return res, nil
	}

	st := newFluidState(s, cfg, flt)
	for i := range st.flows {
		res.PayloadBytes += s.Bytes(&s.Transfers[i])
		res.WireBytes += int64(st.flows[i].wire)
	}

	for st.done < n {
		tNext := st.nextEventTime()
		if math.IsInf(tNext, 1) {
			return nil, st.stallError()
		}
		st.advanceTo(tNext)
		st.processInjections(res)
		st.processTimed(res)
		st.activateReady()
		if st.ratesDirty {
			st.recomputeRates()
		}
	}
	res.Cycles = sim.Time(math.Ceil(st.now))
	// Busy time accumulates fractionally per flow and rounds once here, so
	// rounding error stays below one cycle per link however many transfers
	// crossed it (the per-transfer Ceil it replaces skewed utilization
	// against the packet engine as transfer counts grew). The epsilon keeps
	// float accumulation from pushing an exact integer over the ceiling.
	for l, b := range st.busy {
		if b > fluidEps {
			res.LinkBusy[l] = sim.Time(math.Ceil(b - fluidEps))
		}
	}
	return res, nil
}

// fluidFlow is the per-transfer simulation state.
type fluidFlow struct {
	path    []topology.LinkID
	wire    float64 // total on-wire bytes
	rem     float64 // bytes not yet injected
	rate    float64
	latency float64 // path latency in cycles
	start   float64 // activation time, for trace spans

	depsLeft int
	state    flowState
}

type flowState uint8

const (
	fsWaiting  flowState = iota // deps or node step pending
	fsActive                    // injecting
	fsInFlight                  // injected, traversing the path
	fsDone
)

// timedEvent is a transfer arrival (delivery), a node step entry, or a
// fault activation.
type timedEvent struct {
	at   float64
	kind uint8 // tevArrival, tevStepEntry or tevFault
	id   int   // transfer id, node id, or fault-change index
}

const (
	tevArrival   = iota // transfer delivery at its destination
	tevStepEntry        // deferred lockstep step entry
	tevFault            // fault activation (Config.Faults)
)

type eventHeap []timedEvent

func (h eventHeap) Len() int { return len(h) }

// Less is a total order (at, kind, id), not just by time: container/heap
// gives equal keys an unspecified pop order, so ties must be broken for
// runs to be bit-identical. Arrivals sort before step entries at the same
// instant deliberately — a delivery at time t clears its dependents'
// dependencies before any step gate opening at t scans for releasable
// transfers, matching the packet engine, where the (at, seq) core fires
// the earlier-scheduled arrival first. Fault activations come last so
// rate changes never retroactively affect a same-instant delivery.
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(timedEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	v := old[len(old)-1]
	*h = old[:len(old)-1]
	return v
}

// nodeClock tracks one node's lockstep progress through its active steps.
type nodeClock struct {
	steps   []int // sorted distinct steps at which the node sends
	idx     int   // index of the current active step; len(steps) when done
	entered bool  // node has entered steps[idx]
	pending int   // not-yet-injected sends in the current step
	entry   float64
	injEnd  float64 // completion time of the slowest injection this step
}

type fluidState struct {
	s   *collective.Schedule
	cfg Config
	tr  obs.Tracer
	flt *faults.Compiled
	now float64

	flows []fluidFlow
	succ  [][]int32
	busy  []float64 // fractional busy time per link, rounded once at report

	active     []int32 // indices of fsActive flows
	ready      []int32 // deps satisfied, waiting to activate (step gate)
	ratesDirty bool
	done       int

	events eventHeap

	lockstep bool
	estStep  float64
	clocks   []nodeClock
	sends    [][]int32 // per node: transfer ids it sends, sorted by (step, id)
}

const fluidEps = 1e-6

func newFluidState(s *collective.Schedule, cfg Config, flt *faults.Compiled) *fluidState {
	n := len(s.Transfers)
	st := &fluidState{
		s: s, cfg: cfg, tr: cfg.Tracer, flt: flt,
		flows:    make([]fluidFlow, n),
		succ:     make([][]int32, n),
		busy:     make([]float64, len(s.Topo.Links())),
		lockstep: cfg.Lockstep,
	}
	if flt != nil {
		for i, ch := range flt.Changes() {
			heap.Push(&st.events, timedEvent{at: float64(ch.At), kind: tevFault, id: i})
		}
	}
	maxWire, minBW := 0.0, math.Inf(1)
	for _, l := range s.Topo.Links() {
		if l.Bandwidth < minBW {
			minBW = l.Bandwidth
		}
	}
	for i := range s.Transfers {
		t := &s.Transfers[i]
		f := &st.flows[i]
		f.path = s.PathOf(t)
		f.wire = float64(cfg.WireBytes(s.Bytes(t)))
		f.rem = f.wire
		f.latency = float64(s.Topo.PathLatency(f.path))
		f.depsLeft = len(t.Deps)
		for _, d := range t.Deps {
			st.succ[d] = append(st.succ[d], int32(i))
		}
		if f.wire > maxWire {
			maxWire = f.wire
		}
	}
	st.estStep = maxWire / minBW

	if st.lockstep {
		nNodes := s.Topo.Nodes()
		st.clocks = make([]nodeClock, nNodes)
		st.sends = make([][]int32, nNodes)
		for i := range s.Transfers {
			src := int(s.Transfers[i].Src)
			st.sends[src] = append(st.sends[src], int32(i))
		}
		for node := range st.sends {
			ids := st.sends[node]
			// Stable sort by (step, id); transfers were appended in id
			// order, so an insertion sort on step keeps id order.
			for i := 1; i < len(ids); i++ {
				for j := i; j > 0 && s.Transfers[ids[j]].Step < s.Transfers[ids[j-1]].Step; j-- {
					ids[j], ids[j-1] = ids[j-1], ids[j]
				}
			}
			c := &st.clocks[node]
			last := -1
			for _, id := range ids {
				if step := s.Transfers[id].Step; step != last {
					c.steps = append(c.steps, step)
					last = step
				}
			}
			if len(c.steps) > 0 {
				// Leading NOPs stall like any other gap (§IV-A): a node
				// whose first send is at step s waits s-1 estimated steps,
				// keeping all nodes' step clocks aligned without global
				// synchronization.
				st.enterStep(node, float64(c.steps[0]-1)*st.estStep)
			}
		}
	}

	// Seed: transfers with no deps become ready.
	for i := range st.flows {
		if st.flows[i].depsLeft == 0 {
			st.ready = append(st.ready, int32(i))
			if st.tr != nil {
				st.tr.Emit(obs.Event{
					Kind: obs.EvTransferReady, At: 0, Transfer: int32(i),
					Node: int32(s.Transfers[i].Src),
					Flow: int32(s.Transfers[i].Flow), Step: int32(s.Transfers[i].Step),
				})
			}
		}
	}
	st.activateReady()
	st.recomputeRates()
	return st
}

// enterStep moves node into its next active step. NOP gaps between the
// previous and next active step each stall the estimated step time
// (§IV-A); the entry may therefore land in the future, in which case a
// timed event defers it.
func (st *fluidState) enterStep(node int, at float64) {
	c := &st.clocks[node]
	if c.idx >= len(c.steps) {
		return
	}
	if at > st.now+fluidEps {
		c.entered = false
		heap.Push(&st.events, timedEvent{at: at, kind: tevStepEntry, id: node})
		return
	}
	c.entered = true
	c.entry = st.now
	c.injEnd = st.now
	step := c.steps[c.idx]
	if st.tr != nil {
		st.tr.Emit(obs.Event{
			Kind: obs.EvStepEnter, At: st.now, Node: int32(node), Step: int32(step),
		})
	}
	c.pending = 0
	for _, id := range st.sends[node] {
		if st.s.Transfers[id].Step == step {
			c.pending++
		}
	}
}

// stepGateOpen reports whether lockstep permits transfer id to inject now.
func (st *fluidState) stepGateOpen(id int32) bool {
	if !st.lockstep {
		return true
	}
	t := &st.s.Transfers[id]
	c := &st.clocks[t.Src]
	return c.entered && c.idx < len(c.steps) && c.steps[c.idx] == t.Step
}

// activateReady promotes ready transfers whose step gate is open into
// active flows (or, for zero-byte flows, straight to in-flight).
func (st *fluidState) activateReady() {
	if len(st.ready) == 0 {
		return
	}
	var still []int32
	for _, id := range st.ready {
		if !st.stepGateOpen(id) {
			still = append(still, id)
			continue
		}
		f := &st.flows[id]
		f.start = st.now
		if st.tr != nil {
			t := &st.s.Transfers[id]
			st.tr.Emit(obs.Event{
				Kind: obs.EvTransferInjected, At: st.now, Transfer: id,
				Node: int32(t.Src), Flow: int32(t.Flow), Step: int32(t.Step),
				Bytes: int64(f.wire),
			})
		}
		if f.wire <= fluidEps {
			f.state = fsInFlight
			st.injected(id)
			continue
		}
		f.state = fsActive
		st.active = append(st.active, id)
		st.ratesDirty = true
	}
	st.ready = still
}

// injected handles a flow whose last byte left the source: schedule its
// delivery (one path latency later, plus any fault-added latency in
// effect now) and advance the sender's lockstep clock.
func (st *fluidState) injected(id int32) {
	f := &st.flows[id]
	lat := f.latency
	if st.flt != nil {
		for _, l := range f.path {
			lat += float64(st.flt.ExtraLatency(l, st.now))
		}
	}
	heap.Push(&st.events, timedEvent{at: st.now + lat, kind: tevArrival, id: int(id)})
	if !st.lockstep {
		return
	}
	node := int(st.s.Transfers[id].Src)
	c := &st.clocks[node]
	if st.now > c.injEnd {
		c.injEnd = st.now
	}
	c.pending--
	if c.pending == 0 {
		st.advanceNodeStep(node)
	}
}

// advanceNodeStep moves a node past its completed step, charging estStep
// stalls for skipped (NOP) steps before the next active one.
func (st *fluidState) advanceNodeStep(node int) {
	c := &st.clocks[node]
	prev := c.steps[c.idx]
	c.idx++
	if c.idx >= len(c.steps) {
		return
	}
	gap := c.steps[c.idx] - prev - 1
	st.enterStep(node, c.injEnd+float64(gap)*st.estStep)
}

// nextEventTime returns the earliest pending event: an active flow's
// injection completion or a timed (arrival / step-entry) event.
func (st *fluidState) nextEventTime() float64 {
	t := math.Inf(1)
	for _, id := range st.active {
		f := &st.flows[id]
		if f.rate > 0 {
			if c := st.now + f.rem/f.rate; c < t {
				t = c
			}
		}
	}
	if len(st.events) > 0 && st.events[0].at < t {
		t = st.events[0].at
	}
	return t
}

// advanceTo drains bandwidth from active flows up to time t.
func (st *fluidState) advanceTo(t float64) {
	dt := t - st.now
	if dt > 0 {
		for _, id := range st.active {
			f := &st.flows[id]
			f.rem -= f.rate * dt
		}
	}
	st.now = t
}

// processInjections retires active flows that finished injecting.
func (st *fluidState) processInjections(res *Result) {
	out := st.active[:0]
	for _, id := range st.active {
		f := &st.flows[id]
		if f.rem <= fluidEps {
			f.rem = 0
			f.state = fsInFlight
			for _, l := range f.path {
				st.busy[l] += f.wire / st.effBW(l)
			}
			if st.tr != nil {
				// The flow's active interval on each routed link, with the
				// busy-equivalent serialization time at full link rate, so
				// a shared link's concurrent spans never sum past 100%.
				t := &st.s.Transfers[id]
				for _, l := range f.path {
					st.tr.Emit(obs.Event{
						Kind: obs.EvLinkAcquired,
						At:   f.start, Dur: st.now - f.start,
						Busy: f.wire / st.effBW(l),
						Link: int32(l), Transfer: id, Node: int32(t.Src),
						Flow: int32(t.Flow), Step: int32(t.Step),
						Bytes: int64(f.wire),
					})
				}
			}
			st.injected(id)
			st.ratesDirty = true
		} else {
			out = append(out, id)
		}
	}
	st.active = out
}

// processTimed fires due arrivals and node step entries.
func (st *fluidState) processTimed(res *Result) {
	for len(st.events) > 0 && st.events[0].at <= st.now+fluidEps {
		ev := heap.Pop(&st.events).(timedEvent)
		switch ev.kind {
		case tevArrival: // delivery at destination
			id := int32(ev.id)
			st.flows[id].state = fsDone
			st.done++
			res.TransferDone[id] = sim.Time(math.Ceil(st.now))
			if st.tr != nil {
				t := &st.s.Transfers[id]
				st.tr.Emit(obs.Event{
					Kind: obs.EvTransferDelivered, At: st.now, Transfer: id,
					Node: int32(t.Dst), Flow: int32(t.Flow), Step: int32(t.Step),
				})
			}
			for _, nxt := range st.succ[id] {
				nf := &st.flows[nxt]
				nf.depsLeft--
				if nf.depsLeft == 0 {
					st.ready = append(st.ready, nxt)
					if st.tr != nil {
						t := &st.s.Transfers[nxt]
						st.tr.Emit(obs.Event{
							Kind: obs.EvTransferReady, At: st.now, Transfer: nxt,
							Node: int32(t.Src), Flow: int32(t.Flow), Step: int32(t.Step),
						})
					}
				}
			}
		case tevStepEntry: // deferred node step entry
			st.enterStep(ev.id, st.now)
		case tevFault:
			ch := st.flt.Changes()[ev.id]
			if st.tr != nil {
				scale := ch.BWScale
				if ch.Down {
					scale = 0
				}
				st.tr.Emit(obs.Event{
					Kind: obs.EvLinkFault, At: st.now, Link: int32(ch.Link),
					Busy: scale, Dur: float64(ch.AddLatency),
				})
			}
			// Effective bandwidths changed; flows on the link re-share (a
			// dead link's flows drop to rate 0 in recomputeRates).
			st.ratesDirty = true
		}
	}
}

// effBW is link l's effective bandwidth at the current time under the
// compiled fault plan. A dead link reports the base bandwidth for busy
// accounting only when a flow somehow finished on it the very instant it
// died; rate allocation uses linkCap, which reports 0.
func (st *fluidState) effBW(l topology.LinkID) float64 {
	base := st.s.Topo.Link(l).Bandwidth
	if st.flt == nil {
		return base
	}
	if bw := st.flt.Bandwidth(l, base, st.now); bw > 0 {
		return bw
	}
	return base
}

// linkCap is link l's capacity for rate allocation: 0 once the link died.
func (st *fluidState) linkCap(l topology.LinkID) float64 {
	base := st.s.Topo.Link(l).Bandwidth
	if st.flt == nil {
		return base
	}
	return st.flt.Bandwidth(l, base, st.now)
}

// stallError describes why no transfer can make progress: the overall
// counts, then the first few blocked transfers with their unmet
// dependencies (or the failed link pinning them at rate 0, or the closed
// step gate), and under lockstep the first stuck node/step — enough to
// diagnose fault-induced stalls without a trace.
func (st *fluidState) stallError() error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "network: fluid simulation stalled with %d/%d transfers done (%s on %s)",
		st.done, len(st.flows), st.s.Algorithm, st.s.Topo.Name())
	const maxList = 3
	listed, blocked := 0, 0
	for id := range st.flows {
		f := &st.flows[id]
		if f.state == fsDone || f.state == fsInFlight {
			continue
		}
		blocked++
		if listed == maxList {
			continue
		}
		listed++
		switch {
		case f.state == fsWaiting && f.depsLeft > 0:
			fmt.Fprintf(&sb, "; t%d waiting on", id)
			for _, d := range st.s.Transfers[id].Deps {
				if st.flows[d].state != fsDone {
					fmt.Fprintf(&sb, " t%d", d)
				}
			}
		case f.state == fsWaiting:
			fmt.Fprintf(&sb, "; t%d ready, step %d gate closed at node %d",
				id, st.s.Transfers[id].Step, st.s.Transfers[id].Src)
		default: // fsActive at rate 0 forever
			fmt.Fprintf(&sb, "; t%d at rate 0", id)
			if st.flt != nil {
				for _, l := range f.path {
					if at, down := st.flt.DownAt(l); down && float64(at) <= st.now+fluidEps {
						lk := st.s.Topo.Link(l)
						fmt.Fprintf(&sb, " across failed link %s->%s",
							st.s.Topo.VertexName(lk.Src), st.s.Topo.VertexName(lk.Dst))
						break
					}
				}
			}
		}
	}
	if blocked > listed {
		fmt.Fprintf(&sb, "; and %d more", blocked-listed)
	}
	if st.lockstep {
		for node := range st.clocks {
			c := &st.clocks[node]
			if c.idx < len(c.steps) {
				fmt.Fprintf(&sb, "; node %d stuck at step %d", node, c.steps[c.idx])
				break
			}
		}
	}
	return fmt.Errorf("%s", sb.String())
}

// recomputeRates assigns rates to active flows: when step-priority
// arbitration is on (the co-designed scheduling, §IV-A/§VIII-A: links
// serve the earliest-step message first, like the FIFO/priority arbiters
// of a real router), a flow sharing any link with an earlier-step flow
// waits at rate 0; the remaining flows share max-min fairly via
// progressive filling.
func (st *fluidState) recomputeRates() {
	st.ratesDirty = false
	if len(st.active) == 0 {
		return
	}
	eligible := st.active
	if st.cfg.StepPriority {
		// Minimal step per link among active flows.
		minStep := map[topology.LinkID]int{}
		for _, id := range st.active {
			step := st.s.Transfers[id].Step
			for _, l := range st.flows[id].path {
				if cur, ok := minStep[l]; !ok || step < cur {
					minStep[l] = step
				}
			}
		}
		eligible = eligible[:0:0]
		for _, id := range st.active {
			step := st.s.Transfers[id].Step
			blocked := false
			for _, l := range st.flows[id].path {
				if minStep[l] < step {
					blocked = true
					break
				}
			}
			if blocked {
				st.flows[id].rate = 0
			} else {
				eligible = append(eligible, id)
			}
		}
	}
	type linkState struct {
		remCap float64
		count  int
	}
	links := map[topology.LinkID]*linkState{}
	for _, id := range eligible {
		st.flows[id].rate = 0
		for _, l := range st.flows[id].path {
			ls := links[l]
			if ls == nil {
				ls = &linkState{remCap: st.linkCap(l)}
				links[l] = ls
			}
			ls.count++
		}
	}
	unfrozen := len(eligible)
	frozen := make([]bool, len(eligible))
	fill := 0.0
	for unfrozen > 0 {
		delta := math.Inf(1)
		for _, ls := range links {
			if ls.count > 0 {
				if d := ls.remCap / float64(ls.count); d < delta {
					delta = d
				}
			}
		}
		if math.IsInf(delta, 1) {
			break // active flows with no links cannot happen (wire > 0 paths are non-empty)
		}
		fill += delta
		for _, ls := range links {
			ls.remCap -= delta * float64(ls.count)
		}
		progress := false
		for i, id := range eligible {
			if frozen[i] {
				continue
			}
			saturated := false
			for _, l := range st.flows[id].path {
				if links[l].remCap <= fluidEps {
					saturated = true
					break
				}
			}
			if saturated {
				frozen[i] = true
				unfrozen--
				progress = true
				st.flows[id].rate = fill
				for _, l := range st.flows[id].path {
					links[l].count--
				}
			}
		}
		if !progress {
			// Numerical corner: freeze everything at the current fill.
			for i, id := range eligible {
				if !frozen[i] {
					frozen[i] = true
					unfrozen--
					st.flows[id].rate = fill
				}
			}
		}
	}
}
