package network

// White-box tests pinning the fluid engine's lockstep NOP-gap machinery:
// deferred enterStep entries and step-priority rate-0 blocking, which the
// black-box suites only exercise indirectly through completion times.

import (
	"testing"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

func fluidTorus() *topology.Topology {
	return topology.Torus(4, 4, topology.DefaultLinkConfig())
}

// TestFluidDeferredStepEntry: a node whose first send is at step s > 1
// must not enter its step at time 0 — the leading NOP gap stalls
// (s-1)*estStep and the entry is deferred through the timed-event heap.
func TestFluidDeferredStepEntry(t *testing.T) {
	topo := fluidTorus()
	s := collective.NewSchedule("unit", topo, 2048, 2)
	s.Add(collective.Transfer{Src: 1, Dst: 2, Op: collective.Gather, Flow: 0, Step: 1})
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 1, Step: 3})
	cfg := DefaultConfig() // lockstep on

	st := newFluidState(s, cfg, nil)
	c := &st.clocks[0]
	if c.entered {
		t.Fatal("node 0 entered step 3 at time 0; its entry should be deferred")
	}
	// Node 1 sends at step 1: no gap, entered immediately.
	if !st.clocks[1].entered {
		t.Error("node 1 should have entered step 1 at time 0")
	}
	// The deferral is a tevStepEntry heap event at (3-1)*estStep.
	want := 2 * st.estStep
	found := false
	for _, ev := range st.events {
		if ev.kind == tevStepEntry && ev.id == 0 {
			found = true
			if ev.at != want {
				t.Errorf("deferred entry at %v, want %v (2*estStep)", ev.at, want)
			}
		}
	}
	if !found {
		t.Fatal("no deferred step-entry event for node 0 in the heap")
	}
	// And the gate stays closed until then: transfer 1 is ready (no deps)
	// but must not activate.
	if st.flows[1].state != fsWaiting {
		t.Errorf("transfer 1 state = %d, want fsWaiting behind the step gate", st.flows[1].state)
	}
}

// TestFluidStepPriorityRateZero: with step-priority arbitration, a flow
// sharing a link with an earlier-step flow is held at rate 0; without it,
// the two flows share max-min fairly.
func TestFluidStepPriorityRateZero(t *testing.T) {
	topo := fluidTorus()
	build := func() *collective.Schedule {
		s := collective.NewSchedule("unit", topo, 4096, 2)
		s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
		s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 1, Step: 2})
		return s
	}
	bw := topo.Link(0).Bandwidth

	cfg := DefaultConfig()
	cfg.Lockstep = false // both flows activate immediately
	cfg.StepPriority = true
	st := newFluidState(build(), cfg, nil)
	if got := st.flows[0].rate; got != bw {
		t.Errorf("step-1 flow rate = %v, want full link rate %v", got, bw)
	}
	if got := st.flows[1].rate; got != 0 {
		t.Errorf("step-2 flow rate = %v, want 0 (blocked by step priority)", got)
	}

	cfg.StepPriority = false
	st = newFluidState(build(), cfg, nil)
	if got := st.flows[0].rate; got != bw/2 {
		t.Errorf("fair-share step-1 flow rate = %v, want %v", got, bw/2)
	}
	if got := st.flows[1].rate; got != bw/2 {
		t.Errorf("fair-share step-2 flow rate = %v, want %v", got, bw/2)
	}
}
