package network

// White-box tests pinning the fluid engine's lockstep NOP-gap machinery:
// deferred enterStep entries and step-priority rate-0 blocking, which the
// black-box suites only exercise indirectly through completion times.

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/dbtree"
	"multitree/internal/faults"
	"multitree/internal/obs"
	"multitree/internal/ring"
	"multitree/internal/ring2d"
	"multitree/internal/topology"
)

// buildRegistry constructs a named algorithm's schedule without pulling
// the registry package into the engine's test build.
func buildRegistry(topo *topology.Topology, alg string, elems int) (*collective.Schedule, error) {
	switch alg {
	case "ring":
		return ring.Build(topo, elems), nil
	case "dbtree":
		return dbtree.Build(topo, elems, 4)
	case "2d-ring":
		return ring2d.Build(topo, elems)
	}
	return nil, fmt.Errorf("unknown algorithm %q", alg)
}

func fluidTorus() *topology.Topology {
	return topology.Torus(4, 4, topology.DefaultLinkConfig())
}

// TestFluidDeferredStepEntry: a node whose first send is at step s > 1
// must not enter its step at time 0 — the leading NOP gap stalls
// (s-1)*estStep and the entry is deferred through the timed-event heap.
func TestFluidDeferredStepEntry(t *testing.T) {
	topo := fluidTorus()
	s := collective.NewSchedule("unit", topo, 2048, 2)
	s.Add(collective.Transfer{Src: 1, Dst: 2, Op: collective.Gather, Flow: 0, Step: 1})
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 1, Step: 3})
	cfg := DefaultConfig() // lockstep on

	st := newFluidState(s, cfg, nil)
	c := &st.clocks[0]
	if c.entered {
		t.Fatal("node 0 entered step 3 at time 0; its entry should be deferred")
	}
	// Node 1 sends at step 1: no gap, entered immediately.
	if !st.clocks[1].entered {
		t.Error("node 1 should have entered step 1 at time 0")
	}
	// The deferral is a tevStepEntry heap event at (3-1)*estStep.
	want := 2 * st.estStep
	found := false
	for _, ev := range st.events.ev {
		if ev.kind == tevStepEntry && ev.id == 0 {
			found = true
			if ev.at != want {
				t.Errorf("deferred entry at %v, want %v (2*estStep)", ev.at, want)
			}
		}
	}
	if !found {
		t.Fatal("no deferred step-entry event for node 0 in the heap")
	}
	// And the gate stays closed until then: transfer 1 is ready (no deps)
	// but must not activate.
	if st.flows[1].state != fsWaiting {
		t.Errorf("transfer 1 state = %d, want fsWaiting behind the step gate", st.flows[1].state)
	}
}

// TestFluidStepPriorityRateZero: with step-priority arbitration, a flow
// sharing a link with an earlier-step flow is held at rate 0; without it,
// the two flows share max-min fairly.
func TestFluidStepPriorityRateZero(t *testing.T) {
	topo := fluidTorus()
	build := func() *collective.Schedule {
		s := collective.NewSchedule("unit", topo, 4096, 2)
		s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
		s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 1, Step: 2})
		return s
	}
	bw := topo.Link(0).Bandwidth

	cfg := DefaultConfig()
	cfg.Lockstep = false // both flows activate immediately
	cfg.StepPriority = true
	st := newFluidState(build(), cfg, nil)
	if got := st.flows[0].rate; got != bw {
		t.Errorf("step-1 flow rate = %v, want full link rate %v", got, bw)
	}
	if got := st.flows[1].rate; got != 0 {
		t.Errorf("step-2 flow rate = %v, want 0 (blocked by step priority)", got)
	}

	cfg.StepPriority = false
	st = newFluidState(build(), cfg, nil)
	if got := st.flows[0].rate; got != bw/2 {
		t.Errorf("fair-share step-1 flow rate = %v, want %v", got, bw/2)
	}
	if got := st.flows[1].rate; got != bw/2 {
		t.Errorf("fair-share step-2 flow rate = %v, want %v", got, bw/2)
	}
}

// checkFluidRegisters recomputes the per-link occupancy counts and
// min-step registers from scratch over the active set and compares them
// to the incrementally maintained cnt/minStep arrays, then walks every
// link's occupancy list to confirm it is coherent (doubly linked, one
// node per path occurrence).
func checkFluidRegisters(t *testing.T, st *fluidState) {
	t.Helper()
	nLinks := len(st.cnt)
	wantCnt := make([]int32, nLinks)
	wantMin := make([]int32, nLinks)
	for l := range wantMin {
		wantMin[l] = math.MaxInt32
	}
	for _, id := range st.active {
		f := &st.flows[id]
		for _, l := range f.path {
			wantCnt[l]++
			if f.step < wantMin[l] {
				wantMin[l] = f.step
			}
		}
	}
	for l := 0; l < nLinks; l++ {
		if st.cnt[l] != wantCnt[l] {
			t.Fatalf("t=%v link %d: incremental cnt=%d, from-scratch=%d",
				st.now, l, st.cnt[l], wantCnt[l])
		}
		if st.cnt[l] > 0 && st.minStep[l] != wantMin[l] {
			t.Fatalf("t=%v link %d: incremental minStep=%d, from-scratch=%d",
				st.now, l, st.minStep[l], wantMin[l])
		}
		// Occupancy list coherence: exactly cnt[l] nodes, all naming this
		// link, back-pointers intact.
		n, prev := int32(0), int32(-1)
		for ni := st.occHead[l]; ni >= 0; ni = st.occ[ni].next {
			occ := &st.occ[ni]
			if occ.link != int32(l) {
				t.Fatalf("t=%v link %d: occupancy node %d names link %d", st.now, l, ni, occ.link)
			}
			if occ.prev != prev {
				t.Fatalf("t=%v link %d: occupancy node %d has prev=%d, want %d", st.now, l, ni, occ.prev, prev)
			}
			if st.flows[occ.flow].state != fsActive {
				t.Fatalf("t=%v link %d: occupancy node %d references non-active flow %d", st.now, l, ni, occ.flow)
			}
			prev = ni
			n++
		}
		if n != st.cnt[l] {
			t.Fatalf("t=%v link %d: occupancy list has %d nodes, cnt=%d", st.now, l, n, st.cnt[l])
		}
	}
}

// runWithRegisterChecks replays the engine's event loop step by step,
// validating the incremental registers against a from-scratch recompute
// after every event batch. Returns true if the run stalled (expected for
// dead-link fault plans).
func runWithRegisterChecks(t *testing.T, s *collective.Schedule, cfg Config) bool {
	t.Helper()
	flt, err := faults.Compile(cfg.Faults, s.Topo)
	if err != nil {
		t.Fatal(err)
	}
	st := newFluidState(s, cfg, flt)
	checkFluidRegisters(t, st)
	for st.done < len(st.flows) {
		tNext := st.nextEventTime()
		if math.IsInf(tNext, 1) {
			checkFluidRegisters(t, st)
			return true
		}
		st.advanceTo(tNext)
		st.processInjections(st.res)
		st.processTimed(st.res)
		st.activateReady()
		if st.ratesDirty {
			st.recomputeRates()
		}
		checkFluidRegisters(t, st)
	}
	return false
}

// TestFluidRegisterConsistency drives the incremental cnt/minStep
// bookkeeping through adversarial activate/retire orders — contended
// schedules where step priority pins flows at rate 0, lockstep pipelines
// with staggered retirement, and fault plans that degrade or kill links
// mid-run (PR 4's rate-0 drops) — asserting after every event batch that
// the registers match a from-scratch recompute.
func TestFluidRegisterConsistency(t *testing.T) {
	topo := fluidTorus()
	schedules := map[string]*collective.Schedule{}
	for _, alg := range []string{"ring", "dbtree", "2d-ring"} {
		s, err := buildRegistry(topo, alg, (64<<10)/4)
		if err != nil {
			t.Fatal(err)
		}
		schedules[alg] = s
	}

	for name, s := range schedules {
		t.Run(name+"/lockstep", func(t *testing.T) {
			if stalled := runWithRegisterChecks(t, s, DefaultConfig()); stalled {
				t.Fatal("fault-free run stalled")
			}
		})
		t.Run(name+"/freeRunning", func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Lockstep = false
			cfg.StepPriority = false
			if stalled := runWithRegisterChecks(t, s, cfg); stalled {
				t.Fatal("fault-free run stalled")
			}
		})
	}

	t.Run("ring/bwDegraded", func(t *testing.T) {
		plan, err := faults.ParseSpec("link:0-1:bw=0.25,link:5-6@t=200:bw=0.5")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Faults = plan
		if stalled := runWithRegisterChecks(t, schedules["ring"], cfg); stalled {
			t.Fatal("bandwidth-degraded run stalled")
		}
	})
	t.Run("ring/linkDown", func(t *testing.T) {
		plan, err := faults.ParseSpec("link:0-1@t=100:down")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Faults = plan
		if stalled := runWithRegisterChecks(t, schedules["ring"], cfg); !stalled {
			t.Fatal("run across a dead link should stall with flows pinned at rate 0")
		}
	})
}

// TestFluidRateReuseMatchesFullFill pins the incremental fast path's
// correctness the strong way: the same schedule simulated with
// tryRateReuse enabled and disabled must produce byte-identical traced
// event streams and Results. The enabled run must actually exercise the
// fast path, or the comparison proves nothing.
func TestFluidRateReuseMatchesFullFill(t *testing.T) {
	topo := fluidTorus()
	for _, alg := range []string{"ring", "2d-ring", "dbtree"} {
		s, err := buildRegistry(topo, alg, (256<<10)/4)
		if err != nil {
			t.Fatal(err)
		}
		for _, lockstep := range []bool{true, false} {
			name := alg + "/lockstep"
			if !lockstep {
				name = alg + "/freeRunning"
			}
			t.Run(name, func(t *testing.T) {
				run := func(noIncremental bool) (*Result, []obs.Event, int) {
					rec := &obs.Recorder{}
					cfg := DefaultConfig()
					cfg.Lockstep = lockstep
					cfg.StepPriority = lockstep
					cfg.Tracer = rec
					fs, err := NewFluidSim(s, cfg)
					if err != nil {
						t.Fatal(err)
					}
					fs.st.noIncremental = noIncremental
					res, err := fs.Run()
					if err != nil {
						t.Fatal(err)
					}
					return res, rec.Events, fs.st.reuseHits
				}
				full, fullEvents, _ := run(true)
				fast, fastEvents, hits := run(false)
				if alg != "dbtree" && hits == 0 {
					t.Errorf("tryRateReuse never fired on %s; the fast-path comparison is vacuous", alg)
				}
				if full.Cycles != fast.Cycles {
					t.Fatalf("cycles diverge: full fill %d, rate reuse %d", full.Cycles, fast.Cycles)
				}
				if !reflect.DeepEqual(full, fast) {
					t.Fatal("Results diverge between full fill and rate reuse")
				}
				if !reflect.DeepEqual(fullEvents, fastEvents) {
					t.Fatalf("event streams diverge (%d vs %d events)", len(fullEvents), len(fastEvents))
				}
			})
		}
	}
}

// TestFluidEngineSteadyStateAllocs: after the first run has grown every
// backing array to its high-water mark, re-running the simulation
// performs zero heap allocations.
func TestFluidEngineSteadyStateAllocs(t *testing.T) {
	s := chainSchedule(t, (64<<10)/4, 4)
	sim, err := NewFluidSim(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Run() // warm-up: grows heap, scratch, occupancy arena
	if err != nil {
		t.Fatal(err)
	}
	warmCycles := first.Cycles
	allocs := testing.AllocsPerRun(3, func() {
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != warmCycles {
			t.Fatalf("rerun finished in %d cycles, warm-up in %d", res.Cycles, warmCycles)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state event loop allocates %.1f per run, want 0", allocs)
	}
}

// TestFluidSimMatchesSimulateFluid: the reusable simulator and the
// one-shot entry point are the same engine, run after run.
func TestFluidSimMatchesSimulateFluid(t *testing.T) {
	s := chainSchedule(t, (16<<10)/4, 2)
	cfg := DefaultConfig()
	oneShot, err := SimulateFluid(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewFluidSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != oneShot.Cycles {
			t.Fatalf("run %d: FluidSim finished in %d cycles, SimulateFluid in %d",
				run, res.Cycles, oneShot.Cycles)
		}
		if !reflect.DeepEqual(res.TransferDone, oneShot.TransferDone) {
			t.Fatalf("run %d: per-transfer completion times diverge", run)
		}
		if !reflect.DeepEqual(res.LinkBusy, oneShot.LinkBusy) {
			t.Fatalf("run %d: link busy times diverge", run)
		}
	}
}
