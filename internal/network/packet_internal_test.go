package network

// White-box tests of the packet engine's storage discipline: the ring
// deques must bound their backing arrays by peak queue depth (the
// pre-ring code leaked the popped prefix of every link queue via [1:]
// reslicing, keeping all packets that ever crossed a link reachable for
// the whole run), the packet arena must recycle delivered packets, and a
// reused PacketSim must re-run with zero heap allocations.

import (
	"testing"

	"multitree/internal/collective"
	"multitree/internal/topology"
)

func lineTopo3(t *testing.T) *topology.Topology {
	t.Helper()
	c := topology.NewCustom("line3", 3, 0)
	cfg := topology.DefaultLinkConfig()
	c.Link(0, 1, cfg).Link(1, 2, cfg)
	topo, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// chainSchedule builds a rounds-long pipeline around a 4-node directed
// ring: each step forwards the flow one hop and depends on the previous
// step, so exactly one transfer's packets are in flight at a time while
// the total packet count grows with rounds. It exercises every hot-path
// event kind (release, serialization-done, arrive, step entry, delivery).
func chainSchedule(t *testing.T, elems, rounds int) *collective.Schedule {
	t.Helper()
	c := topology.NewCustom("ring4", 4, 0)
	cfg := topology.DefaultLinkConfig()
	c.Link(0, 1, cfg).Link(1, 2, cfg).Link(2, 3, cfg).Link(3, 0, cfg)
	topo, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := collective.NewSchedule("chain", topo, elems, 1)
	var prev collective.TransferID
	step := 1
	for r := 0; r < rounds; r++ {
		for hop := 0; hop < 4; hop++ {
			tr := collective.Transfer{
				Src: topology.NodeID(hop), Dst: topology.NodeID((hop + 1) % 4),
				Op: collective.Gather, Flow: 0, Step: step,
			}
			if step > 1 {
				tr.Deps = []collective.TransferID{prev}
			}
			prev = s.Add(tr)
			step++
		}
	}
	return s
}

// totalPackets counts the data packets a schedule injects under cfg.
func totalPackets(s *collective.Schedule, cfg Config) int {
	total := 0
	for i := range s.Transfers {
		payload := s.Bytes(&s.Transfers[i])
		if payload > 0 {
			total += int((payload + int64(cfg.PayloadBytes) - 1) / int64(cfg.PayloadBytes))
		}
	}
	return total
}

// TestLinkQueueCapacityBounded: a two-hop 1 MiB transfer crosses the
// second link as 4096+ packets, but backpressure keeps only ~bufCap/wire
// of them queued at once; the ring deque's backing array must be sized by
// that peak, not by the total packet count.
func TestLinkQueueCapacityBounded(t *testing.T) {
	topo := lineTopo3(t)
	s := collective.NewSchedule("unit", topo, (1<<20)/4, 1)
	s.Add(collective.Transfer{Src: 0, Dst: 2, Op: collective.Gather, Flow: 0, Step: 1})
	cfg := DefaultConfig()
	cfg.Lockstep = false
	sim, err := NewPacketSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	total := totalPackets(s, cfg)
	if total < 4096 {
		t.Fatalf("test needs a multi-thousand-packet transfer, got %d", total)
	}
	// Peak depth on the downstream link is capped by the upstream input
	// buffer: bufCap/wire packets plus one in flight, rounded to the next
	// power of two by the ring.
	ps := &sim.ps
	wire := int64(cfg.PayloadBytes + cfg.FlitBytes)
	maxDepth := ps.bufCap/wire + 2
	bound := 8
	for int64(bound) < 2*maxDepth {
		bound *= 2
	}
	secondLink := ps.paths[0][1]
	if got := cap(ps.linkQueue[secondLink].buf); got > bound {
		t.Errorf("downstream ring capacity %d exceeds backpressure bound %d (total packets %d)",
			got, bound, total)
	}
}

// TestPacketArenaRecycled: across a long transfer pipeline the arena must
// stay far below the total number of packets ever injected — freed
// packets are reused, not abandoned.
func TestPacketArenaRecycled(t *testing.T) {
	s := chainSchedule(t, (64<<10)/4, 8) // 32 transfers, 256 packets each
	cfg := DefaultConfig()
	sim, err := NewPacketSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	total := totalPackets(s, cfg)
	arena := len(sim.ps.pkts)
	if arena*4 > total {
		t.Errorf("arena grew to %d slots for %d total packets; free list not recycling", arena, total)
	}
}

// TestPacketEngineSteadyStateAllocs: after the first run has grown every
// backing array to its high-water mark, re-running the simulation
// performs zero heap allocations.
func TestPacketEngineSteadyStateAllocs(t *testing.T) {
	s := chainSchedule(t, (64<<10)/4, 4)
	sim, err := NewPacketSim(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Run() // warm-up: grows heap, arena, rings
	if err != nil {
		t.Fatal(err)
	}
	warmCycles := first.Cycles
	allocs := testing.AllocsPerRun(3, func() {
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != warmCycles {
			t.Fatalf("rerun finished in %d cycles, warm-up in %d", res.Cycles, warmCycles)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state event loop allocates %.1f per run, want 0", allocs)
	}
}

// TestPacketSimMatchesSimulatePackets: the reusable simulator and the
// one-shot entry point are the same engine, run after run.
func TestPacketSimMatchesSimulatePackets(t *testing.T) {
	s := chainSchedule(t, (16<<10)/4, 2)
	cfg := DefaultConfig()
	oneShot, err := SimulatePackets(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewPacketSim(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != oneShot.Cycles {
			t.Fatalf("run %d: %d cycles, SimulatePackets %d", run, res.Cycles, oneShot.Cycles)
		}
		for i := range res.TransferDone {
			if res.TransferDone[i] != oneShot.TransferDone[i] {
				t.Fatalf("run %d: transfer %d done at %d, want %d",
					run, i, res.TransferDone[i], oneShot.TransferDone[i])
			}
		}
	}
}
