package network_test

import (
	"testing"
	"testing/quick"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/network"
	"multitree/internal/ring"
	"multitree/internal/topology"
)

// TestEnergyMessageBasedSaves: the co-designed flow control cuts both
// flit count (head flits) and routing/arbitration events, so its total
// energy is strictly lower for big gradients.
func TestEnergyMessageBasedSaves(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s, err := core.Build(topo, (4<<20)/4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := network.DefaultEnergyModel()
	pkt, err := network.EstimateEnergy(s, network.DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := network.EstimateEnergy(s, network.MessageConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if msg.TotalPJ() >= pkt.TotalPJ() {
		t.Errorf("message-based energy %.0f pJ not below packet-based %.0f pJ",
			msg.TotalPJ(), pkt.TotalPJ())
	}
	// Arbitration events collapse by roughly the packets-per-message
	// factor.
	if msg.Packets*100 > pkt.Packets {
		t.Errorf("message-based arbitration events %d vs %d: expected >100x reduction",
			msg.Packets, pkt.Packets)
	}
	// Flit savings match the ~6% head-flit overhead.
	ratio := float64(pkt.Flits) / float64(msg.Flits)
	if ratio < 1.05 || ratio > 1.08 {
		t.Errorf("flit ratio %.3f, want ~1.0625", ratio)
	}
}

// TestEnergyScalesWithHops: DBTree's multi-hop logical edges cost
// proportionally more link energy than MultiTree's one-hop edges for the
// same payload.
func TestEnergyScalesWithHops(t *testing.T) {
	topo := topology.Torus(8, 8, topology.DefaultLinkConfig())
	cfg := network.DefaultConfig()
	m := network.DefaultEnergyModel()
	mt, err := core.Build(topo, 1<<18, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg := ring.Build(topo, 1<<18)
	emt, err := network.EstimateEnergy(mt, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	erg, err := network.EstimateEnergy(rg, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	// Both are bandwidth-optimal and single-hop on a torus: equal flit-hop
	// counts, within partition rounding.
	rel := float64(emt.Flits) / float64(erg.Flits)
	if rel < 0.99 || rel > 1.01 {
		t.Errorf("multitree/ring flit-hops = %.3f, want ~1 (both 1-hop optimal)", rel)
	}
}

// TestEnergyProperty: energy is monotone in data size.
func TestEnergyProperty(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	cfg := network.DefaultConfig()
	m := network.DefaultEnergyModel()
	f := func(a, b uint16) bool {
		x, y := 64+int(a), 64+int(b)
		if x > y {
			x, y = y, x
		}
		sx := ring.Build(topo, x)
		sy := ring.Build(topo, y)
		ex, err := network.EstimateEnergy(sx, cfg, m)
		if err != nil {
			return false
		}
		ey, err := network.EstimateEnergy(sy, cfg, m)
		if err != nil {
			return false
		}
		return ex.TotalPJ() <= ey.TotalPJ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEnergyBreakdownSums: component energies add up to the total.
func TestEnergyBreakdownSums(t *testing.T) {
	topo := topology.Torus(4, 4, topology.DefaultLinkConfig())
	s := ring.Build(topo, 10000)
	e, err := network.EstimateEnergy(s, network.DefaultConfig(), network.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	sum := e.LinkPJ + e.BufferPJ + e.RoutePJ + e.ArbPJ
	if sum != e.TotalPJ() {
		t.Errorf("component sum %v != total %v", sum, e.TotalPJ())
	}
	if e.TotalUJ() != e.TotalPJ()/1e6 {
		t.Error("unit conversion broken")
	}
	var zero collective.Schedule
	zero.Topo = topo
	if ez, err := network.EstimateEnergy(&zero, network.DefaultConfig(), network.DefaultEnergyModel()); err != nil || ez.TotalPJ() != 0 {
		t.Errorf("empty schedule energy = %v, %v", ez, err)
	}
}
