package network_test

import (
	"testing"

	"multitree/internal/collective"
	"multitree/internal/network"
	"multitree/internal/sim"
	"multitree/internal/topology"
)

// twoHopTopo is a 3-node line 0-1-2 for targeted engine tests.
func lineTopo(t *testing.T) *topology.Topology {
	t.Helper()
	c := topology.NewCustom("line3", 3, 0)
	cfg := topology.DefaultLinkConfig()
	c.Link(0, 1, cfg).Link(1, 2, cfg)
	topo, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestLockstepNOPStall: a node whose only send sits at step 3 must stall
// two estimated step times before injecting, even with no dependencies.
func TestLockstepNOPStall(t *testing.T) {
	topo := lineTopo(t)
	s := collective.NewSchedule("unit", topo, 4096, 1)
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 3})
	cfg := network.DefaultConfig()

	res, err := network.SimulateFluid(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wire := cfg.WireBytes(4096 * collective.WordSize)
	est := sim.Time((wire + 15) / 16)
	minimum := 2*est + sim.Time(wire/16) + 150
	if res.Cycles < minimum-2 {
		t.Errorf("fluid: %d cycles, want >= %d (2 NOP stalls)", res.Cycles, minimum)
	}

	pres, err := network.SimulatePackets(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Cycles < minimum-64 {
		t.Errorf("packet: %d cycles, want >= %d", pres.Cycles, minimum)
	}

	// Without lockstep the transfer starts immediately.
	cfg.Lockstep = false
	cfg.StepPriority = false
	fast, err := network.SimulateFluid(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= res.Cycles {
		t.Errorf("disabling lockstep did not remove the stall: %d vs %d", fast.Cycles, res.Cycles)
	}
}

// TestStepPriorityOrdersLink: when a step-1 and a step-2 flow share a
// link, the step-1 flow finishes at full rate first (serialized), not
// fair-shared.
func TestStepPriorityOrdersLink(t *testing.T) {
	topo := lineTopo(t)
	s := collective.NewSchedule("unit", topo, 8192, 2)
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
	// Same link, later step, no dependency: only step priority orders it.
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 1, Step: 2})
	cfg := network.DefaultConfig()
	cfg.Lockstep = false // isolate the arbitration effect
	cfg.StepPriority = true
	res, err := network.SimulateFluid(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wire := cfg.WireBytes(s.Flows[0].Bytes())
	firstDone := res.TransferDone[0]
	wantFirst := sim.Time(wire/16) + 150
	if firstDone > wantFirst+2 {
		t.Errorf("step-1 flow done at %d, want ~%d (full rate under priority)", firstDone, wantFirst)
	}
	if res.TransferDone[1] <= firstDone {
		t.Errorf("step-2 flow finished before step-1")
	}
}

// TestPacketBackpressure reproduces the Table III buffer-sizing rationale
// ("we configure the buffer size to cover the credit round-trip loop"):
// with the default 4x318-flit buffers a two-hop transfer pipelines at
// full link rate, while buffers below the bandwidth-delay product stall
// on the credit round trip and lose most of the throughput.
func TestPacketBackpressure(t *testing.T) {
	topo := lineTopo(t)
	s := collective.NewSchedule("unit", topo, 64<<10, 1)
	s.Add(collective.Transfer{Src: 0, Dst: 2, Op: collective.Gather, Flow: 0, Step: 1})
	cfg := network.DefaultConfig()
	cfg.Lockstep = false
	wire := cfg.WireBytes(int64(64<<10) * collective.WordSize)

	deep, err := network.SimulatePackets(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelined bound: one serialization + two link latencies, within one
	// packet time of slack.
	lower := sim.Time(wire/16) + 300
	if deep.Cycles < lower || deep.Cycles > lower+64 {
		t.Errorf("deep buffers: %d cycles, want ~%d (full pipelining)", deep.Cycles, lower)
	}

	shallow := cfg
	shallow.VCs = 1
	shallow.VCDepthFlits = 34 // 544 B, far below the 2.4 KB BDP at 150 ns
	starved, err := network.SimulatePackets(s, shallow)
	if err != nil {
		t.Fatal(err)
	}
	if float64(starved.Cycles) < 2*float64(deep.Cycles) {
		t.Errorf("sub-BDP buffers only cost %d vs %d cycles; credit loop not modeled",
			starved.Cycles, deep.Cycles)
	}
}

// TestLinkBusyAccounting: total link busy time matches wire bytes /
// bandwidth on an uncontended transfer, in both engines.
func TestLinkBusyAccounting(t *testing.T) {
	topo := lineTopo(t)
	s := collective.NewSchedule("unit", topo, 4096, 1)
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
	cfg := network.DefaultConfig()
	for name, engine := range map[string]func(*collective.Schedule, network.Config) (*network.Result, error){
		"fluid":  network.SimulateFluid,
		"packet": network.SimulatePackets,
	} {
		res, err := engine(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var busy sim.Time
		for _, b := range res.LinkBusy {
			busy += b
		}
		wire := cfg.WireBytes(4096 * collective.WordSize)
		want := sim.Time(wire / 16)
		if busy < want || busy > want+70 {
			t.Errorf("%s: total link busy %d, want ~%d", name, busy, want)
		}
	}
}

// TestEmptySchedule: both engines handle zero transfers.
func TestEmptySchedule(t *testing.T) {
	topo := lineTopo(t)
	s := collective.NewSchedule("empty", topo, 16, 1)
	for _, engine := range []func(*collective.Schedule, network.Config) (*network.Result, error){
		network.SimulateFluid, network.SimulatePackets,
	} {
		res, err := engine(s, network.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != 0 {
			t.Errorf("empty schedule took %d cycles", res.Cycles)
		}
	}
}

// TestZeroByteFlows: flows whose chunk rounds to zero elements still clear
// dependencies after the path latency.
func TestZeroByteFlows(t *testing.T) {
	topo := lineTopo(t)
	s := collective.NewSchedule("unit", topo, 1, 2) // flow 1 gets zero elems
	a := s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 1, Step: 1})
	s.Add(collective.Transfer{Src: 1, Dst: 2, Op: collective.Gather, Flow: 0, Step: 2,
		Deps: []collective.TransferID{a}})
	for name, engine := range map[string]func(*collective.Schedule, network.Config) (*network.Result, error){
		"fluid":  network.SimulateFluid,
		"packet": network.SimulatePackets,
	} {
		res, err := engine(s, network.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cycles < 300 {
			t.Errorf("%s: %d cycles, want >= two link latencies", name, res.Cycles)
		}
	}
}

// TestBadConfigRejected: invalid flit/payload combinations error.
func TestBadConfigRejected(t *testing.T) {
	topo := lineTopo(t)
	s := collective.NewSchedule("unit", topo, 16, 1)
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
	bad := network.DefaultConfig()
	bad.PayloadBytes = 250 // not a multiple of 16
	if _, err := network.SimulateFluid(s, bad); err == nil {
		t.Error("fluid accepted misaligned payload")
	}
	if _, err := network.SimulatePackets(s, bad); err == nil {
		t.Error("packet accepted misaligned payload")
	}
}
