package network_test

import (
	"fmt"
	"math"
	"testing"

	"multitree/internal/collective"
	"multitree/internal/core"
	"multitree/internal/dbtree"
	"multitree/internal/network"
	"multitree/internal/ring"
	"multitree/internal/topology"
)

func torus4x4() *topology.Topology {
	return topology.Torus(4, 4, topology.DefaultLinkConfig())
}

// TestFluidSingleTransfer checks the analytic time of one uncontended
// transfer: serialization + path latency.
func TestFluidSingleTransfer(t *testing.T) {
	topo := torus4x4()
	s := collective.NewSchedule("unit", topo, 4096, 1)
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
	cfg := network.DefaultConfig()
	cfg.Lockstep = false
	res, err := network.SimulateFluid(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wire := cfg.WireBytes(4096 * collective.WordSize)
	want := float64(wire)/16 + 150
	if got := float64(res.Cycles); math.Abs(got-want) > 2 {
		t.Errorf("cycles = %v, want ~%v (wire %d)", got, want, wire)
	}
	pres, err := network.SimulatePackets(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Packet engine pipelines packets, so the last packet's arrival is
	// serialization of the whole stream + latency, within one packet time.
	if diff := math.Abs(float64(pres.Cycles) - want); diff > 64 {
		t.Errorf("packet cycles = %d, want ~%v", pres.Cycles, want)
	}
}

// TestFluidContention checks max-min sharing: two flows over one link take
// twice as long.
func TestFluidContention(t *testing.T) {
	topo := torus4x4()
	s := collective.NewSchedule("unit", topo, 8192, 2)
	// Both flows use link 0->1 by routing 0->1 (x-direction single hop).
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 0, Step: 1})
	s.Add(collective.Transfer{Src: 0, Dst: 1, Op: collective.Gather, Flow: 1, Step: 1})
	cfg := network.DefaultConfig()
	cfg.Lockstep = false
	res, err := network.SimulateFluid(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wire := cfg.WireBytes(s.Flows[0].Bytes())
	want := 2*float64(wire)/16 + 150
	if got := float64(res.Cycles); math.Abs(got-want) > 2 {
		t.Errorf("cycles = %v, want ~%v", got, want)
	}
}

// TestEnginesAgree cross-validates the fluid engine against the
// packet-level reference across algorithms and sizes: completion times
// must agree within 15%.
func TestEnginesAgree(t *testing.T) {
	topo := torus4x4()
	elemsList := []int{1 << 10, 1 << 14}
	for _, elems := range elemsList {
		schedules := []*collective.Schedule{ring.Build(topo, elems)}
		if s, err := dbtree.Build(topo, elems, 4); err == nil {
			schedules = append(schedules, s)
		}
		if s, err := core.Build(topo, elems, core.Options{}); err == nil {
			schedules = append(schedules, s)
		}
		for _, s := range schedules {
			for _, cfg := range []network.Config{network.DefaultConfig(), network.MessageConfig()} {
				name := fmt.Sprintf("%s/%delems/msg=%v", s.Algorithm, elems, cfg.MessageBased)
				t.Run(name, func(t *testing.T) {
					fres, err := network.SimulateFluid(s, cfg)
					if err != nil {
						t.Fatal(err)
					}
					pres, err := network.SimulatePackets(s, cfg)
					if err != nil {
						t.Fatal(err)
					}
					f, p := float64(fres.Cycles), float64(pres.Cycles)
					if rel := math.Abs(f-p) / p; rel > 0.15 {
						t.Errorf("fluid %.0f vs packet %.0f cycles: %.1f%% apart", f, p, 100*rel)
					}
				})
			}
		}
	}
}

// TestMessageFlowControlGain checks the §IV-B claim end to end: with
// 256 B payloads and 16 B flits, message-based flow control improves
// bandwidth-bound all-reduce time by about 6%.
func TestMessageFlowControlGain(t *testing.T) {
	topo := torus4x4()
	s, err := core.Build(topo, 1<<20, core.Options{}) // 4 MiB: bandwidth-bound
	if err != nil {
		t.Fatal(err)
	}
	base, err := network.SimulateFluid(s, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	msg, err := network.SimulateFluid(s, network.MessageConfig())
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(base.Cycles)/float64(msg.Cycles) - 1
	if gain < 0.04 || gain > 0.08 {
		t.Errorf("message-based gain = %.2f%%, want ~6%%", 100*gain)
	}
}

// TestHeadFlitOverhead pins Fig. 2's endpoints: 25% at 64 B payloads, 6.25%
// at 256 B.
func TestHeadFlitOverhead(t *testing.T) {
	if got := network.HeadFlitOverhead(64, 16); got != 0.25 {
		t.Errorf("overhead(64) = %v, want 0.25", got)
	}
	if got := network.HeadFlitOverhead(256, 16); got != 0.0625 {
		t.Errorf("overhead(256) = %v, want 0.0625", got)
	}
}

// TestWireBytesMatchesFlitize checks the closed-form wire size against the
// explicit flit framing for both flow controls.
func TestWireBytesMatchesFlitize(t *testing.T) {
	for _, cfg := range []network.Config{network.DefaultConfig(), network.MessageConfig()} {
		for _, payload := range []int64{1, 15, 16, 17, 255, 256, 257, 4096, 100000} {
			flits := cfg.Flitize(payload)
			got := cfg.WireBytes(payload)
			want := int64(len(flits)) * int64(cfg.FlitBytes)
			if got != want {
				t.Errorf("msg=%v payload=%d: WireBytes=%d, Flitize gives %d flits = %d bytes",
					cfg.MessageBased, payload, got, len(flits), want)
			}
		}
	}
}
