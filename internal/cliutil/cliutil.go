// Package cliutil is the observability plumbing shared by the cmd/
// tools: pprof profile management, terminal detection for progress
// output, structured run-report writing with strict re-validation, and
// the Prometheus metrics listener. Every tool wires the same flags to
// the same behaviors, so a run report from train-sim validates with the
// same decoder as one from allreduce-bench.
package cliutil

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"multitree/internal/algorithms"
	"multitree/internal/collective"
	"multitree/internal/obs"
	"multitree/internal/plancache"
	"multitree/internal/topology"
)

// StartProfiles starts CPU profiling and arranges a heap profile at
// exit, per the requested paths (empty paths disable each). The
// returned stop function is idempotent; note that log.Fatal error paths
// exit without reaching it, so profiles are only written for runs that
// complete.
func StartProfiles(cpuPath, memPath string) (stop func()) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// IsTerminal reports whether f is attached to a character device, i.e.
// an interactive terminal rather than a pipe or file. The progress
// reporter uses this to pick \r-rewriting output over plain lines, so
// CI logs never see control characters.
func IsTerminal(f *os.File) bool {
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

// ProgressFor maps a -progress flag value to a reporter on stderr:
// "off" (or empty) disables it, "on" forces it, and "auto" enables it
// only when stderr is a terminal. Either way the output style follows
// the terminal check, so a forced-on reporter under CI emits plain
// line-buffered samples.
func ProgressFor(mode string) (*obs.Progress, error) {
	interactive := IsTerminal(os.Stderr)
	switch mode {
	case "", "off":
		return nil, nil
	case "on":
		return obs.NewProgress(os.Stderr, interactive), nil
	case "auto":
		if !interactive {
			return nil, nil
		}
		return obs.NewProgress(os.Stderr, true), nil
	}
	return nil, fmt.Errorf("bad progress mode %q (want auto, on or off)", mode)
}

// ServeMetrics mounts h at /metrics on addr and serves it in the
// background. It fails fast on an unbindable address (instead of dying
// asynchronously mid-run) and returns the resolved URL — useful with
// ":0" — plus a stop function that closes the listener.
func ServeMetrics(addr string, h http.Handler) (url string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", h)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return fmt.Sprintf("http://%s/metrics", ln.Addr()), func() { srv.Close() }, nil
}

// WriteRunReport validates the report through the strict decoder before
// anything lands on disk, so a tool can never emit a file its own
// validator rejects.
func WriteRunReport(path string, r *obs.RunReport) error {
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		return err
	}
	if _, err := obs.DecodeRunReport(bytes.NewReader(buf.Bytes())); err != nil {
		return fmt.Errorf("generated report fails validation: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ValidateRunReport strictly decodes the report at path — the CI check
// behind allreduce-bench -validate-report.
func ValidateRunReport(path string) (*obs.RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.DecodeRunReport(f)
}

// Config selects the observability surfaces of one tool invocation,
// straight from its flags.
type Config struct {
	Tool, Mode string

	ReportPath  string // -report: structured RunReport JSON
	PlanCSVPath string // -planprofile: planner phase breakdown CSV

	ProgressMode string // -progress: auto, on, off

	MetricsAddr   string        // -metrics-addr: serve Prometheus /metrics
	MetricsLinger time.Duration // -metrics-linger: keep serving after the run

	CPUProfile, MemProfile string // -cpuprofile / -memprofile

	PlanCacheDir      string // -plan-cache: content-addressed plan cache directory
	PlanCacheMaxBytes int64  // -plan-cache-max-bytes: LRU size cap, <= 0 uncapped
	PlanMemCacheMB    int64  // -plan-mem-cache-mb: in-process decoded-plan LRU cap, <= 0 off
	PlanWorkers       int    // -plan-workers: parallel tree growth + lowering + IR decode, <= 1 sequential
	PlanShards        int    // -plan-shards: sharded tree growth (geometric root partition), <= 1 off
	VerifyPlan        bool   // -verify-plan: full re-validation of cache hits
}

// Run is one invocation's live observability state: the report being
// assembled, the planner profile and progress reporter feeding it, and
// the metrics endpoint scraping it. Zero-config runs cost nothing: no
// profile is allocated, PlanObserver returns nil, and Finish only stops
// the (also disabled) profilers.
type Run struct {
	Report   *obs.RunReport
	Profile  *obs.PlanProfile
	Progress *obs.Progress
	Prom     *obs.PromHandler
	Cache    *plancache.Cache
	MemCache *plancache.MemCache

	cfg          Config
	cacheKey     string
	start        time.Time
	startAlloc   uint64
	stopProfiles func()
	stopMetrics  func()
}

// StartRun wires up the requested surfaces and starts the clocks.
func StartRun(cfg Config) (*Run, error) {
	r := &Run{cfg: cfg, Report: obs.NewRunReport(cfg.Tool, cfg.Mode)}
	r.Report.StartedAt = time.Now().UTC().Format(time.RFC3339)
	r.stopProfiles = StartProfiles(cfg.CPUProfile, cfg.MemProfile)
	p, err := ProgressFor(cfg.ProgressMode)
	if err != nil {
		return nil, err
	}
	r.Progress = p
	// The profile exists only when something consumes it, keeping the
	// default planner path on its proven nil-observer fast path.
	if cfg.ReportPath != "" || cfg.PlanCSVPath != "" || cfg.MetricsAddr != "" {
		r.Profile = obs.NewPlanProfile()
	}
	if cfg.PlanCacheDir != "" {
		c, err := plancache.Open(cfg.PlanCacheDir, cfg.PlanCacheMaxBytes)
		if err != nil {
			r.stopProfiles()
			return nil, err
		}
		c.Log = log.Printf // cache degradations (corrupt entries) stay visible
		c.VerifyFull = cfg.VerifyPlan
		r.Cache = c
		r.Option("plan_cache", cfg.PlanCacheDir)
		if cfg.VerifyPlan {
			r.Option("verify_plan", "true")
		}
	}
	if cfg.PlanMemCacheMB > 0 {
		r.MemCache = plancache.NewMemCache(cfg.PlanMemCacheMB << 20)
		r.Option("plan_mem_cache_mb", fmt.Sprintf("%d", cfg.PlanMemCacheMB))
	}
	if cfg.PlanWorkers > 1 {
		r.Option("plan_workers", fmt.Sprintf("%d", cfg.PlanWorkers))
	}
	if cfg.PlanShards > 1 {
		r.Option("plan_shards", fmt.Sprintf("%d", cfg.PlanShards))
	}
	if cfg.MetricsAddr != "" {
		r.Prom = obs.NewPromHandler()
		r.Prom.SetPlanProfile(r.Profile)
		url, stop, err := ServeMetrics(cfg.MetricsAddr, r.Prom)
		if err != nil {
			r.stopProfiles()
			return nil, err
		}
		r.stopMetrics = stop
		log.Printf("serving Prometheus metrics on %s", url)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.startAlloc = ms.TotalAlloc
	r.start = time.Now()
	return r, nil
}

// PlanObserver returns the observer to thread into schedule builds: the
// profile and the progress reporter fanned out, or nil when neither is
// active — preserving the planner's zero-cost disabled path.
func (r *Run) PlanObserver() obs.PlanObserver {
	var os []obs.PlanObserver
	if r.Profile != nil {
		os = append(os, r.Profile)
	}
	if r.Progress != nil {
		os = append(os, r.Progress)
	}
	return obs.TeePlan(os...)
}

// BuildOptions returns the planner options to thread into schedule
// builds: the run's observer fan-out, the plan cache, and the worker
// and shard counts. Callers set per-build knobs (Chunks) on the
// returned value.
func (r *Run) BuildOptions() algorithms.Options {
	return algorithms.Options{
		Workers:  r.cfg.PlanWorkers,
		Shards:   r.cfg.PlanShards,
		Cache:    r.Cache,
		MemCache: r.MemCache,
		Observer: r.PlanObserver(),
	}
}

// ValidationMode names how a single-schedule run obtained its plan:
// "memory" when the decoded-plan cache served it (the plan was verified
// when it entered the process), "summary" or "full" when a disk hit was
// validated that way, "fresh build" when no hit happened (or no cache
// is attached). Meant for one-schedule tools' stdout summaries.
func (r *Run) ValidationMode() string {
	if r.MemCache != nil && r.MemCache.Stats().Hits > 0 {
		return "memory"
	}
	if r.Cache != nil {
		st := r.Cache.Stats()
		switch {
		case st.SummaryLoads > 0:
			return "summary"
		case st.FullLoads > 0:
			return "full"
		}
	}
	return "fresh build"
}

// NoteCacheKey records, for single-schedule runs, the cache key the
// build probed, so the report's plan_cache section names the entry. A
// no-op without a cache or for unknown algorithm names.
func (r *Run) NoteCacheKey(topo *topology.Topology, algorithm string, elems, chunks int) {
	if r.Cache == nil {
		return
	}
	spec, _, err := algorithms.Resolve(algorithm)
	if err != nil {
		return
	}
	r.cacheKey = plancache.Key(topo, spec.Name, elems, chunks)
}

// CacheEntryPath returns the on-disk cache entry for the key noted via
// NoteCacheKey, when a cache is attached and the entry exists. The
// entry's bytes are the schedule's exact binary-IR export (content
// hash included), so tools writing that IR can copy the file instead
// of encoding and hashing the same bytes a second time.
func (r *Run) CacheEntryPath() (string, bool) {
	if r.Cache == nil || r.cacheKey == "" {
		return "", false
	}
	return r.Cache.EntryPath(r.cacheKey)
}

// ObserveSim folds one simulation's metrics into the run: the metrics
// endpoint accumulates the snapshot, and the report keeps the fold of
// every simulation this run performed.
func (r *Run) ObserveSim(m *obs.Metrics) {
	if m == nil {
		return
	}
	if r.Prom != nil {
		r.Prom.ObserveSim(m.Snapshot())
	}
	sr := obs.SimReportFrom(m)
	if r.Report.Sim == nil {
		r.Report.Sim = sr
		return
	}
	acc := r.Report.Sim
	acc.Events += sr.Events
	acc.StepEnters += sr.StepEnters
	if sr.EngineQueueMax > acc.EngineQueueMax {
		acc.EngineQueueMax = sr.EngineQueueMax
	}
	acc.LinkBusyCycles += sr.LinkBusyCycles
	if sr.LinksActive > acc.LinksActive {
		acc.LinksActive = sr.LinksActive
	}
	acc.NIEntriesIssued += sr.NIEntriesIssued
	acc.NIDepsCleared += sr.NIDepsCleared
	acc.NILockstepNOPs += sr.NILockstepNOPs
}

// SetTopology records the fabric a run planned on, fingerprint included
// when a schedule exists to hash.
func (r *Run) SetTopology(t *topology.Topology, s *collective.Schedule) {
	info := &obs.TopologyInfo{Name: t.Name(), Nodes: t.Nodes(), Links: len(t.Links())}
	if s != nil {
		info.Fingerprint = collective.TopologyFingerprint(s.Topo)
	}
	r.Report.Topology = info
}

// Option records one free-form knob in the report (skipping empties),
// so a report names the fault spec or worker count that shaped it.
func (r *Run) Option(key, value string) {
	if value == "" {
		return
	}
	if r.Report.Options == nil {
		r.Report.Options = map[string]string{}
	}
	r.Report.Options[key] = value
}

// Finish seals the report (wall split, planner phases, allocation
// growth), writes the requested artifacts, lingers on the metrics
// endpoint if asked, and stops the profilers. Like the profiles,
// log.Fatal error paths exit before reaching it, so reports describe
// completed runs only.
func (r *Run) Finish() error {
	total := time.Since(r.start).Nanoseconds()
	if r.Report.Wall == nil {
		// The mode recorded no split of its own; attribute at least the
		// profiled planner time.
		r.Report.Wall = &obs.WallSplit{}
		if r.Profile != nil {
			r.Report.Wall.PlanNanos = r.Profile.TotalWallNanos()
		}
	}
	r.Report.Wall.TotalNanos = total
	if r.Profile != nil {
		r.Report.Planner = r.Profile.Report()
	}
	if r.Cache != nil || r.MemCache != nil {
		pc := obs.PlanCacheReport{Key: r.cacheKey}
		if r.Cache != nil {
			st := r.Cache.Stats()
			pc.Dir = r.Cache.Dir()
			pc.Hits = st.Hits
			pc.Misses = st.Misses
			pc.BytesRead = st.BytesRead
			pc.BytesWritten = st.BytesWritten
			pc.Evictions = st.Evictions
			pc.SummaryValidated = st.SummaryLoads
			pc.FullValidated = st.FullLoads
		}
		if r.MemCache != nil {
			mst := r.MemCache.Stats()
			pc.MemHits = mst.Hits
			pc.MemMisses = mst.Misses
			pc.MemEvictions = mst.Evictions
			pc.MemBytes = mst.Bytes
			pc.MemEntries = mst.Entries
		}
		r.Report.PlanCache = &pc
		if r.Prom != nil {
			r.Prom.ObservePlanCache(pc)
		}
	}
	if r.Report.Sim != nil {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		r.Report.Sim.AllocBytes = ms.TotalAlloc - r.startAlloc
	}
	if r.cfg.PlanCSVPath != "" {
		f, err := os.Create(r.cfg.PlanCSVPath)
		if err != nil {
			return err
		}
		if err := r.Profile.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("wrote %s", r.cfg.PlanCSVPath)
	}
	if r.cfg.ReportPath != "" {
		if err := WriteRunReport(r.cfg.ReportPath, r.Report); err != nil {
			return err
		}
		log.Printf("wrote %s", r.cfg.ReportPath)
	}
	if r.stopMetrics != nil {
		if r.cfg.MetricsLinger > 0 {
			log.Printf("metrics endpoint lingering %s for scrapes", r.cfg.MetricsLinger)
			time.Sleep(r.cfg.MetricsLinger)
		}
		r.stopMetrics()
	}
	r.stopProfiles()
	return nil
}
