package cliutil

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multitree/internal/obs"
)

func TestIsTerminalOnPipe(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	defer w.Close()
	if IsTerminal(r) || IsTerminal(w) {
		t.Error("pipe ends report as terminals")
	}
}

func TestProgressFor(t *testing.T) {
	if p, err := ProgressFor("off"); err != nil || p != nil {
		t.Errorf("off: %v %v", p, err)
	}
	if p, err := ProgressFor(""); err != nil || p != nil {
		t.Errorf("empty: %v %v", p, err)
	}
	p, err := ProgressFor("on")
	if err != nil || p == nil {
		t.Fatalf("on: %v %v", p, err)
	}
	// Under go test, stderr is not a character device, so forced-on
	// must select the plain style and auto must stay silent.
	if p.Interactive && !IsTerminal(os.Stderr) {
		t.Error("forced-on progress is interactive on a non-terminal stderr")
	}
	if _, err := ProgressFor("sometimes"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestWriteAndValidateRunReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	rep := obs.NewRunReport("cliutil-test", "single")
	rep.Algorithm = "multitree"
	if err := WriteRunReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ValidateRunReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "cliutil-test" || got.Mode != "single" || got.Algorithm != "multitree" {
		t.Errorf("round trip lost fields: %+v", got)
	}
	// Corrupt the file: validation must fail loudly.
	if err := os.WriteFile(path, []byte(`{"schema":"multitree-runreport/v1","bogus":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunReport(path); err == nil {
		t.Error("unknown field passed validation")
	}
}

func TestServeMetrics(t *testing.T) {
	h := obs.NewPromHandler()
	url, stop, err := ServeMetrics("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "multitree_up 1") {
		t.Errorf("scrape missing multitree_up:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
}

// TestRunLifecycle drives a full StartRun/Finish cycle: observer
// fan-out, sim fold, report and plan CSV on disk, both validating.
func TestRunLifecycle(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	csvPath := filepath.Join(dir, "plan.csv")
	run, err := StartRun(Config{
		Tool: "cliutil-test", Mode: "single",
		ReportPath: reportPath, PlanCSVPath: csvPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Profile == nil {
		t.Fatal("report requested but no profile allocated")
	}
	o := run.PlanObserver()
	if o == nil {
		t.Fatal("PlanObserver nil with a live profile")
	}
	o.PhaseStart(obs.PhaseTreeGrowth)
	o.PhaseEnd(obs.PhaseTreeGrowth, obs.PlanCounters{NodesAttached: 12})

	m := obs.NewMetrics(0)
	m.Emit(obs.Event{Kind: obs.EvStepEnter})
	run.ObserveSim(m)
	run.ObserveSim(m) // folds accumulate
	if run.Report.Sim.StepEnters != 2 {
		t.Errorf("sim fold StepEnters = %d, want 2", run.Report.Sim.StepEnters)
	}

	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateRunReport(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Planner == nil || len(rep.Planner.Phases) == 0 {
		t.Error("report missing planner phases")
	}
	if rep.Wall == nil || rep.Wall.TotalNanos <= 0 {
		t.Errorf("report wall split: %+v", rep.Wall)
	}
	if rep.Sim == nil || rep.Sim.AllocBytes == 0 {
		t.Errorf("report sim missing alloc growth: %+v", rep.Sim)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "phase,runs,wall_ns,share") {
		t.Errorf("plan CSV header: %q", string(csv))
	}
}

// TestRunDisabled: a zero-config run keeps the nil-observer fast path.
func TestRunDisabled(t *testing.T) {
	run, err := StartRun(Config{Tool: "cliutil-test"})
	if err != nil {
		t.Fatal(err)
	}
	if run.Profile != nil || run.PlanObserver() != nil {
		t.Error("disabled run allocated an observer")
	}
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
}
